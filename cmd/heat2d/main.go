// Command heat2d runs the Heat2D miniapp standalone on the MPI substrate
// and verifies the parallel solution against the serial reference.
//
// Usage:
//
//	heat2d -nx 64 -ny 48 -px 2 -py 3 -steps 50
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"deisago/internal/mpi"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/sim"
)

func main() {
	var (
		nx    = flag.Int("nx", 64, "global grid extent in x")
		ny    = flag.Int("ny", 48, "global grid extent in y")
		px    = flag.Int("px", 2, "process grid extent in x")
		py    = flag.Int("py", 2, "process grid extent in y")
		steps = flag.Int("steps", 50, "timesteps")
		alpha = flag.Float64("alpha", 0.2, "diffusion number (0, 0.25]")
		check = flag.Bool("check", true, "verify against the serial solver")
	)
	flag.Parse()

	cfg := sim.Config{
		GlobalX: *nx, GlobalY: *ny,
		ProcX: *px, ProcY: *py,
		Alpha:    *alpha,
		CellCost: 1e-8,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	ranks := *px * *py
	nodes := make([]netsim.NodeID, ranks)
	for i := range nodes {
		nodes[i] = netsim.NodeID(i / 2)
	}
	fabric := netsim.New(netsim.DefaultConfig(), (ranks+1)/2)
	world := mpi.NewWorld(fabric, nodes)

	global := ndarray.New(*nx, *ny)
	var mu sync.Mutex
	var makespan float64
	init := sim.HotSpotInitial(cfg)

	world.Run(0, func(c *mpi.Comm) {
		h, err := sim.New(cfg, c, init)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rank error:", err)
			os.Exit(1)
		}
		for s := 0; s < *steps; s++ {
			h.Step()
		}
		local := h.Local()
		x0, y0 := h.Origin()
		mu.Lock()
		global.Slice(ndarray.Range{Start: x0, Stop: x0 + cfg.LocalX()},
			ndarray.Range{Start: y0, Stop: y0 + cfg.LocalY()}).CopyFrom(local)
		if now := c.Now(); now > makespan {
			makespan = now
		}
		mu.Unlock()
	})

	fmt.Printf("heat2d: %dx%d grid on %dx%d processes, %d steps\n", *nx, *ny, *px, *py, *steps)
	fmt.Printf("  virtual makespan : %.4f s\n", makespan)
	fmt.Printf("  field total      : %.6f\n", global.Sum())
	lo := global.MinAxis(0).MinAxis(0).At()
	hi := global.MaxAxis(0).MaxAxis(0).At()
	fmt.Printf("  field range      : [%.4f, %.4f]\n", lo, hi)

	if *check {
		want := sim.RunSerial(cfg, init, *steps)
		if ndarray.AllClose(global, want, 1e-10) {
			fmt.Println("  serial check     : PASS (parallel == serial)")
		} else {
			fmt.Println("  serial check     : FAIL")
			os.Exit(1)
		}
	}
}
