// Command experiments regenerates the paper's tables and figures on the
// simulated platform. Each figure of the evaluation section (Figures 2–5)
// has a generator; -all runs everything, -quick uses a reduced scale.
//
// Usage:
//
//	experiments -all            # every figure at paper scale
//	experiments -fig 2a         # one figure
//	experiments -quick -fig 2b  # reduced scale (fast smoke run)
//	experiments -headline       # the paper's ×7 / ×3 / ×18 ratios
//	experiments -csv            # emit CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"deisago/internal/chaos"
	"deisago/internal/harness"
	"deisago/internal/ml"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every figure")
		fig      = flag.String("fig", "", "figure to run: 2a, 2b, 3a, 3b, 4a, 4b, 5, meta")
		ablation = flag.String("ablation", "", "ablation to run: heartbeat, metadata, contract, placement, fuse, all")
		headline = flag.Bool("headline", false, "compute the headline ratios")
		quick    = flag.Bool("quick", false, "reduced scale (fast)")
		csv      = flag.Bool("csv", false, "CSV output for tables")
		svgDir   = flag.String("svg", "", "also write each figure as an SVG chart into this directory")
		workers  = flag.Int("kernel-workers", 0, "cap goroutines per dense kernel (0 = GOMAXPROCS); figures are unaffected — time is virtual")
		parallel = flag.Int("parallel", 0, "run up to this many independent simulations concurrently per sweep (0 = GOMAXPROCS, 1 = serial); outputs are byte-identical for any value")

		chaosSeed  = flag.Int64("chaos-seed", 0, "run the Fig-2b pipeline under a seeded random fault plan (kills, link degradation, dropped publishes) and verify results against the fault-free run")
		chaosPlan  = flag.String("chaos-plan", "", "explicit fault plan DSL, e.g. 'kill:1@0/3;degrade:2-5:4@0.5-inf;drop:0/2:2;delay:1/4:0.25' (overrides -chaos-seed)")
		chaosRanks = flag.Int("chaos-ranks", 4, "ranks for the chaos scenario")
		chaosWrk   = flag.Int("chaos-workers", 4, "workers for the chaos scenario")
		workerMem  = flag.Int64("worker-mem", 0, "per-worker managed-memory limit (MiB) for the chaos scenario; enables LRU spill-to-PFS, scatter backpressure, and a random memlimit squeeze in seeded plans (0 = unlimited)")

		metricsOut = flag.String("metrics-out", "", "run a fixed-seed DEISA3 reference workflow at the sweep scale and write its metrics snapshot to this file (.csv extension selects CSV, anything else JSON)")

		jobs          = flag.Int("jobs", 0, "run this many concurrent pipelines as tenants of one shared platform and print per-tenant fingerprints and fairness")
		tenantWeights = flag.String("tenant-weights", "", "comma-separated fair-share weights for -jobs, cycled over the jobs (e.g. '1,2,8'; default all 1)")
		jobsMax       = flag.Int("jobs-max-concurrent", 0, "admission cap for -jobs: at most this many jobs run at once (0 = unlimited)")
		jobsPlan      = flag.String("jobs-plan", "", "fault plan DSL for the -jobs run, e.g. 'killjob:job1@2' (worker kills not supported here)")
	)
	flag.Parse()

	if *workers > 0 {
		ml.SetKernelWorkers(*workers)
	}
	opts := harness.DefaultOptions()
	if *quick {
		opts = harness.QuickOptions()
	}
	opts.Parallel = *parallel
	if !*all && *fig == "" && !*headline && *ablation == "" && *chaosSeed == 0 && *chaosPlan == "" &&
		*metricsOut == "" && *jobs == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *jobs > 0 {
		runMultiJob(opts, *jobs, *tenantWeights, *jobsMax, *jobsPlan, *workerMem<<20, *quick)
	}

	if *metricsOut != "" {
		procs := opts.WeakProcs[0]
		res, err := harness.Run(harness.Config{
			System: harness.DEISA3, Ranks: procs, Workers: procs / 2,
			Timesteps: opts.Timesteps, BlockBytes: opts.BlockBytes,
			Seed: 7, Model: opts.Model,
		})
		check(err)
		f, err := os.Create(*metricsOut)
		check(err)
		if strings.HasSuffix(*metricsOut, ".csv") {
			check(res.Metrics.WriteCSV(f))
		} else {
			check(res.Metrics.WriteJSON(f))
		}
		check(f.Close())
		fmt.Fprintf(os.Stderr, "[metrics (DEISA3, %d procs, seed 7) -> %s]\n", procs, *metricsOut)
	}

	if *chaosSeed != 0 || *chaosPlan != "" {
		cfg := harness.ChaosScenarioConfig(opts, *chaosRanks, *chaosWrk)
		cfg.WorkerMemoryLimit = *workerMem << 20
		var plan *chaos.Plan
		var err error
		if *chaosPlan != "" {
			plan, err = chaos.ParsePlan(*chaosPlan)
		} else {
			plan, err = chaos.NewRandomPlan(*chaosSeed, harness.ChaosSpec(cfg))
		}
		check(err)
		start := time.Now()
		chaosPar := opts.Parallel
		if chaosPar == 0 {
			chaosPar = 2
		}
		report, err := harness.RunChaosParallel(cfg, plan, chaosPar)
		check(err)
		fmt.Print(report.Format())
		fmt.Fprintf(os.Stderr, "[chaos done in %v]\n", time.Since(start).Round(time.Millisecond))
		if !report.Identical {
			os.Exit(1)
		}
	}

	figName := "figure"
	emit := func(t *harness.Table, err error) {
		check(err)
		if *csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.Format())
		}
		if *svgDir != "" {
			path := fmt.Sprintf("%s/fig%s.svg", *svgDir, figName)
			check(os.WriteFile(path, []byte(t.RenderSVG(900, 420)), 0o644))
			fmt.Fprintf(os.Stderr, "[svg -> %s]\n", path)
		}
	}

	run := func(name string) {
		start := time.Now()
		figName = strings.ToLower(name)
		switch figName {
		case "2a":
			emit(harness.Fig2a(opts))
		case "2b":
			emit(harness.Fig2b(opts))
		case "3a":
			emit(harness.Fig3a(opts))
		case "3b":
			emit(harness.Fig3b(opts))
		case "4a":
			emit(harness.Fig4a(opts))
		case "4b":
			emit(harness.Fig4b(opts))
		case "5":
			runs, err := harness.Fig5(opts)
			check(err)
			fmt.Println(harness.FormatFig5(runs))
			if *svgDir != "" {
				path := fmt.Sprintf("%s/fig5.svg", *svgDir)
				check(os.WriteFile(path, []byte(harness.RenderFig5SVG(runs, 960, 640)), 0o644))
				fmt.Fprintf(os.Stderr, "[svg -> %s]\n", path)
			}
		case "meta":
			ranks := opts.WeakProcs[len(opts.WeakProcs)-1]
			mc, err := harness.ComputeMetadataCounts(opts, ranks, ranks/2)
			check(err)
			fmt.Println(mc.Format())
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *headline {
		h, err := harness.ComputeHeadline(opts)
		check(err)
		fmt.Println(h.Format())
	}
	if *fig != "" {
		run(*fig)
	}
	runAblation := func(name string) {
		start := time.Now()
		figName = "ablation-" + strings.ToLower(name)
		switch strings.ToLower(name) {
		case "heartbeat":
			emit(harness.AblationHeartbeat(opts, nil))
		case "metadata":
			emit(harness.AblationMetadata(opts, nil))
		case "contract":
			emit(harness.AblationContract(opts, nil))
		case "placement":
			emit(harness.AblationPlacement(opts))
		case "fuse":
			emit(harness.AblationFuse(opts))
		default:
			fmt.Fprintf(os.Stderr, "unknown ablation %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "[ablation %s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *ablation == "all" {
		for _, a := range []string{"heartbeat", "metadata", "contract", "placement", "fuse"} {
			runAblation(a)
		}
	} else if *ablation != "" {
		runAblation(*ablation)
	}
	if *all {
		for _, f := range []string{"2a", "2b", "3a", "3b", "4a", "4b", "5", "meta"} {
			run(f)
		}
		h, err := harness.ComputeHeadline(opts)
		check(err)
		fmt.Println(h.Format())
	}
}

// runMultiJob runs n concurrent tenant pipelines on one shared
// platform and prints the per-tenant outcome table: fingerprints are
// reproducible for a fixed seed regardless of the admission
// interleaving, so two invocations must print identical digests.
func runMultiJob(opts harness.Options, n int, weightsCSV string, maxConcurrent int,
	planDSL string, workerMem int64, quick bool) {
	start := time.Now()
	var weights []float64
	if weightsCSV != "" {
		for _, f := range strings.Split(weightsCSV, ",") {
			var w float64
			_, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &w)
			check(err)
			weights = append(weights, w)
		}
	}
	ranks, steps := 4, opts.Timesteps
	if quick {
		ranks, steps = 2, 4
	}
	specs := make([]harness.JobSpec, n)
	for i := range specs {
		w := 1.0
		if len(weights) > 0 {
			w = weights[i%len(weights)]
		}
		specs[i] = harness.JobSpec{
			Name:       fmt.Sprintf("job%d", i),
			Weight:     w,
			Ranks:      ranks,
			Timesteps:  steps,
			BlockBytes: opts.BlockBytes,
		}
	}
	cfg := harness.MultiJobConfig{
		Jobs:              specs,
		Workers:           2 * ranks,
		Seed:              7,
		Model:             opts.Model,
		MaxConcurrent:     maxConcurrent,
		WorkerMemoryLimit: workerMem,
		EnableAudit:       true,
	}
	if planDSL != "" {
		plan, err := chaos.ParsePlan(planDSL)
		check(err)
		cfg.ChaosPlan = plan
	}
	res, err := harness.RunMultiJob(cfg)
	check(err)

	fmt.Printf("Multi-tenant run: %d jobs, %d workers, seed %d\n", n, cfg.Workers, cfg.Seed)
	fmt.Printf("%-8s %6s %6s %6s %6s %8s %7s %10s %8s  %s\n",
		"tenant", "weight", "ranks", "steps", "sent", "skipped", "killed", "analytics", "share", "fingerprint")
	tenantShare := map[string]float64{}
	for _, ts := range res.Tenants {
		tenantShare[ts.Name] = ts.Share
	}
	for i, j := range res.Jobs {
		killed := "-"
		if j.Killed {
			killed = fmt.Sprintf("@%d", j.KilledStep)
		}
		fmt.Printf("%-8s %6g %6d %6d %6d %8d %7s %9.4fs %7.1f%%  %s\n",
			j.Name, j.Weight, specs[i].Ranks, specs[i].Timesteps,
			j.BlocksSent, j.BlocksSkipped, killed, j.AnalyticsTime,
			100*tenantShare[j.Name], j.Fingerprint[:16])
	}
	fmt.Printf("jain=%.4f admitted=%d max_queue=%d makespan=%.4fs\n",
		res.Jain, res.Admission.Admitted, res.Admission.MaxQueue, res.Makespan)
	if len(res.ChaosLog) > 0 {
		for _, e := range res.ChaosLog {
			fmt.Printf("fault: %s\n", e.String())
		}
	}
	fmt.Fprintf(os.Stderr, "[multijob done in %v]\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
