package main

import "testing"

func TestParseSystem(t *testing.T) {
	cases := map[string]bool{
		"deisa3": true, "DEISA1": true, "posthoc-new": true, "dask": true,
		"posthoc-old": true, "deisa": true, "nonsense": false, "": false,
	}
	for in, ok := range cases {
		_, err := parseSystem(in)
		if ok && err != nil {
			t.Fatalf("parseSystem(%q) errored: %v", in, err)
		}
		if !ok && err == nil {
			t.Fatalf("parseSystem(%q) accepted", in)
		}
	}
}
