// Command deisa-run executes one end-to-end workflow configuration and
// prints its measurements — the single-run counterpart of the experiment
// sweeps in cmd/experiments.
//
// Usage:
//
//	deisa-run -system deisa3 -ranks 16 -workers 8 -steps 10 -block-mib 128
//	deisa-run -system posthoc-new -ranks 64 -workers 32
//
// Systems: posthoc-old, posthoc-new, deisa1, deisa2, deisa3.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deisago/internal/dask"
	"deisago/internal/harness"
)

func main() {
	var (
		system   = flag.String("system", "deisa3", "workflow system: posthoc-old|posthoc-new|deisa1|deisa2|deisa3")
		ranks    = flag.Int("ranks", 8, "MPI processes (simulation side)")
		workers  = flag.Int("workers", 4, "Dask workers (analytics side)")
		steps    = flag.Int("steps", 10, "timesteps")
		blockMiB = flag.Int64("block-mib", 128, "modelled block size per process per step (MiB)")
		workMem  = flag.Int64("worker-mem", 0, "per-worker managed-memory limit (MiB); blocks over the limit spill to the PFS in virtual time, 0 = unlimited")
		seed     = flag.Int64("seed", 1, "allocation/jitter seed (a 'run' in the paper's sense)")
		perRank  = flag.Bool("per-rank", false, "print per-rank communication statistics (Figure 5 style)")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON of the analytics tasks to this file")
		metrics  = flag.String("metrics-out", "", "write the run's metrics snapshot to this file (.csv extension selects CSV, anything else JSON)")
	)
	flag.Parse()

	sys, err := parseSystem(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := harness.Run(harness.Config{
		System:            sys,
		Ranks:             *ranks,
		Workers:           *workers,
		Timesteps:         *steps,
		BlockBytes:        *blockMiB << 20,
		WorkerMemoryLimit: *workMem << 20,
		Seed:              *seed,
		EnableTrace:       *trace != "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	fmt.Printf("system      : %s\n", sys)
	fmt.Printf("scale       : %d ranks (%d nodes), %d workers (%d nodes), %d steps, %d MiB/block\n",
		*ranks, res.SimNodes, *workers, res.AnalyticsNodes, *steps, *blockMiB)
	fmt.Printf("simulation  : %.3f s/iter compute, makespan %.2f s\n", res.SimStepMean, res.SimMakespan)
	fmt.Printf("coupling    : %.3f ± %.3f s/iter  (%.0f MiB/s per process)\n",
		res.CommMean, res.CommStd, res.SimBandwidthMiBps())
	fmt.Printf("analytics   : %.2f s  (%.0f MiB/s), singular values %v\n",
		res.AnalyticsTime, res.AnalyticsBandwidthMiBps(), res.SingularValues)
	fmt.Printf("cost        : coupling %.3f core·h, analytics %.3f core·h\n",
		res.SimCommCostCoreHours(), res.AnalyticsCostCoreHours())
	c := res.Counters
	fmt.Printf("scheduler   : %d msgs total — %d graph(s), %d update-data, %d metadata, %d queue ops, %d heartbeats, %d external tasks\n",
		c.TotalSchedulerMsg, c.GraphsSubmitted, c.UpdateDataMsgs, c.MetadataMsgs,
		c.QueueOps, c.Heartbeats, c.ExternalCreated)

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		// Gauge series ride along as counter tracks under the task stream.
		if err := dask.WriteChromeTraceWithMetrics(f, res.Trace, res.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace       : %d task spans -> %s (open in chrome://tracing)\n", len(res.Trace), *trace)
	}

	if *metrics != "" {
		if err := writeMetrics(*metrics, res); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics     : %d counters, %d gauges, %d histograms -> %s\n",
			len(res.Metrics.Counters), len(res.Metrics.Gauges), len(res.Metrics.Histograms), *metrics)
	}

	if *perRank {
		fmt.Println("\nper-rank communication time (mean ± std over iterations):")
		for r := range res.PerRankCommMean {
			bar := strings.Repeat("#", int(res.PerRankCommMean[r]/res.CommMean*20))
			fmt.Printf("  rank %3d: %7.3f ± %6.3f s  %s\n",
				r, res.PerRankCommMean[r], res.PerRankCommStd[r], bar)
		}
	}
}

// writeMetrics exports the run's metrics snapshot; the file extension
// picks the format (CSV for .csv, JSON otherwise).
func writeMetrics(path string, res *harness.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return res.Metrics.WriteCSV(f)
	}
	return res.Metrics.WriteJSON(f)
}

func parseSystem(s string) (harness.System, error) {
	switch strings.ToLower(s) {
	case "posthoc-old", "posthoc", "dask-old":
		return harness.PostHocOldIPCA, nil
	case "posthoc-new", "dask", "dask-new":
		return harness.PostHocNewIPCA, nil
	case "deisa1":
		return harness.DEISA1, nil
	case "deisa2":
		return harness.DEISA2, nil
	case "deisa3", "deisa":
		return harness.DEISA3, nil
	}
	return 0, fmt.Errorf("unknown system %q (want posthoc-old|posthoc-new|deisa1|deisa2|deisa3)", s)
}
