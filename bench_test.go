// Benchmarks regenerating each table and figure of the paper's
// evaluation at reduced scale (the full scale lives in cmd/experiments).
// Custom metrics report the figure's key quantities so `go test -bench`
// output doubles as a results table; b.N repetitions exercise run-to-run
// stability.
package deisago_test

import (
	"fmt"
	"math/rand"
	"testing"

	"deisago/internal/array"
	"deisago/internal/harness"
	"deisago/internal/linalg"
	"deisago/internal/ml"
	"deisago/internal/mpi"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/pfs"
	"deisago/internal/sim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// benchOptions is a scale small enough for benchmarking loops while
// keeping every effect (PFS contention, scheduler overload) visible.
func benchOptions() harness.Options {
	o := harness.QuickOptions()
	o.Runs = 1
	o.Timesteps = 4
	o.WeakProcs = []int{4, 8}
	o.BlockBytes = 32 << 20
	o.StrongProcs = []int{4, 8}
	o.StrongTotalBytes = 512 << 20
	o.Fig5Procs = 16
	o.Fig5BlockBytes = 64 << 20
	return o
}

// BenchmarkFig2aSimulationSide regenerates Figure 2a (weak-scaling
// simulation, write, and communication times per iteration).
func BenchmarkFig2aSimulationSide(b *testing.B) {
	o := benchOptions()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig2a(o)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report2(b, last, "Simulation", "sim-s/iter")
	report2(b, last, "Post Hoc Write", "write-s/iter")
	report2(b, last, "DEISA3 Communication", "deisa3-s/iter")
}

// BenchmarkFig2bAnalytics regenerates Figure 2b (weak-scaling analytics
// durations for the four systems).
func BenchmarkFig2bAnalytics(b *testing.B) {
	o := benchOptions()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig2b(o)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report2(b, last, "Post hoc IPCA", "posthoc-old-s")
	report2(b, last, "Post hoc New IPCA", "posthoc-new-s")
	report2(b, last, "DEISA3 New IPCA", "deisa3-s")
}

// BenchmarkFig3aSimBandwidth regenerates Figure 3a (per-process
// simulation-side bandwidth).
func BenchmarkFig3aSimBandwidth(b *testing.B) {
	o := benchOptions()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig3a(o)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report2(b, last, "DEISA3 Communication", "deisa3-MiB/s")
	report2(b, last, "Post Hoc Write", "write-MiB/s")
}

// BenchmarkFig3bAnalyticsBandwidth regenerates Figure 3b.
func BenchmarkFig3bAnalyticsBandwidth(b *testing.B) {
	o := benchOptions()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig3b(o)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report2(b, last, "DEISA3 New IPCA", "deisa3-MiB/s")
	report2(b, last, "Post hoc IPCA", "posthoc-MiB/s")
}

// BenchmarkFig4aStrongScalingSim regenerates Figure 4a (strong-scaling
// simulation-side cost in core·hours).
func BenchmarkFig4aStrongScalingSim(b *testing.B) {
	o := benchOptions()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig4a(o)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report2(b, last, "Post Hoc Write", "write-core-h")
	report2(b, last, "DEISA3 Communication", "deisa3-core-h")
}

// BenchmarkFig4bStrongScalingAnalytics regenerates Figure 4b.
func BenchmarkFig4bStrongScalingAnalytics(b *testing.B) {
	o := benchOptions()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig4b(o)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	report2(b, last, "Post hoc IPCA", "posthoc-core-h")
	report2(b, last, "DEISA3 New IPCA", "deisa3-core-h")
}

// BenchmarkFig5Variability regenerates Figure 5 (per-rank communication
// variability for DEISA1/2/3 across runs).
func BenchmarkFig5Variability(b *testing.B) {
	o := benchOptions()
	var last []harness.Fig5Run
	for i := 0; i < b.N; i++ {
		runs, err := harness.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		last = runs
	}
	var band1, band3 float64
	for _, r := range last {
		var avg float64
		for _, s := range r.Std {
			avg += s
		}
		avg /= float64(len(r.Std))
		switch r.System {
		case harness.DEISA1:
			band1 += avg
		case harness.DEISA3:
			band3 += avg
		}
	}
	b.ReportMetric(band1, "deisa1-band-s")
	b.ReportMetric(band3, "deisa3-band-s")
}

// BenchmarkHeadlineRatios reproduces the paper's ×7 / ×3 / ×18 summary.
func BenchmarkHeadlineRatios(b *testing.B) {
	o := benchOptions()
	o.WeakProcs = []int{16}
	var h *harness.Headline
	for i := 0; i < b.N; i++ {
		var err error
		h, err = harness.ComputeHeadline(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.SimSpeedupVsDeisa1, "sim-x")
	b.ReportMetric(h.AnalyticsSpeedupVsDeisa1, "analytics-x")
	b.ReportMetric(h.CostRatioVsPostHocWrite, "cost-x")
}

// BenchmarkMetadataMessages verifies §2.1's message-count claim.
func BenchmarkMetadataMessages(b *testing.B) {
	o := benchOptions()
	var mc *harness.MetadataCounts
	for i := 0; i < b.N; i++ {
		var err error
		mc, err = harness.ComputeMetadataCounts(o, 8, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mc.DEISA1Queue), "deisa1-queue-msgs")
	b.ReportMetric(float64(mc.DEISA3Variable), "deisa3-var-msgs")
}

// report2 reports a series' last point as a custom metric.
func report2(b *testing.B, t *harness.Table, label, metric string) {
	b.Helper()
	for _, s := range t.Series {
		if s.Label == label {
			b.ReportMetric(s.Mean[len(s.Mean)-1], metric)
			return
		}
	}
	b.Fatalf("series %q not found", label)
}

// ---- Micro-benchmarks of the substrates -------------------------------

// BenchmarkEndToEndDEISA3 times one full workflow run.
func BenchmarkEndToEndDEISA3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := harness.Run(harness.Config{
			System: harness.DEISA3, Ranks: 8, Workers: 4,
			Timesteps: 4, BlockBytes: 16 << 20, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVD times the one-sided Jacobi SVD on a 64×32 matrix.
func BenchmarkSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := ndarray.New(64, 32)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.SVD(m)
	}
}

// BenchmarkIPCAPartialFit times one incremental PCA update.
func BenchmarkIPCAPartialFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	batch := ndarray.New(64, 64)
	for i := range batch.Data() {
		batch.Data()[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := ml.NewIncrementalPCA(2)
		if err := est.PartialFit(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeat2DStep times a solver step on a 128×128 local block.
func BenchmarkHeat2DStep(b *testing.B) {
	cfg := sim.Config{GlobalX: 128, GlobalY: 128, ProcX: 1, ProcY: 1, Alpha: 0.2, CellCost: 1e-12}
	fabric := netsim.New(netsim.DefaultConfig(), 1)
	world := mpi.NewWorld(fabric, []netsim.NodeID{0})
	b.ResetTimer()
	world.Run(0, func(c *mpi.Comm) {
		h, err := sim.New(cfg, c, sim.HotSpotInitial(cfg))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			h.Step()
		}
	})
}

// BenchmarkPFSWrite times striped writes through the simulated PFS.
func BenchmarkPFSWrite(b *testing.B) {
	fs := pfs.New(pfs.DefaultConfig())
	fs.Create("bench", 0)
	buf := make([]byte, 1<<16)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.WriteAt("bench", int64(i%64)<<16, buf, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricTransfer times the virtual-time pricing of a transfer.
func BenchmarkFabricTransfer(b *testing.B) {
	f := netsim.New(netsim.DefaultConfig(), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Transfer(netsim.NodeID(i%16), netsim.NodeID(16+i%16), 1<<20, float64(i))
	}
}

// BenchmarkRechunk times graph construction + execution of a rechunk.
func BenchmarkRechunk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := array.FromChunkTasks("src", []int{32, 32}, []int{8, 8},
			func(idx, ext []int) (taskgraph.Fn, vtime.Dur) {
				extent := append([]int(nil), ext...)
				return func([]any) (any, error) { return ndarray.New(extent...), nil }, 1e-6
			})
		_ = src.Rechunk("dst", []int{16, 16})
	}
}

// BenchmarkFuse times the fuse optimization on a 300-task chain graph.
func BenchmarkFuse(b *testing.B) {
	g := taskgraph.New()
	prev := taskgraph.Key("")
	for i := 0; i < 300; i++ {
		key := taskgraph.Key(fmt.Sprintf("c%03d", i))
		var deps []taskgraph.Key
		if prev != "" {
			deps = []taskgraph.Key{prev}
		}
		g.AddFn(key, deps, func(in []any) (any, error) { return 0.0, nil }, 1)
		prev = key
	}
	keep := map[taskgraph.Key]bool{prev: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		taskgraph.Fuse(g, keep)
	}
}

// BenchmarkDistributedPCAGraph times building the TSQR PCA graph.
func BenchmarkDistributedPCAGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := taskgraph.New()
		keys := make([]taskgraph.Key, 16)
		for j := range keys {
			keys[j] = taskgraph.Key(fmt.Sprintf("blk-%d", j))
			blk := ndarray.New(8, 4)
			g.AddFn(keys[j], nil, func([]any) (any, error) { return blk, nil }, 1e-6)
		}
		ml.BuildDistributedPCA(g, "p", keys, 2, 8, 4)
	}
}

// ---- Kernel-layer micro-benchmarks ------------------------------------
//
// The BenchmarkKernel* family tracks the compute substrate (ndarray /
// linalg hot loops) across PRs; BENCH_KERNELS.json records the baseline.
// BenchmarkKernelMatMulNaive512 is the seed's sequential ikj triple loop
// kept as the reference the blocked parallel kernel is measured against.

func benchRandMat(m, n int, seed int64) *ndarray.Array {
	rng := rand.New(rand.NewSource(seed))
	a := ndarray.New(m, n)
	d := a.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return a
}

// naiveMatMul512 is the seed MatMul (sequential ikj, no blocking),
// reimplemented over the public API for benchmarking.
func naiveMatMul(a, b *ndarray.Array) *ndarray.Array {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := ndarray.New(m, n)
	ad, bd, od := a.Data(), b.Data(), out.Data()
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := bd[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// BenchmarkKernelMatMul512 times the blocked, goroutine-parallel kernel
// on 512×512 operands (the acceptance benchmark for the kernel layer).
func BenchmarkKernelMatMul512(b *testing.B) {
	x := benchRandMat(512, 512, 1)
	y := benchRandMat(512, 512, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ndarray.MatMul(x, y)
	}
}

// BenchmarkKernelMatMulNaive512 times the seed triple loop for the
// speedup ratio recorded in BENCH_KERNELS.json.
func BenchmarkKernelMatMulNaive512(b *testing.B) {
	x := benchRandMat(512, 512, 1)
	y := benchRandMat(512, 512, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveMatMul(x, y)
	}
}

// BenchmarkKernelMatMul512Seq pins the single-worker blocked kernel so
// the blocking win and the parallel win are separable in the record.
func BenchmarkKernelMatMul512Seq(b *testing.B) {
	x := benchRandMat(512, 512, 1)
	y := benchRandMat(512, 512, 2)
	prev := ml.SetKernelWorkers(1)
	defer ml.SetKernelWorkers(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ndarray.MatMul(x, y)
	}
}

// BenchmarkKernelQR256x64Top times the slice-based Householder QR.
func BenchmarkKernelQR256x64Top(b *testing.B) {
	x := benchRandMat(256, 64, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.QR(x)
	}
}

// BenchmarkKernelSVD128x64Top times the tournament-ordered Jacobi SVD.
func BenchmarkKernelSVD128x64Top(b *testing.B) {
	x := benchRandMat(128, 64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.SVD(x)
	}
}

// BenchmarkKernelSumStrided512 times the run-decomposed reduction over a
// transposed (non-contiguous) 512×512 view.
func BenchmarkKernelSumStrided512(b *testing.B) {
	x := benchRandMat(512, 512, 5).Transpose()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Sum()
	}
}

// BenchmarkMiniBatchKMeans times one partial fit on 256×8 data.
func BenchmarkMiniBatchKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := ndarray.New(256, 8)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		km := ml.NewMiniBatchKMeans(4, 1)
		if err := km.PartialFit(x); err != nil {
			b.Fatal(err)
		}
	}
}
