#!/usr/bin/env sh
# Pre-PR gate: formatting, vet, full tests, a race-detector pass over
# the packages with parallel kernels or concurrent runtime machinery
# (with the scheduler invariant auditor on and a fixed chaos seed), and
# a short fuzz smoke of the scheduler auditor.
# Usage: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race, auditor on (kernel + runtime packages) =="
# DEISA_AUDIT=1 makes every cluster re-check the scheduler invariants
# after each operation; violations panic with the transition log.
DEISA_AUDIT=1 go test -race \
    ./internal/ndarray \
    ./internal/linalg \
    ./internal/ml \
    ./internal/array \
    ./internal/dask \
    ./internal/core \
    ./internal/chaos \
    ./internal/harness

echo "== chaos acceptance (fixed seed, auditor on) =="
DEISA_AUDIT=1 go run ./cmd/experiments -quick -chaos-seed 7

echo "== fuzz smoke: scheduler auditor =="
go test -fuzz=FuzzSchedulerAudit -fuzztime=5s -run '^$' ./internal/dask

echo "OK"
