#!/usr/bin/env sh
# Pre-PR gate: formatting, vet, full tests, and a race-detector pass over
# the packages with parallel kernels or concurrent runtime machinery.
# Usage: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race (kernel + runtime packages) =="
go test -race \
    ./internal/ndarray \
    ./internal/linalg \
    ./internal/ml \
    ./internal/array \
    ./internal/dask \
    ./internal/core

echo "OK"
