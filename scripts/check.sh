#!/usr/bin/env sh
# Pre-PR gate: formatting, vet, full tests, a race-detector pass over
# the packages with parallel kernels or concurrent runtime machinery
# (with the scheduler invariant auditor on and a fixed chaos seed), and
# short fuzz smokes of the scheduler auditor and the worker memory
# governor, then a bench-regression gate over the scheduler scalability
# suite (see BENCH_SCHED.json).
# Usage: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race, auditor on (kernel + runtime packages) =="
# DEISA_AUDIT=1 makes every cluster re-check the scheduler invariants
# after each operation; violations panic with the transition log.
DEISA_AUDIT=1 go test -race \
    ./internal/ndarray \
    ./internal/linalg \
    ./internal/ml \
    ./internal/array \
    ./internal/dask \
    ./internal/core \
    ./internal/chaos \
    ./internal/harness \
    ./internal/simtest \
    ./internal/netsim \
    ./internal/metrics

echo "== coverage gate =="
# internal/metrics is the observability substrate every claim-checking
# test leans on; hold it at >= 90%. internal/simtest is the
# schedule-space oracle itself — hold the oracle at >= 85% (its
# subprocess-driven mutant test does not record child coverage, so the
# in-process floor is what keeps the model/shrinker honest). The
# repo-wide floor tracks the total statement coverage as it rises PR
# over PR (80.8 pre-metrics, 83.0 after the memory-governance battery)
# — keep it from regressing.
METRICS_MIN=90.0
SIMTEST_MIN=85.0
REPO_MIN=83.0
metrics_cov=$(go test -cover ./internal/metrics | awk '
    /coverage:/ { for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%.*/, "", $(i+1)); print $(i+1); exit } }')
simtest_cov=$(go test -cover ./internal/simtest | awk '
    /coverage:/ { for (i = 1; i <= NF; i++) if ($i == "coverage:") { sub(/%.*/, "", $(i+1)); print $(i+1); exit } }')
profile=$(mktemp)
go test -coverprofile="$profile" ./... > /dev/null
repo_cov=$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
rm -f "$profile"
echo "internal/metrics coverage:    ${metrics_cov}% (min ${METRICS_MIN}%)"
echo "internal/simtest coverage:    ${simtest_cov}% (min ${SIMTEST_MIN}%)"
echo "repo-wide statement coverage: ${repo_cov}% (min ${REPO_MIN}%)"
awk -v got="$metrics_cov" -v min="$METRICS_MIN" 'BEGIN { exit !(got+0 >= min+0) }' || {
    echo "internal/metrics coverage below ${METRICS_MIN}%" >&2; exit 1; }
awk -v got="$simtest_cov" -v min="$SIMTEST_MIN" 'BEGIN { exit !(got+0 >= min+0) }' || {
    echo "internal/simtest coverage below ${SIMTEST_MIN}%" >&2; exit 1; }
awk -v got="$repo_cov" -v min="$REPO_MIN" 'BEGIN { exit !(got+0 >= min+0) }' || {
    echo "repo-wide coverage below the pre-metrics baseline ${REPO_MIN}%" >&2; exit 1; }

echo "== chaos acceptance (fixed seed, auditor on) =="
DEISA_AUDIT=1 go run ./cmd/experiments -quick -chaos-seed 7

echo "== golden metrics snapshots (fixed seed) =="
go test -count=1 -run 'TestGolden' ./internal/harness

echo "== fuzz smoke: scheduler auditor =="
go test -fuzz=FuzzSchedulerAudit -fuzztime=5s -run '^$' ./internal/dask

echo "== fuzz smoke: memory governance =="
# Random op interleavings on a memory-limited cluster with chaos-style
# squeeze windows; the auditor's memory-conservation invariant panics on
# any ledger drift, tier overlap, or pinned-block spill.
go test -fuzz=FuzzMemoryGovernance -fuzztime=5s -run '^$' ./internal/dask

echo "== simtest schedule-space gate =="
# Explore K=16 permuted tie-break schedules of the acceptance pipeline
# (plus a chaos sweep under kill/drop/delay and a memlimit squeeze):
# every legal schedule must produce a bit-identical analytics
# fingerprint, a silent auditor, and an audit log the pure reference
# model accepts. Then the self-test: the production build sweeps clean,
# the -tags daskmutant build plants a scheduler fault the explorer must
# catch and the shrinker must reduce to a one-line DSL reproducer.
go test -count=1 -run 'TestExploreSchedulesIdentical|TestExploreChaosSchedulesIdentical' ./internal/simtest
go test -count=1 -run 'TestMutantCaughtAndShrunk' ./internal/simtest
go test -tags daskmutant -count=1 -run 'TestMutantCaughtAndShrunk' ./internal/simtest

echo "== scheduler bench regression gate =="
# Compare a fresh T x R sweep against the pr4 baselines in
# BENCH_SCHED.json; benchgate fails on >15% ns/task growth or any
# allocs/task regression. -benchtime 5x keeps the sweep fast, and
# -count=5 with benchgate's best-of-N parsing absorbs CPU contention
# (on a single-core box any background burst lands inside some
# repetition; the minimum is the honest measurement). The SpillPath
# pair rides along: zero_spill pins "governance is free when nothing
# spills", spill_heavy bounds the spill/unspill machinery.
go test -run xxx -bench 'BenchmarkSched(Submit|Drive)|BenchmarkSpillPath' -benchtime 5x -count 5 ./internal/dask \
    | go run ./scripts/benchgate -baseline BENCH_SCHED.json

echo "== harness parallel-determinism gate (-race) =="
# The sweep helpers fan independent simulations onto a bounded pool;
# every deterministic run output (canonical counters, analytics values,
# chaos logs) must be byte-identical to serial execution, under the race
# detector.
go test -race -count=1 -run 'TestSweepParallelDeterminism|TestChaosParallelDeterminism|TestRunPool' \
    ./internal/harness

echo "== data-plane / sweep bench regression gate =="
# Compare the resource-compaction, Summarize and pipeline benchmarks
# against BENCH_PIPELINE.json: >15% ns/op or >2% allocs/op growth fails,
# and the recorded speedup claims (compaction >=x5; sweep parallelism
# >=x3 on >=4 cores, not-slower elsewhere) must hold. These benches are
# millisecond-scale and the noisiest in the suite, so -count=5 feeds
# benchgate's best-of-N parsing (the scheduler gate gets by with 3).
( go test -run xxx -bench 'BenchmarkResourceAcquire|BenchmarkSummarize' -benchtime 3x -count 5 ./internal/vtime ; \
  go test -run xxx -bench 'BenchmarkPipeline' -benchtime 3x -count 5 ./internal/harness ) \
    | go run ./scripts/benchgate -baseline BENCH_PIPELINE.json

echo "== multi-tenant control-plane gate =="
# Concurrent tenant pipelines on one shared platform. The simtest multi
# explorer sweeps seeded schedules of a mixed workload (fault-free and
# under a killjob cancellation) and requires bit-identical per-tenant
# fingerprints plus a clean reference-model replay of the shared
# scheduler's interleaved transition log. The bench gate compares
# against BENCH_MULTIJOB.json: the fair-share pop path must stay
# allocation free (max_allocs_per_op 0) and the 1-tenant multi-job path
# must not be slower than the single-job driver (multijob_not_slower).
go test -count=1 -run 'TestExploreMulti|TestMultiOverrideReplayMatchesSeededRun' ./internal/simtest
( go test -run xxx -bench 'BenchmarkMultiJobThroughput|BenchmarkSingleJobBaseline' -benchtime 20x -count 5 ./internal/harness ; \
  go test -run xxx -bench 'BenchmarkFairSharePop' -benchtime 50x -count 5 ./internal/dask ) \
    | go run ./scripts/benchgate -baseline BENCH_MULTIJOB.json

echo "== communication-plane bench regression gate =="
# The lock-free fabric/metrics contract (BENCH_NET.json): the
# instrumented transfer path and the warm registry lookup must stay
# allocation free (max_allocs_per_op 0 hard caps), ns/op must hold, and
# parallel senders on disjoint paths must beat one serial sender by >=x2
# on >=4 cores (not-slower fallback on smaller machines). Fixed
# -benchtime 50000x keeps the per-sender virtual-time tables — and so
# the per-op cost — independent of benchmark calibration.
go test -run xxx -bench 'BenchmarkFabricTransfer|BenchmarkRegistryLookup' -benchtime 50000x -count 5 \
    ./internal/netsim ./internal/metrics \
    | go run ./scripts/benchgate -baseline BENCH_NET.json

echo "OK"
