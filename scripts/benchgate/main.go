// Command benchgate compares a `go test -bench` run against the
// baselines recorded in a BENCH_*.json file and fails on regression.
// Two baseline schemas are understood, keyed per benchmark entry:
//
//   - pr4_ns_per_task / pr4_allocs_per_task gate the custom per-task
//     metrics of the scheduler scalability suite (BENCH_SCHED.json);
//   - ns_per_op / allocs_per_op gate the standard testing.B metrics of
//     the data-plane and sweep suite (BENCH_PIPELINE.json).
//
// Either way the rule is the same: more than +15% time, or allocation
// growth beyond a small noise epsilon, fails. An entry may additionally
// set max_allocs_per_op, an absolute allocation ceiling independent of
// the recorded baseline — with max_allocs_per_op 0 it pins a hot path to
// "allocation free", a property relative slack cannot express when the
// baseline itself is 0. A baseline file may also carry a "speedups"
// section pairing a slow and a fast benchmark with a minimum ratio;
// ratios contingent on hardware parallelism declare min_cores, and on
// smaller machines a fallback_min_ratio (typically ~1: "the parallel
// path must at least not be slower") applies, so the full claim is
// enforced exactly where it is measurable.
// scripts/check.sh pipes the benchmark output through both gates.
//
// Usage: go test -bench 'Benchmark...' ./... | benchgate -baseline BENCH_SCHED.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// nsSlack is the allowed ns/task growth over the recorded baseline
// (benchmarks at -benchtime 5x are noisy; the baseline is the max of
// several runs and real regressions overshoot this by far).
const nsSlack = 1.15

// allocEps absorbs float rounding in the allocs/task metric (runtime
// background allocations make the count vary by a hair across runs).
const allocEps = 0.05

// allocSlackRel is the relative headroom for whole-run allocs/op
// entries: pooled buffers dropped by a GC between iterations shift the
// count by a few tenths of a percent, so "any growth fails" is enforced
// with a 2% noise margin instead of an absolute epsilon.
const allocSlackRel = 1.02

// entry is one benchmark's baseline record. The pr4 fields carry the
// scheduler suite's custom per-task metrics; the op fields carry
// standard testing.B metrics. An entry sets one pair or the other.
type entry struct {
	PR4NsPerTask     float64 `json:"pr4_ns_per_task"`
	PR4AllocsPerTask float64 `json:"pr4_allocs_per_task"`
	NsPerOp          float64 `json:"ns_per_op"`
	AllocsPerOp      float64 `json:"allocs_per_op"`
	// MaxAllocsPerOp, when present, is an absolute allocs/op ceiling
	// (0 = the path must be allocation free). Unlike AllocsPerOp it is a
	// hard cap, not a relative baseline, and it requires the run to have
	// measured allocations at all.
	MaxAllocsPerOp *float64 `json:"max_allocs_per_op"`
}

// speedup is one required ratio between two measured benchmarks. When
// the running machine has fewer than MinCores cores, FallbackMinRatio
// (if positive) replaces MinRatio — a hardware-parallelism claim cannot
// be demonstrated on one core, but the parallel path must still not
// regress the serial one.
type speedup struct {
	Slow             string  `json:"slow"`
	Fast             string  `json:"fast"`
	MinRatio         float64 `json:"min_ratio"`
	MinCores         int     `json:"min_cores"`
	FallbackMinRatio float64 `json:"fallback_min_ratio"`
}

// baselineFile mirrors the parts of a BENCH_*.json file the gate needs.
type baselineFile struct {
	Benchmarks map[string]entry   `json:"benchmarks"`
	Speedups   map[string]speedup `json:"speedups"`
}

// result is one benchmark's measured metrics (per-task custom metrics
// and/or standard per-op metrics; absent metrics stay negative).
type result struct {
	nsPerTask     float64
	allocsPerTask float64
	nsPerOp       float64
	allocsPerOp   float64
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s`)

// parseBench extracts the per-task custom metrics and the standard
// per-op metrics from `go test -bench` output. Lines carrying neither a
// complete task pair nor an ns/op figure are ignored. When a benchmark
// appears more than once (`go test -count=N`), the best (minimum)
// figure per metric is kept: scheduler noise and CPU contention only
// ever inflate a measurement, so the minimum is the closest observation
// of the code's true cost and the gate doesn't flake on a machine that
// happens to be busy during one of the repetitions.
func parseBench(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		fields := strings.Fields(line)
		res := result{nsPerTask: -1, allocsPerTask: -1, nsPerOp: -1, allocsPerOp: -1}
		for i := 1; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/task":
				res.nsPerTask = v
			case "allocs/task":
				res.allocsPerTask = v
			case "ns/op":
				res.nsPerOp = v
			case "allocs/op":
				res.allocsPerOp = v
			}
		}
		if (res.nsPerTask >= 0 && res.allocsPerTask >= 0) || res.nsPerOp >= 0 {
			name := strings.TrimPrefix(m[1], "Benchmark")
			if prev, ok := out[name]; ok {
				res = bestOf(prev, res)
			}
			out[name] = res
		}
	}
	return out, sc.Err()
}

// bestOf merges two measurements of the same benchmark, keeping the
// minimum non-negative value per metric (-1 marks "metric absent").
func bestOf(a, b result) result {
	min := func(x, y float64) float64 {
		if x < 0 {
			return y
		}
		if y < 0 || x < y {
			return x
		}
		return y
	}
	return result{
		nsPerTask:     min(a.nsPerTask, b.nsPerTask),
		allocsPerTask: min(a.allocsPerTask, b.allocsPerTask),
		nsPerOp:       min(a.nsPerOp, b.nsPerOp),
		allocsPerOp:   min(a.allocsPerOp, b.allocsPerOp),
	}
}

// gate checks every baseline entry with pr4 numbers against the measured
// results and returns the list of violations. A baseline entry missing
// from the run is itself a violation (the suite must actually run).
func gate(base map[string]entry, got map[string]result) []string {
	var problems []string
	// Deterministic report order: walk the measured names sorted is not
	// needed for correctness, but iterate baselines via sorted keys so
	// failures print stably.
	names := make([]string, 0, len(base))
	for name, e := range base {
		if e.PR4NsPerTask <= 0 && e.NsPerOp <= 0 && e.MaxAllocsPerOp == nil {
			continue // seed-only entry
		}
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		e := base[name]
		r, ok := got[strings.TrimPrefix(name, "Benchmark")]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: baseline entry has no measurement in this run", name))
			continue
		}
		if e.PR4NsPerTask > 0 {
			if limit := e.PR4NsPerTask * nsSlack; r.nsPerTask > limit {
				problems = append(problems, fmt.Sprintf("%s: %.1f ns/task exceeds baseline %.1f by more than %d%%",
					name, r.nsPerTask, e.PR4NsPerTask, int(nsSlack*100)-100))
			}
			if r.allocsPerTask > e.PR4AllocsPerTask+allocEps {
				problems = append(problems, fmt.Sprintf("%s: %.3f allocs/task regresses baseline %.3f",
					name, r.allocsPerTask, e.PR4AllocsPerTask))
			}
		}
		if e.NsPerOp > 0 {
			if limit := e.NsPerOp * nsSlack; r.nsPerOp > limit {
				problems = append(problems, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f by more than %d%%",
					name, r.nsPerOp, e.NsPerOp, int(nsSlack*100)-100))
			}
			if e.AllocsPerOp > 0 && r.allocsPerOp > e.AllocsPerOp*allocSlackRel {
				problems = append(problems, fmt.Sprintf("%s: %.0f allocs/op regresses baseline %.0f",
					name, r.allocsPerOp, e.AllocsPerOp))
			}
		}
		if e.MaxAllocsPerOp != nil {
			switch {
			case r.allocsPerOp < 0:
				problems = append(problems, fmt.Sprintf("%s: max_allocs_per_op set but the run measured no allocs/op (missing -benchmem/ReportAllocs?)", name))
			case r.allocsPerOp > *e.MaxAllocsPerOp+allocEps:
				problems = append(problems, fmt.Sprintf("%s: %.3f allocs/op exceeds hard cap %.0f",
					name, r.allocsPerOp, *e.MaxAllocsPerOp))
			}
		}
	}
	return problems
}

// gateSpeedups checks every required slow/fast ratio against the
// measured run. cores is the running machine's CPU count.
func gateSpeedups(reqs map[string]speedup, got map[string]result, cores int) []string {
	var problems []string
	names := make([]string, 0, len(reqs))
	for name := range reqs {
		names = append(names, name)
	}
	sortStrings(names)
	ns := func(r result) float64 {
		if r.nsPerOp > 0 {
			return r.nsPerOp
		}
		return r.nsPerTask
	}
	for _, name := range names {
		s := reqs[name]
		slow, okS := got[strings.TrimPrefix(s.Slow, "Benchmark")]
		fast, okF := got[strings.TrimPrefix(s.Fast, "Benchmark")]
		if !okS || !okF {
			problems = append(problems, fmt.Sprintf("speedup %s: %s or %s missing from this run", name, s.Slow, s.Fast))
			continue
		}
		want := s.MinRatio
		scaled := ""
		if s.MinCores > 0 && cores < s.MinCores && s.FallbackMinRatio > 0 {
			want = s.FallbackMinRatio
			scaled = fmt.Sprintf(" (fallback: %d cores < %d required for the x%.1f claim)", cores, s.MinCores, s.MinRatio)
		}
		if fs := ns(fast); fs > 0 {
			ratio := ns(slow) / fs
			if ratio < want {
				problems = append(problems, fmt.Sprintf("speedup %s: %s/%s = x%.2f below required x%.2f%s",
					name, s.Slow, s.Fast, ratio, want, scaled))
			}
		}
	}
	return problems
}

// sortStrings is insertion sort — the entry count is tiny and this keeps
// the import list lean.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func run(baselinePath string, in io.Reader, out io.Writer) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(out, "benchgate: %v\n", err)
		return 2
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(out, "benchgate: %s: %v\n", baselinePath, err)
		return 2
	}
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(out, "benchgate: reading bench output: %v\n", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintln(out, "benchgate: no benchmark results on stdin")
		return 2
	}
	problems := gate(base.Benchmarks, got)
	problems = append(problems, gateSpeedups(base.Speedups, got, runtime.NumCPU())...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(out, "benchgate: REGRESSION:", p)
		}
		return 1
	}
	fmt.Fprintf(out, "benchgate: %d benchmarks within baseline, %d speedup claims hold\n", len(got), len(base.Speedups))
	return 0
}

func main() {
	baseline := flag.String("baseline", "BENCH_SCHED.json", "baseline JSON file")
	flag.Parse()
	os.Exit(run(*baseline, os.Stdin, os.Stderr))
}
