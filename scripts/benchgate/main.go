// Command benchgate compares a `go test -bench` run of the scheduler
// scalability suite against the baselines recorded in BENCH_SCHED.json
// and fails on regression: more than +15% ns/task, or any allocs/task
// growth (beyond a small float-noise epsilon). scripts/check.sh pipes
// the benchmark output through it.
//
// Usage: go test -bench 'BenchmarkSched...' ./internal/dask | benchgate -baseline BENCH_SCHED.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// nsSlack is the allowed ns/task growth over the recorded baseline
// (benchmarks at -benchtime 5x are noisy; the baseline is the max of
// several runs and real regressions overshoot this by far).
const nsSlack = 1.15

// allocEps absorbs float rounding in the allocs/task metric (runtime
// background allocations make the count vary by a hair across runs).
const allocEps = 0.05

// entry is one benchmark's baseline record in BENCH_SCHED.json.
type entry struct {
	PR4NsPerTask     float64 `json:"pr4_ns_per_task"`
	PR4AllocsPerTask float64 `json:"pr4_allocs_per_task"`
}

// baselineFile mirrors the parts of BENCH_SCHED.json the gate needs.
type baselineFile struct {
	Benchmarks map[string]entry `json:"benchmarks"`
}

// result is one benchmark's measured per-task metrics.
type result struct {
	nsPerTask     float64
	allocsPerTask float64
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s`)

// parseBench extracts the ns/task and allocs/task custom metrics from
// `go test -bench` output. Lines without both metrics are ignored.
func parseBench(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		fields := strings.Fields(line)
		res := result{nsPerTask: -1, allocsPerTask: -1}
		for i := 1; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/task":
				res.nsPerTask = v
			case "allocs/task":
				res.allocsPerTask = v
			}
		}
		if res.nsPerTask >= 0 && res.allocsPerTask >= 0 {
			out[strings.TrimPrefix(m[1], "Benchmark")] = res
		}
	}
	return out, sc.Err()
}

// gate checks every baseline entry with pr4 numbers against the measured
// results and returns the list of violations. A baseline entry missing
// from the run is itself a violation (the suite must actually run).
func gate(base map[string]entry, got map[string]result) []string {
	var problems []string
	// Deterministic report order: walk the measured names sorted is not
	// needed for correctness, but iterate baselines via sorted keys so
	// failures print stably.
	names := make([]string, 0, len(base))
	for name, e := range base {
		if e.PR4NsPerTask <= 0 {
			continue // seed-only entry
		}
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		e := base[name]
		r, ok := got[strings.TrimPrefix(name, "Benchmark")]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: baseline entry has no measurement in this run", name))
			continue
		}
		if limit := e.PR4NsPerTask * nsSlack; r.nsPerTask > limit {
			problems = append(problems, fmt.Sprintf("%s: %.1f ns/task exceeds baseline %.1f by more than %d%%",
				name, r.nsPerTask, e.PR4NsPerTask, int(nsSlack*100)-100))
		}
		if r.allocsPerTask > e.PR4AllocsPerTask+allocEps {
			problems = append(problems, fmt.Sprintf("%s: %.3f allocs/task regresses baseline %.3f",
				name, r.allocsPerTask, e.PR4AllocsPerTask))
		}
	}
	return problems
}

// sortStrings is insertion sort — the entry count is tiny and this keeps
// the import list lean.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func run(baselinePath string, in io.Reader, out io.Writer) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(out, "benchgate: %v\n", err)
		return 2
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(out, "benchgate: %s: %v\n", baselinePath, err)
		return 2
	}
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(out, "benchgate: reading bench output: %v\n", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintln(out, "benchgate: no benchmark results on stdin")
		return 2
	}
	problems := gate(base.Benchmarks, got)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(out, "benchgate: REGRESSION:", p)
		}
		return 1
	}
	fmt.Fprintf(out, "benchgate: %d benchmarks within baseline\n", len(got))
	return 0
}

func main() {
	baseline := flag.String("baseline", "BENCH_SCHED.json", "baseline JSON file")
	flag.Parse()
	os.Exit(run(*baseline, os.Stdin, os.Stderr))
}
