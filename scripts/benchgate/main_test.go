package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: deisago/internal/dask
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSchedSubmit/T8_R8         	       5	    100000 ns/op	       1.020 allocs/task	     500.0 ns/task
BenchmarkSchedDrive/T8_R8-4        	       5	    900000 ns/op	       6.000 allocs/task	    5000 ns/task
BenchmarkUnrelated                 	       5	      1000 ns/op
PASS
ok  	deisago/internal/dask	1.234s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(got), got)
	}
	sub, ok := got["SchedSubmit/T8_R8"]
	if !ok {
		t.Fatalf("SchedSubmit/T8_R8 missing from %v", got)
	}
	if sub.nsPerTask != 500 || sub.allocsPerTask != 1.02 {
		t.Fatalf("SchedSubmit = %+v, want ns 500 allocs 1.02", sub)
	}
	if sub.nsPerOp != 100000 {
		t.Fatalf("SchedSubmit ns/op = %v, want 100000", sub.nsPerOp)
	}
	// Standard-metric-only lines are parsed too (op-schema baselines).
	unrel, ok := got["Unrelated"]
	if !ok || unrel.nsPerOp != 1000 || unrel.allocsPerOp != -1 {
		t.Fatalf("Unrelated = %+v, want ns/op 1000 and no allocs", unrel)
	}
	// The -4 cpu suffix must be stripped.
	drv, ok := got["SchedDrive/T8_R8"]
	if !ok {
		t.Fatalf("SchedDrive/T8_R8 (cpu suffix) missing from %v", got)
	}
	if drv.nsPerTask != 5000 || drv.allocsPerTask != 6 {
		t.Fatalf("SchedDrive = %+v, want ns 5000 allocs 6", drv)
	}
}

func TestParseBenchBestOfN(t *testing.T) {
	// -count=N emits the same benchmark several times; the gate keeps
	// the minimum per metric so one contended repetition cannot flake it.
	const repeated = `
BenchmarkSchedSubmit/T8_R8   	5	120000 ns/op	1.020 allocs/task	600.0 ns/task
BenchmarkSchedSubmit/T8_R8   	5	100000 ns/op	1.025 allocs/task	480.0 ns/task
BenchmarkSchedSubmit/T8_R8   	5	110000 ns/op	1.020 allocs/task	530.0 ns/task
BenchmarkUnrelated           	5	  1500 ns/op
BenchmarkUnrelated           	5	  1200 ns/op
`
	got, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	sub := got["SchedSubmit/T8_R8"]
	if sub.nsPerTask != 480 || sub.allocsPerTask != 1.02 || sub.nsPerOp != 100000 {
		t.Fatalf("best-of-3 = %+v, want ns/task 480, allocs 1.02, ns/op 100000", sub)
	}
	if unrel := got["Unrelated"]; unrel.nsPerOp != 1200 || unrel.allocsPerOp != -1 {
		t.Fatalf("best-of-2 op-only = %+v, want ns/op 1200 and no allocs", unrel)
	}
}

func TestGate(t *testing.T) {
	base := map[string]entry{
		"BenchmarkSchedSubmit/T8_R8": {PR4NsPerTask: 500, PR4AllocsPerTask: 1.0},
		"BenchmarkSchedDrive/T8_R8":  {PR4NsPerTask: 5000, PR4AllocsPerTask: 6.0},
		"BenchmarkSeedOnly":          {}, // no pr4 numbers: never gated
	}
	ok := map[string]result{
		"SchedSubmit/T8_R8": {nsPerTask: 560, allocsPerTask: 1.04}, // +12% ns, +eps allocs
		"SchedDrive/T8_R8":  {nsPerTask: 4000, allocsPerTask: 5.5},
	}
	if problems := gate(base, ok); len(problems) != 0 {
		t.Fatalf("within-slack run flagged: %v", problems)
	}

	bad := map[string]result{
		"SchedSubmit/T8_R8": {nsPerTask: 600, allocsPerTask: 1.0},  // +20% ns
		"SchedDrive/T8_R8":  {nsPerTask: 5000, allocsPerTask: 6.2}, // alloc regression
	}
	problems := gate(base, bad)
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want ns and alloc regressions", problems)
	}
	if !strings.Contains(problems[1], "ns/task") || !strings.Contains(problems[0], "allocs/task") {
		t.Fatalf("unexpected problem messages: %v", problems)
	}

	missing := map[string]result{
		"SchedSubmit/T8_R8": {nsPerTask: 500, allocsPerTask: 1.0},
	}
	problems = gate(base, missing)
	if len(problems) != 1 || !strings.Contains(problems[0], "no measurement") {
		t.Fatalf("missing bench not flagged: %v", problems)
	}
}

func TestGateOpMetrics(t *testing.T) {
	base := map[string]entry{
		"BenchmarkResourceAcquire/compacted": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkSummarize":                 {NsPerOp: 500}, // no alloc baseline: ns-only gate
	}
	ok := map[string]result{
		"ResourceAcquire/compacted": {nsPerOp: 1100, allocsPerOp: 101}, // +10% ns, +1% allocs
		"Summarize":                 {nsPerOp: 540, allocsPerOp: 9999},
	}
	if problems := gate(base, ok); len(problems) != 0 {
		t.Fatalf("within-slack op run flagged: %v", problems)
	}
	bad := map[string]result{
		"ResourceAcquire/compacted": {nsPerOp: 1200, allocsPerOp: 103}, // +20% ns, +3% allocs
		"Summarize":                 {nsPerOp: 500, allocsPerOp: 1},
	}
	problems := gate(base, bad)
	if len(problems) != 2 ||
		!strings.Contains(problems[0], "ns/op") || !strings.Contains(problems[1], "allocs/op") {
		t.Fatalf("op regressions not flagged: %v", problems)
	}
}

func TestGateMaxAllocsCap(t *testing.T) {
	zero := 0.0
	two := 2.0
	base := map[string]entry{
		"BenchmarkFabricTransfer/serial":  {NsPerOp: 600, MaxAllocsPerOp: &zero},
		"BenchmarkRegistryLookup/counter": {NsPerOp: 40, MaxAllocsPerOp: &zero},
		"BenchmarkLoose":                  {MaxAllocsPerOp: &two}, // cap-only entry: still gated
		"BenchmarkRelativeOnly":           {NsPerOp: 100, AllocsPerOp: 5},
	}
	ok := map[string]result{
		"FabricTransfer/serial":  {nsPerOp: 550, allocsPerOp: 0, nsPerTask: -1, allocsPerTask: -1},
		"RegistryLookup/counter": {nsPerOp: 30, allocsPerOp: 0.02, nsPerTask: -1, allocsPerTask: -1}, // within eps
		"Loose":                  {nsPerOp: 99999, allocsPerOp: 2, nsPerTask: -1, allocsPerTask: -1},
		"RelativeOnly":           {nsPerOp: 100, allocsPerOp: 5, nsPerTask: -1, allocsPerTask: -1},
	}
	if problems := gate(base, ok); len(problems) != 0 {
		t.Fatalf("within-cap run flagged: %v", problems)
	}
	bad := map[string]result{
		"FabricTransfer/serial":  {nsPerOp: 550, allocsPerOp: 1, nsPerTask: -1, allocsPerTask: -1}, // cap 0 broken
		"RegistryLookup/counter": {nsPerOp: 30, allocsPerOp: -1, nsPerTask: -1, allocsPerTask: -1}, // allocs unmeasured
		"Loose":                  {nsPerOp: 1, allocsPerOp: 3, nsPerTask: -1, allocsPerTask: -1},   // cap 2 broken
		"RelativeOnly":           {nsPerOp: 100, allocsPerOp: 5, nsPerTask: -1, allocsPerTask: -1}, // no cap: fine
	}
	problems := gate(base, bad)
	if len(problems) != 3 {
		t.Fatalf("problems = %v, want cap, unmeasured, and loose-cap violations", problems)
	}
	if !strings.Contains(problems[0], "hard cap") ||
		!strings.Contains(problems[1], "cap 2") ||
		!strings.Contains(problems[2], "measured no allocs/op") {
		t.Fatalf("unexpected problem messages: %v", problems)
	}
}

func TestGateSpeedups(t *testing.T) {
	reqs := map[string]speedup{
		"compaction": {
			Slow: "BenchmarkResourceAcquire/unbounded", Fast: "BenchmarkResourceAcquire/compacted",
			MinRatio: 5,
		},
		"sweep": {
			Slow: "BenchmarkPipelineSweep/serial", Fast: "BenchmarkPipelineSweep/parallel",
			MinRatio: 3, MinCores: 4, FallbackMinRatio: 0.85,
		},
	}
	got := map[string]result{
		"ResourceAcquire/unbounded": {nsPerOp: 100000, nsPerTask: -1},
		"ResourceAcquire/compacted": {nsPerOp: 3000, nsPerTask: -1},
		"PipelineSweep/serial":      {nsPerOp: 20000, nsPerTask: -1},
		"PipelineSweep/parallel":    {nsPerOp: 19000, nsPerTask: -1},
	}
	// On a 1-core machine the sweep claim falls back to "not slower".
	if problems := gateSpeedups(reqs, got, 1); len(problems) != 0 {
		t.Fatalf("1-core run flagged: %v", problems)
	}
	// On 4 cores the full x3 is demanded and x1.05 fails.
	problems := gateSpeedups(reqs, got, 4)
	if len(problems) != 1 || !strings.Contains(problems[0], "speedup sweep") {
		t.Fatalf("4-core sweep claim not enforced: %v", problems)
	}
	// A collapsed compaction ratio fails everywhere.
	got["ResourceAcquire/unbounded"] = result{nsPerOp: 6000, nsPerTask: -1}
	problems = gateSpeedups(reqs, got, 1)
	if len(problems) != 1 || !strings.Contains(problems[0], "speedup compaction") {
		t.Fatalf("compaction ratio not enforced: %v", problems)
	}
	// Missing measurements are themselves violations.
	delete(got, "PipelineSweep/parallel")
	problems = gateSpeedups(reqs, got, 1)
	if len(problems) != 2 || !strings.Contains(problems[1], "missing") {
		t.Fatalf("missing speedup bench not flagged: %v", problems)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(baseline, []byte(`{
		"benchmarks": {
			"BenchmarkSchedSubmit/T8_R8": {"pr4_ns_per_task": 500, "pr4_allocs_per_task": 1.0},
			"BenchmarkSchedDrive/T8_R8": {"pr4_ns_per_task": 5000, "pr4_allocs_per_task": 6.0}
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run(baseline, strings.NewReader(sampleBench), &out); code != 0 {
		t.Fatalf("run = %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "3 benchmarks within baseline") {
		t.Fatalf("unexpected output: %s", out.String())
	}

	out.Reset()
	if code := run(baseline, strings.NewReader("PASS\n"), &out); code != 2 {
		t.Fatalf("empty bench output: run = %d, want 2", code)
	}
	out.Reset()
	if code := run(filepath.Join(dir, "nope.json"), strings.NewReader(sampleBench), &out); code != 2 {
		t.Fatalf("missing baseline: run = %d, want 2", code)
	}
	out.Reset()
	if err := os.WriteFile(baseline, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run(baseline, strings.NewReader(sampleBench), &out); code != 2 {
		t.Fatalf("corrupt baseline: run = %d, want 2", code)
	}
}
