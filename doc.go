// Package deisago is a from-scratch Go reproduction of "Dask-Extended
// External Tasks for HPC/ML In Transit Workflows" (Gueroudji, Bigot,
// Raffin, Ross — SC-W 2023): a bridging model that couples MPI+X
// simulations with Dask-style distributed task-based analytics through
// external tasks — tasks the scheduler knows about but that are executed
// by the simulation, whose results are pushed directly into worker
// memory.
//
// The repository contains the complete system the paper describes plus
// every substrate it depends on, all implemented on the Go standard
// library only:
//
//   - internal/core — the contribution: external-task integration, deisa
//     virtual arrays, the naming scheme, bridges, the adaptor, contracts,
//     and the PDI deisa plugin;
//   - internal/dask — a Dask.distributed-like runtime (scheduler state
//     machine, workers, clients, scatter, futures, Variables, Queues,
//     heartbeats) extended with the external task state;
//   - internal/mpi, internal/sim — the message-passing substrate and the
//     Heat2D miniapp;
//   - internal/pdi — the PDI data interface with a YAML-subset parser and
//     $-expression evaluator (Listing 1);
//   - internal/ml, internal/linalg, internal/ndarray — incremental PCA
//     (old per-batch and new whole-graph drivers), SVD/QR, and dense
//     n-dimensional arrays;
//   - internal/netsim, internal/pfs, internal/h5, internal/cluster,
//     internal/vtime — the simulated platform: pruned fat-tree fabric,
//     Lustre-like parallel file system, HDF5-like chunked containers,
//     node allocation, and virtual-time accounting;
//   - internal/harness — end-to-end workflow runs for the five compared
//     systems and generators for every figure of the evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each figure at reduced
// scale; cmd/experiments reproduces them at paper scale.
package deisago
