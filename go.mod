module deisago

go 1.22
