// Package cluster models batch-scheduler node allocation and process
// placement for the simulated platform.
//
// The paper's runs were submitted through Slurm on Irene: each run gets an
// allocation of nodes whose physical location (leaf switch) is outside the
// user's control, and processes are laid out deterministically inside the
// allocation — "the scheduler is launched in the first node of the
// allocation and the client in the second node; the workers are launched
// starting from the third node, and then the simulation processes are
// launched in the rest of the nodes" (§3.3.2). Both facts matter for the
// reproduced figures: placement determines hop counts, and allocations
// differing between runs produce the per-rank variability of Figure 5.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"deisago/internal/netsim"
)

// Machine is a whole supercomputer partition from which allocations are
// drawn. It owns the network fabric.
type Machine struct {
	fabric *netsim.Fabric
	cores  int // cores per node, for core-hour accounting
}

// NewMachine builds a machine with numNodes nodes, coresPerNode cores per
// node, and the given fabric configuration.
func NewMachine(cfg netsim.Config, numNodes, coresPerNode int) *Machine {
	if coresPerNode <= 0 {
		panic("cluster: coresPerNode must be positive")
	}
	return &Machine{fabric: netsim.New(cfg, numNodes), cores: coresPerNode}
}

// Fabric returns the machine's interconnect.
func (m *Machine) Fabric() *netsim.Fabric { return m.fabric }

// CoresPerNode returns the number of cores on each node.
func (m *Machine) CoresPerNode() int { return m.cores }

// NumNodes returns the machine size.
func (m *Machine) NumNodes() int { return m.fabric.NumNodes() }

// Allocation is an ordered set of machine nodes granted to one run.
// Index 0 is "the first node of the allocation".
type Allocation struct {
	machine *Machine
	nodes   []netsim.NodeID
}

// Allocate draws n distinct nodes from the machine. The choice is
// pseudo-random (seeded, reproducible) and returned in ascending node-ID
// order, matching how Slurm presents hostlists. Different seeds model
// different submissions; the same seed models Slurm handing back the same
// allocation, which the paper observed across some of its runs.
func (m *Machine) Allocate(n int, seed int64) *Allocation {
	if n <= 0 || n > m.NumNodes() {
		panic(fmt.Sprintf("cluster: cannot allocate %d of %d nodes", n, m.NumNodes()))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(m.NumNodes())[:n]
	sort.Ints(perm)
	nodes := make([]netsim.NodeID, n)
	for i, p := range perm {
		nodes[i] = netsim.NodeID(p)
	}
	return &Allocation{machine: m, nodes: nodes}
}

// Machine returns the machine this allocation came from.
func (a *Allocation) Machine() *Machine { return a.machine }

// Size returns the number of allocated nodes.
func (a *Allocation) Size() int { return len(a.nodes) }

// Node maps an allocation-relative index to a physical node.
func (a *Allocation) Node(i int) netsim.NodeID {
	if i < 0 || i >= len(a.nodes) {
		panic(fmt.Sprintf("cluster: allocation index %d out of range [0,%d)", i, len(a.nodes)))
	}
	return a.nodes[i]
}

// Nodes returns a copy of the allocated node list.
func (a *Allocation) Nodes() []netsim.NodeID {
	out := make([]netsim.NodeID, len(a.nodes))
	copy(out, a.nodes)
	return out
}

// Switches returns the number of distinct leaf switches spanned by the
// allocation — the quantity the paper correlates with Figure 5
// variability.
func (a *Allocation) Switches() int {
	seen := map[int]bool{}
	for _, n := range a.nodes {
		seen[a.machine.fabric.Leaf(n)] = true
	}
	return len(seen)
}

// Placement assigns every workflow process to a physical node following
// the paper's layout.
type Placement struct {
	SchedulerNode netsim.NodeID
	ClientNode    netsim.NodeID
	WorkerNodes   []netsim.NodeID // worker i runs on WorkerNodes[i]
	RankNodes     []netsim.NodeID // MPI rank r runs on RankNodes[r]
}

// Layout describes how many processes of each kind to place.
type Layout struct {
	Workers        int
	WorkersPerNode int
	Ranks          int
	RanksPerNode   int
}

// NodesNeeded returns the allocation size Layout requires: one node for
// the scheduler, one for the client, then worker nodes, then rank nodes.
func (l Layout) NodesNeeded() int {
	if l.WorkersPerNode <= 0 || l.RanksPerNode <= 0 {
		panic("cluster: processes-per-node must be positive")
	}
	w := (l.Workers + l.WorkersPerNode - 1) / l.WorkersPerNode
	r := (l.Ranks + l.RanksPerNode - 1) / l.RanksPerNode
	return 2 + w + r
}

// Place lays the workflow out on the allocation: scheduler on node 0,
// client on node 1, workers packed from node 2, simulation ranks packed
// after the workers.
func (a *Allocation) Place(l Layout) Placement {
	need := l.NodesNeeded()
	if a.Size() < need {
		panic(fmt.Sprintf("cluster: allocation of %d nodes, layout needs %d", a.Size(), need))
	}
	p := Placement{
		SchedulerNode: a.Node(0),
		ClientNode:    a.Node(1),
	}
	next := 2
	for i := 0; i < l.Workers; i++ {
		p.WorkerNodes = append(p.WorkerNodes, a.Node(next+i/l.WorkersPerNode))
	}
	next += (l.Workers + l.WorkersPerNode - 1) / l.WorkersPerNode
	for r := 0; r < l.Ranks; r++ {
		p.RankNodes = append(p.RankNodes, a.Node(next+r/l.RanksPerNode))
	}
	return p
}

// CoreHours converts a duration in virtual seconds on n nodes of this
// machine into core-hours, the cost unit of the paper's Figure 4.
func (m *Machine) CoreHours(seconds float64, nodes int) float64 {
	return seconds / 3600 * float64(nodes*m.cores)
}
