package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"deisago/internal/netsim"
)

func testMachine(nodes int) *Machine {
	cfg := netsim.Config{
		NodesPerSwitch:  4,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	return NewMachine(cfg, nodes, 48)
}

func TestAllocateDistinctSorted(t *testing.T) {
	m := testMachine(64)
	a := m.Allocate(16, 3)
	if a.Size() != 16 {
		t.Fatalf("Size = %d", a.Size())
	}
	seen := map[netsim.NodeID]bool{}
	prev := netsim.NodeID(-1)
	for i := 0; i < a.Size(); i++ {
		n := a.Node(i)
		if seen[n] {
			t.Fatalf("duplicate node %d", n)
		}
		seen[n] = true
		if n <= prev {
			t.Fatalf("nodes not sorted: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestAllocateReproducible(t *testing.T) {
	m := testMachine(64)
	a := m.Allocate(8, 42)
	b := m.Allocate(8, 42)
	for i := 0; i < 8; i++ {
		if a.Node(i) != b.Node(i) {
			t.Fatal("same seed gave different allocations")
		}
	}
	c := m.Allocate(8, 43)
	same := true
	for i := 0; i < 8; i++ {
		if a.Node(i) != c.Node(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical allocations (suspicious)")
	}
}

func TestAllocateWholeMachine(t *testing.T) {
	m := testMachine(8)
	a := m.Allocate(8, 1)
	for i := 0; i < 8; i++ {
		if a.Node(i) != netsim.NodeID(i) {
			t.Fatalf("whole-machine allocation should be identity, got Node(%d)=%d", i, a.Node(i))
		}
	}
}

func TestSwitches(t *testing.T) {
	m := testMachine(16) // 4 leaves
	a := m.Allocate(16, 1)
	if got := a.Switches(); got != 4 {
		t.Fatalf("Switches = %d, want 4", got)
	}
}

func TestLayoutNodesNeeded(t *testing.T) {
	l := Layout{Workers: 5, WorkersPerNode: 2, Ranks: 8, RanksPerNode: 2}
	// 2 + ceil(5/2)=3 + ceil(8/2)=4 -> 9
	if got := l.NodesNeeded(); got != 9 {
		t.Fatalf("NodesNeeded = %d, want 9", got)
	}
}

func TestPlaceLayout(t *testing.T) {
	m := testMachine(32)
	l := Layout{Workers: 4, WorkersPerNode: 2, Ranks: 6, RanksPerNode: 2}
	a := m.Allocate(l.NodesNeeded(), 1)
	p := a.Place(l)
	if p.SchedulerNode != a.Node(0) {
		t.Fatal("scheduler not on first node")
	}
	if p.ClientNode != a.Node(1) {
		t.Fatal("client not on second node")
	}
	if len(p.WorkerNodes) != 4 || len(p.RankNodes) != 6 {
		t.Fatalf("lengths: %d workers %d ranks", len(p.WorkerNodes), len(p.RankNodes))
	}
	// Workers 0,1 share node 2; workers 2,3 share node 3.
	if p.WorkerNodes[0] != a.Node(2) || p.WorkerNodes[1] != a.Node(2) ||
		p.WorkerNodes[2] != a.Node(3) || p.WorkerNodes[3] != a.Node(3) {
		t.Fatalf("worker packing wrong: %v", p.WorkerNodes)
	}
	// Ranks start after worker nodes (node 4).
	if p.RankNodes[0] != a.Node(4) || p.RankNodes[1] != a.Node(4) || p.RankNodes[2] != a.Node(5) {
		t.Fatalf("rank packing wrong: %v", p.RankNodes)
	}
}

func TestPlacePanicsWhenTooSmall(t *testing.T) {
	m := testMachine(32)
	a := m.Allocate(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Place on undersized allocation did not panic")
		}
	}()
	a.Place(Layout{Workers: 4, WorkersPerNode: 1, Ranks: 4, RanksPerNode: 1})
}

func TestCoreHours(t *testing.T) {
	m := testMachine(8) // 48 cores/node
	got := m.CoreHours(3600, 2)
	if math.Abs(got-96) > 1e-12 {
		t.Fatalf("CoreHours(1h, 2 nodes) = %v, want 96", got)
	}
}

// Property: any valid layout placed on a big-enough allocation assigns
// every process to an allocated node, with no more than the configured
// processes per node.
func TestPlaceQuick(t *testing.T) {
	m := testMachine(256)
	f := func(w, r uint8) bool {
		l := Layout{
			Workers:        int(w%16) + 1,
			WorkersPerNode: 2,
			Ranks:          int(r%32) + 1,
			RanksPerNode:   2,
		}
		a := m.Allocate(l.NodesNeeded(), int64(w)*31+int64(r))
		p := a.Place(l)
		alloc := map[netsim.NodeID]int{}
		for _, n := range a.Nodes() {
			alloc[n] = 0
		}
		for _, n := range p.WorkerNodes {
			if _, ok := alloc[n]; !ok {
				return false
			}
			alloc[n]++
			if alloc[n] > 2 {
				return false
			}
		}
		perNode := map[netsim.NodeID]int{}
		for _, n := range p.RankNodes {
			if _, ok := alloc[n]; !ok {
				return false
			}
			perNode[n]++
			if perNode[n] > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatePanics(t *testing.T) {
	m := testMachine(4)
	for name, fn := range map[string]func(){
		"zero":     func() { m.Allocate(0, 1) },
		"too many": func() { m.Allocate(5, 1) },
		"bad idx":  func() { m.Allocate(2, 1).Node(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
