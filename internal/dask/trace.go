package dask

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"deisago/internal/metrics"
	"deisago/internal/taskgraph"
)

// Task tracing: the virtual-time equivalent of the Dask dashboard's task
// stream. When enabled on a cluster, every task execution records a span
// (key, worker, start/end in virtual seconds); ExportChromeTrace writes
// the spans in the Chrome trace-event format so they can be inspected in
// chrome://tracing or Perfetto.

// TraceEvent is one task-execution span in virtual time. Aborted marks
// a span cut short by a worker kill: the span is closed at the kill
// time and the task produced no result on this worker.
type TraceEvent struct {
	Key     taskgraph.Key
	Worker  int
	Start   float64 // virtual seconds
	End     float64
	Erred   bool
	Aborted bool
}

type tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (t *tracer) add(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// EnableTracing starts recording task-execution spans. Call before
// submitting work.
func (c *Cluster) EnableTracing() {
	c.traceMu.Lock()
	if c.trace == nil {
		c.trace = &tracer{}
	}
	c.traceMu.Unlock()
}

// TraceEvents returns the spans recorded so far, sorted by start time.
func (c *Cluster) TraceEvents() []TraceEvent {
	c.traceMu.Lock()
	tr := c.trace
	c.traceMu.Unlock()
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	out := append([]TraceEvent(nil), tr.events...)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func (c *Cluster) tracer() *tracer {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	return c.trace
}

// chromeEvent is the trace-event JSON schema (subset).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ExportChromeTrace writes the recorded spans as a Chrome trace-event
// JSON array: one complete event ("ph":"X") per task, with the worker as
// the thread. Virtual seconds map to trace microseconds.
func (c *Cluster) ExportChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, c.TraceEvents())
}

// WriteChromeTrace writes spans in the Chrome trace-event format.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return WriteChromeTraceWithMetrics(w, events, nil)
}

// WriteChromeTraceWithMetrics writes the task spans plus, when snap is
// non-nil, one counter track ("ph":"C") per gauge time series — worker
// memory, scheduler queue depths, link utilization — so chrome://tracing
// or Perfetto render them as area charts under the task stream.
func WriteChromeTraceWithMetrics(w io.Writer, events []TraceEvent, snap *metrics.Snapshot) error {
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		cat := "task"
		switch {
		case e.Aborted:
			cat = "aborted"
		case e.Erred:
			cat = "erred"
		}
		out = append(out, chromeEvent{
			Name: string(e.Key),
			Cat:  cat,
			Ph:   "X",
			Ts:   e.Start * 1e6,
			Dur:  (e.End - e.Start) * 1e6,
			Pid:  0,
			Tid:  e.Worker,
			Args: map[string]any{"erred": e.Erred, "aborted": e.Aborted},
		})
	}
	if snap != nil {
		for _, g := range snap.Gauges {
			for _, s := range g.Samples {
				out = append(out, chromeEvent{
					Name: g.ID,
					Cat:  "metric",
					Ph:   "C",
					Ts:   s.T * 1e6,
					Pid:  0,
					Args: map[string]any{"value": s.V},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("dask: trace export: %w", err)
	}
	return nil
}
