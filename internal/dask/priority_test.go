package dask

import (
	"sync"
	"testing"

	"deisago/internal/taskgraph"
)

func TestPriorityOrdersWorkerQueue(t *testing.T) {
	// One worker, many queued tasks; a high-priority (low value) task
	// submitted among low-priority ones must run before queue-mates.
	_, cl := testCluster(t, 1)
	var mu sync.Mutex
	var order []string
	record := func(name string) (any, error) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
		return 0.0, nil
	}
	g := taskgraph.New()
	var targets []taskgraph.Key
	for _, spec := range []struct {
		key      string
		priority int
	}{
		{"low-1", 10}, {"low-2", 10}, {"urgent", -5}, {"low-3", 10},
	} {
		key := taskgraph.Key(spec.key)
		name := spec.key
		task := g.AddFn(key, nil, func([]any) (any, error) { return record(name) }, 1e-3)
		task.Priority = spec.priority
		targets = append(targets, key)
	}
	futs, err := cl.Submit(g, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// The first task may already be executing when "urgent" arrives, but
	// urgent must not run last, and must precede at least two "low" tasks.
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["urgent"] > 1 {
		t.Fatalf("urgent ran at position %d: %v", pos["urgent"], order)
	}
}

func TestReleaseFreesMemory(t *testing.T) {
	c, cl := testCluster(t, 1)
	g := taskgraph.New()
	g.AddFn("r", nil, func([]any) (any, error) { return 7.0, nil }, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"r"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	if items := c.WorkerStatsAll()[0].StoreItems; items != 1 {
		t.Fatalf("store items before release = %d", items)
	}
	if err := cl.Release(futs); err != nil {
		t.Fatal(err)
	}
	if items := c.WorkerStatsAll()[0].StoreItems; items != 0 {
		t.Fatalf("store items after release = %d", items)
	}
	if _, ok := c.sched.taskState("r"); ok {
		t.Fatal("scheduler still tracks released key")
	}
	// The key is reusable after release.
	g2 := taskgraph.New()
	g2.AddFn("r", nil, func([]any) (any, error) { return 8.0, nil }, 1e-4)
	futs2, err := cl.Submit(g2, []taskgraph.Key{"r"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 8 {
		t.Fatalf("reused key = %v", vals[0])
	}
}

func TestReleaseRefusedWithDependents(t *testing.T) {
	_, cl := testCluster(t, 1)
	g := taskgraph.New()
	g.AddFn("base", nil, func([]any) (any, error) { return 1.0, nil }, 1e-4)
	g.AddFn("top", []taskgraph.Key{"base"}, func(in []any) (any, error) { return in[0], nil }, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"top"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	base := &Future{Key: "base", client: cl}
	if err := cl.Release([]*Future{base}); err == nil {
		t.Fatal("released a key with registered dependents")
	}
	// Releasing top first, then base, succeeds.
	if err := cl.Release(futs); err != nil {
		t.Fatal(err)
	}
	if err := cl.Release([]*Future{base}); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnknownKeyIgnored(t *testing.T) {
	_, cl := testCluster(t, 1)
	ghost := &Future{Key: "ghost", client: cl}
	if err := cl.Release([]*Future{ghost}); err != nil {
		t.Fatalf("release of unknown key errored: %v", err)
	}
}
