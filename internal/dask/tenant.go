package dask

import (
	"fmt"
	"sort"
	"strings"

	"deisago/internal/metrics"
	"deisago/internal/taskgraph"
)

// Multi-tenant fair-share layer. A cluster shared by several client
// pipelines registers one tenant per pipeline; every key whose prefix
// (the segment before the first '/') names a registered tenant belongs
// to that tenant, everything else to the catch-all default tenant. The
// ready queue splits into one heap per tenant and pops interleave
// tenants by virtual service deficit (start-time fair queueing): a
// tenant's virtual service advances by 1/weight per served task, the
// scheduler always serves the backlogged tenant with the smallest
// virtual service, and a tenant going idle is caught up on activation
// so sleeping never banks credit. With no tenants registered — every
// single-job cluster — all of this is dormant and the scheduler
// behaves byte-identically to the untenanted build.

// tenantState is one tenant's scheduler-side record. All fields are
// guarded by the owning scheduler's mutex.
type tenantState struct {
	name   string
	weight float64

	// vs is the tenant's virtual service time: it advances by 1/weight
	// per popped task, and pop order always serves the smallest vs among
	// backlogged tenants.
	vs float64
	// ready is the tenant's private runnable heap, same ordering as the
	// global one.
	ready readyQueue

	pops     int64 // tasks served (ready-queue pops)
	resBytes int64 // bytes of this tenant's tasks currently in memory

	popsC     *metrics.Counter
	assignedC *metrics.Counter
	shareG    *metrics.Gauge
	bytesG    *metrics.Gauge
}

// tenantLabel names a tenant for metric labels and error messages (the
// catch-all tenant has the empty name).
func tenantLabel(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// RegisterTenant declares a tenant with the given fair-share weight.
// Keys prefixed "<name>/" submitted, scattered, or created after this
// call are attributed to the tenant; its share of ready-queue service
// is weight-proportional against the other backlogged tenants. The
// first registration also creates the catch-all default tenant (weight
// 1) that owns every unprefixed key. Call before submitting the
// tenant's work.
func (c *Cluster) RegisterTenant(name string, weight float64) error {
	if name == "" || strings.ContainsRune(name, '/') {
		return fmt.Errorf("dask: invalid tenant name %q (non-empty, no '/')", name)
	}
	if weight <= 0 {
		return fmt.Errorf("dask: tenant %q needs a positive weight, got %g", name, weight)
	}
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tenants) == 0 {
		// First registration: create the default tenant and tag every
		// key interned so far (none can belong to a named tenant —
		// names are only now being introduced).
		s.tenantIdx = map[string]int{}
		s.tenants = append(s.tenants, s.newTenantLocked("", 1))
		for range s.keys {
			s.tenantOf = append(s.tenantOf, 0)
		}
		// Blocks already resident belong to the default tenant; seed its
		// byte ledger so the incremental accounting starts balanced.
		for _, st := range s.tasks {
			if st != nil && st.state == StateMemory {
				s.tenants[0].resBytes += st.bytes
			}
		}
		s.tenantsDirty = true
		// Migrate anything already queued into the default tenant's
		// heap (the queue is drained between operations, so this is
		// normally empty).
		for len(s.ready) > 0 {
			it := s.ready[0]
			s.ready.pop()
			s.tenants[0].ready.push(it.priority, it.id)
			s.readyN++
		}
	}
	if _, dup := s.tenantIdx[name]; dup {
		return fmt.Errorf("dask: tenant %q already registered", name)
	}
	s.tenantIdx[name] = len(s.tenants)
	s.tenants = append(s.tenants, s.newTenantLocked(name, weight))
	return nil
}

// newTenantLocked builds a tenant record with its instruments created
// up front, so metric creation order is a function of registration
// order, not of which tenant happens to run first.
func (s *scheduler) newTenantLocked(name string, weight float64) *tenantState {
	lbl := metrics.L("tenant", tenantLabel(name))
	return &tenantState{
		name:      name,
		weight:    weight,
		popsC:     s.cl.reg.Counter("scheduler", "tenant_pops", lbl),
		assignedC: s.cl.reg.Counter("worker", "tenant_tasks", lbl),
		shareG:    s.cl.reg.Gauge("scheduler", "tenant_share", lbl),
		bytesG:    s.cl.reg.Gauge("memory", "tenant_bytes", lbl),
	}
}

// tenantTagLocked returns the tenant index a key belongs to: the
// segment before the first '/' when it names a registered tenant, else
// the default tenant 0. Only meaningful with tenants present.
func (s *scheduler) tenantTagLocked(k taskgraph.Key) int32 {
	if i := strings.IndexByte(string(k), '/'); i > 0 {
		if idx, ok := s.tenantIdx[string(k[:i])]; ok {
			return int32(idx)
		}
	}
	return 0
}

// pushReadyLocked queues a runnable task. Untenanted clusters use the
// global ready heap; with tenants registered the task lands on its
// tenant's heap, and a tenant activating from idle has its virtual
// service caught up to the system virtual time.
func (s *scheduler) pushReadyLocked(priority int, id taskID) {
	if len(s.tenants) == 0 {
		s.ready.push(priority, id)
		return
	}
	t := s.tenants[s.tenantOf[id]]
	if len(t.ready) == 0 && t.vs < s.virtualTime {
		t.vs = s.virtualTime
	}
	t.ready.push(priority, id)
	s.readyN++
}

// readyLenLocked is the number of queued runnable entries across all
// ready heaps.
func (s *scheduler) readyLenLocked() int {
	if len(s.tenants) == 0 {
		return len(s.ready)
	}
	return s.readyN
}

// pickTenantLocked selects the backlogged tenant with the smallest
// virtual service. Production breaks vs ties by tenant name; with a
// TieBreaker installed every tied tenant is a legal pick and the
// breaker chooses through PointTenantPick (candidates in name order).
func (s *scheduler) pickTenantLocked() *tenantState {
	var best *tenantState
	for _, t := range s.tenants {
		if len(t.ready) == 0 {
			continue
		}
		if best == nil || t.vs < best.vs || (t.vs == best.vs && t.name < best.name) {
			best = t
		}
	}
	if tb := s.cl.cfg.TieBreak; tb != nil && best != nil {
		cands := s.tenantCands[:0]
		for _, t := range s.tenants {
			if len(t.ready) > 0 && t.vs == best.vs {
				cands = append(cands, t)
			}
		}
		s.tenantCands = cands
		if len(cands) > 1 {
			sort.Slice(cands, func(i, j int) bool { return cands[i].name < cands[j].name })
			best = cands[clampPick(tb.Pick(Decision{
				Point: PointTenantPick, Key: tenantLabel(cands[0].name), N: len(cands),
			}), len(cands))]
		}
	}
	return best
}

// tenantFlushStride is how many dirty scheduler operations may pass
// between flushes of the derived fairness gauges. The counters (pops,
// assigned tasks) stay exact per operation; only the derived gauges are
// sampled at this stride.
const tenantFlushStride = 16

// FlushTenantGauges forces the throttled per-tenant fairness gauges
// (share, resident bytes, Jain index) to their current values. Harness
// drivers call it right before snapshotting the metrics registry so the
// final gauge values are exact. No-op without tenants.
func (c *Cluster) FlushTenantGauges() {
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tenants) == 0 {
		return
	}
	s.flushTenantGaugesLocked()
	s.tenantsDirty = false
	s.tenantFlushSkip = 0
}

// flushTenantGaugesLocked updates the derived fairness gauges at the
// current operation's handling time: per-tenant service share and
// resident bytes, plus Jain's fairness index over weight-normalized
// service (1.0 = perfectly weight-fair).
func (s *scheduler) flushTenantGaugesLocked() {
	var sumX, sumX2 float64
	n := 0
	for _, t := range s.tenants {
		if s.totalPops > 0 {
			t.shareG.Set(float64(t.pops)/float64(s.totalPops), s.opAt)
		}
		t.bytesG.Set(float64(t.resBytes), s.opAt)
		if t.pops > 0 {
			x := float64(t.pops) / t.weight
			sumX += x
			sumX2 += x * x
			n++
		}
	}
	if s.jainG == nil {
		s.jainG = s.cl.reg.Gauge("scheduler", "fairness_jain")
	}
	jain := 1.0
	if n > 0 && sumX2 > 0 {
		jain = sumX * sumX / (float64(n) * sumX2)
	}
	s.jainG.Set(jain, s.opAt)
}

// auditTenantsLocked checks invariant 9 (tenant isolation): no
// dependency edge crosses a tenant namespace, and each tenant's
// resident-byte ledger equals the recomputed byte sum of its tasks in
// memory.
func (s *scheduler) auditTenantsLocked() {
	if len(s.tenants) == 0 {
		return
	}
	if cap(s.auditTenantB) < len(s.tenants) {
		s.auditTenantB = make([]int64, len(s.tenants))
	}
	sums := s.auditTenantB[:len(s.tenants)]
	for i := range sums {
		sums[i] = 0
	}
	for _, st := range s.tasks {
		if st == nil {
			continue
		}
		tag := s.tenantOf[st.id]
		for _, d := range st.deps {
			if s.tenantOf[d] != tag {
				s.failLocked("task %q (tenant %q) depends on %q (tenant %q): edge crosses tenant namespaces",
					st.key, tenantLabel(s.tenants[tag].name),
					s.keys[d], tenantLabel(s.tenants[s.tenantOf[d]].name))
			}
		}
		if st.state == StateMemory {
			sums[tag] += st.bytes
		}
	}
	for i, t := range s.tenants {
		if t.resBytes != sums[i] {
			s.failLocked("tenant %q resident ledger %d != in-memory byte sum %d",
				tenantLabel(t.name), t.resBytes, sums[i])
		}
	}
}

// TenantStats is one tenant's service snapshot.
type TenantStats struct {
	Name          string  // label name ("default" for the catch-all)
	Weight        float64 // fair-share weight
	Pops          int64   // ready-queue pops served
	Share         float64 // fraction of total pops
	ResidentBytes int64   // bytes of the tenant's results in memory
}

// TenantStatsAll snapshots every registered tenant in registration
// order (the default tenant first). Nil when no tenants are registered.
func (c *Cluster) TenantStatsAll() []TenantStats {
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tenants) == 0 {
		return nil
	}
	out := make([]TenantStats, len(s.tenants))
	for i, t := range s.tenants {
		share := 0.0
		if s.totalPops > 0 {
			share = float64(t.pops) / float64(s.totalPops)
		}
		out[i] = TenantStats{
			Name: tenantLabel(t.name), Weight: t.weight, Pops: t.pops,
			Share: share, ResidentBytes: t.resBytes,
		}
	}
	return out
}

// JainFairness returns Jain's fairness index over the tenants'
// weight-normalized service (pops/weight): 1.0 means every tenant got
// an exactly weight-proportional share; 1/n means one tenant got
// everything. Tenants that were never served are excluded. Returns 1
// when no tenant has been served (or none are registered).
func (c *Cluster) JainFairness() float64 {
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	var sumX, sumX2 float64
	n := 0
	for _, t := range s.tenants {
		if t.pops > 0 {
			x := float64(t.pops) / t.weight
			sumX += x
			sumX2 += x * x
			n++
		}
	}
	if n == 0 || sumX2 == 0 {
		return 1
	}
	return sumX * sumX / (float64(n) * sumX2)
}
