package dask

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"deisago/internal/metrics"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

func TestRegisterTenantValidation(t *testing.T) {
	c, _ := testCluster(t, 1)
	for _, bad := range []struct {
		name   string
		weight float64
	}{
		{"", 1}, {"a/b", 1}, {"ok", 0}, {"ok", -3},
	} {
		if err := c.RegisterTenant(bad.name, bad.weight); err == nil {
			t.Errorf("RegisterTenant(%q, %g) accepted", bad.name, bad.weight)
		}
	}
	if err := c.RegisterTenant("jobA", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTenant("jobA", 1); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	stats := c.TenantStatsAll()
	if len(stats) != 2 || stats[0].Name != "default" || stats[1].Name != "jobA" {
		t.Fatalf("stats = %+v, want [default jobA]", stats)
	}
}

func TestTenantStatsNilWithoutTenants(t *testing.T) {
	c, cl := testCluster(t, 1)
	g := taskgraph.New()
	constTask(g, "x", 1)
	futs, err := cl.Submit(g, []taskgraph.Key{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	if s := c.TenantStatsAll(); s != nil {
		t.Fatalf("untenanted cluster reports tenant stats %+v", s)
	}
	if j := c.JainFairness(); j != 1 {
		t.Fatalf("untenanted Jain = %g, want 1", j)
	}
}

func TestCrossTenantDependencyRejected(t *testing.T) {
	c, cl := testCluster(t, 1)
	for _, name := range []string{"a", "b"} {
		if err := c.RegisterTenant(name, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := taskgraph.New()
	constTask(g, "a/x", 1)
	sumTask(g, "b/y", "a/x")
	if _, err := cl.Submit(g, []taskgraph.Key{"b/y"}); err == nil ||
		!strings.Contains(err.Error(), "cross tenant") {
		t.Fatalf("cross-tenant edge err = %v, want namespace rejection", err)
	}
	// Unprefixed keys belong to the default tenant: depending on a named
	// tenant's key crosses the boundary too.
	g2 := taskgraph.New()
	constTask(g2, "a/x2", 1)
	sumTask(g2, "plain", "a/x2")
	if _, err := cl.Submit(g2, []taskgraph.Key{"plain"}); err == nil ||
		!strings.Contains(err.Error(), "cross tenant") {
		t.Fatalf("default-tenant edge err = %v, want namespace rejection", err)
	}
	// Same-tenant chains stay accepted.
	g3 := taskgraph.New()
	constTask(g3, "a/ok1", 1)
	sumTask(g3, "a/ok2", "a/ok1")
	futs, err := cl.Submit(g3, []taskgraph.Key{"a/ok2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
}

// runTenantContention submits one graph holding nPer equal tasks for
// each of two tenants (disjoint subgraphs) and returns how many of
// tenant a's tasks appear among the first nPer executed spans. All 2n
// tasks enter the ready queues in one submit operation, so the single
// drain pops the whole contended backlog: the pop interleaving — and
// the single worker's execution order — is the weighted fair-share
// policy's.
func runTenantContention(t *testing.T, wa, wb float64, nPer int) int {
	t.Helper()
	c, cl := testCluster(t, 1)
	c.EnableAudit() // exercise the tenant-isolation invariant while at it
	c.EnableTracing()
	if err := c.RegisterTenant("a", wa); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTenant("b", wb); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	var targets []taskgraph.Key
	for _, ten := range []string{"a", "b"} {
		for i := 0; i < nPer; i++ {
			key := taskgraph.Key(ten + "/t" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
			constTask(g, key, 1)
			targets = append(targets, key)
		}
	}
	futs, err := cl.Submit(g, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	aFirst := 0
	seen := 0
	for _, ev := range c.TraceEvents() {
		if strings.HasSuffix(string(ev.Key), "/gate") {
			continue
		}
		if seen++; seen > nPer {
			break
		}
		if strings.HasPrefix(string(ev.Key), "a/") {
			aFirst++
		}
	}
	return aFirst
}

func TestTenantFairShareEqualWeights(t *testing.T) {
	const n = 40
	aFirst := runTenantContention(t, 1, 1, n)
	// Equal weights: the first n executions should split near 50/50.
	if aFirst < n*4/10 || aFirst > n*6/10 {
		t.Fatalf("equal-weight contention served %d/%d of tenant a in the first window, want ~%d", aFirst, n, n/2)
	}
}

func TestTenantFairShareWeighted(t *testing.T) {
	const n = 40
	aFirst := runTenantContention(t, 4, 1, n)
	// Weight 4 vs 1: tenant a should take ~4/5 of the first window.
	if lo, hi := n*7/10, n*9/10; aFirst < lo || aFirst > hi {
		t.Fatalf("4:1 contention served %d/%d of tenant a in the first window, want in [%d,%d]", aFirst, n, lo, hi)
	}
}

// TestTenantNoStarvationProperty: under any weight ratio, both tenants
// appear in the first service window — a backlogged tenant is never
// starved, because idle catch-up bounds the virtual-service gap.
func TestTenantNoStarvationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	cnt := 0
	prop := func(wRaw uint8) bool {
		cnt++
		// Weight ratio from 1:1 up to 16:1.
		w := 1 + float64(wRaw%16)
		const n = 24
		aFirst := runTenantContention(t, w, 1, n)
		// Tenant a holds the higher weight: it must get at least its
		// fair floor, and b (weight 1) must still be served.
		return aFirst >= n/2-2 && aFirst <= n-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestJainFairnessAfterContention(t *testing.T) {
	const n = 30
	c, _ := testCluster(t, 1)
	if err := c.RegisterTenant("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTenant("b", 1); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient("a/client", 1, math.Inf(1))
	cl2 := c.NewClient("b/client", 1, math.Inf(1))
	for ten, client := range map[string]*Client{"a": cl, "b": cl2} {
		g := taskgraph.New()
		targets := make([]taskgraph.Key, 0, n)
		for i := 0; i < n; i++ {
			key := taskgraph.Key(ten + "/t" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
			constTask(g, key, 1)
			targets = append(targets, key)
		}
		futs, err := client.Submit(g, targets)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Wait(futs); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.TenantStatsAll()
	if len(stats) != 3 {
		t.Fatalf("want 3 tenants (default, a, b), got %+v", stats)
	}
	if stats[1].Pops != n || stats[2].Pops != n {
		t.Fatalf("pops = %d/%d, want %d each", stats[1].Pops, stats[2].Pops, n)
	}
	if j := c.JainFairness(); math.Abs(j-1) > 1e-9 {
		t.Fatalf("Jain = %g, want 1 for equal service", j)
	}
}

// lastPickBreaker resolves every tie toward the last candidate and
// records the tenant-pick decisions it was offered.
type lastPickBreaker struct {
	mu    sync.Mutex
	picks []Decision
}

func (b *lastPickBreaker) Pick(d Decision) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if d.Point == PointTenantPick {
		b.picks = append(b.picks, d)
	}
	return d.N - 1
}

func TestTenantTieBreakAndGaugeFlush(t *testing.T) {
	tb := &lastPickBreaker{}
	ncfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(ncfg, 3)
	dcfg := DefaultConfig()
	dcfg.TieBreak = tb
	c := NewCluster(fabric, dcfg, 0, []netsim.NodeID{2})
	defer c.Close()
	c.EnableAudit()
	cl := c.NewClient("client", 1, math.Inf(1))

	c.FlushTenantGauges() // no-op before any tenant exists
	for _, name := range []string{"a", "b"} {
		if err := c.RegisterTenant(name, 1); err != nil {
			t.Fatal(err)
		}
	}
	const n = 10
	g := taskgraph.New()
	var targets []taskgraph.Key
	for _, ten := range []string{"a", "b"} {
		for i := 0; i < n; i++ {
			key := taskgraph.Key(fmt.Sprintf("%s/t%02d", ten, i))
			constTask(g, key, 1)
			targets = append(targets, key)
		}
	}
	futs, err := cl.Submit(g, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	tb.mu.Lock()
	picks := len(tb.picks)
	tb.mu.Unlock()
	// Equal weights and a shared backlog: the two tenants repeatedly tie
	// at the minimal virtual service, and every tie must route through
	// the breaker with both candidates on offer.
	if picks == 0 {
		t.Fatal("tie-breaker saw no tenant-pick decisions under contention")
	}
	c.FlushTenantGauges()
	shareA := c.Metrics().Gauge("scheduler", "tenant_share", metrics.L("tenant", "a")).Value()
	shareB := c.Metrics().Gauge("scheduler", "tenant_share", metrics.L("tenant", "b")).Value()
	if math.Abs(shareA-0.5) > 0.2 || math.Abs(shareA+shareB-1) > 1e-9 {
		t.Fatalf("flushed shares = %g/%g, want ~0.5 each summing to 1", shareA, shareB)
	}
	if j := c.Metrics().Gauge("scheduler", "fairness_jain").Value(); j <= 0 || j > 1 {
		t.Fatalf("flushed Jain gauge = %g, want (0, 1]", j)
	}
}
