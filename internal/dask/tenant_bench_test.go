package dask

import (
	"fmt"
	"testing"

	"deisago/internal/taskgraph"
)

// BenchmarkFairSharePop measures the tenant-aware ready-queue hot path:
// one iteration pushes and pops a contended backlog of 8 tenants × 64
// tasks through pushReadyLocked/popReadyLocked — the start-time
// fair-queueing pick, the per-tenant heap ops, and the service
// accounting. BENCH_MULTIJOB.json pins this path allocation free
// (max_allocs_per_op 0): admission-rate fairness must not put a
// per-task allocation on the scheduler's critical section.
func BenchmarkFairSharePop(b *testing.B) {
	const tenants, perTenant = 8, 64
	c, _ := testClusterQuick(1)
	defer c.Close()
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("ten%d", i)
		if err := c.RegisterTenant(names[i], float64(1+i%4)); err != nil {
			b.Fatal(err)
		}
	}
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]taskID, 0, tenants*perTenant)
	for _, n := range names {
		for j := 0; j < perTenant; j++ {
			ids = append(ids, s.internLocked(taskgraph.Key(fmt.Sprintf("%s/k%04d", n, j))))
		}
	}
	// Warm round: grow every tenant heap to capacity so the timed loop
	// measures steady state.
	for _, id := range ids {
		s.pushReadyLocked(0, id)
	}
	for range ids {
		s.popReadyLocked()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			s.pushReadyLocked(0, id)
		}
		for range ids {
			s.popReadyLocked()
		}
	}
}
