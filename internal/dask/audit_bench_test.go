package dask

import (
	"fmt"
	"testing"
)

// BenchmarkAuditorScan measures one invariant-audit pass over a live
// scheduler state (externals + waiting analytics tasks), the work the
// auditor repeats after every mutation when DEISA_AUDIT=1. The pass is a
// single walk over the dense task table: ns/task should stay flat as
// T×R grows (O(tasks + edges)) and allocs/op must be 0 — no per-op
// sorting or scratch maps.
func BenchmarkAuditorScan(b *testing.B) {
	for _, size := range []struct{ T, R int }{{8, 8}, {32, 32}, {64, 64}} {
		b.Run(fmt.Sprintf("T%d_R%d", size.T, size.R), func(b *testing.B) {
			c, _ := testClusterQuick(schedBenchWorkers)
			defer c.Close()
			c.EnableAudit()
			g, externals, _ := schedBenchGraph(size.T, size.R)
			if _, err := c.sched.createExternal(externals, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := c.sched.submitGraph(g, 0); err != nil {
				b.Fatal(err)
			}
			nTasks := 2*size.T*size.R + 2*size.T // externals + graph tasks
			s := c.sched
			s.mu.Lock()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.auditLocked()
			}
			b.StopTimer()
			s.mu.Unlock()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(nTasks)), "ns/task")
		})
	}
}
