package dask

import (
	"fmt"
	"math"

	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// Client is a process connected to the cluster: the analytics client, or
// — in the deisa model — each simulation-side bridge (the bridge is
// "built in the Dask client class", §2.1). Each client has its own
// virtual clock and an optional heartbeat interval; the paper's DEISA1
// baseline keeps Dask's 5 s default, DEISA2 raises it to 60 s, and DEISA3
// sets it to infinity.
type Client struct {
	name    string
	node    netsim.NodeID
	cluster *Cluster
	clock   *vtime.Clock

	heartbeatInterval vtime.Dur
	lastHeartbeat     vtime.Time

	// dataBuf is scratch for Scatter's dataItem batch. The scheduler's
	// updateData consumes it synchronously inside the roundTrip closure
	// and copies out only field values, so the slice can be reused across
	// calls. A Client is driven by a single actor goroutine.
	dataBuf []dataItem
}

// NewClient connects a client at the given fabric node. heartbeat is the
// interval between heartbeat messages to the scheduler; zero or +Inf
// disables them.
func (c *Cluster) NewClient(name string, node netsim.NodeID, heartbeat vtime.Dur) *Client {
	return &Client{
		name:              name,
		node:              node,
		cluster:           c,
		clock:             vtime.NewClock(0),
		heartbeatInterval: heartbeat,
	}
}

// Name returns the client name.
func (cl *Client) Name() string { return cl.name }

// Clock returns the client's virtual clock.
func (cl *Client) Clock() *vtime.Clock { return cl.clock }

// Now returns the client's current virtual time.
func (cl *Client) Now() vtime.Time { return cl.clock.Now() }

// Compute advances the client's clock by local work.
func (cl *Client) Compute(d vtime.Dur) { cl.clock.Advance(d) }

// Cluster returns the cluster this client is connected to.
func (cl *Client) Cluster() *Cluster { return cl.cluster }

// roundTrip sends a control message of the given size to the scheduler,
// invokes f with its arrival time to obtain the scheduler-side completion
// time, then syncs the client clock with the response arrival.
func (cl *Client) roundTrip(reqBytes int64, f func(arrival vtime.Time) vtime.Time) {
	depart := cl.clock.Now()
	arrival := cl.cluster.xfer(cl.node, cl.cluster.schedNode, reqBytes, depart)
	done := f(arrival)
	reply := cl.cluster.xfer(cl.cluster.schedNode, cl.node, cl.cluster.cfg.ControlMsgBytes, done)
	cl.clock.Sync(reply)
}

// Future is a client-side handle on a task result, mirroring the
// scheduler task of the same key.
type Future struct {
	Key    taskgraph.Key
	client *Client
}

// Submit registers a task graph on the scheduler and returns futures for
// the requested target keys. The graph is culled to the targets first
// (as dask.optimize does). Dependencies that are not in the graph must
// already exist on the scheduler — scattered data or external tasks.
func (cl *Client) Submit(g *taskgraph.Graph, targets []taskgraph.Key) ([]*Future, error) {
	externals := cl.knownExternalDeps(g)
	culled, err := g.Cull(targets, externals)
	if err != nil {
		return nil, err
	}
	reqBytes := cl.cluster.cfg.ControlMsgBytes +
		cl.cluster.cfg.MetadataBytesPerKey*int64(culled.Len())
	var serr error
	cl.roundTrip(reqBytes, func(arrival vtime.Time) vtime.Time {
		done, e := cl.cluster.sched.submitGraph(culled, arrival)
		serr = e
		return done
	})
	if serr != nil {
		return nil, serr
	}
	futs := make([]*Future, len(targets))
	for i, k := range targets {
		futs[i] = &Future{Key: k, client: cl}
	}
	return futs, nil
}

// knownExternalDeps collects graph dependencies that are absent from the
// graph (satisfied by scheduler-resident data) for client-side culling.
func (cl *Client) knownExternalDeps(g *taskgraph.Graph) map[taskgraph.Key]bool {
	ext := map[taskgraph.Key]bool{}
	g.Walk(func(_ taskgraph.Key, t *taskgraph.Task) bool {
		for _, d := range t.Deps {
			if !g.Has(d) {
				ext[d] = true
			}
		}
		return true
	})
	return ext
}

// ExternalFutures creates tasks in the external state for the given keys
// — the deisa-mode future creation of §2.2 ("to create an external task
// we need to create a future by specifying a unique external key and
// setting the external argument to true") — and returns their futures.
func (cl *Client) ExternalFutures(keys []taskgraph.Key) ([]*Future, error) {
	reqBytes := cl.cluster.cfg.ControlMsgBytes +
		cl.cluster.cfg.MetadataBytesPerKey*int64(len(keys))
	var serr error
	cl.roundTrip(reqBytes, func(arrival vtime.Time) vtime.Time {
		done, e := cl.cluster.sched.createExternal(keys, arrival)
		serr = e
		return done
	})
	if serr != nil {
		return nil, serr
	}
	futs := make([]*Future, len(keys))
	for i, k := range keys {
		futs[i] = &Future{Key: k, client: cl}
	}
	return futs, nil
}

// ScatterItem is one value shipped to a worker by Scatter.
type ScatterItem struct {
	Key   taskgraph.Key
	Value any
	// Bytes, when positive, overrides the modelled wire size of the
	// value (used to model paper-scale blocks over small test arrays).
	Bytes int64
}

// Scatter ships values into worker memory and informs the scheduler with
// one update-data message, as the deisa bridges do every timestep. With
// external=true the keys must name existing external tasks, and the
// scheduler runs the finished-task transition path for them; with
// external=false the keys must be fresh, and plain pure-data tasks are
// created (the DEISA1 / classic Dask behaviour).
//
// The call blocks, in virtual time, until both the data transfer to the
// worker and the scheduler's acknowledgment complete — the two
// communications the paper measures as the scatter cost (§3.3.1).
func (cl *Client) Scatter(items []ScatterItem, external bool, workerID int) error {
	if len(items) == 0 {
		return nil
	}
	w := cl.cluster.worker(workerID)
	depart := cl.clock.Now()
	// Memory governance: a limited worker makes room (spilling in
	// virtual time) before the batch ships, or refuses it entirely when
	// a chaos window has squeezed its limit below the batch — the
	// producer's retry/backoff turns that refusal into backpressure.
	if w.governed() {
		var total int64
		for _, it := range items {
			if it.Bytes > 0 {
				total += it.Bytes
			} else {
				total += SizeOf(it.Value)
			}
		}
		admitted, err := w.admit(total, depart)
		if err != nil {
			cl.clock.Sync(admitted)
			return err
		}
		depart = admitted
	}
	// Data messages to the worker.
	var lastData vtime.Time
	if cap(cl.dataBuf) < len(items) {
		cl.dataBuf = make([]dataItem, len(items))
	}
	dataItems := cl.dataBuf[:len(items)]
	for i, it := range items {
		bytes := it.Bytes
		if bytes <= 0 {
			bytes = SizeOf(it.Value)
		}
		// Intern the key at the API boundary: worker stores and the
		// scheduler work on dense task IDs from here on.
		id := cl.cluster.sched.intern(it.Key)
		arrive := cl.cluster.xfer(cl.node, w.node, bytes, depart)
		w.put(id, it.Value, bytes, arrive, external)
		w.mScatter.Add(bytes)
		if arrive > lastData {
			lastData = arrive
		}
		dataItems[i] = dataItem{key: it.Key, id: id, bytes: bytes, worker: workerID, readyAt: arrive}
	}
	// One metadata message to the scheduler.
	reqBytes := cl.cluster.cfg.ControlMsgBytes +
		cl.cluster.cfg.MetadataBytesPerKey*int64(len(items))
	var serr error
	cl.roundTrip(reqBytes, func(arrival vtime.Time) vtime.Time {
		done, e := cl.cluster.sched.updateData(dataItems, external, arrival)
		serr = e
		return done
	})
	cl.clock.Sync(lastData)
	return serr
}

// Persist submits the graph and returns futures without waiting for
// completion — results stay distributed in worker memory (Listing 2's
// client.persist). It is Submit under Dask's name for this pattern.
func (cl *Client) Persist(g *taskgraph.Graph, targets []taskgraph.Key) ([]*Future, error) {
	return cl.Submit(g, targets)
}

// Wait blocks until all futures are in memory and syncs the client clock
// to the latest completion. It returns the first error if any task erred.
func (cl *Client) Wait(futs []*Future) error {
	keys := make([]taskgraph.Key, len(futs))
	for i, f := range futs {
		keys[i] = f.Key
	}
	var werr error
	cl.roundTrip(cl.cluster.cfg.ControlMsgBytes, func(arrival vtime.Time) vtime.Time {
		ready, e := cl.cluster.sched.waitFor(keys, arrival)
		werr = e
		return ready
	})
	return werr
}

// Gather waits for the futures and pulls their values to the client,
// charging worker→client transfers. Results are returned in future order.
func (cl *Client) Gather(futs []*Future) ([]any, error) {
	if err := cl.Wait(futs); err != nil {
		return nil, err
	}
	cl.cluster.counters.GatherRequests.Add(1)
	out := make([]any, len(futs))
	depart := cl.clock.Now()
	var last vtime.Time = depart
	for i, f := range futs {
		wid, id, bytes, readyAt, err := cl.cluster.sched.locate(f.Key)
		if err != nil {
			return nil, err
		}
		w := cl.cluster.worker(wid)
		e := w.fetch(id, depart)
		out[i] = e.value
		from := depart
		if readyAt > from {
			from = readyAt
		}
		if e.readyAt > from {
			from = e.readyAt // unspill read completes before the pull
		}
		arrive := cl.cluster.xfer(w.node, cl.node, bytes, from)
		if arrive > last {
			last = arrive
		}
	}
	cl.clock.Sync(last)
	return out, nil
}

// Result waits for a single future and returns its value.
func (f *Future) Result() (any, error) {
	vals, err := f.client.Gather([]*Future{f})
	if err != nil {
		return nil, err
	}
	return vals[0], nil
}

// State returns the scheduler-side state of the future's task.
func (f *Future) State() (State, bool) {
	return f.client.cluster.sched.taskState(f.Key)
}

// Done reports whether the task has reached a terminal state (memory or
// erred).
func (f *Future) Done() bool {
	st, ok := f.State()
	return ok && (st == StateMemory || st == StateErred)
}

// Release forgets the futures' results: scheduler state is dropped and
// worker memory freed. Releasing a key that other registered tasks still
// depend on is an error; unknown keys are ignored.
func (cl *Client) Release(futs []*Future) error {
	keys := make([]taskgraph.Key, len(futs))
	for i, f := range futs {
		keys[i] = f.Key
	}
	var rerr error
	cl.roundTrip(cl.cluster.cfg.ControlMsgBytes+cl.cluster.cfg.MetadataBytesPerKey*int64(len(keys)),
		func(arrival vtime.Time) vtime.Time {
			done, e := cl.cluster.sched.release(keys, arrival)
			rerr = e
			return done
		})
	return rerr
}

// HeartbeatTick sends any heartbeat messages owed since the last tick,
// based on the client's virtual clock, and returns how many were sent.
// Bridges call this once per simulation iteration; with an infinite
// interval (DEISA3) it never sends anything.
func (cl *Client) HeartbeatTick() int {
	iv := cl.heartbeatInterval
	if iv <= 0 || math.IsInf(iv, 1) {
		return 0
	}
	now := cl.clock.Now()
	n := int((now - cl.lastHeartbeat) / iv)
	if n <= 0 {
		return 0
	}
	cl.lastHeartbeat += vtime.Dur(n) * iv
	arrival := cl.cluster.xfer(cl.node, cl.cluster.schedNode,
		cl.cluster.cfg.ControlMsgBytes*int64(n), now)
	cl.cluster.sched.heartbeat(n, arrival)
	return n
}

// SendMetadata posts a bulk metadata message with the given number of
// entries to the scheduler and blocks until it is processed. The DEISA1
// bridges call this every timestep (the metadata traffic of §2.1).
func (cl *Client) SendMetadata(entries int) {
	reqBytes := cl.cluster.cfg.ControlMsgBytes +
		cl.cluster.cfg.MetadataBytesPerKey*int64(entries)
	cl.roundTrip(reqBytes, func(arrival vtime.Time) vtime.Time {
		return cl.cluster.sched.metadata(entries, arrival)
	})
}

// Variable is a distributed, scheduler-hosted single-value slot — the
// mechanism the new deisa uses to exchange virtual-array descriptors and
// contracts ("two Dask variables, instead of Nbr_ranks distributed
// queues", §2.1).
type Variable struct {
	name   string
	client *Client
}

// Variable returns a handle on the named distributed variable.
func (cl *Client) Variable(name string) *Variable {
	return &Variable{name: name, client: cl}
}

// Set stores a value in the variable.
func (v *Variable) Set(value any) {
	v.client.roundTrip(v.client.cluster.cfg.ControlMsgBytes+SizeOf(value),
		func(arrival vtime.Time) vtime.Time {
			return v.client.cluster.sched.varSet(v.name, value, arrival)
		})
}

// Get blocks until the variable is set and returns its value.
func (v *Variable) Get() any {
	var out any
	v.client.roundTrip(v.client.cluster.cfg.ControlMsgBytes,
		func(arrival vtime.Time) vtime.Time {
			val, avail := v.client.cluster.sched.varGet(v.name, arrival)
			out = val
			return avail
		})
	return out
}

// Queue is a distributed, scheduler-hosted FIFO — the coordination
// mechanism of the DEISA1 baseline (one queue per MPI rank).
type Queue struct {
	name   string
	client *Client
}

// Queue returns a handle on the named distributed queue.
func (cl *Client) Queue(name string) *Queue {
	return &Queue{name: name, client: cl}
}

// Put appends a value to the queue.
func (q *Queue) Put(value any) {
	q.client.roundTrip(q.client.cluster.cfg.ControlMsgBytes+SizeOf(value),
		func(arrival vtime.Time) vtime.Time {
			return q.client.cluster.sched.queuePut(q.name, value, arrival)
		})
}

// Get blocks until the queue is non-empty and pops its head.
func (q *Queue) Get() any {
	var out any
	q.client.roundTrip(q.client.cluster.cfg.ControlMsgBytes,
		func(arrival vtime.Time) vtime.Time {
			val, avail := q.client.cluster.sched.queueGet(q.name, arrival)
			out = val
			return avail
		})
	return out
}

// String describes the future.
func (f *Future) String() string {
	st, ok := f.State()
	if !ok {
		return fmt.Sprintf("Future(%s, unknown)", f.Key)
	}
	return fmt.Sprintf("Future(%s, %s)", f.Key, st)
}
