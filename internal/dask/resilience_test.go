package dask

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deisago/internal/taskgraph"
)

func TestKillWorkerRecomputesFromLineage(t *testing.T) {
	c, cl := testCluster(t, 2)
	var aRuns atomic.Int64
	g := taskgraph.New()
	g.AddFn("a", nil, func([]any) (any, error) {
		aRuns.Add(1)
		return 21.0, nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	owner, _, _, _, err := c.sched.locate("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(owner, cl.Now()); err != nil {
		t.Fatal(err)
	}
	// The result is gone; the scheduler must have replanned "a" and
	// recomputed it on the surviving worker.
	g2 := taskgraph.New()
	g2.AddFn("b", []taskgraph.Key{"a"}, func(in []any) (any, error) {
		return in[0].(float64) * 2, nil
	}, 1e-4)
	futs2, err := cl.Submit(g2, []taskgraph.Key{"b"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 42 {
		t.Fatalf("b = %v, want 42", vals[0])
	}
	if aRuns.Load() != 2 {
		t.Fatalf("a executed %d times, want 2 (original + recompute)", aRuns.Load())
	}
	newOwner, _, _, _, err := c.sched.locate("a")
	if err != nil {
		t.Fatal(err)
	}
	if newOwner == owner {
		t.Fatal("recomputed result placed on the dead worker")
	}
}

func TestKillWorkerLosesScatteredData(t *testing.T) {
	c, cl := testCluster(t, 2)
	if err := cl.Scatter([]ScatterItem{{Key: "d", Value: 1.0}}, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, cl.Now()); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	g.AddFn("use", []taskgraph.Key{"d"}, func(in []any) (any, error) { return in[0], nil }, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"use"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gather(futs); err == nil {
		t.Fatal("lost scattered data should err dependents")
	}
}

func TestKillWorkerExternalDataRepublished(t *testing.T) {
	// External data lost with a worker returns to the external state; the
	// bridge republished it and the pending graph completes.
	c, cl := testCluster(t, 2)
	if _, err := cl.ExternalFutures([]taskgraph.Key{"ext"}); err != nil {
		t.Fatal(err)
	}
	bridge := c.NewClient("bridge", 1, math.Inf(1))
	if err := bridge.Scatter([]ScatterItem{{Key: "ext", Value: 3.0}}, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, bridge.Now()); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.sched.taskState("ext"); st != StateExternal {
		t.Fatalf("lost external task state = %v, want external", st)
	}
	// A graph depending on it stays pending until the bridge republishes.
	g := taskgraph.New()
	g.AddFn("use", []taskgraph.Key{"ext"}, func(in []any) (any, error) {
		return in[0].(float64) + 1, nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"use"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var gathered []any
	var gerr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		gathered, gerr = cl.Gather(futs)
	}()
	if err := bridge.Scatter([]ScatterItem{{Key: "ext", Value: 3.0}}, true, 1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if gerr != nil {
		t.Fatal(gerr)
	}
	if gathered[0].(float64) != 4 {
		t.Fatalf("use = %v, want 4", gathered[0])
	}
}

func TestKillWorkerReassignsQueuedWork(t *testing.T) {
	c, cl := testCluster(t, 2)
	// Many root tasks spread round-robin; kill worker 0 immediately, then
	// everything must still complete on worker 1.
	g := taskgraph.New()
	var targets []taskgraph.Key
	for i := 0; i < 8; i++ {
		key := taskgraph.Key(rune('a' + i))
		v := float64(i)
		g.AddFn(key, nil, func([]any) (any, error) { return v, nil }, 1e-3)
		targets = append(targets, key)
	}
	futs, err := cl.Submit(g, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, 0); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.(float64) != float64(i) {
			t.Fatalf("vals[%d] = %v", i, v)
		}
	}
}

func TestKillWorkerGuards(t *testing.T) {
	c, _ := testCluster(t, 2)
	if err := c.KillWorker(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, 0); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := c.KillWorker(1, 0); err == nil {
		t.Fatal("killed the last worker")
	}
}

func TestKillWorkerDeepLineage(t *testing.T) {
	// A chain a->b->c where all results lived on the dead worker: the
	// whole lineage recomputes.
	c, cl := testCluster(t, 2)
	var runs atomic.Int64
	g := taskgraph.New()
	g.AddFn("a", nil, func([]any) (any, error) { runs.Add(1); return 1.0, nil }, 1e-4)
	g.AddFn("b", []taskgraph.Key{"a"}, func(in []any) (any, error) {
		runs.Add(1)
		return in[0].(float64) + 1, nil
	}, 1e-4)
	g.AddFn("c", []taskgraph.Key{"b"}, func(in []any) (any, error) {
		runs.Add(1)
		return in[0].(float64) + 1, nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	owner, _, _, _, _ := c.sched.locate("c")
	if err := c.KillWorker(owner, cl.Now()); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 3 {
		t.Fatalf("c = %v, want 3", vals[0])
	}
	if runs.Load() < 4 {
		t.Fatalf("lineage did not recompute: %d runs", runs.Load())
	}
}

func TestCascadingKillTwoOfThree(t *testing.T) {
	// Kill 2 of 3 workers while a fan-in graph is mid-flight: everything
	// must recompute onto the lone survivor.
	c, cl := testCluster(t, 3)
	c.EnableAudit()
	var runs atomic.Int64
	g := taskgraph.New()
	var roots []taskgraph.Key
	for i := 0; i < 9; i++ {
		key := taskgraph.Key(fmt.Sprintf("r%d", i))
		v := float64(i)
		g.AddFn(key, nil, func([]any) (any, error) {
			runs.Add(1)
			return v, nil
		}, 1e-3)
		roots = append(roots, key)
	}
	g.AddFn("sum", roots, func(in []any) (any, error) {
		total := 0.0
		for _, v := range in {
			total += v.(float64)
		}
		return total, nil
	}, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"sum"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, cl.Now()); err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(1, cl.Now()); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 36 {
		t.Fatalf("sum = %v, want 36", vals[0])
	}
	if got := c.LiveWorkers(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("LiveWorkers = %v, want [2]", got)
	}
	if owner, _, _, _, err := c.sched.locate("sum"); err != nil || owner != 2 {
		t.Fatalf("sum owner = %d (%v), want survivor 2", owner, err)
	}
}

func TestKillDuringWaitFor(t *testing.T) {
	// A client blocks in Wait while the worker executing the target is
	// killed mid-task: the abort must not report a completion, and the
	// recompute on the survivor must wake the waiter with the result.
	c, cl := testCluster(t, 2)
	c.EnableAudit()
	started := make(chan int, 4)
	release := make(chan struct{})
	var once sync.Once
	g := taskgraph.New()
	g.AddFn("slow", nil, func([]any) (any, error) {
		started <- 1
		<-release
		return 7.0, nil
	}, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"slow"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- cl.Wait(futs)
	}()
	<-started // task body is running on its worker
	c.sched.mu.Lock()
	victim := c.sched.lookupLocked("slow").worker
	c.sched.mu.Unlock()
	if err := c.KillWorker(victim, cl.Now()); err != nil {
		t.Fatal(err)
	}
	once.Do(func() { close(release) })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 7 {
		t.Fatalf("slow = %v, want 7", vals[0])
	}
	owner, _, _, _, err := c.sched.locate("slow")
	if err != nil {
		t.Fatal(err)
	}
	if owner == victim {
		t.Fatalf("result owned by killed worker %d", victim)
	}
}

func TestKillExternalOwnerBeforeDependentRuns(t *testing.T) {
	// The worker holding an external block dies right after the dependent
	// was assigned: the dependent is replanned, the block republished, and
	// the dependent completes with the correct value.
	c, cl := testCluster(t, 2)
	c.EnableAudit()
	if _, err := cl.ExternalFutures([]taskgraph.Key{"ext"}); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	g.AddFn("use", []taskgraph.Key{"ext"}, func(in []any) (any, error) {
		return in[0].(float64) * 10, nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"use"})
	if err != nil {
		t.Fatal(err)
	}
	bridge := c.NewClient("bridge", 1, math.Inf(1))
	if err := bridge.Scatter([]ScatterItem{{Key: "ext", Value: 4.0}}, true, 0); err != nil {
		t.Fatal(err)
	}
	// Kill the owner immediately — racing the dependent's fetch/exec.
	if err := c.KillWorker(0, bridge.Now()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var vals []any
	var gerr error
	go func() {
		defer close(done)
		vals, gerr = cl.Gather(futs)
	}()
	// Republish if the scheduler reports the block lost; the dependent may
	// also have completed from the fetched copy before the kill landed.
	if st, _ := c.sched.taskState("ext"); st == StateExternal {
		if err := bridge.Scatter([]ScatterItem{{Key: "ext", Value: 4.0}}, true, 1); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if gerr != nil {
		t.Fatal(gerr)
	}
	if vals[0].(float64) != 40 {
		t.Fatalf("use = %v, want 40", vals[0])
	}
}

// TestResilienceSweepWorkers runs a diamond graph plus an external
// publish across worker counts {1, 2, 8}, killing one worker mid-run
// where the cluster size permits, with the auditor on throughout.
func TestResilienceSweepWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 8} {
		n := n
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			c, cl := testCluster(t, n)
			c.EnableAudit()
			if _, err := cl.ExternalFutures([]taskgraph.Key{"ext"}); err != nil {
				t.Fatal(err)
			}
			bridge := c.NewClient("bridge", 1, math.Inf(1))
			if err := bridge.Scatter([]ScatterItem{{Key: "ext", Value: 5.0}}, true, n-1); err != nil {
				t.Fatal(err)
			}
			g := taskgraph.New()
			g.AddFn("left", []taskgraph.Key{"ext"}, func(in []any) (any, error) {
				return in[0].(float64) + 1, nil
			}, 1e-3)
			g.AddFn("right", []taskgraph.Key{"ext"}, func(in []any) (any, error) {
				return in[0].(float64) * 2, nil
			}, 1e-3)
			g.AddFn("join", []taskgraph.Key{"left", "right"}, func(in []any) (any, error) {
				return in[0].(float64) + in[1].(float64), nil
			}, 1e-3)
			futs, err := cl.Submit(g, []taskgraph.Key{"join"})
			if err != nil {
				t.Fatal(err)
			}
			if n > 1 {
				if err := c.KillWorker(0, cl.Now()); err != nil {
					t.Fatal(err)
				}
				if st, _ := c.sched.taskState("ext"); st == StateExternal {
					if err := bridge.Scatter([]ScatterItem{{Key: "ext", Value: 5.0}}, true, n-1); err != nil {
						t.Fatal(err)
					}
				}
			}
			vals, err := cl.Gather(futs)
			if err != nil {
				t.Fatal(err)
			}
			if vals[0].(float64) != 16 {
				t.Fatalf("join = %v, want 16", vals[0])
			}
			if !c.AuditEnabled() || len(c.AuditLog()) == 0 {
				t.Fatal("auditor recorded no transitions")
			}
		})
	}
}

func TestKillWorkerAbortsTraceSpan(t *testing.T) {
	// A kill mid-task must close the in-flight span as aborted (end
	// clamped to the kill time) so ExportChromeTrace stays well-formed,
	// and the recompute gets its own normal span.
	c, cl := testCluster(t, 2)
	c.EnableTracing()
	started := make(chan int, 4)
	release := make(chan struct{})
	var once sync.Once
	g := taskgraph.New()
	g.AddFn("victim", nil, func([]any) (any, error) {
		started <- 1
		<-release
		return 1.0, nil
	}, 5.0) // long virtual span so the kill time falls inside it
	futs, err := cl.Submit(g, []taskgraph.Key{"victim"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	c.sched.mu.Lock()
	victim := c.sched.lookupLocked("victim").worker
	c.sched.mu.Unlock()
	if err := c.KillWorker(victim, 1.0); err != nil {
		t.Fatal(err)
	}
	once.Do(func() { close(release) })
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	// Wait only syncs with the survivor's completion; the killed worker's
	// goroutine records its aborted span concurrently. Poll until it lands.
	var events []TraceEvent
	for deadline := time.Now().Add(5 * time.Second); ; {
		events = c.TraceEvents()
		found := false
		for _, e := range events {
			if e.Aborted {
				found = true
				break
			}
		}
		if found || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var aborted, completed int
	for _, e := range events {
		if e.End < e.Start {
			t.Fatalf("span for %q ends before it starts: %+v", e.Key, e)
		}
		if e.Aborted {
			aborted++
			if e.Worker != victim {
				t.Fatalf("aborted span on worker %d, want %d", e.Worker, victim)
			}
			if e.End > 1.0 {
				t.Fatalf("aborted span end %v not clamped to kill time 1.0", e.End)
			}
		} else if e.Key == "victim" {
			completed++
		}
	}
	if aborted != 1 {
		t.Fatalf("aborted spans = %d, want 1", aborted)
	}
	if completed != 1 {
		t.Fatalf("completed victim spans = %d, want 1", completed)
	}
	var buf bytes.Buffer
	if err := c.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	for _, ev := range decoded {
		if ev["dur"].(float64) < 0 {
			t.Fatalf("negative duration in chrome trace: %v", ev)
		}
	}
}
