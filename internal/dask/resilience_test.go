package dask

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"deisago/internal/taskgraph"
)

func TestKillWorkerRecomputesFromLineage(t *testing.T) {
	c, cl := testCluster(t, 2)
	var aRuns atomic.Int64
	g := taskgraph.New()
	g.AddFn("a", nil, func([]any) (any, error) {
		aRuns.Add(1)
		return 21.0, nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	owner, _, _, err := c.sched.locate("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(owner, cl.Now()); err != nil {
		t.Fatal(err)
	}
	// The result is gone; the scheduler must have replanned "a" and
	// recomputed it on the surviving worker.
	g2 := taskgraph.New()
	g2.AddFn("b", []taskgraph.Key{"a"}, func(in []any) (any, error) {
		return in[0].(float64) * 2, nil
	}, 1e-4)
	futs2, err := cl.Submit(g2, []taskgraph.Key{"b"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 42 {
		t.Fatalf("b = %v, want 42", vals[0])
	}
	if aRuns.Load() != 2 {
		t.Fatalf("a executed %d times, want 2 (original + recompute)", aRuns.Load())
	}
	newOwner, _, _, err := c.sched.locate("a")
	if err != nil {
		t.Fatal(err)
	}
	if newOwner == owner {
		t.Fatal("recomputed result placed on the dead worker")
	}
}

func TestKillWorkerLosesScatteredData(t *testing.T) {
	c, cl := testCluster(t, 2)
	if err := cl.Scatter([]ScatterItem{{Key: "d", Value: 1.0}}, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, cl.Now()); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	g.AddFn("use", []taskgraph.Key{"d"}, func(in []any) (any, error) { return in[0], nil }, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"use"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gather(futs); err == nil {
		t.Fatal("lost scattered data should err dependents")
	}
}

func TestKillWorkerExternalDataRepublished(t *testing.T) {
	// External data lost with a worker returns to the external state; the
	// bridge republished it and the pending graph completes.
	c, cl := testCluster(t, 2)
	if _, err := cl.ExternalFutures([]taskgraph.Key{"ext"}); err != nil {
		t.Fatal(err)
	}
	bridge := c.NewClient("bridge", 1, math.Inf(1))
	if err := bridge.Scatter([]ScatterItem{{Key: "ext", Value: 3.0}}, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, bridge.Now()); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.sched.taskState("ext"); st != StateExternal {
		t.Fatalf("lost external task state = %v, want external", st)
	}
	// A graph depending on it stays pending until the bridge republishes.
	g := taskgraph.New()
	g.AddFn("use", []taskgraph.Key{"ext"}, func(in []any) (any, error) {
		return in[0].(float64) + 1, nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"use"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var gathered []any
	var gerr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		gathered, gerr = cl.Gather(futs)
	}()
	if err := bridge.Scatter([]ScatterItem{{Key: "ext", Value: 3.0}}, true, 1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if gerr != nil {
		t.Fatal(gerr)
	}
	if gathered[0].(float64) != 4 {
		t.Fatalf("use = %v, want 4", gathered[0])
	}
}

func TestKillWorkerReassignsQueuedWork(t *testing.T) {
	c, cl := testCluster(t, 2)
	// Many root tasks spread round-robin; kill worker 0 immediately, then
	// everything must still complete on worker 1.
	g := taskgraph.New()
	var targets []taskgraph.Key
	for i := 0; i < 8; i++ {
		key := taskgraph.Key(rune('a' + i))
		v := float64(i)
		g.AddFn(key, nil, func([]any) (any, error) { return v, nil }, 1e-3)
		targets = append(targets, key)
	}
	futs, err := cl.Submit(g, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, 0); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v.(float64) != float64(i) {
			t.Fatalf("vals[%d] = %v", i, v)
		}
	}
}

func TestKillWorkerGuards(t *testing.T) {
	c, _ := testCluster(t, 2)
	if err := c.KillWorker(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillWorker(0, 0); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := c.KillWorker(1, 0); err == nil {
		t.Fatal("killed the last worker")
	}
}

func TestKillWorkerDeepLineage(t *testing.T) {
	// A chain a->b->c where all results lived on the dead worker: the
	// whole lineage recomputes.
	c, cl := testCluster(t, 2)
	var runs atomic.Int64
	g := taskgraph.New()
	g.AddFn("a", nil, func([]any) (any, error) { runs.Add(1); return 1.0, nil }, 1e-4)
	g.AddFn("b", []taskgraph.Key{"a"}, func(in []any) (any, error) {
		runs.Add(1)
		return in[0].(float64) + 1, nil
	}, 1e-4)
	g.AddFn("c", []taskgraph.Key{"b"}, func(in []any) (any, error) {
		runs.Add(1)
		return in[0].(float64) + 1, nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	owner, _, _, _ := c.sched.locate("c")
	if err := c.KillWorker(owner, cl.Now()); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 3 {
		t.Fatalf("c = %v, want 3", vals[0])
	}
	if runs.Load() < 4 {
		t.Fatalf("lineage did not recompute: %d runs", runs.Load())
	}
}
