package dask

// Schedule-space exploration hooks. Several scheduler choices are
// benign ties: any of the candidates is legal and the run's results
// must not depend on which one is taken. Production resolves each tie
// with a fixed deterministic rule (lowest taskID, locality then lowest
// worker id, round-robin, lowest LRU stamp). A TieBreaker, installed
// via Config.TieBreak before the cluster is built, redirects every such
// choice, letting a test (package simtest) systematically permute the
// schedule and assert that analytics, counters, and invariants are
// identical on every explored schedule.
//
// The hooks are test-only instrumentation: with Config.TieBreak nil —
// the default — every decision site takes its original branch and the
// hot path is untouched.

// Decision points. The Key of a Decision identifies the choice context
// by content (task key, block key), never by interned ID or call order,
// so the same logical decision carries the same identity across runs
// regardless of goroutine interleaving.
const (
	// PointReadyPop picks among ready tasks tied at the minimal
	// priority; candidates are ordered by task key. Key is the
	// lexicographically smallest tied task key.
	PointReadyPop = "ready-pop"
	// PointAssignWorker picks the worker for a ready task among the
	// non-paused candidates with maximal local dependency bytes (or,
	// with no locality, among all non-paused live workers); candidates
	// are ordered by worker id. Key is the task key.
	PointAssignWorker = "assign-worker"
	// PointSpillVictim picks the eviction victim among resident blocks
	// tied at the minimal LRU stamp; candidates are ordered by worker-
	// local insertion id. Key is "w<worker>" plus the tied LRU stamp.
	PointSpillVictim = "spill-victim"
	// PointFailover picks the failover target for an external publish
	// whose preselected worker is dead, among live non-paused workers;
	// candidates are ordered by worker id. Key is the block key plus
	// the attempt number. Used by package core's bridge.
	PointFailover = "failover-target"
	// PointTenantPick picks the tenant to serve next among backlogged
	// tenants tied at the minimal virtual service (multi-tenant fair
	// share); candidates are ordered by tenant name. Key is the
	// lexicographically smallest tied tenant name.
	PointTenantPick = "tenant-pick"
)

// Decision describes one tie the scheduler (or a cooperating component)
// is about to break: which decision point, the content-stable context
// key, and how many legal candidates there are.
type Decision struct {
	Point string
	Key   string
	N     int
}

// TieBreaker resolves scheduling ties. Pick returns the index of the
// chosen candidate in the decision's canonical candidate order; out-of-
// range picks select candidate 0. Implementations must be safe for
// concurrent use: bridges and the scheduler decide from different
// goroutines.
type TieBreaker interface {
	Pick(d Decision) int
}

// clampPick normalizes a TieBreaker result to a valid candidate index.
func clampPick(p, n int) int {
	if p < 0 || p >= n {
		return 0
	}
	return p
}
