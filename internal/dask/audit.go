package dask

import (
	"fmt"
	"os"
	"strings"

	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// Scheduler invariant auditor: a debug-mode pass that records every task
// state transition and re-checks the state machine's invariants after
// each scheduler mutation. It is the correctness oracle for the chaos
// harness (package chaos): with faults injected, the scheduler may take
// unusual paths (memory → waiting, memory → external, mass replans), and
// the auditor proves every intermediate state is still consistent.
//
// Invariants checked (with the scheduler lock held, after each mutation):
//
//  1. A task in memory has a valid owning worker the scheduler believes
//     alive, and that worker's object store actually holds the key.
//  2. A waiting task's missing count is exactly the number of its
//     dependencies that are not in memory; no waiting task has an erred
//     dependency (errors cascade immediately).
//  3. External tasks are never assigned to a worker.
//  4. Released keys hold no bytes on any scheduler-live worker.
//  5. Processing tasks are assigned to scheduler-live workers.
//  6. Dependency wiring is bidirectional and acyclic-by-construction:
//     every dependency edge has a matching dependents entry and vice
//     versa, and dependents only reference registered tasks.
//  7. Erred tasks carry an error; memory tasks carry non-negative bytes.
//  8. Memory conservation (governed workers): each live worker's
//     managed ledger equals the byte sum of its resident blocks, the
//     spilled ledger equals the byte sum of its spilled blocks, no
//     block sits in both tiers, no external (pinned) block was ever
//     spilled, and the resident ledger respects the limit seen by the
//     last governance pass — except for oversize grants, where at most
//     one evictable block remains resident (everything else is pinned).
//  9. Tenant isolation (multi-tenant clusters): no dependency edge
//     crosses a tenant namespace, and each tenant's resident-byte
//     ledger equals the recomputed byte sum of its tasks in memory.
//
// A violation fails loudly: the auditor panics with the violation and the
// tail of the full transition log, so the interleaving that produced the
// bad state is visible.
//
// The audit pass is a single walk over the dense interned task table —
// O(tasks + edges) in deterministic taskID order, with no per-operation
// sorting and no scratch allocations (released keys are checked in the
// same walk, at their nil table slots).

// stateNone marks task creation in the transition log (no prior state).
const stateNone State = -1

// Transition is one audited scheduler state change. An entry with an
// empty Key and both states stateNone is a worker-death marker: the
// scheduler recorded worker Worker leaving its liveness view, so an
// offline replay (the simtest reference model) tracks the same dead set
// the production invariants were checked against.
type Transition struct {
	Op     string // scheduler operation that caused the change
	Key    taskgraph.Key
	From   State // stateNone on task creation
	To     State
	Worker int   // owner/assignee after the change; -1 none
	Bytes  int64 // result size after the change (memory states)
	At     vtime.Time
}

// WorkerDeath reports whether this entry is a worker-death marker.
func (tr Transition) WorkerDeath() bool {
	return tr.Key == "" && tr.From == stateNone && tr.To == stateNone
}

// String formats one transition.
func (tr Transition) String() string {
	if tr.WorkerDeath() {
		return fmt.Sprintf("[%s] worker %d died (t=%.6f)", tr.Op, tr.Worker, tr.At)
	}
	from := "·"
	if tr.From != stateNone {
		from = tr.From.String()
	}
	return fmt.Sprintf("[%s] %s: %s -> %s (worker %d, t=%.6f)",
		tr.Op, tr.Key, from, tr.To, tr.Worker, tr.At)
}

// auditLogCap bounds the retained transition log; older entries are
// discarded (the count of discarded entries is reported on violation).
const auditLogCap = 16384

// auditor holds the transition log and the released-key shadow set. All
// fields are guarded by the owning scheduler's mutex.
type auditor struct {
	log       []Transition
	truncated int64
	released  map[taskID]bool
	op        string // mutation currently in progress (panic context)
	at        vtime.Time
}

// auditEnvEnabled reports whether the DEISA_AUDIT environment variable
// asks for auditing on every cluster (the CI gate sets it so the entire
// test suite runs with the oracle on).
func auditEnvEnabled() bool {
	v := os.Getenv("DEISA_AUDIT")
	return v != "" && v != "0"
}

// EnableAudit turns on the scheduler invariant auditor. Call before
// submitting work. Auditing costs a full state scan per scheduler
// mutation, so it is meant for tests, chaos runs, and debugging, not for
// performance measurements.
func (c *Cluster) EnableAudit() {
	c.sched.mu.Lock()
	if c.sched.audit == nil {
		c.sched.audit = &auditor{released: map[taskID]bool{}}
	}
	c.sched.mu.Unlock()
}

// AuditEnabled reports whether the invariant auditor is on.
func (c *Cluster) AuditEnabled() bool {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	return c.sched.audit != nil
}

// AuditLog returns a copy of the recorded transition log (oldest first).
func (c *Cluster) AuditLog() []Transition {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	if c.sched.audit == nil {
		return nil
	}
	return append([]Transition(nil), c.sched.audit.log...)
}

// AuditTruncated returns how many old transition-log entries were
// discarded to the log cap. Replays that need the complete history
// (the simtest reference model) refuse truncated logs.
func (c *Cluster) AuditTruncated() int64 {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	if c.sched.audit == nil {
		return 0
	}
	return c.sched.audit.truncated
}

// beginOpLocked tags the mutation in progress for transition records
// and stamps the mutation time for metric gauges.
func (s *scheduler) beginOpLocked(op string, at vtime.Time) {
	s.opAt = at
	if s.audit == nil {
		return
	}
	s.audit.op = op
	s.audit.at = at
}

// appendLocked adds one entry to the bounded transition log.
func (a *auditor) appendLocked(tr Transition) {
	if len(a.log) >= auditLogCap {
		drop := auditLogCap / 4
		a.truncated += int64(drop)
		a.log = append(a.log[:0], a.log[drop:]...)
	}
	a.log = append(a.log, tr)
}

// recordLocked appends one transition to the log. Call with s.mu held,
// after the task's state/worker fields are updated.
func (s *scheduler) recordLocked(st *schedTask, from State) {
	a := s.audit
	if a == nil {
		return
	}
	a.appendLocked(Transition{
		Op: a.op, Key: st.key, From: from, To: st.state, Worker: st.worker,
		Bytes: st.bytes, At: a.at,
	})
	if st.state != stateNone {
		delete(a.released, st.id) // key re-registered
	}
}

// recordWorkerDeadLocked appends a worker-death marker, so replays of
// the log track the scheduler's liveness view at each point.
func (s *scheduler) recordWorkerDeadLocked(id int) {
	a := s.audit
	if a == nil {
		return
	}
	a.appendLocked(Transition{Op: a.op, From: stateNone, To: stateNone, Worker: id, At: a.at})
}

// setStateLocked transitions a task, records it in the audit log, and
// counts it in the metrics registry.
func (s *scheduler) setStateLocked(st *schedTask, to State) {
	from := st.state
	st.state = to
	s.recordLocked(st, from)
	s.noteTransLocked(from, to)
	if len(s.tenants) > 0 && from != to {
		// Per-tenant resident-byte ledger: a task entering memory adds
		// its bytes, leaving memory (replan, erred cascade) removes the
		// bytes it held.
		if from == StateMemory {
			s.tenants[s.tenantOf[st.id]].resBytes -= st.bytes
			s.tenantsDirty = true
		} else if to == StateMemory {
			s.tenants[s.tenantOf[st.id]].resBytes += st.bytes
			s.tenantsDirty = true
		}
	}
}

// recordReleaseLocked notes a key leaving the scheduler via release.
func (s *scheduler) recordReleaseLocked(st *schedTask) {
	a := s.audit
	if a == nil {
		return
	}
	s.recordLocked(st, st.state)
	a.released[st.id] = true
}

// failLocked panics with the violation and the transition log tail.
func (s *scheduler) failLocked(format string, args ...any) {
	a := s.audit
	var b strings.Builder
	fmt.Fprintf(&b, "dask: scheduler invariant violated during %q: ", a.op)
	fmt.Fprintf(&b, format, args...)
	b.WriteString("\ntransition log")
	if a.truncated > 0 {
		fmt.Fprintf(&b, " (%d older entries discarded)", a.truncated)
	}
	b.WriteString(":\n")
	for _, tr := range a.log {
		b.WriteString("  ")
		b.WriteString(tr.String())
		b.WriteString("\n")
	}
	panic(b.String())
}

// auditLocked re-checks every invariant in one pass over the dense task
// table, in taskID order. Call with s.mu held at the end of each
// mutating scheduler operation.
func (s *scheduler) auditLocked() {
	if s.audit == nil {
		return
	}
	for id, st := range s.tasks {
		if st == nil {
			// Interned but currently unregistered slot. If the key left
			// via release, no scheduler-live worker may still hold its
			// bytes.
			if !s.audit.released[taskID(id)] {
				continue
			}
			for wid, w := range s.cl.workers {
				if s.deadWorkers[wid] {
					continue
				}
				if w.has(taskID(id)) {
					s.failLocked("released key %q still holds bytes on worker %d", s.keys[id], wid)
				}
			}
			continue
		}
		switch st.state {
		case StateMemory:
			if st.worker < 0 || st.worker >= len(s.cl.workers) {
				s.failLocked("task %q in memory with invalid worker %d", st.key, st.worker)
			}
			if s.deadWorkers[st.worker] {
				s.failLocked("task %q in memory on dead worker %d", st.key, st.worker)
			}
			if !s.cl.workers[st.worker].has(st.id) {
				s.failLocked("task %q in memory but worker %d's store lacks it", st.key, st.worker)
			}
			if st.bytes < 0 {
				s.failLocked("task %q in memory with negative size %d", st.key, st.bytes)
			}
		case StateWaiting:
			var want int32
			for _, d := range st.deps {
				dt := s.tasks[d]
				if dt == nil {
					want++ // unregistered dependency is by definition unfinished
					continue
				}
				switch dt.state {
				case StateMemory:
					// satisfied
				case StateErred:
					s.failLocked("waiting task %q has erred dependency %q (error did not cascade)", st.key, dt.key)
				default:
					want++
				}
			}
			if st.missingCount != want {
				s.failLocked("waiting task %q: missing count %d, want %d unfinished dependencies", st.key, st.missingCount, want)
			}
		case StateExternal:
			if st.worker != -1 {
				s.failLocked("external task %q assigned to worker %d", st.key, st.worker)
			}
		case StateProcessing:
			if st.worker < 0 || st.worker >= len(s.cl.workers) {
				s.failLocked("task %q processing on invalid worker %d", st.key, st.worker)
			}
			if s.deadWorkers[st.worker] {
				s.failLocked("task %q processing on dead worker %d", st.key, st.worker)
			}
		case StateErred:
			if st.err == nil {
				s.failLocked("task %q erred without an error", st.key)
			}
		}
		for _, d := range st.dependents {
			dt := s.tasks[d]
			if dt == nil {
				s.failLocked("task %q has dependent %q that is not registered", st.key, s.keys[d])
			}
			found := false
			for _, dep := range dt.deps {
				if dep == st.id {
					found = true
					break
				}
			}
			if !found {
				s.failLocked("task %q lists dependent %q, which does not depend on it", st.key, dt.key)
			}
		}
	}
	s.auditMemoryLocked()
	s.auditTenantsLocked()
}

// auditMemoryLocked checks invariant 8 (memory conservation) on every
// live governed worker. Dead workers are skipped: their stores are
// unreachable and the replan already moved their tasks.
func (s *scheduler) auditMemoryLocked() {
	for wid, w := range s.cl.workers {
		if s.deadWorkers[wid] || !w.governed() {
			continue
		}
		mem, sumRes, spilledB, sumSp, overlap, extSpilled, evictable, lastLimit := w.memAudit()
		if mem != sumRes {
			s.failLocked("worker %d managed ledger %d != resident block sum %d", wid, mem, sumRes)
		}
		if spilledB != sumSp {
			s.failLocked("worker %d spilled ledger %d != spilled block sum %d", wid, spilledB, sumSp)
		}
		if overlap {
			s.failLocked("worker %d holds a block in both the resident and spilled tiers", wid)
		}
		if extSpilled {
			s.failLocked("worker %d spilled an external (pinned) block", wid)
		}
		if lastLimit > 0 && mem > lastLimit && evictable > 1 {
			s.failLocked("worker %d resident ledger %d exceeds limit %d with %d evictable blocks (not an oversize grant)",
				wid, mem, lastLimit, evictable)
		}
	}
}
