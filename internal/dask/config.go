// Package dask implements a distributed task-based execution framework
// modelled on Dask.distributed: a centralized scheduler, a set of
// workers, and clients that submit task graphs, scatter data, and gather
// results. It reproduces the pieces of Dask the paper relies on — the
// task state machine, the scatter path, distributed Variables and Queues,
// and client heartbeats — plus the paper's contribution, a new "external"
// task state for tasks executed outside the cluster (see package core for
// the deisa layer built on top).
//
// All actors carry virtual clocks (package vtime); control messages and
// data transfers move across the simulated fabric (package netsim), and
// the scheduler's CPU is a shared FCFS resource, so scheduler overload —
// the effect the paper's external tasks eliminate — appears as queueing
// delay in virtual time.
package dask

import (
	"deisago/internal/metrics"
	"deisago/internal/pfs"
	"deisago/internal/vtime"
)

// Config holds the runtime cost model and protocol parameters.
type Config struct {
	// SchedulerMsgCost is the scheduler CPU time to handle one incoming
	// message (heartbeat, update-data, task-finished, variable op).
	SchedulerMsgCost vtime.Dur
	// SchedulerTaskCost is the scheduler CPU time per task for graph
	// registration and per state transition.
	SchedulerTaskCost vtime.Dur
	// ControlMsgBytes is the wire size of a small control message.
	ControlMsgBytes int64
	// MetadataBytesPerKey is the extra metadata wire size per key carried
	// by update-data and graph-submission messages.
	MetadataBytesPerKey int64
	// WorkerTaskOverhead is the worker-side fixed cost per task
	// (deserialization, dispatch).
	WorkerTaskOverhead vtime.Dur
	// SerializationBandwidth models memcpy/serialization of data payloads
	// at endpoints, in bytes/second; 0 disables the charge.
	SerializationBandwidth float64
	// MetadataEntryCost is the scheduler CPU time to process one entry of
	// a bulk metadata message (Client.SendMetadata). The DEISA1 baseline
	// refreshes the full decomposition metadata every timestep, which is
	// the scheduler overload the paper's external tasks remove.
	MetadataEntryCost vtime.Dur
	// Metrics, when set, is the registry the cluster instruments itself
	// against (per-kind message counters, task-state transitions, worker
	// memory gauges). When nil, NewCluster creates a private registry so
	// the Counters façade keeps working.
	Metrics *metrics.Registry
	// SpillThresholdBytes is the per-worker memory level above which
	// stored blocks count as spill-eligible in the worker gauges (the
	// gauge exposes pressure independently of the hard limit below). 0
	// means no threshold: nothing counts as spill-eligible for the gauge.
	SpillThresholdBytes int64
	// WorkerMemoryLimit is the per-worker managed-memory limit in bytes.
	// When positive, every stored block is accounted in the worker's
	// ledger and the least-recently-used non-external blocks are spilled
	// to the spill tier (SpillFS) whenever the ledger exceeds the limit;
	// spilled blocks are transparently read back on dependency gather.
	// 0 disables governance entirely (the zero-cost fast path).
	WorkerMemoryLimit int64
	// WorkerHighWatermark is the pause threshold as a fraction of the
	// effective memory limit: a worker whose ledger is at or above
	// watermark*limit is "paused" — the scheduler stops assigning ready
	// tasks to it and producers scattering to it back off in virtual
	// time. <= 0 selects the default 0.8 (Dask's pause fraction).
	WorkerHighWatermark float64
	// SpillFS is the parallel file system blocks spill to. Spill writes
	// and unspill reads charge virtual-time I/O costs there (block values
	// stay in host memory; only costs are modelled). nil makes the
	// cluster create a private pfs.FS with pfs.DefaultConfig() so
	// governance works out of the box.
	SpillFS *pfs.FS
	// TieBreak, when non-nil, redirects the scheduler's benign tie-break
	// choices (ready-heap pop order, worker choice, spill victim) so the
	// schedule-space explorer (package simtest) can permute legal
	// schedules. nil — the default — keeps every production rule and
	// costs nothing. Must be set before NewCluster and never changed.
	TieBreak TieBreaker
}

// highWatermark returns the effective pause fraction.
func (c Config) highWatermark() float64 {
	if c.WorkerHighWatermark <= 0 {
		return 0.8
	}
	return c.WorkerHighWatermark
}

// DefaultConfig returns parameters calibrated against Dask.distributed's
// documented magnitudes (sub-millisecond per-task scheduler overhead,
// ~200 µs per message) that place the reproduced figures in the paper's
// range.
func DefaultConfig() Config {
	return Config{
		SchedulerMsgCost:       300e-6,
		SchedulerTaskCost:      200e-6,
		ControlMsgBytes:        1 << 10,
		MetadataBytesPerKey:    256,
		WorkerTaskOverhead:     100e-6,
		SerializationBandwidth: 2e9,
		MetadataEntryCost:      2e-4,
	}
}

// Counters tallies scheduler-side message and transition counts. The
// paper's metadata argument (§2.1: 2·T·R+heartbeats messages for DEISA1
// versus 1+R for the external-task design) is verified against these.
//
// Since the metrics registry landed, Counters is a façade: each field is
// a handle on the cluster's registry (component "dask"), so the legacy
// `counters.X.Add(1)` / `.Load()` call sites keep compiling while every
// count also appears in metric snapshots.
type Counters struct {
	GraphsSubmitted   *metrics.Counter
	TasksRegistered   *metrics.Counter
	ExternalCreated   *metrics.Counter
	UpdateDataMsgs    *metrics.Counter
	MetadataMsgs      *metrics.Counter
	MetadataEntries   *metrics.Counter
	TaskFinishedMsgs  *metrics.Counter
	Heartbeats        *metrics.Counter
	VariableOps       *metrics.Counter
	QueueOps          *metrics.Counter
	GatherRequests    *metrics.Counter
	TotalSchedulerMsg *metrics.Counter
}

// newCounters binds the façade to registry counters.
func newCounters(r *metrics.Registry) Counters {
	return Counters{
		GraphsSubmitted:   r.Counter("dask", "graphs_submitted"),
		TasksRegistered:   r.Counter("dask", "tasks_registered"),
		ExternalCreated:   r.Counter("dask", "external_created"),
		UpdateDataMsgs:    r.Counter("dask", "update_data_msgs"),
		MetadataMsgs:      r.Counter("dask", "metadata_msgs"),
		MetadataEntries:   r.Counter("dask", "metadata_entries"),
		TaskFinishedMsgs:  r.Counter("dask", "task_finished_msgs"),
		Heartbeats:        r.Counter("dask", "heartbeats"),
		VariableOps:       r.Counter("dask", "variable_ops"),
		QueueOps:          r.Counter("dask", "queue_ops"),
		GatherRequests:    r.Counter("dask", "gather_requests"),
		TotalSchedulerMsg: r.Counter("dask", "total_scheduler_msgs"),
	}
}

// Snapshot is a plain-value copy of Counters.
type Snapshot struct {
	GraphsSubmitted   int64
	TasksRegistered   int64
	ExternalCreated   int64
	UpdateDataMsgs    int64
	MetadataMsgs      int64
	MetadataEntries   int64
	TaskFinishedMsgs  int64
	Heartbeats        int64
	VariableOps       int64
	QueueOps          int64
	GatherRequests    int64
	TotalSchedulerMsg int64
}

// Snapshot returns a point-in-time copy of all counters.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		GraphsSubmitted:   c.GraphsSubmitted.Load(),
		TasksRegistered:   c.TasksRegistered.Load(),
		ExternalCreated:   c.ExternalCreated.Load(),
		UpdateDataMsgs:    c.UpdateDataMsgs.Load(),
		MetadataMsgs:      c.MetadataMsgs.Load(),
		MetadataEntries:   c.MetadataEntries.Load(),
		TaskFinishedMsgs:  c.TaskFinishedMsgs.Load(),
		Heartbeats:        c.Heartbeats.Load(),
		VariableOps:       c.VariableOps.Load(),
		QueueOps:          c.QueueOps.Load(),
		GatherRequests:    c.GatherRequests.Load(),
		TotalSchedulerMsg: c.TotalSchedulerMsg.Load(),
	}
}
