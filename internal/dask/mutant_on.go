//go:build daskmutant

package dask

// MutantScheduler marks this build as carrying the deliberately broken
// scheduler below. The simtest self-test builds with -tags daskmutant
// and proves the schedule explorer catches the bug and the shrinker
// reduces the failing (chaos plan, schedule) pair to a minimal
// reproducer.
const MutantScheduler = true

// rebuildDepsWindow carries a planted off-by-one: the worker-lost
// replan skips the first dependency when rebuilding missing counts, so
// a multi-dependency task waiting on its first dependency is counted
// complete too early. The invariant auditor's missing-count check
// (invariant 2) catches the drift on the first replan after a kill.
func rebuildDepsWindow(deps []taskID) []taskID {
	if len(deps) > 1 {
		return deps[1:]
	}
	return deps
}
