package dask

import (
	"fmt"
	"math"
	"testing"
	"time"

	"deisago/internal/taskgraph"
)

// FuzzSchedulerAudit drives the scheduler through random interleavings
// of submit / scatter / external-create / publish / kill / release /
// tenant-register / namespaced-submit ops decoded from the fuzz input,
// with the invariant auditor on (including the tenant-isolation
// invariant: no edge crosses a namespace, per-tenant byte ledgers
// balance). Any invariant violation panics; a drain that cannot finish
// within the watchdog is reported as a deadlock. Run with:
//
//	go test -fuzz=FuzzSchedulerAudit -fuzztime=30s ./internal/dask
func FuzzSchedulerAudit(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 3, 4, 3, 2, 3, 4, 3, 0, 0, 5, 1, 4})
	f.Add([]byte{4, 4, 4, 0, 2, 3, 0, 5, 5, 5})
	f.Add([]byte("submit-publish-kill-release"))
	f.Add([]byte{6, 0, 6, 1, 7, 0, 7, 1, 4, 0, 7, 2, 5, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		c, cl := testClusterQuick(3)
		defer c.Close()
		c.EnableAudit()

		sum := func(in []any) (any, error) {
			total := 0.0
			for _, v := range in {
				if f, ok := v.(float64); ok {
					total += f
				}
			}
			return total, nil
		}

		var futs []*Future          // futures to drain at the end
		var keys []taskgraph.Key    // every registered key, for deps/release
		var extKeys []taskgraph.Key // external keys needing publishes
		bridge := c.NewClient("bridge", 1, math.Inf(1))
		nextID := 0
		fresh := func(prefix string) taskgraph.Key {
			nextID++
			return taskgraph.Key(fmt.Sprintf("%s%d", prefix, nextID))
		}
		liveTarget := func(b byte) (int, bool) {
			live := c.LiveWorkers()
			if len(live) == 0 {
				return 0, false
			}
			return live[int(b)%len(live)], true
		}
		tenantPalette := []string{"ta", "tb", "tc"}
		var registered []string
		tenantKeys := map[string][]taskgraph.Key{}

		for i := 0; i < len(data); i++ {
			op := data[i] % 8
			arg := byte(0)
			if i+1 < len(data) {
				arg = data[i+1]
			}
			switch op {
			case 0, 1: // submit a small chain over random known keys
				g := taskgraph.New()
				var deps []taskgraph.Key
				if len(keys) > 0 && op == 1 {
					deps = append(deps, keys[int(arg)%len(keys)])
				}
				k1 := fresh("t")
				g.AddFn(k1, deps, sum, 1e-5)
				k2 := fresh("t")
				g.AddFn(k2, []taskgraph.Key{k1}, sum, 1e-5)
				fs, err := cl.Submit(g, []taskgraph.Key{k2})
				if err != nil {
					continue // e.g. dep was released concurrently
				}
				keys = append(keys, k1, k2)
				futs = append(futs, fs...)
			case 2: // create an external task
				k := fresh("ext")
				fs, err := cl.ExternalFutures([]taskgraph.Key{k})
				if err != nil {
					continue
				}
				keys = append(keys, k)
				extKeys = append(extKeys, k)
				futs = append(futs, fs...)
			case 3: // publish one pending external key
				if len(extKeys) == 0 {
					continue
				}
				k := extKeys[int(arg)%len(extKeys)]
				if st, ok := c.TaskState(k); !ok || st != StateExternal {
					continue
				}
				if w, ok := liveTarget(arg); ok {
					_ = bridge.Scatter([]ScatterItem{{Key: k, Value: 1.0}}, true, w)
				}
			case 4: // kill a live worker, keeping one survivor
				live := c.LiveWorkers()
				if len(live) < 2 {
					continue
				}
				_ = c.KillWorker(live[int(arg)%len(live)], cl.Now())
			case 5: // release a random future (refused if depended upon)
				if len(futs) == 0 {
					continue
				}
				_ = cl.Release([]*Future{futs[int(arg)%len(futs)]})
			case 6: // register a tenant namespace (admission side; dups refused)
				name := tenantPalette[int(arg)%len(tenantPalette)]
				if err := c.RegisterTenant(name, 1+float64(arg%4)); err == nil {
					registered = append(registered, name)
				}
			case 7: // submit a chain inside one tenant's namespace; deps stay
				// within the tenant (op 1 chains may still pick a namespaced
				// key from the global list — the cross-tenant rejection path)
				if len(registered) == 0 {
					continue
				}
				ten := registered[int(arg)%len(registered)]
				g := taskgraph.New()
				var deps []taskgraph.Key
				if own := tenantKeys[ten]; len(own) > 0 {
					deps = append(deps, own[int(arg)%len(own)])
				}
				k1 := fresh(ten + "/t")
				g.AddFn(k1, deps, sum, 1e-5)
				k2 := fresh(ten + "/t")
				g.AddFn(k2, []taskgraph.Key{k1}, sum, 1e-5)
				fs, err := cl.Submit(g, []taskgraph.Key{k2})
				if err != nil {
					continue
				}
				keys = append(keys, k1, k2)
				tenantKeys[ten] = append(tenantKeys[ten], k1, k2)
				futs = append(futs, fs...)
			}
		}

		// Drain: republish anything still external (kills can no longer
		// fire), then wait for every future under a deadlock watchdog.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for pass := 0; pass < len(extKeys)+1; pass++ {
				n := 0
				for _, k := range extKeys {
					if st, ok := c.TaskState(k); ok && st == StateExternal {
						if w, ok := liveTarget(byte(pass)); ok {
							_ = bridge.Scatter([]ScatterItem{{Key: k, Value: 1.0}}, true, w)
							n++
						}
					}
				}
				if n == 0 {
					break
				}
			}
			for _, fu := range futs {
				_ = cl.Wait([]*Future{fu}) // erred/released is fine; hanging is not
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("scheduler deadlocked draining %d futures (ops=%v)", len(futs), data)
		}
		if len(c.AuditLog()) == 0 && len(keys) > 0 {
			t.Fatal("auditor recorded nothing despite registered tasks")
		}
	})
}
