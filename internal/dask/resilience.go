package dask

import (
	"fmt"

	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// Worker-failure resilience, following Dask's recovery semantics:
// results lost with a worker are recomputed from the task graph
// (lineage); pure data that was scattered into the lost worker cannot be
// recomputed — external tasks return to the external state (the
// simulation can republish), plain scattered data becomes erred.

// KillWorker removes a worker from the cluster at the given virtual
// time: its queued assignments are abandoned, its stored results are
// lost, and the scheduler re-plans affected tasks. At least one live
// worker must remain.
func (c *Cluster) KillWorker(id int, at vtime.Time) error {
	w := c.worker(id)
	alive := 0
	for _, other := range c.workers {
		if !other.isDead() && other != w {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("dask: cannot kill worker %d: no other workers remain", id)
	}
	if w.isDead() {
		return fmt.Errorf("dask: worker %d already dead", id)
	}
	w.kill()
	c.sched.workerLost(id, at)
	return nil
}

func (w *worker) kill() {
	w.mu.Lock()
	w.dead = true
	w.inbox = nil
	w.mu.Unlock()
	w.cond.Broadcast()
}

func (w *worker) isDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead
}

// workerLost re-plans every task affected by the loss of a worker.
func (s *scheduler) workerLost(id int, at vtime.Time) {
	handled := s.handle(at, s.cl.cfg.SchedulerMsgCost)
	s.mu.Lock()
	defer s.mu.Unlock()

	lostErr := fmt.Errorf("dask: worker %d died", id)
	for _, st := range s.tasks {
		if st.worker != id {
			continue
		}
		switch st.state {
		case StateMemory:
			switch {
			case st.fn != nil || st.timed != nil:
				// Recomputable from lineage.
				st.state = StateWaiting
				st.worker = -1
				st.readyAt = 0
			case st.wasExternal:
				// The external environment can republish.
				st.state = StateExternal
				st.worker = -1
				st.readyAt = 0
			default:
				// Plain scattered data is gone for good.
				s.erredLocked(st, lostErr)
			}
		case StateProcessing, StateReady:
			st.state = StateWaiting
			st.worker = -1
		}
	}
	// Cascade: a task in memory may depend on nothing anymore, but tasks
	// WAITING on lost results must have their missing sets rebuilt; and
	// tasks whose results survived need no change. Rebuild missing for
	// every non-terminal task, then launch the ready frontier.
	for _, st := range s.tasks {
		if st.state != StateWaiting {
			continue
		}
		st.missing = map[taskgraph.Key]bool{}
		for _, d := range st.deps {
			dt := s.tasks[d]
			switch dt.state {
			case StateMemory:
				// satisfied
			case StateErred:
				s.erredLocked(st, fmt.Errorf("dask: dependency %q erred: %w", d, dt.err))
			default:
				st.missing[d] = true
			}
		}
	}
	for _, st := range s.tasks {
		if st.state == StateWaiting && len(st.missing) == 0 && (st.fn != nil || st.timed != nil) {
			s.assignLocked(st, handled)
		}
	}
	s.cond.Broadcast()
}

// liveWorkers returns the indices of workers accepting tasks. Caller
// holds no locks; worker liveness has its own lock.
func (s *scheduler) liveWorkers() []int {
	var out []int
	for i, w := range s.cl.workers {
		if !w.isDead() {
			out = append(out, i)
		}
	}
	return out
}
