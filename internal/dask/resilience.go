package dask

import (
	"errors"
	"fmt"

	"deisago/internal/vtime"
)

// Worker-failure resilience, following Dask's recovery semantics:
// results lost with a worker are recomputed from the task graph
// (lineage); pure data that was scattered into the lost worker cannot be
// recomputed — external tasks return to the external state (the
// simulation can republish), plain scattered data becomes erred.

// ErrWorkerDied reports an operation that targeted a worker the
// scheduler knows to be dead. Producers (the bridge) match it with
// errors.Is and retry on another worker.
var ErrWorkerDied = errors.New("dask: worker died")

// ErrWorkerPaused reports a scatter refused by memory governance: the
// target worker cannot fit the batch under a chaos-squeezed memory
// limit even after spilling everything evictable. Producers match it
// with errors.Is and back off in virtual time — memlimit windows are
// time-bounded, so the retry eventually lands past the squeeze.
var ErrWorkerPaused = errors.New("dask: worker paused (memory watermark)")

// KillWorker removes a worker from the cluster at the given virtual
// time: its queued assignments are abandoned, its stored results are
// lost, and the scheduler re-plans affected tasks. At least one live
// worker must remain.
func (c *Cluster) KillWorker(id int, at vtime.Time) error {
	w := c.worker(id)
	alive := 0
	for _, other := range c.workers {
		if !other.isDead() && other != w {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("dask: cannot kill worker %d: no other workers remain", id)
	}
	if w.isDead() {
		return fmt.Errorf("dask: worker %d already dead", id)
	}
	w.kill(at)
	c.sched.workerLost(id, at)
	return nil
}

// WorkerAlive reports whether the scheduler still considers the worker
// schedulable.
func (c *Cluster) WorkerAlive(id int) bool {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	return id >= 0 && id < len(c.workers) && !c.sched.deadWorkers[id]
}

// LiveWorkers returns the ids of workers the scheduler considers alive,
// in ascending order.
func (c *Cluster) LiveWorkers() []int {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	return c.sched.liveWorkersLocked()
}

func (w *worker) kill(at vtime.Time) {
	w.mu.Lock()
	w.dead = true
	w.killedAt = at
	w.inbox = nil
	w.mu.Unlock()
	w.cond.Broadcast()
}

func (w *worker) isDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead
}

// workerLost re-plans every task affected by the loss of a worker. The
// dense task table makes every pass below a deterministic taskID-order
// walk, so replans are reproducible under the chaos harness.
func (s *scheduler) workerLost(id int, at vtime.Time) {
	handled := s.handle("worker-lost", at, s.cl.cfg.SchedulerMsgCost)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endOpLocked()
	s.beginOpLocked("worker-lost", handled)
	s.deadWorkers[id] = true
	s.recordWorkerDeadLocked(id)

	lostErr := fmt.Errorf("dask: worker %d: %w", id, ErrWorkerDied)
	for _, st := range s.tasks {
		if st == nil || st.worker != id {
			continue
		}
		switch st.state {
		case StateMemory:
			switch {
			case st.fn != nil || st.timed != nil:
				// Recomputable from lineage.
				st.worker = -1
				st.readyAt = 0
				s.setStateLocked(st, StateWaiting)
			case st.wasExternal:
				// The external environment can republish.
				st.worker = -1
				st.readyAt = 0
				s.setStateLocked(st, StateExternal)
			default:
				// Plain scattered data is gone for good.
				s.erredLocked(st, lostErr)
			}
		case StateProcessing, StateReady:
			st.worker = -1
			s.setStateLocked(st, StateWaiting)
		}
	}
	// Cascade: tasks WAITING on lost results must have their missing
	// counts rebuilt (the incremental counters can't distinguish a
	// result that regressed out of memory), and tasks whose results
	// survived need no change. Rebuild the count for every non-terminal
	// task, then launch the ready frontier through the ready queue.
	for _, st := range s.tasks {
		if st == nil || st.state != StateWaiting {
			continue
		}
		var missing int32
		for _, d := range rebuildDepsWindow(st.deps) {
			dt := s.tasks[d]
			if dt == nil {
				missing++ // unregistered dependency: unfinished by definition
				continue
			}
			switch dt.state {
			case StateMemory:
				// satisfied
			case StateErred:
				s.erredLocked(st, fmt.Errorf("dask: dependency %q erred: %w", dt.key, dt.err))
			default:
				missing++
			}
		}
		st.missingCount = missing
	}
	for _, st := range s.tasks {
		if st != nil && st.state == StateWaiting && st.missingCount == 0 && (st.fn != nil || st.timed != nil) {
			s.pushReadyLocked(st.priority, st.id)
		}
	}
	s.drainReadyLocked(handled)
	s.cond.Broadcast()
}

// liveWorkersLocked returns the indices of workers the scheduler
// considers alive. Caller must hold s.mu.
func (s *scheduler) liveWorkersLocked() []int {
	var out []int
	for i := range s.cl.workers {
		if !s.deadWorkers[i] {
			out = append(out, i)
		}
	}
	return out
}
