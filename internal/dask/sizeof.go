package dask

import "deisago/internal/ndarray"

// SizeOf estimates the wire size in bytes of a task result or scattered
// value, used to model transfer costs. Unknown types count as one control
// message.
func SizeOf(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 8
	case *ndarray.Array:
		return int64(x.Size()) * 8
	case []float64:
		return int64(len(x)) * 8
	case [][]float64:
		var n int64
		for _, r := range x {
			n += int64(len(r)) * 8
		}
		return n
	case []byte:
		return int64(len(x))
	case []float32:
		return int64(len(x)) * 4
	case []int:
		return int64(len(x)) * 8
	case []int64:
		return int64(len(x)) * 8
	case string:
		return int64(len(x))
	case float64, float32, int, int32, int64, bool:
		return 8
	case Sized:
		return x.SizeBytes()
	default:
		return 256
	}
}

// Sized lets composite values report their own modelled wire size.
type Sized interface {
	SizeBytes() int64
}
