package dask

import (
	"errors"
	"math"
	"strings"
	"testing"

	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

func TestTimedTaskDynamicDuration(t *testing.T) {
	_, cl := testCluster(t, 1)
	g := taskgraph.New()
	// A dynamically-timed task that "takes" 2 virtual seconds.
	g.AddTimed("slow", nil, func(_ []any, start vtime.Time) (any, vtime.Time, error) {
		return 42.0, start + 2, nil
	}, 0)
	// A dependent ordinary task.
	g.AddFn("after", []taskgraph.Key{"slow"}, func(in []any) (any, error) {
		return in[0].(float64) + 1, nil
	}, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"after"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 43 {
		t.Fatalf("after = %v", vals[0])
	}
	// The dynamic duration must appear in virtual time.
	if cl.Now() < 2 {
		t.Fatalf("client time %v < 2 (dynamic cost not charged)", cl.Now())
	}
}

func TestTimedTaskSerializesOnWorkerCPU(t *testing.T) {
	_, cl := testCluster(t, 1)
	g := taskgraph.New()
	g.AddTimed("io1", nil, func(_ []any, start vtime.Time) (any, vtime.Time, error) {
		return 1.0, start + 1, nil
	}, 0)
	g.AddTimed("io2", nil, func(_ []any, start vtime.Time) (any, vtime.Time, error) {
		return 2.0, start + 1, nil
	}, 0)
	g.AddFn("sum", []taskgraph.Key{"io1", "io2"}, func(in []any) (any, error) {
		return in[0].(float64) + in[1].(float64), nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"sum"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gather(futs); err != nil {
		t.Fatal(err)
	}
	// Both timed tasks run on the single worker: total ≥ 2 s.
	if cl.Now() < 2 {
		t.Fatalf("client time %v < 2; timed tasks did not serialize on one worker", cl.Now())
	}
}

func TestTimedTaskError(t *testing.T) {
	_, cl := testCluster(t, 1)
	boom := errors.New("io failed")
	g := taskgraph.New()
	g.AddTimed("bad", nil, func(_ []any, start vtime.Time) (any, vtime.Time, error) {
		return nil, start, boom
	}, 0)
	futs, err := cl.Submit(g, []taskgraph.Key{"bad"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gather(futs); !errors.Is(err, boom) {
		t.Fatalf("gather error = %v, want boom", err)
	}
}

func TestTaskStatesAndDone(t *testing.T) {
	c, cl := testCluster(t, 1)
	if _, err := cl.ExternalFutures([]taskgraph.Key{"ext-1", "ext-2"}); err != nil {
		t.Fatal(err)
	}
	states := c.TaskStates()
	if states[StateExternal] != 2 {
		t.Fatalf("TaskStates = %v, want 2 external", states)
	}
	g := taskgraph.New()
	g.AddFn("t", nil, func([]any) (any, error) { return 1.0, nil }, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	if !futs[0].Done() {
		t.Fatal("completed future not Done")
	}
	states = c.TaskStates()
	if states[StateMemory] != 1 || states[StateExternal] != 2 {
		t.Fatalf("TaskStates after run = %v", states)
	}
	ghost := &Future{Key: "ghost", client: cl}
	if ghost.Done() {
		t.Fatal("unknown future reported Done")
	}
}

func TestPanickingTaskBecomesErred(t *testing.T) {
	_, cl := testCluster(t, 1)
	g := taskgraph.New()
	g.AddFn("boom", nil, func([]any) (any, error) {
		panic("kaboom")
	}, 1e-4)
	g.AddFn("child", []taskgraph.Key{"boom"}, func(in []any) (any, error) {
		return in[0], nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"child"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Gather(futs)
	if err == nil {
		t.Fatal("panicking task did not err")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error does not mention panic: %v", err)
	}
	if st, _ := futs[0].State(); st != StateErred {
		t.Fatalf("child state = %v, want erred", st)
	}
}

func TestPersistKeepsResultsDistributed(t *testing.T) {
	c, cl := testCluster(t, 2)
	g := taskgraph.New()
	g.AddFn("p", nil, func([]any) (any, error) { return 5.0, nil }, 1e-4)
	futs, err := cl.Persist(g, []taskgraph.Key{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	// The value lives on a worker, not the client.
	stats := c.WorkerStatsAll()
	var items int
	for _, w := range stats {
		items += w.StoreItems
	}
	if items != 1 {
		t.Fatalf("store items = %d, want 1", items)
	}
	if c.SchedulerBusy() <= 0 {
		t.Fatal("scheduler busy time not recorded")
	}
	for _, w := range stats {
		if w.Executed > 0 && w.BusySecs <= 0 {
			t.Fatal("executing worker has no busy time")
		}
	}
}

func TestTracing(t *testing.T) {
	c, cl := testCluster(t, 2)
	c.EnableTracing()
	g := taskgraph.New()
	g.AddFn("t1", nil, func([]any) (any, error) { return 1.0, nil }, 1e-3)
	g.AddFn("t2", []taskgraph.Key{"t1"}, func(in []any) (any, error) {
		return in[0].(float64) + 1, nil
	}, 2e-3)
	g.AddFn("bad", nil, func([]any) (any, error) { return nil, errors.New("x") }, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"t2", "bad"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait([]*Future{futs[0]}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait([]*Future{futs[1]}); err == nil {
		t.Fatal("bad task did not err")
	}
	events := c.TraceEvents()
	if len(events) < 3 {
		t.Fatalf("trace has %d events, want >= 3", len(events))
	}
	byKey := map[taskgraph.Key]TraceEvent{}
	for _, e := range events {
		byKey[e.Key] = e
	}
	t1, t2 := byKey["t1"], byKey["t2"]
	if t1.End-t1.Start < 1e-3 {
		t.Fatalf("t1 span too short: %+v", t1)
	}
	if t2.Start < t1.End {
		t.Fatalf("t2 started (%v) before its dependency finished (%v)", t2.Start, t1.End)
	}
	if !byKey["bad"].Erred {
		t.Fatal("erred task not marked in trace")
	}
	var buf strings.Builder
	if err := c.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"name":"t2"`) || !strings.Contains(out, `"ph":"X"`) {
		t.Fatalf("chrome trace malformed: %s", out)
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	c, cl := testCluster(t, 1)
	g := taskgraph.New()
	g.AddFn("x", nil, func([]any) (any, error) { return 1.0, nil }, 1e-4)
	futs, _ := cl.Submit(g, []taskgraph.Key{"x"})
	cl.Wait(futs)
	if len(c.TraceEvents()) != 0 {
		t.Fatal("tracing recorded events while disabled")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	cfg := netsim.Config{
		NodesPerSwitch: 8, LinkBandwidth: 1e9, PruneFactor: 2,
		HopLatency: 1e-6, SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(cfg, 3)
	c := NewCluster(fabric, DefaultConfig(), 0, []netsim.NodeID{2})
	cl := c.NewClient("c", 1, math.Inf(1))
	g := taskgraph.New()
	g.AddFn("x", nil, func([]any) (any, error) { return 1.0, nil }, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // must not panic or hang
}
