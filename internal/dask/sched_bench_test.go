package dask

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"deisago/internal/taskgraph"
)

// Scheduler scalability benchmarks: the paper's headline is that the whole
// multi-timestep analytics graph is submitted once ahead of time, so the
// scheduler ingests and drives O(T·R) tasks in a single burst (T
// timesteps × R ranks). Böhm et al. (PAPERS.md) show per-task scheduler
// overhead is what caps Dask throughput at exactly this regime, so these
// benchmarks track ns/task and allocs/task for the two hot paths:
//
//   - BenchmarkSchedSubmit: graph ingest (submitGraph) alone — the
//     registration, validation, and dependency-wiring cost per task.
//   - BenchmarkSchedDrive: a full ahead-of-time workflow — external
//     create, submit, per-block external scatter, and the transition
//     cascade to completion.
//
// BENCH_SCHED.json records the baselines; scripts/check.sh compares each
// run against them and fails on regression.

// schedBenchWorkers is the cluster size used by the scheduler benchmarks
// (fixed so ns/task entries in BENCH_SCHED.json are comparable).
const schedBenchWorkers = 8

// schedBenchGraph builds the paper-shaped analytics graph for T timesteps
// of R ranks: per step, R leaf tasks each consuming one external block, a
// per-step reduction over the R leaves, and a chained accumulator linking
// the steps. Total graph size: T·R + 2·T tasks over T·R external keys.
func schedBenchGraph(T, R int) (g *taskgraph.Graph, externals []taskgraph.Key, final taskgraph.Key) {
	g = taskgraph.New()
	nop := func(in []any) (any, error) { return 1.0, nil }
	externals = make([]taskgraph.Key, 0, T*R)
	var prev taskgraph.Key
	for t := 0; t < T; t++ {
		stepDeps := make([]taskgraph.Key, 0, R)
		for r := 0; r < R; r++ {
			x := taskgraph.Key(fmt.Sprintf("deisa-f-%d-%d", t, r))
			externals = append(externals, x)
			p := taskgraph.Key(fmt.Sprintf("p-%d-%d", t, r))
			g.AddFn(p, []taskgraph.Key{x}, nop, 1e-6)
			stepDeps = append(stepDeps, p)
		}
		s := taskgraph.Key(fmt.Sprintf("sum-%d", t))
		g.AddFn(s, stepDeps, nop, 1e-6)
		a := taskgraph.Key(fmt.Sprintf("acc-%d", t))
		deps := []taskgraph.Key{s}
		if t > 0 {
			deps = append(deps, prev)
		}
		g.AddFn(a, deps, nop, 1e-6)
		prev = a
	}
	return g, externals, prev
}

// schedBenchSizes is the T×R sweep shared by both benchmarks.
var schedBenchSizes = []struct{ T, R int }{
	{8, 8}, {8, 32}, {8, 64},
	{32, 8}, {32, 32}, {32, 64},
	{64, 8}, {64, 32}, {64, 64},
}

// reportPerTask converts the timed section into ns/task and allocs/task
// custom metrics (nTasks scheduler tasks per iteration).
func reportPerTask(b *testing.B, nTasks int, mallocs uint64) {
	b.Helper()
	denom := float64(b.N) * float64(nTasks)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/denom, "ns/task")
	b.ReportMetric(float64(mallocs)/denom, "allocs/task")
}

// BenchmarkSchedSubmit measures pure graph ingest: T·R+2·T tasks arriving
// at the scheduler in one submitGraph burst, with every leaf blocked on a
// pre-created external key (nothing runs; this is registration + wiring).
func BenchmarkSchedSubmit(b *testing.B) {
	for _, size := range schedBenchSizes {
		b.Run(fmt.Sprintf("T%d_R%d", size.T, size.R), func(b *testing.B) {
			nTasks := size.T*size.R + 2*size.T
			var ms runtime.MemStats
			var mallocs uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, _ := testClusterQuick(schedBenchWorkers)
				g, externals, _ := schedBenchGraph(size.T, size.R)
				if _, err := c.sched.createExternal(externals, 0); err != nil {
					b.Fatal(err)
				}
				g.Keys() // graph construction (incl. key sort) is not under test
				runtime.ReadMemStats(&ms)
				before := ms.Mallocs
				b.StartTimer()
				if _, err := c.sched.submitGraph(g, 0); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				runtime.ReadMemStats(&ms)
				mallocs += ms.Mallocs - before
				c.Close()
				b.StartTimer()
			}
			b.StopTimer()
			reportPerTask(b, nTasks, mallocs)
		})
	}
}

// BenchmarkSchedDrive measures the full ahead-of-time protocol: external
// future creation, one graph submission, T·R external scatters (the
// bridge side), and the scheduler transition cascade driving every task
// to memory.
func BenchmarkSchedDrive(b *testing.B) {
	for _, size := range schedBenchSizes {
		b.Run(fmt.Sprintf("T%d_R%d", size.T, size.R), func(b *testing.B) {
			nTasks := size.T*size.R + 2*size.T
			var ms runtime.MemStats
			var mallocs uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, cl := testClusterQuick(schedBenchWorkers)
				bridge := c.NewClient("bridge", 1, math.Inf(1))
				g, externals, final := schedBenchGraph(size.T, size.R)
				g.Keys()
				runtime.ReadMemStats(&ms)
				before := ms.Mallocs
				b.StartTimer()
				if _, err := cl.ExternalFutures(externals); err != nil {
					b.Fatal(err)
				}
				futs, err := cl.Submit(g, []taskgraph.Key{final})
				if err != nil {
					b.Fatal(err)
				}
				for j, x := range externals {
					if err := bridge.Scatter([]ScatterItem{{Key: x, Value: 1.0}}, true, j%schedBenchWorkers); err != nil {
						b.Fatal(err)
					}
				}
				if err := cl.Wait(futs); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				runtime.ReadMemStats(&ms)
				mallocs += ms.Mallocs - before
				c.Close()
				b.StartTimer()
			}
			b.StopTimer()
			reportPerTask(b, nTasks, mallocs)
		})
	}
}
