package dask

import (
	"fmt"
	"sync"

	"deisago/internal/metrics"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// State is a task's scheduler-side lifecycle state. It mirrors the
// Dask.distributed task state machine, extended with StateExternal — the
// paper's contribution: a task that is neither schedulable nor runnable
// by the cluster; an external environment produces its result and pushes
// it to a worker, after which the scheduler runs the ordinary
// finished-task transition path.
type State int

// Task states.
const (
	StateWaiting State = iota
	StateReady
	StateProcessing
	StateMemory
	StateErred
	StateExternal
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateWaiting:
		return "waiting"
	case StateReady:
		return "ready"
	case StateProcessing:
		return "processing"
	case StateMemory:
		return "memory"
	case StateErred:
		return "erred"
	case StateExternal:
		return "external"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

type schedTask struct {
	key        taskgraph.Key
	fn         taskgraph.Fn
	timed      taskgraph.TimedFn
	cost       vtime.Dur
	outBytes   int64
	priority   int
	deps       []taskgraph.Key
	missing    map[taskgraph.Key]bool // deps not yet in memory
	dependents map[taskgraph.Key]bool
	state      State
	worker     int // result owner (memory) or assignee (processing); -1 unknown
	bytes      int64
	readyAt    vtime.Time
	err        error
	// wasExternal marks tasks created in the external state: if their
	// result is lost with a worker, they return to external (the
	// producing environment can republish) instead of erring.
	wasExternal bool
}

type varEntry struct {
	set   bool
	value any
	setAt vtime.Time
}

type queueItem struct {
	value any
	putAt vtime.Time
}

type queueEntry struct {
	items []queueItem
}

type scheduler struct {
	cl  *Cluster
	cpu *vtime.Resource

	mu     sync.Mutex
	cond   *sync.Cond
	tasks  map[taskgraph.Key]*schedTask
	vars   map[string]*varEntry
	queues map[string]*queueEntry
	rr     int
	// deadWorkers is the scheduler's own view of worker liveness: a
	// worker is dead here once its workerLost replan has run. State
	// checks (and the invariant auditor) use this view, not the
	// real-time worker flag, so a kill that has been signalled but not
	// yet processed cannot make a consistent state look corrupt.
	deadWorkers map[int]bool
	audit       *auditor
	// opAt is the handling time of the mutation in progress; it stamps
	// the per-state task-count gauges (metrics), mirroring auditor.at.
	opAt vtime.Time
	// stateCounts tracks the live number of tasks per state for the
	// scheduler/tasks{state=...} gauges (the dashboard's queue depths).
	nByState [StateExternal + 1]int
}

func newScheduler(cl *Cluster) *scheduler {
	s := &scheduler{
		cl:          cl,
		cpu:         vtime.NewResource("scheduler-cpu"),
		tasks:       make(map[taskgraph.Key]*schedTask),
		vars:        make(map[string]*varEntry),
		queues:      make(map[string]*queueEntry),
		deadWorkers: map[int]bool{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// handle charges the scheduler CPU for one incoming message of the
// given kind arriving at the given time, plus extra per-item work, and
// returns the handling completion time.
func (s *scheduler) handle(kind string, arrival vtime.Time, extra vtime.Dur) vtime.Time {
	s.cl.counters.TotalSchedulerMsg.Add(1)
	s.cl.reg.Counter("scheduler", "messages", metrics.L("kind", kind)).Inc()
	_, end := s.cpu.Acquire(arrival, s.cl.cfg.SchedulerMsgCost+extra)
	return end
}

// stateLabel names a state for transition-counter labels ("new" for the
// creation sentinel).
func stateLabel(st State) string {
	if st == stateNone {
		return "new"
	}
	return st.String()
}

// noteTransLocked counts one task state transition and refreshes the
// per-state task-count gauges at the current mutation time. from is
// stateNone on task creation. Call with s.mu held.
func (s *scheduler) noteTransLocked(from, to State) {
	s.cl.reg.Counter("scheduler", "transitions",
		metrics.L("from", stateLabel(from)), metrics.L("to", to.String())).Inc()
	if from != stateNone {
		s.nByState[from]--
		s.stateGaugeLocked(from)
	}
	s.nByState[to]++
	s.stateGaugeLocked(to)
}

// noteReleaseLocked counts a task leaving the scheduler via release.
func (s *scheduler) noteReleaseLocked(from State) {
	s.cl.reg.Counter("scheduler", "transitions",
		metrics.L("from", from.String()), metrics.L("to", "released")).Inc()
	s.nByState[from]--
	s.stateGaugeLocked(from)
}

func (s *scheduler) stateGaugeLocked(st State) {
	s.cl.reg.Gauge("scheduler", "tasks", metrics.L("state", st.String())).
		Set(float64(s.nByState[st]), s.opAt)
}

// submitGraph registers a culled task graph arriving at the given time.
// Dependencies not present in the graph must already be known to the
// scheduler (scattered data or external tasks). Returns the handling
// completion time.
func (s *scheduler) submitGraph(g *taskgraph.Graph, arrival vtime.Time) (vtime.Time, error) {
	s.cl.counters.GraphsSubmitted.Add(1)
	handled := s.handle("submit", arrival, s.cl.cfg.SchedulerTaskCost*vtime.Dur(g.Len()))

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.auditLocked()
	s.beginOpLocked("submit", handled)

	keys := g.Keys()
	// Validate first: no duplicates, all out-of-graph deps known.
	for _, k := range keys {
		if _, dup := s.tasks[k]; dup {
			return handled, fmt.Errorf("dask: task %q already exists on the scheduler", k)
		}
		t := g.Get(k)
		if t.IsData() {
			return handled, fmt.Errorf("dask: task %q has no body; scatter data instead of submitting it", k)
		}
		for _, d := range t.Deps {
			if g.Has(d) {
				continue
			}
			if _, known := s.tasks[d]; !known {
				return handled, fmt.Errorf("dask: task %q depends on unknown key %q", k, d)
			}
		}
	}
	// Register.
	for _, k := range keys {
		gt := g.Get(k)
		st := &schedTask{
			key:        k,
			fn:         gt.Fn,
			timed:      gt.Timed,
			cost:       gt.Cost,
			outBytes:   gt.OutBytes,
			priority:   gt.Priority,
			deps:       append([]taskgraph.Key(nil), gt.Deps...),
			missing:    map[taskgraph.Key]bool{},
			dependents: map[taskgraph.Key]bool{},
			state:      StateWaiting,
			worker:     -1,
		}
		s.tasks[k] = st
		s.recordLocked(st, stateNone)
		s.noteTransLocked(stateNone, st.state)
		s.cl.counters.TasksRegistered.Add(1)
	}
	// Wire dependencies and find initially runnable tasks.
	var runnable []*schedTask
	for _, k := range keys {
		st := s.tasks[k]
		for _, d := range st.deps {
			dt := s.tasks[d]
			dt.dependents[k] = true
			switch dt.state {
			case StateMemory:
				// satisfied
			case StateErred:
				s.erredLocked(st, fmt.Errorf("dask: dependency %q erred: %w", d, dt.err))
			default:
				st.missing[d] = true
			}
		}
		if st.state == StateWaiting && len(st.missing) == 0 {
			runnable = append(runnable, st)
		}
	}
	for _, st := range runnable {
		s.assignLocked(st, handled)
	}
	s.cond.Broadcast()
	return handled, nil
}

// createExternal registers external tasks for the given keys.
func (s *scheduler) createExternal(keys []taskgraph.Key, arrival vtime.Time) (vtime.Time, error) {
	handled := s.handle("create-external", arrival, s.cl.cfg.SchedulerTaskCost*vtime.Dur(len(keys)))
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.auditLocked()
	s.beginOpLocked("create-external", handled)
	for _, k := range keys {
		if _, dup := s.tasks[k]; dup {
			return handled, fmt.Errorf("dask: external task %q already exists", k)
		}
	}
	for _, k := range keys {
		st := &schedTask{
			key:         k,
			state:       StateExternal,
			worker:      -1,
			missing:     map[taskgraph.Key]bool{},
			dependents:  map[taskgraph.Key]bool{},
			wasExternal: true,
		}
		s.tasks[k] = st
		s.recordLocked(st, stateNone)
		s.noteTransLocked(stateNone, st.state)
		s.cl.counters.ExternalCreated.Add(1)
	}
	return handled, nil
}

// dataItem describes one scattered value already resident on a worker.
type dataItem struct {
	key     taskgraph.Key
	bytes   int64
	worker  int
	readyAt vtime.Time // when the value landed in worker memory
}

// updateData records scattered data. In external mode, each key must name
// an existing task in the external state; the scheduler then follows the
// same transition path as for a finished task (external → memory,
// unblocking dependents). In the default mode (plain Dask scatter), a new
// task is created directly in memory.
func (s *scheduler) updateData(items []dataItem, external bool, arrival vtime.Time) (vtime.Time, error) {
	s.cl.counters.UpdateDataMsgs.Add(1)
	handled := s.handle("update-data", arrival, s.cl.cfg.SchedulerTaskCost*vtime.Dur(len(items)))
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.auditLocked()
	s.beginOpLocked("update-data", handled)
	for _, it := range items {
		st, known := s.tasks[it.key]
		if s.deadWorkers[it.worker] {
			// The target died before the scheduler processed the update:
			// the shipped bytes are lost with it. External keys stay in
			// the external state (the producer retries elsewhere); fresh
			// scatters are simply not registered.
			return handled, fmt.Errorf("dask: update-data for %q targets worker %d: %w",
				it.key, it.worker, ErrWorkerDied)
		}
		if external {
			if !known {
				return handled, fmt.Errorf("dask: external update for unknown key %q", it.key)
			}
			if st.state != StateExternal {
				return handled, fmt.Errorf("dask: external update for key %q in state %s", it.key, st.state)
			}
		} else {
			if known {
				if st.state == StateExternal {
					return handled, fmt.Errorf("dask: non-external scatter to external key %q", it.key)
				}
				return handled, fmt.Errorf("dask: scatter to existing key %q", it.key)
			}
			st = &schedTask{
				key:        it.key,
				worker:     -1,
				missing:    map[taskgraph.Key]bool{},
				dependents: map[taskgraph.Key]bool{},
			}
			s.tasks[it.key] = st
			s.noteTransLocked(stateNone, st.state)
		}
		st.worker = it.worker
		st.bytes = it.bytes
		st.readyAt = it.readyAt
		s.setStateLocked(st, StateMemory)
		s.onMemoryLocked(st, handled)
	}
	s.cond.Broadcast()
	return handled, nil
}

// taskFinished is the worker's completion report; it triggers the
// transition cascade for dependents.
func (s *scheduler) taskFinished(key taskgraph.Key, workerID int, finishedAt vtime.Time, bytes int64, arrival vtime.Time) {
	s.cl.counters.TaskFinishedMsgs.Add(1)
	handled := s.handle("task-finished", arrival, s.cl.cfg.SchedulerTaskCost)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.auditLocked()
	s.beginOpLocked("task-finished", handled)
	st, ok := s.tasks[key]
	if !ok || st.state != StateProcessing || st.worker != workerID || s.deadWorkers[workerID] {
		// Late, duplicate, or dead-worker report; ignore. The worker
		// check rejects completion reports racing a kill after the
		// workerLost replan reassigned the task elsewhere.
		return
	}
	st.worker = workerID
	st.bytes = bytes
	st.readyAt = finishedAt
	s.setStateLocked(st, StateMemory)
	s.onMemoryLocked(st, handled)
	s.cond.Broadcast()
}

// taskErred marks a task failed and cascades the error to dependents.
func (s *scheduler) taskErred(key taskgraph.Key, err error, arrival vtime.Time) {
	handled := s.handle("task-erred", arrival, s.cl.cfg.SchedulerTaskCost)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.auditLocked()
	s.beginOpLocked("task-erred", handled)
	if st, ok := s.tasks[key]; ok {
		s.erredLocked(st, err)
	}
	s.cond.Broadcast()
}

func (s *scheduler) erredLocked(st *schedTask, err error) {
	if st.state == StateErred {
		return
	}
	st.err = err
	s.setStateLocked(st, StateErred)
	for d := range st.dependents {
		if dt := s.tasks[d]; dt != nil {
			s.erredLocked(dt, fmt.Errorf("dask: dependency %q erred: %w", st.key, err))
		}
	}
}

// onMemoryLocked unblocks dependents of a task that just reached memory.
func (s *scheduler) onMemoryLocked(st *schedTask, handled vtime.Time) {
	for d := range st.dependents {
		dt := s.tasks[d]
		if dt == nil || dt.state != StateWaiting {
			continue
		}
		delete(dt.missing, st.key)
		if len(dt.missing) == 0 {
			s.assignLocked(dt, handled)
		}
	}
}

// assignLocked picks a worker for a ready task and enqueues it there.
func (s *scheduler) assignLocked(st *schedTask, departAt vtime.Time) {
	s.setStateLocked(st, StateReady)
	// Decide worker: most dependency bytes already local; ties go round
	// robin. This matches Dask's data-locality-first decide_worker.
	// Dead workers are never chosen.
	best, bestBytes := -1, int64(-1)
	counts := make(map[int]int64)
	for _, d := range st.deps {
		dt := s.tasks[d]
		if dt != nil && dt.worker >= 0 && dt.state == StateMemory && !s.deadWorkers[dt.worker] {
			counts[dt.worker] += dt.bytes
		}
	}
	for w, b := range counts {
		if b > bestBytes || (b == bestBytes && w < best) {
			best, bestBytes = w, b
		}
	}
	if best == -1 {
		live := s.liveWorkersLocked()
		if len(live) == 0 {
			panic("dask: no live workers")
		}
		best = live[s.rr%len(live)]
		s.rr++
	}
	st.worker = best
	s.setStateLocked(st, StateProcessing)

	// Build dependency locations for the worker-side fetch.
	locs := make([]depLoc, 0, len(st.deps))
	for _, d := range st.deps {
		dt := s.tasks[d]
		locs = append(locs, depLoc{key: d, worker: dt.worker, bytes: dt.bytes, readyAt: dt.readyAt})
	}
	w := s.cl.workers[best]
	arrive := s.cl.xfer(s.cl.schedNode, w.node, s.cl.cfg.ControlMsgBytes, departAt)
	w.enqueue(assignment{key: st.key, fn: st.fn, timed: st.timed, cost: st.cost, outBytes: st.outBytes, priority: st.priority, deps: locs, arriveAt: arrive})
}

// waitFor blocks until every key is in memory (or erred) and returns the
// latest readyAt. An error is returned if any task erred or is unknown.
func (s *scheduler) waitFor(keys []taskgraph.Key, arrival vtime.Time) (vtime.Time, error) {
	handled := s.handle("wait", arrival, 0)
	s.mu.Lock()
	defer s.mu.Unlock()
	latest := handled
	for {
		done := true
		latest = handled
		for _, k := range keys {
			st, ok := s.tasks[k]
			if !ok {
				return handled, fmt.Errorf("dask: wait for unknown key %q", k)
			}
			switch st.state {
			case StateMemory:
				if st.readyAt > latest {
					latest = st.readyAt
				}
			case StateErred:
				return handled, st.err
			default:
				done = false
			}
		}
		if done {
			return latest, nil
		}
		s.cond.Wait()
	}
}

// locate returns the owner of a key in memory.
func (s *scheduler) locate(key taskgraph.Key) (workerID int, bytes int64, readyAt vtime.Time, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.tasks[key]
	if !ok {
		return 0, 0, 0, fmt.Errorf("dask: locate unknown key %q", key)
	}
	if st.state == StateErred {
		return 0, 0, 0, st.err
	}
	if st.state != StateMemory {
		return 0, 0, 0, fmt.Errorf("dask: key %q not in memory (state %s)", key, st.state)
	}
	return st.worker, st.bytes, st.readyAt, nil
}

// stateCounts tallies tasks by state for monitoring.
func (s *scheduler) stateCounts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[State]int{}
	for _, st := range s.tasks {
		out[st.state]++
	}
	return out
}

// taskState returns the state of a key for tests and monitoring.
func (s *scheduler) taskState(key taskgraph.Key) (State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.tasks[key]
	if !ok {
		return 0, false
	}
	return st.state, true
}

// metadata accounts one bulk metadata message with the given number of
// entries (each entry costs MetadataEntryCost of scheduler CPU).
func (s *scheduler) metadata(entries int, arrival vtime.Time) vtime.Time {
	s.cl.counters.MetadataMsgs.Add(1)
	s.cl.counters.MetadataEntries.Add(int64(entries))
	return s.handle("metadata", arrival, s.cl.cfg.MetadataEntryCost*vtime.Dur(entries))
}

// release forgets keys: scheduler state is dropped and worker store
// entries freed (Dask's future release / client cancel for completed
// data). Keys with dependents still registered are refused.
func (s *scheduler) release(keys []taskgraph.Key, arrival vtime.Time) (vtime.Time, error) {
	handled := s.handle("release", arrival, s.cl.cfg.SchedulerTaskCost*vtime.Dur(len(keys)))
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.auditLocked()
	s.beginOpLocked("release", handled)
	for _, k := range keys {
		st, ok := s.tasks[k]
		if !ok {
			continue
		}
		for d := range st.dependents {
			if dt := s.tasks[d]; dt != nil {
				return handled, fmt.Errorf("dask: cannot release %q: task %q depends on it", k, d)
			}
		}
	}
	for _, k := range keys {
		st, ok := s.tasks[k]
		if !ok {
			continue
		}
		if st.state == StateMemory && st.worker >= 0 {
			s.cl.workers[st.worker].drop(k, handled)
		}
		for _, d := range st.deps {
			if dt := s.tasks[d]; dt != nil {
				delete(dt.dependents, k)
			}
		}
		s.recordReleaseLocked(st)
		s.noteReleaseLocked(st.state)
		delete(s.tasks, k)
	}
	return handled, nil
}

// heartbeat accounts n client heartbeat messages ending at arrival.
func (s *scheduler) heartbeat(n int, arrival vtime.Time) vtime.Time {
	var end vtime.Time = arrival
	for i := 0; i < n; i++ {
		s.cl.counters.Heartbeats.Add(1)
		end = s.handle("heartbeat", arrival, 0)
	}
	return end
}

// varSet stores a distributed Variable value.
func (s *scheduler) varSet(name string, value any, arrival vtime.Time) vtime.Time {
	s.cl.counters.VariableOps.Add(1)
	s.cl.reg.Counter("scheduler", "variable_ops",
		metrics.L("name", name), metrics.L("op", "set")).Inc()
	handled := s.handle("var-set", arrival, 0)
	s.mu.Lock()
	s.vars[name] = &varEntry{set: true, value: value, setAt: handled}
	s.mu.Unlock()
	s.cond.Broadcast()
	return handled
}

// varGet blocks until the Variable is set and returns its value and the
// virtual time at which the response can leave the scheduler.
func (s *scheduler) varGet(name string, arrival vtime.Time) (any, vtime.Time) {
	s.cl.counters.VariableOps.Add(1)
	s.cl.reg.Counter("scheduler", "variable_ops",
		metrics.L("name", name), metrics.L("op", "get")).Inc()
	handled := s.handle("var-get", arrival, 0)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if e, ok := s.vars[name]; ok && e.set {
			avail := handled
			if e.setAt > avail {
				avail = e.setAt
			}
			return e.value, avail
		}
		s.cond.Wait()
	}
}

// queuePut appends a value to a distributed Queue.
func (s *scheduler) queuePut(name string, value any, arrival vtime.Time) vtime.Time {
	s.cl.counters.QueueOps.Add(1)
	s.cl.reg.Counter("scheduler", "queue_ops",
		metrics.L("name", name), metrics.L("op", "put")).Inc()
	handled := s.handle("queue-put", arrival, 0)
	s.mu.Lock()
	q := s.queues[name]
	if q == nil {
		q = &queueEntry{}
		s.queues[name] = q
	}
	q.items = append(q.items, queueItem{value: value, putAt: handled})
	s.mu.Unlock()
	s.cond.Broadcast()
	return handled
}

// queueGet blocks until the Queue is non-empty and pops its head.
func (s *scheduler) queueGet(name string, arrival vtime.Time) (any, vtime.Time) {
	s.cl.counters.QueueOps.Add(1)
	s.cl.reg.Counter("scheduler", "queue_ops",
		metrics.L("name", name), metrics.L("op", "get")).Inc()
	handled := s.handle("queue-get", arrival, 0)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if q := s.queues[name]; q != nil && len(q.items) > 0 {
			it := q.items[0]
			q.items = q.items[1:]
			avail := handled
			if it.putAt > avail {
				avail = it.putAt
			}
			return it.value, avail
		}
		s.cond.Wait()
	}
}
