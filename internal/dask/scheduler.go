package dask

import (
	"fmt"
	"sort"
	"sync"

	"deisago/internal/metrics"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// State is a task's scheduler-side lifecycle state. It mirrors the
// Dask.distributed task state machine, extended with StateExternal — the
// paper's contribution: a task that is neither schedulable nor runnable
// by the cluster; an external environment produces its result and pushes
// it to a worker, after which the scheduler runs the ordinary
// finished-task transition path.
type State int

// Task states.
const (
	StateWaiting State = iota
	StateReady
	StateProcessing
	StateMemory
	StateErred
	StateExternal
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateWaiting:
		return "waiting"
	case StateReady:
		return "ready"
	case StateProcessing:
		return "processing"
	case StateMemory:
		return "memory"
	case StateErred:
		return "erred"
	case StateExternal:
		return "external"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// taskID is a dense integer handle for a task key, interned the first
// time the scheduler sees the key. IDs live for the cluster lifetime:
// releasing a key frees its task-table slot but keeps the interning, so
// a re-registered key reuses its old ID. All scheduler-internal state
// (task table, dependency wiring, worker object stores) is keyed by ID;
// the string key survives only at the client API boundary and in
// traces, metrics labels, and error messages.
type taskID int32

type schedTask struct {
	id       taskID
	key      taskgraph.Key // original key, for traces/errors/labels
	fn       taskgraph.Fn
	timed    taskgraph.TimedFn
	cost     vtime.Dur
	outBytes int64
	priority int
	// deps holds the deduplicated dependency IDs, carved from one
	// per-submit block; it is never mutated after registration.
	deps []taskID
	// missingCount is the number of deps not yet in memory. It replaces
	// the per-task missing map: decremented as deps reach memory,
	// rebuilt from dep states on worker loss.
	missingCount int32
	// dependents lists the registered tasks depending on this one.
	// In-batch edges are carved from one shared block per submitGraph;
	// later cross-batch edges append past the carved cap, which
	// reallocates the slice without touching neighbouring windows.
	dependents []taskID
	// wired marks registration complete; during submitGraph it
	// distinguishes the batch being registered (whose dependent windows
	// are still being carved, using deg as scratch) from older tasks.
	wired bool
	deg   int32
	state State
	// worker is the result owner (memory) or assignee (processing); -1
	// unknown.
	worker  int
	bytes   int64
	readyAt vtime.Time
	err     error
	// wasExternal marks tasks created in the external state: if their
	// result is lost with a worker, they return to external (the
	// producing environment can republish) instead of erring.
	wasExternal bool
}

type varEntry struct {
	set   bool
	value any
	setAt vtime.Time
}

type queueItem struct {
	value any
	putAt vtime.Time
}

type queueEntry struct {
	items []queueItem
}

// readyItem is one runnable task queued for assignment.
type readyItem struct {
	priority int
	id       taskID
}

// readyQueue is a binary min-heap of runnable tasks ordered by
// (priority, taskID). The taskID tie-break makes the pop order a pure
// function of the queue contents — no insertion-order dependence — so
// same-seed runs drain identically. A typed heap (rather than
// container/heap) keeps push/pop free of interface boxing allocations.
type readyQueue []readyItem

func (q readyQueue) less(i, j int) bool {
	return q[i].priority < q[j].priority ||
		(q[i].priority == q[j].priority && q[i].id < q[j].id)
}

// up sifts element i toward the root.
func (q readyQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// down sifts element i toward the leaves.
func (q readyQueue) down(i int) {
	n := len(q)
	for {
		small := i
		if l := 2*i + 1; l < n && q.less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
}

func (q *readyQueue) push(priority int, id taskID) {
	arr := append(*q, readyItem{priority: priority, id: id})
	arr.up(len(arr) - 1)
	*q = arr
}

// removeAt deletes the element at heap index i, restoring heap order.
// The schedule explorer uses it to pop an arbitrary member of the tied
// minimal-priority set; i = 0 is the ordinary pop.
func (q *readyQueue) removeAt(i int) taskID {
	arr := *q
	id := arr[i].id
	n := len(arr) - 1
	arr[i] = arr[n]
	arr = arr[:n]
	*q = arr
	if i < n {
		arr.down(i)
		arr.up(i)
	}
	return id
}

func (q *readyQueue) pop() taskID { return q.removeAt(0) }

type scheduler struct {
	cl  *Cluster
	cpu *vtime.Resource

	mu   sync.Mutex
	cond *sync.Cond
	// Interned key tables. ids and keys are append-only for the cluster
	// lifetime; tasks is indexed by taskID and nil for released (or
	// interned-but-never-registered) slots.
	ids   map[taskgraph.Key]taskID
	keys  []taskgraph.Key
	tasks []*schedTask
	// ready queues runnable tasks between a transition and assignment;
	// it is always drained before the owning operation returns.
	ready  readyQueue
	vars   map[string]*varEntry
	queues map[string]*queueEntry
	rr     int
	// deadWorkers is the scheduler's own view of worker liveness: a
	// worker is dead here once its workerLost replan has run. State
	// checks (and the invariant auditor) use this view, not the
	// real-time worker flag, so a kill that has been signalled but not
	// yet processed cannot make a consistent state look corrupt.
	deadWorkers map[int]bool
	audit       *auditor
	// opAt is the handling time of the mutation in progress; it stamps
	// the per-state task-count gauges (metrics), mirroring auditor.at.
	opAt vtime.Time
	// nByState tracks the live number of tasks per state for the
	// scheduler/tasks{state=...} gauges (the dashboard's queue depths).
	nByState [StateExternal + 1]int
	// dirtyStates accumulates states whose gauge changed during the
	// mutation in progress; endOpLocked flushes them in one batch
	// instead of one registry call per transition.
	dirtyStates uint8

	// Cached registry handles: the per-message and per-transition
	// counters are on the hot path, and the registry's Counter lookup
	// formats a metric ID per call. msgC is built once at construction
	// and read-only afterwards (handle runs outside s.mu); transC and
	// stateG fill lazily under s.mu so the registry contents stay
	// identical to creating each series on first use.
	msgC   map[string]*metrics.Counter
	transC [StateExternal + 2][StateExternal + 2]*metrics.Counter
	stateG [StateExternal + 1]*metrics.Gauge

	// Locality scratch for assignLocked: per-worker byte tallies reused
	// across calls via an epoch stamp, replacing a per-call map.
	assignBytes   []int64
	assignMark    []uint32
	assignTouched []int
	assignEpoch   uint32

	// Tie-break scratch, used only when cfg.TieBreak is set (schedule
	// exploration): candidate sets reused across decisions.
	readyTied   tied
	assignCands []int

	// Multi-tenant fair-share state (see tenant.go). Empty on every
	// single-job cluster: each tenant-aware branch is gated on
	// len(tenants) > 0, so the untenanted hot path is unchanged.
	tenants   []*tenantState
	tenantIdx map[string]int // tenant name -> tenants index
	// tenantOf tags each interned taskID with its tenant index; it is
	// appended in lockstep with keys once tenants exist.
	tenantOf []int32
	// readyN is the queued-entry total across all per-tenant heaps.
	readyN int
	// virtualTime is the system virtual service (the vs of the last
	// served tenant); activating tenants catch up to it.
	virtualTime float64
	totalPops   int64
	// tenantsDirty marks tenant gauges for the endOpLocked batch flush;
	// tenantFlushSkip throttles that flush to every tenantFlushStride-th
	// dirty operation.
	tenantsDirty    bool
	tenantFlushSkip int
	jainG           *metrics.Gauge
	tenantCands     []*tenantState
	auditTenantB    []int64
}

// msgKinds enumerates every scheduler message kind, so the per-kind
// counters can be created once up front and then read without locking.
var msgKinds = []string{
	"submit", "create-external", "update-data", "task-finished",
	"task-erred", "wait", "metadata", "release", "heartbeat",
	"var-set", "var-get", "queue-put", "queue-get", "worker-lost",
}

func newScheduler(cl *Cluster) *scheduler {
	s := &scheduler{
		cl:          cl,
		cpu:         vtime.NewResource("scheduler-cpu"),
		ids:         make(map[taskgraph.Key]taskID),
		vars:        make(map[string]*varEntry),
		queues:      make(map[string]*queueEntry),
		deadWorkers: map[int]bool{},
		msgC:        make(map[string]*metrics.Counter, len(msgKinds)),
	}
	for _, kind := range msgKinds {
		s.msgC[kind] = cl.reg.Counter("scheduler", "messages", metrics.L("kind", kind))
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// internLocked returns the dense ID for a key, assigning the next one on
// first sight. Caller holds s.mu.
func (s *scheduler) internLocked(k taskgraph.Key) taskID {
	if id, ok := s.ids[k]; ok {
		return id
	}
	id := taskID(len(s.keys))
	s.ids[k] = id
	s.keys = append(s.keys, k)
	s.tasks = append(s.tasks, nil)
	if len(s.tenants) > 0 {
		s.tenantOf = append(s.tenantOf, s.tenantTagLocked(k))
	}
	return id
}

// intern is the locking wrapper used by the client boundary (scatter
// interns keys before shipping data so worker stores are ID-keyed).
func (s *scheduler) intern(k taskgraph.Key) taskID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.internLocked(k)
}

// lookupLocked resolves a key to its registered task, or nil if the key
// was never registered or has been released. Caller holds s.mu.
func (s *scheduler) lookupLocked(k taskgraph.Key) *schedTask {
	if id, ok := s.ids[k]; ok {
		return s.tasks[id]
	}
	return nil
}

// handle charges the scheduler CPU for one incoming message of the
// given kind arriving at the given time, plus extra per-item work, and
// returns the handling completion time.
func (s *scheduler) handle(kind string, arrival vtime.Time, extra vtime.Dur) vtime.Time {
	s.cl.counters.TotalSchedulerMsg.Add(1)
	if c, ok := s.msgC[kind]; ok {
		c.Inc()
	} else {
		s.cl.reg.Counter("scheduler", "messages", metrics.L("kind", kind)).Inc()
	}
	_, end := s.cpu.Acquire(arrival, s.cl.cfg.SchedulerMsgCost+extra)
	return end
}

// stateLabel names a state for transition-counter labels ("new" for the
// creation sentinel).
func stateLabel(st State) string {
	if st == stateNone {
		return "new"
	}
	return st.String()
}

// transCounterLocked returns the cached counter for a from→to
// transition; toIdx StateExternal+1 is the released pseudo-state.
func (s *scheduler) transCounterLocked(from State, toIdx int, toLabel string) *metrics.Counter {
	c := s.transC[from+1][toIdx]
	if c == nil {
		c = s.cl.reg.Counter("scheduler", "transitions",
			metrics.L("from", stateLabel(from)), metrics.L("to", toLabel))
		s.transC[from+1][toIdx] = c
	}
	return c
}

// noteTransLocked counts one task state transition and marks the
// per-state task-count gauges dirty (flushed once per mutation by
// endOpLocked). from is stateNone on task creation. Call with s.mu held.
func (s *scheduler) noteTransLocked(from, to State) {
	s.transCounterLocked(from, int(to), to.String()).Inc()
	if from != stateNone {
		s.nByState[from]--
		s.dirtyStates |= 1 << uint(from)
	}
	s.nByState[to]++
	s.dirtyStates |= 1 << uint(to)
}

// noteReleaseLocked counts a task leaving the scheduler via release.
func (s *scheduler) noteReleaseLocked(from State) {
	s.transCounterLocked(from, int(StateExternal)+1, "released").Inc()
	s.nByState[from]--
	s.dirtyStates |= 1 << uint(from)
}

// endOpLocked closes a mutating operation: it flushes the dirty
// per-state gauges at the operation's handling time in one batch, then
// runs the invariant auditor. Deferred by every mutating entry point.
func (s *scheduler) endOpLocked() {
	if s.dirtyStates != 0 {
		for st := StateWaiting; st <= StateExternal; st++ {
			if s.dirtyStates&(1<<uint(st)) == 0 {
				continue
			}
			g := s.stateG[st]
			if g == nil {
				g = s.cl.reg.Gauge("scheduler", "tasks", metrics.L("state", st.String()))
				s.stateG[st] = g
			}
			g.Set(float64(s.nByState[st]), s.opAt)
		}
		s.dirtyStates = 0
	}
	if s.tenantsDirty {
		// Throttled: the fairness gauges are derived (share, bytes,
		// Jain) and change a little on every pop, so flushing each
		// operation would put 5 gauge appends on every scheduler op and
		// bloat the snapshot series. Stats reads and the harness flush
		// the final values explicitly.
		if s.tenantFlushSkip++; s.tenantFlushSkip >= tenantFlushStride {
			s.flushTenantGaugesLocked()
			s.tenantsDirty = false
			s.tenantFlushSkip = 0
		}
	}
	s.auditLocked()
}

// submitGraph registers a culled task graph arriving at the given time.
// Dependencies not present in the graph must already be known to the
// scheduler (scattered data or external tasks). Returns the handling
// completion time.
func (s *scheduler) submitGraph(g *taskgraph.Graph, arrival vtime.Time) (vtime.Time, error) {
	s.cl.counters.GraphsSubmitted.Add(1)
	handled := s.handle("submit", arrival, s.cl.cfg.SchedulerTaskCost*vtime.Dur(g.Len()))

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endOpLocked()
	s.beginOpLocked("submit", handled)

	keys := g.Keys()
	// Validate first, before any scheduler mutation: no duplicates, no
	// bodyless tasks, all out-of-graph deps known.
	totalDeps := 0
	var verr error
	g.Walk(func(k taskgraph.Key, t *taskgraph.Task) bool {
		if s.lookupLocked(k) != nil {
			verr = fmt.Errorf("dask: task %q already exists on the scheduler", k)
			return false
		}
		if t.IsData() {
			verr = fmt.Errorf("dask: task %q has no body; scatter data instead of submitting it", k)
			return false
		}
		totalDeps += len(t.Deps)
		var ttag int32
		if len(s.tenants) > 0 {
			ttag = s.tenantTagLocked(k)
		}
		for _, d := range t.Deps {
			if len(s.tenants) > 0 && s.tenantTagLocked(d) != ttag {
				verr = fmt.Errorf("dask: task %q (tenant %q) depends on %q: dependency edges may not cross tenant namespaces",
					k, tenantLabel(s.tenants[ttag].name), d)
				return false
			}
			if g.Has(d) {
				continue
			}
			if s.lookupLocked(d) == nil {
				verr = fmt.Errorf("dask: task %q depends on unknown key %q", k, d)
				return false
			}
		}
		return true
	})
	if verr != nil {
		return handled, verr
	}
	// Register. One schedTask block and one dependency-ID block serve
	// the whole batch: per-task registration allocates O(1), not
	// O(deps) — the win the interning buys over per-task maps.
	slab := make([]schedTask, len(keys))
	depIDs := make([]taskID, 0, totalDeps)
	for i, k := range keys {
		gt := g.Get(k)
		id := s.internLocked(k)
		start := len(depIDs)
	deps:
		for _, d := range gt.Deps {
			did := s.internLocked(d)
			for _, seen := range depIDs[start:] {
				if seen == did {
					continue deps // count each dependency edge once
				}
			}
			depIDs = append(depIDs, did)
		}
		slab[i] = schedTask{
			id:       id,
			key:      k,
			fn:       gt.Fn,
			timed:    gt.Timed,
			cost:     gt.Cost,
			outBytes: gt.OutBytes,
			priority: gt.Priority,
			deps:     depIDs[start:len(depIDs):len(depIDs)],
			state:    StateWaiting,
			worker:   -1,
		}
		st := &slab[i]
		s.tasks[id] = st
		s.recordLocked(st, stateNone)
		s.noteTransLocked(stateNone, st.state)
	}
	s.cl.counters.TasksRegistered.Add(int64(len(keys)))
	// Carve dependent-edge windows: count each new task's in-batch
	// degree, then hand it a zero-length window of one shared block.
	// Edges into previously-registered tasks append to their existing
	// slices (append past the carved cap reallocates, so windows of
	// different tasks never clobber each other).
	inBatch := 0
	for i := range slab {
		for _, d := range slab[i].deps {
			if dt := s.tasks[d]; !dt.wired {
				dt.deg++
				inBatch++
			}
		}
	}
	edges := make([]taskID, inBatch)
	off := 0
	for i := range slab {
		deg := int(slab[i].deg)
		slab[i].dependents = edges[off : off : off+deg]
		off += deg
		slab[i].deg = 0
		slab[i].wired = true
	}
	// Wire dependencies and queue initially runnable tasks.
	for i := range slab {
		st := &slab[i]
		for _, d := range st.deps {
			dt := s.tasks[d]
			dt.dependents = append(dt.dependents, st.id)
			switch dt.state {
			case StateMemory:
				// satisfied
			case StateErred:
				s.erredLocked(st, fmt.Errorf("dask: dependency %q erred: %w", dt.key, dt.err))
			default:
				st.missingCount++
			}
		}
		if st.state == StateWaiting && st.missingCount == 0 {
			s.pushReadyLocked(st.priority, st.id)
		}
	}
	s.drainReadyLocked(handled)
	s.cond.Broadcast()
	return handled, nil
}

// createExternal registers external tasks for the given keys.
func (s *scheduler) createExternal(keys []taskgraph.Key, arrival vtime.Time) (vtime.Time, error) {
	handled := s.handle("create-external", arrival, s.cl.cfg.SchedulerTaskCost*vtime.Dur(len(keys)))
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endOpLocked()
	s.beginOpLocked("create-external", handled)
	for _, k := range keys {
		if s.lookupLocked(k) != nil {
			return handled, fmt.Errorf("dask: external task %q already exists", k)
		}
	}
	slab := make([]schedTask, len(keys))
	for i, k := range keys {
		id := s.internLocked(k)
		slab[i] = schedTask{
			id:          id,
			key:         k,
			state:       StateExternal,
			worker:      -1,
			wired:       true,
			wasExternal: true,
		}
		st := &slab[i]
		s.tasks[id] = st
		s.recordLocked(st, stateNone)
		s.noteTransLocked(stateNone, st.state)
	}
	s.cl.counters.ExternalCreated.Add(int64(len(keys)))
	return handled, nil
}

// dataItem describes one scattered value already resident on a worker.
// The key is interned by the client boundary before the data message
// departs, so the scheduler works on IDs throughout.
type dataItem struct {
	key     taskgraph.Key
	id      taskID
	bytes   int64
	worker  int
	readyAt vtime.Time // when the value landed in worker memory
}

// updateData records scattered data. In external mode, each key must name
// an existing task in the external state; the scheduler then follows the
// same transition path as for a finished task (external → memory,
// unblocking dependents). In the default mode (plain Dask scatter), a new
// task is created directly in memory.
func (s *scheduler) updateData(items []dataItem, external bool, arrival vtime.Time) (vtime.Time, error) {
	s.cl.counters.UpdateDataMsgs.Add(1)
	handled := s.handle("update-data", arrival, s.cl.cfg.SchedulerTaskCost*vtime.Dur(len(items)))
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endOpLocked()
	s.beginOpLocked("update-data", handled)
	for _, it := range items {
		st := s.tasks[it.id]
		if s.deadWorkers[it.worker] {
			// The target died before the scheduler processed the update:
			// the shipped bytes are lost with it. External keys stay in
			// the external state (the producer retries elsewhere); fresh
			// scatters are simply not registered.
			return handled, fmt.Errorf("dask: update-data for %q targets worker %d: %w",
				it.key, it.worker, ErrWorkerDied)
		}
		if external {
			if st == nil {
				return handled, fmt.Errorf("dask: external update for unknown key %q", it.key)
			}
			if st.state != StateExternal {
				return handled, fmt.Errorf("dask: external update for key %q in state %s", it.key, st.state)
			}
		} else {
			if st != nil {
				if st.state == StateExternal {
					return handled, fmt.Errorf("dask: non-external scatter to external key %q", it.key)
				}
				return handled, fmt.Errorf("dask: scatter to existing key %q", it.key)
			}
			st = &schedTask{
				id:     it.id,
				key:    it.key,
				worker: -1,
				wired:  true,
			}
			s.tasks[it.id] = st
			s.noteTransLocked(stateNone, st.state)
		}
		st.worker = it.worker
		st.bytes = it.bytes
		st.readyAt = it.readyAt
		s.setStateLocked(st, StateMemory)
		s.onMemoryLocked(st)
		s.drainReadyLocked(handled)
	}
	s.cond.Broadcast()
	return handled, nil
}

// taskFinished is the worker's completion report; it triggers the
// transition cascade for dependents.
func (s *scheduler) taskFinished(id taskID, workerID int, finishedAt vtime.Time, bytes int64, arrival vtime.Time) {
	s.cl.counters.TaskFinishedMsgs.Add(1)
	handled := s.handle("task-finished", arrival, s.cl.cfg.SchedulerTaskCost)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endOpLocked()
	s.beginOpLocked("task-finished", handled)
	st := s.tasks[id]
	if st == nil || st.state != StateProcessing || st.worker != workerID || s.deadWorkers[workerID] {
		// Late, duplicate, or dead-worker report; ignore. The worker
		// check rejects completion reports racing a kill after the
		// workerLost replan reassigned the task elsewhere. The worker
		// stored its result before reporting, so a rejected report must
		// also purge those bytes — the task was released or erred (a
		// dependency died mid-run) and its value must not linger in the
		// store. A duplicate report for a value legitimately resident
		// here is the one stale case that keeps its bytes.
		if !s.deadWorkers[workerID] && !(st != nil && st.state == StateMemory && st.worker == workerID) {
			s.cl.workers[workerID].drop(id, finishedAt)
		}
		return
	}
	st.worker = workerID
	st.bytes = bytes
	st.readyAt = finishedAt
	s.setStateLocked(st, StateMemory)
	s.onMemoryLocked(st)
	s.drainReadyLocked(handled)
	s.cond.Broadcast()
}

// taskErred marks a task failed and cascades the error to dependents.
func (s *scheduler) taskErred(id taskID, err error, arrival vtime.Time) {
	handled := s.handle("task-erred", arrival, s.cl.cfg.SchedulerTaskCost)
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endOpLocked()
	s.beginOpLocked("task-erred", handled)
	if st := s.tasks[id]; st != nil {
		s.erredLocked(st, err)
	}
	s.cond.Broadcast()
}

func (s *scheduler) erredLocked(st *schedTask, err error) {
	if st.state == StateErred {
		return
	}
	st.err = err
	s.setStateLocked(st, StateErred)
	for _, d := range st.dependents {
		if dt := s.tasks[d]; dt != nil {
			s.erredLocked(dt, fmt.Errorf("dask: dependency %q erred: %w", st.key, err))
		}
	}
}

// onMemoryLocked unblocks dependents of a task that just reached memory,
// queuing newly-runnable ones on the ready heap. The caller drains the
// heap before returning.
func (s *scheduler) onMemoryLocked(st *schedTask) {
	for _, d := range st.dependents {
		dt := s.tasks[d]
		if dt == nil || dt.state != StateWaiting {
			continue
		}
		dt.missingCount--
		if dt.missingCount == 0 {
			s.pushReadyLocked(dt.priority, dt.id)
		}
	}
}

// drainReadyLocked assigns every queued runnable task in (priority,
// taskID) order. Entries whose task changed state since queuing (erred
// cascade, release) are skipped.
func (s *scheduler) drainReadyLocked(departAt vtime.Time) {
	for s.readyLenLocked() > 0 {
		id := s.popReadyLocked()
		st := s.tasks[id]
		if st == nil || st.state != StateWaiting || st.missingCount != 0 ||
			(st.fn == nil && st.timed == nil) {
			continue
		}
		s.assignLocked(st, departAt)
	}
}

// popReadyLocked removes the next runnable task. On untenanted
// clusters this pops the global ready heap; with tenants registered,
// the fair-share layer first picks the tenant to serve (smallest
// virtual service) and then pops that tenant's heap, advancing its
// virtual service by 1/weight.
func (s *scheduler) popReadyLocked() taskID {
	if len(s.tenants) == 0 {
		return s.popQueueLocked(&s.ready)
	}
	t := s.pickTenantLocked()
	id := s.popQueueLocked(&t.ready)
	s.readyN--
	s.virtualTime = t.vs
	t.vs += 1.0 / t.weight
	t.pops++
	s.totalPops++
	t.popsC.Inc()
	s.tenantsDirty = true
	return id
}

// popQueueLocked removes the next runnable task from one ready heap.
// Without a tie-breaker this is the heap minimum — (priority, taskID)
// order. With one, every entry tied at the minimal priority is a legal
// next pick: the candidates are ordered by task key (content-stable
// across runs, unlike interned IDs) and the breaker chooses among them.
func (s *scheduler) popQueueLocked(q *readyQueue) taskID {
	tb := s.cl.cfg.TieBreak
	if tb == nil || len(*q) < 2 {
		return q.pop()
	}
	minPrio := (*q)[0].priority
	tied := tied(s.readyTied[:0])
	for i, it := range *q {
		if it.priority == minPrio {
			tied = append(tied, tiedCand{idx: i, key: string(s.keys[it.id])})
		}
	}
	s.readyTied = tied
	if len(tied) < 2 {
		return q.pop()
	}
	sort.Sort(tied)
	pick := clampPick(tb.Pick(Decision{Point: PointReadyPop, Key: tied[0].key, N: len(tied)}), len(tied))
	return q.removeAt(tied[pick].idx)
}

// tiedCand is one member of a tied candidate set: its heap index and
// its content-stable sort key.
type tiedCand struct {
	idx int
	key string
}

type tied []tiedCand

func (t tied) Len() int           { return len(t) }
func (t tied) Less(i, j int) bool { return t[i].key < t[j].key }
func (t tied) Swap(i, j int)      { t[i], t[j] = t[j], t[i] }

// assignLocked picks a worker for a ready task and enqueues it there.
func (s *scheduler) assignLocked(st *schedTask, departAt vtime.Time) {
	s.setStateLocked(st, StateReady)
	// Decide worker: most dependency bytes already local; ties go to the
	// lowest worker id. This matches Dask's data-locality-first
	// decide_worker. Dead workers are never chosen. The per-worker byte
	// tallies live in epoch-stamped scratch arrays so deciding allocates
	// nothing.
	if len(s.assignMark) < len(s.cl.workers) {
		s.assignMark = make([]uint32, len(s.cl.workers))
		s.assignBytes = make([]int64, len(s.cl.workers))
	}
	s.assignEpoch++
	touched := s.assignTouched[:0]
	for _, d := range st.deps {
		dt := s.tasks[d]
		if dt != nil && dt.worker >= 0 && dt.state == StateMemory && !s.deadWorkers[dt.worker] {
			w := dt.worker
			if s.assignMark[w] != s.assignEpoch {
				s.assignMark[w] = s.assignEpoch
				s.assignBytes[w] = 0
				touched = append(touched, w)
			}
			s.assignBytes[w] += dt.bytes
		}
	}
	s.assignTouched = touched
	best, bestBytes := -1, int64(-1)
	for _, w := range touched {
		if s.cl.workers[w].pausedAt(departAt) {
			continue // above its memory watermark: let it drain
		}
		if b := s.assignBytes[w]; b > bestBytes || (b == bestBytes && w < best) {
			best, bestBytes = w, b
		}
	}
	if tb := s.cl.cfg.TieBreak; tb != nil && best >= 0 {
		// Every non-paused candidate holding the maximal local bytes is
		// a legal target; let the breaker choose (ids ascend, so the
		// candidate order is stable by construction).
		cands := s.assignCands[:0]
		for _, w := range touched {
			if s.assignBytes[w] == bestBytes && !s.cl.workers[w].pausedAt(departAt) {
				cands = append(cands, w)
			}
		}
		sort.Ints(cands)
		s.assignCands = cands
		if len(cands) > 1 {
			best = cands[clampPick(tb.Pick(Decision{Point: PointAssignWorker, Key: string(st.key), N: len(cands)}), len(cands))]
		}
	}
	if best == -1 {
		live := s.liveWorkersLocked()
		if len(live) == 0 {
			panic("dask: no live workers")
		}
		if tb := s.cl.cfg.TieBreak; tb != nil {
			// Without locality, any non-paused live worker is legal.
			cands := s.assignCands[:0]
			for _, cand := range live {
				if !s.cl.workers[cand].pausedAt(departAt) {
					cands = append(cands, cand)
				}
			}
			s.assignCands = cands
			if len(cands) > 0 {
				best = cands[clampPick(tb.Pick(Decision{Point: PointAssignWorker, Key: string(st.key), N: len(cands)}), len(cands))]
				s.rr++
			}
		}
		if best == -1 {
			// Round-robin over live workers, skipping paused ones (the
			// pausedAt probe is a single relaxed load on ungoverned
			// clusters, so the unmanaged hot path is unchanged).
			for i := range live {
				cand := live[(s.rr+i)%len(live)]
				if !s.cl.workers[cand].pausedAt(departAt) {
					best = cand
					s.rr += i + 1
					break
				}
			}
		}
		if best == -1 {
			// Every live worker is paused. Stalling the ready queue
			// would deadlock the run, so take the least-loaded ledger:
			// liveness beats strictness, and the auditor still bounds
			// the overrun to oversize grants.
			var bestMem int64
			for i, cand := range live {
				cw := s.cl.workers[cand]
				cw.storeMu.RLock()
				mem := cw.memBytes
				cw.storeMu.RUnlock()
				if i == 0 || mem < bestMem {
					best, bestMem = cand, mem
				}
			}
			s.rr++
		}
	}
	st.worker = best
	s.setStateLocked(st, StateProcessing)
	if len(s.tenants) > 0 {
		s.tenants[s.tenantOf[st.id]].assignedC.Inc()
	}

	// Build dependency locations for the worker-side fetch.
	locs := make([]depLoc, 0, len(st.deps))
	for _, d := range st.deps {
		dt := s.tasks[d]
		locs = append(locs, depLoc{id: d, worker: dt.worker, bytes: dt.bytes, readyAt: dt.readyAt})
	}
	w := s.cl.workers[best]
	arrive := s.cl.xfer(s.cl.schedNode, w.node, s.cl.cfg.ControlMsgBytes, departAt)
	w.enqueue(assignment{id: st.id, key: st.key, fn: st.fn, timed: st.timed, cost: st.cost, outBytes: st.outBytes, priority: st.priority, deps: locs, arriveAt: arrive})
}

// waitFor blocks until every key is in memory (or erred) and returns the
// latest readyAt. An error is returned if any task erred or is unknown.
func (s *scheduler) waitFor(keys []taskgraph.Key, arrival vtime.Time) (vtime.Time, error) {
	handled := s.handle("wait", arrival, 0)
	s.mu.Lock()
	defer s.mu.Unlock()
	latest := handled
	for {
		done := true
		latest = handled
		for _, k := range keys {
			st := s.lookupLocked(k)
			if st == nil {
				return handled, fmt.Errorf("dask: wait for unknown key %q", k)
			}
			switch st.state {
			case StateMemory:
				if st.readyAt > latest {
					latest = st.readyAt
				}
			case StateErred:
				return handled, st.err
			default:
				done = false
			}
		}
		if done {
			return latest, nil
		}
		s.cond.Wait()
	}
}

// locate returns the owner of a key in memory, along with the key's
// interned ID (worker object stores are ID-keyed).
func (s *scheduler) locate(key taskgraph.Key) (workerID int, id taskID, bytes int64, readyAt vtime.Time, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.lookupLocked(key)
	if st == nil {
		return 0, 0, 0, 0, fmt.Errorf("dask: locate unknown key %q", key)
	}
	if st.state == StateErred {
		return 0, 0, 0, 0, st.err
	}
	if st.state != StateMemory {
		return 0, 0, 0, 0, fmt.Errorf("dask: key %q not in memory (state %s)", key, st.state)
	}
	return st.worker, st.id, st.bytes, st.readyAt, nil
}

// stateCounts tallies tasks by state for monitoring, served from the
// batched per-state counts kept by the transition recorder (no task
// table scan).
func (s *scheduler) stateCounts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[State]int{}
	for st, n := range s.nByState {
		if n != 0 {
			out[State(st)] = n
		}
	}
	return out
}

// taskState returns the state of a key for tests and monitoring.
func (s *scheduler) taskState(key taskgraph.Key) (State, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.lookupLocked(key)
	if st == nil {
		return 0, false
	}
	return st.state, true
}

// idFor returns the interned ID of a key, if the key has ever been seen.
func (s *scheduler) idFor(key taskgraph.Key) (taskID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.ids[key]
	return id, ok
}

// metadata accounts one bulk metadata message with the given number of
// entries (each entry costs MetadataEntryCost of scheduler CPU).
func (s *scheduler) metadata(entries int, arrival vtime.Time) vtime.Time {
	s.cl.counters.MetadataMsgs.Add(1)
	s.cl.counters.MetadataEntries.Add(int64(entries))
	return s.handle("metadata", arrival, s.cl.cfg.MetadataEntryCost*vtime.Dur(entries))
}

// release forgets keys: scheduler state is dropped and worker store
// entries freed (Dask's future release / client cancel for completed
// data). Keys with dependents still registered are refused. The
// released key keeps its interned ID; re-registering the key later
// reuses the same slot.
func (s *scheduler) release(keys []taskgraph.Key, arrival vtime.Time) (vtime.Time, error) {
	handled := s.handle("release", arrival, s.cl.cfg.SchedulerTaskCost*vtime.Dur(len(keys)))
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.endOpLocked()
	s.beginOpLocked("release", handled)
	for _, k := range keys {
		st := s.lookupLocked(k)
		if st == nil {
			continue
		}
		for _, d := range st.dependents {
			if dt := s.tasks[d]; dt != nil {
				return handled, fmt.Errorf("dask: cannot release %q: task %q depends on it", k, dt.key)
			}
		}
	}
	for _, k := range keys {
		st := s.lookupLocked(k)
		if st == nil {
			continue
		}
		if st.state == StateMemory && st.worker >= 0 {
			s.cl.workers[st.worker].drop(st.id, handled)
		}
		if len(s.tenants) > 0 && st.state == StateMemory {
			s.tenants[s.tenantOf[st.id]].resBytes -= st.bytes
			s.tenantsDirty = true
		}
		for _, d := range st.deps {
			dt := s.tasks[d]
			if dt == nil {
				continue
			}
			for i, x := range dt.dependents {
				if x == st.id {
					dt.dependents = append(dt.dependents[:i], dt.dependents[i+1:]...)
					break
				}
			}
		}
		s.recordReleaseLocked(st)
		s.noteReleaseLocked(st.state)
		s.tasks[st.id] = nil
	}
	return handled, nil
}

// heartbeat accounts n client heartbeat messages ending at arrival.
func (s *scheduler) heartbeat(n int, arrival vtime.Time) vtime.Time {
	var end vtime.Time = arrival
	for i := 0; i < n; i++ {
		s.cl.counters.Heartbeats.Add(1)
		end = s.handle("heartbeat", arrival, 0)
	}
	return end
}

// varSet stores a distributed Variable value.
func (s *scheduler) varSet(name string, value any, arrival vtime.Time) vtime.Time {
	s.cl.counters.VariableOps.Add(1)
	s.cl.reg.Counter("scheduler", "variable_ops",
		metrics.L("name", name), metrics.L("op", "set")).Inc()
	handled := s.handle("var-set", arrival, 0)
	s.mu.Lock()
	s.vars[name] = &varEntry{set: true, value: value, setAt: handled}
	s.mu.Unlock()
	s.cond.Broadcast()
	return handled
}

// varGet blocks until the Variable is set and returns its value and the
// virtual time at which the response can leave the scheduler.
func (s *scheduler) varGet(name string, arrival vtime.Time) (any, vtime.Time) {
	s.cl.counters.VariableOps.Add(1)
	s.cl.reg.Counter("scheduler", "variable_ops",
		metrics.L("name", name), metrics.L("op", "get")).Inc()
	handled := s.handle("var-get", arrival, 0)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if e, ok := s.vars[name]; ok && e.set {
			avail := handled
			if e.setAt > avail {
				avail = e.setAt
			}
			return e.value, avail
		}
		s.cond.Wait()
	}
}

// queuePut appends a value to a distributed Queue.
func (s *scheduler) queuePut(name string, value any, arrival vtime.Time) vtime.Time {
	s.cl.counters.QueueOps.Add(1)
	s.cl.reg.Counter("scheduler", "queue_ops",
		metrics.L("name", name), metrics.L("op", "put")).Inc()
	handled := s.handle("queue-put", arrival, 0)
	s.mu.Lock()
	q := s.queues[name]
	if q == nil {
		q = &queueEntry{}
		s.queues[name] = q
	}
	q.items = append(q.items, queueItem{value: value, putAt: handled})
	s.mu.Unlock()
	s.cond.Broadcast()
	return handled
}

// queueGet blocks until the Queue is non-empty and pops its head.
func (s *scheduler) queueGet(name string, arrival vtime.Time) (any, vtime.Time) {
	s.cl.counters.QueueOps.Add(1)
	s.cl.reg.Counter("scheduler", "queue_ops",
		metrics.L("name", name), metrics.L("op", "get")).Inc()
	handled := s.handle("queue-get", arrival, 0)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if q := s.queues[name]; q != nil && len(q.items) > 0 {
			it := q.items[0]
			q.items = q.items[1:]
			avail := handled
			if it.putAt > avail {
				avail = it.putAt
			}
			return it.value, avail
		}
		s.cond.Wait()
	}
}
