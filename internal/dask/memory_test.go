package dask

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

// testClusterMem is testClusterQuick with worker memory governance on.
func testClusterMem(nWorkers int, limit int64) (*Cluster, *Client) {
	cfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(cfg, nWorkers+2)
	wnodes := make([]netsim.NodeID, nWorkers)
	for i := range wnodes {
		wnodes[i] = netsim.NodeID(i + 2)
	}
	dcfg := DefaultConfig()
	dcfg.WorkerMemoryLimit = limit
	c := NewCluster(fabric, dcfg, 0, wnodes)
	return c, c.NewClient("client", 1, math.Inf(1))
}

// checkLedger asserts invariant 8 by hand on every live worker: ledgers
// match the map sums, the tiers are disjoint, no pinned block spilled,
// and any over-limit residency is an oversize grant.
func checkLedger(t *testing.T, c *Cluster, limit int64) {
	t.Helper()
	for wid, w := range c.workers {
		if !c.WorkerAlive(wid) {
			continue
		}
		mem, sumRes, spilledB, sumSp, overlap, extSpilled, evictable, _ := w.memAudit()
		if mem != sumRes {
			t.Fatalf("worker %d: ledger %d != resident sum %d", wid, mem, sumRes)
		}
		if spilledB != sumSp {
			t.Fatalf("worker %d: spilled ledger %d != spilled sum %d", wid, spilledB, sumSp)
		}
		if overlap {
			t.Fatalf("worker %d: block resident and spilled at once", wid)
		}
		if extSpilled {
			t.Fatalf("worker %d: external block was spilled", wid)
		}
		if limit > 0 && mem > limit && evictable > 1 {
			t.Fatalf("worker %d: %d bytes resident over limit %d with %d evictable blocks", wid, mem, limit, evictable)
		}
	}
}

func TestSpillAndUnspillRoundTrip(t *testing.T) {
	const limit = 64 // two 32-byte blocks
	c, cl := testClusterMem(1, limit)
	defer c.Close()
	c.EnableAudit()

	blocks := map[taskgraph.Key][]float64{
		"a": {1, 2, 3, 4},
		"b": {5, 6, 7, 8},
		"c": {9, 10, 11, 12},
	}
	for _, k := range []taskgraph.Key{"a", "b", "c"} {
		if err := cl.Scatter([]ScatterItem{{Key: k, Value: blocks[k]}}, false, 0); err != nil {
			t.Fatalf("scatter %s: %v", k, err)
		}
		checkLedger(t, c, limit)
	}
	st := c.WorkerStatsAll()[0]
	if st.StoreBytes > limit {
		t.Fatalf("resident %d bytes exceeds limit %d", st.StoreBytes, limit)
	}
	if st.SpilledItems != 1 || st.SpilledBytes != 32 {
		t.Fatalf("want 1 spilled block of 32 bytes, got %d of %d", st.SpilledItems, st.SpilledBytes)
	}
	// "a" was the least recently used, so it is the one on the PFS.
	ida := c.sched.intern("a")
	if _, resident := c.workers[0].store[ida]; resident {
		t.Fatal("expected block a to be spilled, found it resident")
	}
	sp := c.Metrics().Counter("memory", "spill_events").Load()
	if sp != 1 {
		t.Fatalf("memory/spill_events = %d, want 1", sp)
	}

	// Gathering a spilled block unspills it transparently and the value
	// comes back bit-identical; the unspill may push another block out.
	before := cl.Now()
	for _, k := range []taskgraph.Key{"a", "b", "c"} {
		vals, err := cl.Gather([]*Future{{Key: k, client: cl}})
		if err != nil {
			t.Fatalf("gather %s: %v", k, err)
		}
		got := vals[0].([]float64)
		want := blocks[k]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("gather %s: element %d = %v, want %v", k, i, got[i], want[i])
			}
		}
		checkLedger(t, c, limit)
	}
	if cl.Now() <= before {
		t.Fatal("unspill reads charged no virtual time")
	}
}

func TestScatterBackpressureWindow(t *testing.T) {
	c, cl := testClusterQuick(1)
	defer c.Close()
	c.EnableAudit()

	// No base limit; a chaos-style window squeezes worker 0 below one
	// block for [0, 5). The scatter is refused and the client clock is
	// carried to the window end, so the retry lands past the squeeze.
	c.SetWorkerMemoryWindow(0, 16, 0, 5)
	err := cl.Scatter([]ScatterItem{{Key: "x", Value: []float64{1, 2, 3, 4}}}, false, 0)
	if !errors.Is(err, ErrWorkerPaused) {
		t.Fatalf("scatter under squeeze: got %v, want ErrWorkerPaused", err)
	}
	if now := cl.Now(); now < 5 {
		t.Fatalf("client clock %v after refusal, want >= window end 5", now)
	}
	if err := cl.Scatter([]ScatterItem{{Key: "x", Value: []float64{1, 2, 3, 4}}}, false, 0); err != nil {
		t.Fatalf("scatter after window: %v", err)
	}
	if got := c.WorkerStatsAll()[0].StoreBytes; got != 32 {
		t.Fatalf("resident bytes = %d, want 32", got)
	}
}

func TestOversizeSingleBlockGrant(t *testing.T) {
	const limit = 64
	c, cl := testClusterMem(1, limit)
	defer c.Close()
	c.EnableAudit()

	// A single block larger than the limit must be admitted (there is
	// nowhere else for it to go) and the auditor must accept the state
	// as an oversize grant.
	big := make([]float64, 16) // 128 bytes
	if err := cl.Scatter([]ScatterItem{{Key: "big", Value: big}}, false, 0); err != nil {
		t.Fatalf("oversize scatter: %v", err)
	}
	st := c.WorkerStatsAll()[0]
	if st.StoreBytes != 128 || st.SpilledItems != 0 {
		t.Fatalf("want 128 resident / 0 spilled, got %d / %d", st.StoreBytes, st.SpilledItems)
	}
	checkLedger(t, c, limit)
}

func TestExternalBlocksArePinned(t *testing.T) {
	const limit = 64
	c, cl := testClusterMem(1, limit)
	defer c.Close()
	c.EnableAudit()

	keys := []taskgraph.Key{"e1", "e2", "e3"}
	if _, err := cl.ExternalFutures(keys); err != nil {
		t.Fatal(err)
	}
	bridge := c.NewClient("bridge", 1, math.Inf(1))
	for _, k := range keys {
		if err := bridge.Scatter([]ScatterItem{{Key: k, Value: []float64{1, 2, 3, 4}}}, true, 0); err != nil {
			t.Fatalf("publish %s: %v", k, err)
		}
	}
	// 96 pinned bytes sit over the 64-byte limit and none may spill.
	st := c.WorkerStatsAll()[0]
	if st.StoreBytes != 96 || st.SpilledItems != 0 {
		t.Fatalf("want 96 resident / 0 spilled, got %d / %d", st.StoreBytes, st.SpilledItems)
	}
	checkLedger(t, c, limit)

	// Plain data still flows: the first plain block is granted, and a
	// second one evicts it (the only unpinned block) to the PFS.
	if err := cl.Scatter([]ScatterItem{{Key: "p1", Value: []float64{1, 2, 3, 4}}}, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Scatter([]ScatterItem{{Key: "p2", Value: []float64{5, 6, 7, 8}}}, false, 0); err != nil {
		t.Fatal(err)
	}
	st = c.WorkerStatsAll()[0]
	if st.SpilledItems != 1 {
		t.Fatalf("want the older plain block spilled, got %d spilled", st.SpilledItems)
	}
	checkLedger(t, c, limit)
}

func TestSchedulerSkipsPausedWorker(t *testing.T) {
	const limit = 64
	c, cl := testClusterMem(2, limit)
	defer c.Close()
	c.EnableAudit()

	// Pin worker 0 above its watermark (0.8 * 64 = 51.2 bytes) with
	// published external data.
	if _, err := cl.ExternalFutures([]taskgraph.Key{"ext"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Scatter([]ScatterItem{{Key: "ext", Value: make([]float64, 8)}}, true, 0); err != nil {
		t.Fatal(err)
	}
	if !c.WorkerPaused(0, cl.Now()) {
		t.Fatal("worker 0 should be paused at 64/64 bytes")
	}
	if c.WorkerPaused(1, cl.Now()) {
		t.Fatal("worker 1 should not be paused")
	}

	// Independent tasks (no locality pull) must all land on worker 1.
	g := taskgraph.New()
	targets := make([]taskgraph.Key, 6)
	for i := range targets {
		k := taskgraph.Key(fmt.Sprintf("t%d", i))
		g.AddFn(k, nil, func([]any) (any, error) { return 1.0, nil }, 1e-5)
		targets[i] = k
	}
	futs, err := cl.Submit(g, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	stats := c.WorkerStatsAll()
	if stats[0].Executed != 0 {
		t.Fatalf("paused worker 0 executed %d tasks, want 0", stats[0].Executed)
	}
	if stats[1].Executed != int64(len(targets)) {
		t.Fatalf("worker 1 executed %d tasks, want %d", stats[1].Executed, len(targets))
	}
}

func TestAllWorkersPausedStillSchedules(t *testing.T) {
	const limit = 64
	c, cl := testClusterMem(1, limit)
	defer c.Close()
	c.EnableAudit()

	// The only worker is paused; liveness requires assignment anyway.
	if _, err := cl.ExternalFutures([]taskgraph.Key{"ext"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Scatter([]ScatterItem{{Key: "ext", Value: make([]float64, 8)}}, true, 0); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	g.AddFn("t", nil, func([]any) (any, error) { return 2.0, nil }, 1e-5)
	futs, err := cl.Submit(g, []taskgraph.Key{"t"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 2.0 {
		t.Fatalf("got %v, want 2", vals[0])
	}
	checkLedger(t, c, limit)
}

// TestMemoryGovernanceTwinProperty drives a governed cluster and an
// unlimited twin through the same random store/evict/gather workload:
// analytics values and final block contents must be bit-identical, and
// the governed ledgers must conserve at every step.
func TestMemoryGovernanceTwinProperty(t *testing.T) {
	const limit = 96
	prop := func(ops []byte) bool {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		gc, gcl := testClusterMem(2, limit)
		defer gc.Close()
		gc.EnableAudit()
		uc, ucl := testClusterQuick(2)
		defer uc.Close()
		uc.EnableAudit()

		sum := func(in []any) (any, error) {
			total := 0.0
			for _, v := range in {
				switch x := v.(type) {
				case float64:
					total += x
				case []float64:
					for _, f := range x {
						total += f
					}
				}
			}
			return total, nil
		}

		var keys []taskgraph.Key     // scattered block keys
		var taskKeys []taskgraph.Key // submitted task keys
		nextID := 0
		for i := 0; i < len(ops); i++ {
			op := ops[i] % 4
			arg := byte(0)
			if i+1 < len(ops) {
				arg = ops[i+1]
			}
			switch op {
			case 0: // scatter a block derived from the op stream
				nextID++
				k := taskgraph.Key(fmt.Sprintf("blk%d", nextID))
				val := make([]float64, 4+int(arg)%8)
				for j := range val {
					val[j] = float64(int(arg)+j) * 1.5
				}
				w := int(arg) % 2
				if err := gcl.Scatter([]ScatterItem{{Key: k, Value: val}}, false, w); err != nil {
					t.Logf("op %d: governed scatter %s: %v", i, k, err)
					return false
				}
				if err := ucl.Scatter([]ScatterItem{{Key: k, Value: val}}, false, w); err != nil {
					t.Logf("op %d: unlimited scatter %s: %v", i, k, err)
					return false
				}
				keys = append(keys, k)
			case 1: // submit a task over a random block
				if len(keys) == 0 {
					continue
				}
				dep := keys[int(arg)%len(keys)]
				nextID++
				k := taskgraph.Key(fmt.Sprintf("task%d", nextID))
				for _, pair := range []struct {
					cl *Client
				}{{gcl}, {ucl}} {
					g := taskgraph.New()
					g.AddFn(k, []taskgraph.Key{dep}, sum, 1e-5)
					if _, err := pair.cl.Submit(g, []taskgraph.Key{k}); err != nil {
						t.Logf("op %d: submit %s: %v", i, k, err)
						return false
					}
				}
				taskKeys = append(taskKeys, k)
			case 2: // gather one task result on both and compare bits
				if len(taskKeys) == 0 {
					continue
				}
				k := taskKeys[int(arg)%len(taskKeys)]
				gv, gerr := gcl.Gather([]*Future{{Key: k, client: gcl}})
				uv, uerr := ucl.Gather([]*Future{{Key: k, client: ucl}})
				if (gerr == nil) != (uerr == nil) {
					t.Logf("op %d: gather %s: governed err %v vs unlimited err %v", i, k, gerr, uerr)
					return false
				}
				if gerr == nil && gv[0].(float64) != uv[0].(float64) {
					t.Logf("op %d: gather %s: %v vs %v", i, k, gv[0], uv[0])
					return false
				}
			case 3: // release one task result on both
				if len(taskKeys) == 0 {
					continue
				}
				k := taskKeys[int(arg)%len(taskKeys)]
				_ = gcl.Wait([]*Future{{Key: k, client: gcl}})
				_ = ucl.Wait([]*Future{{Key: k, client: ucl}})
				_ = gcl.Release([]*Future{{Key: k, client: gcl}})
				_ = ucl.Release([]*Future{{Key: k, client: ucl}})
			}
			checkLedger(t, gc, limit)
		}

		// Barrier: both twins drain all surviving tasks before comparison
		// (errors are released/unknown keys, which compare by state below).
		for _, k := range taskKeys {
			_ = gcl.Wait([]*Future{{Key: k, client: gcl}})
			_ = ucl.Wait([]*Future{{Key: k, client: ucl}})
		}

		// Final comparison: every surviving task value and every block's
		// contents must be bit-identical across the twins, spills or not.
		for _, k := range taskKeys {
			gst, gok := gc.TaskState(k)
			ust, uok := uc.TaskState(k)
			if gok != uok || (gok && gst != ust) {
				t.Logf("final: task %s state %v/%v vs %v/%v", k, gst, gok, ust, uok)
				return false
			}
			if !gok || gst != StateMemory {
				continue
			}
			gv, gerr := gcl.Gather([]*Future{{Key: k, client: gcl}})
			uv, uerr := ucl.Gather([]*Future{{Key: k, client: ucl}})
			if gerr != nil || uerr != nil || gv[0].(float64) != uv[0].(float64) {
				t.Logf("final: task %s gather %v (%v) vs %v (%v)", k, gv, gerr, uv, uerr)
				return false
			}
		}
		for _, k := range keys {
			_, gid, _, _, gerr := gc.sched.locate(k)
			_, uid, _, _, uerr := uc.sched.locate(k)
			if (gerr == nil) != (uerr == nil) {
				t.Logf("final: block %s locate: %v vs %v", k, gerr, uerr)
				return false
			}
			if gerr != nil {
				continue
			}
			gwid, _, _, _, _ := gc.sched.locate(k)
			uwid, _, _, _, _ := uc.sched.locate(k)
			gb := gc.workers[gwid].get(gid).value.([]float64)
			ub := uc.workers[uwid].get(uid).value.([]float64)
			if len(gb) != len(ub) {
				t.Logf("final: block %s length %d vs %d", k, len(gb), len(ub))
				return false
			}
			for j := range gb {
				if gb[j] != ub[j] {
					t.Logf("final: block %s element %d: %v vs %v", k, j, gb[j], ub[j])
					return false
				}
			}
		}
		checkLedger(t, gc, limit)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherWindowClosesMidGather covers gathering spilled blocks while
// a chaos memlimit window expires between unspills: the first gather's
// unspill completes inside the squeeze (governance must honour the
// tightened limit), the next one completes after the window closed
// (governance must be back at the base limit). The window boundary is
// placed between the two unspill completions using the read time
// measured on an identical twin cluster — the simulation is
// deterministic, so the twin's timing transfers exactly.
func TestGatherWindowClosesMidGather(t *testing.T) {
	const limit = 64 // two 32-byte blocks
	blocks := map[taskgraph.Key][]float64{
		"a": {1, 2, 3, 4},
		"b": {5, 6, 7, 8},
		"c": {9, 10, 11, 12},
	}
	setup := func() (*Cluster, *Client) {
		c, cl := testClusterMem(1, limit)
		c.EnableAudit()
		for _, k := range []taskgraph.Key{"a", "b", "c"} {
			if err := cl.Scatter([]ScatterItem{{Key: k, Value: blocks[k]}}, false, 0); err != nil {
				t.Fatalf("scatter %s: %v", k, err)
			}
		}
		return c, cl
	}

	// Twin run: measure the virtual cost of unspilling "a" (the LRU
	// victim of the third scatter) with no window installed.
	tc, tcl := setup()
	t0 := tcl.Now()
	if _, err := tcl.Gather([]*Future{{Key: "a", client: tcl}}); err != nil {
		t.Fatalf("twin gather: %v", err)
	}
	unspillCost := tcl.Now() - t0
	tc.Close()
	if unspillCost <= 0 {
		t.Fatalf("twin unspill charged no virtual time (cost %v)", unspillCost)
	}

	// Real run: squeeze worker 0 to 16 bytes for a window that contains
	// the first unspill completion (t0 + cost) but not the second
	// (>= t0 + 2*cost, since the second gather starts after the first).
	c, cl := setup()
	defer c.Close()
	c.SetWorkerMemoryWindow(0, 16, t0, t0+1.5*unspillCost)

	// Gather "a": the unspill lands inside the squeeze, so governance
	// evicts both resident blocks ("a" itself is kept as an oversize
	// grant: 32 bytes over a 16-byte limit with nothing else evictable).
	vals, err := cl.Gather([]*Future{{Key: "a", client: cl}})
	if err != nil {
		t.Fatalf("gather a under squeeze: %v", err)
	}
	for i, want := range blocks["a"] {
		if vals[0].([]float64)[i] != want {
			t.Fatalf("gather a: element %d = %v, want %v", i, vals[0].([]float64)[i], want)
		}
	}
	st := c.WorkerStatsAll()[0]
	if st.StoreBytes != 32 || st.SpilledItems != 2 {
		t.Fatalf("under squeeze: want 32 resident / 2 spilled, got %d / %d",
			st.StoreBytes, st.SpilledItems)
	}
	checkLedger(t, c, limit)

	// Gather "b": its unspill completes after the window closed, so the
	// base limit is back — "b" joins "a" at exactly the 64-byte limit
	// with no eviction. A still-open window would have evicted "a".
	vals, err = cl.Gather([]*Future{{Key: "b", client: cl}})
	if err != nil {
		t.Fatalf("gather b after window: %v", err)
	}
	for i, want := range blocks["b"] {
		if vals[0].([]float64)[i] != want {
			t.Fatalf("gather b: element %d = %v, want %v", i, vals[0].([]float64)[i], want)
		}
	}
	st = c.WorkerStatsAll()[0]
	if st.StoreBytes != 64 || st.SpilledItems != 1 {
		t.Fatalf("after window: want 64 resident / 1 spilled, got %d / %d",
			st.StoreBytes, st.SpilledItems)
	}
	checkLedger(t, c, limit)

	// Gather "c" round-trips the remaining spilled block and pushes the
	// ledger back to the limit by evicting the now-LRU "a".
	vals, err = cl.Gather([]*Future{{Key: "c", client: cl}})
	if err != nil {
		t.Fatalf("gather c: %v", err)
	}
	for i, want := range blocks["c"] {
		if vals[0].([]float64)[i] != want {
			t.Fatalf("gather c: element %d = %v, want %v", i, vals[0].([]float64)[i], want)
		}
	}
	st = c.WorkerStatsAll()[0]
	if st.StoreBytes != 64 || st.SpilledItems != 1 {
		t.Fatalf("final: want 64 resident / 1 spilled, got %d / %d",
			st.StoreBytes, st.SpilledItems)
	}
	ida := c.sched.intern("a")
	if _, resident := c.workers[0].store[ida]; resident {
		t.Fatal("expected block a (LRU) to be the final spilled block")
	}
	checkLedger(t, c, limit)
}
