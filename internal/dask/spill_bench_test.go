package dask

import (
	"fmt"
	"runtime"
	"testing"

	"deisago/internal/taskgraph"
)

// BenchmarkSpillPath tracks the cost of the worker memory-governance
// data path: scatter nBlocks 128-byte blocks to one governed worker,
// then gather them all back.
//
//   - zero_spill: the limit holds every block, so this is the governed
//     fast path — LRU stamping and admission checks but no PFS traffic.
//     Gated in BENCH_SCHED.json: governance must not add allocations or
//     measurable time to runs that never spill.
//   - spill_heavy: the limit holds only 4 blocks, so nearly every
//     scatter evicts a victim to the PFS and nearly every gather
//     unspills one. Gated too; this bounds the spill machinery itself
//     (ledger moves, virtual-time write/read charging), not the
//     modelled PFS latency, which is virtual.
//
// The per-task denominator is one scatter plus one gather per block.
func BenchmarkSpillPath(b *testing.B) {
	const nBlocks = 128
	const blockLen = 16 // 128-byte blocks
	cases := []struct {
		name  string
		limit int64
	}{
		{"zero_spill", 1 << 20},
		{"spill_heavy", 512},
	}
	for _, cse := range cases {
		b.Run(cse.name, func(b *testing.B) {
			nTasks := nBlocks * 2
			val := make([]float64, blockLen)
			keys := make([]taskgraph.Key, nBlocks)
			for j := range keys {
				keys[j] = taskgraph.Key(fmt.Sprintf("blk%d", j))
			}
			var ms runtime.MemStats
			var mallocs uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, cl := testClusterMem(1, cse.limit)
				item := make([]ScatterItem, 1)
				fut := make([]*Future, 1)
				runtime.ReadMemStats(&ms)
				before := ms.Mallocs
				b.StartTimer()
				for _, k := range keys {
					item[0] = ScatterItem{Key: k, Value: val}
					if err := cl.Scatter(item, false, 0); err != nil {
						b.Fatal(err)
					}
				}
				for _, k := range keys {
					fut[0] = &Future{Key: k, client: cl}
					if _, err := cl.Gather(fut); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				runtime.ReadMemStats(&ms)
				mallocs += ms.Mallocs - before
				c.Close()
				b.StartTimer()
			}
			b.StopTimer()
			reportPerTask(b, nTasks, mallocs)
		})
	}
}
