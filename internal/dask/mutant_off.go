//go:build !daskmutant

package dask

// MutantScheduler reports whether this build carries the deliberately
// broken scheduler used by the simtest mutant self-test (build with
// -tags daskmutant to flip it on). Production builds are never mutated.
const MutantScheduler = false

// rebuildDepsWindow returns the dependency window the worker-lost
// replan rebuilds missing counts from: all of them.
func rebuildDepsWindow(deps []taskID) []taskID { return deps }
