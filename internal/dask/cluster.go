package dask

import (
	"fmt"
	"sync"

	"deisago/internal/metrics"
	"deisago/internal/netsim"
	"deisago/internal/pfs"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// Cluster is one Dask deployment: a scheduler, its workers, and the
// fabric they communicate over. Clients are created per producer/consumer
// process with NewClient.
type Cluster struct {
	cfg      Config
	fabric   *netsim.Fabric
	reg      *metrics.Registry
	counters Counters

	schedNode netsim.NodeID
	sched     *scheduler
	workers   []*worker
	spill     *pfs.FS // spill tier for memory governance (never nil)

	traceMu sync.Mutex
	trace   *tracer
}

// NewCluster starts a cluster with the scheduler on schedNode and one
// worker per entry of workerNodes. Worker goroutines run until Close.
func NewCluster(fabric *netsim.Fabric, cfg Config, schedNode netsim.NodeID, workerNodes []netsim.NodeID) *Cluster {
	if len(workerNodes) == 0 {
		panic("dask: cluster needs at least one worker")
	}
	c := &Cluster{cfg: cfg, fabric: fabric, schedNode: schedNode}
	c.reg = cfg.Metrics
	if c.reg == nil {
		c.reg = metrics.NewRegistry()
	}
	c.counters = newCounters(c.reg)
	c.spill = cfg.SpillFS
	if c.spill == nil {
		// Private spill tier so governance works out of the box. It is
		// deliberately not attached to the metrics registry: the
		// memory/spilled_bytes counter already accounts spill traffic,
		// and a harness that wants pfs-level instruments passes its own
		// SpillFS.
		c.spill = pfs.New(pfs.DefaultConfig())
	}
	c.sched = newScheduler(c)
	if auditEnvEnabled() {
		c.sched.audit = &auditor{released: map[taskID]bool{}}
	}
	for i, n := range workerNodes {
		w := newWorker(c, i, n)
		c.workers = append(c.workers, w)
		go w.run()
	}
	return c
}

// Close stops all worker goroutines. The cluster must not be used after
// Close.
func (c *Cluster) Close() {
	for _, w := range c.workers {
		w.stop()
	}
}

// NumWorkers returns the number of workers.
func (c *Cluster) NumWorkers() int { return len(c.workers) }

// WorkerNode returns the fabric node of worker i.
func (c *Cluster) WorkerNode(i int) netsim.NodeID { return c.workers[i].node }

// SchedulerNode returns the scheduler's fabric node.
func (c *Cluster) SchedulerNode() netsim.NodeID { return c.schedNode }

// TaskStates returns the number of scheduler tasks in each state — the
// information a Dask dashboard's task-stream panel summarizes.
func (c *Cluster) TaskStates() map[State]int { return c.sched.stateCounts() }

// TaskState reports the scheduler state of one key, and whether the key
// is registered at all. Producers use it to detect external data lost
// with a worker (the key reverts to StateExternal) and republish.
func (c *Cluster) TaskState(key taskgraph.Key) (State, bool) { return c.sched.taskState(key) }

// WorkerStatsAll snapshots every worker's monitoring stats.
func (c *Cluster) WorkerStatsAll() []WorkerStats {
	out := make([]WorkerStats, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.stats()
	}
	return out
}

// SchedulerBusy returns the scheduler CPU's accumulated virtual service
// time — the overload signal behind the paper's DEISA1 analysis.
func (c *Cluster) SchedulerBusy() float64 { return c.sched.cpu.Busy() }

// Counters exposes the scheduler's message counters.
func (c *Cluster) Counters() *Counters { return &c.counters }

// Metrics returns the cluster's metrics registry (never nil).
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// RecordUtilization samples end-of-run occupancy gauges at virtual time
// at: scheduler CPU busy fraction and per-worker CPU busy fraction.
// Call once after the workload has drained, with at >= the last event.
func (c *Cluster) RecordUtilization(at vtime.Time) {
	if at <= 0 {
		return
	}
	c.reg.Gauge("scheduler", "cpu_utilization").Set(c.sched.cpu.Busy()/at, at)
	for _, w := range c.workers {
		c.reg.Gauge("worker", "cpu_utilization", metrics.LInt("id", w.id)).
			Set(w.cpu.Busy()/at, at)
	}
}

// Config returns the cluster's cost-model configuration.
func (c *Cluster) Config() Config { return c.cfg }

// SetWorkerMemoryWindow installs a temporary memory-limit override on
// one worker for the virtual-time window [start, end): inside it the
// worker's effective limit is min(WorkerMemoryLimit, limit). end <= 0
// leaves the window open-ended. The chaos harness's memlimit event uses
// this to squeeze a worker mid-run.
func (c *Cluster) SetWorkerMemoryWindow(worker int, limit int64, start, end vtime.Time) {
	c.worker(worker).installMemWindow(limit, start, end)
}

// WorkerPaused reports whether a worker sits at or above its memory
// high watermark at the given virtual time. Producers consult it to
// steer failover away from workers that would only bounce the scatter.
func (c *Cluster) WorkerPaused(id int, at vtime.Time) bool {
	if id < 0 || id >= len(c.workers) {
		return false
	}
	return c.workers[id].pausedAt(at)
}

// xfer moves bytes across the fabric, adding the endpoint serialization
// charge, and returns the arrival time.
func (c *Cluster) xfer(from, to netsim.NodeID, bytes int64, at vtime.Time) vtime.Time {
	if c.cfg.SerializationBandwidth > 0 && bytes > 0 {
		at += float64(bytes) / c.cfg.SerializationBandwidth
	}
	return c.fabric.Transfer(from, to, bytes, at)
}

func (c *Cluster) worker(i int) *worker {
	if i < 0 || i >= len(c.workers) {
		panic(fmt.Sprintf("dask: worker %d out of range [0,%d)", i, len(c.workers)))
	}
	return c.workers[i]
}
