package dask

import (
	"strings"
	"testing"

	"deisago/internal/taskgraph"
)

func mustPanic(t *testing.T, contains string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected invariant panic containing %q", contains)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, contains) {
			t.Fatalf("panic = %v, want message containing %q", r, contains)
		}
		if !strings.Contains(msg, "transition log") {
			t.Fatalf("violation panic lacks the transition log: %v", r)
		}
	}()
	f()
}

func TestAuditorRecordsTransitions(t *testing.T) {
	c, cl := testCluster(t, 2)
	c.EnableAudit()
	g := taskgraph.New()
	g.AddFn("a", nil, func([]any) (any, error) { return 1.0, nil }, 1e-4)
	g.AddFn("b", []taskgraph.Key{"a"}, func(in []any) (any, error) {
		return in[0].(float64) + 1, nil
	}, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	log := c.AuditLog()
	if len(log) == 0 {
		t.Fatal("no transitions recorded")
	}
	var created, toMemory int
	for _, tr := range log {
		if tr.From == stateNone {
			created++
		}
		if tr.To == StateMemory {
			toMemory++
		}
	}
	if created != 2 {
		t.Fatalf("creation records = %d, want 2", created)
	}
	if toMemory != 2 {
		t.Fatalf("memory transitions = %d, want 2", toMemory)
	}
}

func TestAuditorDetectsStoreMismatch(t *testing.T) {
	// A memory task whose owner's store lacks the bytes is corruption.
	c, cl := testCluster(t, 2)
	c.EnableAudit()
	if err := cl.Scatter([]ScatterItem{{Key: "d", Value: 1.0}}, false, 0); err != nil {
		t.Fatal(err)
	}
	id, ok := c.sched.idFor("d")
	if !ok {
		t.Fatal("scattered key was not interned")
	}
	c.workers[0].drop(id, 0) // corrupt: scheduler still believes it resident
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	mustPanic(t, "store lacks it", func() { s.auditLocked() })
}

func TestAuditorDetectsExternalWithWorker(t *testing.T) {
	c, cl := testCluster(t, 2)
	c.EnableAudit()
	if _, err := cl.ExternalFutures([]taskgraph.Key{"ext"}); err != nil {
		t.Fatal(err)
	}
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookupLocked("ext").worker = 0 // corrupt: external tasks are never assigned
	mustPanic(t, "external task", func() { s.auditLocked() })
}

func TestAuditorDetectsMissingSetDrift(t *testing.T) {
	c, cl := testCluster(t, 2)
	c.EnableAudit()
	if _, err := cl.ExternalFutures([]taskgraph.Key{"ext"}); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	g.AddFn("use", []taskgraph.Key{"ext"}, func(in []any) (any, error) { return in[0], nil }, 1e-4)
	if _, err := cl.Submit(g, []taskgraph.Key{"use"}); err != nil {
		t.Fatal(err)
	}
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookupLocked("use").missingCount = 0 // corrupt: dep not in memory yet
	mustPanic(t, "missing count", func() { s.auditLocked() })
}

func TestAuditorDetectsMemoryOnDeadWorker(t *testing.T) {
	c, cl := testCluster(t, 2)
	c.EnableAudit()
	if err := cl.Scatter([]ScatterItem{{Key: "d", Value: 1.0}}, false, 0); err != nil {
		t.Fatal(err)
	}
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deadWorkers[0] = true // corrupt: worker-lost replan never ran
	mustPanic(t, "dead worker", func() { s.auditLocked() })
}

func TestAuditorReleasedKeysHoldNoBytes(t *testing.T) {
	c, cl := testCluster(t, 2)
	c.EnableAudit()
	g := taskgraph.New()
	g.AddFn("a", nil, func([]any) (any, error) { return 1.0, nil }, 1e-4)
	futs, err := cl.Submit(g, []taskgraph.Key{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	owner, id, _, _, err := c.sched.locate("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Release(futs); err != nil {
		t.Fatal(err)
	}
	// Corrupt: sneak the released bytes back into the store.
	c.workers[owner].put(id, 1.0, 8, 0, false)
	s := c.sched
	s.mu.Lock()
	defer s.mu.Unlock()
	mustPanic(t, "released key", func() { s.auditLocked() })
}

func TestAuditEnvEnablesCluster(t *testing.T) {
	t.Setenv("DEISA_AUDIT", "1")
	c, _ := testCluster(t, 1)
	if !c.AuditEnabled() {
		t.Fatal("DEISA_AUDIT=1 did not enable the auditor")
	}
	t.Setenv("DEISA_AUDIT", "0")
	c2, _ := testCluster(t, 1)
	if c2.AuditEnabled() {
		t.Fatal("DEISA_AUDIT=0 enabled the auditor")
	}
}
