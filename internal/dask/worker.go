package dask

import (
	"fmt"
	"sync"

	"deisago/internal/metrics"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// depLoc tells a worker where to fetch one dependency. Dependencies are
// addressed by interned task ID; the human-readable key never crosses
// the scheduler→worker wire (the paper's metadata-slimming argument:
// control messages carry dense handles, not strings).
type depLoc struct {
	id      taskID
	worker  int
	bytes   int64
	readyAt vtime.Time
}

// assignment is one task handed to a worker by the scheduler. The key
// rides along only for traces and error text; all data-plane lookups use
// the ID.
type assignment struct {
	id       taskID
	key      taskgraph.Key
	fn       taskgraph.Fn
	timed    taskgraph.TimedFn
	cost     vtime.Dur
	outBytes int64
	priority int
	deps     []depLoc
	arriveAt vtime.Time
}

// inboxItem is one queued assignment plus its arrival sequence number;
// the inbox heap orders by (priority, seq), i.e. highest Dask priority
// first and FIFO among equals — the same pick the seed's linear
// min-scan made, at O(log n) instead of O(n) per dequeue.
type inboxItem struct {
	a   assignment
	seq uint64
}

type storeEntry struct {
	value   any
	bytes   int64
	readyAt vtime.Time
}

// worker executes tasks assigned by the scheduler and stores results in
// its local object store. Each worker runs one executor thread, matching
// the paper's one-worker-per-process deployment.
type worker struct {
	cl   *Cluster
	id   int
	node netsim.NodeID
	cpu  *vtime.Resource

	mu       sync.Mutex
	cond     *sync.Cond
	inbox    []inboxItem // binary min-heap on (priority, seq)
	seq      uint64
	quit     bool
	dead     bool
	killedAt vtime.Time

	storeMu  sync.RWMutex
	store    map[taskID]storeEntry
	memBytes int64 // sum of stored entry sizes, guarded by storeMu

	executed int64

	// Registry handles, created once at construction.
	mMem      *metrics.Gauge   // object-store bytes held
	mSpill    *metrics.Gauge   // blocks eligible for spilling
	mExecuted *metrics.Counter // tasks completed
	mRecv     *metrics.Counter // bytes fetched from peer workers
	mScatter  *metrics.Counter // bytes received via client scatter
}

func newWorker(cl *Cluster, id int, node netsim.NodeID) *worker {
	w := &worker{
		cl:    cl,
		id:    id,
		node:  node,
		cpu:   vtime.NewResource(fmt.Sprintf("worker%d-cpu", id)),
		store: make(map[taskID]storeEntry),
	}
	lid := metrics.LInt("id", id)
	w.mMem = cl.reg.Gauge("worker", "memory_bytes", lid)
	w.mSpill = cl.reg.Gauge("worker", "spill_eligible_blocks", lid)
	w.mExecuted = cl.reg.Counter("worker", "tasks_executed", lid)
	w.mRecv = cl.reg.Counter("worker", "bytes_received", lid)
	w.mScatter = cl.reg.Counter("worker", "scatter_bytes_received", lid)
	w.cond = sync.NewCond(&w.mu)
	return w
}

func inboxLess(a, b inboxItem) bool {
	return a.a.priority < b.a.priority ||
		(a.a.priority == b.a.priority && a.seq < b.seq)
}

func (w *worker) enqueue(a assignment) {
	w.mu.Lock()
	if !w.dead {
		w.inbox = append(w.inbox, inboxItem{a: a, seq: w.seq})
		w.seq++
		for i := len(w.inbox) - 1; i > 0; {
			parent := (i - 1) / 2
			if !inboxLess(w.inbox[i], w.inbox[parent]) {
				break
			}
			w.inbox[i], w.inbox[parent] = w.inbox[parent], w.inbox[i]
			i = parent
		}
	}
	w.mu.Unlock()
	w.cond.Broadcast()
}

// popInboxLocked removes and returns the heap minimum. Caller holds w.mu
// and guarantees the inbox is non-empty.
func (w *worker) popInboxLocked() assignment {
	top := w.inbox[0].a
	n := len(w.inbox) - 1
	w.inbox[0] = w.inbox[n]
	w.inbox[n] = inboxItem{} // release the assignment's references
	w.inbox = w.inbox[:n]
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && inboxLess(w.inbox[l], w.inbox[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && inboxLess(w.inbox[r], w.inbox[small]) {
			small = r
		}
		if small == i {
			break
		}
		w.inbox[i], w.inbox[small] = w.inbox[small], w.inbox[i]
		i = small
	}
	return top
}

func (w *worker) stop() {
	w.mu.Lock()
	w.quit = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

func (w *worker) run() {
	for {
		w.mu.Lock()
		for len(w.inbox) == 0 && !w.quit && !w.dead {
			w.cond.Wait()
		}
		if w.quit || w.dead {
			w.mu.Unlock()
			return
		}
		a := w.popInboxLocked()
		w.mu.Unlock()
		w.exec(a)
	}
}

// put inserts a value into the worker's object store (used by both task
// execution and client scatter).
func (w *worker) put(id taskID, value any, bytes int64, readyAt vtime.Time) {
	w.storeMu.Lock()
	if old, ok := w.store[id]; ok {
		w.memBytes -= old.bytes
	}
	w.store[id] = storeEntry{value: value, bytes: bytes, readyAt: readyAt}
	w.memBytes += bytes
	mem, spill := w.memBytes, w.spillEligibleLocked()
	w.storeMu.Unlock()
	w.mMem.Set(float64(mem), readyAt)
	w.mSpill.Set(float64(spill), readyAt)
}

// spillEligibleLocked counts blocks a real worker would consider for
// spilling to disk: everything in the store, once the held bytes exceed
// the configured threshold (the simulator never spills; the gauge shows
// the pressure). Caller holds storeMu.
func (w *worker) spillEligibleLocked() int {
	th := w.cl.cfg.SpillThresholdBytes
	if th <= 0 || w.memBytes <= th {
		return 0
	}
	return len(w.store)
}

// get returns a stored value. It panics if the ID is absent: the
// scheduler only references data it has been told is resident, so absence
// is a protocol bug, not a user error.
func (w *worker) get(id taskID) storeEntry {
	w.storeMu.RLock()
	e, ok := w.store[id]
	w.storeMu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("dask: worker %d has no task id %d", w.id, id))
	}
	return e
}

// drop removes an entry from the object store (release path) at the
// given virtual time.
func (w *worker) drop(id taskID, at vtime.Time) {
	w.storeMu.Lock()
	if old, ok := w.store[id]; ok {
		w.memBytes -= old.bytes
	}
	delete(w.store, id)
	mem, spill := w.memBytes, w.spillEligibleLocked()
	w.storeMu.Unlock()
	w.mMem.Set(float64(mem), at)
	w.mSpill.Set(float64(spill), at)
}

// has reports whether the store holds an entry.
func (w *worker) has(id taskID) bool {
	w.storeMu.RLock()
	_, ok := w.store[id]
	w.storeMu.RUnlock()
	return ok
}

// exec fetches dependencies, runs the task, stores the result, and
// reports completion to the scheduler.
func (w *worker) exec(a assignment) {
	vals := make([]any, len(a.deps))
	depReady := a.arriveAt
	for i, d := range a.deps {
		if d.worker == w.id {
			e := w.get(d.id)
			vals[i] = e.value
			if e.readyAt > depReady {
				depReady = e.readyAt
			}
			continue
		}
		peer := w.cl.worker(d.worker)
		e := peer.get(d.id)
		vals[i] = e.value
		depart := a.arriveAt
		if e.readyAt > depart {
			depart = e.readyAt
		}
		arrive := w.cl.xfer(peer.node, w.node, e.bytes, depart)
		w.mRecv.Add(e.bytes)
		if arrive > depReady {
			depReady = arrive
		}
	}

	start, end := w.cpu.Acquire(depReady, a.cost+w.cl.cfg.WorkerTaskOverhead)
	value, dynEnd, err := w.invoke(a, vals, start)
	if dynEnd > end {
		w.cpu.Extend(dynEnd)
		end = dynEnd
	}

	// A kill may have landed while the task body ran. The span must not
	// look like a normal completion: it is closed as aborted, truncated
	// to the kill time, and neither the result nor a completion report
	// leaves the worker (the scheduler has already re-planned the task).
	w.mu.Lock()
	dead, killedAt := w.dead, w.killedAt
	w.mu.Unlock()
	if dead {
		abortEnd := end
		if killedAt < abortEnd {
			abortEnd = killedAt
		}
		if abortEnd < start {
			abortEnd = start
		}
		if tr := w.cl.tracer(); tr != nil {
			tr.add(TraceEvent{Key: a.key, Worker: w.id, Start: start, End: abortEnd, Aborted: true})
		}
		return
	}

	if tr := w.cl.tracer(); tr != nil {
		tr.add(TraceEvent{Key: a.key, Worker: w.id, Start: start, End: end, Erred: err != nil})
	}
	report := w.cl.xfer(w.node, w.cl.schedNode, w.cl.cfg.ControlMsgBytes, end)
	if err != nil {
		w.cl.sched.taskErred(a.id, err, report)
		return
	}
	bytes := SizeOf(value)
	if a.outBytes > 0 {
		bytes = a.outBytes
	}
	w.put(a.id, value, bytes, end)
	w.mu.Lock()
	w.executed++
	w.mu.Unlock()
	w.mExecuted.Inc()
	w.cl.sched.taskFinished(a.id, w.id, end, bytes, report)
}

// invoke runs the task body, converting panics into task errors, as
// Dask converts Python exceptions in tasks into task failures rather
// than crashing the worker.
func (w *worker) invoke(a assignment, vals []any, start vtime.Time) (value any, dynEnd vtime.Time, err error) {
	defer func() {
		if r := recover(); r != nil {
			value = nil
			err = fmt.Errorf("dask: task %q panicked: %v", a.key, r)
		}
	}()
	if a.timed != nil {
		return a.timed(vals, start)
	}
	value, err = a.fn(vals)
	return value, start, err
}

// Executed returns how many tasks this worker has completed.
func (w *worker) Executed() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.executed
}

// stats summarizes one worker for monitoring.
func (w *worker) stats() WorkerStats {
	w.storeMu.RLock()
	items := len(w.store)
	var bytes int64
	for _, e := range w.store {
		bytes += e.bytes
	}
	w.storeMu.RUnlock()
	return WorkerStats{
		ID:         w.id,
		Node:       w.node,
		Executed:   w.Executed(),
		BusySecs:   w.cpu.Busy(),
		StoreItems: items,
		StoreBytes: bytes,
	}
}

// WorkerStats is a monitoring snapshot of one worker — executed task
// count, virtual busy time, and object-store contents (the numbers a
// Dask dashboard's worker panel shows).
type WorkerStats struct {
	ID         int
	Node       netsim.NodeID
	Executed   int64
	BusySecs   float64
	StoreItems int
	StoreBytes int64
}
