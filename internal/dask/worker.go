package dask

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"deisago/internal/metrics"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// depLoc tells a worker where to fetch one dependency. Dependencies are
// addressed by interned task ID; the human-readable key never crosses
// the scheduler→worker wire (the paper's metadata-slimming argument:
// control messages carry dense handles, not strings).
type depLoc struct {
	id      taskID
	worker  int
	bytes   int64
	readyAt vtime.Time
}

// assignment is one task handed to a worker by the scheduler. The key
// rides along only for traces and error text; all data-plane lookups use
// the ID.
type assignment struct {
	id       taskID
	key      taskgraph.Key
	fn       taskgraph.Fn
	timed    taskgraph.TimedFn
	cost     vtime.Dur
	outBytes int64
	priority int
	deps     []depLoc
	arriveAt vtime.Time
}

// inboxItem is one queued assignment plus its arrival sequence number;
// the inbox heap orders by (priority, seq), i.e. highest Dask priority
// first and FIFO among equals — the same pick the seed's linear
// min-scan made, at O(log n) instead of O(n) per dequeue.
type inboxItem struct {
	a   assignment
	seq uint64
}

type storeEntry struct {
	value   any
	bytes   int64
	readyAt vtime.Time
	// external marks a block published through the external-task path
	// (the coupling's data plane). External blocks are pinned: the
	// producer placed them under the contract, so the spill tier never
	// evicts them.
	external bool
	// lru is the entry's last-access sequence number; the spill tier
	// evicts the resident non-external entry with the smallest value.
	// Sequence numbers are unique per worker, so eviction order is a
	// deterministic function of the access history.
	lru uint64
}

// memWindow is a temporary memory-limit override on one worker (the
// chaos harness's memlimit event): inside [start, end) the worker's
// effective limit is min(configured limit, limit). end <= 0 means
// open-ended.
type memWindow struct {
	limit      int64
	start, end vtime.Time
}

// worker executes tasks assigned by the scheduler and stores results in
// its local object store. Each worker runs one executor thread, matching
// the paper's one-worker-per-process deployment.
type worker struct {
	cl   *Cluster
	id   int
	node netsim.NodeID
	cpu  *vtime.Resource

	mu       sync.Mutex
	cond     *sync.Cond
	inbox    []inboxItem // binary min-heap on (priority, seq)
	seq      uint64
	quit     bool
	dead     bool
	killedAt vtime.Time

	storeMu      sync.RWMutex
	store        map[taskID]storeEntry // resident blocks
	spilled      map[taskID]storeEntry // blocks evicted to the spill tier
	memBytes     int64                 // sum of resident entry sizes, guarded by storeMu
	spilledBytes int64                 // sum of spilled entry sizes, guarded by storeMu
	lruSeq       uint64                // access counter feeding storeEntry.lru
	windows      []memWindow           // chaos memlimit windows, guarded by storeMu
	// lastLimit records the effective limit observed by the most recent
	// governance pass (0 while ungoverned). The auditor checks the
	// ledger against it: re-deriving the limit would need the audit
	// time, which the worker does not track.
	lastLimit int64

	// governed flips to true once the worker has a memory limit or any
	// memlimit window; while false, every store operation takes the
	// zero-cost fast path (no LRU stamps, no governance scan).
	governedFlag atomic.Bool

	executed int64

	// Registry handles, created once at construction.
	mMem      *metrics.Gauge   // object-store bytes held
	mSpill    *metrics.Gauge   // blocks eligible for spilling
	mManaged  *metrics.Gauge   // managed-memory ledger (resident bytes)
	mSpillB   *metrics.Counter // cumulative bytes spilled (cluster-wide)
	mSpillEv  *metrics.Counter // spill events (cluster-wide)
	mExecuted *metrics.Counter // tasks completed
	mRecv     *metrics.Counter // bytes fetched from peer workers
	mScatter  *metrics.Counter // bytes received via client scatter
}

func newWorker(cl *Cluster, id int, node netsim.NodeID) *worker {
	w := &worker{
		cl:    cl,
		id:    id,
		node:  node,
		cpu:   vtime.NewResource(fmt.Sprintf("worker%d-cpu", id)),
		store: make(map[taskID]storeEntry),
	}
	lid := metrics.LInt("id", id)
	w.mMem = cl.reg.Gauge("worker", "memory_bytes", lid)
	w.mSpill = cl.reg.Gauge("worker", "spill_eligible_blocks", lid)
	w.mManaged = cl.reg.Gauge("memory", "managed", metrics.LInt("worker", id))
	w.mSpillB = cl.reg.Counter("memory", "spilled_bytes")
	w.mSpillEv = cl.reg.Counter("memory", "spill_events")
	w.mExecuted = cl.reg.Counter("worker", "tasks_executed", lid)
	w.mRecv = cl.reg.Counter("worker", "bytes_received", lid)
	w.mScatter = cl.reg.Counter("worker", "scatter_bytes_received", lid)
	w.cond = sync.NewCond(&w.mu)
	if cl.cfg.WorkerMemoryLimit > 0 {
		w.governedFlag.Store(true)
	}
	return w
}

func inboxLess(a, b inboxItem) bool {
	return a.a.priority < b.a.priority ||
		(a.a.priority == b.a.priority && a.seq < b.seq)
}

func (w *worker) enqueue(a assignment) {
	w.mu.Lock()
	if !w.dead {
		w.inbox = append(w.inbox, inboxItem{a: a, seq: w.seq})
		w.seq++
		for i := len(w.inbox) - 1; i > 0; {
			parent := (i - 1) / 2
			if !inboxLess(w.inbox[i], w.inbox[parent]) {
				break
			}
			w.inbox[i], w.inbox[parent] = w.inbox[parent], w.inbox[i]
			i = parent
		}
	}
	w.mu.Unlock()
	w.cond.Broadcast()
}

// popInboxLocked removes and returns the heap minimum. Caller holds w.mu
// and guarantees the inbox is non-empty.
func (w *worker) popInboxLocked() assignment {
	top := w.inbox[0].a
	n := len(w.inbox) - 1
	w.inbox[0] = w.inbox[n]
	w.inbox[n] = inboxItem{} // release the assignment's references
	w.inbox = w.inbox[:n]
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && inboxLess(w.inbox[l], w.inbox[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && inboxLess(w.inbox[r], w.inbox[small]) {
			small = r
		}
		if small == i {
			break
		}
		w.inbox[i], w.inbox[small] = w.inbox[small], w.inbox[i]
		i = small
	}
	return top
}

func (w *worker) stop() {
	w.mu.Lock()
	w.quit = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

func (w *worker) run() {
	for {
		w.mu.Lock()
		for len(w.inbox) == 0 && !w.quit && !w.dead {
			w.cond.Wait()
		}
		if w.quit || w.dead {
			w.mu.Unlock()
			return
		}
		a := w.popInboxLocked()
		w.mu.Unlock()
		w.exec(a)
	}
}

// governed reports whether this worker does any memory accounting at
// all. While false, put/fetch run the original unmanaged path: no LRU
// stamps, no limit scan, no extra allocations — the zero-spill fast
// path the scheduler benchmarks gate.
func (w *worker) governed() bool {
	return w.governedFlag.Load()
}

// installMemWindow adds a temporary limit override (chaos memlimit).
func (w *worker) installMemWindow(limit int64, start, end vtime.Time) {
	w.storeMu.Lock()
	w.windows = append(w.windows, memWindow{limit: limit, start: start, end: end})
	w.storeMu.Unlock()
	w.governedFlag.Store(true)
}

// effectiveLimitLocked returns the limit in force at the given virtual
// time: the configured WorkerMemoryLimit tightened by any active
// memlimit window. 0 means unlimited. Caller holds storeMu.
func (w *worker) effectiveLimitLocked(at vtime.Time) int64 {
	eff := w.cl.cfg.WorkerMemoryLimit
	for _, win := range w.windows {
		if at < win.start || (win.end > 0 && at >= win.end) {
			continue
		}
		if win.limit > 0 && (eff == 0 || win.limit < eff) {
			eff = win.limit
		}
	}
	return eff
}

// victimLocked picks the least-recently-used resident non-external
// block, excluding keep (the entry being inserted or gathered).
// Governed stores stamp unique LRU sequence numbers, but blocks stored
// before governance switched on (a memlimit window installed mid-run)
// all carry stamp 0 — those ties break on the lowest task ID, so the
// choice is deterministic despite map iteration order. Returns -1 if
// nothing is evictable. A TieBreaker may choose any tied-LRU block.
func (w *worker) victimLocked(keep taskID) taskID {
	victim := taskID(-1)
	var vlru uint64
	for id, e := range w.store {
		if e.external || id == keep {
			continue
		}
		if victim < 0 || e.lru < vlru || (e.lru == vlru && id < victim) {
			victim, vlru = id, e.lru
		}
	}
	if victim < 0 {
		return -1
	}
	if tb := w.cl.cfg.TieBreak; tb != nil {
		var cands []int
		for id, e := range w.store {
			if !e.external && id != keep && e.lru == vlru {
				cands = append(cands, int(id))
			}
		}
		if len(cands) > 1 {
			sort.Ints(cands)
			pick := clampPick(tb.Pick(Decision{Point: PointSpillVictim,
				Key: fmt.Sprintf("w%d@%d", w.id, vlru), N: len(cands)}), len(cands))
			victim = taskID(cands[pick])
		}
	}
	return victim
}

// spillLocked evicts one resident block to the spill tier, charging the
// PFS metadata + stripe-write cost in virtual time. The value itself
// stays in host memory (the simulator models costs, not I/O); only the
// ledger moves. Returns when the write completes. Caller holds storeMu.
func (w *worker) spillLocked(id taskID, at vtime.Time) vtime.Time {
	e := w.store[id]
	fs := w.cl.spill
	path := fmt.Sprintf("spill/w%d/%d", w.id, id)
	end := fs.Create(path, at)
	end, err := fs.WriteAtCost(path, 0, nil, e.bytes, end)
	if err != nil {
		panic(fmt.Sprintf("dask: spill of task id %d on worker %d failed: %v", id, w.id, err))
	}
	delete(w.store, id)
	w.memBytes -= e.bytes
	e.readyAt = end
	if w.spilled == nil {
		w.spilled = make(map[taskID]storeEntry)
	}
	w.spilled[id] = e
	w.spilledBytes += e.bytes
	w.mSpillB.Add(e.bytes)
	w.mSpillEv.Inc()
	return end
}

// governLocked spills LRU blocks until the resident ledger fits the
// effective limit at the given time (keep is never evicted). External
// blocks are pinned, so a store full of published blocks may legally
// stay above the limit — the auditor's oversize-grant escape hatch.
// Returns when the last spill write completes. Caller holds storeMu.
func (w *worker) governLocked(at vtime.Time, keep taskID) vtime.Time {
	eff := w.effectiveLimitLocked(at)
	w.lastLimit = eff
	if eff == 0 {
		return at
	}
	end := at
	for w.memBytes > eff {
		victim := w.victimLocked(keep)
		if victim < 0 {
			break
		}
		end = w.spillLocked(victim, end)
	}
	return end
}

// put inserts a value into the worker's object store (used by both task
// execution and client scatter). external pins the block against
// spilling (published external blocks are placed under the contract).
func (w *worker) put(id taskID, value any, bytes int64, readyAt vtime.Time, external bool) {
	w.storeMu.Lock()
	if old, ok := w.store[id]; ok {
		w.memBytes -= old.bytes
	}
	e := storeEntry{value: value, bytes: bytes, readyAt: readyAt, external: external}
	if w.governed() {
		if old, ok := w.spilled[id]; ok {
			delete(w.spilled, id)
			w.spilledBytes -= old.bytes
		}
		w.lruSeq++
		e.lru = w.lruSeq
	}
	w.store[id] = e
	w.memBytes += bytes
	if w.governed() {
		w.governLocked(readyAt, id)
	}
	mem, spill := w.memBytes, w.spillEligibleLocked()
	w.storeMu.Unlock()
	w.mMem.Set(float64(mem), readyAt)
	w.mSpill.Set(float64(spill), readyAt)
	w.mManaged.Set(float64(mem), readyAt)
}

// spillEligibleLocked counts blocks a real worker would consider for
// spilling to disk: everything in the store, once the held bytes exceed
// the configured threshold (the simulator never spills; the gauge shows
// the pressure). Caller holds storeMu.
func (w *worker) spillEligibleLocked() int {
	th := w.cl.cfg.SpillThresholdBytes
	if th <= 0 || w.memBytes <= th {
		return 0
	}
	return len(w.store)
}

// get returns a stored value without touching governance state (no LRU
// bump, no unspill charge). It panics if the ID is absent: the
// scheduler only references data it has been told is resident, so absence
// is a protocol bug, not a user error. Data-plane reads use fetch; get
// remains for inspection paths that must not perturb eviction order.
func (w *worker) get(id taskID) storeEntry {
	w.storeMu.RLock()
	e, ok := w.store[id]
	if !ok {
		e, ok = w.spilled[id]
	}
	w.storeMu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("dask: worker %d has no task id %d", w.id, id))
	}
	return e
}

// fetch returns a stored value for a data-plane read at the given
// virtual time, transparently unspilling it first: a spilled block is
// read back from the spill tier (charging the PFS read cost), made
// resident again, and governance re-runs in case the unspill pushed the
// ledger over the limit. The returned entry's readyAt includes the read
// completion, so consumers naturally wait for the unspill in virtual
// time. Ungoverned workers take a read-locked fast path identical to
// the pre-governance store.
func (w *worker) fetch(id taskID, at vtime.Time) storeEntry {
	if !w.governed() {
		return w.get(id)
	}
	w.storeMu.Lock()
	e, ok := w.store[id]
	if ok {
		w.lruSeq++
		e.lru = w.lruSeq
		w.store[id] = e
		w.storeMu.Unlock()
		return e
	}
	e, ok = w.spilled[id]
	if !ok {
		w.storeMu.Unlock()
		panic(fmt.Sprintf("dask: worker %d has no task id %d", w.id, id))
	}
	start := at
	if e.readyAt > start {
		start = e.readyAt
	}
	path := fmt.Sprintf("spill/w%d/%d", w.id, id)
	_, end, err := w.cl.spill.ReadAtCostBuf(path, 0, 0, e.bytes, nil, start)
	if err != nil {
		w.storeMu.Unlock()
		panic(fmt.Sprintf("dask: unspill of task id %d on worker %d failed: %v", id, w.id, err))
	}
	delete(w.spilled, id)
	w.spilledBytes -= e.bytes
	e.readyAt = end
	w.lruSeq++
	e.lru = w.lruSeq
	w.store[id] = e
	w.memBytes += e.bytes
	w.governLocked(end, id)
	mem := w.memBytes
	w.storeMu.Unlock()
	w.mMem.Set(float64(mem), end)
	w.mManaged.Set(float64(mem), end)
	return e
}

// drop removes an entry from the object store (release path) at the
// given virtual time, whichever tier holds it.
func (w *worker) drop(id taskID, at vtime.Time) {
	w.storeMu.Lock()
	if old, ok := w.store[id]; ok {
		w.memBytes -= old.bytes
	}
	delete(w.store, id)
	if old, ok := w.spilled[id]; ok {
		w.spilledBytes -= old.bytes
		delete(w.spilled, id)
	}
	mem, spill := w.memBytes, w.spillEligibleLocked()
	w.storeMu.Unlock()
	w.mMem.Set(float64(mem), at)
	w.mSpill.Set(float64(spill), at)
	if w.governed() {
		w.mManaged.Set(float64(mem), at)
	}
}

// has reports whether the worker holds an entry in either tier.
func (w *worker) has(id taskID) bool {
	w.storeMu.RLock()
	_, ok := w.store[id]
	if !ok {
		_, ok = w.spilled[id]
	}
	w.storeMu.RUnlock()
	return ok
}

// admit applies scatter backpressure: before a producer ships total
// bytes to this worker, the worker spills to make room; if even a full
// spill cannot fit the batch under the effective limit, behaviour
// splits on why. A chaos-window squeeze rejects with ErrWorkerPaused —
// the window is time-bounded and the producer's virtual-time backoff
// carries it past the squeeze. The configured base limit instead grants
// the admission (pinned external blocks have nowhere else to live;
// refusing forever would wedge the coupling) — the auditor's
// oversize-grant escape hatch covers this. Returns the virtual time the
// transfer may start (after any spill writes).
func (w *worker) admit(total int64, at vtime.Time) (vtime.Time, error) {
	if !w.governed() {
		return at, nil
	}
	w.storeMu.Lock()
	defer w.storeMu.Unlock()
	eff := w.effectiveLimitLocked(at)
	w.lastLimit = eff
	if eff == 0 {
		return at, nil
	}
	end := at
	for w.memBytes+total > eff {
		victim := w.victimLocked(-1)
		if victim < 0 {
			break
		}
		end = w.spillLocked(victim, end)
	}
	if w.memBytes+total <= eff {
		return end, nil
	}
	base := w.cl.cfg.WorkerMemoryLimit
	if eff < base || base == 0 {
		// Squeezed by a memlimit window: tell the producer when every
		// active squeeze lifts, so its retry can block in virtual time
		// to that point instead of burning attempts inside the window.
		// An open-ended window offers no such horizon; the retry policy
		// then bounds the wait.
		retry := at
		for _, win := range w.windows {
			if at < win.start || (win.end > 0 && at >= win.end) || win.limit <= 0 {
				continue
			}
			if win.end > retry {
				retry = win.end
			}
		}
		return retry, fmt.Errorf("dask: worker %d paused at %d/%d bytes, cannot admit %d more: %w",
			w.id, w.memBytes, eff, total, ErrWorkerPaused)
	}
	return end, nil
}

// pausedAt reports whether the worker sits at or above its high
// watermark at the given virtual time — the scheduler stops assigning
// ready tasks to paused workers and bridge failover skips them.
func (w *worker) pausedAt(at vtime.Time) bool {
	if !w.governed() {
		return false
	}
	w.storeMu.RLock()
	eff := w.effectiveLimitLocked(at)
	mem := w.memBytes
	w.storeMu.RUnlock()
	return eff > 0 && float64(mem) >= w.cl.cfg.highWatermark()*float64(eff)
}

// memAudit snapshots the ledger for the invariant auditor: both
// ledgers, recomputed sums over the maps, whether any ID sits in both
// tiers or any external block was spilled, the number of evictable
// resident blocks, and the limit seen by the last governance pass.
func (w *worker) memAudit() (mem, sumRes, spilledB, sumSp int64, overlap, extSpilled bool, evictable int, lastLimit int64) {
	w.storeMu.RLock()
	defer w.storeMu.RUnlock()
	for _, e := range w.store {
		sumRes += e.bytes
		if !e.external {
			evictable++
		}
	}
	for id, e := range w.spilled {
		sumSp += e.bytes
		if e.external {
			extSpilled = true
		}
		if _, ok := w.store[id]; ok {
			overlap = true
		}
	}
	return w.memBytes, sumRes, w.spilledBytes, sumSp, overlap, extSpilled, evictable, w.lastLimit
}

// exec fetches dependencies, runs the task, stores the result, and
// reports completion to the scheduler.
func (w *worker) exec(a assignment) {
	vals := make([]any, len(a.deps))
	depReady := a.arriveAt
	for i, d := range a.deps {
		if d.worker == w.id {
			e := w.fetch(d.id, a.arriveAt)
			vals[i] = e.value
			if e.readyAt > depReady {
				depReady = e.readyAt
			}
			continue
		}
		peer := w.cl.worker(d.worker)
		e := peer.fetch(d.id, a.arriveAt)
		vals[i] = e.value
		depart := a.arriveAt
		if e.readyAt > depart {
			depart = e.readyAt
		}
		arrive := w.cl.xfer(peer.node, w.node, e.bytes, depart)
		w.mRecv.Add(e.bytes)
		if arrive > depReady {
			depReady = arrive
		}
	}

	start, end := w.cpu.Acquire(depReady, a.cost+w.cl.cfg.WorkerTaskOverhead)
	value, dynEnd, err := w.invoke(a, vals, start)
	if dynEnd > end {
		w.cpu.Extend(dynEnd)
		end = dynEnd
	}

	// A kill may have landed while the task body ran. The span must not
	// look like a normal completion: it is closed as aborted, truncated
	// to the kill time, and neither the result nor a completion report
	// leaves the worker (the scheduler has already re-planned the task).
	w.mu.Lock()
	dead, killedAt := w.dead, w.killedAt
	w.mu.Unlock()
	if dead {
		abortEnd := end
		if killedAt < abortEnd {
			abortEnd = killedAt
		}
		if abortEnd < start {
			abortEnd = start
		}
		if tr := w.cl.tracer(); tr != nil {
			tr.add(TraceEvent{Key: a.key, Worker: w.id, Start: start, End: abortEnd, Aborted: true})
		}
		return
	}

	if tr := w.cl.tracer(); tr != nil {
		tr.add(TraceEvent{Key: a.key, Worker: w.id, Start: start, End: end, Erred: err != nil})
	}
	report := w.cl.xfer(w.node, w.cl.schedNode, w.cl.cfg.ControlMsgBytes, end)
	if err != nil {
		w.cl.sched.taskErred(a.id, err, report)
		return
	}
	bytes := SizeOf(value)
	if a.outBytes > 0 {
		bytes = a.outBytes
	}
	w.put(a.id, value, bytes, end, false)
	w.mu.Lock()
	w.executed++
	w.mu.Unlock()
	w.mExecuted.Inc()
	w.cl.sched.taskFinished(a.id, w.id, end, bytes, report)
}

// invoke runs the task body, converting panics into task errors, as
// Dask converts Python exceptions in tasks into task failures rather
// than crashing the worker.
func (w *worker) invoke(a assignment, vals []any, start vtime.Time) (value any, dynEnd vtime.Time, err error) {
	defer func() {
		if r := recover(); r != nil {
			value = nil
			err = fmt.Errorf("dask: task %q panicked: %v", a.key, r)
		}
	}()
	if a.timed != nil {
		return a.timed(vals, start)
	}
	value, err = a.fn(vals)
	return value, start, err
}

// Executed returns how many tasks this worker has completed.
func (w *worker) Executed() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.executed
}

// stats summarizes one worker for monitoring.
func (w *worker) stats() WorkerStats {
	w.storeMu.RLock()
	items := len(w.store)
	var bytes int64
	for _, e := range w.store {
		bytes += e.bytes
	}
	spItems := len(w.spilled)
	spBytes := w.spilledBytes
	w.storeMu.RUnlock()
	return WorkerStats{
		ID:           w.id,
		Node:         w.node,
		Executed:     w.Executed(),
		BusySecs:     w.cpu.Busy(),
		StoreItems:   items,
		StoreBytes:   bytes,
		SpilledItems: spItems,
		SpilledBytes: spBytes,
	}
}

// WorkerStats is a monitoring snapshot of one worker — executed task
// count, virtual busy time, and object-store contents by tier (the
// numbers a Dask dashboard's worker panel shows).
type WorkerStats struct {
	ID           int
	Node         netsim.NodeID
	Executed     int64
	BusySecs     float64
	StoreItems   int
	StoreBytes   int64
	SpilledItems int
	SpilledBytes int64
}
