package dask

import (
	"fmt"
	"math"
	"testing"
	"time"

	"deisago/internal/taskgraph"
)

// FuzzMemoryGovernance drives a memory-governed cluster through random
// interleavings of submit / scatter / publish / kill / release / gather
// ops plus chaos-style memlimit squeeze windows and tenant-namespace
// traffic (tenant-owned blocks competing for the squeezed budget), with
// the invariant auditor on. The auditor's memory-conservation invariant (ledger ==
// store sums, tiers disjoint, externals pinned, no silent over-limit
// residency) panics on violation; a drain that cannot finish within the
// watchdog is a deadlock. Run with:
//
//	go test -fuzz=FuzzMemoryGovernance -fuzztime=30s ./internal/dask
func FuzzMemoryGovernance(f *testing.F) {
	f.Add([]byte{1, 9, 1, 17, 1, 25, 7, 3, 1, 33})
	f.Add([]byte{2, 3, 6, 40, 3, 0, 1, 8, 4, 1, 7, 2})
	f.Add([]byte{6, 200, 1, 100, 1, 101, 5, 0, 0, 2, 3, 1, 7, 7})
	f.Add([]byte("spill-squeeze-kill-gather"))
	f.Add([]byte{8, 0, 9, 3, 9, 7, 6, 200, 9, 1, 4, 1, 9, 5, 7, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		const limit = 256 // bytes; blocks below are 32–152 bytes
		c, cl := testClusterMem(3, limit)
		defer c.Close()
		c.EnableAudit()

		sum := func(in []any) (any, error) {
			total := 0.0
			for _, v := range in {
				switch x := v.(type) {
				case float64:
					total += x
				case []float64:
					for _, f := range x {
						total += f
					}
				}
			}
			return total, nil
		}

		var futs []*Future          // futures to drain at the end
		var keys []taskgraph.Key    // every registered key, for deps/gather
		var extKeys []taskgraph.Key // external keys needing publishes
		bridge := c.NewClient("bridge", 1, math.Inf(1))
		nextID := 0
		fresh := func(prefix string) taskgraph.Key {
			nextID++
			return taskgraph.Key(fmt.Sprintf("%s%d", prefix, nextID))
		}
		liveTarget := func(b byte) (int, bool) {
			live := c.LiveWorkers()
			if len(live) == 0 {
				return 0, false
			}
			return live[int(b)%len(live)], true
		}
		block := func(b byte) []float64 {
			val := make([]float64, 4+int(b)%16)
			for j := range val {
				val[j] = float64(int(b)+j) * 0.5
			}
			return val
		}

		tenantPalette := []string{"ta", "tb", "tc"}
		var registered []string

		for i := 0; i < len(data); i++ {
			op := data[i] % 10
			arg := byte(0)
			if i+1 < len(data) {
				arg = data[i+1]
			}
			switch op {
			case 0: // submit a small chain over random known keys
				g := taskgraph.New()
				var deps []taskgraph.Key
				if len(keys) > 0 {
					deps = append(deps, keys[int(arg)%len(keys)])
				}
				k1 := fresh("t")
				g.AddFn(k1, deps, sum, 1e-5)
				k2 := fresh("t")
				g.AddFn(k2, []taskgraph.Key{k1}, sum, 1e-5)
				fs, err := cl.Submit(g, []taskgraph.Key{k2})
				if err != nil {
					continue // e.g. dep was released concurrently
				}
				keys = append(keys, k1, k2)
				futs = append(futs, fs...)
			case 1: // scatter a plain block (spill fodder; refusal under a squeeze is fine)
				if w, ok := liveTarget(arg >> 2); ok {
					k := fresh("blk")
					if err := cl.Scatter([]ScatterItem{{Key: k, Value: block(arg)}}, false, w); err == nil {
						keys = append(keys, k)
						futs = append(futs, &Future{Key: k, client: cl})
					}
				}
			case 2: // create an external task
				k := fresh("ext")
				fs, err := cl.ExternalFutures([]taskgraph.Key{k})
				if err != nil {
					continue
				}
				keys = append(keys, k)
				extKeys = append(extKeys, k)
				futs = append(futs, fs...)
			case 3: // publish one pending external key (pinned resident)
				if len(extKeys) == 0 {
					continue
				}
				k := extKeys[int(arg)%len(extKeys)]
				if st, ok := c.TaskState(k); !ok || st != StateExternal {
					continue
				}
				if w, ok := liveTarget(arg); ok {
					_ = bridge.Scatter([]ScatterItem{{Key: k, Value: block(arg)}}, true, w)
				}
			case 4: // kill a live worker, keeping one survivor
				live := c.LiveWorkers()
				if len(live) < 2 {
					continue
				}
				_ = c.KillWorker(live[int(arg)%len(live)], cl.Now())
			case 5: // release a completed future (waiting on an unpublished
				// external's dependents here would block past the watchdog)
				if len(futs) == 0 {
					continue
				}
				fu := futs[int(arg)%len(futs)]
				if !fu.Done() {
					continue
				}
				_ = cl.Wait([]*Future{fu})
				_ = cl.Release([]*Future{fu})
			case 6: // chaos-style squeeze window on a random worker (bounded)
				w := int(arg>>4) % 3
				squeeze := int64(16 + int(arg)*2)
				now := cl.Now()
				c.SetWorkerMemoryWindow(w, squeeze, now, now+0.5)
			case 7: // gather a completed future (exercises the unspill path)
				if len(futs) == 0 {
					continue
				}
				fu := futs[int(arg)%len(futs)]
				if !fu.Done() {
					continue
				}
				_, _ = cl.Gather([]*Future{fu})
			case 8: // register a tenant namespace (dups refused)
				name := tenantPalette[int(arg)%len(tenantPalette)]
				if err := c.RegisterTenant(name, 1+float64(arg%4)); err == nil {
					registered = append(registered, name)
				}
			case 9: // tenant-owned block plus a consumer in the same
				// namespace: the block lands on the tenant's resident-byte
				// ledger and becomes spill fodder under squeeze windows
				if len(registered) == 0 {
					continue
				}
				ten := registered[int(arg)%len(registered)]
				w, ok := liveTarget(arg)
				if !ok {
					continue
				}
				k := fresh(ten + "/blk")
				if err := cl.Scatter([]ScatterItem{{Key: k, Value: block(arg)}}, false, w); err != nil {
					continue
				}
				keys = append(keys, k)
				futs = append(futs, &Future{Key: k, client: cl})
				g := taskgraph.New()
				k2 := fresh(ten + "/t")
				g.AddFn(k2, []taskgraph.Key{k}, sum, 1e-5)
				if fs, err := cl.Submit(g, []taskgraph.Key{k2}); err == nil {
					keys = append(keys, k2)
					futs = append(futs, fs...)
				}
			}
		}

		// Drain: republish anything still external (kills can no longer
		// fire; refusals under a still-open squeeze window carry the
		// bridge clock past the window, so retries converge), then wait
		// for every future under a deadlock watchdog.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for pass := 0; pass < len(extKeys)+len(data)+2; pass++ {
				n := 0
				for _, k := range extKeys {
					if st, ok := c.TaskState(k); ok && st == StateExternal {
						if w, ok := liveTarget(byte(pass)); ok {
							_ = bridge.Scatter([]ScatterItem{{Key: k, Value: 1.0}}, true, w)
							n++
						}
					}
				}
				if n == 0 {
					break
				}
			}
			for _, fu := range futs {
				_ = cl.Wait([]*Future{fu}) // erred/released is fine; hanging is not
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("scheduler deadlocked draining %d futures (ops=%v)", len(futs), data)
		}
		if len(c.AuditLog()) == 0 && len(keys) > 0 {
			t.Fatal("auditor recorded nothing despite registered tasks")
		}
	})
}
