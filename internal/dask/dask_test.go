package dask

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

// testCluster builds a small cluster: scheduler on node 0, client node 1,
// workers on nodes 2..2+n-1.
func testCluster(t *testing.T, nWorkers int) (*Cluster, *Client) {
	t.Helper()
	cfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(cfg, nWorkers+2)
	wnodes := make([]netsim.NodeID, nWorkers)
	for i := range wnodes {
		wnodes[i] = netsim.NodeID(i + 2)
	}
	c := NewCluster(fabric, DefaultConfig(), 0, wnodes)
	t.Cleanup(c.Close)
	return c, c.NewClient("client", 1, math.Inf(1))
}

func constTask(g *taskgraph.Graph, key taskgraph.Key, v float64) {
	g.AddFn(key, nil, func([]any) (any, error) { return v, nil }, 1e-3)
}

func sumTask(g *taskgraph.Graph, key taskgraph.Key, deps ...taskgraph.Key) {
	g.AddFn(key, deps, func(in []any) (any, error) {
		var s float64
		for _, x := range in {
			s += x.(float64)
		}
		return s, nil
	}, 1e-3)
}

func TestSubmitAndGather(t *testing.T) {
	_, cl := testCluster(t, 2)
	g := taskgraph.New()
	constTask(g, "a", 2)
	constTask(g, "b", 3)
	sumTask(g, "c", "a", "b")
	futs, err := cl.Submit(g, []taskgraph.Key{"c"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 5 {
		t.Fatalf("c = %v, want 5", vals[0])
	}
	if cl.Now() <= 0 {
		t.Fatal("gather advanced no virtual time")
	}
}

func TestDiamondExecutesEachTaskOnce(t *testing.T) {
	_, cl := testCluster(t, 3)
	var mu sync.Mutex
	counts := map[string]int{}
	record := func(name string) {
		mu.Lock()
		counts[name]++
		mu.Unlock()
	}
	g := taskgraph.New()
	g.AddFn("a", nil, func([]any) (any, error) { record("a"); return 1.0, nil }, 1e-3)
	g.AddFn("b", []taskgraph.Key{"a"}, func(in []any) (any, error) { record("b"); return in[0].(float64) + 1, nil }, 1e-3)
	g.AddFn("c", []taskgraph.Key{"a"}, func(in []any) (any, error) { record("c"); return in[0].(float64) * 2, nil }, 1e-3)
	g.AddFn("d", []taskgraph.Key{"b", "c"}, func(in []any) (any, error) {
		record("d")
		return in[0].(float64) + in[1].(float64), nil
	}, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"d"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 4 {
		t.Fatalf("d = %v, want 4", vals[0])
	}
	for _, k := range []string{"a", "b", "c", "d"} {
		if counts[k] != 1 {
			t.Fatalf("task %s executed %d times", k, counts[k])
		}
	}
}

func TestSubmitCullsUnreachable(t *testing.T) {
	c, cl := testCluster(t, 1)
	g := taskgraph.New()
	constTask(g, "a", 1)
	constTask(g, "orphan", 9)
	sumTask(g, "b", "a")
	if _, err := cl.Submit(g, []taskgraph.Key{"b"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.sched.taskState("orphan"); ok {
		t.Fatal("orphan task registered despite cull")
	}
}

func TestScatterThenSubmit(t *testing.T) {
	_, cl := testCluster(t, 2)
	err := cl.Scatter([]ScatterItem{{Key: "data-0", Value: 10.0}}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	g.AddFn("double", []taskgraph.Key{"data-0"}, func(in []any) (any, error) {
		return in[0].(float64) * 2, nil
	}, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"double"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 20 {
		t.Fatalf("double = %v", vals[0])
	}
}

func TestScatterDuplicateKeyRejected(t *testing.T) {
	_, cl := testCluster(t, 1)
	if err := cl.Scatter([]ScatterItem{{Key: "k", Value: 1.0}}, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Scatter([]ScatterItem{{Key: "k", Value: 2.0}}, false, 0); err == nil {
		t.Fatal("duplicate scatter accepted")
	}
}

// TestExternalTasksAheadOfTime is the core behaviour of the paper: the
// analytics graph is submitted before the data exists; external scatter
// later triggers the finished-task transition path and the graph runs.
func TestExternalTasksAheadOfTime(t *testing.T) {
	c, cl := testCluster(t, 2)
	// Step 1: create external tasks for two future timesteps.
	keys := []taskgraph.Key{"deisa-temp-0", "deisa-temp-1"}
	if _, err := cl.ExternalFutures(keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		st, ok := c.sched.taskState(k)
		if !ok || st != StateExternal {
			t.Fatalf("key %s state = %v, want external", k, st)
		}
	}
	// Step 2: submit a graph depending on both BEFORE any data exists.
	g := taskgraph.New()
	g.AddFn("total", keys, func(in []any) (any, error) {
		return in[0].(float64) + in[1].(float64), nil
	}, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"total"})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := c.sched.taskState("total"); st != StateWaiting {
		t.Fatalf("total state = %v before data, want waiting", st)
	}
	// Step 3: a "bridge" scatters the external results.
	bridge := c.NewClient("bridge", 1, math.Inf(1))
	if err := bridge.Scatter([]ScatterItem{{Key: "deisa-temp-0", Value: 4.0}}, true, 0); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.sched.taskState("total"); st != StateWaiting {
		t.Fatalf("total state = %v after partial data, want waiting", st)
	}
	if err := bridge.Scatter([]ScatterItem{{Key: "deisa-temp-1", Value: 5.0}}, true, 1); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 9 {
		t.Fatalf("total = %v, want 9", vals[0])
	}
	if st, _ := c.sched.taskState("deisa-temp-0"); st != StateMemory {
		t.Fatalf("external task state after update = %v, want memory", st)
	}
}

func TestExternalScatterUnknownKeyRejected(t *testing.T) {
	_, cl := testCluster(t, 1)
	if err := cl.Scatter([]ScatterItem{{Key: "ghost", Value: 1.0}}, true, 0); err == nil {
		t.Fatal("external scatter to unknown key accepted")
	}
}

func TestExternalDoubleCreateRejected(t *testing.T) {
	_, cl := testCluster(t, 1)
	if _, err := cl.ExternalFutures([]taskgraph.Key{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ExternalFutures([]taskgraph.Key{"x"}); err == nil {
		t.Fatal("double external create accepted")
	}
}

func TestNonExternalScatterToExternalKeyRejected(t *testing.T) {
	_, cl := testCluster(t, 1)
	if _, err := cl.ExternalFutures([]taskgraph.Key{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Scatter([]ScatterItem{{Key: "x", Value: 1.0}}, false, 0); err == nil {
		t.Fatal("plain scatter to external key accepted")
	}
}

func TestSubmitUnknownDependencyRejected(t *testing.T) {
	_, cl := testCluster(t, 1)
	g := taskgraph.New()
	g.AddFn("t", []taskgraph.Key{"missing"}, func([]any) (any, error) { return nil, nil }, 0)
	if _, err := cl.Submit(g, []taskgraph.Key{"t"}); err == nil {
		t.Fatal("unknown dependency accepted")
	}
}

func TestErredTaskPropagates(t *testing.T) {
	_, cl := testCluster(t, 2)
	boom := errors.New("boom")
	g := taskgraph.New()
	g.AddFn("bad", nil, func([]any) (any, error) { return nil, boom }, 1e-3)
	g.AddFn("child", []taskgraph.Key{"bad"}, func(in []any) (any, error) { return 1.0, nil }, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"child"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gather(futs); err == nil || !errors.Is(err, boom) {
		t.Fatalf("gather error = %v, want wrapped boom", err)
	}
}

func TestSubmitAfterDependencyErred(t *testing.T) {
	c, cl := testCluster(t, 1)
	boom := errors.New("kaput")
	g := taskgraph.New()
	g.AddFn("bad", nil, func([]any) (any, error) { return nil, boom }, 1e-3)
	futs, _ := cl.Submit(g, []taskgraph.Key{"bad"})
	if _, err := cl.Gather(futs); err == nil {
		t.Fatal("want error")
	}
	_ = c
	g2 := taskgraph.New()
	g2.AddFn("late", []taskgraph.Key{"bad"}, func([]any) (any, error) { return 1.0, nil }, 1e-3)
	futs2, err := cl.Submit(g2, []taskgraph.Key{"late"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gather(futs2); err == nil {
		t.Fatal("dependent of erred task should err")
	}
}

func TestDataLocalityAssignment(t *testing.T) {
	c, cl := testCluster(t, 3)
	// Scatter a large block to worker 2.
	big := ndarray.New(1000)
	if err := cl.Scatter([]ScatterItem{{Key: "big", Value: big}}, false, 2); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	g.AddFn("use", []taskgraph.Key{"big"}, func(in []any) (any, error) {
		return in[0].(*ndarray.Array).Sum(), nil
	}, 1e-3)
	futs, err := cl.Submit(g, []taskgraph.Key{"use"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	wid, _, _, _, err := c.sched.locate("use")
	if err != nil {
		t.Fatal(err)
	}
	if wid != 2 {
		t.Fatalf("task ran on worker %d, want 2 (data locality)", wid)
	}
}

func TestRoundRobinForRootTasks(t *testing.T) {
	c, cl := testCluster(t, 3)
	g := taskgraph.New()
	for i := 0; i < 6; i++ {
		constTask(g, taskgraph.Key(fmt.Sprintf("r%d", i)), float64(i))
	}
	var targets []taskgraph.Key
	for i := 0; i < 6; i++ {
		targets = append(targets, taskgraph.Key(fmt.Sprintf("r%d", i)))
	}
	futs, err := cl.Submit(g, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs); err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, k := range targets {
		wid, _, _, _, err := c.sched.locate(k)
		if err != nil {
			t.Fatal(err)
		}
		seen[wid]++
	}
	for w := 0; w < 3; w++ {
		if seen[w] != 2 {
			t.Fatalf("round robin skew: %v", seen)
		}
	}
}

func TestVariableAcrossClients(t *testing.T) {
	c, cl := testCluster(t, 1)
	other := c.NewClient("other", 1, math.Inf(1))
	done := make(chan any, 1)
	go func() {
		done <- other.Variable("contract").Get()
	}()
	cl.Variable("contract").Set("selection-xyz")
	if got := <-done; got.(string) != "selection-xyz" {
		t.Fatalf("variable = %v", got)
	}
	// Get after set, same client.
	if got := cl.Variable("contract").Get(); got.(string) != "selection-xyz" {
		t.Fatalf("second get = %v", got)
	}
}

func TestQueueFIFOAcrossClients(t *testing.T) {
	c, cl := testCluster(t, 1)
	q := cl.Queue("q0")
	q.Put(1.0)
	q.Put(2.0)
	other := c.NewClient("other", 1, math.Inf(1))
	if got := other.Queue("q0").Get(); got.(float64) != 1 {
		t.Fatalf("first = %v", got)
	}
	if got := other.Queue("q0").Get(); got.(float64) != 2 {
		t.Fatalf("second = %v", got)
	}
}

func TestHeartbeatTick(t *testing.T) {
	c, _ := testCluster(t, 1)
	b := c.NewClient("bridge", 1, 5) // 5 s interval
	if n := b.HeartbeatTick(); n != 0 {
		t.Fatalf("tick at t=0 sent %d", n)
	}
	b.Compute(12)
	if n := b.HeartbeatTick(); n != 2 {
		t.Fatalf("tick after 12 s sent %d, want 2", n)
	}
	b.Compute(2)
	if n := b.HeartbeatTick(); n != 0 {
		t.Fatalf("tick after 14 s sent %d, want 0", n)
	}
	if got := c.Counters().Heartbeats.Load(); got != 2 {
		t.Fatalf("heartbeat counter = %d", got)
	}
	// Infinite interval sends nothing.
	inf := c.NewClient("inf", 1, math.Inf(1))
	inf.Compute(1e6)
	if n := inf.HeartbeatTick(); n != 0 {
		t.Fatal("infinite heartbeat interval sent messages")
	}
}

func TestCountersTally(t *testing.T) {
	c, cl := testCluster(t, 1)
	g := taskgraph.New()
	constTask(g, "a", 1)
	futs, _ := cl.Submit(g, []taskgraph.Key{"a"})
	cl.Gather(futs)
	cl.Scatter([]ScatterItem{{Key: "s", Value: 1.0}}, false, 0)
	snap := c.Counters().Snapshot()
	if snap.GraphsSubmitted != 1 || snap.TasksRegistered != 1 {
		t.Fatalf("submit counters: %+v", snap)
	}
	if snap.UpdateDataMsgs != 1 {
		t.Fatalf("update-data counter = %d", snap.UpdateDataMsgs)
	}
	if snap.TaskFinishedMsgs != 1 {
		t.Fatalf("task-finished counter = %d", snap.TaskFinishedMsgs)
	}
	if snap.TotalSchedulerMsg == 0 {
		t.Fatal("total messages not counted")
	}
}

func TestVirtualTimeGrowsWithDataSize(t *testing.T) {
	times := make([]float64, 2)
	for i, n := range []int{1 << 8, 1 << 22} {
		_, cl := testCluster(t, 1)
		if err := cl.Scatter([]ScatterItem{{Key: "d", Value: ndarray.New(n)}}, false, 0); err != nil {
			t.Fatal(err)
		}
		times[i] = cl.Now()
	}
	if times[1] <= times[0] {
		t.Fatalf("scatter of 32 MiB not slower than 2 KiB: %v", times)
	}
}

func TestWaitForUnknownKey(t *testing.T) {
	_, cl := testCluster(t, 1)
	f := &Future{Key: "nope", client: cl}
	if err := cl.Wait([]*Future{f}); err == nil {
		t.Fatal("wait for unknown key succeeded")
	}
}

func TestFutureResultAndString(t *testing.T) {
	_, cl := testCluster(t, 1)
	g := taskgraph.New()
	constTask(g, "a", 7)
	futs, _ := cl.Submit(g, []taskgraph.Key{"a"})
	v, err := futs[0].Result()
	if err != nil || v.(float64) != 7 {
		t.Fatalf("Result = %v, %v", v, err)
	}
	if s := futs[0].String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestChainedSubmitsShareResults(t *testing.T) {
	// A second graph may depend on keys computed by a first graph.
	_, cl := testCluster(t, 2)
	g1 := taskgraph.New()
	constTask(g1, "x", 21)
	futs1, err := cl.Submit(g1, []taskgraph.Key{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs1); err != nil {
		t.Fatal(err)
	}
	g2 := taskgraph.New()
	g2.AddFn("y", []taskgraph.Key{"x"}, func(in []any) (any, error) {
		return in[0].(float64) * 2, nil
	}, 1e-3)
	futs2, err := cl.Submit(g2, []taskgraph.Key{"y"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 42 {
		t.Fatalf("y = %v", vals[0])
	}
}

// Property: a random linear pipeline (x -> f1 -> f2 -> ... -> fn) with
// random integer increments computes the same result as local evaluation.
func TestPipelineQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		incs := make([]float64, n)
		want := 0.0
		for i := range incs {
			incs[i] = float64(rng.Intn(100))
			want += incs[i]
		}
		_, cl := testClusterQuick(2)
		defer cl.cluster.Close()
		g := taskgraph.New()
		prev := taskgraph.Key("")
		for i, inc := range incs {
			key := taskgraph.Key(fmt.Sprintf("step-%d", i))
			inc := inc
			if i == 0 {
				g.AddFn(key, nil, func([]any) (any, error) { return inc, nil }, 1e-4)
			} else {
				g.AddFn(key, []taskgraph.Key{prev}, func(in []any) (any, error) {
					return in[0].(float64) + inc, nil
				}, 1e-4)
			}
			prev = key
		}
		futs, err := cl.Submit(g, []taskgraph.Key{prev})
		if err != nil {
			return false
		}
		vals, err := cl.Gather(futs)
		if err != nil {
			return false
		}
		return vals[0].(float64) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// testClusterQuick is testCluster without *testing.T, for quick.Check.
func testClusterQuick(nWorkers int) (*Cluster, *Client) {
	cfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(cfg, nWorkers+2)
	wnodes := make([]netsim.NodeID, nWorkers)
	for i := range wnodes {
		wnodes[i] = netsim.NodeID(i + 2)
	}
	c := NewCluster(fabric, DefaultConfig(), 0, wnodes)
	return c, c.NewClient("client", 1, math.Inf(1))
}

func TestConcurrentClients(t *testing.T) {
	c, _ := testCluster(t, 4)
	const N = 8
	var wg sync.WaitGroup
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := c.NewClient(fmt.Sprintf("c%d", i), 1, math.Inf(1))
			g := taskgraph.New()
			key := taskgraph.Key(fmt.Sprintf("job-%d", i))
			v := float64(i)
			g.AddFn(key, nil, func([]any) (any, error) { return v, nil }, 1e-4)
			futs, err := cl.Submit(g, []taskgraph.Key{key})
			if err != nil {
				errs[i] = err
				return
			}
			vals, err := cl.Gather(futs)
			if err != nil {
				errs[i] = err
				return
			}
			if vals[0].(float64) != v {
				errs[i] = fmt.Errorf("got %v want %v", vals[0], v)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestSizeOf(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{nil, 8},
		{ndarray.New(10, 10), 800},
		{[]float64{1, 2, 3}, 24},
		{[][]float64{{1}, {2, 3}}, 24},
		{[]byte{1, 2}, 2},
		{"abcd", 4},
		{3.14, 8},
		{42, 8},
		{struct{}{}, 256},
	}
	for _, c := range cases {
		if got := SizeOf(c.v); got != c.want {
			t.Fatalf("SizeOf(%T) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateWaiting: "waiting", StateReady: "ready", StateProcessing: "processing",
		StateMemory: "memory", StateErred: "erred", StateExternal: "external",
	}
	for st, want := range names {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q", int(st), st.String())
		}
	}
}

// Property: an arbitrary random DAG evaluated on the cluster produces
// the same values as a local topological evaluation.
func TestRandomDAGMatchesLocalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		g := taskgraph.New()
		type spec struct {
			deps []taskgraph.Key
			base float64
		}
		specs := map[taskgraph.Key]spec{}
		var keys []taskgraph.Key
		for i := 0; i < n; i++ {
			key := taskgraph.Key(fmt.Sprintf("n%03d", i))
			var deps []taskgraph.Key
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.3 {
					deps = append(deps, keys[j])
				}
			}
			base := float64(rng.Intn(7))
			specs[key] = spec{deps: deps, base: base}
			g.AddFn(key, deps, func(in []any) (any, error) {
				s := base
				for _, v := range in {
					s += v.(float64) * 1.5
				}
				return s, nil
			}, 1e-5)
			keys = append(keys, key)
		}
		// Local evaluation.
		local := map[taskgraph.Key]float64{}
		for _, k := range keys {
			sp := specs[k]
			s := sp.base
			for _, d := range sp.deps {
				s += local[d] * 1.5
			}
			local[k] = s
		}
		c, cl := testClusterQuick(3)
		defer c.Close()
		futs, err := cl.Submit(g, keys)
		if err != nil {
			return false
		}
		vals, err := cl.Gather(futs)
		if err != nil {
			return false
		}
		for i, k := range keys {
			if math.Abs(vals[i].(float64)-local[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
