package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"

	"deisago/internal/array"
	"deisago/internal/chaos"
	"deisago/internal/cluster"
	"deisago/internal/core"
	"deisago/internal/dask"
	"deisago/internal/metrics"
	"deisago/internal/mpi"
	"deisago/internal/multijob"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/sim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// This file is the multi-tenant driver: N concurrent Heat2D+IPCA
// pipelines ("jobs") share one deisa platform — one fabric, one Dask
// cluster, one scheduler. Each job gets its own namespace (every task
// key, scatter key, Variable and queue is prefixed "<name>/"), its own
// fair-share weight on the scheduler's ready queue, and its start is
// gated by a multijob.Plane admission ticket. The per-job pipelines
// are dataflow independent, so each job's analytics outputs are
// bit-identical whether the jobs run serially (MaxConcurrent=1) or
// fully interleaved — the per-tenant fingerprint checks exactly that.

// JobSpec describes one tenant pipeline of a multi-job run.
type JobSpec struct {
	// Name is the tenant namespace: non-empty, unique, no '/'.
	Name string
	// Weight is the fair-share weight (default 1).
	Weight float64
	// Ranks, Timesteps, BlockBytes size this job's pipeline; jobs may
	// differ (a mixed workload).
	Ranks      int
	Timesteps  int
	BlockBytes int64
	// MemEstimate is the managed-memory estimate the job declares at
	// admission; 0 computes Ranks·Timesteps·BlockBytes (the job's whole
	// scatter footprint, the worst case with nothing yet released).
	MemEstimate int64
}

func (j *JobSpec) estimate() int64 {
	if j.MemEstimate > 0 {
		return j.MemEstimate
	}
	return int64(j.Ranks) * int64(j.Timesteps) * j.BlockBytes
}

// MultiJobConfig describes a multi-tenant run.
type MultiJobConfig struct {
	Jobs    []JobSpec
	Workers int
	// Seed controls the allocation and link jitter, as Config.Seed.
	Seed  int64
	Model Model
	// RealLocalX/Y size each job's in-memory block; defaults 16×8.
	RealLocalX, RealLocalY int

	// MaxConcurrent / TenantBudget / ClusterBudget feed the admission
	// plane (multijob.Limits); zeros mean unlimited.
	MaxConcurrent int
	TenantBudget  int64
	ClusterBudget int64

	// WorkerMemoryLimit, when positive, enables per-worker memory
	// governance on the shared cluster (spill + scatter backpressure).
	WorkerMemoryLimit int64
	// ChaosPlan, when non-nil, runs the mixed workload under fault
	// injection. killjob events cancel the named tenant's analytics from
	// the given step; memlimit/drop/delay/degrade work as in single-job
	// runs. Worker kills are rejected: their republish barrier would
	// have to span jobs whose admission windows never overlap.
	ChaosPlan *chaos.Plan
	// TieBreak redirects benign scheduling ties (schedule exploration);
	// nil keeps the production rules.
	TieBreak dask.TieBreaker
	// EnableAudit switches the scheduler invariant auditor on (the
	// tenant-isolation invariant included); ChaosPlan enables it anyway.
	EnableAudit bool
}

func (c *MultiJobConfig) defaults() {
	if c.RealLocalX == 0 {
		c.RealLocalX = 16
	}
	if c.RealLocalY == 0 {
		c.RealLocalY = 8
	}
	if c.Model.CoresPerNode == 0 {
		c.Model = DefaultModel()
	}
	for i := range c.Jobs {
		if c.Jobs[i].Weight == 0 {
			c.Jobs[i].Weight = 1
		}
		if c.Jobs[i].Timesteps == 0 {
			c.Jobs[i].Timesteps = 10
		}
	}
}

func (c *MultiJobConfig) validate() error {
	if len(c.Jobs) == 0 {
		return fmt.Errorf("harness: multi-job run needs at least one job")
	}
	if c.Workers <= 0 {
		return fmt.Errorf("harness: workers must be positive")
	}
	names := map[string]bool{}
	for _, j := range c.Jobs {
		if err := (multijob.Tenant{Name: j.Name, Weight: j.Weight}).Validate(); err != nil {
			return err
		}
		if names[j.Name] {
			return fmt.Errorf("harness: duplicate job name %q", j.Name)
		}
		names[j.Name] = true
		if j.Ranks <= 0 || j.Timesteps <= 0 || j.BlockBytes <= 0 {
			return fmt.Errorf("harness: job %q needs positive ranks, timesteps and block size", j.Name)
		}
	}
	if c.ChaosPlan != nil {
		for i, ev := range c.ChaosPlan.Events {
			if ev.Kind == chaos.KindKillWorker {
				return fmt.Errorf("harness: multi-job runs do not support worker kills (event %d)", i)
			}
			if ev.Kind == chaos.KindKillJob && !names[ev.Tenant] {
				return fmt.Errorf("harness: killjob event %d targets unknown tenant %q", i, ev.Tenant)
			}
		}
	}
	return nil
}

// JobResult is one tenant's outcome.
type JobResult struct {
	Name   string
	Weight float64
	// Killed/KilledStep report a killjob cancellation: the analytics
	// consumed only timesteps before KilledStep.
	Killed     bool
	KilledStep int

	Components        *ndarray.Array
	SingularValues    []float64
	ExplainedVariance []float64

	BlocksSent, BlocksSkipped int64
	SimMakespan               float64
	AnalyticsTime             float64

	// Fingerprint digests the job's analytics values and bridge
	// counters. It is a pure function of the job spec (and its kill
	// step), independent of what other tenants share the platform or of
	// the admission interleaving.
	Fingerprint string
}

// MultiJobResult is the outcome of a multi-tenant run.
type MultiJobResult struct {
	Jobs []JobResult // in JobSpec order
	// Tenants is the scheduler-side fair-share accounting (service
	// counts, shares, resident bytes), in registration = spec order.
	Tenants []dask.TenantStats
	// Jain is Jain's fairness index over weight-normalized service.
	Jain      float64
	Admission multijob.Stats
	ChaosLog  []chaos.LogEntry
	Metrics   *metrics.Snapshot
	Makespan  float64
	// AuditLog is the shared scheduler's transition log when the
	// invariant auditor ran (EnableAudit or ChaosPlan): the interleaved
	// transitions of every tenant, for offline reference-model replay.
	AuditLog       []dask.Transition
	AuditTruncated int64
}

// Job returns the named job's result, or nil.
func (r *MultiJobResult) Job(name string) *JobResult {
	for i := range r.Jobs {
		if r.Jobs[i].Name == name {
			return &r.Jobs[i]
		}
	}
	return nil
}

// fingerprint digests the fields that must be reproducible.
func (j *JobResult) fingerprint() string {
	h := sha256.New()
	le := binary.LittleEndian
	var buf [8]byte
	writeF := func(v float64) {
		le.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeI := func(v int64) {
		le.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte(j.Name))
	if j.Killed {
		writeI(int64(j.KilledStep))
	} else {
		writeI(-1)
	}
	if j.Components != nil {
		for _, d := range j.Components.Shape() {
			writeI(int64(d))
		}
		for _, v := range j.Components.Data() {
			writeF(v)
		}
	}
	for _, v := range j.SingularValues {
		writeF(v)
	}
	for _, v := range j.ExplainedVariance {
		writeF(v)
	}
	writeI(j.BlocksSent)
	writeI(j.BlocksSkipped)
	return hex.EncodeToString(h.Sum(nil))
}

// RunMultiJob executes a mixed workload of concurrent pipelines on one
// shared platform.
func RunMultiJob(cfg MultiJobConfig) (*MultiJobResult, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.Model

	totalRanks := 0
	for _, j := range cfg.Jobs {
		totalRanks += j.Ranks
	}
	layout := cluster.Layout{
		Workers:        cfg.Workers,
		WorkersPerNode: m.WorkersPerNode,
		Ranks:          totalRanks,
		RanksPerNode:   m.RanksPerNode,
	}
	nodes := m.MachineNodes
	if need := layout.NodesNeeded(); nodes < need {
		nodes = need
	}
	net := m.Net
	net.Seed = cfg.Seed
	machine := cluster.NewMachine(net, nodes, m.CoresPerNode)
	alloc := machine.Allocate(layout.NodesNeeded(), cfg.Seed)
	place := alloc.Place(layout)

	reg := metrics.NewRegistry()
	machine.Fabric().UseMetrics(reg)
	dcfg := m.Dask
	dcfg.MetadataEntryCost = m.MetaEntryCost
	dcfg.WorkerMemoryLimit = cfg.WorkerMemoryLimit
	dcfg.TieBreak = cfg.TieBreak
	dcfg.Metrics = reg
	dc := dask.NewCluster(machine.Fabric(), dcfg, place.SchedulerNode, place.WorkerNodes)
	defer dc.Close()
	if cfg.EnableAudit || cfg.ChaosPlan != nil {
		dc.EnableAudit()
	}
	// Registration order = spec order, so tenant indices, instrument
	// creation, and TenantStatsAll are deterministic.
	for _, j := range cfg.Jobs {
		if err := dc.RegisterTenant(j.Name, j.Weight); err != nil {
			return nil, err
		}
	}

	var ctrl *chaos.Controller
	killAt := map[string]int{}
	if cfg.ChaosPlan != nil {
		var err error
		ctrl, err = chaos.NewController(cfg.ChaosPlan, dc)
		if err != nil {
			return nil, err
		}
		ctrl.InstallLinkFaults(machine.Fabric())
		killAt = ctrl.KillJobs()
	}

	plane := multijob.NewPlane(multijob.Limits{
		MaxConcurrent: cfg.MaxConcurrent,
		TenantBudget:  cfg.TenantBudget,
		ClusterBudget: cfg.ClusterBudget,
	})

	results := make([]JobResult, len(cfg.Jobs))
	errs := make(chan error, len(cfg.Jobs))
	var wg sync.WaitGroup
	rankBase := 0
	for i, job := range cfg.Jobs {
		rankNodes := place.RankNodes[rankBase : rankBase+job.Ranks]
		rankBase += job.Ranks
		wg.Add(1)
		go func(i int, job JobSpec, rankNodes []netsim.NodeID) {
			defer wg.Done()
			release, err := plane.Admit(job.Name, job.estimate())
			if err != nil {
				errs <- fmt.Errorf("job %q: %w", job.Name, err)
				return
			}
			defer release()
			killStep, killed := killAt[job.Name]
			res, err := runOneJob(&cfg, job, dc, machine.Fabric(), rankNodes,
				place.ClientNode, ctrl, killed, killStep)
			if err != nil {
				errs <- fmt.Errorf("job %q: %w", job.Name, err)
				return
			}
			results[i] = *res
		}(i, job, rankNodes)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	out := &MultiJobResult{
		Jobs:      results,
		Tenants:   dc.TenantStatsAll(),
		Jain:      dc.JainFairness(),
		Admission: plane.Stats(),
	}
	if ctrl != nil {
		out.ChaosLog = ctrl.Log()
	}
	if dc.AuditEnabled() {
		out.AuditLog = dc.AuditLog()
		out.AuditTruncated = dc.AuditTruncated()
	}
	for i := range out.Jobs {
		if end := vtime.MaxTime(out.Jobs[i].SimMakespan, out.Jobs[i].AnalyticsTime); end > out.Makespan {
			out.Makespan = end
		}
	}
	dc.FlushTenantGauges()
	dc.RecordUtilization(out.Makespan)
	machine.Fabric().RecordUtilization(out.Makespan)
	out.Metrics = reg.Snapshot()
	return out, nil
}

// runOneJob drives one admitted pipeline: its MPI world and namespaced
// bridges on the simulation side, its namespaced adaptor, contract and
// IPCA graph on the analytics side.
func runOneJob(cfg *MultiJobConfig, job JobSpec, dc *dask.Cluster, fabric *netsim.Fabric,
	rankNodes []netsim.NodeID, clientNode netsim.NodeID, ctrl *chaos.Controller,
	killed bool, killStep int) (*JobResult, error) {
	m := cfg.Model
	// Per-job view of the single-job Config: newDeisaRankSystem and the
	// pipeline cost model read exactly these fields.
	jcfg := Config{
		System:     DEISA3,
		Ranks:      job.Ranks,
		Workers:    cfg.Workers,
		Timesteps:  job.Timesteps,
		BlockBytes: job.BlockBytes,
		Seed:       cfg.Seed,
		RealLocalX: cfg.RealLocalX,
		RealLocalY: cfg.RealLocalY,
		Model:      m,
	}

	va := &core.VirtualArray{
		Name:      ArrayName,
		Namespace: job.Name,
		Size:      []int{job.Timesteps, cfg.RealLocalX, cfg.RealLocalY * job.Ranks},
		Subsize:   []int{1, cfg.RealLocalX, cfg.RealLocalY},
		TimeDim:   0,
	}
	if err := va.Validate(); err != nil {
		return nil, err
	}
	realCells := cfg.RealLocalX * cfg.RealLocalY
	modelCells := job.BlockBytes / 8
	heatCfg := sim.Config{
		GlobalX:  cfg.RealLocalX,
		GlobalY:  cfg.RealLocalY * job.Ranks,
		ProcX:    1,
		ProcY:    job.Ranks,
		Alpha:    0.2,
		CellCost: float64(modelCells) * m.CellCost / float64(realCells),
	}
	if err := heatCfg.Validate(); err != nil {
		return nil, err
	}

	world := mpi.NewWorld(fabric, rankNodes)
	bridges := make([]*core.Bridge, job.Ranks)
	for r := 0; r < job.Ranks; r++ {
		bcfg := core.BridgeConfig{
			Rank:              r,
			Cluster:           dc,
			Node:              rankNodes[r],
			HeartbeatInterval: m.Heartbeat(DEISA3),
			Mode:              core.ModeExternal,
			ScatterBytes:      job.BlockBytes,
			MetaEntries:       job.Ranks,
			TieBreak:          cfg.TieBreak,
			Namespace:         job.Name,
		}
		if ctrl != nil {
			bcfg.Interceptor = ctrl
		}
		bridges[r] = core.NewBridge(bcfg)
	}

	simEnds := make([]float64, job.Ranks)
	errs := make(chan error, job.Ranks+1)

	var analytics analyticsResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a, aerr := runJobAnalytics(cfg, jcfg, job, dc, clientNode, va, killed, killStep)
		if aerr != nil {
			errs <- fmt.Errorf("analytics: %w", aerr)
			return
		}
		analytics = a
	}()

	init := sim.HotSpotInitial(heatCfg)
	world.Run(0, func(c *mpi.Comm) {
		r := c.Rank()
		h, herr := sim.New(heatCfg, c, init)
		if herr != nil {
			errs <- herr
			return
		}
		sys, serr := newDeisaRankSystem(jcfg, r, bridges[r])
		if serr != nil {
			errs <- serr
			return
		}
		end, berr := sys.Event("init", 0)
		if berr != nil {
			errs <- fmt.Errorf("rank %d init: %w", r, berr)
			return
		}
		c.Clock().Sync(end)
		for step := 0; step < job.Timesteps; step++ {
			h.Step()
			t1 := c.Now()
			sys.Expose("step", step)
			end, perr := sys.Share("temp", h.Local(), t1)
			if perr != nil {
				errs <- fmt.Errorf("rank %d step %d: %w", r, step, perr)
				return
			}
			c.Clock().Sync(end)
		}
		if _, ferr := sys.Finalize(c.Now()); ferr != nil {
			errs <- ferr
			return
		}
		simEnds[r] = c.Now()
	})
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	res := &JobResult{
		Name:              job.Name,
		Weight:            job.Weight,
		Killed:            killed,
		KilledStep:        killStep,
		Components:        analytics.components,
		SingularValues:    analytics.singularValues,
		ExplainedVariance: analytics.explainedVariance,
		SimMakespan:       vtime.MaxTime(simEnds...),
		AnalyticsTime:     analytics.duration,
	}
	for _, b := range bridges {
		sent, skipped := b.Stats()
		res.BlocksSent += sent
		res.BlocksSkipped += skipped
	}
	res.Fingerprint = res.fingerprint()
	return res, nil
}

// runJobAnalytics is the namespaced Listing-2 flow for one tenant:
// descriptors, (possibly truncated) selection, contract, one graph.
// A job killed at step 0 consumes nothing: it publishes an empty
// contract — unblocking the bridges, which then filter every block —
// and returns empty results.
func runJobAnalytics(cfg *MultiJobConfig, jcfg Config, job JobSpec, dc *dask.Cluster,
	clientNode netsim.NodeID, va *core.VirtualArray, killed bool, killStep int) (analyticsResult, error) {
	d := core.ConnectNamespaced(dc, clientNode, job.Name)
	set, err := d.GetDeisaArrays()
	if err != nil {
		return analyticsResult{}, err
	}
	steps := job.Timesteps
	if killed && killStep < steps {
		steps = killStep
	}
	if steps == 0 {
		// ValidateContract rejects empty selections, so publish the empty
		// contract directly; the job yields no analytics values.
		d.Client().Variable(core.NamespacedVariable(job.Name, core.ContractVariable)).Set(core.NewContract())
		return analyticsResult{duration: d.Client().Now()}, nil
	}
	da, err := set.Get(ArrayName)
	if err != nil {
		return analyticsResult{}, err
	}
	if steps < job.Timesteps {
		da.Select(
			array.Range{Start: 0, Stop: steps},
			array.Range{Start: 0, Stop: cfg.RealLocalX},
			array.Range{Start: 0, Stop: job.Ranks * cfg.RealLocalY},
		)
	} else {
		da.SelectAll()
	}
	if _, err := set.ValidateContract(); err != nil {
		return analyticsResult{}, err
	}

	pipe := newNamespacedPipeline(jcfg, job.Name)
	g := taskgraph.New()
	var prev taskgraph.Key
	for t := 0; t < steps; t++ {
		sketches := make([]taskgraph.Key, 0, job.Ranks)
		for b := 0; b < job.Ranks; b++ {
			blockKey := va.BlockKey([]int{t, 0, b})
			sketches = append(sketches,
				pipe.addFoldSketch(g, fmt.Sprintf("t%03d-b%04d", t, b), blockKey))
		}
		prev = pipe.addFit(g, taskgraph.Key(fmt.Sprintf("ipca-state-%03d", t)), prev, sketches)
	}
	targets := pipe.addExtract(g, "ipca", prev)
	futs, err := d.Client().Submit(g, targets)
	if err != nil {
		return analyticsResult{}, err
	}
	vals, err := d.Client().Gather(futs)
	if err != nil {
		return analyticsResult{}, err
	}
	out := extractResults(vals)
	out.duration = d.Client().Now()
	return out, nil
}
