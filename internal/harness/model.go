// Package harness runs the paper's evaluation workflows end to end and
// reproduces its tables and figures. A Run executes the real coupled
// workflow — Heat2D ranks on the MPI substrate publishing blocks through
// deisa bridges (or writing HDF5-like files for the post hoc baseline),
// and the analytics computing a real incremental PCA on the received
// data — while every cost-bearing operation is priced by the calibrated
// platform model, so virtual times land at the paper's scale even though
// the arrays are kept small.
//
// Five systems are available, matching §3.3:
//
//	DASK (post hoc)  — simulation writes chunked files to the shared PFS;
//	                   plain Dask analytics read them back. Old or new
//	                   IPCA drivers.
//	DEISA1           — the HiPC'21 baseline: plain scatter, per-timestep
//	                   metadata, R distributed queues, 5 s heartbeats,
//	                   old IPCA.
//	DEISA2           — this paper with a 60 s heartbeat interval.
//	DEISA3           — this paper with heartbeats disabled (the full
//	                   version), new multidimensional IPCA.
package harness

import (
	"math"

	"deisago/internal/dask"
	"deisago/internal/netsim"
	"deisago/internal/pfs"
)

// Model is the calibrated platform cost model (the counterpart of the
// Irene/TGCC Skylake platform in §3).
type Model struct {
	Net  netsim.Config
	PFS  pfs.Config
	Dask dask.Config

	// MachineNodes is the machine size allocations are drawn from.
	MachineNodes int
	// CoresPerNode matches Irene's 2×24-core Skylake nodes.
	CoresPerNode int
	// RanksPerNode and WorkersPerNode follow the paper's layout (two
	// processes per node).
	RanksPerNode, WorkersPerNode int

	// CellCost is the modelled compute time per grid cell per iteration
	// (calibrated so a 128 MiB block integrates in ≈1.2 s, the paper's
	// flat "Simulation" curve).
	CellCost float64
	// FeaturesModel is the modelled feature (X) extent of the analytics
	// matrices; the modelled per-block sample count follows from the
	// block size.
	FeaturesModel int
	// FlopTime prices analytics floating-point work (Python-kernel
	// effective rate).
	FlopTime float64
	// FoldCostPerByte prices the centering/stacking pass over a block.
	FoldCostPerByte float64
	// MetaEntryCost prices one metadata entry processed by the scheduler
	// (drives the DEISA1 per-timestep metadata overload).
	MetaEntryCost float64
	// NComponents is the extracted component count (paper: 2).
	NComponents int

	// HeartbeatDEISA1/2 are the bridge heartbeat intervals of the
	// baseline systems; DEISA3 uses +Inf.
	HeartbeatDEISA1 float64
	HeartbeatDEISA2 float64
}

// DefaultModel returns the calibration used by EXPERIMENTS.md.
func DefaultModel() Model {
	return Model{
		Net: netsim.Config{
			NodesPerSwitch:  16,
			LinkBandwidth:   12.5e9, // EDR InfiniBand, 100 Gb/s
			PruneFactor:     2,
			HopLatency:      1e-6,
			SoftwareLatency: 3e-5,
			JitterFrac:      0.08,
			Seed:            1,
		},
		PFS: pfs.Config{
			OSTs:         8,
			OSTBandwidth: 75 << 20, // 600 MiB/s aggregate effective
			StripeSize:   1 << 20,
			MetaLatency:  2e-3,
		},
		Dask: dask.Config{
			SchedulerMsgCost:       1e-3,
			SchedulerTaskCost:      2e-4,
			ControlMsgBytes:        1 << 10,
			MetadataBytesPerKey:    256,
			WorkerTaskOverhead:     1e-4,
			SerializationBandwidth: 4e8, // includes (de)serialization overheads
		},
		MachineNodes:    512,
		CoresPerNode:    48,
		RanksPerNode:    2,
		WorkersPerNode:  2,
		CellCost:        7.2e-8,
		FeaturesModel:   4096,
		FlopTime:        1e-9,
		FoldCostPerByte: 1e-9,
		MetaEntryCost:   1e-3,
		NComponents:     2,
		HeartbeatDEISA1: 5,
		HeartbeatDEISA2: 60,
	}
}

// System identifies one of the compared workflow implementations.
type System int

// The five systems of §3.3.
const (
	PostHocOldIPCA System = iota
	PostHocNewIPCA
	DEISA1
	DEISA2
	DEISA3
)

// String names the system as in the paper's figures.
func (s System) String() string {
	switch s {
	case PostHocOldIPCA:
		return "PostHoc-IPCA"
	case PostHocNewIPCA:
		return "PostHoc-newIPCA"
	case DEISA1:
		return "DEISA1"
	case DEISA2:
		return "DEISA2"
	case DEISA3:
		return "DEISA3"
	}
	return "unknown"
}

// InTransit reports whether the system couples simulation and analytics
// through deisa (vs. the post hoc file-based baseline).
func (s System) InTransit() bool { return s >= DEISA1 }

// NewIPCA reports whether the system uses the multidimensional
// whole-graph IPCA of §3.2.
func (s System) NewIPCA() bool {
	return s == PostHocNewIPCA || s == DEISA2 || s == DEISA3
}

// Heartbeat returns the bridge heartbeat interval for a system under a
// model.
func (m Model) Heartbeat(s System) float64 {
	switch s {
	case DEISA1:
		return m.HeartbeatDEISA1
	case DEISA2:
		return m.HeartbeatDEISA2
	default:
		return math.Inf(1)
	}
}
