package harness

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"deisago/internal/chaos"
)

// tinyOptions is a sweep small enough for determinism tests to run the
// same sweep several times.
func tinyOptions(parallel int) Options {
	o := QuickOptions()
	o.Runs = 2
	o.Timesteps = 2
	o.WeakProcs = []int{2, 4}
	o.BlockBytes = 4 * MiB
	o.Parallel = parallel
	return o
}

// fingerprint serializes the parts of a Result the simulator guarantees
// are a pure function of its Config: the scheduler counters, the canonical
// (counter-only) metrics snapshot, bridge block statistics and the
// analytics values. Virtual timings are deliberately excluded — they are
// FCFS-tie sensitive with or without sweep parallelism (see the golden
// test's contract), so they are compared statistically, never bitwise.
func fingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "counters=%+v\n", r.Counters)
	b.Write(r.Metrics.CanonicalJSON())
	fmt.Fprintf(&b, "\nsent=%d skipped=%d\n", r.BlocksSent, r.BlocksSkipped)
	if r.Components != nil {
		fmt.Fprintf(&b, "shape=%v data=", r.Components.Shape())
		for _, v := range r.Components.Data() {
			fmt.Fprintf(&b, "%016x", math.Float64bits(v))
		}
		b.WriteString("\n")
	}
	for _, v := range r.SingularValues {
		fmt.Fprintf(&b, "%016x", math.Float64bits(v))
	}
	b.WriteString("/")
	for _, v := range r.ExplainedVariance {
		fmt.Fprintf(&b, "%016x", math.Float64bits(v))
	}
	return b.String()
}

// TestSweepParallelDeterminism asserts the tentpole's parallel-harness
// contract: every deterministic run output of a concurrent sweep is
// byte-identical to the serial sweep, for any pool width, and every slot
// of the (system, point, run) table is filled in its pre-assigned place.
func TestSweepParallelDeterminism(t *testing.T) {
	pts := [][2]int{{2, 1}, {4, 2}}
	systems := []System{PostHocNewIPCA, DEISA1, DEISA3}
	block := func(int) int64 { return 4 * MiB }
	serial, err := collect(tinyOptions(1), systems, pts, block)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		concurrent, err := collect(tinyOptions(par), systems, pts, block)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range systems {
			for pi := range pts {
				for run := 0; run < 2; run++ {
					a, b := serial[sys][pi][run], concurrent[sys][pi][run]
					if a == nil || b == nil {
						t.Fatalf("parallel=%d: missing slot %s/%v/run%d", par, sys, pts[pi], run)
					}
					if b.Config != a.Config {
						t.Fatalf("parallel=%d: slot %s/%v/run%d holds config %+v, want %+v",
							par, sys, pts[pi], run, b.Config, a.Config)
					}
					if got, want := fingerprint(b), fingerprint(a); got != want {
						t.Fatalf("parallel=%d: %s/%v/run%d diverged from serial:\n%s\nvs\n%s",
							par, sys, pts[pi], run, got, want)
					}
				}
			}
		}
	}
}

// TestChaosParallelDeterminism asserts the chaos twin runs agree with
// serial execution on everything the chaos contract pins down: the fault
// log (a pure function of plan and scenario), the analytics values, and
// the verdict.
func TestChaosParallelDeterminism(t *testing.T) {
	o := tinyOptions(1)
	cfg := ChaosScenarioConfig(o, 4, 4)
	plan, err := chaos.ParsePlan(chaosGoldenPlan)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunChaosParallel(cfg, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := RunChaosParallel(cfg, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := concurrent.Format(), serial.Format(); got != want {
		t.Fatalf("chaos report diverged under parallel execution:\n%s\nvs\n%s", got, want)
	}
	if got, want := fingerprint(concurrent.Faulty), fingerprint(serial.Faulty); got != want {
		t.Fatalf("faulty-run outputs diverged under parallel execution:\n%s\nvs\n%s", got, want)
	}
	if !serial.Identical || !concurrent.Identical {
		t.Fatalf("chaos analytics diverged from fault-free run (serial=%v parallel=%v)",
			serial.Identical, concurrent.Identical)
	}
}

// TestRunPool exercises the pool helper directly: full coverage of the
// index space, bounded concurrency, and lowest-index error selection.
func TestRunPool(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int64
	var live, peak atomic.Int64
	err := runPool(4, n, func(i int) error {
		cur := live.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		hits[i].Add(1)
		live.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("pool exceeded its width: peak %d", p)
	}

	errLow := errors.New("low")
	err = runPool(3, 10, func(i int) error {
		if i == 2 {
			return errLow
		}
		if i == 7 {
			return fmt.Errorf("high")
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("expected lowest-index error, got %v", err)
	}

	// Serial path short-circuits at the first error.
	ran := 0
	err = runPool(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errLow
		}
		return nil
	})
	if !errors.Is(err, errLow) || ran != 4 {
		t.Fatalf("serial pool: err=%v ran=%d", err, ran)
	}
}
