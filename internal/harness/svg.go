package harness

import (
	"fmt"
	"math"
	"strings"
)

// SVG rendering of experiment tables: grouped bar charts with error bars
// matching the paper's figure style, and the Figure 5 per-rank panels.
// Pure text generation — no graphics dependencies.

var svgPalette = []string{
	"#c44e52", // red    (post hoc / first bar)
	"#dd8452", // orange (post hoc new)
	"#8172b3", // violet (DEISA1)
	"#55a868", // green  (simulation)
	"#4c72b0", // blue   (DEISA3)
	"#937860",
}

// RenderSVG draws the table as a grouped bar chart with error bars.
func (t *Table) RenderSVG(width, height int) string {
	const (
		marginL = 70
		marginR = 20
		marginT = 40
		marginB = 70
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	maxY := 0.0
	for _, s := range t.Series {
		for i := range s.Mean {
			if v := s.Mean[i] + s.Std[i]; v > maxY {
				maxY = v
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.08

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="13" font-weight="bold">%s</text>`, marginL, escapeXML(t.Title))

	// Y axis with 5 gridlines.
	for i := 0; i <= 5; i++ {
		v := maxY * float64(i) / 5
		y := float64(marginT) + plotH*(1-float64(i)/5)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`,
			marginL-6, y+3, formatTick(v))
	}
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="11" transform="rotate(-90 14 %.1f)" text-anchor="middle">%s</text>`,
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, escapeXML(t.YLabel))

	// Grouped bars.
	groups := len(t.XTicks)
	bars := len(t.Series)
	if groups > 0 && bars > 0 {
		groupW := plotW / float64(groups)
		barW := groupW * 0.8 / float64(bars)
		for gi, tick := range t.XTicks {
			gx := float64(marginL) + groupW*float64(gi)
			for si, s := range t.Series {
				if gi >= len(s.Mean) {
					continue
				}
				v, sd := s.Mean[gi], s.Std[gi]
				h := plotH * v / maxY
				x := gx + groupW*0.1 + barW*float64(si)
				y := float64(marginT) + plotH - h
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
					x, y, barW*0.92, h, svgPalette[si%len(svgPalette)])
				if sd > 0 {
					cx := x + barW*0.46
					y1 := float64(marginT) + plotH - plotH*(v+sd)/maxY
					y2 := float64(marginT) + plotH - plotH*math.Max(v-sd, 0)/maxY
					fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="1"/>`,
						cx, y1, cx, y2)
				}
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
				gx+groupW/2, height-marginB+16, escapeXML(tick))
		}
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
		float64(marginL)+plotW/2, height-marginB+34, escapeXML(t.XLabel))

	// Legend.
	lx, ly := marginL, height-marginB+46
	for si, s := range t.Series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`,
			lx, ly, svgPalette[si%len(svgPalette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`, lx+14, ly+9, escapeXML(s.Label))
		lx += 16 + 7*len(s.Label)
	}
	b.WriteString("</svg>")
	return b.String()
}

// RenderFig5SVG draws the Figure 5 panel grid: per-rank mean
// communication time (line) with a ±std band, one panel per run.
func RenderFig5SVG(runs []Fig5Run, width, height int) string {
	cols := 3
	rows := (len(runs) + cols - 1) / cols
	if rows == 0 {
		rows = 1
	}
	panelW := width / cols
	panelH := height / rows

	maxY := 0.0
	for _, r := range runs {
		for i := range r.Mean {
			if v := r.Mean[i] + r.Std[i]; v > maxY {
				maxY = v
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.05

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	for i, r := range runs {
		px := (i % cols) * panelW
		py := (i / cols) * panelH
		b.WriteString(renderFig5Panel(r, px, py, panelW, panelH, maxY))
	}
	b.WriteString("</svg>")
	return b.String()
}

func renderFig5Panel(r Fig5Run, px, py, w, h int, maxY float64) string {
	const (
		mL = 44
		mR = 10
		mT = 26
		mB = 26
	)
	plotW := float64(w - mL - mR)
	plotH := float64(h - mT - mB)
	n := len(r.Mean)
	if n == 0 {
		return ""
	}
	xAt := func(i int) float64 { return float64(px+mL) + plotW*float64(i)/float64(n-1) }
	yAt := func(v float64) float64 { return float64(py+mT) + plotH*(1-math.Min(v, maxY)/maxY) }

	var b strings.Builder
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`,
		px+mL, py+mT, w-mL-mR, h-mT-mB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-weight="bold">%s run %d</text>`,
		px+mL, py+16, r.System, r.Run+1)
	// Std band (the paper's red band).
	var band strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&band, "%.1f,%.1f ", xAt(i), yAt(r.Mean[i]+r.Std[i]))
	}
	for i := n - 1; i >= 0; i-- {
		fmt.Fprintf(&band, "%.1f,%.1f ", xAt(i), yAt(math.Max(r.Mean[i]-r.Std[i], 0)))
	}
	fmt.Fprintf(&b, `<polygon points="%s" fill="#c44e52" fill-opacity="0.35" stroke="none"/>`,
		strings.TrimSpace(band.String()))
	// Mean line.
	var line strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&line, "%.1f,%.1f ", xAt(i), yAt(r.Mean[i]))
	}
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="black" stroke-width="1"/>`,
		strings.TrimSpace(line.String()))
	// Axis hints.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" text-anchor="end">%s</text>`,
		px+mL-4, py+mT+8, formatTick(maxY))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" text-anchor="end">0</text>`,
		px+mL-4, py+h-mB+3)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" text-anchor="middle">ranks</text>`,
		px+mL+int(plotW/2), py+h-8)
	return b.String()
}

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
