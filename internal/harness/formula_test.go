package harness

import (
	"fmt"
	"math"
	"testing"

	"deisago/internal/core"
	"deisago/internal/metrics"
)

// This file checks the paper's §2.1 message-count claim as exact formulas
// over a (T, R, heartbeat) matrix, read from the metrics registry rather
// than hand-wired counter fields: DEISA1 costs 2·T·R coordination
// messages plus heartbeats plus T·R metadata refreshes at the scheduler,
// while the external-task design exchanges exactly 1+R contract-variable
// operations, independent of T.

// msgKind reads the scheduler's per-kind message counter from a result.
func msgKind(t *testing.T, res *Result, kind string) int64 {
	t.Helper()
	if res.Metrics == nil {
		t.Fatal("run produced no metrics snapshot")
	}
	return res.Metrics.Counter(metrics.ID("scheduler", "messages", metrics.L("kind", kind)))
}

// varOps reads the scheduler's per-variable operation counter.
func varOps(res *Result, name, op string) int64 {
	return res.Metrics.Counter(metrics.ID("scheduler", "variable_ops",
		metrics.L("name", name), metrics.L("op", op)))
}

func formulaConfig(sys System, T, R, W int, hb float64) Config {
	return Config{
		System:            sys,
		Ranks:             R,
		Workers:           W,
		Timesteps:         T,
		BlockBytes:        1 << 20,
		Seed:              7,
		HeartbeatOverride: hb,
	}
}

func TestFormulaMatrix(t *testing.T) {
	cases := []struct{ T, R, W int }{
		{2, 2, 2},
		{3, 4, 2},
		{4, 8, 4},
	}
	// A 5 ms virtual heartbeat guarantees beats fire even in the shortest
	// of these runs (makespans start around 40 ms) without flooding the
	// scheduler; +Inf disables them (the DEISA3 default).
	for _, hb := range []float64{5e-3, math.Inf(1)} {
		for _, c := range cases {
			name := fmt.Sprintf("T%d-R%d-hb%g", c.T, c.R, hb)
			t.Run("DEISA1/"+name, func(t *testing.T) {
				res, err := Run(formulaConfig(DEISA1, c.T, c.R, c.W, hb))
				if err != nil {
					t.Fatal(err)
				}
				T, R := int64(c.T), int64(c.R)
				put := msgKind(t, res, "queue-put")
				get := msgKind(t, res, "queue-get")
				meta := msgKind(t, res, "metadata")
				beats := msgKind(t, res, "heartbeat")
				if put != T*R || get != T*R {
					t.Fatalf("queue messages put=%d get=%d, want %d each", put, get, T*R)
				}
				if meta != T*R {
					t.Fatalf("metadata refreshes = %d, want T*R = %d", meta, T*R)
				}
				// The §2.1 formula: per-step coordination costs 2·T·R
				// messages plus however many heartbeats the run emitted.
				if coord := put + get + beats; coord != 2*T*R+beats {
					t.Fatalf("coordination msgs = %d, want 2*T*R+heartbeats = %d", coord, 2*T*R+beats)
				}
				if math.IsInf(hb, 1) {
					if beats != 0 {
						t.Fatalf("infinite interval sent %d heartbeats", beats)
					}
				} else if beats == 0 {
					t.Fatal("finite interval sent no heartbeats")
				}
				// The registry and the legacy façade must agree.
				if res.Counters.QueueOps != put+get {
					t.Fatalf("façade QueueOps=%d, registry=%d", res.Counters.QueueOps, put+get)
				}
				if res.Counters.MetadataMsgs != meta || res.Counters.Heartbeats != beats {
					t.Fatalf("façade meta=%d hb=%d, registry meta=%d hb=%d",
						res.Counters.MetadataMsgs, res.Counters.Heartbeats, meta, beats)
				}
				// Every message the scheduler handled carries a kind label;
				// the per-kind counters must sum to the grand total.
				if sum := res.Metrics.SumCounters("scheduler/messages{"); sum != res.Counters.TotalSchedulerMsg {
					t.Fatalf("kind counters sum to %d, total_scheduler_msgs=%d",
						sum, res.Counters.TotalSchedulerMsg)
				}
				if ext := res.Counters.ExternalCreated; ext != 0 {
					t.Fatalf("DEISA1 created %d external tasks", ext)
				}
			})
			t.Run("DEISA3/"+name, func(t *testing.T) {
				res, err := Run(formulaConfig(DEISA3, c.T, c.R, c.W, hb))
				if err != nil {
					t.Fatal(err)
				}
				T, R := int64(c.T), int64(c.R)
				// The headline claim: the contract variable is written once
				// by the adaptor and read once per bridge — 1+R operations,
				// independent of T.
				set := varOps(res, core.ContractVariable, "set")
				get := varOps(res, core.ContractVariable, "get")
				if set != 1 || get != R {
					t.Fatalf("contract ops set=%d get=%d, want 1 and R=%d", set, get, R)
				}
				if total := set + get; total != 1+R {
					t.Fatalf("contract messages = %d, want 1+R = %d", total, 1+R)
				}
				if put, qget := msgKind(t, res, "queue-put"), msgKind(t, res, "queue-get"); put != 0 || qget != 0 {
					t.Fatalf("DEISA3 used queues: put=%d get=%d", put, qget)
				}
				if meta := msgKind(t, res, "metadata"); meta != 0 {
					t.Fatalf("DEISA3 sent %d metadata refreshes", meta)
				}
				if ext := res.Counters.ExternalCreated; ext != T*R {
					t.Fatalf("external tasks = %d, want T*R = %d", ext, T*R)
				}
				if ud := msgKind(t, res, "update-data"); ud != T*R {
					t.Fatalf("update-data msgs = %d, want T*R = %d", ud, T*R)
				}
				if g := res.Counters.GraphsSubmitted; g != 1 {
					t.Fatalf("graphs = %d, want exactly 1 (ahead-of-time submission)", g)
				}
				beats := msgKind(t, res, "heartbeat")
				if math.IsInf(hb, 1) && beats != 0 {
					t.Fatalf("infinite interval sent %d heartbeats", beats)
				}
				if sum := res.Metrics.SumCounters("scheduler/messages{"); sum != res.Counters.TotalSchedulerMsg {
					t.Fatalf("kind counters sum to %d, total_scheduler_msgs=%d",
						sum, res.Counters.TotalSchedulerMsg)
				}
			})
		}
	}
}
