package harness

import (
	"strings"
	"testing"

	"deisago/internal/chaos"
	"deisago/internal/metrics"
)

// Conservation-law tests: independent counters maintained by different
// components (fabric links, workers, bridges, scheduler, PFS OSTs) must
// agree about the same physical quantity. check.sh runs this package
// under -race with DEISA_AUDIT=1, so the laws are checked against racy
// interleavings and the scheduler invariant auditor simultaneously.

// sumIDs sums every counter whose ID starts with prefix and contains
// substr (SumCounters alone cannot split e.g. egress from ingress links).
func sumIDs(snap *metrics.Snapshot, prefix, substr string) int64 {
	var total int64
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.ID, prefix) && strings.Contains(c.ID, substr) {
			total += c.Value
		}
	}
	return total
}

// TestConservationFabricBytes: every remote transfer crosses exactly one
// egress and one ingress NIC link, so the per-link byte counters must
// each sum to the fabric's remote-byte total, and cross-leaf traffic
// must be symmetric across the up and down spine links.
func TestConservationFabricBytes(t *testing.T) {
	res, err := Run(smallConfig(DEISA3))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	eg := sumIDs(m, "link/bytes{link=node", "-eg}")
	in := sumIDs(m, "link/bytes{link=node", "-in}")
	remote := m.Counter(metrics.ID("fabric", "bytes", metrics.L("scope", "remote")))
	if eg != remote || in != remote {
		t.Fatalf("link bytes egress=%d ingress=%d, fabric remote=%d", eg, in, remote)
	}
	if remote <= 0 {
		t.Fatal("no remote traffic recorded")
	}
	up := sumIDs(m, "link/bytes{link=leaf", "-up}")
	down := sumIDs(m, "link/bytes{link=leaf", "-down}")
	if up != down {
		t.Fatalf("spine traffic asymmetric: up=%d down=%d", up, down)
	}
	// The harness-level total is the sum over both scopes.
	local := m.Counter(metrics.ID("fabric", "bytes", metrics.L("scope", "local")))
	if res.FabricBytes != remote+local {
		t.Fatalf("Result.FabricBytes=%d, scopes sum to %d", res.FabricBytes, remote+local)
	}
	// Scattered blocks ride the fabric, so remote traffic bounds them.
	if shipped := m.SumCounters("bridge/shipped_bytes{"); remote < shipped {
		t.Fatalf("fabric carried %d bytes but bridges shipped %d", remote, shipped)
	}
}

// TestConservationPFSBytes: striping must conserve bytes — what the
// clients read and wrote equals what the OSTs transferred.
func TestConservationPFSBytes(t *testing.T) {
	res, err := Run(smallConfig(PostHocNewIPCA))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	osts := m.SumCounters("pfs/ost_bytes{")
	read := m.Counter(metrics.ID("pfs", "bytes", metrics.L("op", "read")))
	written := m.Counter(metrics.ID("pfs", "bytes", metrics.L("op", "write")))
	if osts != read+written {
		t.Fatalf("OSTs moved %d bytes, clients read %d + wrote %d = %d",
			osts, read, written, read+written)
	}
	if written <= 0 || read <= 0 {
		t.Fatalf("post hoc run did no I/O: read=%d written=%d", read, written)
	}
}

// TestConservationPublishes: every successful bridge publish lands one
// block in worker memory, flipping exactly one task external→memory at
// the scheduler, and every shipped byte is a byte some worker received.
func TestConservationPublishes(t *testing.T) {
	res, err := Run(smallConfig(DEISA3))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	published := m.SumCounters("bridge/publish_ok{")
	toMemory := m.Counter(metrics.ID("scheduler", "transitions",
		metrics.L("from", "external"), metrics.L("to", "memory")))
	if published != toMemory {
		t.Fatalf("bridges published %d blocks, scheduler saw %d external→memory transitions",
			published, toMemory)
	}
	if published != int64(res.Config.Ranks*res.Config.Timesteps) {
		t.Fatalf("published %d, want R*T = %d", published, res.Config.Ranks*res.Config.Timesteps)
	}
	shipped := m.SumCounters("bridge/shipped_bytes{")
	received := m.SumCounters("worker/scatter_bytes_received{")
	if shipped != received {
		t.Fatalf("bridges shipped %d bytes, workers received %d", shipped, received)
	}
}

// TestConservationPublishesUnderKills: the external→memory law must
// survive worker kills — lost blocks are moved back memory→external by
// the recovery path and republished, so every publish_ok still pairs
// with exactly one external→memory transition. (The byte-level
// shipped==received law is deliberately NOT asserted here: a scatter
// interrupted by a kill can count received bytes for a block whose
// publish ultimately failed.)
func TestConservationPublishesUnderKills(t *testing.T) {
	plan, err := chaos.ParsePlan("kill:1@1/1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(DEISA3)
	cfg.ChaosPlan = plan
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	published := m.SumCounters("bridge/publish_ok{")
	toMemory := m.Counter(metrics.ID("scheduler", "transitions",
		metrics.L("from", "external"), metrics.L("to", "memory")))
	if published != toMemory {
		t.Fatalf("under kills: published %d, external→memory transitions %d", published, toMemory)
	}
	backOut := m.Counter(metrics.ID("scheduler", "transitions",
		metrics.L("from", "memory"), metrics.L("to", "external")))
	if backOut <= 0 {
		t.Fatal("kill did not push any block back to external state")
	}
	if m.SumCounters("bridge/republished{") != res.Republished || res.Republished <= 0 {
		t.Fatalf("republished counter mismatch: registry %d, result %d",
			m.SumCounters("bridge/republished{"), res.Republished)
	}
}
