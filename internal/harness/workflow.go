package harness

import (
	"fmt"
	"math"
	"sync"

	"deisago/internal/array"

	"deisago/internal/chaos"
	"deisago/internal/cluster"
	"deisago/internal/core"
	"deisago/internal/dask"
	"deisago/internal/h5"
	"deisago/internal/metrics"
	"deisago/internal/mpi"
	"deisago/internal/ndarray"
	"deisago/internal/pfs"
	"deisago/internal/sim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// ArrayName is the deisa virtual array published by the Heat2D workflow.
const ArrayName = "G_temp"

// Config describes one experiment run.
type Config struct {
	System    System
	Ranks     int
	Workers   int
	Timesteps int
	// BlockBytes is the modelled per-rank data size per timestep.
	BlockBytes int64
	// Seed controls the node allocation and link jitter (a "run" in the
	// paper's sense: different submissions may get different
	// allocations).
	Seed int64
	// RealLocalX/Y size the actual in-memory block; defaults 16×8.
	RealLocalX, RealLocalY int
	Model                  Model

	// HeartbeatOverride, when positive, replaces the system's default
	// bridge heartbeat interval (ablations).
	HeartbeatOverride float64
	// ScatteredPlacement disables the time-invariant worker preselection
	// and spreads a block's timeline across workers (placement ablation).
	ScatteredPlacement bool
	// SelectFraction, in (0,1), makes the analytics contract select only
	// that fraction of the spatial domain (contract ablation); 0 or 1
	// selects everything. In-transit systems only.
	SelectFraction float64
	// FuseGraphs applies taskgraph.Fuse to the analytics graph before
	// submission (dask.optimization.fuse; new-IPCA systems only).
	FuseGraphs bool
	// EnableTrace records task-execution spans (Result.Trace).
	EnableTrace bool
	// WorkerMemoryLimit, when positive, caps each Dask worker's managed
	// memory: blocks beyond the limit spill to the parallel file system
	// (LRU, virtual-time I/O costs) and producers scattering into a
	// worker above its high watermark block in virtual time. 0 keeps
	// the historical unlimited workers.
	WorkerMemoryLimit int64
	// ChaosPlan, when non-nil, runs the scenario under deterministic
	// fault injection: the scheduler invariant auditor is enabled, the
	// plan's link faults are installed on the fabric, a chaos controller
	// intercepts every bridge publish, and blocks lost to worker kills
	// are republished once the simulation loop finishes. External-mode
	// (DEISA2/3) in-transit systems only.
	ChaosPlan *chaos.Plan
	// TieBreak, when non-nil, redirects every benign scheduling tie in
	// the cluster and the bridges — ready-pop order, worker choice,
	// spill victim, failover target — so the schedule-space explorer
	// (package simtest) can permute legal schedules. nil keeps the
	// production rules.
	TieBreak dask.TieBreaker
	// EnableAudit switches the scheduler invariant auditor on even for
	// fault-free runs (ChaosPlan enables it regardless) and exposes the
	// transition log on the Result for offline replay.
	EnableAudit bool
}

func (c *Config) defaults() {
	if c.RealLocalX == 0 {
		c.RealLocalX = 16
	}
	if c.RealLocalY == 0 {
		c.RealLocalY = 8
	}
	if c.Timesteps == 0 {
		c.Timesteps = 10
	}
	if c.Model.CoresPerNode == 0 {
		c.Model = DefaultModel()
	}
}

// Result holds every measurement of one run.
type Result struct {
	Config Config

	// SimStepMean is the per-iteration simulation (compute + halo) time,
	// averaged over ranks and iterations.
	SimStepMean float64
	// CommMean/CommStd aggregate the per-iteration coupling cost: the
	// scatter time for in-transit systems, the file write time post hoc.
	CommMean, CommStd float64
	// PerRankCommMean/Std are per-rank statistics over iterations
	// (Figure 5).
	PerRankCommMean, PerRankCommStd []float64
	// SimMakespan is the simulation-side end time (max over ranks).
	SimMakespan float64
	// AnalyticsTime is the analytics-side duration, including waiting
	// for data (in transit) or reading from storage (post hoc).
	AnalyticsTime float64

	Counters dask.Snapshot
	// Metrics is the run's full observability snapshot: every counter,
	// gauge series and histogram the instrumented components recorded
	// (scheduler, workers, bridges, fabric links, PFS). The counter
	// subset is deterministic for a fixed Config (see metrics package
	// doc); gauge/histogram values carry virtual timestamps and may
	// vary across runs of the same seed.
	Metrics *metrics.Snapshot
	// Trace holds task-execution spans when Config.EnableTrace is set.
	Trace []dask.TraceEvent
	// ChaosLog lists the faults executed when Config.ChaosPlan is set;
	// it is a pure function of the plan and scenario (no timing), so the
	// same seed yields an identical log on every run.
	ChaosLog []chaos.LogEntry
	// PublishRetries/Republished aggregate the bridges' fault recovery:
	// publish attempts retried after drops or dead targets, and blocks
	// re-sent after their worker died.
	PublishRetries, Republished int64
	// FabricBytes is the total traffic that crossed the interconnect.
	FabricBytes int64
	// BlocksSent/BlocksSkipped aggregate bridge-side contract filtering.
	BlocksSent, BlocksSkipped int64
	// AuditLog is the scheduler's transition log when the invariant
	// auditor ran (Config.EnableAudit or ChaosPlan); AuditTruncated
	// counts older entries the bounded log discarded.
	AuditLog       []dask.Transition
	AuditTruncated int64

	// Real analytics outputs, for cross-system correctness checks.
	Components        *ndarray.Array
	SingularValues    []float64
	ExplainedVariance []float64

	SimNodes, AnalyticsNodes int
}

// blockMiB returns the modelled block size in MiB.
func (r *Result) blockMiB() float64 { return float64(r.Config.BlockBytes) / (1 << 20) }

// SimBandwidthMiBps is the per-process coupling bandwidth (Figure 3a).
func (r *Result) SimBandwidthMiBps() float64 {
	if r.CommMean <= 0 {
		return 0
	}
	return r.blockMiB() / r.CommMean
}

// AnalyticsBandwidthMiBps is total data over analytics time (Figure 3b).
func (r *Result) AnalyticsBandwidthMiBps() float64 {
	if r.AnalyticsTime <= 0 {
		return 0
	}
	total := r.blockMiB() * float64(r.Config.Ranks*r.Config.Timesteps)
	return total / r.AnalyticsTime
}

// SimCommCostCoreHours is the core·hour cost of the coupling (write or
// scatter) over the whole run on the simulation nodes (Figure 4a).
func (r *Result) SimCommCostCoreHours() float64 {
	return r.CommMean * float64(r.Config.Timesteps) *
		float64(r.SimNodes*r.Config.Model.CoresPerNode) / 3600
}

// SimComputeCostCoreHours is the pure-simulation cost over the run.
func (r *Result) SimComputeCostCoreHours() float64 {
	return r.SimStepMean * float64(r.Config.Timesteps) *
		float64(r.SimNodes*r.Config.Model.CoresPerNode) / 3600
}

// AnalyticsCostCoreHours is the analytics cost over the run (Figure 4b).
func (r *Result) AnalyticsCostCoreHours() float64 {
	return r.AnalyticsTime * float64(r.AnalyticsNodes*r.Config.Model.CoresPerNode) / 3600
}

// Run executes one configuration end to end.
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.Ranks <= 0 || cfg.Workers <= 0 || cfg.Timesteps <= 0 || cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("harness: ranks, workers, timesteps and block size must be positive")
	}
	if cfg.System.InTransit() {
		return runInTransit(cfg)
	}
	return runPostHoc(cfg)
}

// env bundles the per-run platform objects.
type env struct {
	cfg     Config
	machine *cluster.Machine
	place   cluster.Placement
	layout  cluster.Layout
	va      *core.VirtualArray
	pipe    *pipeline
	heatCfg sim.Config
}

func setup(cfg Config) (*env, error) {
	m := cfg.Model
	layout := cluster.Layout{
		Workers:        cfg.Workers,
		WorkersPerNode: m.WorkersPerNode,
		Ranks:          cfg.Ranks,
		RanksPerNode:   m.RanksPerNode,
	}
	nodes := m.MachineNodes
	if need := layout.NodesNeeded(); nodes < need {
		nodes = need
	}
	net := m.Net
	net.Seed = cfg.Seed
	machine := cluster.NewMachine(net, nodes, m.CoresPerNode)
	alloc := machine.Allocate(layout.NodesNeeded(), cfg.Seed)
	place := alloc.Place(layout)

	va := &core.VirtualArray{
		Name:    ArrayName,
		Size:    []int{cfg.Timesteps, cfg.RealLocalX, cfg.RealLocalY * cfg.Ranks},
		Subsize: []int{1, cfg.RealLocalX, cfg.RealLocalY},
		TimeDim: 0,
	}
	if err := va.Validate(); err != nil {
		return nil, err
	}
	realCells := cfg.RealLocalX * cfg.RealLocalY
	modelCells := cfg.BlockBytes / 8
	heatCfg := sim.Config{
		GlobalX:  cfg.RealLocalX,
		GlobalY:  cfg.RealLocalY * cfg.Ranks,
		ProcX:    1,
		ProcY:    cfg.Ranks,
		Alpha:    0.2,
		CellCost: float64(modelCells) * m.CellCost / float64(realCells),
	}
	if err := heatCfg.Validate(); err != nil {
		return nil, err
	}
	return &env{
		cfg:     cfg,
		machine: machine,
		place:   place,
		layout:  layout,
		va:      va,
		pipe:    newPipeline(cfg),
		heatCfg: heatCfg,
	}, nil
}

func (e *env) daskConfig() dask.Config {
	d := e.cfg.Model.Dask
	d.MetadataEntryCost = e.cfg.Model.MetaEntryCost
	d.WorkerMemoryLimit = e.cfg.WorkerMemoryLimit
	d.TieBreak = e.cfg.TieBreak
	return d
}

func (e *env) simNodes() int {
	return (e.cfg.Ranks + e.cfg.Model.RanksPerNode - 1) / e.cfg.Model.RanksPerNode
}

func (e *env) analyticsNodes() int {
	return 2 + (e.cfg.Workers+e.cfg.Model.WorkersPerNode-1)/e.cfg.Model.WorkersPerNode
}

// aggregate fills the measurement part of a Result.
func aggregate(cfg Config, e *env, stepDur, commDur [][]float64, simEnds []float64) *Result {
	res := &Result{
		Config:         cfg,
		SimNodes:       e.simNodes(),
		AnalyticsNodes: e.analyticsNodes(),
	}
	var steps, comms []float64
	for r := 0; r < cfg.Ranks; r++ {
		steps = append(steps, stepDur[r]...)
		comms = append(comms, commDur[r]...)
		st := vtime.Summarize(commDur[r])
		res.PerRankCommMean = append(res.PerRankCommMean, st.Mean)
		res.PerRankCommStd = append(res.PerRankCommStd, st.Std)
	}
	res.SimStepMean = vtime.Summarize(steps).Mean
	cst := vtime.Summarize(comms)
	res.CommMean, res.CommStd = cst.Mean, cst.Std
	res.SimMakespan = vtime.MaxTime(simEnds...)
	return res
}

// runInTransit executes DEISA1/2/3.
func runInTransit(cfg Config) (*Result, error) {
	e, err := setup(cfg)
	if err != nil {
		return nil, err
	}
	m := cfg.Model
	reg := metrics.NewRegistry()
	e.machine.Fabric().UseMetrics(reg)
	world := mpi.NewWorld(e.machine.Fabric(), e.place.RankNodes)
	dcfg := e.daskConfig()
	dcfg.Metrics = reg
	dc := dask.NewCluster(e.machine.Fabric(), dcfg, e.place.SchedulerNode, e.place.WorkerNodes)
	defer dc.Close()
	if cfg.EnableTrace {
		dc.EnableTracing()
	}
	if cfg.EnableAudit {
		dc.EnableAudit()
	}

	mode := core.ModeExternal
	if cfg.System == DEISA1 {
		mode = core.ModeDEISA1
	}
	var ctrl *chaos.Controller
	if cfg.ChaosPlan != nil {
		if mode != core.ModeExternal {
			return nil, fmt.Errorf("harness: chaos injection needs an external-mode system, got %s", cfg.System)
		}
		dc.EnableAudit()
		ctrl, err = chaos.NewController(cfg.ChaosPlan, dc)
		if err != nil {
			return nil, err
		}
		ctrl.InstallLinkFaults(e.machine.Fabric())
	}
	hb := m.Heartbeat(cfg.System)
	if cfg.HeartbeatOverride > 0 {
		hb = cfg.HeartbeatOverride
	}
	var place func(va *core.VirtualArray, pos []int, numWorkers int) int
	if cfg.ScatteredPlacement {
		place = func(va *core.VirtualArray, pos []int, numWorkers int) int {
			// Spread each spatial block's timeline across workers.
			return (va.WorkerForBlock(pos, numWorkers) + pos[va.TimeDim]) % numWorkers
		}
	}
	bridges := make([]*core.Bridge, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		bcfg := core.BridgeConfig{
			Rank:              r,
			Cluster:           dc,
			Node:              e.place.RankNodes[r],
			HeartbeatInterval: hb,
			Mode:              mode,
			ScatterBytes:      cfg.BlockBytes,
			MetaEntries:       cfg.Ranks,
			PlaceWorker:       place,
			TieBreak:          cfg.TieBreak,
		}
		if ctrl != nil {
			bcfg.Interceptor = ctrl
		}
		bridges[r] = core.NewBridge(bcfg)
	}

	stepDur := newMatrix(cfg.Ranks, cfg.Timesteps)
	commDur := newMatrix(cfg.Ranks, cfg.Timesteps)
	simEnds := make([]float64, cfg.Ranks)
	errs := make(chan error, cfg.Ranks+1)

	var analytics analyticsResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var aerr error
		if cfg.System.NewIPCA() {
			analytics, aerr = runNewIPCAInTransit(e, dc)
		} else {
			analytics, aerr = runOldIPCADeisa1(e, dc)
		}
		if aerr != nil {
			errs <- fmt.Errorf("analytics: %w", aerr)
		}
	}()

	init := sim.HotSpotInitial(e.heatCfg)
	world.Run(0, func(c *mpi.Comm) {
		r := c.Rank()
		h, herr := sim.New(e.heatCfg, c, init)
		if herr != nil {
			errs <- herr
			return
		}
		// The rank talks only to PDI; the deisa plugin drives the bridge
		// (Listing 1).
		sys, serr := newDeisaRankSystem(cfg, r, bridges[r])
		if serr != nil {
			errs <- serr
			return
		}
		end, berr := sys.Event("init", 0)
		if berr != nil {
			errs <- fmt.Errorf("rank %d init: %w", r, berr)
			return
		}
		c.Clock().Sync(end)
		for step := 0; step < cfg.Timesteps; step++ {
			t0 := c.Now()
			h.Step()
			t1 := c.Now()
			stepDur[r][step] = t1 - t0
			sys.Expose("step", step)
			end, perr := sys.Share("temp", h.Local(), t1)
			if perr != nil {
				errs <- fmt.Errorf("rank %d step %d: %w", r, step, perr)
				return
			}
			c.Clock().Sync(end)
			commDur[r][step] = c.Now() - t1
		}
		if _, ferr := sys.Finalize(c.Now()); ferr != nil {
			errs <- ferr
			return
		}
		simEnds[r] = c.Now()
	})
	if ctrl != nil {
		// All kills have fired (they trigger at publish points, and the
		// rank loop is done). Republish blocks whose worker died after
		// the publish, until the scheduler reports nothing external —
		// otherwise the analytics would wait forever on lost data.
		if kerrs := ctrl.KillErrs(); len(kerrs) > 0 {
			return nil, kerrs[0]
		}
		now := vtime.MaxTime(simEnds...)
		for {
			n := 0
			for _, b := range bridges {
				k, rerr := b.RepublishLost(now)
				if rerr != nil {
					return nil, rerr
				}
				n += k
			}
			if n == 0 {
				break
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	res := aggregate(cfg, e, stepDur, commDur, simEnds)
	res.AnalyticsTime = analytics.duration
	res.Components = analytics.components
	res.SingularValues = analytics.singularValues
	res.ExplainedVariance = analytics.explainedVariance
	res.Counters = dc.Counters().Snapshot()
	res.Trace = dc.TraceEvents()
	_, res.FabricBytes = e.machine.Fabric().Transfers()
	for _, b := range bridges {
		sent, skipped := b.Stats()
		res.BlocksSent += sent
		res.BlocksSkipped += skipped
		retries, repub := b.RetryStats()
		res.PublishRetries += retries
		res.Republished += repub
	}
	if ctrl != nil {
		res.ChaosLog = ctrl.Log()
	}
	if dc.AuditEnabled() {
		res.AuditLog = dc.AuditLog()
		res.AuditTruncated = dc.AuditTruncated()
	}
	end := vtime.MaxTime(res.SimMakespan, res.AnalyticsTime)
	dc.RecordUtilization(end)
	e.machine.Fabric().RecordUtilization(end)
	res.Metrics = reg.Snapshot()
	return res, nil
}

// runPostHoc executes the DASK baseline: simulation writes chunked files
// to the shared PFS, then plain Dask analytics read them back.
func runPostHoc(cfg Config) (*Result, error) {
	e, err := setup(cfg)
	if err != nil {
		return nil, err
	}
	m := cfg.Model
	reg := metrics.NewRegistry()
	e.machine.Fabric().UseMetrics(reg)
	fs := pfs.New(m.PFS)
	fs.UseMetrics(reg)
	file, t0 := h5.Create(fs, "sim.h5", 0)
	ds, t0, err := file.CreateDataset(ArrayName, e.va.Size, e.va.Subsize, t0)
	if err != nil {
		return nil, err
	}
	realBlockBytes := int64(cfg.RealLocalX*cfg.RealLocalY) * 8
	scale := cfg.BlockBytes / realBlockBytes
	if scale < 1 {
		scale = 1
	}
	ds.SetSizeScale(scale)

	world := mpi.NewWorld(e.machine.Fabric(), e.place.RankNodes)
	stepDur := newMatrix(cfg.Ranks, cfg.Timesteps)
	writeDur := newMatrix(cfg.Ranks, cfg.Timesteps)
	simEnds := make([]float64, cfg.Ranks)
	errs := make(chan error, cfg.Ranks)

	init := sim.HotSpotInitial(e.heatCfg)
	world.Run(t0, func(c *mpi.Comm) {
		r := c.Rank()
		h, herr := sim.New(e.heatCfg, c, init)
		if herr != nil {
			errs <- herr
			return
		}
		// The rank talks only to PDI; the HDF5 plugin writes the chunks.
		sys, serr := newPostHocRankSystem(cfg, r, file, fs)
		if serr != nil {
			errs <- serr
			return
		}
		for step := 0; step < cfg.Timesteps; step++ {
			s0 := c.Now()
			h.Step()
			s1 := c.Now()
			stepDur[r][step] = s1 - s0
			sys.Expose("step", step)
			end, werr := sys.Share("temp", h.Local(), s1)
			if werr != nil {
				errs <- fmt.Errorf("rank %d write %d: %w", r, step, werr)
				return
			}
			c.Clock().Sync(end)
			writeDur[r][step] = end - s1
		}
		simEnds[r] = c.Now()
	})
	close(errs)
	for err := range errs {
		return nil, err
	}
	simEnd := vtime.MaxTime(simEnds...)
	// The write phase is over and the analytics client below gates its
	// first submission on Compute(simEnd), so every remaining PFS acquire
	// arrives at or after simEnd: compact the booking history up to it.
	fs.ReleaseBefore(simEnd)

	// Analytics phase: a fresh Dask deployment reading from the PFS.
	dcfg := e.daskConfig()
	dcfg.Metrics = reg
	dc := dask.NewCluster(e.machine.Fabric(), dcfg, e.place.SchedulerNode, e.place.WorkerNodes)
	defer dc.Close()
	if cfg.EnableTrace {
		dc.EnableTracing()
	}
	if cfg.EnableAudit {
		dc.EnableAudit()
	}
	client := dc.NewClient("analytics", e.place.ClientNode, math.Inf(1))
	client.Compute(simEnd) // the analytics job starts when the data is complete

	var analytics analyticsResult
	if cfg.System.NewIPCA() {
		analytics, err = runNewIPCAPostHoc(e, client, ds, simEnd)
	} else {
		analytics, err = runOldIPCAPostHoc(e, client, ds, simEnd)
	}
	if err != nil {
		return nil, err
	}

	res := aggregate(cfg, e, stepDur, writeDur, simEnds)
	res.Trace = dc.TraceEvents()
	_, res.FabricBytes = e.machine.Fabric().Transfers()
	res.AnalyticsTime = analytics.duration
	res.Components = analytics.components
	res.SingularValues = analytics.singularValues
	res.ExplainedVariance = analytics.explainedVariance
	res.Counters = dc.Counters().Snapshot()
	if dc.AuditEnabled() {
		res.AuditLog = dc.AuditLog()
		res.AuditTruncated = dc.AuditTruncated()
	}
	end := vtime.MaxTime(res.SimMakespan, simEnd+res.AnalyticsTime)
	dc.RecordUtilization(end)
	e.machine.Fabric().RecordUtilization(end)
	fs.RecordUtilization(end)
	res.Metrics = reg.Snapshot()
	return res, nil
}

func newMatrix(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}

// analyticsResult is what every analytics driver returns.
type analyticsResult struct {
	duration          float64
	components        *ndarray.Array
	singularValues    []float64
	explainedVariance []float64
}

func extractResults(vals []any) analyticsResult {
	return analyticsResult{
		components:        vals[0].(*ndarray.Array),
		singularValues:    vals[1].([]float64),
		explainedVariance: vals[2].([]float64),
	}
}

// runNewIPCAInTransit is the Listing-2 flow: descriptors, selection,
// contract, then one ahead-of-time graph over every external block.
func runNewIPCAInTransit(e *env, dc *dask.Cluster) (analyticsResult, error) {
	cfg := e.cfg
	d := core.Connect(dc, e.place.ClientNode)
	set, err := d.GetDeisaArrays()
	if err != nil {
		return analyticsResult{}, err
	}
	da, err := set.Get(ArrayName)
	if err != nil {
		return analyticsResult{}, err
	}
	blocks := cfg.Ranks
	if f := cfg.SelectFraction; f > 0 && f < 1 {
		blocks = int(f * float64(cfg.Ranks))
		if blocks < 1 {
			blocks = 1
		}
		da.Select(
			array.Range{Start: 0, Stop: cfg.Timesteps},
			array.Range{Start: 0, Stop: cfg.RealLocalX},
			array.Range{Start: 0, Stop: blocks * cfg.RealLocalY},
		)
	} else {
		da.SelectAll()
	}
	if _, err := set.ValidateContract(); err != nil {
		return analyticsResult{}, err
	}

	g := taskgraph.New()
	var prev taskgraph.Key
	for t := 0; t < cfg.Timesteps; t++ {
		sketches := make([]taskgraph.Key, 0, blocks)
		for b := 0; b < blocks; b++ {
			blockKey := e.va.BlockKey([]int{t, 0, b})
			sketches = append(sketches,
				e.pipe.addFoldSketch(g, fmt.Sprintf("t%03d-b%04d", t, b), blockKey))
		}
		prev = e.pipe.addFit(g, taskgraph.Key(fmt.Sprintf("ipca-state-%03d", t)), prev, sketches)
	}
	targets := e.pipe.addExtract(g, "ipca", prev)
	g = e.maybeFuse(g, targets)
	futs, err := d.Client().Submit(g, targets)
	if err != nil {
		return analyticsResult{}, err
	}
	vals, err := d.Client().Gather(futs)
	if err != nil {
		return analyticsResult{}, err
	}
	out := extractResults(vals)
	out.duration = d.Client().Now()
	return out, nil
}

// maybeFuse applies the fuse optimization when configured.
func (e *env) maybeFuse(g *taskgraph.Graph, targets []taskgraph.Key) *taskgraph.Graph {
	if !e.cfg.FuseGraphs {
		return g
	}
	keep := map[taskgraph.Key]bool{}
	for _, t := range targets {
		keep[t] = true
	}
	return taskgraph.Fuse(g, keep)
}

// runOldIPCADeisa1 is the DEISA1 analytics driver: per-timestep queue
// coordination and per-batch submissions of the old (non-graph-fused)
// IPCA — a statistics pass and a fit pass in separate graphs.
func runOldIPCADeisa1(e *env, dc *dask.Cluster) (analyticsResult, error) {
	cfg := e.cfg
	client := dc.NewClient("analytics", e.place.ClientNode, math.Inf(1))
	ad := core.NewDeisa1Adaptor(client, cfg.Ranks)
	if _, err := ad.GetDeisaArrays(); err != nil {
		return analyticsResult{}, err
	}
	var prev taskgraph.Key
	for t := 0; t < cfg.Timesteps; t++ {
		keys, err := ad.NextStepKeys()
		if err != nil {
			return analyticsResult{}, err
		}
		prev, err = oldIPCAStep(e, client, t, prev, func(g *taskgraph.Graph, pass string, b int) taskgraph.Key {
			return keys[b] // data already in worker memory
		})
		if err != nil {
			return analyticsResult{}, err
		}
	}
	return gatherExtract(e, client, prev)
}

// runNewIPCAPostHoc reads every chunk once inside a single graph.
func runNewIPCAPostHoc(e *env, client *dask.Client, ds *h5.Dataset, start float64) (analyticsResult, error) {
	cfg := e.cfg
	g := taskgraph.New()
	var prev taskgraph.Key
	for t := 0; t < cfg.Timesteps; t++ {
		sketches := make([]taskgraph.Key, 0, cfg.Ranks)
		for b := 0; b < cfg.Ranks; b++ {
			read := e.pipe.addRead(g, fmt.Sprintf("t%03d-b%04d", t, b), ds, t, b)
			sketches = append(sketches,
				e.pipe.addFoldSketch(g, fmt.Sprintf("t%03d-b%04d", t, b), read))
		}
		prev = e.pipe.addFit(g, taskgraph.Key(fmt.Sprintf("ipca-state-%03d", t)), prev, sketches)
	}
	targets := e.pipe.addExtract(g, "ipca", prev)
	g = e.maybeFuse(g, targets)
	futs, err := client.Submit(g, targets)
	if err != nil {
		return analyticsResult{}, err
	}
	vals, err := client.Gather(futs)
	if err != nil {
		return analyticsResult{}, err
	}
	out := extractResults(vals)
	out.duration = client.Now() - start
	return out, nil
}

// runOldIPCAPostHoc submits per-batch graphs; each pass re-reads its
// chunks from the PFS (the duplicate-read effect of §3.3.1).
func runOldIPCAPostHoc(e *env, client *dask.Client, ds *h5.Dataset, start float64) (analyticsResult, error) {
	cfg := e.cfg
	var prev taskgraph.Key
	for t := 0; t < cfg.Timesteps; t++ {
		var err error
		prev, err = oldIPCAStep(e, client, t, prev, func(g *taskgraph.Graph, pass string, b int) taskgraph.Key {
			return e.pipe.addRead(g, fmt.Sprintf("%s-t%03d-b%04d", pass, t, b), ds, t, b)
		})
		if err != nil {
			return analyticsResult{}, err
		}
	}
	out, err := gatherExtract(e, client, prev)
	if err != nil {
		return analyticsResult{}, err
	}
	out.duration -= start
	return out, nil
}

// oldIPCAStep performs one timestep of the old IPCA: a statistics pass
// and a fit pass, each submitted (and awaited) as its own graph. source
// supplies the per-block input key for a pass, adding read tasks to the
// pass's graph when the data lives on storage.
func oldIPCAStep(e *env, client *dask.Client, t int, prev taskgraph.Key,
	source func(g *taskgraph.Graph, pass string, b int) taskgraph.Key) (taskgraph.Key, error) {
	cfg := e.cfg
	// Pass A: batch statistics (mean/var), one pass over the data.
	gA := taskgraph.New()
	var foldsA []taskgraph.Key
	for b := 0; b < cfg.Ranks; b++ {
		src := source(gA, "A", b)
		foldsA = append(foldsA, e.pipe.addFold(gA, fmt.Sprintf("A-t%03d-b%04d", t, b), src))
	}
	statsKey := taskgraph.Key(fmt.Sprintf("stats-%03d", t))
	gA.AddFn(statsKey, foldsA, func(in []any) (any, error) {
		var total, count float64
		for _, v := range in {
			m := v.(*ndarray.Array)
			total += m.Sum()
			count += float64(m.Size())
		}
		if count == 0 {
			return 0.0, nil
		}
		return total / count, nil
	}, 1e-4)
	futsA, err := client.Submit(gA, []taskgraph.Key{statsKey})
	if err != nil {
		return "", err
	}
	if err := client.Wait(futsA); err != nil {
		return "", err
	}
	// Pass B: sketches and the partial fit.
	gB := taskgraph.New()
	var sketches []taskgraph.Key
	for b := 0; b < cfg.Ranks; b++ {
		src := source(gB, "B", b)
		fold := e.pipe.addFold(gB, fmt.Sprintf("B-t%03d-b%04d", t, b), src)
		sketches = append(sketches, e.pipe.addSketch(gB, fmt.Sprintf("B-t%03d-b%04d", t, b), fold))
	}
	stateKey := e.pipe.addFit(gB, taskgraph.Key(fmt.Sprintf("ipca-state-%03d", t)), prev, sketches)
	futsB, err := client.Submit(gB, []taskgraph.Key{stateKey})
	if err != nil {
		return "", err
	}
	if err := client.Wait(futsB); err != nil {
		return "", err
	}
	return stateKey, nil
}

// gatherExtract submits the extraction graph for the final state and
// gathers the results.
func gatherExtract(e *env, client *dask.Client, state taskgraph.Key) (analyticsResult, error) {
	g := taskgraph.New()
	targets := e.pipe.addExtract(g, "ipca", state)
	futs, err := client.Submit(g, targets)
	if err != nil {
		return analyticsResult{}, err
	}
	vals, err := client.Gather(futs)
	if err != nil {
		return analyticsResult{}, err
	}
	out := extractResults(vals)
	out.duration = client.Now()
	return out, nil
}
