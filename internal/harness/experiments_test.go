package harness

import (
	"strings"
	"testing"
)

// testOptions is even smaller than QuickOptions, for unit tests.
func testOptions() Options {
	o := DefaultOptions()
	o.Runs = 1
	o.Timesteps = 3
	o.WeakProcs = []int{4, 8}
	o.BlockBytes = 8 * MiB
	o.StrongProcs = []int{4, 8}
	o.StrongTotalBytes = 64 * MiB
	o.Fig5Procs = 8
	o.Fig5BlockBytes = 8 * MiB
	return o
}

func seriesByLabel(t *testing.T, tab *Table, label string) Series {
	t.Helper()
	for _, s := range tab.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("series %q not in %s", label, tab.Title)
	return Series{}
}

func TestFig2aShapes(t *testing.T) {
	tab, err := Fig2a(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.XTicks) != 2 || tab.XTicks[0] != "4" {
		t.Fatalf("ticks = %v", tab.XTicks)
	}
	simS := seriesByLabel(t, tab, "Simulation")
	write := seriesByLabel(t, tab, "Post Hoc Write")
	d3 := seriesByLabel(t, tab, "DEISA3 Communication")
	// Simulation weak-scales flat (within 5%).
	if rel := simS.Mean[1] / simS.Mean[0]; rel < 0.95 || rel > 1.05 {
		t.Fatalf("simulation not flat: %v", simS.Mean)
	}
	// Post hoc write grows with process count (shared PFS).
	if write.Mean[1] <= write.Mean[0]*1.1 {
		t.Fatalf("post hoc write did not grow: %v", write.Mean)
	}
	// DEISA3 communication stays roughly flat.
	if rel := d3.Mean[1] / d3.Mean[0]; rel < 0.8 || rel > 1.3 {
		t.Fatalf("DEISA3 comm not flat: %v", d3.Mean)
	}
	// All values positive.
	for _, s := range tab.Series {
		for i, m := range s.Mean {
			if m <= 0 || s.Std[i] < 0 {
				t.Fatalf("bad stats in %s: %v / %v", s.Label, s.Mean, s.Std)
			}
		}
	}
}

func TestFig2bShapes(t *testing.T) {
	tab, err := Fig2b(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	old := seriesByLabel(t, tab, "Post hoc IPCA")
	new_ := seriesByLabel(t, tab, "Post hoc New IPCA")
	d3 := seriesByLabel(t, tab, "DEISA3 New IPCA")
	for i := range old.Mean {
		if old.Mean[i] <= new_.Mean[i] {
			t.Fatalf("old IPCA (%v) not slower than new (%v) post hoc", old.Mean, new_.Mean)
		}
		if d3.Mean[i] >= old.Mean[i] {
			t.Fatalf("DEISA3 (%v) not faster than old post hoc (%v)", d3.Mean, old.Mean)
		}
	}
}

func TestFig3aShapes(t *testing.T) {
	tab, err := Fig3a(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	write := seriesByLabel(t, tab, "Post Hoc Write")
	d3 := seriesByLabel(t, tab, "DEISA3 Communication")
	// Post hoc per-process bandwidth decreases when doubling processes.
	if write.Mean[1] >= write.Mean[0] {
		t.Fatalf("post hoc bandwidth did not degrade: %v", write.Mean)
	}
	// DEISA3 bandwidth roughly stable and higher at scale.
	if d3.Mean[1] < write.Mean[1] {
		t.Fatalf("DEISA3 bandwidth (%v) below post hoc (%v) at scale", d3.Mean, write.Mean)
	}
}

func TestFig4Shapes(t *testing.T) {
	o := testOptions()
	ta, err := Fig4a(o)
	if err != nil {
		t.Fatal(err)
	}
	simS := seriesByLabel(t, ta, "Simulation")
	// Perfect strong scaling: constant core·hours (within 10%).
	if rel := simS.Mean[1] / simS.Mean[0]; rel < 0.9 || rel > 1.1 {
		t.Fatalf("simulation cost not constant: %v", simS.Mean)
	}
	write := seriesByLabel(t, ta, "Post Hoc Write")
	d3 := seriesByLabel(t, ta, "DEISA3 Communication")
	last := len(write.Mean) - 1
	if write.Mean[last] <= d3.Mean[last] {
		t.Fatalf("post hoc write cost (%v) not above DEISA3 (%v)", write.Mean, d3.Mean)
	}

	tb, err := Fig4b(o)
	if err != nil {
		t.Fatal(err)
	}
	oldC := seriesByLabel(t, tb, "Post hoc IPCA")
	d3C := seriesByLabel(t, tb, "DEISA3 New IPCA")
	if oldC.Mean[last] <= d3C.Mean[last] {
		t.Fatalf("post hoc analytics cost (%v) not above DEISA3 (%v)", oldC.Mean, d3C.Mean)
	}
}

func TestFig5Shapes(t *testing.T) {
	o := testOptions()
	o.Fig5BlockBytes = 32 * MiB // large enough for scheduler collisions
	runs, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3*o.Runs {
		t.Fatalf("got %d panels, want %d", len(runs), 3*o.Runs)
	}
	band := map[System]float64{}
	for _, r := range runs {
		if len(r.Mean) != o.Fig5Procs || len(r.Std) != o.Fig5Procs {
			t.Fatalf("panel size: %d ranks", len(r.Mean))
		}
		var avg float64
		for _, s := range r.Std {
			avg += s
		}
		band[r.System] += avg / float64(len(r.Std))
	}
	// The DEISA1 variability band must dominate DEISA3's.
	if band[DEISA1] <= band[DEISA3] {
		t.Fatalf("DEISA1 band (%v) not above DEISA3 (%v)", band[DEISA1], band[DEISA3])
	}
	if out := FormatFig5(runs); !strings.Contains(out, "DEISA1") || !strings.Contains(out, "band") {
		t.Fatal("FormatFig5 output malformed")
	}
}

func TestHeadlineRatios(t *testing.T) {
	o := testOptions()
	o.WeakProcs = []int{8}
	o.BlockBytes = 32 * MiB
	h, err := ComputeHeadline(o)
	if err != nil {
		t.Fatal(err)
	}
	if h.SimSpeedupVsDeisa1 < 1 {
		t.Fatalf("sim speedup %v < 1", h.SimSpeedupVsDeisa1)
	}
	if h.AnalyticsSpeedupVsDeisa1 < 1 {
		t.Fatalf("analytics speedup %v < 1", h.AnalyticsSpeedupVsDeisa1)
	}
	if h.CostRatioVsPostHocWrite < 1 {
		t.Fatalf("cost ratio %v < 1", h.CostRatioVsPostHocWrite)
	}
	if out := h.Format(); !strings.Contains(out, "paper") {
		t.Fatal("Format missing paper reference")
	}
}

func TestMetadataCountsFormulas(t *testing.T) {
	o := testOptions()
	mc, err := ComputeMetadataCounts(o, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	T, R := int64(o.Timesteps), int64(4)
	if mc.DEISA1Queue != 2*T*R {
		t.Fatalf("queue ops %d != 2TR %d", mc.DEISA1Queue, 2*T*R)
	}
	if mc.DEISA1Meta != T*R {
		t.Fatalf("metadata %d != TR %d", mc.DEISA1Meta, T*R)
	}
	if mc.DEISA3Variable != 3+R {
		t.Fatalf("variable ops %d != 3+R %d", mc.DEISA3Variable, 3+R)
	}
	if mc.DEISA3External != T*R {
		t.Fatalf("external %d != TR %d", mc.DEISA3External, T*R)
	}
	if out := mc.Format(); !strings.Contains(out, "2*T*R") {
		t.Fatal("Format malformed")
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := &Table{
		Title:  "T",
		XLabel: "x", YLabel: "y",
		XTicks: []string{"1", "2"},
		Series: []Series{{Label: "s", Mean: []float64{1, 2}, Std: []float64{0.1, 0.2}}},
	}
	txt := tab.Format()
	if !strings.Contains(txt, "T") || !strings.Contains(txt, "1±0.1") {
		t.Fatalf("Format = %q", txt)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "series,1,2") || !strings.Contains(csv, "s,1,2") {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestDefaultAndQuickOptions(t *testing.T) {
	d := DefaultOptions()
	if d.Runs != 3 || d.Timesteps != 10 || d.BlockBytes != 128*MiB {
		t.Fatalf("DefaultOptions = %+v", d)
	}
	q := QuickOptions()
	if q.Runs >= d.Runs && q.BlockBytes >= d.BlockBytes {
		t.Fatal("QuickOptions not smaller than default")
	}
	var o Options
	o.defaults()
	if o.Runs != 3 {
		t.Fatal("zero Options did not default")
	}
}
