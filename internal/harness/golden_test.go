package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"deisago/internal/chaos"
)

// Golden-snapshot regression tests: the canonical (counter-only) metrics
// snapshot of a fixed-seed run is committed under testdata/ and
// byte-compared on every test run. The canonical form deliberately
// excludes gauges and histograms — those carry virtual timestamps, which
// FCFS tie-breaking and jitter draw order can perturb — so any diff here
// is a real behavioural change, not noise. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/harness -run TestGolden
//
// and review the diff like any other code change.

// chaosGoldenPlan is a hand-written kill-free plan: drops and delays are
// keyed on logical (rank, step) coordinates and degradation only warps
// virtual time, so the counter snapshot stays a pure function of the
// workload. Kills are excluded on purpose — recovery counts depend on
// how far a scatter got when the worker died, which is timing.
const chaosGoldenPlan = "drop:0/1:2;delay:2/2:0.01;degrade:0-1:2@0-inf"

// runCanonical executes the config twice and checks the identical-seed
// byte-identity claim before returning the canonical snapshot.
func runCanonical(t *testing.T, cfg Config) []byte {
	t.Helper()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Metrics.CanonicalJSON(), b.Metrics.CanonicalJSON()
	if !bytes.Equal(ca, cb) {
		t.Fatalf("two identical-seed runs produced different snapshots:\n%s\nvs\n%s", ca, cb)
	}
	return ca
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot drifted from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

func TestGoldenQuickstartSnapshot(t *testing.T) {
	checkGolden(t, "quickstart_metrics.golden.json", runCanonical(t, smallConfig(DEISA3)))
}

func TestGoldenChaosSnapshot(t *testing.T) {
	plan, err := chaos.ParsePlan(chaosGoldenPlan)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(DEISA3)
	cfg.ChaosPlan = plan
	checkGolden(t, "chaos_metrics.golden.json", runCanonical(t, cfg))
}
