package harness

import (
	"fmt"
	"strings"

	"deisago/internal/chaos"
	"deisago/internal/netsim"
)

// Chaos acceptance scenario: the Fig-2b analytics pipeline (DEISA3, the
// paper's full design) run twice — fault-free and under a fault plan —
// with the scheduler invariant auditor enabled, verifying the analytics
// outputs are bit-identical. Used by cmd/experiments -chaos-seed/-plan
// and by the acceptance test.

// ChaosScenarioConfig returns one weak-scaling point of the Fig-2b
// pipeline sized for chaos runs.
func ChaosScenarioConfig(o Options, ranks, workers int) Config {
	o.defaults()
	return Config{
		System:     DEISA3,
		Ranks:      ranks,
		Workers:    workers,
		Timesteps:  o.Timesteps,
		BlockBytes: o.BlockBytes,
		Seed:       1,
	}
}

// ChaosSpec bounds a random plan to the scenario: two worker kills (or
// as many as leave a survivor), one degraded link, one dropped and one
// delayed publish — the compound-failure shape of the acceptance
// criteria. When the scenario runs with worker memory governance
// (cfg.WorkerMemoryLimit > 0) the spec additionally draws one memlimit
// squeeze window scaled to the block size; ungoverned scenarios draw
// none, so plans from pre-memlimit seeds stay byte-identical.
func ChaosSpec(cfg Config) chaos.Spec {
	kills := 2
	if kills > cfg.Workers-1 {
		kills = cfg.Workers - 1
	}
	// Link endpoints are drawn from the first few machine nodes; a pair
	// that carries no scenario traffic degrades nothing, which is still
	// a valid (timing-only) fault.
	nodes := []netsim.NodeID{0, 1, 2, 3}
	spec := chaos.Spec{
		Workers:  cfg.Workers,
		Ranks:    cfg.Ranks,
		Steps:    cfg.Timesteps,
		Nodes:    nodes,
		Kills:    kills,
		Degrades: 1,
		Drops:    1,
		Delays:   1,
	}
	if cfg.WorkerMemoryLimit > 0 {
		spec.MemLimits = 1
		spec.MemBytes = cfg.BlockBytes
	}
	return spec
}

// ChaosReport compares a faulty run against its fault-free twin.
type ChaosReport struct {
	Plan      *chaos.Plan
	Clean     *Result
	Faulty    *Result
	Identical bool // analytics outputs bit-identical across the runs
}

// RunChaos executes cfg fault-free and under the plan (auditor on in
// the faulty run; any invariant violation panics) and compares the
// analytics outputs bitwise.
func RunChaos(cfg Config, plan *chaos.Plan) (*ChaosReport, error) {
	return RunChaosParallel(cfg, plan, 1)
}

// RunChaosParallel is RunChaos with the twin runs executed on a pool of
// the given width. The runs are independent simulations, so the report —
// fault log included — is identical for any width; 2 halves wall-clock.
func RunChaosParallel(cfg Config, plan *chaos.Plan, parallel int) (*ChaosReport, error) {
	var cr, fr *Result
	err := runPool(parallel, 2, func(i int) error {
		c := cfg
		if i == 0 {
			c.ChaosPlan = nil
			res, err := Run(c)
			if err != nil {
				return fmt.Errorf("harness: fault-free run: %w", err)
			}
			cr = res
			return nil
		}
		c.ChaosPlan = plan
		res, err := Run(c)
		if err != nil {
			return fmt.Errorf("harness: chaos run: %w", err)
		}
		fr = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ChaosReport{
		Plan:      plan,
		Clean:     cr,
		Faulty:    fr,
		Identical: identicalAnalytics(cr, fr),
	}, nil
}

// identicalAnalytics reports whether two runs produced bit-identical
// analytics outputs (components, singular values, explained variance).
func identicalAnalytics(a, b *Result) bool {
	if (a.Components == nil) != (b.Components == nil) {
		return false
	}
	if a.Components != nil {
		as, bs := a.Components.Shape(), b.Components.Shape()
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		ad, bd := a.Components.Data(), b.Components.Data()
		for i := range ad {
			if ad[i] != bd[i] {
				return false
			}
		}
	}
	if len(a.SingularValues) != len(b.SingularValues) ||
		len(a.ExplainedVariance) != len(b.ExplainedVariance) {
		return false
	}
	for i := range a.SingularValues {
		if a.SingularValues[i] != b.SingularValues[i] {
			return false
		}
	}
	for i := range a.ExplainedVariance {
		if a.ExplainedVariance[i] != b.ExplainedVariance[i] {
			return false
		}
	}
	return true
}

// Format renders the report for the CLI.
func (r *ChaosReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos scenario: %s, %d ranks, %d workers, %d steps\n",
		r.Faulty.Config.System, r.Faulty.Config.Ranks, r.Faulty.Config.Workers,
		r.Faulty.Config.Timesteps)
	fmt.Fprintf(&b, "plan (seed %d): %s\n", r.Plan.Seed, r.Plan.String())
	b.WriteString("executed faults:\n")
	if len(r.Faulty.ChaosLog) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, e := range r.Faulty.ChaosLog {
		fmt.Fprintf(&b, "  %s\n", e.String())
	}
	fmt.Fprintf(&b, "publish retries: %d, blocks republished: %d\n",
		r.Faulty.PublishRetries, r.Faulty.Republished)
	verdict := "IDENTICAL"
	if !r.Identical {
		verdict = "DIVERGED"
	}
	fmt.Fprintf(&b, "analytics vs fault-free run: %s\n", verdict)
	return b.String()
}
