package harness

import (
	"fmt"
	"math"

	"deisago/internal/metrics"
)

// This file holds ablation studies for the design choices DESIGN.md
// calls out: the heartbeat interval (the DEISA1→2→3 axis), the
// per-timestep metadata refresh (the scheduler-overload mechanism),
// contract-based filtering, and the time-invariant worker preselection.
// Each returns a Table like the figure generators.

// AblationHeartbeat sweeps the bridge heartbeat interval on the
// external-task system, isolating the heartbeat's contribution to
// coupling time and scheduler load (the DEISA2 vs DEISA3 distinction).
func AblationHeartbeat(o Options, intervals []float64) (*Table, error) {
	o.defaults()
	if len(intervals) == 0 {
		intervals = []float64{1, 5, 30, 60, math.Inf(1)}
	}
	procs := o.WeakProcs[len(o.WeakProcs)-1]
	// The two series measure different quantities (seconds vs message
	// counts), so each carries its own unit instead of a shared Y axis.
	tab := &Table{
		Title:  fmt.Sprintf("Ablation — heartbeat interval (external tasks, %d procs)", procs),
		XLabel: "Interval (s)",
		YLabel: "per series",
	}
	comm := Series{Label: "Coupling s/iter", Unit: "s/iter"}
	beats := Series{Label: "Heartbeat msgs", Unit: "msgs"}
	for _, iv := range intervals {
		if math.IsInf(iv, 1) {
			tab.XTicks = append(tab.XTicks, "inf")
		} else {
			tab.XTicks = append(tab.XTicks, fmt.Sprintf("%g", iv))
		}
		var comms, counts []float64
		for run := 0; run < o.Runs; run++ {
			res, err := Run(Config{
				System: DEISA3, Ranks: procs, Workers: procs / 2,
				Timesteps: o.Timesteps, BlockBytes: o.BlockBytes,
				Seed: int64(run*17 + 1), Model: o.Model,
				HeartbeatOverride: iv,
			})
			if err != nil {
				return nil, err
			}
			comms = append(comms, res.CommMean)
			// Heartbeats arrive at the scheduler as messages of kind
			// "heartbeat"; the registry is the source of truth.
			counts = append(counts,
				float64(res.Metrics.Counter(metrics.ID("scheduler", "messages", metrics.L("kind", "heartbeat")))))
		}
		m, s := meanStd(comms)
		comm.Mean = append(comm.Mean, m)
		comm.Std = append(comm.Std, s)
		m, s = meanStd(counts)
		beats.Mean = append(beats.Mean, m)
		beats.Std = append(beats.Std, s)
	}
	tab.Series = []Series{comm, beats}
	return tab, nil
}

// AblationMetadata sweeps the per-entry metadata processing cost on
// DEISA1, demonstrating that the per-timestep metadata refresh is what
// separates DEISA1 from DEISA3 (set it to ~0 and DEISA1's coupling cost
// collapses toward DEISA3's).
func AblationMetadata(o Options, entryCosts []float64) (*Table, error) {
	o.defaults()
	if len(entryCosts) == 0 {
		entryCosts = []float64{0, 2.5e-4, 5e-4, 1e-3, 2e-3}
	}
	procs := o.WeakProcs[len(o.WeakProcs)-1]
	tab := &Table{
		Title:  fmt.Sprintf("Ablation — DEISA1 metadata entry cost (%d procs)", procs),
		XLabel: "Cost (ms/entry)",
		YLabel: "s/iter",
	}
	d1 := Series{Label: "DEISA1 coupling s/iter"}
	for _, ec := range entryCosts {
		tab.XTicks = append(tab.XTicks, fmt.Sprintf("%g", ec*1e3))
		var comms []float64
		for run := 0; run < o.Runs; run++ {
			m := o.Model
			m.MetaEntryCost = ec
			res, err := Run(Config{
				System: DEISA1, Ranks: procs, Workers: procs / 2,
				Timesteps: o.Timesteps, BlockBytes: o.BlockBytes,
				Seed: int64(run*17 + 1), Model: m,
			})
			if err != nil {
				return nil, err
			}
			comms = append(comms, res.CommMean)
		}
		m, s := meanStd(comms)
		d1.Mean = append(d1.Mean, m)
		d1.Std = append(d1.Std, s)
	}
	// Reference: DEISA3 at the same scale.
	var ref []float64
	for run := 0; run < o.Runs; run++ {
		res, err := Run(Config{
			System: DEISA3, Ranks: procs, Workers: procs / 2,
			Timesteps: o.Timesteps, BlockBytes: o.BlockBytes,
			Seed: int64(run*17 + 1), Model: o.Model,
		})
		if err != nil {
			return nil, err
		}
		ref = append(ref, res.CommMean)
	}
	m, s := meanStd(ref)
	d3 := Series{Label: "DEISA3 reference"}
	for range entryCosts {
		d3.Mean = append(d3.Mean, m)
		d3.Std = append(d3.Std, s)
	}
	tab.Series = []Series{d1, d3}
	return tab, nil
}

// AblationContract sweeps the fraction of the domain the analytics
// selects, demonstrating that contracts convert analytics selectivity
// into proportional traffic and coupling savings at the bridges.
func AblationContract(o Options, fractions []float64) (*Table, error) {
	o.defaults()
	if len(fractions) == 0 {
		fractions = []float64{0.25, 0.5, 0.75, 1.0}
	}
	procs := o.WeakProcs[len(o.WeakProcs)-1]
	tab := &Table{
		Title:  fmt.Sprintf("Ablation — contract selectivity (DEISA3, %d procs)", procs),
		XLabel: "Selected fraction",
		YLabel: "per series",
	}
	sent := Series{Label: "Blocks shipped", Unit: "blocks"}
	traffic := Series{Label: "Fabric GiB", Unit: "GiB"}
	comm := Series{Label: "Coupling s/iter (mean over ranks)", Unit: "s/iter"}
	for _, f := range fractions {
		tab.XTicks = append(tab.XTicks, fmt.Sprintf("%.2f", f))
		var sents, bytes, comms []float64
		for run := 0; run < o.Runs; run++ {
			res, err := Run(Config{
				System: DEISA3, Ranks: procs, Workers: procs / 2,
				Timesteps: o.Timesteps, BlockBytes: o.BlockBytes,
				Seed: int64(run*17 + 1), Model: o.Model,
				SelectFraction: f,
			})
			if err != nil {
				return nil, err
			}
			sents = append(sents, float64(res.BlocksSent))
			bytes = append(bytes, float64(res.FabricBytes)/float64(GiB))
			comms = append(comms, res.CommMean)
		}
		m, s := meanStd(sents)
		sent.Mean, sent.Std = append(sent.Mean, m), append(sent.Std, s)
		m, s = meanStd(bytes)
		traffic.Mean, traffic.Std = append(traffic.Mean, m), append(traffic.Std, s)
		m, s = meanStd(comms)
		comm.Mean, comm.Std = append(comm.Mean, m), append(comm.Std, s)
	}
	tab.Series = []Series{sent, traffic, comm}
	return tab, nil
}

// AblationFuse compares submitting the analytics graph as-is against
// fusing linear chains first (dask.optimization.fuse): fewer tasks mean
// less scheduler work and fewer intermediate results.
func AblationFuse(o Options) (*Table, error) {
	o.defaults()
	procs := o.WeakProcs[len(o.WeakProcs)-1]
	tab := &Table{
		Title:  fmt.Sprintf("Ablation — graph fusion (DEISA3, %d procs)", procs),
		XLabel: "Fusion",
		YLabel: "per series",
		XTicks: []string{"off", "on"},
	}
	analytics := Series{Label: "Analytics s", Unit: "s"}
	tasks := Series{Label: "Tasks registered", Unit: "tasks"}
	for _, fuse := range []bool{false, true} {
		var as, ts []float64
		for run := 0; run < o.Runs; run++ {
			res, err := Run(Config{
				System: DEISA3, Ranks: procs, Workers: procs / 2,
				Timesteps: o.Timesteps, BlockBytes: o.BlockBytes,
				Seed: int64(run*17 + 1), Model: o.Model,
				FuseGraphs: fuse,
			})
			if err != nil {
				return nil, err
			}
			as = append(as, res.AnalyticsTime)
			ts = append(ts, float64(res.Counters.TasksRegistered))
		}
		m, s := meanStd(as)
		analytics.Mean, analytics.Std = append(analytics.Mean, m), append(analytics.Std, s)
		m, s = meanStd(ts)
		tasks.Mean, tasks.Std = append(tasks.Mean, m), append(tasks.Std, s)
	}
	tab.Series = []Series{analytics, tasks}
	return tab, nil
}

// AblationPlacement compares the deisa time-invariant worker
// preselection against a scattered placement that moves each block's
// timeline across workers, showing why stable placement matters for the
// pipelined analytics.
func AblationPlacement(o Options) (*Table, error) {
	o.defaults()
	procs := o.WeakProcs[len(o.WeakProcs)-1]
	tab := &Table{
		Title:  fmt.Sprintf("Ablation — worker preselection policy (DEISA3, %d procs)", procs),
		XLabel: "Policy",
		YLabel: "s",
		XTicks: []string{"preselected", "scattered"},
	}
	analytics := Series{Label: "Analytics s"}
	comm := Series{Label: "Coupling s/iter"}
	for _, scattered := range []bool{false, true} {
		var as, cs []float64
		for run := 0; run < o.Runs; run++ {
			res, err := Run(Config{
				System: DEISA3, Ranks: procs, Workers: procs / 2,
				Timesteps: o.Timesteps, BlockBytes: o.BlockBytes,
				Seed: int64(run*17 + 1), Model: o.Model,
				ScatteredPlacement: scattered,
			})
			if err != nil {
				return nil, err
			}
			as = append(as, res.AnalyticsTime)
			cs = append(cs, res.CommMean)
		}
		m, s := meanStd(as)
		analytics.Mean, analytics.Std = append(analytics.Mean, m), append(analytics.Std, s)
		m, s = meanStd(cs)
		comm.Mean, comm.Std = append(comm.Mean, m), append(comm.Std, s)
	}
	tab.Series = []Series{analytics, comm}
	return tab, nil
}
