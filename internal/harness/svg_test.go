package harness

import (
	"strings"
	"testing"
)

func TestRenderSVG(t *testing.T) {
	tab := &Table{
		Title:  "Test & Figure",
		XLabel: "Processes", YLabel: "s/iter",
		XTicks: []string{"4", "8"},
		Series: []Series{
			{Label: "Simulation", Mean: []float64{1.2, 1.2}, Std: []float64{0.01, 0.02}},
			{Label: "DEISA3", Mean: []float64{0.35, 0.35}, Std: []float64{0, 0}},
		},
	}
	svg := tab.RenderSVG(800, 400)
	for _, want := range []string{
		"<svg", "</svg>", "Test &amp; Figure", "Simulation", "DEISA3",
		"Processes", "s/iter", "<rect", "<line",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Error bars only for non-zero std: count black error-bar lines.
	if n := strings.Count(svg, `stroke="black"`); n != 2 {
		t.Fatalf("error bars = %d, want 2 (only Simulation has std)", n)
	}
}

func TestRenderSVGEmptyAndZero(t *testing.T) {
	tab := &Table{Title: "empty", XLabel: "x", YLabel: "y"}
	if svg := tab.RenderSVG(300, 200); !strings.Contains(svg, "</svg>") {
		t.Fatal("empty table did not render")
	}
	tab2 := &Table{
		Title: "zeros", XTicks: []string{"a"},
		Series: []Series{{Label: "z", Mean: []float64{0}, Std: []float64{0}}},
	}
	if svg := tab2.RenderSVG(300, 200); !strings.Contains(svg, "</svg>") {
		t.Fatal("all-zero table did not render")
	}
}

func TestRenderFig5SVG(t *testing.T) {
	runs := []Fig5Run{
		{System: DEISA1, Run: 0, Mean: []float64{1, 2, 3}, Std: []float64{0.5, 0.5, 0.5}},
		{System: DEISA3, Run: 0, Mean: []float64{1, 1, 1}, Std: []float64{0, 0, 0}},
	}
	svg := RenderFig5SVG(runs, 600, 300)
	for _, want := range []string{"DEISA1 run 1", "DEISA3 run 1", "polygon", "polyline", "ranks"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("Fig5 SVG missing %q", want)
		}
	}
	if svg := RenderFig5SVG(nil, 300, 100); !strings.Contains(svg, "</svg>") {
		t.Fatal("empty Fig5 grid did not render")
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{0: "0", 150: "150", 2.5: "2.5", 0.034: "0.034"}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Fatalf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
