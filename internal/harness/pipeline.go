package harness

import (
	"fmt"

	"deisago/internal/h5"
	"deisago/internal/ml"
	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// pipeline builds the analytics task subgraphs shared by the IPCA
// drivers. It reproduces the structure of dask-ml's randomized-solver
// IncrementalPCA over a chunked array:
//
//	block ──fold──► centered samples×features matrix   (one pass, parallel)
//	fold ──sketch──► randomized range sketch            (flops ∝ n·f·k, parallel)
//	sketches + prev state ──fit──► next estimator state (small SVD, sequential)
//
// The real values stay exact (the sketch task passes the true matrix
// through; the fit runs the exact incremental PCA update on real data),
// while the cost and transfer model follows the randomized pipeline —
// notably the sketch output is modelled at sketch size, so only small
// data crosses workers toward the sequential chain.
type pipeline struct {
	cfg Config
	// prefix scopes every key the pipeline mints to one job namespace
	// ("<ns>/"); empty on single-job runs, so the historical key names
	// are untouched.
	prefix string
	// Modelled dimensions.
	nBlock int // samples per block
	f      int // features
	k      int
}

func newPipeline(cfg Config) *pipeline {
	return newNamespacedPipeline(cfg, "")
}

// newNamespacedPipeline builds a pipeline whose keys are scoped to one
// job namespace on a shared multi-tenant cluster.
func newNamespacedPipeline(cfg Config, ns string) *pipeline {
	f := cfg.Model.FeaturesModel
	n := int(cfg.BlockBytes / 8 / int64(f))
	if n < 1 {
		n = 1
	}
	prefix := ""
	if ns != "" {
		prefix = ns + "/"
	}
	return &pipeline{cfg: cfg, prefix: prefix, nBlock: n, f: f, k: cfg.Model.NComponents}
}

func (p *pipeline) foldCost() vtime.Dur {
	return float64(p.cfg.BlockBytes) * p.cfg.Model.FoldCostPerByte
}

func (p *pipeline) sketchCost() vtime.Dur {
	return 4 * float64(p.nBlock) * float64(p.f) * float64(p.k+10) * p.cfg.Model.FlopTime
}

func (p *pipeline) sketchBytes() int64 {
	return int64(p.nBlock) * int64(p.k+10) * 8
}

func (p *pipeline) fitCost(blocks int) vtime.Dur {
	rows := float64(p.nBlock * blocks)
	s := float64(p.k + 10)
	return 20 * s * s * (rows + float64(p.f)) * p.cfg.Model.FlopTime
}

func (p *pipeline) stateBytes() int64 {
	return int64(p.k*p.f+3*p.f)*8 + 64
}

// foldSpec folds a (1, X, Yloc) block into a (Yloc × X) samples×features
// matrix, as the paper's fit(gt, ["t","X","Y"], ["X"], ["Y"]).
var foldSpec = ml.FoldSpec{
	Dims:        []string{"t", "X", "Y"},
	SampleDims:  []string{"t", "Y"},
	FeatureDims: []string{"X"},
}

// addRead adds a PFS chunk-read task (post hoc only). Its duration is
// dynamic: the simulated file system prices the read under contention.
func (p *pipeline) addRead(g *taskgraph.Graph, suffix string, ds *h5.Dataset, t, b int) taskgraph.Key {
	key := taskgraph.Key(p.prefix + "read-" + suffix)
	task := g.AddTimed(key, nil, func(_ []any, start vtime.Time) (any, vtime.Time, error) {
		block, end, err := ds.ReadChunk([]int{t, 0, b}, start)
		if err != nil {
			return nil, start, err
		}
		return block, end, nil
	}, 0)
	task.OutBytes = p.cfg.BlockBytes
	return key
}

// addFold adds the centering/stacking pass over one block.
func (p *pipeline) addFold(g *taskgraph.Graph, suffix string, blockKey taskgraph.Key) taskgraph.Key {
	key := taskgraph.Key(p.prefix + "fold-" + suffix)
	task := g.AddFn(key, []taskgraph.Key{blockKey}, func(in []any) (any, error) {
		block, ok := in[0].(*ndarray.Array)
		if !ok {
			return nil, fmt.Errorf("harness: fold input is %T, want *ndarray.Array", in[0])
		}
		labeled := ndarray.NewLabeled(block, foldSpec.Dims...)
		return labeled.StackToMatrix(foldSpec.SampleDims, foldSpec.FeatureDims), nil
	}, p.foldCost())
	task.OutBytes = p.cfg.BlockBytes
	task.Priority = 1 // behind chain-critical fit tasks
	return key
}

// addSketch adds the randomized range-sketch stage. The real value passes
// through unchanged (exactness); the model prices the sketch flops and
// ships only the sketch-sized output.
func (p *pipeline) addSketch(g *taskgraph.Graph, suffix string, foldKey taskgraph.Key) taskgraph.Key {
	key := taskgraph.Key(p.prefix + "sketch-" + suffix)
	task := g.AddFn(key, []taskgraph.Key{foldKey}, func(in []any) (any, error) {
		m, ok := in[0].(*ndarray.Array)
		if !ok {
			return nil, fmt.Errorf("harness: sketch input is %T, want *ndarray.Array", in[0])
		}
		return m, nil
	}, p.sketchCost())
	task.OutBytes = p.sketchBytes()
	task.Priority = 1
	return key
}

// addFoldSketch chains fold and sketch for one block.
func (p *pipeline) addFoldSketch(g *taskgraph.Graph, suffix string, blockKey taskgraph.Key) taskgraph.Key {
	return p.addSketch(g, suffix, p.addFold(g, suffix, blockKey))
}

// addFit adds the sequential chain stage: it concatenates the step's
// batch matrices (sample-wise) and folds them into the running estimator.
// prev is empty for the first step.
func (p *pipeline) addFit(g *taskgraph.Graph, key, prev taskgraph.Key, sketches []taskgraph.Key) taskgraph.Key {
	key = taskgraph.Key(p.prefix) + key
	deps := make([]taskgraph.Key, 0, len(sketches)+1)
	hasPrev := prev != ""
	if hasPrev {
		deps = append(deps, prev)
	}
	deps = append(deps, sketches...)
	k := p.k
	task := g.AddFn(key, deps, func(in []any) (any, error) {
		var est *ml.IncrementalPCA
		first := 0
		if hasPrev {
			state, ok := in[0].(*ml.IncrementalPCA)
			if !ok {
				return nil, fmt.Errorf("harness: fit state is %T", in[0])
			}
			est = state.Clone()
			first = 1
		} else {
			est = ml.NewIncrementalPCA(k)
		}
		mats := make([]*ndarray.Array, 0, len(in)-first)
		for _, v := range in[first:] {
			m, ok := v.(*ndarray.Array)
			if !ok {
				return nil, fmt.Errorf("harness: fit batch is %T", v)
			}
			mats = append(mats, m)
		}
		batch := mats[0]
		if len(mats) > 1 {
			batch = ndarray.Concat(0, mats...)
		}
		if err := est.PartialFit(batch); err != nil {
			return nil, err
		}
		return est, nil
	}, p.fitCost(len(sketches)))
	task.OutBytes = p.stateBytes()
	// The sequential chain is the analytics critical path: run fits
	// ahead of queued folds/sketches of later steps (Dask's graph-order
	// priorities achieve the same).
	task.Priority = -1
	return key
}

// addExtract adds the three result-extraction tasks and returns their
// keys in [components, singular values, explained variance] order.
func (p *pipeline) addExtract(g *taskgraph.Graph, name string, state taskgraph.Key) []taskgraph.Key {
	name = p.prefix + name
	comp := taskgraph.Key(name + "-components")
	g.AddFn(comp, []taskgraph.Key{state}, func(in []any) (any, error) {
		return in[0].(*ml.IncrementalPCA).Components, nil
	}, 1e-6)
	sv := taskgraph.Key(name + "-singular-values")
	g.AddFn(sv, []taskgraph.Key{state}, func(in []any) (any, error) {
		return append([]float64(nil), in[0].(*ml.IncrementalPCA).SingularValues...), nil
	}, 1e-6)
	ev := taskgraph.Key(name + "-explained-variance")
	g.AddFn(ev, []taskgraph.Key{state}, func(in []any) (any, error) {
		return append([]float64(nil), in[0].(*ml.IncrementalPCA).ExplainedVariance...), nil
	}, 1e-6)
	return []taskgraph.Key{comp, sv, ev}
}
