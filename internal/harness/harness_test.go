package harness

import (
	"math"
	"testing"

	"deisago/internal/ml"
	"deisago/internal/ndarray"
	"deisago/internal/sim"
)

func smallConfig(sys System) Config {
	return Config{
		System:     sys,
		Ranks:      4,
		Workers:    2,
		Timesteps:  3,
		BlockBytes: 1 << 20,
		Seed:       7,
	}
}

// referenceComponents computes the expected IPCA result directly: the
// serial Heat2D field per step, folded to (Y × X) batches, fed to a local
// incremental PCA in the same order as the distributed drivers.
func referenceComponents(t *testing.T, cfg Config) *ml.IncrementalPCA {
	t.Helper()
	cfg.defaults()
	heatCfg := sim.Config{
		GlobalX: cfg.RealLocalX,
		GlobalY: cfg.RealLocalY * cfg.Ranks,
		ProcX:   1, ProcY: cfg.Ranks,
		Alpha:    0.2,
		CellCost: 1e-12,
	}
	init := sim.HotSpotInitial(heatCfg)
	est := ml.NewIncrementalPCA(cfg.Model.NComponents)
	for step := 1; step <= cfg.Timesteps; step++ {
		u := sim.RunSerial(heatCfg, init, step)
		batch := ndarray.New(heatCfg.GlobalY, heatCfg.GlobalX)
		for y := 0; y < heatCfg.GlobalY; y++ {
			for x := 0; x < heatCfg.GlobalX; x++ {
				batch.Set(u.At(x, y), y, x)
			}
		}
		if err := est.PartialFit(batch); err != nil {
			t.Fatal(err)
		}
	}
	return est
}

func TestAllSystemsComputeIdenticalIPCA(t *testing.T) {
	want := referenceComponents(t, smallConfig(DEISA3))
	for _, sys := range []System{PostHocOldIPCA, PostHocNewIPCA, DEISA1, DEISA2, DEISA3} {
		res, err := Run(smallConfig(sys))
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Components == nil {
			t.Fatalf("%s: no components", sys)
		}
		if !ndarray.AllClose(res.Components, want.Components, 1e-9) {
			t.Fatalf("%s components differ from reference:\n got %v\nwant %v",
				sys, res.Components, want.Components)
		}
		for i, sv := range want.SingularValues {
			if math.Abs(res.SingularValues[i]-sv) > 1e-9*(1+sv) {
				t.Fatalf("%s singular values differ: %v vs %v", sys, res.SingularValues, want.SingularValues)
			}
		}
	}
}

func TestTimingsArePositiveAndOrdered(t *testing.T) {
	results := map[System]*Result{}
	for _, sys := range []System{PostHocOldIPCA, PostHocNewIPCA, DEISA1, DEISA3} {
		res, err := Run(smallConfig(sys))
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.SimStepMean <= 0 || res.CommMean <= 0 || res.AnalyticsTime <= 0 {
			t.Fatalf("%s: non-positive timings %+v", sys, res)
		}
		if res.SimMakespan <= 0 {
			t.Fatalf("%s: no makespan", sys)
		}
		if len(res.PerRankCommMean) != 4 {
			t.Fatalf("%s: per-rank stats missing", sys)
		}
		results[sys] = res
	}
	// The old IPCA must not be faster than the new IPCA post hoc (it
	// performs duplicate reads and serializes submissions).
	if results[PostHocOldIPCA].AnalyticsTime <= results[PostHocNewIPCA].AnalyticsTime {
		t.Fatalf("old IPCA (%v) should be slower than new IPCA (%v) post hoc",
			results[PostHocOldIPCA].AnalyticsTime, results[PostHocNewIPCA].AnalyticsTime)
	}
	// At this small scale DEISA1 and DEISA3 are comparable (as in the
	// paper); allow jitter-level differences only.
	if results[DEISA1].CommMean < 0.9*results[DEISA3].CommMean {
		t.Fatalf("DEISA1 comm (%v) implausibly beats DEISA3 (%v) at small scale",
			results[DEISA1].CommMean, results[DEISA3].CommMean)
	}
}

func TestDeisa1SlowerAtScale(t *testing.T) {
	// With more ranks the DEISA1 per-timestep metadata overloads the
	// scheduler; the coupling cost must clearly exceed DEISA3's (the
	// effect behind the paper's ×7 simulation-side headline).
	// Paper-scale blocks: the compute step (~0.3 s) re-synchronizes the
	// ranks every iteration, so they collide at the scheduler.
	mk := func(sys System) Config {
		c := smallConfig(sys)
		c.Ranks = 16
		c.Workers = 8
		c.BlockBytes = 32 << 20
		return c
	}
	r1, err := Run(mk(DEISA1))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(mk(DEISA3))
	if err != nil {
		t.Fatal(err)
	}
	if r1.CommMean < 1.5*r3.CommMean {
		t.Fatalf("DEISA1 comm (%v) should be well above DEISA3 (%v) at 16 ranks",
			r1.CommMean, r3.CommMean)
	}
}

// Protocol message-count formulas are asserted over a (T, R, heartbeat)
// matrix in formula_test.go, sourced from the metrics registry.

func TestDeisa1GraphCadence(t *testing.T) {
	r1, err := Run(smallConfig(DEISA1))
	if err != nil {
		t.Fatal(err)
	}
	// Two graphs per step (stats + fit) plus final extraction.
	T := int64(3)
	if r1.Counters.GraphsSubmitted != 2*T+1 {
		t.Fatalf("DEISA1 graphs = %d, want %d", r1.Counters.GraphsSubmitted, 2*T+1)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	res, err := Run(smallConfig(DEISA3))
	if err != nil {
		t.Fatal(err)
	}
	if res.SimBandwidthMiBps() <= 0 || res.AnalyticsBandwidthMiBps() <= 0 {
		t.Fatal("bandwidths not positive")
	}
	if res.SimCommCostCoreHours() <= 0 || res.AnalyticsCostCoreHours() <= 0 ||
		res.SimComputeCostCoreHours() <= 0 {
		t.Fatal("costs not positive")
	}
	if res.SimNodes != 2 || res.AnalyticsNodes != 3 {
		t.Fatalf("node counts: sim=%d analytics=%d", res.SimNodes, res.AnalyticsNodes)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{System: DEISA3}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestSystemStringAndPredicates(t *testing.T) {
	if DEISA3.String() != "DEISA3" || PostHocOldIPCA.String() != "PostHoc-IPCA" {
		t.Fatal("String")
	}
	if !DEISA3.InTransit() || PostHocNewIPCA.InTransit() {
		t.Fatal("InTransit")
	}
	if !DEISA3.NewIPCA() || DEISA1.NewIPCA() || !PostHocNewIPCA.NewIPCA() {
		t.Fatal("NewIPCA")
	}
	m := DefaultModel()
	if m.Heartbeat(DEISA1) != 5 || m.Heartbeat(DEISA2) != 60 || !math.IsInf(m.Heartbeat(DEISA3), 1) {
		t.Fatal("Heartbeat")
	}
}
