package harness

import (
	"fmt"

	"deisago/internal/core"
	"deisago/internal/h5"
	"deisago/internal/pdi"
	"deisago/internal/pfs"
)

// This file generates the PDI configuration (the paper's Listing 1) that
// drives each simulation rank: the same YAML text works for every rank,
// with rank-specific values exposed as metadata. Routing the harness
// through PDI keeps the paper's separation of concerns in the measured
// path: the Heat2D code only shares `temp`; whether that becomes a deisa
// scatter or an HDF5 chunk write is configuration.

// deisaConfigYAML is the in-transit configuration (deisa plugin).
const deisaConfigYAML = `
metadata: { step: int, cfg: config_t, rank: int }
data:
  temp:
    type: array
    subtype: double
    size: [ '$cfg.loc[0]', '$cfg.loc[1]' ]
plugins:
  PdiPluginDeisa:
    scheduler_info: scheduler.json
    init_on: init
    time_step: '$step'
    deisa_arrays:
      G_temp:
        type: array
        subtype: double
        size:
          - '$cfg.maxTimeStep'
          - '$cfg.loc[0]'
          - '$cfg.loc[1] * $cfg.proc[1]'
        subsize:
          - 1
          - '$cfg.loc[0]'
          - '$cfg.loc[1]'
        start:
          - '$step'
          - 0
          - '$cfg.loc[1] * $rank'
        timedim: 0
    map_in:
      temp: G_temp
`

// posthocConfigYAML is the post hoc configuration (HDF5 plugin).
const posthocConfigYAML = `
metadata: { step: int, cfg: config_t, rank: int }
data:
  temp:
    type: array
    subtype: double
    size: [ '$cfg.loc[0]', '$cfg.loc[1]' ]
plugins:
  PdiPluginHDF5:
    file: sim.h5
    time_step: '$step'
    datasets:
      G_temp:
        size:
          - '$cfg.maxTimeStep'
          - '$cfg.loc[0]'
          - '$cfg.loc[1] * $cfg.proc[1]'
        subsize:
          - 1
          - '$cfg.loc[0]'
          - '$cfg.loc[1]'
        start:
          - '$step'
          - 0
          - '$cfg.loc[1] * $rank'
    map_in:
      temp: G_temp
`

// newRankSystem builds one rank's PDI system with the harness metadata
// exposed.
func newRankSystem(cfg Config, rank int, yaml string) (*pdi.System, error) {
	sys, err := pdi.New(yaml)
	if err != nil {
		return nil, fmt.Errorf("harness: pdi config: %w", err)
	}
	sys.Expose("rank", rank)
	sys.Expose("step", 0)
	sys.Expose("cfg", map[string]any{
		"loc":         []int{cfg.RealLocalX, cfg.RealLocalY},
		"proc":        []int{1, cfg.Ranks},
		"maxTimeStep": cfg.Timesteps,
	})
	return sys, nil
}

// newDeisaRankSystem wires a bridge into a rank's PDI system.
func newDeisaRankSystem(cfg Config, rank int, bridge *core.Bridge) (*pdi.System, error) {
	sys, err := newRankSystem(cfg, rank, deisaConfigYAML)
	if err != nil {
		return nil, err
	}
	if err := sys.AddPlugin(core.NewPdiPluginDeisa(bridge)); err != nil {
		return nil, err
	}
	return sys, nil
}

// newPostHocRankSystem wires the HDF5 plugin (attached to a pre-created
// file, as rank 0 would create it) into a rank's PDI system.
func newPostHocRankSystem(cfg Config, rank int, file *h5.File, fsys *pfs.FS) (*pdi.System, error) {
	sys, err := newRankSystem(cfg, rank, posthocConfigYAML)
	if err != nil {
		return nil, err
	}
	plugin := h5.NewPdiPlugin(fsys)
	if err := sys.AddPlugin(plugin); err != nil {
		return nil, err
	}
	if err := plugin.AttachFile(file); err != nil {
		return nil, err
	}
	return sys, nil
}
