package harness

import (
	"testing"
)

// benchOptions is the Fig-2a-style sweep the pipeline benchmarks run: the
// quick weak-scaling points, enough work to expose the sweep-level
// parallelism without taking minutes per iteration.
func benchOptions(parallel int) Options {
	o := QuickOptions()
	o.Runs = 2
	o.Timesteps = 3
	o.WeakProcs = []int{4, 8}
	o.BlockBytes = 8 * MiB
	o.Parallel = parallel
	return o
}

// BenchmarkPipelineSweep measures the wall-clock of a Fig-2a weak-scaling
// sweep, serial vs pooled. The parallel/serial ns ratio is the sweep
// speedup benchgate checks against BENCH_PIPELINE.json (scaled by the
// recorded core count: on a 1-core runner the ratio is ~1).
func BenchmarkPipelineSweep(b *testing.B) {
	for _, bc := range []struct {
		name     string
		parallel int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			o := benchOptions(bc.parallel)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Fig2a(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineRun measures one end-to-end DEISA3 run — the unit of
// work every sweep fans out — so data-plane regressions (pooling, grid
// caching, scatter staging) show up as ns/op and allocs/op growth here.
func BenchmarkPipelineRun(b *testing.B) {
	for _, sys := range []System{DEISA3, PostHocNewIPCA} {
		b.Run(sys.String(), func(b *testing.B) {
			cfg := Config{
				System:     sys,
				Ranks:      4,
				Workers:    2,
				Timesteps:  3,
				BlockBytes: 8 * MiB,
				Seed:       1,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
