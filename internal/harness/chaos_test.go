package harness

import (
	"reflect"
	"testing"

	"deisago/internal/chaos"
)

// chaosAcceptancePlan returns the seed-7 plan over the acceptance
// scenario shape and asserts it has the compound-failure profile the
// acceptance criteria require: >= 2 worker kills, >= 1 degraded link,
// >= 1 dropped publish.
func chaosAcceptancePlan(t *testing.T, cfg Config) *chaos.Plan {
	t.Helper()
	plan, err := chaos.NewRandomPlan(7, ChaosSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[chaos.Kind]int{}
	for _, e := range plan.Events {
		counts[e.Kind]++
	}
	if counts[chaos.KindKillWorker] < 2 || counts[chaos.KindDegradeLink] < 1 || counts[chaos.KindDropPublish] < 1 {
		t.Fatalf("plan %s lacks the compound-failure profile: %v", plan, counts)
	}
	return plan
}

// TestChaosAcceptance is the PR's acceptance criterion: a seeded plan
// with >= 2 kills, a degraded link, and a dropped publish over the
// Fig-2b pipeline completes bit-identical to the fault-free run with
// the invariant auditor on throughout (zero violations — a violation
// panics), and the same seed reproduces the identical event log twice.
func TestChaosAcceptance(t *testing.T) {
	opts := QuickOptions()
	cfg := ChaosScenarioConfig(opts, 4, 4)
	plan := chaosAcceptancePlan(t, cfg)

	report, err := RunChaos(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Identical {
		t.Fatalf("analytics diverged from the fault-free run under plan %s", plan)
	}
	if len(report.Faulty.ChaosLog) == 0 {
		t.Fatal("no faults executed")
	}
	kills := 0
	for _, e := range report.Faulty.ChaosLog {
		if e.Kind == "kill" {
			kills++
		}
	}
	if kills < 2 {
		t.Fatalf("only %d kills executed, want >= 2: %v", kills, report.Faulty.ChaosLog)
	}
	if report.Faulty.Republished == 0 {
		t.Fatal("kills of publish-holding workers should force republishes")
	}

	// Reproducibility: the identical seed yields the identical event log.
	faulty := cfg
	faulty.ChaosPlan = plan
	again, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Faulty.ChaosLog, again.ChaosLog) {
		t.Fatalf("event log not reproducible:\nfirst:  %v\nsecond: %v",
			report.Faulty.ChaosLog, again.ChaosLog)
	}
	if !identicalAnalytics(report.Faulty, again) {
		t.Fatal("repeated chaos run diverged from itself")
	}
}

// TestChaosMemoryGovernanceAcceptance is the memory-governance
// acceptance criterion: the same seeded scenario run with a per-worker
// memory limit draws an additional memlimit squeeze window, and the
// compound plan (kills + squeeze) still completes bit-identical to the
// fault-free governed run with the auditor on — spills, backpressure
// stalls, and failovers shift timing only, never values. The event log,
// squeeze included, must reproduce across runs.
func TestChaosMemoryGovernanceAcceptance(t *testing.T) {
	opts := QuickOptions()
	cfg := ChaosScenarioConfig(opts, 4, 4)
	cfg.WorkerMemoryLimit = 16 << 20
	plan, err := chaos.NewRandomPlan(7, ChaosSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[chaos.Kind]int{}
	for _, e := range plan.Events {
		counts[e.Kind]++
	}
	if counts[chaos.KindKillWorker] < 2 || counts[chaos.KindMemLimit] != 1 {
		t.Fatalf("plan %s lacks kills + memlimit: %v", plan, counts)
	}

	report, err := RunChaos(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Identical {
		t.Fatalf("analytics diverged under memory pressure, plan %s:\n%s", plan, report.Format())
	}
	squeezes := 0
	for _, e := range report.Faulty.ChaosLog {
		if e.Kind == "memlimit" {
			squeezes++
		}
	}
	if squeezes != 1 {
		t.Fatalf("want exactly 1 memlimit entry in the log, got %d: %v", squeezes, report.Faulty.ChaosLog)
	}

	// Reproducibility: seed and limit together pin plan and log.
	faulty := cfg
	faulty.ChaosPlan = plan
	again, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.Faulty.ChaosLog, again.ChaosLog) {
		t.Fatalf("event log not reproducible:\nfirst:  %v\nsecond: %v",
			report.Faulty.ChaosLog, again.ChaosLog)
	}
	if !identicalAnalytics(report.Faulty, again) {
		t.Fatal("repeated governed chaos run diverged from itself")
	}
}

// TestChaosExplicitPlanDSL runs a hand-written DSL plan end to end.
func TestChaosExplicitPlanDSL(t *testing.T) {
	opts := QuickOptions()
	opts.Timesteps = 4
	cfg := ChaosScenarioConfig(opts, 2, 3)
	plan, err := chaos.ParsePlan("kill:0@0/1;kill:2@1/2;degrade:0-1:3@0-inf;drop:1/3:2;delay:0/2:0.1")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunChaos(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Identical {
		t.Fatalf("results diverged under %s:\n%s", plan, report.Format())
	}
	if report.Faulty.PublishRetries == 0 {
		t.Fatal("dropped publishes should force retries")
	}
}

// TestChaosRejectsDeisa1 ensures fault injection refuses non-external
// systems (kills there lose unrecoverable scattered data by design).
func TestChaosRejectsDeisa1(t *testing.T) {
	opts := QuickOptions()
	cfg := ChaosScenarioConfig(opts, 2, 2)
	cfg.System = DEISA1
	plan, err := chaos.ParsePlan("kill:0@0/1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.ChaosPlan = plan
	if _, err := Run(cfg); err == nil {
		t.Fatal("chaos on DEISA1 accepted")
	}
}
