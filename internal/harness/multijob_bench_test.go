package harness

import (
	"fmt"
	"testing"
)

// Multi-tenant throughput benchmarks. BenchmarkMultiJobThroughput runs
// N identical tenant pipelines end to end on one shared platform;
// BenchmarkSingleJobBaseline is the same pipeline through the pre-PR
// single-job path. BENCH_MULTIJOB.json gates both, plus the
// multijob_not_slower speedup: the 1-tenant multi-job path — admission
// plane, namespacing, tenant heaps and all — must not be slower than
// the single-job driver it generalises.

// benchJobSpecs sizes n identical tenants: each the same 2-rank ×
// 3-step × 1 MiB pipeline the single-job baseline runs.
func benchJobSpecs(n int) []JobSpec {
	out := make([]JobSpec, n)
	for i := range out {
		out[i] = JobSpec{
			Name:       fmt.Sprintf("ten%d", i),
			Weight:     1,
			Ranks:      2,
			Timesteps:  3,
			BlockBytes: 1 * MiB,
		}
	}
	return out
}

func BenchmarkMultiJobThroughput(b *testing.B) {
	for _, n := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("tenants_%d", n), func(b *testing.B) {
			cfg := MultiJobConfig{Jobs: benchJobSpecs(n), Workers: 4, Seed: 7}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunMultiJob(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSingleJobBaseline(b *testing.B) {
	cfg := Config{
		System: DEISA3, Ranks: 2, Workers: 4,
		Timesteps: 3, BlockBytes: 1 * MiB, Seed: 7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
