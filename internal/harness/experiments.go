package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"deisago/internal/vtime"
)

// This file regenerates the paper's figures. Each Fig* function runs the
// required configurations (three runs each, like the paper's "three runs
// of 10 timesteps") and returns a Table whose rows match the figure's
// bars/curves.

// MiB is one mebibyte.
const MiB = 1 << 20

// GiB is one gibibyte.
const GiB = 1 << 30

// Series is one labelled curve/bar group of a figure. Unit, when set,
// names the series' own measurement unit; tables whose series mix units
// (e.g. seconds next to message counts) set it per series instead of
// pretending one Y axis covers all of them.
type Series struct {
	Label string
	Unit  string
	Mean  []float64
	Std   []float64
}

// axisLabel is the row label shown for a series: the label plus its unit
// when the series carries one.
func (s *Series) axisLabel() string {
	if s.Unit == "" {
		return s.Label
	}
	return s.Label + " [" + s.Unit + "]"
}

// Table is the data behind one figure.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-24s", t.XLabel+" \\ "+t.YLabel)
	for _, x := range t.XTicks {
		fmt.Fprintf(&b, "%16s", x)
	}
	b.WriteString("\n")
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%-24s", s.axisLabel())
		for i := range s.Mean {
			cell := fmt.Sprintf("%.3g±%.2g", s.Mean[i], s.Std[i])
			fmt.Fprintf(&b, "%16s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s\n", strings.Join(t.XTicks, ","))
	for _, s := range t.Series {
		b.WriteString(s.axisLabel())
		for i := range s.Mean {
			fmt.Fprintf(&b, ",%g", s.Mean[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Options tunes experiment scale; the zero value reproduces the paper's
// configurations. Smaller settings are used by tests and quick runs.
type Options struct {
	Model Model
	// Runs is the number of repetitions per configuration (paper: 3).
	Runs int
	// Timesteps per run (paper: 10).
	Timesteps int
	// WeakProcs are the weak-scaling process counts (paper: 4..64).
	WeakProcs []int
	// BlockBytes is the weak-scaling per-process block (paper: 128 MiB).
	BlockBytes int64
	// StrongProcs are the strong-scaling process counts (paper: 16..64).
	StrongProcs []int
	// StrongTotalBytes is the strong-scaling problem size (paper: 8 GiB).
	StrongTotalBytes int64
	// Fig5Procs / Fig5BlockBytes configure Experiment II (paper: 128
	// processes, 1 GiB each).
	Fig5Procs      int
	Fig5BlockBytes int64
	// Parallel caps how many independent simulations the sweep helpers
	// run concurrently (0 = GOMAXPROCS, 1 = serial). Each run builds its
	// own machine, fabric, metrics registry and clocks, and every result
	// lands in a slot indexed by (system, point, run), so sweep outputs
	// are byte-identical for any setting.
	Parallel int
}

// DefaultOptions returns the paper's experiment scales.
func DefaultOptions() Options {
	return Options{
		Model:            DefaultModel(),
		Runs:             3,
		Timesteps:        10,
		WeakProcs:        []int{4, 8, 16, 32, 64},
		BlockBytes:       128 * MiB,
		StrongProcs:      []int{16, 32, 64},
		StrongTotalBytes: 8 * GiB,
		Fig5Procs:        128,
		Fig5BlockBytes:   1 * GiB,
	}
}

// QuickOptions returns a reduced scale for tests and smoke runs.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Runs = 2
	o.Timesteps = 4
	o.WeakProcs = []int{4, 8, 16}
	o.BlockBytes = 16 * MiB
	o.StrongProcs = []int{8, 16}
	o.StrongTotalBytes = 256 * MiB
	o.Fig5Procs = 32
	o.Fig5BlockBytes = 64 * MiB
	return o
}

func (o *Options) defaults() {
	if o.Runs == 0 {
		p := o.Parallel
		*o = DefaultOptions()
		o.Parallel = p
	}
	if o.Model.CoresPerNode == 0 {
		o.Model = DefaultModel()
	}
}

// parallel resolves the Parallel option to a concrete worker count.
func (o *Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runPool executes n indexed jobs on at most parallel goroutines and
// returns the lowest-index error (matching what a serial loop would have
// reported). Jobs communicate only through slots they own — pre-indexed
// result arrays — so sweeps produce identical output for any pool size.
func runPool(parallel, n int, job func(i int) error) error {
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runRepeats executes a configuration Runs times with distinct seeds
// (concurrently, up to Options.Parallel) and returns the results in run
// order.
func runRepeats(o Options, cfg Config) ([]*Result, error) {
	out := make([]*Result, o.Runs)
	err := runPool(o.parallel(), o.Runs, func(run int) error {
		c := cfg
		c.Seed = int64(run*1009 + 1)
		c.Model = o.Model
		c.Timesteps = o.Timesteps
		res, err := Run(c)
		if err != nil {
			return fmt.Errorf("%s P=%d W=%d run %d: %w", c.System, c.Ranks, c.Workers, run, err)
		}
		out[run] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func meanStd(vals []float64) (float64, float64) {
	st := vtime.Summarize(vals)
	return st.Mean, st.Std
}

// collect runs all requested systems over a sweep of (ranks, workers)
// pairs and returns results[system][point][run]. The full (system, point,
// run) cross product is flattened into one job list and executed on a
// bounded pool; runs are independent simulations, and each writes its
// pre-assigned slot, so the table is identical to serial execution.
func collect(o Options, systems []System, points [][2]int, blockBytes func(procs int) int64) (map[System][][]*Result, error) {
	out := map[System][][]*Result{}
	type job struct {
		sys     System
		pt, run int
	}
	jobs := make([]job, 0, len(systems)*len(points)*o.Runs)
	for _, sys := range systems {
		per := make([][]*Result, len(points))
		for i := range points {
			per[i] = make([]*Result, o.Runs)
			for run := 0; run < o.Runs; run++ {
				jobs = append(jobs, job{sys, i, run})
			}
		}
		out[sys] = per
	}
	err := runPool(o.parallel(), len(jobs), func(k int) error {
		j := jobs[k]
		pt := points[j.pt]
		cfg := Config{
			System:     j.sys,
			Ranks:      pt[0],
			Workers:    pt[1],
			Timesteps:  o.Timesteps,
			BlockBytes: blockBytes(pt[0]),
			Seed:       int64(j.run*1009 + 1),
			Model:      o.Model,
		}
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("%s P=%d W=%d run %d: %w", cfg.System, cfg.Ranks, cfg.Workers, j.run, err)
		}
		out[j.sys][j.pt][j.run] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func series(label string, points int, f func(point int) []float64) Series {
	s := Series{Label: label}
	for p := 0; p < points; p++ {
		m, sd := meanStd(f(p))
		s.Mean = append(s.Mean, m)
		s.Std = append(s.Std, sd)
	}
	return s
}

func weakPoints(o Options) [][2]int {
	pts := make([][2]int, len(o.WeakProcs))
	for i, p := range o.WeakProcs {
		w := p / 2
		if w < 1 {
			w = 1
		}
		pts[i] = [2]int{p, w}
	}
	return pts
}

func ticks(points [][2]int, idx int) []string {
	out := make([]string, len(points))
	for i, p := range points {
		out[i] = fmt.Sprintf("%d", p[idx])
	}
	return out
}

func pluck(results [][]*Result, point int, f func(*Result) float64) []float64 {
	out := make([]float64, 0, len(results[point]))
	for _, r := range results[point] {
		out = append(out, f(r))
	}
	return out
}

// Fig2a reproduces Figure 2a: weak-scaling per-iteration simulation,
// write, and communication times.
func Fig2a(o Options) (*Table, error) {
	o.defaults()
	pts := weakPoints(o)
	res, err := collect(o, []System{PostHocNewIPCA, DEISA1, DEISA3}, pts,
		func(int) int64 { return o.BlockBytes })
	if err != nil {
		return nil, err
	}
	n := len(pts)
	return &Table{
		Title:  fmt.Sprintf("Fig 2a — weak scaling, simulation side, %d MiB per process (s/iteration)", o.BlockBytes/MiB),
		XLabel: "Processes",
		YLabel: "s/iter",
		XTicks: ticks(pts, 0),
		Series: []Series{
			series("Simulation", n, func(p int) []float64 {
				return pluck(res[DEISA3], p, func(r *Result) float64 { return r.SimStepMean })
			}),
			series("Post Hoc Write", n, func(p int) []float64 {
				return pluck(res[PostHocNewIPCA], p, func(r *Result) float64 { return r.CommMean })
			}),
			series("DEISA1 Communication", n, func(p int) []float64 {
				return pluck(res[DEISA1], p, func(r *Result) float64 { return r.CommMean })
			}),
			series("DEISA3 Communication", n, func(p int) []float64 {
				return pluck(res[DEISA3], p, func(r *Result) float64 { return r.CommMean })
			}),
		},
	}, nil
}

// Fig2b reproduces Figure 2b: weak-scaling analytics durations.
func Fig2b(o Options) (*Table, error) {
	o.defaults()
	pts := weakPoints(o)
	res, err := collect(o, []System{PostHocOldIPCA, PostHocNewIPCA, DEISA1, DEISA3}, pts,
		func(int) int64 { return o.BlockBytes })
	if err != nil {
		return nil, err
	}
	n := len(pts)
	mk := func(label string, sys System) Series {
		return series(label, n, func(p int) []float64 {
			return pluck(res[sys], p, func(r *Result) float64 { return r.AnalyticsTime })
		})
	}
	return &Table{
		Title:  fmt.Sprintf("Fig 2b — weak scaling, analytics, %d MiB per process (s)", o.BlockBytes/MiB),
		XLabel: "Workers",
		YLabel: "s",
		XTicks: ticks(pts, 1),
		Series: []Series{
			mk("Post hoc IPCA", PostHocOldIPCA),
			mk("Post hoc New IPCA", PostHocNewIPCA),
			mk("DEISA1 IPCA", DEISA1),
			mk("DEISA3 New IPCA", DEISA3),
		},
	}, nil
}

// Fig3a reproduces Figure 3a: per-process simulation-side bandwidth.
func Fig3a(o Options) (*Table, error) {
	o.defaults()
	pts := weakPoints(o)
	res, err := collect(o, []System{PostHocNewIPCA, DEISA1, DEISA3}, pts,
		func(int) int64 { return o.BlockBytes })
	if err != nil {
		return nil, err
	}
	n := len(pts)
	mk := func(label string, sys System) Series {
		return series(label, n, func(p int) []float64 {
			return pluck(res[sys], p, func(r *Result) float64 { return r.SimBandwidthMiBps() })
		})
	}
	return &Table{
		Title:  "Fig 3a — weak scaling, communications and I/Os (MiB/s per process)",
		XLabel: "Processes",
		YLabel: "MiB/s",
		XTicks: ticks(pts, 0),
		Series: []Series{
			mk("Post Hoc Write", PostHocNewIPCA),
			mk("DEISA1 Communication", DEISA1),
			mk("DEISA3 Communication", DEISA3),
		},
	}, nil
}

// Fig3b reproduces Figure 3b: analytics bandwidth.
func Fig3b(o Options) (*Table, error) {
	o.defaults()
	pts := weakPoints(o)
	res, err := collect(o, []System{PostHocOldIPCA, PostHocNewIPCA, DEISA1, DEISA3}, pts,
		func(int) int64 { return o.BlockBytes })
	if err != nil {
		return nil, err
	}
	n := len(pts)
	mk := func(label string, sys System) Series {
		return series(label, n, func(p int) []float64 {
			return pluck(res[sys], p, func(r *Result) float64 { return r.AnalyticsBandwidthMiBps() })
		})
	}
	return &Table{
		Title:  "Fig 3b — weak scaling, analytics bandwidth (MiB/s)",
		XLabel: "Workers",
		YLabel: "MiB/s",
		XTicks: ticks(pts, 1),
		Series: []Series{
			mk("Post hoc IPCA", PostHocOldIPCA),
			mk("Post hoc New IPCA", PostHocNewIPCA),
			mk("DEISA1 IPCA", DEISA1),
			mk("DEISA3 New IPCA", DEISA3),
		},
	}, nil
}

func strongPoints(o Options) [][2]int {
	pts := make([][2]int, len(o.StrongProcs))
	for i, p := range o.StrongProcs {
		w := p / 2
		if w < 1 {
			w = 1
		}
		pts[i] = [2]int{p, w}
	}
	return pts
}

// Fig4a reproduces Figure 4a: strong-scaling simulation-side cost in
// core·hours for a fixed problem size.
func Fig4a(o Options) (*Table, error) {
	o.defaults()
	pts := strongPoints(o)
	block := func(procs int) int64 { return o.StrongTotalBytes / int64(procs) }
	res, err := collect(o, []System{PostHocNewIPCA, DEISA1, DEISA3}, pts, block)
	if err != nil {
		return nil, err
	}
	n := len(pts)
	return &Table{
		Title:  fmt.Sprintf("Fig 4a — strong scaling, %d GiB problem, simulation side (core·hours)", o.StrongTotalBytes/GiB),
		XLabel: "Processes",
		YLabel: "core·h",
		XTicks: ticks(pts, 0),
		Series: []Series{
			series("Simulation", n, func(p int) []float64 {
				return pluck(res[DEISA3], p, func(r *Result) float64 { return r.SimComputeCostCoreHours() })
			}),
			series("Post Hoc Write", n, func(p int) []float64 {
				return pluck(res[PostHocNewIPCA], p, func(r *Result) float64 { return r.SimCommCostCoreHours() })
			}),
			series("DEISA1 Communication", n, func(p int) []float64 {
				return pluck(res[DEISA1], p, func(r *Result) float64 { return r.SimCommCostCoreHours() })
			}),
			series("DEISA3 Communication", n, func(p int) []float64 {
				return pluck(res[DEISA3], p, func(r *Result) float64 { return r.SimCommCostCoreHours() })
			}),
		},
	}, nil
}

// Fig4b reproduces Figure 4b: strong-scaling analytics cost in
// core·hours.
func Fig4b(o Options) (*Table, error) {
	o.defaults()
	pts := strongPoints(o)
	block := func(procs int) int64 { return o.StrongTotalBytes / int64(procs) }
	res, err := collect(o, []System{PostHocOldIPCA, PostHocNewIPCA, DEISA1, DEISA3}, pts, block)
	if err != nil {
		return nil, err
	}
	n := len(pts)
	mk := func(label string, sys System) Series {
		return series(label, n, func(p int) []float64 {
			return pluck(res[sys], p, func(r *Result) float64 { return r.AnalyticsCostCoreHours() })
		})
	}
	return &Table{
		Title:  fmt.Sprintf("Fig 4b — strong scaling, %d GiB problem, analytics (core·hours)", o.StrongTotalBytes/GiB),
		XLabel: "Workers",
		YLabel: "core·h",
		XTicks: ticks(pts, 1),
		Series: []Series{
			mk("Post hoc IPCA", PostHocOldIPCA),
			mk("Post hoc New IPCA", PostHocNewIPCA),
			mk("DEISA1 IPCA", DEISA1),
			mk("DEISA3 New IPCA", DEISA3),
		},
	}, nil
}

// Fig5Run is one panel of Figure 5: per-rank mean and std of the
// communication time for one system and one run (allocation).
type Fig5Run struct {
	System   System
	Run      int
	Mean     []float64 // per rank
	Std      []float64 // per rank
	Switches int       // leaf switches spanned by the allocation
}

// Fig5 reproduces Figure 5 (Experiment II): per-rank communication-time
// variability for DEISA1/2/3 across independent runs.
func Fig5(o Options) ([]Fig5Run, error) {
	o.defaults()
	systems := []System{DEISA1, DEISA2, DEISA3}
	out := make([]Fig5Run, len(systems)*o.Runs)
	err := runPool(o.parallel(), len(out), func(i int) error {
		sys, run := systems[i/o.Runs], i%o.Runs
		cfg := Config{
			System:     sys,
			Ranks:      o.Fig5Procs,
			Workers:    o.Fig5Procs / 2,
			Timesteps:  o.Timesteps,
			BlockBytes: o.Fig5BlockBytes,
			Seed:       int64(run*271 + 13),
			Model:      o.Model,
		}
		res, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("fig5 %s run %d: %w", sys, run, err)
		}
		out[i] = Fig5Run{
			System: sys,
			Run:    run,
			Mean:   res.PerRankCommMean,
			Std:    res.PerRankCommStd,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatFig5 renders the Figure 5 panels as a compact summary: per-panel
// mean of per-rank means, spread across ranks, and the average per-rank
// std (the paper's "red band").
func FormatFig5(runs []Fig5Run) string {
	var b strings.Builder
	b.WriteString("Fig 5 — per-rank communication time (s): mean over ranks [min..max], avg per-rank std\n")
	for _, r := range runs {
		ms := vtime.Summarize(r.Mean)
		ss := vtime.Summarize(r.Std)
		fmt.Fprintf(&b, "%-8s run %d:  mean %.3f  [%.3f .. %.3f]  band %.4f\n",
			r.System, r.Run+1, ms.Mean, ms.Min, ms.Max, ss.Mean)
	}
	return b.String()
}

// Headline holds the paper's §1/§5 summary ratios.
type Headline struct {
	SimSpeedupVsDeisa1       float64 // DEISA1 comm / DEISA3 comm
	AnalyticsSpeedupVsDeisa1 float64 // DEISA1 analytics / DEISA3 analytics
	CostRatioVsPostHocWrite  float64 // post hoc write cost / DEISA3 comm cost per iteration
	AnalyticsCostVsPostHoc   float64 // post hoc old-IPCA analytics cost / DEISA3 cost
}

// ComputeHeadline measures the headline ratios at the largest weak- and
// strong-scaling configurations.
func ComputeHeadline(o Options) (*Headline, error) {
	o.defaults()
	procs := o.WeakProcs[len(o.WeakProcs)-1]
	pts := [][2]int{{procs, procs / 2}}
	res, err := collect(o, []System{PostHocOldIPCA, PostHocNewIPCA, DEISA1, DEISA3}, pts,
		func(int) int64 { return o.BlockBytes })
	if err != nil {
		return nil, err
	}
	h := &Headline{}
	comm1, _ := meanStd(pluck(res[DEISA1], 0, func(r *Result) float64 { return r.CommMean }))
	comm3, _ := meanStd(pluck(res[DEISA3], 0, func(r *Result) float64 { return r.CommMean }))
	h.SimSpeedupVsDeisa1 = comm1 / comm3
	a1, _ := meanStd(pluck(res[DEISA1], 0, func(r *Result) float64 { return r.AnalyticsTime }))
	a3, _ := meanStd(pluck(res[DEISA3], 0, func(r *Result) float64 { return r.AnalyticsTime }))
	h.AnalyticsSpeedupVsDeisa1 = a1 / a3
	wNew, _ := meanStd(pluck(res[PostHocNewIPCA], 0, func(r *Result) float64 { return r.SimCommCostCoreHours() }))
	c3, _ := meanStd(pluck(res[DEISA3], 0, func(r *Result) float64 { return r.SimCommCostCoreHours() }))
	h.CostRatioVsPostHocWrite = wNew / c3
	aOld, _ := meanStd(pluck(res[PostHocOldIPCA], 0, func(r *Result) float64 { return r.AnalyticsCostCoreHours() }))
	ac3, _ := meanStd(pluck(res[DEISA3], 0, func(r *Result) float64 { return r.AnalyticsCostCoreHours() }))
	h.AnalyticsCostVsPostHoc = aOld / ac3
	return h, nil
}

// Format renders the headline ratios.
func (h *Headline) Format() string {
	return fmt.Sprintf(`Headline ratios (largest weak-scaling configuration)
  simulation-side coupling:  DEISA1 / DEISA3           = x%.1f   (paper: up to x7)
  analytics:                 DEISA1 / DEISA3           = x%.1f   (paper: up to x3)
  coupling cost:             post hoc write / DEISA3   = x%.1f   (paper: x18)
  analytics cost:            post hoc IPCA / DEISA3    = x%.1f   (paper: x3.5)
`, h.SimSpeedupVsDeisa1, h.AnalyticsSpeedupVsDeisa1, h.CostRatioVsPostHocWrite, h.AnalyticsCostVsPostHoc)
}

// MetadataCounts verifies §2.1's message-count claim on real runs:
// DEISA1 sends 2·T·R coordination messages plus heartbeats and metadata;
// the external-task design sends a constant number plus R contract reads.
type MetadataCounts struct {
	Timesteps, Ranks int
	DEISA1Queue      int64
	DEISA1Meta       int64
	DEISA1Heartbeats int64
	DEISA3Variable   int64
	DEISA3External   int64
}

// ComputeMetadataCounts runs both protocols (concurrently, when the pool
// allows) and snapshots the counters.
func ComputeMetadataCounts(o Options, ranks, workers int) (*MetadataCounts, error) {
	o.defaults()
	systems := [2]System{DEISA1, DEISA3}
	var results [2]*Result
	err := runPool(o.parallel(), 2, func(i int) error {
		cfg := Config{
			System: systems[i], Ranks: ranks, Workers: workers,
			Timesteps: o.Timesteps, BlockBytes: o.BlockBytes, Seed: 1, Model: o.Model,
		}
		r, err := Run(cfg)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	r1, r3 := results[0], results[1]
	return &MetadataCounts{
		Timesteps:        o.Timesteps,
		Ranks:            ranks,
		DEISA1Queue:      r1.Counters.QueueOps,
		DEISA1Meta:       r1.Counters.MetadataMsgs,
		DEISA1Heartbeats: r1.Counters.Heartbeats,
		DEISA3Variable:   r3.Counters.VariableOps,
		DEISA3External:   r3.Counters.ExternalCreated,
	}, nil
}

// Format renders the metadata comparison.
func (m *MetadataCounts) Format() string {
	return fmt.Sprintf(`Metadata messages (T=%d timesteps, R=%d ranks)
  DEISA1: queue ops           = %d  (2*T*R = %d)
          metadata refreshes  = %d  (T*R  = %d)
          heartbeats          = %d
  DEISA3: variable ops        = %d  (3+R  = %d), independent of T
          external tasks      = %d  (created once, T*R = %d)
`, m.Timesteps, m.Ranks,
		m.DEISA1Queue, 2*m.Timesteps*m.Ranks,
		m.DEISA1Meta, m.Timesteps*m.Ranks,
		m.DEISA1Heartbeats,
		m.DEISA3Variable, 3+m.Ranks,
		m.DEISA3External, m.Timesteps*m.Ranks)
}
