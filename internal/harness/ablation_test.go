package harness

import (
	"math"
	"testing"

	"deisago/internal/ndarray"
)

func ablationOptions() Options {
	o := testOptions()
	o.WeakProcs = []int{8}
	o.BlockBytes = 32 * MiB
	return o
}

func TestAblationHeartbeat(t *testing.T) {
	o := ablationOptions()
	tab, err := AblationHeartbeat(o, []float64{0.5, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.XTicks) != 2 || tab.XTicks[1] != "inf" {
		t.Fatalf("ticks = %v", tab.XTicks)
	}
	beats := seriesByLabel(t, tab, "Heartbeat msgs")
	if beats.Mean[0] <= 0 {
		t.Fatalf("0.5 s interval sent no heartbeats: %v", beats.Mean)
	}
	if beats.Mean[1] != 0 {
		t.Fatalf("infinite interval sent heartbeats: %v", beats.Mean)
	}
	comm := seriesByLabel(t, tab, "Coupling s/iter")
	// Heartbeats are cheap at this scale; disabling them must not raise
	// the coupling time beyond jitter noise.
	if comm.Mean[1] > comm.Mean[0]*1.02 {
		t.Fatalf("disabling heartbeats raised coupling time: %v", comm.Mean)
	}
}

func TestAblationMetadata(t *testing.T) {
	o := ablationOptions()
	tab, err := AblationMetadata(o, []float64{0, 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	d1 := seriesByLabel(t, tab, "DEISA1 coupling s/iter")
	d3 := seriesByLabel(t, tab, "DEISA3 reference")
	// With no metadata cost DEISA1 approaches DEISA3.
	if d1.Mean[0] > d3.Mean[0]*1.5 {
		t.Fatalf("zero-cost DEISA1 (%v) far above DEISA3 (%v)", d1.Mean[0], d3.Mean[0])
	}
	// With the calibrated cost it must clearly exceed it.
	if d1.Mean[1] <= d1.Mean[0] {
		t.Fatalf("metadata cost had no effect: %v", d1.Mean)
	}
}

func TestAblationContract(t *testing.T) {
	o := ablationOptions()
	tab, err := AblationContract(o, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	sent := seriesByLabel(t, tab, "Blocks shipped")
	traffic := seriesByLabel(t, tab, "Fabric GiB")
	// Half the selection ships half the blocks and less traffic.
	if sent.Mean[0] >= sent.Mean[1] {
		t.Fatalf("selection did not reduce blocks: %v", sent.Mean)
	}
	if math.Abs(sent.Mean[0]*2-sent.Mean[1]) > 1e-9 {
		t.Fatalf("half selection should ship half the blocks: %v", sent.Mean)
	}
	if traffic.Mean[0] >= traffic.Mean[1] {
		t.Fatalf("selection did not reduce traffic: %v", traffic.Mean)
	}
}

func TestAblationPlacement(t *testing.T) {
	o := ablationOptions()
	tab, err := AblationPlacement(o)
	if err != nil {
		t.Fatal(err)
	}
	analytics := seriesByLabel(t, tab, "Analytics s")
	if analytics.Mean[0] <= 0 || analytics.Mean[1] <= 0 {
		t.Fatalf("bad analytics times: %v", analytics.Mean)
	}
	// Scattered placement must not beat preselected placement (it breaks
	// chain locality); allow jitter-level equality.
	if analytics.Mean[1] < analytics.Mean[0]*0.95 {
		t.Fatalf("scattered placement (%v) beat preselected (%v)",
			analytics.Mean[1], analytics.Mean[0])
	}
}

func TestAblationFuse(t *testing.T) {
	o := ablationOptions()
	tab, err := AblationFuse(o)
	if err != nil {
		t.Fatal(err)
	}
	tasks := seriesByLabel(t, tab, "Tasks registered")
	if tasks.Mean[1] >= tasks.Mean[0] {
		t.Fatalf("fusion did not reduce tasks: %v", tasks.Mean)
	}
}

func TestFusedRunMatchesUnfused(t *testing.T) {
	base := smallConfig(DEISA3)
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.FuseGraphs = true
	fused, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !ndarray.AllClose(plain.Components, fused.Components, 1e-12) {
		t.Fatal("fusion changed the analytics result")
	}
	if fused.Counters.TasksRegistered >= plain.Counters.TasksRegistered {
		t.Fatalf("fusion did not reduce tasks: %d vs %d",
			fused.Counters.TasksRegistered, plain.Counters.TasksRegistered)
	}
}
