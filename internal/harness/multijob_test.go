package harness

import (
	"errors"
	"strings"
	"testing"

	"deisago/internal/chaos"
	"deisago/internal/multijob"
)

// mjJobs builds a small mixed workload: n jobs of 2 ranks × 3 steps.
func mjJobs(n int) []JobSpec {
	out := make([]JobSpec, n)
	for i := range out {
		out[i] = JobSpec{
			Name:       string(rune('a'+i)) + "job",
			Weight:     1,
			Ranks:      2,
			Timesteps:  3,
			BlockBytes: 1 * MiB,
		}
	}
	return out
}

func mjConfig(n int) MultiJobConfig {
	return MultiJobConfig{
		Jobs:    mjJobs(n),
		Workers: 2,
		Seed:    7,
	}
}

func TestMultiJobSmoke(t *testing.T) {
	res, err := RunMultiJob(mjConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("got %d job results", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Fingerprint == "" || j.Components == nil || len(j.SingularValues) == 0 {
			t.Fatalf("job %q incomplete: %+v", j.Name, j)
		}
		if want := int64(2 * 3); j.BlocksSent != want {
			t.Fatalf("job %q sent %d blocks, want %d", j.Name, j.BlocksSent, want)
		}
	}
	// Tenants: default + one per job, in registration order.
	if len(res.Tenants) != 3 || res.Tenants[0].Name != "default" ||
		res.Tenants[1].Name != "ajob" || res.Tenants[2].Name != "bjob" {
		t.Fatalf("tenants = %+v", res.Tenants)
	}
	if res.Jain <= 0 || res.Jain > 1 {
		t.Fatalf("Jain = %g", res.Jain)
	}
	if res.Admission.Admitted != 2 || res.Admission.Running != 0 {
		t.Fatalf("admission stats = %+v", res.Admission)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

// TestMultiJobDeterminism: per-tenant fingerprints are bit-identical
// across repeated runs AND between serial (MaxConcurrent=1) and fully
// concurrent admission — the namespaced pipelines are dataflow
// independent, so interleaving cannot leak between tenants.
func TestMultiJobDeterminism(t *testing.T) {
	base := mjConfig(3)
	serial := base
	serial.MaxConcurrent = 1
	fps := map[string][]string{}
	for _, cfg := range []MultiJobConfig{base, base, serial} {
		res, err := RunMultiJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range res.Jobs {
			fps[j.Name] = append(fps[j.Name], j.Fingerprint)
		}
	}
	for name, f := range fps {
		if len(f) != 3 || f[0] != f[1] || f[0] != f[2] {
			t.Fatalf("job %q fingerprints diverge: %v", name, f)
		}
	}
}

// TestMultiJobKilljobSurvivorsBitIdentical: cancelling one tenant must
// not perturb any other tenant's outputs.
func TestMultiJobKilljobSurvivorsBitIdentical(t *testing.T) {
	clean, err := RunMultiJob(mjConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := chaos.ParsePlan("killjob:bjob@1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mjConfig(3)
	cfg.ChaosPlan = plan
	chaotic, err := RunMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ajob", "cjob"} {
		if a, b := clean.Job(name).Fingerprint, chaotic.Job(name).Fingerprint; a != b {
			t.Fatalf("survivor %q fingerprint changed under killjob: %s vs %s", name, a, b)
		}
	}
	killed := chaotic.Job("bjob")
	if !killed.Killed || killed.KilledStep != 1 {
		t.Fatalf("bjob not reported killed at step 1: %+v", killed)
	}
	// Steps 1,2 of bjob's 3 are filtered at the bridges: 2 ranks × 2 steps.
	if killed.BlocksSent != 2 || killed.BlocksSkipped != 4 {
		t.Fatalf("bjob sent/skipped = %d/%d, want 2/4", killed.BlocksSent, killed.BlocksSkipped)
	}
	if killed.Components == nil {
		t.Fatal("bjob consumed step 0 but has no components")
	}
	if len(chaotic.ChaosLog) != 1 || chaotic.ChaosLog[0].Kind != "killjob" {
		t.Fatalf("chaos log = %+v", chaotic.ChaosLog)
	}
}

// TestMultiJobKilljobAtStepZero: a tenant killed before any data gets an
// empty contract — its bridges filter everything and it produces no
// analytics values; the rest of the platform is unaffected.
func TestMultiJobKilljobAtStepZero(t *testing.T) {
	plan, err := chaos.ParsePlan("killjob:ajob@0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mjConfig(2)
	cfg.ChaosPlan = plan
	res, err := RunMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	killed := res.Job("ajob")
	if !killed.Killed || killed.Components != nil || killed.BlocksSent != 0 {
		t.Fatalf("killed-at-zero job = %+v", killed)
	}
	if killed.BlocksSkipped != 6 {
		t.Fatalf("skipped %d blocks, want all 6", killed.BlocksSkipped)
	}
	if res.Job("bjob").Components == nil {
		t.Fatal("surviving job has no results")
	}
}

func TestMultiJobAdmissionReject(t *testing.T) {
	cfg := mjConfig(2)
	cfg.TenantBudget = 1 // every job estimate exceeds this
	if _, err := RunMultiJob(cfg); !errors.Is(err, multijob.ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", err)
	}
}

func TestMultiJobValidation(t *testing.T) {
	dup := mjConfig(2)
	dup.Jobs[1].Name = dup.Jobs[0].Name
	if _, err := RunMultiJob(dup); err == nil {
		t.Fatal("duplicate job names accepted")
	}
	slash := mjConfig(1)
	slash.Jobs[0].Name = "a/b"
	if _, err := RunMultiJob(slash); err == nil {
		t.Fatal("slash in job name accepted")
	}
	unknown := mjConfig(1)
	plan, err := chaos.ParsePlan("killjob:ghost@1")
	if err != nil {
		t.Fatal(err)
	}
	unknown.ChaosPlan = plan
	if _, err := RunMultiJob(unknown); err == nil ||
		!strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("unknown killjob tenant err = %v", err)
	}
	kills := mjConfig(1)
	plan, err = chaos.ParsePlan("kill:0@0/1")
	if err != nil {
		t.Fatal(err)
	}
	kills.ChaosPlan = plan
	if _, err := RunMultiJob(kills); err == nil ||
		!strings.Contains(err.Error(), "worker kills") {
		t.Fatalf("worker-kill plan err = %v", err)
	}
}

// TestMultiJobWeightedNoStarvation: under an 8:1 weight ratio on a
// single contended worker, the weight-1 tenant still finishes, and
// neither tenant's completion lags the other unboundedly (fair-share
// pops interleave every contended drain; the sharp interleaving checks
// live in the dask package's tenant tests).
func TestMultiJobWeightedNoStarvation(t *testing.T) {
	cfg := MultiJobConfig{
		Jobs: []JobSpec{
			{Name: "heavy", Weight: 8, Ranks: 2, Timesteps: 4, BlockBytes: 4 * MiB},
			{Name: "light", Weight: 1, Ranks: 2, Timesteps: 4, BlockBytes: 4 * MiB},
		},
		Workers: 1, // single worker: every pop is contended
		Seed:    11,
	}
	res, err := RunMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy, light := res.Job("heavy"), res.Job("light")
	if heavy.AnalyticsTime <= 0 || light.AnalyticsTime <= 0 {
		t.Fatalf("jobs did not finish: heavy %g light %g", heavy.AnalyticsTime, light.AnalyticsTime)
	}
	ratio := heavy.AnalyticsTime / light.AnalyticsTime
	if ratio > 4 || ratio < 0.25 {
		t.Fatalf("completion skew %g (heavy %g, light %g): a tenant starved", ratio, heavy.AnalyticsTime, light.AnalyticsTime)
	}
}

// TestMultiJobMixedSizes: jobs of different shapes coexist.
func TestMultiJobMixedSizes(t *testing.T) {
	cfg := MultiJobConfig{
		Jobs: []JobSpec{
			{Name: "wide", Weight: 2, Ranks: 4, Timesteps: 2, BlockBytes: 2 * MiB},
			{Name: "long", Weight: 1, Ranks: 1, Timesteps: 6, BlockBytes: 1 * MiB},
		},
		Workers:           2,
		Seed:              3,
		WorkerMemoryLimit: 64 * MiB,
		MaxConcurrent:     2,
		EnableAudit:       true,
	}
	res, err := RunMultiJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Job("wide").BlocksSent != 8 || res.Job("long").BlocksSent != 6 {
		t.Fatalf("blocks sent = %d/%d, want 8/6",
			res.Job("wide").BlocksSent, res.Job("long").BlocksSent)
	}
	// Tenant metrics carry the tenant label.
	found := false
	for _, c := range res.Metrics.Counters {
		if strings.Contains(c.ID, "tenant_pops") && strings.Contains(c.ID, "wide") {
			found = true
		}
	}
	if !found {
		t.Fatal("no tenant-labelled scheduler metrics in snapshot")
	}
}
