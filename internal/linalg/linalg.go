// Package linalg provides the dense linear algebra needed by the ML stack:
// Householder QR and a one-sided Jacobi singular value decomposition. In
// the original system this role is filled by LAPACK via NumPy/scikit-learn;
// here it is implemented from scratch on ndarray so the whole repository
// is stdlib-only.
package linalg

import (
	"fmt"
	"math"
	"sync/atomic"

	"deisago/internal/ndarray"
)

// jacobiRotate applies one one-sided Jacobi rotation to columns p and q
// of the m×n matrix ud (and the matching rows of the n×n accumulator
// vd), returning whether a rotation was performed. It reads and writes
// only those two columns, so rotations on disjoint pairs commute exactly
// and may run concurrently.
func jacobiRotate(ud, vd []float64, m, n, p, q int, tol float64) bool {
	var app, aqq, apq float64
	for i := 0; i < m; i++ {
		x := ud[i*n+p]
		y := ud[i*n+q]
		app += x * x
		aqq += y * y
		apq += x * y
	}
	if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
		return false
	}
	// Jacobi rotation that zeroes the (p,q) entry of AᵀA.
	tau := (aqq - app) / (2 * apq)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	sn := c * t
	for i := 0; i < m; i++ {
		x := ud[i*n+p]
		y := ud[i*n+q]
		ud[i*n+p] = c*x - sn*y
		ud[i*n+q] = sn*x + c*y
	}
	for i := 0; i < n; i++ {
		x := vd[i*n+p]
		y := vd[i*n+q]
		vd[i*n+p] = c*x - sn*y
		vd[i*n+q] = sn*x + c*y
	}
	return true
}

// Eye returns the n×n identity matrix.
func Eye(n int) *ndarray.Array {
	a := ndarray.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(1, i, i)
	}
	return a
}

// QR computes the reduced QR factorization of an m×n matrix with m >= n:
// A = Q·R with Q m×n having orthonormal columns and R n×n upper
// triangular. The diagonal of R is non-negative.
//
// Reflectors are applied with row-major slice kernels: w = Hᵀv is
// accumulated by sweeping matrix rows (each row segment is a contiguous
// slice), then the rank-1 update subtracts v[i]·w from each row. This
// replaces the seed's per-element At/Set column walks and keeps the
// entire factorization allocation-light (one reflector and one work
// vector reused across columns).
func QR(a *ndarray.Array) (q, r *ndarray.Array) {
	if a.NDim() != 2 {
		panic("linalg: QR requires a 2-d array")
	}
	m, n := a.Dim(0), a.Dim(1)
	if m < n {
		panic(fmt.Sprintf("linalg: QR requires m >= n, got %dx%d", m, n))
	}
	R := a.Copy()
	rd := R.Data() // m×n row-major
	// Accumulate Q as product of reflectors applied to identity (m×m is
	// wasteful; keep m×n panel and apply reflectors from the left in
	// reverse to the first n columns of I).
	vs := make([][]float64, 0, n)
	vnorms := make([]float64, 0, n)
	w := make([]float64, n) // reflector application workspace
	for k := 0; k < n; k++ {
		// Build reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			x := rd[i*n+k]
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			vnorms = append(vnorms, 0)
			continue
		}
		v := make([]float64, m)
		alpha := -norm
		if rd[k*n+k] < 0 {
			alpha = norm
		}
		for i := k; i < m; i++ {
			v[i] = rd[i*n+k]
		}
		v[k] -= alpha
		var vnorm float64
		for i := k; i < m; i++ {
			vnorm += v[i] * v[i]
		}
		if vnorm == 0 {
			vs = append(vs, nil)
			vnorms = append(vnorms, 0)
			continue
		}
		// Apply H = I - 2 v vᵀ / (vᵀv) to R's trailing columns:
		// w[j] = Σ_i v[i]·R[i,j], then R[i,j] -= (2 v[i]/vᵀv)·w[j].
		applyReflector(rd, v, w, vnorm, k, m, n, k)
		vs = append(vs, v)
		vnorms = append(vnorms, vnorm)
	}
	// Q = H_0 H_1 ... H_{n-1} · I_{m×n}.
	Q := ndarray.New(m, n)
	qd := Q.Data()
	for j := 0; j < n; j++ {
		qd[j*n+j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		if vs[k] == nil {
			continue
		}
		applyReflector(qd, vs[k], w, vnorms[k], k, m, n, 0)
	}
	// Zero the strictly-lower part of R and truncate to n×n.
	Rn := ndarray.New(n, n)
	rnd := Rn.Data()
	for i := 0; i < n; i++ {
		copy(rnd[i*n+i:(i+1)*n], rd[i*n+i:(i+1)*n])
	}
	// Normalize sign so diag(R) >= 0.
	for i := 0; i < n; i++ {
		if rnd[i*n+i] < 0 {
			for j := i; j < n; j++ {
				rnd[i*n+j] = -rnd[i*n+j]
			}
			for r := 0; r < m; r++ {
				qd[r*n+i] = -qd[r*n+i]
			}
		}
	}
	return Q, Rn
}

// applyReflector applies H = I - 2 v vᵀ / vnorm to columns [j0,n) of the
// m×n row-major matrix d, touching rows [k,m). w is an n-length
// workspace. Both passes sweep rows so every inner loop runs over a
// contiguous slice; per-column dot products accumulate over ascending i,
// matching the column-walk reference order.
func applyReflector(d, v, w []float64, vnorm float64, k, m, n, j0 int) {
	for j := j0; j < n; j++ {
		w[j] = 0
	}
	for i := k; i < m; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := d[i*n+j0 : i*n+n]
		ws := w[j0:n]
		for j, x := range row {
			ws[j] += vi * x
		}
	}
	scale := 2 / vnorm
	for i := k; i < m; i++ {
		f := scale * v[i]
		if f == 0 {
			continue
		}
		row := d[i*n+j0 : i*n+n]
		ws := w[j0:n]
		for j := range row {
			row[j] -= f * ws[j]
		}
	}
}

// SVD computes the thin singular value decomposition A = U·diag(S)·Vᵀ of
// an m×n matrix using one-sided Jacobi rotations. U is m×k, S has length
// k, V is n×k, with k = min(m, n) and S sorted in non-increasing order.
// Columns of U and V are orthonormal; zero singular values yield
// arbitrary orthonormal-completion columns in U.
func SVD(a *ndarray.Array) (u *ndarray.Array, s []float64, v *ndarray.Array) {
	if a.NDim() != 2 {
		panic("linalg: SVD requires a 2-d array")
	}
	m, n := a.Dim(0), a.Dim(1)
	if m >= n {
		return svdTall(a)
	}
	// A = U S Vᵀ  ⇔  Aᵀ = V S Uᵀ.
	v2, s2, u2 := svdTall(a.Transpose().Copy())
	return u2, s2, v2
}

// svdTall handles m >= n via one-sided Jacobi on the columns of A.
//
// Sweeps use a round-robin tournament ordering: each of the n-1 rounds
// pairs every column with a distinct partner, so the n/2 rotations of a
// round touch disjoint column pairs and can run on separate goroutines.
// Round order and per-rotation arithmetic are fixed, so the result is
// bit-identical for any ndarray.Workers() setting; only the rotation
// *count* (an order-independent integer) is accumulated across a round.
func svdTall(a *ndarray.Array) (u *ndarray.Array, s []float64, v *ndarray.Array) {
	m, n := a.Dim(0), a.Dim(1)
	U := a.Copy()
	V := Eye(n)
	ud := U.Data()
	vd := V.Data()

	col := func(buf []float64, stride, j, i int) float64 { return buf[i*stride+j] }

	// Circle-method schedule over `players` slots (one "bye" slot when n
	// is odd): slot 0 is fixed, the rest rotate; round r pairs slot 0
	// with ring[r] and ring[r+1+t] with ring[r+players-1-t].
	players := n
	if players%2 == 1 {
		players++
	}
	if players < 2 {
		players = 2 // n ≤ 1: no pairs, sweeps are a no-op
	}
	ring := make([]int, players-1)
	for i := range ring {
		ring[i] = i + 1
	}
	pairsP := make([]int, 0, players/2)
	pairsQ := make([]int, 0, players/2)
	// Rotations in a round write disjoint columns; only fan out when the
	// per-round work (≈ 3·m·n flops across n/2 independent pairs) is
	// worth goroutine startup.
	parallel := m*n >= 1<<14

	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var rotations int64
		for round := 0; round < players-1; round++ {
			pairsP = pairsP[:0]
			pairsQ = pairsQ[:0]
			for t := 0; t < players/2; t++ {
				var p, q int
				if t == 0 {
					p, q = 0, ring[(round+players-2)%(players-1)]
				} else {
					p = ring[(round+t-1)%(players-1)]
					q = ring[(round+players-2-t)%(players-1)]
				}
				if p >= n || q >= n { // bye slot on odd n
					continue
				}
				if p > q {
					p, q = q, p
				}
				pairsP = append(pairsP, p)
				pairsQ = append(pairsQ, q)
			}
			rotate := func(lo, hi int) {
				var local int64
				for x := lo; x < hi; x++ {
					if jacobiRotate(ud, vd, m, n, pairsP[x], pairsQ[x], tol) {
						local++
					}
				}
				if local != 0 {
					atomic.AddInt64(&rotations, local)
				}
			}
			if parallel {
				ndarray.ParallelFor(len(pairsP), 1, rotate)
			} else {
				rotate(0, len(pairsP))
			}
		}
		if rotations == 0 {
			break
		}
	}

	// Singular values are column norms of the rotated A; normalize U.
	s = make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			x := col(ud, n, j, i)
			norm += x * x
		}
		s[j] = math.Sqrt(norm)
	}
	// Sort descending, permuting columns of U and V.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[order[j]] > s[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	Us := ndarray.New(m, n)
	Vs := ndarray.New(n, n)
	sorted := make([]float64, n)
	for jj, oj := range order {
		sorted[jj] = s[oj]
		if s[oj] > 0 {
			inv := 1 / s[oj]
			for i := 0; i < m; i++ {
				Us.Set(col(ud, n, oj, i)*inv, i, jj)
			}
		} else {
			// Zero singular value: leave a unit vector orthogonal-ish
			// (best effort; completed below).
			Us.Set(1, jj%m, jj)
		}
		for i := 0; i < n; i++ {
			Vs.Set(col(vd, n, oj, i), i, jj)
		}
	}
	orthonormalizeZeroCols(Us, sorted)
	return Us, sorted, Vs
}

// orthonormalizeZeroCols re-orthonormalizes U columns that correspond to
// zero singular values against the non-zero ones (modified Gram-Schmidt).
func orthonormalizeZeroCols(u *ndarray.Array, s []float64) {
	m, n := u.Dim(0), u.Dim(1)
	for j := 0; j < n; j++ {
		if s[j] > 0 {
			continue
		}
		// Try basis vectors until one survives projection.
		for trial := 0; trial < m; trial++ {
			vec := make([]float64, m)
			vec[(j+trial)%m] = 1
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				var dot float64
				for i := 0; i < m; i++ {
					dot += vec[i] * u.At(i, k)
				}
				for i := 0; i < m; i++ {
					vec[i] -= dot * u.At(i, k)
				}
			}
			var norm float64
			for i := 0; i < m; i++ {
				norm += vec[i] * vec[i]
			}
			norm = math.Sqrt(norm)
			if norm > 1e-8 {
				for i := 0; i < m; i++ {
					u.Set(vec[i]/norm, i, j)
				}
				break
			}
		}
	}
}

// Reconstruct returns U·diag(S)·Vᵀ, for verifying decompositions.
func Reconstruct(u *ndarray.Array, s []float64, v *ndarray.Array) *ndarray.Array {
	k := len(s)
	us := ndarray.New(u.Dim(0), k)
	for i := 0; i < u.Dim(0); i++ {
		for j := 0; j < k; j++ {
			us.Set(u.At(i, j)*s[j], i, j)
		}
	}
	return ndarray.MatMul(us, v.Transpose())
}

// IsOrthonormalCols reports whether the columns of a are orthonormal
// within tol.
func IsOrthonormalCols(a *ndarray.Array, tol float64) bool {
	gram := ndarray.MatMul(a.Transpose(), a)
	n := gram.Dim(0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(gram.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}

// IsUpperTriangular reports whether a square matrix is upper triangular
// within tol.
func IsUpperTriangular(a *ndarray.Array, tol float64) bool {
	n := a.Dim(0)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(a.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}
