// Package linalg provides the dense linear algebra needed by the ML stack:
// Householder QR and a one-sided Jacobi singular value decomposition. In
// the original system this role is filled by LAPACK via NumPy/scikit-learn;
// here it is implemented from scratch on ndarray so the whole repository
// is stdlib-only.
package linalg

import (
	"fmt"
	"math"

	"deisago/internal/ndarray"
)

// Eye returns the n×n identity matrix.
func Eye(n int) *ndarray.Array {
	a := ndarray.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(1, i, i)
	}
	return a
}

// QR computes the reduced QR factorization of an m×n matrix with m >= n:
// A = Q·R with Q m×n having orthonormal columns and R n×n upper
// triangular. The diagonal of R is non-negative.
func QR(a *ndarray.Array) (q, r *ndarray.Array) {
	if a.NDim() != 2 {
		panic("linalg: QR requires a 2-d array")
	}
	m, n := a.Dim(0), a.Dim(1)
	if m < n {
		panic(fmt.Sprintf("linalg: QR requires m >= n, got %dx%d", m, n))
	}
	// Work on a copy in full Q form via Householder reflectors.
	R := a.Copy()
	// Accumulate Q as product of reflectors applied to identity (m×m is
	// wasteful; keep m×n panel and apply reflectors from the left in
	// reverse to the first n columns of I).
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Build reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			x := R.At(i, k)
			norm += x * x
		}
		norm = math.Sqrt(norm)
		v := make([]float64, m)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -norm
		if R.At(k, k) < 0 {
			alpha = norm
		}
		for i := k; i < m; i++ {
			v[i] = R.At(i, k)
		}
		v[k] -= alpha
		var vnorm float64
		for i := k; i < m; i++ {
			vnorm += v[i] * v[i]
		}
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		// Apply H = I - 2 v vᵀ / (vᵀv) to R's trailing columns.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * R.At(i, j)
			}
			f := 2 * dot / vnorm
			for i := k; i < m; i++ {
				R.Set(R.At(i, j)-f*v[i], i, j)
			}
		}
		vs = append(vs, v)
	}
	// Q = H_0 H_1 ... H_{n-1} · I_{m×n}.
	Q := ndarray.New(m, n)
	for j := 0; j < n; j++ {
		Q.Set(1, j, j)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		var vnorm float64
		for i := k; i < m; i++ {
			vnorm += v[i] * v[i]
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * Q.At(i, j)
			}
			f := 2 * dot / vnorm
			for i := k; i < m; i++ {
				Q.Set(Q.At(i, j)-f*v[i], i, j)
			}
		}
	}
	// Zero the strictly-lower part of R and truncate to n×n.
	Rn := ndarray.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			Rn.Set(R.At(i, j), i, j)
		}
	}
	// Normalize sign so diag(R) >= 0.
	for i := 0; i < n; i++ {
		if Rn.At(i, i) < 0 {
			for j := i; j < n; j++ {
				Rn.Set(-Rn.At(i, j), i, j)
			}
			for r := 0; r < m; r++ {
				Q.Set(-Q.At(r, i), r, i)
			}
		}
	}
	return Q, Rn
}

// SVD computes the thin singular value decomposition A = U·diag(S)·Vᵀ of
// an m×n matrix using one-sided Jacobi rotations. U is m×k, S has length
// k, V is n×k, with k = min(m, n) and S sorted in non-increasing order.
// Columns of U and V are orthonormal; zero singular values yield
// arbitrary orthonormal-completion columns in U.
func SVD(a *ndarray.Array) (u *ndarray.Array, s []float64, v *ndarray.Array) {
	if a.NDim() != 2 {
		panic("linalg: SVD requires a 2-d array")
	}
	m, n := a.Dim(0), a.Dim(1)
	if m >= n {
		return svdTall(a)
	}
	// A = U S Vᵀ  ⇔  Aᵀ = V S Uᵀ.
	v2, s2, u2 := svdTall(a.Transpose().Copy())
	return u2, s2, v2
}

// svdTall handles m >= n via one-sided Jacobi on the columns of A.
func svdTall(a *ndarray.Array) (u *ndarray.Array, s []float64, v *ndarray.Array) {
	m, n := a.Dim(0), a.Dim(1)
	U := a.Copy()
	V := Eye(n)
	ud := U.Data()
	vd := V.Data()

	col := func(buf []float64, stride, j, i int) float64 { return buf[i*stride+j] }
	setcol := func(buf []float64, stride, j, i int, x float64) { buf[i*stride+j] = x }

	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					x := col(ud, n, p, i)
					y := col(ud, n, q, i)
					app += x * x
					aqq += y * y
					apq += x * y
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				off += apq * apq
				// Jacobi rotation that zeroes the (p,q) entry of AᵀA.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < m; i++ {
					x := col(ud, n, p, i)
					y := col(ud, n, q, i)
					setcol(ud, n, p, i, c*x-sn*y)
					setcol(ud, n, q, i, sn*x+c*y)
				}
				for i := 0; i < n; i++ {
					x := col(vd, n, p, i)
					y := col(vd, n, q, i)
					setcol(vd, n, p, i, c*x-sn*y)
					setcol(vd, n, q, i, sn*x+c*y)
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Singular values are column norms of the rotated A; normalize U.
	s = make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			x := col(ud, n, j, i)
			norm += x * x
		}
		s[j] = math.Sqrt(norm)
	}
	// Sort descending, permuting columns of U and V.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[order[j]] > s[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	Us := ndarray.New(m, n)
	Vs := ndarray.New(n, n)
	sorted := make([]float64, n)
	for jj, oj := range order {
		sorted[jj] = s[oj]
		if s[oj] > 0 {
			inv := 1 / s[oj]
			for i := 0; i < m; i++ {
				Us.Set(col(ud, n, oj, i)*inv, i, jj)
			}
		} else {
			// Zero singular value: leave a unit vector orthogonal-ish
			// (best effort; completed below).
			Us.Set(1, jj%m, jj)
		}
		for i := 0; i < n; i++ {
			Vs.Set(col(vd, n, oj, i), i, jj)
		}
	}
	orthonormalizeZeroCols(Us, sorted)
	return Us, sorted, Vs
}

// orthonormalizeZeroCols re-orthonormalizes U columns that correspond to
// zero singular values against the non-zero ones (modified Gram-Schmidt).
func orthonormalizeZeroCols(u *ndarray.Array, s []float64) {
	m, n := u.Dim(0), u.Dim(1)
	for j := 0; j < n; j++ {
		if s[j] > 0 {
			continue
		}
		// Try basis vectors until one survives projection.
		for trial := 0; trial < m; trial++ {
			vec := make([]float64, m)
			vec[(j+trial)%m] = 1
			for k := 0; k < n; k++ {
				if k == j {
					continue
				}
				var dot float64
				for i := 0; i < m; i++ {
					dot += vec[i] * u.At(i, k)
				}
				for i := 0; i < m; i++ {
					vec[i] -= dot * u.At(i, k)
				}
			}
			var norm float64
			for i := 0; i < m; i++ {
				norm += vec[i] * vec[i]
			}
			norm = math.Sqrt(norm)
			if norm > 1e-8 {
				for i := 0; i < m; i++ {
					u.Set(vec[i]/norm, i, j)
				}
				break
			}
		}
	}
}

// Reconstruct returns U·diag(S)·Vᵀ, for verifying decompositions.
func Reconstruct(u *ndarray.Array, s []float64, v *ndarray.Array) *ndarray.Array {
	k := len(s)
	us := ndarray.New(u.Dim(0), k)
	for i := 0; i < u.Dim(0); i++ {
		for j := 0; j < k; j++ {
			us.Set(u.At(i, j)*s[j], i, j)
		}
	}
	return ndarray.MatMul(us, v.Transpose())
}

// IsOrthonormalCols reports whether the columns of a are orthonormal
// within tol.
func IsOrthonormalCols(a *ndarray.Array, tol float64) bool {
	gram := ndarray.MatMul(a.Transpose(), a)
	n := gram.Dim(0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(gram.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}

// IsUpperTriangular reports whether a square matrix is upper triangular
// within tol.
func IsUpperTriangular(a *ndarray.Array, tol float64) bool {
	n := a.Dim(0)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(a.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}
