package linalg

import (
	"math/rand"
	"testing"

	"deisago/internal/ndarray"
)

func randMat(rng *rand.Rand, m, n int) *ndarray.Array {
	a := ndarray.New(m, n)
	d := a.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return a
}

// TestSVDDeterminismAcrossWorkers is the determinism guard for the
// parallel Jacobi sweeps: the tournament-ordered rotations on disjoint
// column pairs must give bit-identical U, S, V for every worker count
// (protects the bit-equal PCA components invariant, DESIGN §6).
func TestSVDDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][2]int{{16, 16}, {200, 120}, {120, 200}, {257, 64}}
	for _, sh := range shapes {
		a := randMat(rng, sh[0], sh[1])
		prev := ndarray.SetWorkers(1)
		u1, s1, v1 := SVD(a)
		ndarray.SetWorkers(prev)
		for _, w := range []int{2, 8} {
			prev := ndarray.SetWorkers(w)
			u2, s2, v2 := SVD(a)
			ndarray.SetWorkers(prev)
			if !ndarray.Equal(u1, u2) || !ndarray.Equal(v1, v2) {
				t.Fatalf("%dx%d: SVD singular vectors differ with %d workers", sh[0], sh[1], w)
			}
			for i := range s1 {
				if s1[i] != s2[i] {
					t.Fatalf("%dx%d: singular value %d differs with %d workers", sh[0], sh[1], i, w)
				}
			}
		}
	}
}

// TestQRDeterminismAcrossWorkers pins QR output across worker counts.
// QR itself is sequential, but it consumes ndarray kernels (Copy,
// MatMul in callers) whose parallelism must not leak into results.
func TestQRDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randMat(rng, 300, 80)
	prev := ndarray.SetWorkers(1)
	q1, r1 := QR(a)
	ndarray.SetWorkers(prev)
	for _, w := range []int{2, 8} {
		prev := ndarray.SetWorkers(w)
		q2, r2 := QR(a)
		ndarray.SetWorkers(prev)
		if !ndarray.Equal(q1, q2) || !ndarray.Equal(r1, r2) {
			t.Fatalf("QR differs with %d workers", w)
		}
	}
}

// TestSVDTournamentQuality re-checks reconstruction and orthonormality
// on shapes whose column count exercises odd/even tournament schedules.
func TestSVDTournamentQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sh := range [][2]int{{9, 7}, {40, 31}, {33, 33}, {64, 1}, {5, 5}} {
		a := randMat(rng, sh[0], sh[1])
		u, s, v := SVD(a)
		if !IsOrthonormalCols(u, 1e-8) {
			t.Fatalf("%v: U not orthonormal", sh)
		}
		if !IsOrthonormalCols(v, 1e-8) {
			t.Fatalf("%v: V not orthonormal", sh)
		}
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1]+1e-12 {
				t.Fatalf("%v: singular values not sorted: %v", sh, s)
			}
		}
		if !ndarray.AllClose(Reconstruct(u, s, v), a, 1e-8) {
			t.Fatalf("%v: U·S·Vᵀ does not reconstruct A", sh)
		}
	}
}

func BenchmarkKernelQR256x64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QR(x)
	}
}

func BenchmarkKernelSVD128x64(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 128, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVD(x)
	}
}
