package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deisago/internal/ndarray"
)

func randomMatrix(rng *rand.Rand, m, n int) *ndarray.Array {
	a := ndarray.New(m, n)
	d := a.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return a
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestQRKnown(t *testing.T) {
	a := ndarray.FromSlice([]float64{
		12, -51, 4,
		6, 167, -68,
		-4, 24, -41,
	}, 3, 3)
	q, r := QR(a)
	if !IsOrthonormalCols(q, 1e-12) {
		t.Fatal("Q not orthonormal")
	}
	if !IsUpperTriangular(r, 1e-12) {
		t.Fatal("R not upper triangular")
	}
	if !ndarray.AllClose(ndarray.MatMul(q, r), a, 1e-10) {
		t.Fatal("QR != A")
	}
	// Known values for this classic example: R diag = 14, 175, 35.
	wantDiag := []float64{14, 175, 35}
	for i, w := range wantDiag {
		if math.Abs(r.At(i, i)-w) > 1e-9 {
			t.Fatalf("R[%d,%d] = %v, want %v", i, i, r.At(i, i), w)
		}
	}
}

func TestQRTall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 20, 5)
	q, r := QR(a)
	if q.Dim(0) != 20 || q.Dim(1) != 5 || r.Dim(0) != 5 || r.Dim(1) != 5 {
		t.Fatalf("shapes Q=%v R=%v", q.Shape(), r.Shape())
	}
	if !IsOrthonormalCols(q, 1e-11) {
		t.Fatal("Q not orthonormal")
	}
	if !ndarray.AllClose(ndarray.MatMul(q, r), a, 1e-10) {
		t.Fatal("QR != A")
	}
	for i := 0; i < 5; i++ {
		if r.At(i, i) < 0 {
			t.Fatal("R diagonal not non-negative")
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Second column is 2x the first.
	a := ndarray.FromSlice([]float64{
		1, 2,
		2, 4,
		3, 6,
	}, 3, 2)
	q, r := QR(a)
	if !ndarray.AllClose(ndarray.MatMul(q, r), a, 1e-10) {
		t.Fatal("QR != A for rank-deficient input")
	}
	if math.Abs(r.At(1, 1)) > 1e-10 {
		t.Fatalf("rank-deficient R[1,1] = %v, want 0", r.At(1, 1))
	}
}

func TestQRPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"wide":  func() { QR(ndarray.New(2, 3)) },
		"rank1": func() { QR(ndarray.New(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := ndarray.FromSlice([]float64{
		3, 0,
		0, 2,
	}, 2, 2)
	_, s, _ := SVD(a)
	if math.Abs(s[0]-3) > 1e-12 || math.Abs(s[1]-2) > 1e-12 {
		t.Fatalf("singular values %v, want [3 2]", s)
	}
}

func TestSVDKnownRankOne(t *testing.T) {
	// A = outer([1,2,3], [4,5]) has single singular value |u|·|v|.
	u := []float64{1, 2, 3}
	v := []float64{4, 5}
	a := ndarray.New(3, 2)
	for i := range u {
		for j := range v {
			a.Set(u[i]*v[j], i, j)
		}
	}
	_, s, _ := SVD(a)
	want := math.Sqrt(1+4+9) * math.Sqrt(16+25)
	if math.Abs(s[0]-want) > 1e-10 {
		t.Fatalf("s[0] = %v, want %v", s[0], want)
	}
	if s[1] > 1e-10 {
		t.Fatalf("s[1] = %v, want 0", s[1])
	}
}

func checkSVD(t *testing.T, a *ndarray.Array) {
	t.Helper()
	u, s, v := SVD(a)
	m, n := a.Dim(0), a.Dim(1)
	k := m
	if n < k {
		k = n
	}
	if u.Dim(0) != m || u.Dim(1) != k || v.Dim(0) != n || v.Dim(1) != k || len(s) != k {
		t.Fatalf("SVD shapes: U=%v S=%d V=%v for A %dx%d", u.Shape(), len(s), v.Shape(), m, n)
	}
	for i := 0; i < k; i++ {
		if s[i] < 0 {
			t.Fatalf("negative singular value %v", s[i])
		}
		if i > 0 && s[i] > s[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", s)
		}
	}
	if !IsOrthonormalCols(u, 1e-9) {
		t.Fatal("U not orthonormal")
	}
	if !IsOrthonormalCols(v, 1e-9) {
		t.Fatal("V not orthonormal")
	}
	if !ndarray.AllClose(Reconstruct(u, s, v), a, 1e-8*(1+a.Norm())) {
		t.Fatal("U·S·Vᵀ != A")
	}
}

func TestSVDRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][2]int{{5, 5}, {10, 4}, {4, 10}, {1, 7}, {7, 1}, {20, 20}} {
		checkSVD(t, randomMatrix(rng, dims[0], dims[1]))
	}
}

func TestSVDRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Build a 8x6 matrix of rank 3.
	b := randomMatrix(rng, 8, 3)
	c := randomMatrix(rng, 3, 6)
	a := ndarray.MatMul(b, c)
	u, s, v := SVD(a)
	for i := 3; i < 6; i++ {
		if s[i] > 1e-8 {
			t.Fatalf("rank-3 matrix has s[%d] = %v", i, s[i])
		}
	}
	if !ndarray.AllClose(Reconstruct(u, s, v), a, 1e-8) {
		t.Fatal("reconstruction failed for rank-deficient matrix")
	}
	if !IsOrthonormalCols(u, 1e-8) {
		t.Fatal("U not orthonormal after zero-column completion")
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := ndarray.New(4, 3)
	u, s, v := SVD(a)
	for _, x := range s {
		if x != 0 {
			t.Fatalf("zero matrix singular values %v", s)
		}
	}
	if !IsOrthonormalCols(u, 1e-9) || !IsOrthonormalCols(v, 1e-9) {
		t.Fatal("zero-matrix factors not orthonormal")
	}
}

func TestSVDMatchesEigenOfGram(t *testing.T) {
	// Squared singular values must equal eigenvalues of AᵀA; we verify
	// via trace identities: sum s_i^2 == trace(AᵀA) == ||A||_F^2.
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 9, 6)
	_, s, _ := SVD(a)
	var sum2 float64
	for _, x := range s {
		sum2 += x * x
	}
	f := a.Norm()
	if math.Abs(sum2-f*f) > 1e-9*(1+f*f) {
		t.Fatalf("sum s^2 = %v, ||A||_F^2 = %v", sum2, f*f)
	}
}

// Property: SVD invariants hold for random matrices of random shapes.
func TestSVDQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(8) + 1
		n := rng.Intn(8) + 1
		a := randomMatrix(rng, m, n)
		u, s, v := SVD(a)
		if !IsOrthonormalCols(u, 1e-8) || !IsOrthonormalCols(v, 1e-8) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1]+1e-10 || s[i] < 0 {
				return false
			}
		}
		return ndarray.AllClose(Reconstruct(u, s, v), a, 1e-7*(1+a.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: QR invariants hold for random tall matrices.
func TestQRQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		m := n + rng.Intn(6)
		a := randomMatrix(rng, m, n)
		q, r := QR(a)
		return IsOrthonormalCols(q, 1e-9) &&
			IsUpperTriangular(r, 1e-12) &&
			ndarray.AllClose(ndarray.MatMul(q, r), a, 1e-9*(1+a.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDSingularValuesScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 6, 4)
	_, s1, _ := SVD(a)
	_, s2, _ := SVD(a.Scale(3))
	for i := range s1 {
		if math.Abs(s2[i]-3*s1[i]) > 1e-9*(1+s1[i]) {
			t.Fatalf("scaling law violated: %v vs %v", s1, s2)
		}
	}
}
