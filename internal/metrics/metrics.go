// Package metrics is the virtual-time observability layer of the
// simulator: a registry of counters, gauges, and histograms keyed by
// "component/name{labels}", sampled against the virtual clocks of the
// actors that drive them (package vtime), never against wall time.
//
// The registry exists to turn the paper's quantitative claims into
// assertions: the scheduler counts its messages by kind, so the DEISA1
// formula 2·T·R+heartbeats and the external-task formula 1+R are checked
// per run by the harness test suite instead of being quoted. Logical
// counters (message counts, blocks shipped, bytes striped per OST) are
// pure functions of the workload and therefore identical across runs of
// the same seed — Snapshot.CanonicalJSON exports exactly that subset for
// byte-comparison golden tests. Gauges and histograms carry virtual
// timestamps and durations, which depend on FCFS tie-breaking between
// goroutines, so they are exported for inspection (JSON/CSV, Chrome
// trace counter tracks) but excluded from the canonical form.
//
// Instrumentation must be free on the hot path, so the registry is
// built never to contend where the workload does not: resolving an
// existing instrument is lock-free and allocation-free (the label key
// is rendered into a stack buffer and probed against an immutable map
// snapshot), counters and gauge values are atomics, and histograms
// stripe their observations over independently locked shards. Only the
// first-use creation of an instrument takes the registry mutex. See
// DESIGN.md §14 for the concurrency contract.
//
// All handle methods are nil-safe: a nil *Counter/*Gauge/*Histogram (as
// returned by getters on a nil *Registry) is a no-op, so instrumented
// components work unchanged when no registry is attached.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"deisago/internal/vtime"
)

// Label is one key=value dimension of a metric ID.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LInt builds a Label with an integer value.
func LInt(key string, value int) Label {
	return Label{Key: key, Value: fmt.Sprintf("%d", value)}
}

// idBufCap sizes the stack buffer identities are rendered into. IDs
// longer than this still work — the append spills to the heap — they
// just stop being allocation-free to resolve.
const idBufCap = 128

// appendID renders the canonical metric identifier
// "component/name{k1=v1,k2=v2}" into dst with labels sorted by key (no
// braces when there are no labels) and returns the extended slice. The
// input labels are never mutated: sorting happens in a small scratch
// copy, kept on the stack for the label counts that occur in practice.
func appendID(dst []byte, component, name string, labels []Label) []byte {
	dst = append(dst, component...)
	dst = append(dst, '/')
	dst = append(dst, name...)
	if len(labels) == 0 {
		return dst
	}
	if len(labels) > 1 {
		var tmp [8]Label
		var ls []Label
		if len(labels) <= len(tmp) {
			ls = tmp[:len(labels)]
		} else {
			ls = make([]Label, len(labels))
		}
		copy(ls, labels)
		for i := 1; i < len(ls); i++ {
			for j := i; j > 0 && ls[j].Key < ls[j-1].Key; j-- {
				ls[j], ls[j-1] = ls[j-1], ls[j]
			}
		}
		labels = ls
	}
	dst = append(dst, '{')
	for i, l := range labels {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, l.Key...)
		dst = append(dst, '=')
		dst = append(dst, l.Value...)
	}
	dst = append(dst, '}')
	return dst
}

// ID renders the canonical metric identifier. Two metrics are the same
// if and only if their IDs are equal.
func ID(component, name string, labels ...Label) string {
	var kb [idBufCap]byte
	return string(appendID(kb[:0], component, name, labels))
}

// rcuMap is a two-level map with a lock-free read path. The clean level
// is an immutable snapshot behind an atomic pointer: readers probe it
// without synchronization and without materializing the key string.
// Identities not yet promoted live in the dirty level, reachable only
// through the slow path under Registry.mu; promotion merges dirty into
// a fresh clean snapshot once dirty grows past a fraction of clean (so
// total copying stays amortized linear-ish even when thousands of
// instruments are created eagerly) or once dirty entries have absorbed
// enough locked lookups that leaving them unpromoted would make a warm
// call site keep paying for the mutex.
type rcuMap[T any] struct {
	clean     atomic.Pointer[map[string]T]
	dirty     map[string]T // guarded by Registry.mu
	dirtyHits int          // locked lookups served from dirty since last promote
}

func (m *rcuMap[T]) init() {
	empty := map[string]T{}
	m.clean.Store(&empty)
	m.dirty = map[string]T{}
}

// get probes the lock-free clean level. The compiler elides the
// string(k) materialization in the map index, so a hit costs no
// allocation and no lock.
func (m *rcuMap[T]) get(k []byte) (T, bool) {
	v, ok := (*m.clean.Load())[string(k)]
	return v, ok
}

// promotion thresholds: see rcuMap.
const (
	dirtyPromoteMin  = 16
	dirtyPromoteHits = 64
)

// getOrCreate resolves id through the dirty level, creating the
// instrument on first use. Caller holds Registry.mu.
func (m *rcuMap[T]) getOrCreate(id string, mk func() T) T {
	if v, ok := m.dirty[id]; ok {
		m.dirtyHits++
		if m.dirtyHits >= dirtyPromoteHits {
			m.promote()
		}
		return v
	}
	clean := *m.clean.Load()
	if v, ok := clean[id]; ok {
		// Published concurrently with the reader's failed probe.
		return v
	}
	v := mk()
	m.dirty[id] = v
	if n := len(m.dirty); n >= dirtyPromoteMin && 4*n >= len(clean) {
		m.promote()
	}
	return v
}

// promote merges dirty into a fresh immutable clean snapshot. Caller
// holds Registry.mu.
func (m *rcuMap[T]) promote() {
	clean := *m.clean.Load()
	merged := make(map[string]T, len(clean)+len(m.dirty))
	for k, v := range clean {
		merged[k] = v
	}
	for k, v := range m.dirty {
		merged[k] = v
	}
	m.clean.Store(&merged)
	m.dirty = map[string]T{}
	m.dirtyHits = 0
}

// each calls fn for every instrument across both levels. Caller holds
// Registry.mu; an identity lives in exactly one level.
func (m *rcuMap[T]) each(fn func(T)) {
	for _, v := range *m.clean.Load() {
		fn(v)
	}
	for _, v := range m.dirty {
		fn(v)
	}
}

// Registry holds every metric of one run. All methods are safe for
// concurrent use; getters on a nil registry return nil handles.
// Resolving an existing instrument never takes the mutex — only
// first-use creation (and promotion bookkeeping) does.
type Registry struct {
	mu       sync.Mutex // creation slow path and snapshot collection only
	counters rcuMap[*Counter]
	gauges   rcuMap[*Gauge]
	hists    rcuMap[*Histogram]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.counters.init()
	r.gauges.init()
	r.hists.init()
	return r
}

// Counter returns (creating on first use) the counter with the given
// identity. Returns nil on a nil registry.
func (r *Registry) Counter(component, name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	var kb [idBufCap]byte
	k := appendID(kb[:0], component, name, labels)
	if c, ok := r.counters.get(k); ok {
		return c
	}
	return r.counterSlow(string(k))
}

func (r *Registry) counterSlow(id string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters.getOrCreate(id, func() *Counter { return &Counter{id: id} })
}

// Gauge returns (creating on first use) the gauge with the given
// identity. Returns nil on a nil registry.
func (r *Registry) Gauge(component, name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	var kb [idBufCap]byte
	k := appendID(kb[:0], component, name, labels)
	if g, ok := r.gauges.get(k); ok {
		return g
	}
	return r.gaugeSlow(string(k))
}

func (r *Registry) gaugeSlow(id string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges.getOrCreate(id, func() *Gauge { return &Gauge{id: id, stride: 1} })
}

// Histogram returns (creating on first use) the histogram with the given
// identity. Returns nil on a nil registry.
func (r *Registry) Histogram(component, name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	var kb [idBufCap]byte
	k := appendID(kb[:0], component, name, labels)
	if h, ok := r.hists.get(k); ok {
		return h
	}
	return r.histogramSlow(string(k))
}

func (r *Registry) histogramSlow(id string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists.getOrCreate(id, func() *Histogram { return &Histogram{id: id} })
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	id string
	v  atomic.Int64
}

// ID returns the counter's canonical identifier.
func (c *Counter) ID() string {
	if c == nil {
		return ""
	}
	return c.id
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Sample is one virtual-time point of a gauge series.
type Sample struct {
	T vtime.Time `json:"t"`
	V float64    `json:"v"`
}

// maxGaugeSamples bounds a gauge's retained time series. When the cap
// is reached the series is decimated deterministically (every other
// retained sample is dropped and the keep stride doubles), so the same
// sequence of Set calls always yields the same series regardless of how
// long it is.
const maxGaugeSamples = 2048

// Gauge is an instantaneous value with a virtual-time series of its
// updates (the counter tracks of a Chrome trace). The current value is
// an atomic (lock-free reads); only the retained series is mutex
// guarded, per gauge.
type Gauge struct {
	id  string
	cur atomic.Uint64 // Float64bits of the current value

	mu      sync.Mutex
	updates int64 // Set calls seen
	stride  int64 // keep every stride-th update in the series
	samples []Sample
}

// ID returns the gauge's canonical identifier.
func (g *Gauge) ID() string {
	if g == nil {
		return ""
	}
	return g.id
}

// Set records a new value observed at virtual time at. No-op on nil.
func (g *Gauge) Set(v float64, at vtime.Time) {
	if g == nil {
		return
	}
	g.cur.Store(math.Float64bits(v))
	g.mu.Lock()
	if g.updates%g.stride == 0 {
		if len(g.samples) >= maxGaugeSamples {
			// Deterministic decimation: keep even indices, double stride.
			kept := g.samples[:0]
			for i := 0; i < len(g.samples); i += 2 {
				kept = append(kept, g.samples[i])
			}
			g.samples = kept
			g.stride *= 2
		}
		g.samples = append(g.samples, Sample{T: at, V: v})
	}
	g.updates++
	g.mu.Unlock()
}

// Add shifts the gauge by delta at virtual time at. No-op on nil.
func (g *Gauge) Add(delta float64, at vtime.Time) {
	if g == nil {
		return
	}
	g.Set(g.Value()+delta, at)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.cur.Load())
}

// Series returns a copy of the retained samples in update order.
func (g *Gauge) Series() []Sample {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Sample(nil), g.samples...)
}

// histShards stripes a histogram's observations. Observation order
// inside and across shards is immaterial: Stats sorts the merged sample
// set before summarizing, so the result is bit-identical to a single
// serially filled list.
const histShards = 8

type histShard struct {
	mu sync.Mutex
	xs []float64
	_  [32]byte // keep neighboring shards off one cache line
}

// Histogram collects float64 observations (virtual durations, queue
// waits) and summarizes them with the vtime percentile statistics.
// Observations go to one of histShards independently locked stripes
// picked round-robin, so concurrent observers of one instrument contend
// 1/histShards as often as on a single lock.
type Histogram struct {
	id string
	rr atomic.Uint32
	sh [histShards]histShard
}

// ID returns the histogram's canonical identifier.
func (h *Histogram) ID() string {
	if h == nil {
		return ""
	}
	return h.id
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	s := &h.sh[h.rr.Add(1)%histShards]
	s.mu.Lock()
	s.xs = append(s.xs, v)
	s.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	n := 0
	for i := range h.sh {
		s := &h.sh[i]
		s.mu.Lock()
		n += len(s.xs)
		s.mu.Unlock()
	}
	return n
}

// gather copies every shard's samples into one slice.
func (h *Histogram) gather() []float64 {
	n := 0
	for i := range h.sh {
		s := &h.sh[i]
		s.mu.Lock()
		n += len(s.xs)
		s.mu.Unlock()
	}
	xs := make([]float64, 0, n)
	for i := range h.sh {
		s := &h.sh[i]
		s.mu.Lock()
		xs = append(xs, s.xs...)
		s.mu.Unlock()
	}
	return xs
}

// Stats summarizes the observations. The merged samples are sorted
// before summarizing so the result (including the floating-point Sum)
// is independent of observation order and of how observations were
// striped over shards.
func (h *Histogram) Stats() vtime.Stats {
	if h == nil {
		return vtime.Stats{}
	}
	xs := h.gather()
	sort.Float64s(xs)
	return vtime.Summarize(xs)
}
