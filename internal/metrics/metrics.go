// Package metrics is the virtual-time observability layer of the
// simulator: a registry of counters, gauges, and histograms keyed by
// "component/name{labels}", sampled against the virtual clocks of the
// actors that drive them (package vtime), never against wall time.
//
// The registry exists to turn the paper's quantitative claims into
// assertions: the scheduler counts its messages by kind, so the DEISA1
// formula 2·T·R+heartbeats and the external-task formula 1+R are checked
// per run by the harness test suite instead of being quoted. Logical
// counters (message counts, blocks shipped, bytes striped per OST) are
// pure functions of the workload and therefore identical across runs of
// the same seed — Snapshot.CanonicalJSON exports exactly that subset for
// byte-comparison golden tests. Gauges and histograms carry virtual
// timestamps and durations, which depend on FCFS tie-breaking between
// goroutines, so they are exported for inspection (JSON/CSV, Chrome
// trace counter tracks) but excluded from the canonical form.
//
// All handle methods are nil-safe: a nil *Counter/*Gauge/*Histogram (as
// returned by getters on a nil *Registry) is a no-op, so instrumented
// components work unchanged when no registry is attached.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"deisago/internal/vtime"
)

// Label is one key=value dimension of a metric ID.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LInt builds a Label with an integer value.
func LInt(key string, value int) Label {
	return Label{Key: key, Value: fmt.Sprintf("%d", value)}
}

// ID renders the canonical metric identifier
// "component/name{k1=v1,k2=v2}" with labels sorted by key (no braces
// when there are no labels). Two metrics are the same if and only if
// their IDs are equal.
func ID(component, name string, labels ...Label) string {
	if len(labels) == 0 {
		return component + "/" + name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(component)
	b.WriteByte('/')
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds every metric of one run. All methods are safe for
// concurrent use; getters on a nil registry return nil handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating on first use) the counter with the given
// identity. Returns nil on a nil registry.
func (r *Registry) Counter(component, name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	id := ID(component, name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{id: id}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given
// identity. Returns nil on a nil registry.
func (r *Registry) Gauge(component, name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	id := ID(component, name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{id: id, stride: 1}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// identity. Returns nil on a nil registry.
func (r *Registry) Histogram(component, name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	id := ID(component, name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[id]
	if !ok {
		h = &Histogram{id: id}
		r.hists[id] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	id string
	v  atomic.Int64
}

// ID returns the counter's canonical identifier.
func (c *Counter) ID() string {
	if c == nil {
		return ""
	}
	return c.id
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Sample is one virtual-time point of a gauge series.
type Sample struct {
	T vtime.Time `json:"t"`
	V float64    `json:"v"`
}

// maxGaugeSamples bounds a gauge's retained time series. When the cap
// is reached the series is decimated deterministically (every other
// retained sample is dropped and the keep stride doubles), so the same
// sequence of Set calls always yields the same series regardless of how
// long it is.
const maxGaugeSamples = 2048

// Gauge is an instantaneous value with a virtual-time series of its
// updates (the counter tracks of a Chrome trace).
type Gauge struct {
	id string

	mu      sync.Mutex
	cur     float64
	updates int64 // Set calls seen
	stride  int64 // keep every stride-th update in the series
	samples []Sample
}

// ID returns the gauge's canonical identifier.
func (g *Gauge) ID() string {
	if g == nil {
		return ""
	}
	return g.id
}

// Set records a new value observed at virtual time at. No-op on nil.
func (g *Gauge) Set(v float64, at vtime.Time) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.cur = v
	if g.updates%g.stride == 0 {
		if len(g.samples) >= maxGaugeSamples {
			// Deterministic decimation: keep even indices, double stride.
			kept := g.samples[:0]
			for i := 0; i < len(g.samples); i += 2 {
				kept = append(kept, g.samples[i])
			}
			g.samples = kept
			g.stride *= 2
		}
		g.samples = append(g.samples, Sample{T: at, V: v})
	}
	g.updates++
	g.mu.Unlock()
}

// Add shifts the gauge by delta at virtual time at. No-op on nil.
func (g *Gauge) Add(delta float64, at vtime.Time) {
	if g == nil {
		return
	}
	g.mu.Lock()
	v := g.cur + delta
	g.mu.Unlock()
	g.Set(v, at)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// Series returns a copy of the retained samples in update order.
func (g *Gauge) Series() []Sample {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Sample(nil), g.samples...)
}

// Histogram collects float64 observations (virtual durations, queue
// waits) and summarizes them with the vtime percentile statistics.
type Histogram struct {
	id string

	mu sync.Mutex
	xs []float64
}

// ID returns the histogram's canonical identifier.
func (h *Histogram) ID() string {
	if h == nil {
		return ""
	}
	return h.id
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.xs = append(h.xs, v)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.xs)
}

// Stats summarizes the observations. The samples are sorted before
// summarizing so the result (including the floating-point Sum) is
// independent of observation order.
func (h *Histogram) Stats() vtime.Stats {
	if h == nil {
		return vtime.Stats{}
	}
	h.mu.Lock()
	xs := append([]float64(nil), h.xs...)
	h.mu.Unlock()
	sort.Float64s(xs)
	return vtime.Summarize(xs)
}
