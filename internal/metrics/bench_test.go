package metrics

import "testing"

// BenchmarkRegistryLookup measures resolving an existing instrument by
// identity — the cost every call site that has not hoisted its handle
// pays per event. The hot read path must be lock-free and allocation
// free (the label key is rendered into a stack buffer); both properties
// are gated in BENCH_NET.json (ns/op ceiling, max_allocs_per_op 0).
func BenchmarkRegistryLookup(b *testing.B) {
	warm := func() *Registry {
		r := NewRegistry()
		// Resolve enough times that the identity is promoted to the
		// lock-free clean level before measurement starts.
		for i := 0; i < 512; i++ {
			r.Counter("fabric", "bytes", L("scope", "remote"))
			r.Histogram("link", "queue_wait", L("link", "node3-eg"))
		}
		return r
	}
	b.Run("counter", func(b *testing.B) {
		r := warm()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Counter("fabric", "bytes", L("scope", "remote"))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		r := warm()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Histogram("link", "queue_wait", L("link", "node3-eg"))
		}
	})
	b.Run("counter-parallel", func(b *testing.B) {
		r := warm()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				r.Counter("fabric", "bytes", L("scope", "remote"))
			}
		})
	})
}
