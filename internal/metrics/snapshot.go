package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	ID    string `json:"id"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot: final value plus the retained
// virtual-time series.
type GaugeSnap struct {
	ID      string   `json:"id"`
	Value   float64  `json:"value"`
	Samples []Sample `json:"samples,omitempty"`
}

// HistSnap is one histogram in a snapshot, summarized.
type HistSnap struct {
	ID   string  `json:"id"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Sum  float64 `json:"sum"`
}

// Snapshot is a point-in-time export of a registry, sorted by metric ID
// within each section.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges,omitempty"`
	Histograms []HistSnap    `json:"histograms,omitempty"`
}

// Snapshot captures every metric currently in the registry. Returns an
// empty snapshot on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	// Collect handles under the creation mutex (instruments live in the
	// immutable clean level or the dirty overflow; each visits both),
	// then read their values lock-free afterwards.
	r.mu.Lock()
	var counters []*Counter
	r.counters.each(func(c *Counter) { counters = append(counters, c) })
	var gauges []*Gauge
	r.gauges.each(func(g *Gauge) { gauges = append(gauges, g) })
	var hists []*Histogram
	r.hists.each(func(h *Histogram) { hists = append(hists, h) })
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{ID: c.ID(), Value: c.Load()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{ID: g.ID(), Value: g.Value(), Samples: g.Series()})
	}
	for _, h := range hists {
		st := h.Stats()
		s.Histograms = append(s.Histograms, HistSnap{
			ID: h.ID(), N: st.N, Mean: st.Mean, Std: st.Std,
			Min: st.Min, Max: st.Max, P50: st.P50, P95: st.P95, Sum: st.Sum,
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].ID < s.Counters[j].ID })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].ID < s.Gauges[j].ID })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].ID < s.Histograms[j].ID })
	return s
}

// Counter returns the value of the counter with the given ID, or 0 if
// the snapshot has no such counter.
func (s *Snapshot) Counter(id string) int64 {
	for _, c := range s.Counters {
		if c.ID == id {
			return c.Value
		}
	}
	return 0
}

// SumCounters sums every counter whose ID starts with prefix — e.g.
// SumCounters("scheduler/messages") totals the per-kind message
// counters.
func (s *Snapshot) SumCounters(prefix string) int64 {
	var total int64
	for _, c := range s.Counters {
		if strings.HasPrefix(c.ID, prefix) {
			total += c.Value
		}
	}
	return total
}

// Gauge returns the final value of the gauge with the given ID, or 0.
func (s *Snapshot) Gauge(id string) float64 {
	for _, g := range s.Gauges {
		if g.ID == id {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the summary for the histogram with the given ID and
// whether it exists.
func (s *Snapshot) Histogram(id string) (HistSnap, bool) {
	for _, h := range s.Histograms {
		if h.ID == id {
			return h, true
		}
	}
	return HistSnap{}, false
}

// WriteJSON writes the full snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as flat CSV rows:
//
//	kind,id,field,value
//
// Counters emit one row; gauges emit a "value" row plus one row per
// retained sample (field "t=<virtual time>"); histograms emit one row
// per summary statistic.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,id,field,value"); err != nil {
		return err
	}
	row := func(kind, id, field string, value interface{}) error {
		_, err := fmt.Fprintf(w, "%s,%q,%s,%v\n", kind, id, field, value)
		return err
	}
	for _, c := range s.Counters {
		if err := row("counter", c.ID, "value", c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := row("gauge", g.ID, "value", g.Value); err != nil {
			return err
		}
		for _, sm := range g.Samples {
			if err := row("gauge", g.ID, fmt.Sprintf("t=%g", sm.T), sm.V); err != nil {
				return err
			}
		}
	}
	for _, h := range s.Histograms {
		for _, f := range []struct {
			name string
			v    interface{}
		}{
			{"n", h.N}, {"mean", h.Mean}, {"std", h.Std}, {"min", h.Min},
			{"max", h.Max}, {"p50", h.P50}, {"p95", h.P95}, {"sum", h.Sum},
		} {
			if err := row("histogram", h.ID, f.name, f.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// CanonicalJSON renders only the run-order-invariant part of the
// snapshot: counters, sorted by ID, zero values omitted. Counters are
// logical event counts — pure functions of the workload — so this form
// is byte-identical across runs with the same seed even though virtual
// timestamps (gauges, histograms) may differ in FCFS tie-breaking.
// Golden regression tests compare exactly these bytes.
func (s *Snapshot) CanonicalJSON() []byte {
	var b strings.Builder
	b.WriteString("{\n")
	first := true
	for _, c := range s.Counters {
		if c.Value == 0 {
			continue
		}
		if !first {
			b.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&b, "  %q: %d", c.ID, c.Value)
	}
	b.WriteString("\n}\n")
	return []byte(b.String())
}
