package metrics

import (
	"bytes"
	"sync"
	"testing"
)

// hammer drives one registry with the stress workload. Each of n workers
// increments a shared counter, observes into a shared histogram, and
// owns a private counter, gauge, and histogram (private instruments make
// gauge series order-deterministic; the shared ones exercise same-cache-
// line contention). When parallel is false the same work runs on one
// goroutine, giving the serially computed expectation.
func hammer(n, ops int, parallel bool) *Registry {
	r := NewRegistry()
	worker := func(w int) {
		shared := r.Counter("stress", "shared")
		sharedH := r.Histogram("stress", "shared_wait")
		mine := r.Counter("stress", "ops", LInt("worker", w))
		mineG := r.Gauge("stress", "depth", LInt("worker", w))
		mineH := r.Histogram("stress", "latency", LInt("worker", w))
		for i := 0; i < ops; i++ {
			shared.Inc()
			mine.Add(int64(i % 3))
			sharedH.Observe(float64(w*ops + i))
			mineH.Observe(float64(i) * 0.5)
			mineG.Set(float64(i), float64(i))
		}
	}
	if parallel {
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) { defer wg.Done(); worker(w) }(w)
		}
		wg.Wait()
	} else {
		for w := 0; w < n; w++ {
			worker(w)
		}
	}
	return r
}

// TestConcurrentStressMatchesSerial hammers shared and distinct
// instruments from many goroutines and requires the canonical JSON and
// the full CSV snapshot to match a serially computed twin byte for byte.
// Counters are order-independent sums, histogram stats sort before
// summarizing (so shard layout is invisible), and per-worker gauges see
// their updates in program order — nothing observable may depend on
// goroutine scheduling.
func TestConcurrentStressMatchesSerial(t *testing.T) {
	const workers, ops = 8, 400
	serial := hammer(workers, ops, false)
	conc := hammer(workers, ops, true)

	if got, want := conc.Snapshot().CanonicalJSON(), serial.Snapshot().CanonicalJSON(); !bytes.Equal(got, want) {
		t.Fatalf("canonical snapshots diverge:\nparallel:\n%s\nserial:\n%s", got, want)
	}
	var gotCSV, wantCSV bytes.Buffer
	if err := conc.Snapshot().WriteCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if err := serial.Snapshot().WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if gotCSV.String() != wantCSV.String() {
		t.Fatalf("CSV snapshots diverge:\nparallel:\n%s\nserial:\n%s", gotCSV.String(), wantCSV.String())
	}

	// Spot-check absolute values against arithmetic, not just the twin.
	s := conc.Snapshot()
	if got := s.Counter("stress/shared"); got != workers*ops {
		t.Fatalf("shared counter = %d, want %d", got, workers*ops)
	}
	h, ok := s.Histogram("stress/shared_wait")
	if !ok || h.N != workers*ops {
		t.Fatalf("shared histogram N = %d (ok=%v), want %d", h.N, ok, workers*ops)
	}
}

// TestConcurrentCreateIdentity races many goroutines resolving the same
// never-before-seen identities: every caller must get the same instrument
// (one winner per identity, no lost updates).
func TestConcurrentCreateIdentity(t *testing.T) {
	const workers = 16
	r := NewRegistry()
	got := make([]*Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Same identity from every goroutine, plus enough distinct
			// identities to push the dirty level through promotions.
			got[w] = r.Counter("race", "winner", L("k", "v"))
			for i := 0; i < 64; i++ {
				r.Counter("race", "filler", LInt("i", i)).Inc()
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatalf("worker %d got a different *Counter for the same identity", w)
		}
	}
	for i := 0; i < 64; i++ {
		id := ID("race", "filler", LInt("i", i))
		if v := r.Snapshot().Counter(id); v != workers {
			t.Fatalf("%s = %d, want %d", id, v, workers)
		}
	}
}

// TestLookupZeroAlloc pins the zero-allocation property of the warm read
// path: resolving an existing instrument must not allocate, including the
// label-key rendering (stack buffer) and the map read (clean-level hit).
func TestLookupZeroAlloc(t *testing.T) {
	r := NewRegistry()
	// Warm until promoted to the clean level.
	for i := 0; i < 512; i++ {
		r.Counter("fabric", "bytes", L("scope", "remote"))
		r.Histogram("link", "queue_wait", L("link", "node3-eg"))
		r.Gauge("link", "utilization", L("link", "node3-eg"))
	}
	for name, fn := range map[string]func(){
		"counter":   func() { r.Counter("fabric", "bytes", L("scope", "remote")) },
		"histogram": func() { r.Histogram("link", "queue_wait", L("link", "node3-eg")) },
		"gauge":     func() { r.Gauge("link", "utilization", L("link", "node3-eg")) },
	} {
		if avg := testing.AllocsPerRun(200, fn); avg != 0 {
			t.Errorf("%s lookup allocates %v allocs/op, want 0", name, avg)
		}
	}
	// Counter updates on the resolved handle are also alloc-free.
	c := r.Counter("fabric", "bytes", L("scope", "remote"))
	if avg := testing.AllocsPerRun(200, func() { c.Add(7) }); avg != 0 {
		t.Errorf("counter Add allocates %v allocs/op, want 0", avg)
	}
}

// TestPromotionUnderChurn creates instruments while readers resolve
// existing ones, across enough identities to force several clean-level
// promotions, and checks nothing is lost or duplicated.
func TestPromotionUnderChurn(t *testing.T) {
	const workers, perWorker = 8, 200
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("churn", "c", LInt("w", w), LInt("i", i)).Inc()
				// Re-resolve an earlier identity: must hit the same handle
				// whether it has been promoted or still sits dirty.
				r.Counter("churn", "c", LInt("w", w), LInt("i", i/2)).Inc()
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got, want := len(s.Counters), workers*perWorker; got != want {
		t.Fatalf("snapshot has %d counters, want %d", got, want)
	}
	var total int64
	for _, c := range s.Counters {
		total += c.Value
	}
	if want := int64(2 * workers * perWorker); total != want {
		t.Fatalf("total increments = %d, want %d", total, want)
	}
	// A sampled identity carries the exact expected count: i=10 gets one
	// direct Inc plus re-resolve hits from i=20 and i=21.
	id := ID("churn", "c", LInt("w", 3), LInt("i", 10))
	if v := s.Counter(id); v != 3 {
		t.Fatalf("%s = %d, want 3", id, v)
	}
}
