package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestID(t *testing.T) {
	if got := ID("scheduler", "messages"); got != "scheduler/messages" {
		t.Fatalf("plain ID = %q", got)
	}
	// Labels are sorted by key regardless of argument order.
	a := ID("scheduler", "messages", L("kind", "heartbeat"), LInt("rank", 3))
	b := ID("scheduler", "messages", LInt("rank", 3), L("kind", "heartbeat"))
	want := "scheduler/messages{kind=heartbeat,rank=3}"
	if a != want || b != want {
		t.Fatalf("labeled IDs = %q, %q, want %q", a, b, want)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("sched", "msgs", L("kind", "submit"))
	c2 := r.Counter("sched", "msgs", L("kind", "submit"))
	if c1 != c2 {
		t.Fatal("same identity must return the same counter")
	}
	if c1 == r.Counter("sched", "msgs", L("kind", "release")) {
		t.Fatal("different labels must return different counters")
	}
	if r.Gauge("w", "mem") != r.Gauge("w", "mem") {
		t.Fatal("same identity must return the same gauge")
	}
	if r.Histogram("link", "wait") != r.Histogram("link", "wait") {
		t.Fatal("same identity must return the same histogram")
	}
	if got := c1.ID(); got != "sched/msgs{kind=submit}" {
		t.Fatalf("counter ID = %q", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "b")
	g := r.Gauge("a", "b")
	h := r.Histogram("a", "b")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	// All handle methods must be no-ops, not panics.
	c.Add(5)
	c.Inc()
	if c.Load() != 0 || c.ID() != "" {
		t.Fatal("nil counter must read as zero")
	}
	g.Set(1, 0)
	g.Add(2, 1)
	if g.Value() != 0 || g.Series() != nil || g.ID() != "" {
		t.Fatal("nil gauge must read as zero")
	}
	h.Observe(3)
	if h.Count() != 0 || h.ID() != "" {
		t.Fatal("nil histogram must read as zero")
	}
	if st := h.Stats(); st.N != 0 {
		t.Fatal("nil histogram stats must be empty")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x", "n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
}

func TestGaugeSeries(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("worker", "mem", LInt("id", 0))
	g.Set(10, 1.0)
	g.Add(5, 2.0)
	g.Add(-3, 3.0)
	if g.Value() != 12 {
		t.Fatalf("gauge value = %g, want 12", g.Value())
	}
	s := g.Series()
	if len(s) != 3 || s[0] != (Sample{1, 10}) || s[1] != (Sample{2, 15}) || s[2] != (Sample{3, 12}) {
		t.Fatalf("series = %+v", s)
	}
}

func TestGaugeDecimationDeterministic(t *testing.T) {
	run := func() []Sample {
		g := NewRegistry().Gauge("w", "mem")
		for i := 0; i < 3*maxGaugeSamples; i++ {
			g.Set(float64(i), float64(i))
		}
		return g.Series()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) > maxGaugeSamples+1 {
		t.Fatalf("series length %d out of bounds", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic decimation: %d vs %d samples", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Samples stay in time order after decimation.
	for i := 1; i < len(a); i++ {
		if a[i].T <= a[i-1].T {
			t.Fatalf("series out of order at %d: %+v", i, a[i-1:i+1])
		}
	}
}

func TestHistogramOrderInvariantStats(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("l", "wait", L("dir", "a"))
	h2 := r.Histogram("l", "wait", L("dir", "b"))
	xs := []float64{5, 1, 4, 2, 3, 0.5, 9, 0.25}
	for _, x := range xs {
		h1.Observe(x)
	}
	for i := len(xs) - 1; i >= 0; i-- {
		h2.Observe(xs[i])
	}
	s1, s2 := h1.Stats(), h2.Stats()
	if s1 != s2 {
		t.Fatalf("stats depend on observation order: %+v vs %+v", s1, s2)
	}
	if s1.N != len(xs) || s1.Min != 0.25 || s1.Max != 9 {
		t.Fatalf("stats = %+v", s1)
	}
	if h1.Count() != len(xs) {
		t.Fatalf("count = %d", h1.Count())
	}
}

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sched", "msgs", L("kind", "submit")).Add(3)
	r.Counter("sched", "msgs", L("kind", "heartbeat")).Add(7)
	r.Counter("bridge", "publishes").Add(12)
	r.Counter("bridge", "failovers") // zero — dropped from canonical form
	g := r.Gauge("worker", "mem", LInt("id", 1))
	g.Set(100, 0.5)
	g.Set(50, 1.5)
	h := r.Histogram("link", "wait")
	h.Observe(2)
	h.Observe(4)
	return r
}

func TestSnapshotSortedAndLookups(t *testing.T) {
	s := testRegistry().Snapshot()
	if len(s.Counters) != 4 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot sizes: %d/%d/%d", len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].ID >= s.Counters[i].ID {
			t.Fatalf("counters not sorted: %q >= %q", s.Counters[i-1].ID, s.Counters[i].ID)
		}
	}
	if got := s.Counter("bridge/publishes"); got != 12 {
		t.Fatalf("Counter lookup = %d", got)
	}
	if got := s.Counter("no/such"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
	if got := s.SumCounters("sched/msgs"); got != 10 {
		t.Fatalf("SumCounters = %d, want 10", got)
	}
	if got := s.Gauge("worker/mem{id=1}"); got != 50 {
		t.Fatalf("Gauge lookup = %g", got)
	}
	if got := s.Gauge("no/such"); got != 0 {
		t.Fatalf("missing gauge = %g", got)
	}
	h, ok := s.Histogram("link/wait")
	if !ok || h.N != 2 || h.Mean != 3 || h.Min != 2 || h.Max != 4 || h.Sum != 6 {
		t.Fatalf("histogram = %+v ok=%v", h, ok)
	}
	if _, ok := s.Histogram("no/such"); ok {
		t.Fatal("missing histogram must report !ok")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	s := testRegistry().Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Counter("bridge/publishes") != 12 {
		t.Fatal("round trip lost counter value")
	}
	if len(back.Gauges) != 1 || len(back.Gauges[0].Samples) != 2 {
		t.Fatalf("round trip lost gauge samples: %+v", back.Gauges)
	}
}

func TestWriteCSV(t *testing.T) {
	s := testRegistry().Snapshot()
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"kind,id,field,value",
		`counter,"bridge/publishes",value,12`,
		`gauge,"worker/mem{id=1}",value,50`,
		`gauge,"worker/mem{id=1}",t=0.5,100`,
		`histogram,"link/wait",p95,`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q in:\n%s", want, out)
		}
	}
}

func TestCanonicalJSON(t *testing.T) {
	a := testRegistry().Snapshot().CanonicalJSON()
	b := testRegistry().Snapshot().CanonicalJSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical form not reproducible:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(string(a), "failovers") {
		t.Fatal("zero counters must be omitted from the canonical form")
	}
	if !strings.Contains(string(a), `"sched/msgs{kind=heartbeat}": 7`) {
		t.Fatalf("canonical form missing counter:\n%s", a)
	}
	var m map[string]int64
	if err := json.Unmarshal(a, &m); err != nil {
		t.Fatalf("canonical form is not valid JSON: %v\n%s", err, a)
	}
	// Gauges and histograms (virtual-time dependent) must be excluded.
	if strings.Contains(string(a), "worker/mem") || strings.Contains(string(a), "link/wait") {
		t.Fatalf("canonical form must contain counters only:\n%s", a)
	}
	// An all-zero registry still renders valid JSON.
	empty := NewRegistry()
	empty.Counter("a", "b")
	if err := json.Unmarshal(empty.Snapshot().CanonicalJSON(), &m); err != nil {
		t.Fatalf("empty canonical form invalid: %v", err)
	}
}

func TestHistogramStatsNaNFree(t *testing.T) {
	h := NewRegistry().Histogram("x", "y")
	st := h.Stats()
	if st.N != 0 {
		t.Fatalf("empty stats N = %d", st.N)
	}
	for _, v := range []float64{st.Mean, st.Std, st.Sum} {
		if math.IsNaN(v) {
			t.Fatalf("empty stats contain NaN: %+v", st)
		}
	}
}
