package sim

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"deisago/internal/mpi"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
)

func testWorld(n int) *mpi.World {
	cfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	f := netsim.New(cfg, (n+1)/2)
	nodes := make([]netsim.NodeID, n)
	for i := range nodes {
		nodes[i] = netsim.NodeID(i / 2)
	}
	return mpi.NewWorld(f, nodes)
}

func baseConfig(px, py int) Config {
	return Config{
		GlobalX: 16, GlobalY: 12,
		ProcX: px, ProcY: py,
		Alpha:    0.2,
		CellCost: 1e-8,
	}
}

// gatherParallel runs the solver on a world and assembles the global
// field after the given number of steps.
func gatherParallel(t *testing.T, cfg Config, steps int) *ndarray.Array {
	t.Helper()
	w := testWorld(cfg.ProcX * cfg.ProcY)
	global := ndarray.New(cfg.GlobalX, cfg.GlobalY)
	var mu sync.Mutex
	init := HotSpotInitial(cfg)
	w.Run(0, func(c *mpi.Comm) {
		h, err := New(cfg, c, init)
		if err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < steps; s++ {
			h.Step()
		}
		local := h.Local()
		x0, y0 := h.Origin()
		mu.Lock()
		global.Slice(ndarray.Range{Start: x0, Stop: x0 + cfg.LocalX()},
			ndarray.Range{Start: y0, Stop: y0 + cfg.LocalY()}).CopyFrom(local)
		mu.Unlock()
	})
	return global
}

func TestConfigValidate(t *testing.T) {
	if err := baseConfig(2, 2).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{GlobalX: 0, GlobalY: 4, ProcX: 1, ProcY: 1, Alpha: 0.1},
		{GlobalX: 4, GlobalY: 4, ProcX: 0, ProcY: 1, Alpha: 0.1},
		{GlobalX: 5, GlobalY: 4, ProcX: 2, ProcY: 1, Alpha: 0.1}, // no tiling
		{GlobalX: 4, GlobalY: 4, ProcX: 1, ProcY: 1, Alpha: 0.3}, // unstable
		{GlobalX: 4, GlobalY: 4, ProcX: 1, ProcY: 1, Alpha: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, grid := range [][2]int{{1, 1}, {2, 1}, {1, 3}, {2, 2}, {4, 3}} {
		cfg := baseConfig(grid[0], grid[1])
		const steps = 8
		want := RunSerial(cfg, HotSpotInitial(cfg), steps)
		got := gatherParallel(t, cfg, steps)
		if !ndarray.AllClose(got, want, 1e-12) {
			t.Fatalf("parallel %dx%d differs from serial", grid[0], grid[1])
		}
	}
}

func TestMaxPrinciple(t *testing.T) {
	cfg := baseConfig(2, 2)
	w := testWorld(4)
	init := HotSpotInitial(cfg)
	w.Run(0, func(c *mpi.Comm) {
		h, err := New(cfg, c, init)
		if err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < 20; s++ {
			h.Step()
			lo, hi := h.LocalMinMax()
			if lo < -1e-12 || hi > 100+1e-12 {
				t.Errorf("max principle violated at step %d: [%v, %v]", s, lo, hi)
				return
			}
		}
	})
}

func TestDiffusionSpreadsHeat(t *testing.T) {
	cfg := baseConfig(1, 1)
	init := HotSpotInitial(cfg)
	u0 := RunSerial(cfg, init, 0)
	u20 := RunSerial(cfg, init, 20)
	// Peak decays, a cold cell near the hotspot warms.
	if u20.MaxAxis(0).MaxAxis(0).At() >= u0.MaxAxis(0).MaxAxis(0).At() {
		t.Fatal("peak did not decay")
	}
	// Cell adjacent to the hot square.
	cx, cy := cfg.GlobalX/2, cfg.GlobalY/2
	ry := cfg.GlobalY/8 + 1
	if u20.At(cx, cy+ry) <= u0.At(cx, cy+ry) {
		t.Fatal("heat did not spread")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	cfg := baseConfig(2, 1)
	w := testWorld(2)
	times := make([]float64, 2)
	init := HotSpotInitial(cfg)
	w.Run(0, func(c *mpi.Comm) {
		h, err := New(cfg, c, init)
		if err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < 3; s++ {
			h.Step()
		}
		times[c.Rank()] = c.Now()
	})
	cells := float64(cfg.LocalX() * cfg.LocalY())
	wantMin := 3 * cells * cfg.CellCost
	for r, tm := range times {
		if tm < wantMin {
			t.Fatalf("rank %d clock %v < compute-only bound %v", r, tm, wantMin)
		}
	}
}

func TestOriginAndCoords(t *testing.T) {
	cfg := baseConfig(2, 2)
	w := testWorld(4)
	w.Run(0, func(c *mpi.Comm) {
		h, err := New(cfg, c, HotSpotInitial(cfg))
		if err != nil {
			t.Error(err)
			return
		}
		px, py := h.Coords()
		x0, y0 := h.Origin()
		if x0 != px*8 || y0 != py*6 {
			t.Errorf("rank %d origin (%d,%d) for coords (%d,%d)", c.Rank(), x0, y0, px, py)
		}
		if h.Steps() != 0 {
			t.Error("fresh solver has steps")
		}
	})
}

func TestNewErrors(t *testing.T) {
	w := testWorld(2)
	w.Run(0, func(c *mpi.Comm) {
		if c.Rank() != 0 {
			// Rank 1 must also attempt CartCreate-free path; just exit.
			return
		}
		cfg := baseConfig(4, 1) // needs 4 ranks, world has 2
		if _, err := New(cfg, c, HotSpotInitial(cfg)); err == nil {
			t.Error("grid/world mismatch accepted")
		}
	})
}

// Property: total heat decreases monotonically (dissipation through the
// cold boundary) for random stable alphas and random hotspots.
func TestDissipationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			GlobalX: 8 + 2*rng.Intn(4),
			GlobalY: 8 + 2*rng.Intn(4),
			ProcX:   1, ProcY: 1,
			Alpha:    0.05 + 0.2*rng.Float64(),
			CellCost: 1e-9,
		}
		peak := 50 + 50*rng.Float64()
		init := func(gx, gy int) float64 {
			if gx == cfg.GlobalX/2 && gy == cfg.GlobalY/2 {
				return peak
			}
			return 0
		}
		prev := math.Inf(1)
		for _, steps := range []int{0, 5, 10, 20} {
			u := RunSerial(cfg, init, steps)
			total := u.Sum()
			if total > prev+1e-9 {
				return false
			}
			prev = total
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
