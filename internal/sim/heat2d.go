// Package sim implements the Heat2D miniapp used by the paper's
// evaluation: an explicit finite-difference solver for the 2-D heat
// equation, domain-decomposed over a Cartesian MPI process grid with
// halo exchange. Each rank owns a local block; per-timestep the solver
// exchanges halos, updates its interior, and (through PDI) shares its
// block with the coupling layer.
package sim

import (
	"fmt"
	"math"

	"deisago/internal/mpi"
	"deisago/internal/ndarray"
	"deisago/internal/vtime"
)

// Config describes the global problem and its decomposition.
type Config struct {
	// GlobalX, GlobalY are the global grid extents.
	GlobalX, GlobalY int
	// ProcX, ProcY form the process grid; ProcX*ProcY must equal the
	// world size and divide the global extents.
	ProcX, ProcY int
	// Alpha is the diffusion number (stability requires Alpha <= 0.25
	// for the explicit scheme).
	Alpha float64
	// CellCost is the modelled compute time per cell update in virtual
	// seconds (calibrated so a 128 MiB/process block takes roughly the
	// paper's per-iteration simulation time).
	CellCost vtime.Dur
}

// Validate checks decomposition invariants.
func (c Config) Validate() error {
	if c.GlobalX <= 0 || c.GlobalY <= 0 {
		return fmt.Errorf("sim: global extents must be positive")
	}
	if c.ProcX <= 0 || c.ProcY <= 0 {
		return fmt.Errorf("sim: process grid must be positive")
	}
	if c.GlobalX%c.ProcX != 0 || c.GlobalY%c.ProcY != 0 {
		return fmt.Errorf("sim: process grid %dx%d does not divide global %dx%d",
			c.ProcX, c.ProcY, c.GlobalX, c.GlobalY)
	}
	if c.Alpha <= 0 || c.Alpha > 0.25 {
		return fmt.Errorf("sim: alpha %v outside stable range (0, 0.25]", c.Alpha)
	}
	return nil
}

// LocalX returns the per-rank block extent in x.
func (c Config) LocalX() int { return c.GlobalX / c.ProcX }

// LocalY returns the per-rank block extent in y.
func (c Config) LocalY() int { return c.GlobalY / c.ProcY }

// Heat2D is one rank's solver state.
type Heat2D struct {
	cfg  Config
	comm *mpi.Comm
	cart *mpi.Cart

	lx, ly int
	px, py int // this rank's process-grid coordinates
	// u and next hold the local block with a one-cell halo:
	// (lx+2) × (ly+2).
	u, next *ndarray.Array
	step    int
	// Persistent send-side halo scratch: send copies payloads before the
	// fabric transfer completes (MPI_Send semantics), so one row and one
	// column buffer per rank suffice for the whole run.
	rowBuf, colBuf []float64
}

// Halo-exchange message tags.
const (
	tagXLow = 100 + iota
	tagXHigh
	tagYLow
	tagYHigh
)

// New creates a solver on the given communicator. The initial condition
// is given in global coordinates; boundary cells are held fixed at their
// initial values (Dirichlet).
func New(cfg Config, comm *mpi.Comm, initial func(gx, gy int) float64) (*Heat2D, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProcX*cfg.ProcY != comm.Size() {
		return nil, fmt.Errorf("sim: process grid %dx%d != world size %d", cfg.ProcX, cfg.ProcY, comm.Size())
	}
	h := &Heat2D{
		cfg:  cfg,
		comm: comm,
		cart: comm.CartCreate([]int{cfg.ProcX, cfg.ProcY}),
		lx:   cfg.LocalX(),
		ly:   cfg.LocalY(),
	}
	coords := h.cart.Coords(comm.Rank())
	h.px, h.py = coords[0], coords[1]
	h.u = ndarray.New(h.lx+2, h.ly+2)
	h.next = ndarray.New(h.lx+2, h.ly+2)
	h.rowBuf = make([]float64, h.ly)
	h.colBuf = make([]float64, h.lx)
	x0, y0 := h.Origin()
	for i := 0; i <= h.lx+1; i++ {
		for j := 0; j <= h.ly+1; j++ {
			gx, gy := x0+i-1, y0+j-1
			if gx < 0 {
				gx = 0
			}
			if gy < 0 {
				gy = 0
			}
			if gx >= cfg.GlobalX {
				gx = cfg.GlobalX - 1
			}
			if gy >= cfg.GlobalY {
				gy = cfg.GlobalY - 1
			}
			h.u.Set(initial(gx, gy), i, j)
		}
	}
	return h, nil
}

// Origin returns the global coordinates of this rank's first interior
// cell.
func (h *Heat2D) Origin() (x0, y0 int) {
	return h.px * h.lx, h.py * h.ly
}

// Coords returns this rank's process-grid coordinates.
func (h *Heat2D) Coords() (px, py int) { return h.px, h.py }

// Step advances one timestep: halo exchange, then the five-point stencil
// update. The rank's virtual clock advances by the modelled compute cost
// plus the communication time of the exchange.
func (h *Heat2D) Step() {
	h.exchangeHalos()

	alpha := h.cfg.Alpha
	x0, y0 := h.Origin()
	// The stencil runs on the raw row-major buffers; the float operations
	// and their order are identical to the At/Set formulation, so results
	// stay bit-identical while skipping per-cell index checks.
	w := h.ly + 2
	ud, nd := h.u.Data(), h.next.Data()
	for i := 1; i <= h.lx; i++ {
		gx := x0 + i - 1
		up, row, down := ud[(i-1)*w:i*w], ud[i*w:(i+1)*w], ud[(i+1)*w:(i+2)*w]
		out := nd[i*w : (i+1)*w]
		for j := 1; j <= h.ly; j++ {
			gy := y0 + j - 1
			c := row[j]
			// Global Dirichlet boundary: cells on the domain edge stay
			// fixed, matching RunSerial.
			if gx == 0 || gy == 0 || gx == h.cfg.GlobalX-1 || gy == h.cfg.GlobalY-1 {
				out[j] = c
				continue
			}
			lap := up[j] + down[j] + row[j-1] + row[j+1] - 4*c
			out[j] = c + alpha*lap
		}
	}
	// Physical boundaries stay fixed (Dirichlet): copy the halo frame.
	h.copyBoundary()
	h.u, h.next = h.next, h.u
	h.step++
	h.comm.Compute(vtime.Dur(float64(h.lx*h.ly)) * h.cfg.CellCost)
}

func (h *Heat2D) copyBoundary() {
	for j := 0; j <= h.ly+1; j++ {
		h.next.Set(h.u.At(0, j), 0, j)
		h.next.Set(h.u.At(h.lx+1, j), h.lx+1, j)
	}
	for i := 0; i <= h.lx+1; i++ {
		h.next.Set(h.u.At(i, 0), i, 0)
		h.next.Set(h.u.At(i, h.ly+1), i, h.ly+1)
	}
}

// exchangeHalos swaps boundary rows/columns with the four Cartesian
// neighbors. Boundary-less sides keep their initial (Dirichlet) halo.
// Outgoing payloads are staged in the rank's persistent rowBuf/colBuf;
// delivered payloads are recycled into the MPI buffer pool once applied,
// so a steady-state exchange allocates nothing.
func (h *Heat2D) exchangeHalos() {
	// X direction: rows 1 and lx.
	lowX, highX := h.cart.Shift(0, 1) // src=px-1, dst=px+1
	if highX >= 0 {
		got := h.comm.Sendrecv(highX, tagXHigh, h.rowCopy(h.lx))
		h.setRow(h.lx+1, got)
		h.comm.Recycle(got)
	}
	if lowX >= 0 {
		got := h.comm.Sendrecv(lowX, tagXHigh, h.rowCopy(1))
		h.setRow(0, got)
		h.comm.Recycle(got)
	}
	// Y direction: columns 1 and ly.
	lowY, highY := h.cart.Shift(1, 1)
	if highY >= 0 {
		got := h.comm.Sendrecv(highY, tagYHigh, h.colCopy(h.ly))
		h.setCol(h.ly+1, got)
		h.comm.Recycle(got)
	}
	if lowY >= 0 {
		got := h.comm.Sendrecv(lowY, tagYHigh, h.colCopy(1))
		h.setCol(0, got)
		h.comm.Recycle(got)
	}
}

func (h *Heat2D) rowCopy(i int) []float64 {
	out := h.rowBuf
	for j := 1; j <= h.ly; j++ {
		out[j-1] = h.u.At(i, j)
	}
	return out
}

func (h *Heat2D) setRow(i int, vals []float64) {
	for j := 1; j <= h.ly; j++ {
		h.u.Set(vals[j-1], i, j)
	}
}

func (h *Heat2D) colCopy(j int) []float64 {
	out := h.colBuf
	for i := 1; i <= h.lx; i++ {
		out[i-1] = h.u.At(i, j)
	}
	return out
}

func (h *Heat2D) setCol(j int, vals []float64) {
	for i := 1; i <= h.lx; i++ {
		h.u.Set(vals[i-1], i, j)
	}
}

// Local returns a copy of this rank's interior block (lx × ly).
func (h *Heat2D) Local() *ndarray.Array {
	return h.u.Slice(ndarray.Range{Start: 1, Stop: h.lx + 1},
		ndarray.Range{Start: 1, Stop: h.ly + 1}).Copy()
}

// Steps returns how many timesteps have been taken.
func (h *Heat2D) Steps() int { return h.step }

// LocalMinMax returns the interior extrema (for max-principle checks).
func (h *Heat2D) LocalMinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 1; i <= h.lx; i++ {
		for j := 1; j <= h.ly; j++ {
			v := h.u.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// RunSerial solves the same problem on one rank without MPI, for
// verification: it returns the global field after the given number of
// steps.
func RunSerial(cfg Config, initial func(gx, gy int) float64, steps int) *ndarray.Array {
	nx, ny := cfg.GlobalX, cfg.GlobalY
	u := ndarray.New(nx, ny)
	next := ndarray.New(nx, ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			u.Set(initial(i, j), i, j)
		}
	}
	for s := 0; s < steps; s++ {
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				if i == 0 || j == 0 || i == nx-1 || j == ny-1 {
					next.Set(u.At(i, j), i, j)
					continue
				}
				c := u.At(i, j)
				lap := u.At(i-1, j) + u.At(i+1, j) + u.At(i, j-1) + u.At(i, j+1) - 4*c
				next.Set(c+cfg.Alpha*lap, i, j)
			}
		}
		u, next = next, u
	}
	return u
}

// HotSpotInitial returns the standard test initial condition: a hot
// square in the domain center over a cold background.
func HotSpotInitial(cfg Config) func(gx, gy int) float64 {
	cx, cy := cfg.GlobalX/2, cfg.GlobalY/2
	rx, ry := cfg.GlobalX/8+1, cfg.GlobalY/8+1
	return func(gx, gy int) float64 {
		if gx >= cx-rx && gx < cx+rx && gy >= cy-ry && gy < cy+ry {
			return 100
		}
		return 0
	}
}
