package multijob

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestTenantValidate(t *testing.T) {
	cases := []struct {
		in Tenant
		ok bool
	}{
		{Tenant{Name: "jobA", Weight: 1}, true},
		{Tenant{Name: "j", Weight: 0.5}, true},
		{Tenant{Name: "", Weight: 1}, false},
		{Tenant{Name: "a/b", Weight: 1}, false},
		{Tenant{Name: "jobA", Weight: 0}, false},
		{Tenant{Name: "jobA", Weight: -2}, false},
	}
	for _, c := range cases {
		if err := c.in.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.in, err, c.ok)
		}
	}
}

func TestAdmitUnlimited(t *testing.T) {
	p := NewPlane(Limits{})
	var rels []func()
	for i := 0; i < 10; i++ {
		rel, err := p.Admit("job", 1<<20)
		if err != nil {
			t.Fatalf("Admit: %v", err)
		}
		rels = append(rels, rel)
	}
	if s := p.Stats(); s.Running != 10 || s.Admitted != 10 {
		t.Fatalf("stats = %+v, want 10 running/admitted", s)
	}
	for _, rel := range rels {
		rel()
	}
	if s := p.Stats(); s.Running != 0 || s.InUse != 0 {
		t.Fatalf("after release stats = %+v, want 0 running, 0 in use", s)
	}
}

func TestAdmitOverBudgetRejects(t *testing.T) {
	p := NewPlane(Limits{TenantBudget: 100, ClusterBudget: 1000})
	if lim := p.Limits(); lim.TenantBudget != 100 || lim.ClusterBudget != 1000 {
		t.Fatalf("Limits() = %+v, want the construction limits back", lim)
	}
	if _, err := p.Admit("big", 101); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("tenant-budget overflow: err = %v, want ErrOverBudget", err)
	}
	p2 := NewPlane(Limits{ClusterBudget: 50})
	if _, err := p2.Admit("big", 51); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("cluster-budget overflow: err = %v, want ErrOverBudget", err)
	}
	if _, err := p.Admit("neg", -1); err == nil {
		t.Fatal("negative estimate admitted")
	}
	if s := p.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
}

func TestAdmitConcurrencyGate(t *testing.T) {
	p := NewPlane(Limits{MaxConcurrent: 2})
	rel1, err := p.Admit("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := p.Admit("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		rel3, err := p.Admit("c", 0)
		if err != nil {
			t.Error(err)
		}
		close(got)
		rel3()
	}()
	select {
	case <-got:
		t.Fatal("third job admitted past MaxConcurrent=2")
	case <-time.After(20 * time.Millisecond):
	}
	if s := p.Stats(); s.Waiting != 1 || s.MaxQueue != 1 {
		t.Fatalf("stats = %+v, want one waiter", s)
	}
	rel1()
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("third job never admitted after a release")
	}
	rel2()
}

func TestAdmitBudgetBackpressure(t *testing.T) {
	p := NewPlane(Limits{ClusterBudget: 100})
	rel1, err := p.Admit("a", 70)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		rel2, err := p.Admit("b", 50)
		if err != nil {
			t.Error(err)
		}
		close(got)
		rel2()
	}()
	select {
	case <-got:
		t.Fatal("job admitted past the cluster budget")
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("job never admitted after budget freed")
	}
}

// TestAdmitFIFONoOvertake: a small job arriving behind a large queued
// job must not jump the queue even when it would fit — FIFO prevents
// big-job starvation.
func TestAdmitFIFONoOvertake(t *testing.T) {
	p := NewPlane(Limits{ClusterBudget: 100})
	relA, err := p.Admit("a", 80) // leaves headroom 20
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	started := make(chan string, 2)
	admit := func(name string, est int64) {
		rel, err := p.Admit(name, est)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
		started <- name
		rel()
	}
	go admit("big", 90) // does not fit until a releases
	// Give "big" time to take the earlier ticket.
	for {
		if s := p.Stats(); s.Waiting == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	go admit("small", 10) // would fit now, but must wait behind big
	select {
	case name := <-started:
		t.Fatalf("%s admitted before the queue head", name)
	case <-time.After(20 * time.Millisecond):
	}
	relA()
	<-started
	<-started
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "big" || order[1] != "small" {
		t.Fatalf("admission order %v, want [big small]", order)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	p := NewPlane(Limits{MaxConcurrent: 1})
	rel, err := p.Admit("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	rel()
	if s := p.Stats(); s.Running != 0 || s.InUse != 0 {
		t.Fatalf("double release corrupted accounting: %+v", s)
	}
}

func TestNewPlanePanicsOnNegativeLimits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative limits")
		}
	}()
	NewPlane(Limits{MaxConcurrent: -1})
}

func TestJainIndex(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if got := JainIndex(nil); got != 1 {
		t.Errorf("JainIndex(nil) = %g, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero = %g, want 1", got)
	}
	if got := JainIndex([]float64{5, 5, 5, 5}); !approx(got, 1) {
		t.Errorf("equal shares = %g, want 1", got)
	}
	// One tenant hogging everything: 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); !approx(got, 1) {
		// zeros excluded -> single positive entry is perfectly fair to itself
		t.Errorf("single positive = %g, want 1", got)
	}
	if got := JainIndex([]float64{1, 1, 1, 97}); got >= 0.5 {
		t.Errorf("skewed shares = %g, want < 0.5", got)
	}
	// Known value: x = {1, 3} -> (4)^2 / (2 * 10) = 0.8.
	if got := JainIndex([]float64{1, 3}); !approx(got, 0.8) {
		t.Errorf("JainIndex({1,3}) = %g, want 0.8", got)
	}
}
