// Package multijob is the control plane that admits N concurrent
// client pipelines onto one shared deisa platform (cluster, fabric,
// PFS). It provides:
//
//   - Tenant: a job's identity and fair-share weight, mirrored onto the
//     scheduler via dask.Cluster.RegisterTenant (key namespacing and
//     weighted ready-queue interleaving live there).
//   - Limits + Plane: an admission queue with configurable concurrency
//     and managed-memory budgets. Jobs whose declared estimate can
//     never fit are rejected immediately (ErrOverBudget); everything
//     else queues FIFO and starts only when both the concurrency slot
//     and the budget headroom exist — backpressure instead of
//     overcommit, layered on the per-worker governance ledgers that
//     bound what admitted jobs can actually hold resident.
//   - JainIndex: the fairness figure of merit the per-tenant service
//     gauges are summarized by.
//
// The plane is deliberately cluster-agnostic: it hands out admission
// tickets, the harness driver (harness.RunMultiJob) runs the admitted
// pipeline. Admission order is FIFO with no overtaking, so a large job
// queued behind small ones is never starved by late arrivals.
package multijob

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Tenant is one job's identity on the shared platform.
type Tenant struct {
	// Name is the job namespace: every key of the job's pipeline is
	// prefixed "<Name>/". Must be non-empty, without '/'.
	Name string
	// Weight is the fair-share weight (>0): a weight-2 tenant receives
	// twice the ready-queue service of a weight-1 tenant while both are
	// backlogged.
	Weight float64
}

// Validate checks the tenant fields.
func (t Tenant) Validate() error {
	if t.Name == "" || strings.ContainsRune(t.Name, '/') {
		return fmt.Errorf("multijob: invalid tenant name %q (non-empty, no '/')", t.Name)
	}
	if t.Weight <= 0 {
		return fmt.Errorf("multijob: tenant %q needs a positive weight, got %g", t.Name, t.Weight)
	}
	return nil
}

// Limits bounds what the admission plane lets run at once. Zero values
// mean "unlimited" for each knob independently.
type Limits struct {
	// MaxConcurrent caps how many jobs run simultaneously.
	MaxConcurrent int
	// TenantBudget caps one job's declared managed-memory estimate; a
	// job declaring more is rejected outright (it could never fit).
	TenantBudget int64
	// ClusterBudget caps the sum of running jobs' estimates; a job
	// within its tenant budget but over the remaining headroom queues
	// until enough running jobs release.
	ClusterBudget int64
}

// ErrOverBudget reports a job whose declared estimate exceeds a budget
// it could never fit under — queueing would wait forever, so admission
// rejects immediately. Match with errors.Is.
var ErrOverBudget = errors.New("multijob: job estimate exceeds admission budget")

// Plane is the admission queue. Admit blocks callers FIFO until their
// job fits; Release (the function Admit returns) frees the slot.
type Plane struct {
	lim Limits

	mu   sync.Mutex
	cond *sync.Cond
	// FIFO tickets: a caller admits only when its ticket is the lowest
	// waiting one and the limits allow it, so arrival order is service
	// order and a big job cannot be starved by smaller late arrivals.
	nextTicket  int64
	serveTicket int64
	running     int
	inUse       int64 // sum of running jobs' estimates

	admitted int64
	rejected int64
	maxQueue int // high-water mark of simultaneous waiters
	waiting  int
}

// NewPlane builds an admission plane with the given limits.
func NewPlane(lim Limits) *Plane {
	if lim.MaxConcurrent < 0 || lim.TenantBudget < 0 || lim.ClusterBudget < 0 {
		panic(fmt.Sprintf("multijob: negative limits %+v", lim))
	}
	p := &Plane{lim: lim}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Limits returns the plane's configured limits.
func (p *Plane) Limits() Limits { return p.lim }

// Admit asks to run a job declaring the given managed-memory estimate
// (bytes; 0 = negligible). It returns ErrOverBudget immediately when
// the estimate exceeds the per-tenant or whole-cluster budget — no
// amount of waiting could admit it. Otherwise it blocks until the job
// is at the head of the FIFO queue and both the concurrency slot and
// the budget headroom are free, then returns a release function the
// caller must invoke exactly once when the job finishes (calling it
// more than once is a no-op).
func (p *Plane) Admit(name string, estimate int64) (release func(), err error) {
	if estimate < 0 {
		return nil, fmt.Errorf("multijob: job %q declares negative estimate %d", name, estimate)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if (p.lim.TenantBudget > 0 && estimate > p.lim.TenantBudget) ||
		(p.lim.ClusterBudget > 0 && estimate > p.lim.ClusterBudget) {
		p.rejected++
		return nil, fmt.Errorf("multijob: job %q estimate %d: %w", name, estimate, ErrOverBudget)
	}
	ticket := p.nextTicket
	p.nextTicket++
	p.waiting++
	if p.waiting > p.maxQueue {
		p.maxQueue = p.waiting
	}
	for !(ticket == p.serveTicket && p.fitsLocked(estimate)) {
		p.cond.Wait()
	}
	p.waiting--
	p.serveTicket++
	p.running++
	p.inUse += estimate
	p.admitted++
	p.cond.Broadcast() // the next ticket may also fit
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.running--
			p.inUse -= estimate
			p.mu.Unlock()
			p.cond.Broadcast()
		})
	}, nil
}

// fitsLocked reports whether a job with the given estimate fits the
// limits right now. Caller holds p.mu.
func (p *Plane) fitsLocked(estimate int64) bool {
	if p.lim.MaxConcurrent > 0 && p.running >= p.lim.MaxConcurrent {
		return false
	}
	if p.lim.ClusterBudget > 0 && p.inUse+estimate > p.lim.ClusterBudget {
		return false
	}
	return true
}

// Stats is a snapshot of the plane's admission accounting.
type Stats struct {
	Admitted int64 // jobs admitted so far
	Rejected int64 // jobs rejected over budget
	Running  int   // jobs currently holding a slot
	Waiting  int   // jobs currently queued
	MaxQueue int   // high-water mark of simultaneous waiters
	InUse    int64 // sum of running jobs' estimates
}

// Stats snapshots the plane.
func (p *Plane) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Admitted: p.admitted, Rejected: p.rejected,
		Running: p.running, Waiting: p.waiting,
		MaxQueue: p.maxQueue, InUse: p.inUse,
	}
}

// JainIndex computes Jain's fairness index over the given allocations:
// (Σx)² / (n·Σx²), which is 1 when all x are equal and 1/n when one
// claims everything. Non-positive entries are excluded; an empty (or
// all-zero) input returns 1.
func JainIndex(xs []float64) float64 {
	var sum, sum2 float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += x
		sum2 += x * x
		n++
	}
	if n == 0 || sum2 == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sum2)
}
