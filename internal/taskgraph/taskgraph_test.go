package taskgraph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func addConst(g *Graph, k Key, v float64) {
	g.AddFn(k, nil, func([]any) (any, error) { return v, nil }, 0)
}

func addSum(g *Graph, k Key, deps ...Key) {
	g.AddFn(k, deps, func(in []any) (any, error) {
		var s float64
		for _, x := range in {
			s += x.(float64)
		}
		return s, nil
	}, 0)
}

func diamond() *Graph {
	g := New()
	addConst(g, "a", 1)
	addSum(g, "b", "a")
	addSum(g, "c", "a")
	addSum(g, "d", "b", "c")
	return g
}

func TestAddGetHasLen(t *testing.T) {
	g := diamond()
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Has("a") || g.Has("z") {
		t.Fatal("Has wrong")
	}
	if g.Get("b") == nil || g.Get("z") != nil {
		t.Fatal("Get wrong")
	}
	ks := g.Keys()
	if len(ks) != 4 || ks[0] != "a" || ks[3] != "d" {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestDuplicateKeyPanics(t *testing.T) {
	g := New()
	addConst(g, "a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	addConst(g, "a", 2)
}

func TestTopoSortOrder(t *testing.T) {
	g := diamond()
	order, err := g.TopoSort([]Key{"d"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[Key]int{}
	for i, k := range order {
		pos[k] = i
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for _, k := range order {
		for _, d := range g.Get(k).Deps {
			if pos[d] > pos[k] {
				t.Fatalf("dependency %q after dependent %q in %v", d, k, order)
			}
		}
	}
}

func TestTopoSortPartial(t *testing.T) {
	g := diamond()
	order, err := g.TopoSort([]Key{"b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("partial order = %v, want [a b]", order)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	g.AddFn("x", []Key{"y"}, func([]any) (any, error) { return nil, nil }, 0)
	g.AddFn("y", []Key{"x"}, func([]any) (any, error) { return nil, nil }, 0)
	if _, err := g.TopoSort([]Key{"x"}, nil); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(nil); err == nil {
		t.Fatal("Validate missed cycle")
	}
}

func TestMissingDependency(t *testing.T) {
	g := New()
	g.AddFn("x", []Key{"ghost"}, func([]any) (any, error) { return nil, nil }, 0)
	if _, err := g.TopoSort([]Key{"x"}, nil); err == nil {
		t.Fatal("missing dep not detected")
	}
	// Declaring it external fixes validation.
	ext := map[Key]bool{"ghost": true}
	if _, err := g.TopoSort([]Key{"x"}, ext); err != nil {
		t.Fatalf("external dep rejected: %v", err)
	}
	if err := g.Validate(ext); err != nil {
		t.Fatalf("Validate with external: %v", err)
	}
}

func TestCullKeepsExactlyReachable(t *testing.T) {
	g := diamond()
	addConst(g, "orphan", 9)
	culled, err := g.Cull([]Key{"d"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if culled.Len() != 4 || culled.Has("orphan") {
		t.Fatalf("cull kept %v", culled.Keys())
	}
	culled2, _ := g.Cull([]Key{"b"}, nil)
	if culled2.Len() != 2 {
		t.Fatalf("cull(b) = %v", culled2.Keys())
	}
}

func TestDependents(t *testing.T) {
	g := diamond()
	deps := g.Dependents()
	if len(deps["a"]) != 2 {
		t.Fatalf("Dependents[a] = %v", deps["a"])
	}
	if len(deps["b"]) != 1 || deps["b"][0] != "d" {
		t.Fatalf("Dependents[b] = %v", deps["b"])
	}
	if len(deps["d"]) != 0 {
		t.Fatal("sink has dependents")
	}
}

func TestRoots(t *testing.T) {
	g := diamond()
	r := g.Roots(nil)
	if len(r) != 1 || r[0] != "a" {
		t.Fatalf("Roots = %v", r)
	}
	// With 'a' treated as externally satisfied, b and c become roots too.
	g2 := New()
	g2.AddFn("b", []Key{"ext"}, func([]any) (any, error) { return nil, nil }, 0)
	r2 := g2.Roots(map[Key]bool{"ext": true})
	if len(r2) != 1 || r2[0] != "b" {
		t.Fatalf("Roots with externals = %v", r2)
	}
}

func TestMerge(t *testing.T) {
	g1 := New()
	addConst(g1, "a", 1)
	shared := g1.Get("a")
	g2 := New()
	g2.Add(shared)
	addSum(g2, "b", "a")
	g1.Merge(g2)
	if g1.Len() != 2 {
		t.Fatalf("merged Len = %d", g1.Len())
	}
}

func TestMergeConflictPanics(t *testing.T) {
	g1 := New()
	addConst(g1, "a", 1)
	g2 := New()
	addConst(g2, "a", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting merge did not panic")
		}
	}()
	g1.Merge(g2)
}

func TestIsData(t *testing.T) {
	g := New()
	g.Add(&Task{Key: "data"})
	addConst(g, "fn", 1)
	if !g.Get("data").IsData() || g.Get("fn").IsData() {
		t.Fatal("IsData wrong")
	}
}

// Property: for random DAGs (edges only from lower to higher indices),
// TopoSort emits each reachable key once, dependencies first, and Cull
// returns exactly the emitted set.
func TestTopoAndCullQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		g := New()
		for i := 0; i < n; i++ {
			var deps []Key
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.25 {
					deps = append(deps, Key(fmt.Sprintf("t%03d", j)))
				}
			}
			g.AddFn(Key(fmt.Sprintf("t%03d", i)), deps, func([]any) (any, error) { return nil, nil }, 0)
		}
		target := Key(fmt.Sprintf("t%03d", n-1))
		order, err := g.TopoSort([]Key{target}, nil)
		if err != nil {
			return false
		}
		pos := map[Key]int{}
		for i, k := range order {
			if _, dup := pos[k]; dup {
				return false
			}
			pos[k] = i
		}
		for _, k := range order {
			for _, d := range g.Get(k).Deps {
				if pd, ok := pos[d]; !ok || pd > pos[k] {
					return false
				}
			}
		}
		culled, err := g.Cull([]Key{target}, nil)
		if err != nil || culled.Len() != len(order) {
			return false
		}
		for _, k := range order {
			if !culled.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAddPanicsOnBadTask(t *testing.T) {
	g := New()
	for name, fn := range map[string]func(){
		"nil task":  func() { g.Add(nil) },
		"empty key": func() { g.Add(&Task{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKeysCachedAndInvalidated(t *testing.T) {
	g := diamond()
	first := g.Keys()
	want := []Key{"a", "b", "c", "d"}
	if len(first) != len(want) {
		t.Fatalf("Keys() = %v, want %v", first, want)
	}
	for i, k := range want {
		if first[i] != k {
			t.Fatalf("Keys() = %v, want %v", first, want)
		}
	}
	// A second call on an unchanged graph must reuse the cache.
	if n := testing.AllocsPerRun(10, func() { g.Keys() }); n != 0 {
		t.Fatalf("cached Keys() allocates %v per run, want 0", n)
	}
	// Add invalidates.
	addConst(g, "aa", 2)
	after := g.Keys()
	if len(after) != 5 || after[0] != "a" || after[1] != "aa" {
		t.Fatalf("Keys() after Add = %v, want aa in sorted position", after)
	}
	// Merge invalidates.
	other := New()
	addConst(other, "zz", 3)
	g.Merge(other)
	merged := g.Keys()
	if len(merged) != 6 || merged[5] != "zz" {
		t.Fatalf("Keys() after Merge = %v, want zz last", merged)
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	g := diamond()
	var visited []Key
	g.Walk(func(k Key, task *Task) bool {
		if task == nil || task.Key != k {
			t.Fatalf("Walk yielded task %+v for key %q", task, k)
		}
		visited = append(visited, k)
		return true
	})
	keys := g.Keys()
	if len(visited) != len(keys) {
		t.Fatalf("Walk visited %v, want %v", visited, keys)
	}
	for i := range keys {
		if visited[i] != keys[i] {
			t.Fatalf("Walk visited %v, want %v", visited, keys)
		}
	}
	count := 0
	g.Walk(func(Key, *Task) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("Walk after yield=false visited %d tasks, want 1", count)
	}
	// Iterating an unchanged graph through Walk allocates nothing.
	if n := testing.AllocsPerRun(10, func() {
		g.Walk(func(Key, *Task) bool { return true })
	}); n != 0 {
		t.Fatalf("Walk allocates %v per run, want 0", n)
	}
}
