package taskgraph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// chainGraph builds a linear chain c0 -> c1 -> ... -> c{n-1} where c0
// returns base and each link adds 1.
func chainGraph(n int, base float64) *Graph {
	g := New()
	g.AddFn("c0", nil, func([]any) (any, error) { return base, nil }, 1)
	for i := 1; i < n; i++ {
		g.AddFn(Key(fmt.Sprintf("c%d", i)), []Key{Key(fmt.Sprintf("c%d", i-1))},
			func(in []any) (any, error) { return in[0].(float64) + 1, nil }, 1)
	}
	return g
}

func evalGraph(t *testing.T, g *Graph, target Key) any {
	t.Helper()
	order, err := g.TopoSort([]Key{target}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[Key]any{}
	for _, k := range order {
		task := g.Get(k)
		in := make([]any, len(task.Deps))
		for i, d := range task.Deps {
			in[i] = vals[d]
		}
		v, err := task.Fn(in)
		if err != nil {
			t.Fatal(err)
		}
		vals[k] = v
	}
	return vals[target]
}

func TestFuseLinearChain(t *testing.T) {
	g := chainGraph(5, 10)
	fused := Fuse(g, map[Key]bool{"c4": true})
	if fused.Len() != 1 {
		t.Fatalf("fused graph has %d tasks, want 1: %v", fused.Len(), fused.Keys())
	}
	ft := fused.Get("c4")
	if ft == nil {
		t.Fatal("tail key lost")
	}
	if ft.Cost != 5 {
		t.Fatalf("fused cost = %v, want 5", ft.Cost)
	}
	if got := evalGraph(t, fused, "c4"); got.(float64) != 14 {
		t.Fatalf("fused result = %v, want 14", got)
	}
}

func TestFuseKeepsBranchPoints(t *testing.T) {
	// a -> b -> c and a -> d: a has two dependents, so only b->c fuses.
	g := New()
	g.AddFn("a", nil, func([]any) (any, error) { return 1.0, nil }, 1)
	g.AddFn("b", []Key{"a"}, func(in []any) (any, error) { return in[0].(float64) * 2, nil }, 1)
	g.AddFn("c", []Key{"b"}, func(in []any) (any, error) { return in[0].(float64) + 1, nil }, 1)
	g.AddFn("d", []Key{"a"}, func(in []any) (any, error) { return in[0].(float64) - 1, nil }, 1)
	fused := Fuse(g, map[Key]bool{"c": true, "d": true})
	if fused.Len() != 3 {
		t.Fatalf("fused len = %d, want 3 (a, bc, d): %v", fused.Len(), fused.Keys())
	}
	if !fused.Has("a") || !fused.Has("c") || !fused.Has("d") || fused.Has("b") {
		t.Fatalf("fused keys = %v", fused.Keys())
	}
	if got := evalGraph(t, fused, "c"); got.(float64) != 3 {
		t.Fatalf("c = %v, want 3", got)
	}
	if got := evalGraph(t, fused, "d"); got.(float64) != 0 {
		t.Fatalf("d = %v, want 0", got)
	}
}

func TestFuseRespectsKeep(t *testing.T) {
	g := chainGraph(4, 0)
	fused := Fuse(g, map[Key]bool{"c1": true, "c3": true})
	// c0->c1 can't fuse (c1 kept means c0 may fuse into c1? keep guards
	// the predecessor: c1 kept -> c1 does not fuse into c2).
	if !fused.Has("c1") || !fused.Has("c3") {
		t.Fatalf("kept keys missing: %v", fused.Keys())
	}
	if got := evalGraph(t, fused, "c3"); got.(float64) != 3 {
		t.Fatalf("result = %v, want 3", got)
	}
}

func TestFuseSkipsDataAndTimedTasks(t *testing.T) {
	g := New()
	g.Add(&Task{Key: "data"}) // placeholder
	g.AddTimed("timed", []Key{"data"}, func(_ []any, start float64) (any, float64, error) {
		return 1.0, start, nil
	}, 0)
	g.AddFn("after", []Key{"timed"}, func(in []any) (any, error) { return in[0], nil }, 1)
	fused := Fuse(g, map[Key]bool{"after": true})
	if fused.Len() != 3 {
		t.Fatalf("timed/data tasks were fused: %v", fused.Keys())
	}
}

func TestFuseErrorPropagates(t *testing.T) {
	g := New()
	g.AddFn("x", nil, func([]any) (any, error) { return nil, fmt.Errorf("boom") }, 1)
	g.AddFn("y", []Key{"x"}, func(in []any) (any, error) { return in[0], nil }, 1)
	fused := Fuse(g, map[Key]bool{"y": true})
	if fused.Len() != 1 {
		t.Fatalf("len = %d", fused.Len())
	}
	if _, err := fused.Get("y").Fn(nil); err == nil {
		t.Fatal("fused body swallowed the error")
	}
}

// Property: fusing a random tree-with-chains graph preserves the value
// of every kept sink and never increases the task count.
func TestFuseQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := rng.Intn(20) + 2
		for i := 0; i < n; i++ {
			key := Key(fmt.Sprintf("t%03d", i))
			if i == 0 || rng.Float64() < 0.3 {
				v := float64(rng.Intn(10))
				g.AddFn(key, nil, func([]any) (any, error) { return v, nil }, 1)
				continue
			}
			dep := Key(fmt.Sprintf("t%03d", rng.Intn(i)))
			add := float64(rng.Intn(5))
			g.AddFn(key, []Key{dep}, func(in []any) (any, error) {
				return in[0].(float64)*2 + add, nil
			}, 1)
		}
		sink := Key(fmt.Sprintf("t%03d", n-1))
		keep := map[Key]bool{sink: true}
		fused := Fuse(g, keep)
		if fused.Len() > g.Len() {
			return false
		}
		if err := fused.Validate(nil); err != nil {
			return false
		}
		want := evalQuick(g, sink)
		got := evalQuick(fused, sink)
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func evalQuick(g *Graph, target Key) float64 {
	order, err := g.TopoSort([]Key{target}, nil)
	if err != nil {
		return -1
	}
	vals := map[Key]any{}
	for _, k := range order {
		task := g.Get(k)
		in := make([]any, len(task.Deps))
		for i, d := range task.Deps {
			in[i] = vals[d]
		}
		v, err := task.Fn(in)
		if err != nil {
			return -1
		}
		vals[k] = v
	}
	return vals[target].(float64)
}

func TestFuseChainWithExternalHeadDep(t *testing.T) {
	// A chain whose head consumes an external key (a scheduler-resident
	// block that is not in the graph — the deisa publish path) must fuse
	// into one task that keeps the external edge and the tail's priority.
	g := New()
	g.AddFn("h0", []Key{"ext"}, func(in []any) (any, error) {
		return in[0].(float64) + 1, nil
	}, 1)
	g.AddFn("h1", []Key{"h0"}, func(in []any) (any, error) {
		return in[0].(float64) + 1, nil
	}, 1)
	tail := g.AddFn("h2", []Key{"h1"}, func(in []any) (any, error) {
		return in[0].(float64) + 1, nil
	}, 1)
	tail.Priority = -3
	fused := Fuse(g, map[Key]bool{"h2": true})
	if fused.Len() != 1 {
		t.Fatalf("fused graph has %d tasks, want 1: %v", fused.Len(), fused.Keys())
	}
	ft := fused.Get("h2")
	if ft == nil {
		t.Fatal("tail key lost")
	}
	if len(ft.Deps) != 1 || ft.Deps[0] != "ext" {
		t.Fatalf("fused deps = %v, want [ext]", ft.Deps)
	}
	if ft.Priority != -3 {
		t.Fatalf("fused priority = %d, want tail's -3", ft.Priority)
	}
	if ft.Cost != 3 {
		t.Fatalf("fused cost = %v, want 3", ft.Cost)
	}
	if err := fused.Validate(map[Key]bool{"ext": true}); err != nil {
		t.Fatal(err)
	}
	v, err := ft.Fn([]any{10.0})
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) != 13 {
		t.Fatalf("fused body = %v, want 13 (external value + 3)", v)
	}
}
