// Package taskgraph defines the task-graph representation shared by the
// Dask-like runtime: keyed tasks with dependencies, topological ordering,
// and graph optimizations (cull). It corresponds to dask.core /
// dask.highlevelgraph in the original system.
package taskgraph

import (
	"fmt"
	"sort"

	"deisago/internal/vtime"
)

// Key identifies a task or a piece of data in the distributed cluster.
type Key string

// Fn is a task body. It receives the dependency results in the same order
// as Task.Deps.
type Fn func(deps []any) (any, error)

// TimedFn is a task body with dynamic virtual-time cost: it receives the
// execution start time and returns, along with the value, the virtual
// time at which execution completes. It is used for tasks whose duration
// depends on contended resources (e.g. reads from the parallel file
// system).
type TimedFn func(deps []any, start vtime.Time) (any, vtime.Time, error)

// Task is one node of a graph.
type Task struct {
	Key  Key
	Deps []Key
	// Fn computes the task. A nil Fn with no Deps denotes a pure data or
	// external task whose value is supplied from outside the graph.
	Fn Fn
	// Timed, if non-nil, replaces Fn with a dynamically-timed body; Cost
	// is then a fixed additional charge on top of the dynamic duration.
	Timed TimedFn
	// Cost is the modelled execution time in virtual seconds.
	Cost vtime.Dur
	// OutBytes, when positive, overrides the modelled size of the task's
	// result for transfer-cost purposes. Harness code uses it to model
	// paper-scale data while computing on small arrays.
	OutBytes int64
	// Priority breaks ties in scheduling; lower runs earlier.
	Priority int
}

// IsData reports whether the task is a pure data placeholder (no body).
func (t *Task) IsData() bool { return t.Fn == nil && t.Timed == nil }

// AddTimed is a convenience wrapper for dynamically-timed tasks.
func (g *Graph) AddTimed(key Key, deps []Key, fn TimedFn, cost vtime.Dur) *Task {
	t := &Task{Key: key, Deps: deps, Timed: fn, Cost: cost}
	g.Add(t)
	return t
}

// Graph is a set of tasks keyed by Key.
type Graph struct {
	tasks map[Key]*Task
	// sorted caches the Keys() order. nil means dirty; the length guard
	// in Keys additionally catches direct map writes (Cull, Merge).
	// Callers must treat the returned slice as read-only.
	sorted []Key
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{tasks: make(map[Key]*Task)}
}

// Add inserts a task; it panics on duplicate keys, which always indicate
// a graph-construction bug.
func (g *Graph) Add(t *Task) {
	if t == nil || t.Key == "" {
		panic("taskgraph: task must be non-nil with a non-empty key")
	}
	if _, dup := g.tasks[t.Key]; dup {
		panic(fmt.Sprintf("taskgraph: duplicate key %q", t.Key))
	}
	g.tasks[t.Key] = t
	g.sorted = nil
}

// AddFn is a convenience wrapper building and adding a Task.
func (g *Graph) AddFn(key Key, deps []Key, fn Fn, cost vtime.Dur) *Task {
	t := &Task{Key: key, Deps: deps, Fn: fn, Cost: cost}
	g.Add(t)
	return t
}

// Get returns the task for a key, or nil.
func (g *Graph) Get(k Key) *Task { return g.tasks[k] }

// Has reports whether the graph contains a key.
func (g *Graph) Has(k Key) bool { _, ok := g.tasks[k]; return ok }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Keys returns all keys in sorted order (deterministic iteration). The
// order is computed once and cached until the graph changes; callers
// share the cached slice and must not mutate it. Repeat calls on an
// unchanged graph allocate nothing.
func (g *Graph) Keys() []Key {
	if g.sorted != nil && len(g.sorted) == len(g.tasks) {
		return g.sorted
	}
	out := make([]Key, 0, len(g.tasks))
	for k := range g.tasks {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.sorted = out
	return out
}

// Walk calls yield for every task in sorted key order, stopping early if
// yield returns false. It reuses the Keys cache, so iterating an
// unchanged graph allocates nothing.
func (g *Graph) Walk(yield func(Key, *Task) bool) {
	for _, k := range g.Keys() {
		if !yield(k, g.tasks[k]) {
			return
		}
	}
}

// Merge copies all tasks of other into g; duplicate keys must denote
// identical task pointers (shared subgraphs), otherwise Merge panics.
func (g *Graph) Merge(other *Graph) {
	for k, t := range other.tasks {
		if existing, ok := g.tasks[k]; ok {
			if existing != t {
				panic(fmt.Sprintf("taskgraph: merge conflict on key %q", k))
			}
			continue
		}
		g.tasks[k] = t
		g.sorted = nil
	}
}

// Validate checks that every dependency is present and that the graph is
// acyclic. External dependencies can be declared via the externals set
// (keys satisfied from outside the graph).
func (g *Graph) Validate(externals map[Key]bool) error {
	for k, t := range g.tasks {
		for _, d := range t.Deps {
			if !g.Has(d) && !externals[d] {
				return fmt.Errorf("taskgraph: task %q depends on missing key %q", k, d)
			}
		}
	}
	_, err := g.TopoSort(g.Keys(), externals)
	return err
}

// TopoSort returns the keys reachable from targets in a valid execution
// order (dependencies first). Keys in externals are treated as already
// satisfied and are not emitted. It returns an error on cycles or missing
// dependencies.
func (g *Graph) TopoSort(targets []Key, externals map[Key]bool) ([]Key, error) {
	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	color := make(map[Key]int, len(g.tasks))
	var order []Key
	var visit func(k Key) error
	visit = func(k Key) error {
		if externals[k] && !g.Has(k) {
			return nil
		}
		switch color[k] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("taskgraph: cycle through key %q", k)
		}
		t := g.Get(k)
		if t == nil {
			return fmt.Errorf("taskgraph: missing key %q", k)
		}
		color[k] = gray
		for _, d := range t.Deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[k] = black
		order = append(order, k)
		return nil
	}
	for _, k := range targets {
		if err := visit(k); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Cull returns the subgraph containing exactly the tasks reachable from
// targets — the standard Dask optimization that drops unneeded work.
// External keys are permitted as absent dependencies.
func (g *Graph) Cull(targets []Key, externals map[Key]bool) (*Graph, error) {
	order, err := g.TopoSort(targets, externals)
	if err != nil {
		return nil, err
	}
	out := New()
	for _, k := range order {
		out.tasks[k] = g.tasks[k]
	}
	return out, nil
}

// Dependents returns the reverse adjacency: for each key, the keys that
// depend on it (including dependencies satisfied externally).
func (g *Graph) Dependents() map[Key][]Key {
	out := make(map[Key][]Key)
	for _, k := range g.Keys() {
		for _, d := range g.tasks[k].Deps {
			out[d] = append(out[d], k)
		}
	}
	return out
}

// Roots returns tasks with no in-graph dependencies (their deps are empty
// or all external), in sorted order.
func (g *Graph) Roots(externals map[Key]bool) []Key {
	var out []Key
	for _, k := range g.Keys() {
		root := true
		for _, d := range g.tasks[k].Deps {
			if g.Has(d) && !externals[d] {
				root = false
				break
			}
		}
		if root {
			out = append(out, k)
		}
	}
	return out
}
