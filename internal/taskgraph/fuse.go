package taskgraph

import "fmt"

// Fuse collapses linear task chains — sequences where each task is the
// sole dependency of its sole dependent — into single tasks, composing
// their bodies. This is dask.optimization.fuse: it cuts per-task
// scheduler overhead and intermediate transfers for pipelines like
// read→fold→sketch.
//
// Tasks in keep (typically the submission targets and keys referenced by
// later graphs) are never fused away. Data/external placeholder tasks
// and dynamically-timed tasks are not fused (timed bodies need their own
// execution slot). The returned graph contains new fused tasks plus the
// untouched remainder; the original graph is not modified.
func Fuse(g *Graph, keep map[Key]bool) *Graph {
	dependents := g.Dependents()
	// fusable: exactly one dependent, that dependent has exactly one
	// dependency, both are plain Fn tasks, and the task is not kept.
	canFuseInto := func(k Key) (Key, bool) {
		t := g.Get(k)
		if t == nil || t.Fn == nil || keep[k] {
			return "", false
		}
		deps := dependents[k]
		if len(deps) != 1 {
			return "", false
		}
		succ := g.Get(deps[0])
		if succ == nil || succ.Fn == nil || len(succ.Deps) != 1 {
			return "", false
		}
		return succ.Key, true
	}

	out := New()
	fusedInto := map[Key]Key{} // original key -> surviving fused key
	visited := map[Key]bool{}

	for _, k := range g.Keys() {
		if visited[k] {
			continue
		}
		// Walk to the head of this key's chain.
		head := k
		for {
			t := g.Get(head)
			if t == nil || len(t.Deps) != 1 {
				break
			}
			pred := t.Deps[0]
			if succ, ok := canFuseInto(pred); !ok || succ != head {
				break
			}
			head = pred
		}
		// Collect the maximal chain from head.
		chain := []Key{head}
		cur := head
		for {
			succ, ok := canFuseInto(cur)
			if !ok {
				break
			}
			chain = append(chain, succ)
			cur = succ
		}
		for _, c := range chain {
			visited[c] = true
		}
		if len(chain) == 1 {
			out.Add(g.Get(head))
			continue
		}
		// Fuse: the surviving task keeps the tail's key (what dependents
		// and targets reference) and the head's dependencies.
		tail := chain[len(chain)-1]
		fns := make([]Fn, len(chain))
		var cost float64
		for i, c := range chain {
			fns[i] = g.Get(c).Fn
			cost += g.Get(c).Cost
		}
		headDeps := append([]Key(nil), g.Get(head).Deps...)
		fused := &Task{
			Key:  tail,
			Deps: headDeps,
			Fn: func(in []any) (any, error) {
				v, err := fns[0](in)
				if err != nil {
					return nil, err
				}
				for _, f := range fns[1:] {
					v, err = f([]any{v})
					if err != nil {
						return nil, err
					}
				}
				return v, nil
			},
			Cost:     cost,
			OutBytes: g.Get(tail).OutBytes,
			Priority: g.Get(tail).Priority,
		}
		out.Add(fused)
		for _, c := range chain[:len(chain)-1] {
			fusedInto[c] = tail
		}
	}

	// Rewrite dependencies that pointed at fused-away keys. A dependency
	// on an interior chain key would be a graph bug (interior keys have
	// exactly one dependent by construction), so only self-consistent
	// graphs arrive here; still, verify.
	for _, k := range out.Keys() {
		t := out.Get(k)
		for i, d := range t.Deps {
			if tail, ok := fusedInto[d]; ok {
				if tail == k {
					continue // the fused task's own internal edge
				}
				panic(fmt.Sprintf("taskgraph: dependency %q of %q was fused into %q", d, k, tail))
			}
			_ = i
		}
	}
	return out
}
