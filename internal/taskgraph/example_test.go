package taskgraph_test

import (
	"fmt"

	"deisago/internal/taskgraph"
)

func ExampleGraph_TopoSort() {
	g := taskgraph.New()
	g.AddFn("a", nil, func([]any) (any, error) { return 1, nil }, 0)
	g.AddFn("b", []taskgraph.Key{"a"}, func(in []any) (any, error) { return 2, nil }, 0)
	g.AddFn("c", []taskgraph.Key{"a", "b"}, func(in []any) (any, error) { return 3, nil }, 0)
	order, _ := g.TopoSort([]taskgraph.Key{"c"}, nil)
	fmt.Println(order)
	// Output: [a b c]
}

func ExampleFuse() {
	// read -> decode -> normalize is a linear chain: Fuse collapses it
	// into one task keyed by the tail.
	g := taskgraph.New()
	g.AddFn("read", nil, func([]any) (any, error) { return 10.0, nil }, 1)
	g.AddFn("decode", []taskgraph.Key{"read"}, func(in []any) (any, error) {
		return in[0].(float64) * 2, nil
	}, 1)
	g.AddFn("normalize", []taskgraph.Key{"decode"}, func(in []any) (any, error) {
		return in[0].(float64) / 4, nil
	}, 1)
	fused := taskgraph.Fuse(g, map[taskgraph.Key]bool{"normalize": true})
	fmt.Println("tasks:", fused.Len())
	v, _ := fused.Get("normalize").Fn(nil)
	fmt.Println("value:", v)
	// Output:
	// tasks: 1
	// value: 5
}

func ExampleGraph_Cull() {
	g := taskgraph.New()
	g.AddFn("wanted", nil, func([]any) (any, error) { return nil, nil }, 0)
	g.AddFn("unused", nil, func([]any) (any, error) { return nil, nil }, 0)
	culled, _ := g.Cull([]taskgraph.Key{"wanted"}, nil)
	fmt.Println(culled.Keys())
	// Output: [wanted]
}
