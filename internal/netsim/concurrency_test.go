package netsim

import (
	"bytes"
	"sync"
	"testing"

	"deisago/internal/metrics"
	"deisago/internal/vtime"
)

// Both tests reuse benchConfig: node pairs (2p, 2p+1) sit on private
// leaves so concurrent chains share no modelled link, and jitter is on to
// cover the stateless hash path under concurrency.

// TestResetAfterConcurrentTransfers drives the fabric from many
// goroutines — with a fault hook dropping part of the traffic — and then
// checks that Reset returns every observable to its initial state:
// totals zero, hooks gone, links idle at time zero.
func TestResetAfterConcurrentTransfers(t *testing.T) {
	const pairs, perPair = 8, 50
	f := New(benchConfig(), 2*pairs)
	f.UseMetrics(metrics.NewRegistry())
	f.AddFaultHook(func(from, to NodeID, size int64, depart vtime.Time) FaultVerdict {
		// Deterministic partial loss: drop transfers from even senders.
		return FaultVerdict{Drop: from%4 == 0}
	})

	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			from, to := NodeID(2*p), NodeID(2*p+1)
			at := vtime.Time(0)
			for i := 0; i < perPair; i++ {
				at, _ = f.TransferChecked(from, to, 1<<16, at)
			}
		}(p)
	}
	wg.Wait()

	if n, b := f.Transfers(); n != pairs*perPair || b != pairs*perPair*(1<<16) {
		t.Fatalf("before reset: transfers=%d bytes=%d, want %d/%d",
			n, b, pairs*perPair, pairs*perPair*(1<<16))
	}
	if d := f.Dropped(); d != (pairs/2)*perPair {
		t.Fatalf("before reset: dropped=%d, want %d", d, (pairs/2)*perPair)
	}

	f.Reset()

	if n, b := f.Transfers(); n != 0 || b != 0 {
		t.Fatalf("after reset: transfers=%d bytes=%d, want 0/0", n, b)
	}
	if d := f.Dropped(); d != 0 {
		t.Fatalf("after reset: dropped=%d, want 0", d)
	}
	// The drop hook must be gone: node 0 was in the dropped class.
	if _, ok := f.TransferChecked(0, 1, 1<<16, 0); !ok {
		t.Fatalf("after reset: fault hook survived Reset")
	}
	if d := f.Dropped(); d != 0 {
		t.Fatalf("after reset: delivery incremented dropped: %d", d)
	}
	// Links are idle again: a fresh transfer from t=0 matches the same
	// transfer on a brand-new fabric (same config, same seed → same
	// jitter, no queueing).
	fresh := New(benchConfig(), 2*pairs)
	got := f.Transfer(2, 3, 1<<20, 0)
	want := fresh.Transfer(2, 3, 1<<20, 0)
	if got != want {
		t.Fatalf("after reset: arrival %v, want pristine-fabric arrival %v", got, want)
	}
}

// TestConcurrentTransfersDeterministic runs the same per-pair transfer
// chains serially and from parallel goroutines and requires bit-identical
// results: every arrival time, the fabric totals, and the canonical
// metric snapshot. This is the contract the parallel harness leans on —
// lock-free accounting must not change any observable value, only its
// cost.
func TestConcurrentTransfersDeterministic(t *testing.T) {
	const pairs, perPair = 8, 40
	run := func(parallel bool) ([]vtime.Time, int64, int64, []byte) {
		f := New(benchConfig(), 2*pairs)
		reg := metrics.NewRegistry()
		f.UseMetrics(reg)
		arrivals := make([]vtime.Time, pairs*perPair)
		chain := func(p int) {
			from, to := NodeID(2*p), NodeID(2*p+1)
			at := vtime.Time(0)
			for i := 0; i < perPair; i++ {
				at = f.Transfer(from, to, int64(1<<14+p*512+i), at)
				arrivals[p*perPair+i] = at
			}
		}
		if parallel {
			var wg sync.WaitGroup
			for p := 0; p < pairs; p++ {
				wg.Add(1)
				go func(p int) { defer wg.Done(); chain(p) }(p)
			}
			wg.Wait()
		} else {
			for p := 0; p < pairs; p++ {
				chain(p)
			}
		}
		n, b := f.Transfers()
		return arrivals, n, b, reg.Snapshot().CanonicalJSON()
	}

	sArr, sN, sB, sJSON := run(false)
	pArr, pN, pB, pJSON := run(true)

	if sN != pN || sB != pB {
		t.Fatalf("totals diverge: serial %d/%d, parallel %d/%d", sN, sB, pN, pB)
	}
	for i := range sArr {
		if sArr[i] != pArr[i] {
			t.Fatalf("arrival %d diverges: serial %v, parallel %v", i, sArr[i], pArr[i])
		}
	}
	if !bytes.Equal(sJSON, pJSON) {
		t.Fatalf("canonical snapshots diverge:\nserial:\n%s\nparallel:\n%s", sJSON, pJSON)
	}
}
