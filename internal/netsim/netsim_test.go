package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		NodesPerSwitch:  4,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 10e-6,
	}
}

func TestTopology(t *testing.T) {
	f := New(testConfig(), 10)
	if f.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d", f.NumNodes())
	}
	// 10 nodes, 4 per switch -> leaves 0..2.
	wantLeaf := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i, w := range wantLeaf {
		if got := f.Leaf(NodeID(i)); got != w {
			t.Fatalf("Leaf(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestHops(t *testing.T) {
	f := New(testConfig(), 10)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 3, 2}, // same leaf
		{0, 4, 4}, // across spine
		{8, 9, 2},
	}
	for _, c := range cases {
		if got := f.Hops(c.a, c.b); got != c.want {
			t.Fatalf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := f.Hops(c.b, c.a); got != c.want {
			t.Fatalf("Hops not symmetric for (%d,%d)", c.a, c.b)
		}
	}
}

func TestLocalTransfer(t *testing.T) {
	f := New(testConfig(), 4)
	got := f.Transfer(1, 1, 1<<30, 5)
	want := 5 + testConfig().SoftwareLatency
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("local transfer arrive = %v, want %v", got, want)
	}
}

func TestUnloadedSameLeafTransfer(t *testing.T) {
	cfg := testConfig()
	f := New(cfg, 4)
	size := int64(1e6)
	got := f.Transfer(0, 1, size, 0)
	want := cfg.SoftwareLatency + float64(size)/cfg.LinkBandwidth + 2*cfg.HopLatency
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("arrive = %v, want %v", got, want)
	}
	if d := f.TransferDuration(0, 1, size); math.Abs(d-want) > 1e-9 {
		t.Fatalf("TransferDuration = %v, want %v", d, want)
	}
}

func TestCrossSpineSlowerWhenPruned(t *testing.T) {
	cfg := testConfig()
	cfg.PruneFactor = 8 // uplink bw = 4*1e9/8 = 0.5e9 < link bw
	f := New(cfg, 8)
	size := int64(1e8)
	local := f.TransferDuration(0, 1, size)
	remote := f.TransferDuration(0, 5, size)
	if remote <= local {
		t.Fatalf("cross-spine (%v) should exceed same-leaf (%v) on a heavily pruned tree", remote, local)
	}
}

func TestContentionQueueing(t *testing.T) {
	cfg := testConfig()
	f := New(cfg, 4)
	size := int64(1e8) // 0.1 s at 1 GB/s
	// Two flows into the same ingress NIC at node 1, both depart at 0.
	a1 := f.Transfer(0, 1, size, 0)
	a2 := f.Transfer(2, 1, size, 0)
	// Second flow must queue behind the first at node 1's ingress.
	if a2 < a1+0.09 {
		t.Fatalf("no queueing: first=%v second=%v", a1, a2)
	}
}

func TestTransferCounters(t *testing.T) {
	f := New(testConfig(), 4)
	f.Transfer(0, 1, 100, 0)
	f.Transfer(1, 2, 200, 0)
	n, b := f.Transfers()
	if n != 2 || b != 300 {
		t.Fatalf("counters = (%d,%d), want (2,300)", n, b)
	}
	f.Reset()
	n, b = f.Transfers()
	if n != 0 || b != 0 {
		t.Fatalf("Reset left counters (%d,%d)", n, b)
	}
}

func TestResetReproducible(t *testing.T) {
	cfg := testConfig()
	cfg.JitterFrac = 0.3
	cfg.Seed = 42
	f := New(cfg, 8)
	var first []float64
	for i := 0; i < 5; i++ {
		first = append(first, f.Transfer(0, 5, 1e7, 0))
	}
	f.Reset()
	for i := 0; i < 5; i++ {
		if got := f.Transfer(0, 5, 1e7, 0); got != first[i] {
			t.Fatalf("run not reproducible after Reset: transfer %d = %v, want %v", i, got, first[i])
		}
	}
}

// TestJitterOrderIndependent pins the property the parallel harness and
// the lock-free transfer path rely on: a transfer's jitter is a pure
// function of (seed, endpoints, size, depart), not of the real-time order
// in which goroutines happen to issue transfers. The seed implementation
// (one shared rand stream) fails this.
func TestJitterOrderIndependent(t *testing.T) {
	cfg := testConfig()
	cfg.JitterFrac = 0.2
	cfg.Seed = 5
	// Same two transfers on disjoint node pairs (no queueing interaction),
	// issued in both orders on fresh fabrics.
	f1 := New(cfg, 8)
	a1 := f1.Transfer(0, 1, 1e6, 0)
	b1 := f1.Transfer(2, 3, 2e6, 0)
	f2 := New(cfg, 8)
	b2 := f2.Transfer(2, 3, 2e6, 0)
	a2 := f2.Transfer(0, 1, 1e6, 0)
	if a1 != a2 || b1 != b2 {
		t.Fatalf("jitter depends on issue order: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
}

func TestJitterBounded(t *testing.T) {
	cfg := testConfig()
	cfg.JitterFrac = 0.2
	cfg.Seed = 7
	f := New(cfg, 4)
	size := int64(1e8)
	base := float64(size) / cfg.LinkBandwidth
	for i := 0; i < 100; i++ {
		f.Reset()
		arr := f.Transfer(0, 1, size, 0)
		d := arr - cfg.SoftwareLatency - 2*cfg.HopLatency
		if d < base*0.79 || d > base*1.21 {
			t.Fatalf("jittered duration %v outside ±20%% of %v", d, base)
		}
	}
}

// Property: arrival time is always strictly after departure, monotone in
// size, and hop counts are in {0,2,4}.
func TestTransferQuick(t *testing.T) {
	cfg := testConfig()
	f := New(cfg, 12)
	q := func(a, b uint8, sz uint32, depart float64) bool {
		from := NodeID(int(a) % 12)
		to := NodeID(int(b) % 12)
		d := math.Abs(depart)
		if math.IsNaN(d) || math.IsInf(d, 0) || d > 1e9 {
			d = math.Mod(d, 1e9)
		}
		if math.IsNaN(d) {
			d = 0
		}
		f.Reset()
		arr := f.Transfer(from, to, int64(sz), d)
		if arr <= d {
			return false
		}
		h := f.Hops(from, to)
		return h == 0 || h == 2 || h == 4
	}
	if err := quick.Check(q, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateBandwidthShared(t *testing.T) {
	// n senders to n distinct receivers across the spine share the pruned
	// uplink: total completion approx n*size/uplinkBW, not size/linkBW.
	cfg := testConfig()
	cfg.PruneFactor = 4
	f := New(cfg, 8)
	size := int64(4e8)
	var last float64
	for i := 0; i < 4; i++ {
		arr := f.Transfer(NodeID(i), NodeID(4+i), size, 0)
		if arr > last {
			last = arr
		}
	}
	upBW := cfg.LinkBandwidth * float64(cfg.NodesPerSwitch) / cfg.PruneFactor
	want := 4 * float64(size) / upBW
	if last < want*0.9 {
		t.Fatalf("uplink sharing not enforced: makespan %v, want >= %v", last, want*0.9)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LinkBandwidth != 12.5e9 {
		t.Fatalf("default link bandwidth = %v, want 100 Gb/s", cfg.LinkBandwidth)
	}
	f := New(cfg, 64)
	if f.NumNodes() != 64 {
		t.Fatal("node count")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	f := New(testConfig(), 2)
	for name, fn := range map[string]func(){
		"negative size": func() { f.Transfer(0, 1, -1, 0) },
		"bad node":      func() { f.Hops(0, 99) },
		"zero nodes":    func() { New(testConfig(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFaultHookDegradesLink(t *testing.T) {
	cfg := testConfig()
	size := int64(1 << 20)
	base := New(cfg, 10).Transfer(0, 1, size, 0)

	f := New(cfg, 10)
	f.AddFaultHook(func(from, to NodeID, _ int64, _ float64) FaultVerdict {
		if (from == 0 && to == 1) || (from == 1 && to == 0) {
			return FaultVerdict{SlowFactor: 4}
		}
		return FaultVerdict{}
	})
	slow := f.Transfer(0, 1, size, 0)
	if slow <= base {
		t.Fatalf("degraded transfer %v not slower than baseline %v", slow, base)
	}
	// Roughly 4x the serialization part: at least 2x end to end.
	if slow < 2*base-cfg.SoftwareLatency {
		t.Fatalf("degraded transfer %v too fast vs baseline %v", slow, base)
	}
	// Untouched pair is unaffected.
	other := f.Transfer(2, 3, size, 0)
	if math.Abs(other-base) > 1e-12 {
		t.Fatalf("unaffected link changed: %v vs %v", other, base)
	}
}

func TestFaultHookWindowAndLatency(t *testing.T) {
	cfg := testConfig()
	f := New(cfg, 4)
	f.AddFaultHook(func(_, _ NodeID, _ int64, depart float64) FaultVerdict {
		if depart >= 1 && depart < 2 {
			return FaultVerdict{ExtraLatency: 0.5}
		}
		return FaultVerdict{}
	})
	before := f.Transfer(0, 1, 0, 0.5)
	inside := f.Transfer(0, 1, 0, 1.5)
	if got := inside - 1.5; math.Abs(got-(before-0.5)-0.5) > 1e-9 {
		t.Fatalf("windowed latency: inside cost %v, outside cost %v", inside-1.5, before-0.5)
	}
	after := f.Transfer(0, 1, 0, 2.5)
	if math.Abs((after-2.5)-(before-0.5)) > 1e-12 {
		t.Fatalf("fault leaked outside window: %v vs %v", after-2.5, before-0.5)
	}
}

func TestFaultHookDrops(t *testing.T) {
	f := New(testConfig(), 4)
	drops := 0
	f.AddFaultHook(func(from, to NodeID, _ int64, _ float64) FaultVerdict {
		return FaultVerdict{Drop: from == 0 && to == 1}
	})
	if _, ok := f.TransferChecked(0, 1, 1024, 0); ok {
		t.Fatal("dropped transfer reported delivered")
	}
	drops++
	if _, ok := f.TransferChecked(1, 0, 1024, 0); !ok {
		t.Fatal("reverse direction should deliver")
	}
	// Plain Transfer models reliable delivery but still counts the drop.
	f.Transfer(0, 1, 1024, 0)
	drops++
	if got := f.Dropped(); got != int64(drops) {
		t.Fatalf("Dropped = %d, want %d", got, drops)
	}
	f.ClearFaultHooks()
	if _, ok := f.TransferChecked(0, 1, 1024, 0); !ok {
		t.Fatal("drop survived ClearFaultHooks")
	}
	f.Reset()
	if f.Dropped() != 0 {
		t.Fatal("Reset did not clear drop counter")
	}
}
