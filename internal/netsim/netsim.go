// Package netsim models the interconnect of the evaluation platform: a
// pruned fat-tree of EDR-InfiniBand-class links, as on the Irene/TGCC
// Skylake partition used by the paper.
//
// The model is intentionally small: two switch levels (leaf switches and a
// non-blocking spine), full-duplex node links, and pruned uplinks whose
// aggregate bandwidth is a fraction of the attached node bandwidth. Every
// shared element (node NIC egress/ingress, leaf uplink up/down) is a
// vtime.Resource, so congestion produces FCFS queueing delays in virtual
// time. A transfer occupies each link on its path in a pipelined (cut
// through) fashion: the path bandwidth is the minimum link bandwidth and
// hot links delay the whole flow.
//
// The paper's Experiment II (Figure 5) attributes run-to-run variability
// to which leaf switch each allocated node lands on; Fabric exposes hop
// counts and per-link jitter so the harness can reproduce that effect.
package netsim

import (
	"fmt"
	"math"
	"sync"

	"deisago/internal/metrics"
	"deisago/internal/vtime"
)

// NodeID identifies a compute node in the fabric.
type NodeID int

// Config describes the fabric hardware.
type Config struct {
	// NodesPerSwitch is the number of nodes attached to one leaf switch.
	NodesPerSwitch int
	// LinkBandwidth is the node-to-leaf link bandwidth in bytes/second
	// (per direction; links are full duplex).
	LinkBandwidth float64
	// PruneFactor divides the leaf uplink aggregate bandwidth: an uplink
	// carries NodesPerSwitch*LinkBandwidth/PruneFactor bytes/second.
	// PruneFactor 1 is a non-blocking tree; the paper's platform uses a
	// pruned tree, so values > 1 are typical.
	PruneFactor float64
	// HopLatency is the per-hop latency in seconds.
	HopLatency float64
	// SoftwareLatency is a fixed per-message software overhead in seconds
	// (driver, protocol) charged once per transfer.
	SoftwareLatency float64
	// JitterFrac, if non-zero, scales a deterministic pseudo-random
	// multiplicative jitter of ±JitterFrac applied to each transfer's
	// service time. The jitter is a pure hash of (Seed, from, to, size,
	// depart) — not a shared stream — so it is lock-free on the transfer
	// path and independent of the real-time order in which concurrent
	// goroutines issue transfers.
	JitterFrac float64
	// Seed seeds the jitter hash.
	Seed int64
}

// DefaultConfig returns a configuration calibrated to an EDR InfiniBand
// (100 Gb/s) pruned fat-tree, as described in the paper's evaluation.
func DefaultConfig() Config {
	return Config{
		NodesPerSwitch:  16,
		LinkBandwidth:   12.5e9, // 100 Gb/s
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 30e-6,
		JitterFrac:      0,
		Seed:            1,
	}
}

// FaultVerdict is a fault hook's decision about one transfer.
// SlowFactor (when > 0 and != 1) multiplies the transfer's service time
// on every link of the path; ExtraLatency is added once to the delivery
// time; Drop marks the message as lost in flight. The links are still
// occupied for a dropped transfer (the bytes entered the wire before the
// loss), but delivery-checking callers (TransferChecked) see it fail.
type FaultVerdict struct {
	SlowFactor   float64
	ExtraLatency vtime.Dur
	Drop         bool
}

// FaultHook inspects one transfer before it is booked and returns a
// verdict. Hooks must be deterministic functions of their arguments so
// seeded runs reproduce; they are called with the fabric unlocked and may
// not call back into the fabric.
type FaultHook func(from, to NodeID, size int64, depart vtime.Time) FaultVerdict

type node struct {
	id      NodeID
	leaf    int
	egress  *vtime.Resource
	ingress *vtime.Resource

	// Per-link metric handles, created lazily under Fabric.mu on the
	// first transfer touching the link (nil when no registry attached).
	egBytes, inBytes *metrics.Counter
	egWait, inWait   *metrics.Histogram
}

type leafSwitch struct {
	up   *vtime.Resource // toward the spine
	down *vtime.Resource // from the spine

	upBytes, downBytes *metrics.Counter
	upWait, downWait   *metrics.Histogram
}

// Fabric is a simulated interconnect. All methods are safe for concurrent
// use.
type Fabric struct {
	cfg    Config
	nodes  []*node
	leaves []*leafSwitch

	mu        sync.Mutex
	transfers int64
	bytes     int64
	dropped   int64
	hooks     []FaultHook
	reg       *metrics.Registry
}

// New builds a fabric with numNodes nodes. Nodes are assigned to leaf
// switches in blocks of cfg.NodesPerSwitch, in node-ID order; use a
// cluster allocation layer to permute which logical node gets which ID
// when modelling varying batch-scheduler allocations.
func New(cfg Config, numNodes int) *Fabric {
	if cfg.NodesPerSwitch <= 0 {
		panic("netsim: NodesPerSwitch must be positive")
	}
	if cfg.LinkBandwidth <= 0 {
		panic("netsim: LinkBandwidth must be positive")
	}
	if cfg.PruneFactor <= 0 {
		cfg.PruneFactor = 1
	}
	if numNodes <= 0 {
		panic("netsim: need at least one node")
	}
	f := &Fabric{cfg: cfg}
	nLeaves := (numNodes + cfg.NodesPerSwitch - 1) / cfg.NodesPerSwitch
	for l := 0; l < nLeaves; l++ {
		f.leaves = append(f.leaves, &leafSwitch{
			up:   vtime.NewResource(fmt.Sprintf("leaf%d-up", l)),
			down: vtime.NewResource(fmt.Sprintf("leaf%d-down", l)),
		})
	}
	for i := 0; i < numNodes; i++ {
		f.nodes = append(f.nodes, &node{
			id:      NodeID(i),
			leaf:    i / cfg.NodesPerSwitch,
			egress:  vtime.NewResource(fmt.Sprintf("node%d-eg", i)),
			ingress: vtime.NewResource(fmt.Sprintf("node%d-in", i)),
		})
	}
	return f
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// NumNodes returns the number of nodes.
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// Leaf returns the leaf-switch index of a node.
func (f *Fabric) Leaf(n NodeID) int {
	return f.nodes[f.check(n)].leaf
}

// Hops returns the number of switch hops between two nodes: 0 on the same
// node, 2 within one leaf switch, 4 across the spine.
func (f *Fabric) Hops(from, to NodeID) int {
	a, b := f.nodes[f.check(from)], f.nodes[f.check(to)]
	switch {
	case a.id == b.id:
		return 0
	case a.leaf == b.leaf:
		return 2
	default:
		return 4
	}
}

func (f *Fabric) check(n NodeID) int {
	if int(n) < 0 || int(n) >= len(f.nodes) {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", n, len(f.nodes)))
	}
	return int(n)
}

func (f *Fabric) uplinkBandwidth() float64 {
	return f.cfg.LinkBandwidth * float64(f.cfg.NodesPerSwitch) / f.cfg.PruneFactor
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// permutation used to derive per-transfer jitter without any shared state.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// jitter returns the multiplicative jitter for one transfer. It is a pure
// function of the fabric seed and the transfer's identity, so it takes no
// lock, never perturbs other transfers' jitter, and gives the same value
// no matter which goroutine orders the call first — the property the
// parallel harness relies on for bit-identical runs.
func (f *Fabric) jitter(from, to NodeID, size int64, depart vtime.Time) float64 {
	if f.cfg.JitterFrac == 0 {
		return 1
	}
	h := mix64(uint64(f.cfg.Seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(from))
	h = mix64(h ^ uint64(to))
	h = mix64(h ^ uint64(size))
	h = mix64(h ^ math.Float64bits(depart))
	u := float64(h>>11) / (1 << 53) // uniform in [0,1)
	j := 1 + f.cfg.JitterFrac*(2*u-1)
	if j < 0.05 {
		j = 0.05
	}
	return j
}

// UseMetrics attaches a registry: subsequent transfers count bytes and
// queue waits per link (component "link") plus fabric totals (component
// "fabric"), and RecordUtilization can sample link busy fractions. Call
// before traffic starts; per-link handles are created lazily under the
// fabric lock as links first carry traffic, so idle links of a large
// machine never appear in snapshots.
func (f *Fabric) UseMetrics(r *metrics.Registry) {
	f.mu.Lock()
	f.reg = r
	f.mu.Unlock()
}

// ensureNodeMetricsLocked creates node n's per-link handles. Caller
// holds f.mu and has checked f.reg != nil.
func (f *Fabric) ensureNodeMetricsLocked(n *node) {
	if n.egBytes != nil {
		return
	}
	eg := metrics.L("link", fmt.Sprintf("node%d-eg", n.id))
	in := metrics.L("link", fmt.Sprintf("node%d-in", n.id))
	n.egBytes = f.reg.Counter("link", "bytes", eg)
	n.inBytes = f.reg.Counter("link", "bytes", in)
	n.egWait = f.reg.Histogram("link", "queue_wait", eg)
	n.inWait = f.reg.Histogram("link", "queue_wait", in)
}

// ensureLeafMetricsLocked creates leaf l's uplink handles.
func (f *Fabric) ensureLeafMetricsLocked(idx int) {
	l := f.leaves[idx]
	if l.upBytes != nil {
		return
	}
	up := metrics.L("link", fmt.Sprintf("leaf%d-up", idx))
	down := metrics.L("link", fmt.Sprintf("leaf%d-down", idx))
	l.upBytes = f.reg.Counter("link", "bytes", up)
	l.downBytes = f.reg.Counter("link", "bytes", down)
	l.upWait = f.reg.Histogram("link", "queue_wait", up)
	l.downWait = f.reg.Histogram("link", "queue_wait", down)
}

// RecordUtilization samples each active link's busy fraction of the
// virtual interval [0, at] into link/utilization gauges (idle links are
// skipped). Call once after the workload has drained.
func (f *Fabric) RecordUtilization(at vtime.Time) {
	f.mu.Lock()
	reg := f.reg
	f.mu.Unlock()
	if reg == nil || at <= 0 {
		return
	}
	set := func(name string, r *vtime.Resource) {
		if b := r.Busy(); b > 0 {
			reg.Gauge("link", "utilization", metrics.L("link", name)).Set(b/at, at)
		}
	}
	for _, n := range f.nodes {
		set(fmt.Sprintf("node%d-eg", n.id), n.egress)
		set(fmt.Sprintf("node%d-in", n.id), n.ingress)
	}
	for i, l := range f.leaves {
		set(fmt.Sprintf("leaf%d-up", i), l.up)
		set(fmt.Sprintf("leaf%d-down", i), l.down)
	}
}

// AddFaultHook installs a fault hook consulted on every transfer (chaos
// fault injection: link degradation, extra latency, message drops). Hooks
// compose: slow factors multiply, latencies add, and any Drop verdict
// drops the message.
func (f *Fabric) AddFaultHook(h FaultHook) {
	f.mu.Lock()
	f.hooks = append(f.hooks, h)
	f.mu.Unlock()
}

// ClearFaultHooks removes every installed fault hook.
func (f *Fabric) ClearFaultHooks() {
	f.mu.Lock()
	f.hooks = nil
	f.mu.Unlock()
}

// verdict combines every hook's verdict for one transfer.
func (f *Fabric) verdict(from, to NodeID, size int64, depart vtime.Time) FaultVerdict {
	f.mu.Lock()
	hooks := f.hooks
	f.mu.Unlock()
	out := FaultVerdict{SlowFactor: 1}
	for _, h := range hooks {
		v := h(from, to, size, depart)
		if v.SlowFactor > 0 {
			out.SlowFactor *= v.SlowFactor
		}
		out.ExtraLatency += v.ExtraLatency
		out.Drop = out.Drop || v.Drop
	}
	return out
}

// Transfer simulates moving size bytes from one node to another, departing
// at the given virtual time, and returns the arrival time. Local (same
// node) transfers cost only the software latency. The transfer occupies
// every shared link on its path; links are acquired in path order with
// pipelined starts, so the effective bandwidth is the minimum along the
// path and congestion at any link delays delivery.
//
// Transfer models reliable delivery: fault-hook Drop verdicts are ignored
// (retransmission is the caller's concern); degradation and extra latency
// still apply. Use TransferChecked to observe drops.
func (f *Fabric) Transfer(from, to NodeID, size int64, depart vtime.Time) vtime.Time {
	t, _ := f.TransferChecked(from, to, size, depart)
	return t
}

// TransferChecked is Transfer plus loss observation: it returns the
// delivery time and whether the message was actually delivered. A dropped
// transfer still occupies its path (the bytes entered the wire before
// being lost) and the returned time is when the loss is final.
func (f *Fabric) TransferChecked(from, to NodeID, size int64, depart vtime.Time) (vtime.Time, bool) {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	a, b := f.nodes[f.check(from)], f.nodes[f.check(to)]
	v := f.verdict(from, to, size, depart)
	hops := f.Hops(from, to)

	scope := "remote"
	if a.id == b.id {
		scope = "local"
	}
	f.mu.Lock()
	f.transfers++
	f.bytes += size
	if v.Drop {
		f.dropped++
	}
	instrumented := f.reg != nil
	if instrumented {
		f.reg.Counter("fabric", "transfers", metrics.L("scope", scope)).Inc()
		f.reg.Counter("fabric", "bytes", metrics.L("scope", scope)).Add(size)
		if v.Drop {
			f.reg.Counter("fabric", "dropped").Inc()
		}
		if a.id != b.id {
			f.ensureNodeMetricsLocked(a)
			f.ensureNodeMetricsLocked(b)
			if hops == 4 {
				f.ensureLeafMetricsLocked(a.leaf)
				f.ensureLeafMetricsLocked(b.leaf)
			}
		}
	}
	f.mu.Unlock()

	t := depart + f.cfg.SoftwareLatency + v.ExtraLatency
	if a.id == b.id {
		return t, !v.Drop
	}
	if instrumented {
		a.egBytes.Add(size)
		b.inBytes.Add(size)
	}
	j := f.jitter(from, to, size, depart) * v.SlowFactor
	linkD := j * float64(size) / f.cfg.LinkBandwidth
	lat := f.cfg.HopLatency * float64(hops)

	// Pipelined (cut-through) occupancy: each link along the path is
	// requested starting from the previous link's service *start*, so an
	// uncongested path costs one serialization, while a congested link
	// stalls the flow.
	start, end := a.egress.Acquire(t, linkD)
	a.egWait.Observe(start - t)
	if hops == 4 {
		if instrumented {
			f.leaves[a.leaf].upBytes.Add(size)
			f.leaves[b.leaf].downBytes.Add(size)
		}
		upD := j * float64(size) / f.uplinkBandwidth()
		s2, e2 := f.leaves[a.leaf].up.Acquire(start, upD)
		f.leaves[a.leaf].upWait.Observe(s2 - start)
		s3, e3 := f.leaves[b.leaf].down.Acquire(s2, upD)
		f.leaves[b.leaf].downWait.Observe(s3 - s2)
		start, end = s3, vtime.MaxTime(end, e2, e3)
	}
	s4, e4 := b.ingress.Acquire(start, linkD)
	b.inWait.Observe(s4 - start)
	end = vtime.MaxTime(end, e4)
	return end + lat, !v.Drop
}

// TransferDuration returns the unloaded (contention-free, jitter-free)
// duration of a transfer of size bytes between the two nodes. It is useful
// for analytic checks in tests.
func (f *Fabric) TransferDuration(from, to NodeID, size int64) vtime.Dur {
	if from == to {
		return f.cfg.SoftwareLatency
	}
	d := f.cfg.SoftwareLatency + float64(size)/f.cfg.LinkBandwidth +
		f.cfg.HopLatency*float64(f.Hops(from, to))
	if f.Hops(from, to) == 4 {
		// The slowest pipeline stage bounds cut-through transfers.
		up := float64(size) / f.uplinkBandwidth()
		if up > float64(size)/f.cfg.LinkBandwidth {
			d = f.cfg.SoftwareLatency + up + f.cfg.HopLatency*4
		}
	}
	return d
}

// Transfers returns the number of transfers and total bytes moved.
func (f *Fabric) Transfers() (n int64, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transfers, f.bytes
}

// Dropped returns the number of transfers lost to fault-hook drops.
func (f *Fabric) Dropped() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Reset returns every link to idle at time zero and clears counters and
// fault hooks. Jitter needs no re-seeding: it is a stateless hash of each
// transfer, so repeated runs are identical by construction.
func (f *Fabric) Reset() {
	f.mu.Lock()
	f.transfers, f.bytes, f.dropped = 0, 0, 0
	f.hooks = nil
	f.mu.Unlock()
	for _, n := range f.nodes {
		n.egress.Reset()
		n.ingress.Reset()
	}
	for _, l := range f.leaves {
		l.up.Reset()
		l.down.Reset()
	}
}
