// Package netsim models the interconnect of the evaluation platform: a
// pruned fat-tree of EDR-InfiniBand-class links, as on the Irene/TGCC
// Skylake partition used by the paper.
//
// The model is intentionally small: two switch levels (leaf switches and a
// non-blocking spine), full-duplex node links, and pruned uplinks whose
// aggregate bandwidth is a fraction of the attached node bandwidth. Every
// shared element (node NIC egress/ingress, leaf uplink up/down) is a
// vtime.Resource, so congestion produces FCFS queueing delays in virtual
// time. A transfer occupies each link on its path in a pipelined (cut
// through) fashion: the path bandwidth is the minimum link bandwidth and
// hot links delay the whole flow.
//
// Concurrent transfers contend only where the model says they contend —
// on the per-link vtime.Resource mutexes along their paths — never on
// fabric bookkeeping: totals are atomics, metric handles are resolved
// once (fabric totals when a registry is attached, per-link bundles
// CAS-cached on first use), and fault hooks are read through an atomic
// snapshot pointer (DESIGN.md §14).
//
// The paper's Experiment II (Figure 5) attributes run-to-run variability
// to which leaf switch each allocated node lands on; Fabric exposes hop
// counts and per-link jitter so the harness can reproduce that effect.
package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"deisago/internal/metrics"
	"deisago/internal/vtime"
)

// NodeID identifies a compute node in the fabric.
type NodeID int

// Config describes the fabric hardware.
type Config struct {
	// NodesPerSwitch is the number of nodes attached to one leaf switch.
	NodesPerSwitch int
	// LinkBandwidth is the node-to-leaf link bandwidth in bytes/second
	// (per direction; links are full duplex).
	LinkBandwidth float64
	// PruneFactor divides the leaf uplink aggregate bandwidth: an uplink
	// carries NodesPerSwitch*LinkBandwidth/PruneFactor bytes/second.
	// PruneFactor 1 is a non-blocking tree; the paper's platform uses a
	// pruned tree, so values > 1 are typical.
	PruneFactor float64
	// HopLatency is the per-hop latency in seconds.
	HopLatency float64
	// SoftwareLatency is a fixed per-message software overhead in seconds
	// (driver, protocol) charged once per transfer.
	SoftwareLatency float64
	// JitterFrac, if non-zero, scales a deterministic pseudo-random
	// multiplicative jitter of ±JitterFrac applied to each transfer's
	// service time. The jitter is a pure hash of (Seed, from, to, size,
	// depart) — not a shared stream — so it is lock-free on the transfer
	// path and independent of the real-time order in which concurrent
	// goroutines issue transfers.
	JitterFrac float64
	// Seed seeds the jitter hash.
	Seed int64
}

// DefaultConfig returns a configuration calibrated to an EDR InfiniBand
// (100 Gb/s) pruned fat-tree, as described in the paper's evaluation.
func DefaultConfig() Config {
	return Config{
		NodesPerSwitch:  16,
		LinkBandwidth:   12.5e9, // 100 Gb/s
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 30e-6,
		JitterFrac:      0,
		Seed:            1,
	}
}

// FaultVerdict is a fault hook's decision about one transfer.
// SlowFactor (when > 0 and != 1) multiplies the transfer's service time
// on every link of the path; ExtraLatency is added once to the delivery
// time; Drop marks the message as lost in flight. The links are still
// occupied for a dropped transfer (the bytes entered the wire before the
// loss), but delivery-checking callers (TransferChecked) see it fail.
type FaultVerdict struct {
	SlowFactor   float64
	ExtraLatency vtime.Dur
	Drop         bool
}

// FaultHook inspects one transfer before it is booked and returns a
// verdict. Hooks must be deterministic functions of their arguments so
// seeded runs reproduce; they are called with no fabric lock held and may
// not call back into the fabric.
type FaultHook func(from, to NodeID, size int64, depart vtime.Time) FaultVerdict

// nodeMetrics bundles one node's per-link instrument handles. The
// fields are nil — and therefore no-op — when no registry is attached.
type nodeMetrics struct {
	egBytes, inBytes *metrics.Counter
	egWait, inWait   *metrics.Histogram
}

// leafMetrics is the leaf-switch counterpart of nodeMetrics.
type leafMetrics struct {
	upBytes, downBytes *metrics.Counter
	upWait, downWait   *metrics.Histogram
}

// noNodeMetrics / noLeafMetrics are the shared all-nil handle bundles
// cached on links of an uninstrumented fabric, so the transfer path is
// one atomic load regardless of instrumentation.
var (
	noNodeMetrics nodeMetrics
	noLeafMetrics leafMetrics
)

type node struct {
	id      NodeID
	leaf    int
	leafSW  *leafSwitch // cached f.leaves[leaf], resolved at New
	egress  *vtime.Resource
	ingress *vtime.Resource

	// Per-link handles, resolved once on the node's first transfer and
	// cached behind an atomic pointer (see Fabric.nodeHandles): the hot
	// path is a single lock-free load, and a fabric only ever creates
	// instruments for links that actually carry traffic — machines are
	// platform-sized (hundreds of nodes) while runs touch a handful, so
	// resolving all of them up front would dwarf the run itself.
	nm atomic.Pointer[nodeMetrics]
}

type leafSwitch struct {
	up   *vtime.Resource // toward the spine
	down *vtime.Resource // from the spine

	lm atomic.Pointer[leafMetrics]
}

// Fabric is a simulated interconnect. All methods are safe for concurrent
// use; UseMetrics must be called before traffic starts.
type Fabric struct {
	cfg    Config
	upBW   float64 // uplink bandwidth, precomputed at New
	nodes  []*node
	leaves []*leafSwitch

	// Fabric totals. Atomics, not a mutex: transfers on disjoint paths
	// must never serialize on bookkeeping.
	transfers atomic.Int64
	bytes     atomic.Int64
	dropped   atomic.Int64

	// Fault hooks behind an atomic snapshot: the transfer path loads the
	// current slice pointer; AddFaultHook/ClearFaultHooks/Reset swap in a
	// fresh slice under hookMu (copy-on-write, writers only).
	hooks  atomic.Pointer[[]FaultHook]
	hookMu sync.Mutex

	// Registry and fabric-total handles, resolved once by UseMetrics.
	reg              *metrics.Registry
	mTransfersLocal  *metrics.Counter
	mTransfersRemote *metrics.Counter
	mBytesLocal      *metrics.Counter
	mBytesRemote     *metrics.Counter
	mDropped         *metrics.Counter
}

// New builds a fabric with numNodes nodes. Nodes are assigned to leaf
// switches in blocks of cfg.NodesPerSwitch, in node-ID order; use a
// cluster allocation layer to permute which logical node gets which ID
// when modelling varying batch-scheduler allocations.
func New(cfg Config, numNodes int) *Fabric {
	if cfg.NodesPerSwitch <= 0 {
		panic("netsim: NodesPerSwitch must be positive")
	}
	if cfg.LinkBandwidth <= 0 {
		panic("netsim: LinkBandwidth must be positive")
	}
	if cfg.PruneFactor <= 0 {
		cfg.PruneFactor = 1
	}
	if numNodes <= 0 {
		panic("netsim: need at least one node")
	}
	f := &Fabric{
		cfg:  cfg,
		upBW: cfg.LinkBandwidth * float64(cfg.NodesPerSwitch) / cfg.PruneFactor,
	}
	nLeaves := (numNodes + cfg.NodesPerSwitch - 1) / cfg.NodesPerSwitch
	for l := 0; l < nLeaves; l++ {
		f.leaves = append(f.leaves, &leafSwitch{
			up:   vtime.NewResource(fmt.Sprintf("leaf%d-up", l)),
			down: vtime.NewResource(fmt.Sprintf("leaf%d-down", l)),
		})
	}
	for i := 0; i < numNodes; i++ {
		leaf := i / cfg.NodesPerSwitch
		f.nodes = append(f.nodes, &node{
			id:      NodeID(i),
			leaf:    leaf,
			leafSW:  f.leaves[leaf],
			egress:  vtime.NewResource(fmt.Sprintf("node%d-eg", i)),
			ingress: vtime.NewResource(fmt.Sprintf("node%d-in", i)),
		})
	}
	return f
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// NumNodes returns the number of nodes.
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// Leaf returns the leaf-switch index of a node.
func (f *Fabric) Leaf(n NodeID) int {
	return f.nodes[f.check(n)].leaf
}

// Hops returns the number of switch hops between two nodes: 0 on the same
// node, 2 within one leaf switch, 4 across the spine.
func (f *Fabric) Hops(from, to NodeID) int {
	a, b := f.nodes[f.check(from)], f.nodes[f.check(to)]
	switch {
	case a.id == b.id:
		return 0
	case a.leaf == b.leaf:
		return 2
	default:
		return 4
	}
}

func (f *Fabric) check(n NodeID) int {
	if int(n) < 0 || int(n) >= len(f.nodes) {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", n, len(f.nodes)))
	}
	return int(n)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// permutation used to derive per-transfer jitter without any shared state.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// jitter returns the multiplicative jitter for one transfer. It is a pure
// function of the fabric seed and the transfer's identity, so it takes no
// lock, never perturbs other transfers' jitter, and gives the same value
// no matter which goroutine orders the call first — the property the
// parallel harness relies on for bit-identical runs.
func (f *Fabric) jitter(from, to NodeID, size int64, depart vtime.Time) float64 {
	if f.cfg.JitterFrac == 0 {
		return 1
	}
	h := mix64(uint64(f.cfg.Seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(from))
	h = mix64(h ^ uint64(to))
	h = mix64(h ^ uint64(size))
	h = mix64(h ^ math.Float64bits(depart))
	u := float64(h>>11) / (1 << 53) // uniform in [0,1)
	j := 1 + f.cfg.JitterFrac*(2*u-1)
	if j < 0.05 {
		j = 0.05
	}
	return j
}

// UseMetrics attaches a registry: subsequent transfers count bytes and
// queue waits per link (component "link") plus fabric totals (component
// "fabric"), and RecordUtilization can sample link busy fractions. The
// per-scope fabric totals are resolved here, once; per-node and
// per-leaf handles materialize lock-free on each link's first transfer
// (see nodeHandles), so no transfer ever takes a fabric-wide lock and a
// platform-sized fabric never pays for links a run leaves idle. Call
// before traffic starts: the scope handles are published unsynchronized
// on the strength of that happens-before, and any per-link cache from a
// previously attached registry is invalidated.
func (f *Fabric) UseMetrics(r *metrics.Registry) {
	f.reg = r
	f.mTransfersLocal = r.Counter("fabric", "transfers", metrics.L("scope", "local"))
	f.mTransfersRemote = r.Counter("fabric", "transfers", metrics.L("scope", "remote"))
	f.mBytesLocal = r.Counter("fabric", "bytes", metrics.L("scope", "local"))
	f.mBytesRemote = r.Counter("fabric", "bytes", metrics.L("scope", "remote"))
	f.mDropped = r.Counter("fabric", "dropped")
	for _, n := range f.nodes {
		n.nm.Store(nil)
	}
	for _, l := range f.leaves {
		l.lm.Store(nil)
	}
}

// nodeHandles returns the node's instrument bundle, resolving and
// caching it on first use. Resolution goes through the registry's own
// creation path (idempotent, internally synchronized); racing callers
// resolve the same instruments and one bundle wins the CAS, so the
// published pointer is stable from then on and the transfer path pays
// one atomic load.
func (f *Fabric) nodeHandles(n *node) *nodeMetrics {
	if nm := n.nm.Load(); nm != nil {
		return nm
	}
	nm := &noNodeMetrics
	if r := f.reg; r != nil {
		eg := metrics.L("link", fmt.Sprintf("node%d-eg", n.id))
		in := metrics.L("link", fmt.Sprintf("node%d-in", n.id))
		nm = &nodeMetrics{
			egBytes: r.Counter("link", "bytes", eg),
			inBytes: r.Counter("link", "bytes", in),
			egWait:  r.Histogram("link", "queue_wait", eg),
			inWait:  r.Histogram("link", "queue_wait", in),
		}
	}
	if !n.nm.CompareAndSwap(nil, nm) {
		return n.nm.Load()
	}
	return nm
}

// leafHandles is nodeHandles for a leaf switch.
func (f *Fabric) leafHandles(i int, l *leafSwitch) *leafMetrics {
	if lm := l.lm.Load(); lm != nil {
		return lm
	}
	lm := &noLeafMetrics
	if r := f.reg; r != nil {
		up := metrics.L("link", fmt.Sprintf("leaf%d-up", i))
		down := metrics.L("link", fmt.Sprintf("leaf%d-down", i))
		lm = &leafMetrics{
			upBytes:   r.Counter("link", "bytes", up),
			downBytes: r.Counter("link", "bytes", down),
			upWait:    r.Histogram("link", "queue_wait", up),
			downWait:  r.Histogram("link", "queue_wait", down),
		}
	}
	if !l.lm.CompareAndSwap(nil, lm) {
		return l.lm.Load()
	}
	return lm
}

// RecordUtilization samples each active link's busy fraction of the
// virtual interval [0, at] into link/utilization gauges (idle links are
// skipped). Call once after the workload has drained.
func (f *Fabric) RecordUtilization(at vtime.Time) {
	reg := f.reg
	if reg == nil || at <= 0 {
		return
	}
	set := func(name string, r *vtime.Resource) {
		if b := r.Busy(); b > 0 {
			reg.Gauge("link", "utilization", metrics.L("link", name)).Set(b/at, at)
		}
	}
	for _, n := range f.nodes {
		set(fmt.Sprintf("node%d-eg", n.id), n.egress)
		set(fmt.Sprintf("node%d-in", n.id), n.ingress)
	}
	for i, l := range f.leaves {
		set(fmt.Sprintf("leaf%d-up", i), l.up)
		set(fmt.Sprintf("leaf%d-down", i), l.down)
	}
}

// AddFaultHook installs a fault hook consulted on every transfer (chaos
// fault injection: link degradation, extra latency, message drops). Hooks
// compose: slow factors multiply, latencies add, and any Drop verdict
// drops the message.
func (f *Fabric) AddFaultHook(h FaultHook) {
	f.hookMu.Lock()
	var hooks []FaultHook
	if old := f.hooks.Load(); old != nil {
		hooks = append(hooks, *old...)
	}
	hooks = append(hooks, h)
	f.hooks.Store(&hooks)
	f.hookMu.Unlock()
}

// ClearFaultHooks removes every installed fault hook.
func (f *Fabric) ClearFaultHooks() {
	f.hookMu.Lock()
	f.hooks.Store(nil)
	f.hookMu.Unlock()
}

// verdict combines every hook's verdict for one transfer. It reads the
// hook snapshot through the atomic pointer: no lock on the transfer path.
func (f *Fabric) verdict(from, to NodeID, size int64, depart vtime.Time) FaultVerdict {
	out := FaultVerdict{SlowFactor: 1}
	hp := f.hooks.Load()
	if hp == nil {
		return out
	}
	for _, h := range *hp {
		v := h(from, to, size, depart)
		if v.SlowFactor > 0 {
			out.SlowFactor *= v.SlowFactor
		}
		out.ExtraLatency += v.ExtraLatency
		out.Drop = out.Drop || v.Drop
	}
	return out
}

// Transfer simulates moving size bytes from one node to another, departing
// at the given virtual time, and returns the arrival time. Local (same
// node) transfers cost only the software latency. The transfer occupies
// every shared link on its path; links are acquired in path order with
// pipelined starts, so the effective bandwidth is the minimum along the
// path and congestion at any link delays delivery.
//
// Transfer models reliable delivery: fault-hook Drop verdicts are ignored
// (retransmission is the caller's concern); degradation and extra latency
// still apply. Use TransferChecked to observe drops.
func (f *Fabric) Transfer(from, to NodeID, size int64, depart vtime.Time) vtime.Time {
	t, _ := f.TransferChecked(from, to, size, depart)
	return t
}

// TransferChecked is Transfer plus loss observation: it returns the
// delivery time and whether the message was actually delivered. A dropped
// transfer still occupies its path (the bytes entered the wire before
// being lost) and the returned time is when the loss is final.
//
// The only synchronization on this path is the per-link Resource booking
// along the transfer's own route: totals are atomics, metric handles are
// pre-resolved or CAS-cached (and nil-safe when no registry is
// attached), the fault snapshot and jitter are lock-free reads.
func (f *Fabric) TransferChecked(from, to NodeID, size int64, depart vtime.Time) (vtime.Time, bool) {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	a, b := f.nodes[f.check(from)], f.nodes[f.check(to)]
	v := f.verdict(from, to, size, depart)

	f.transfers.Add(1)
	f.bytes.Add(size)
	if v.Drop {
		f.dropped.Add(1)
		f.mDropped.Inc()
	}

	t := depart + f.cfg.SoftwareLatency + v.ExtraLatency
	if a.id == b.id {
		f.mTransfersLocal.Inc()
		f.mBytesLocal.Add(size)
		return t, !v.Drop
	}
	f.mTransfersRemote.Inc()
	f.mBytesRemote.Add(size)
	am, bm := f.nodeHandles(a), f.nodeHandles(b)
	am.egBytes.Add(size)
	bm.inBytes.Add(size)

	crossSpine := a.leaf != b.leaf
	hops := 2
	if crossSpine {
		hops = 4
	}
	j := f.jitter(from, to, size, depart) * v.SlowFactor
	linkD := j * float64(size) / f.cfg.LinkBandwidth
	lat := f.cfg.HopLatency * float64(hops)

	// Pipelined (cut-through) occupancy: each link along the path is
	// requested starting from the previous link's service *start*, so an
	// uncongested path costs one serialization, while a congested link
	// stalls the flow.
	start, end := a.egress.Acquire(t, linkD)
	am.egWait.Observe(start - t)
	if crossSpine {
		la, lb := a.leafSW, b.leafSW
		lam, lbm := f.leafHandles(a.leaf, la), f.leafHandles(b.leaf, lb)
		lam.upBytes.Add(size)
		lbm.downBytes.Add(size)
		upD := j * float64(size) / f.upBW
		s2, e2 := la.up.Acquire(start, upD)
		lam.upWait.Observe(s2 - start)
		s3, e3 := lb.down.Acquire(s2, upD)
		lbm.downWait.Observe(s3 - s2)
		start, end = s3, vtime.MaxTime(end, e2, e3)
	}
	s4, e4 := b.ingress.Acquire(start, linkD)
	bm.inWait.Observe(s4 - start)
	end = vtime.MaxTime(end, e4)
	return end + lat, !v.Drop
}

// TransferDuration returns the unloaded (contention-free, jitter-free)
// duration of a transfer of size bytes between the two nodes. It is useful
// for analytic checks in tests.
func (f *Fabric) TransferDuration(from, to NodeID, size int64) vtime.Dur {
	if from == to {
		return f.cfg.SoftwareLatency
	}
	d := f.cfg.SoftwareLatency + float64(size)/f.cfg.LinkBandwidth +
		f.cfg.HopLatency*float64(f.Hops(from, to))
	if f.Hops(from, to) == 4 {
		// The slowest pipeline stage bounds cut-through transfers.
		up := float64(size) / f.upBW
		if up > float64(size)/f.cfg.LinkBandwidth {
			d = f.cfg.SoftwareLatency + up + f.cfg.HopLatency*4
		}
	}
	return d
}

// Transfers returns the number of transfers and total bytes moved.
func (f *Fabric) Transfers() (n int64, bytes int64) {
	return f.transfers.Load(), f.bytes.Load()
}

// Dropped returns the number of transfers lost to fault-hook drops.
func (f *Fabric) Dropped() int64 {
	return f.dropped.Load()
}

// Reset returns every link to idle at time zero and clears counters and
// fault hooks. Jitter needs no re-seeding: it is a stateless hash of each
// transfer, so repeated runs are identical by construction.
func (f *Fabric) Reset() {
	f.transfers.Store(0)
	f.bytes.Store(0)
	f.dropped.Store(0)
	f.hookMu.Lock()
	f.hooks.Store(nil)
	f.hookMu.Unlock()
	for _, n := range f.nodes {
		n.egress.Reset()
		n.ingress.Reset()
	}
	for _, l := range f.leaves {
		l.up.Reset()
		l.down.Reset()
	}
}
