package netsim

import (
	"sync/atomic"
	"testing"

	"deisago/internal/metrics"
)

// benchConfig is a fabric where every (2p, 2p+1) node pair crosses the
// spine through its own pair of leaves (NodesPerSwitch 1), so concurrent
// senders on distinct pairs share no modelled link: any cross-pair
// slowdown is bookkeeping contention, which is exactly what the
// parallel-senders benchmark exists to measure. Jitter is on so the
// hash path is included in the per-transfer cost.
func benchConfig() Config {
	return Config{
		NodesPerSwitch:  1,
		LinkBandwidth:   12.5e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 3e-5,
		JitterFrac:      0.08,
		Seed:            1,
	}
}

// benchPairs bounds the distinct node pairs handed to parallel senders.
const benchPairs = 128

// BenchmarkFabricTransfer measures the full instrumented 4-hop transfer
// path (fabric totals, per-link byte counters, queue-wait histograms).
// The serial and parallel variants do identical per-op work on the same
// topology; their ratio is the fabric's contention scalability and is
// gated in BENCH_NET.json (>=2x on >=4 cores, not-slower on 1 core).
// Each sender departs its next transfer at the previous arrival, so its
// links stay uncongested and per-op cost does not drift with b.N.
func BenchmarkFabricTransfer(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		f := New(benchConfig(), 2*benchPairs)
		f.UseMetrics(metrics.NewRegistry())
		b.ReportAllocs()
		b.ResetTimer()
		at := 0.0
		for i := 0; i < b.N; i++ {
			at = f.Transfer(0, 1, 1<<20, at)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		f := New(benchConfig(), 2*benchPairs)
		f.UseMetrics(metrics.NewRegistry())
		var next atomic.Int32
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			p := int(next.Add(1)-1) % benchPairs
			from, to := NodeID(2*p), NodeID(2*p+1)
			at := 0.0
			for pb.Next() {
				at = f.Transfer(from, to, 1<<20, at)
			}
		})
	})
}
