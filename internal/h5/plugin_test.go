package h5

import (
	"testing"

	"deisago/internal/ndarray"
	"deisago/internal/pdi"
	"deisago/internal/pfs"
)

const pluginCfg = `
data:
  temp:
    size: [ '$cfg.loc[0]', '$cfg.loc[1]' ]
plugins:
  PdiPluginHDF5:
    file: out.h5
    time_step: '$step'
    size_scale: 4
    datasets:
      G_temp:
        size:
          - '$cfg.maxTimeStep'
          - '$cfg.loc[0]'
          - '$cfg.loc[1] * $cfg.proc[1]'
        subsize:
          - 1
          - '$cfg.loc[0]'
          - '$cfg.loc[1]'
        start:
          - '$step'
          - 0
          - '$cfg.loc[1] * $rank'
    map_in:
      temp: G_temp
`

func pluginSystem(t *testing.T, fsys *pfs.FS, rank int) (*pdi.System, *PdiPlugin) {
	t.Helper()
	sys, err := pdi.New(pluginCfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Expose("step", 0)
	sys.Expose("rank", rank)
	sys.Expose("cfg", map[string]any{
		"loc":         []int{2, 2},
		"proc":        []int{1, 2},
		"maxTimeStep": 3,
	})
	p := NewPdiPlugin(fsys)
	if err := sys.AddPlugin(p); err != nil {
		t.Fatal(err)
	}
	return sys, p
}

func TestPdiPluginWritesChunks(t *testing.T) {
	fsys := testFS()
	sys0, p0 := pluginSystem(t, fsys, 0)
	now, err := sys0.Event("init", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.File() == nil {
		t.Fatal("file not created")
	}
	// Second rank attaches to the same file.
	sys1, p1 := pluginSystem(t, fsys, 1)
	if err := p1.AttachFile(p0.File()); err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 3; step++ {
		sys0.Expose("step", step)
		sys1.Expose("step", step)
		b0 := ndarray.New(2, 2)
		b0.Fill(float64(step))
		b1 := ndarray.New(2, 2)
		b1.Fill(float64(10 + step))
		if now, err = sys0.Share("temp", b0, now); err != nil {
			t.Fatal(err)
		}
		if now, err = sys1.Share("temp", b1, now); err != nil {
			t.Fatal(err)
		}
	}

	// Read back and verify layout: (t, X=2, Y=4), rank r at Y offset 2r.
	f, _, err := Open(fsys, "out.h5", now)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := f.Dataset("G_temp")
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := ds.ReadAll(now)
	if err != nil {
		t.Fatal(err)
	}
	if all.At(1, 0, 0) != 1 || all.At(2, 1, 1) != 2 {
		t.Fatalf("rank-0 data wrong: %v", all)
	}
	if all.At(0, 0, 2) != 10 || all.At(2, 1, 3) != 12 {
		t.Fatalf("rank-1 data wrong: %v", all)
	}
}

func TestPdiPluginCostScale(t *testing.T) {
	fsys := testFS()
	sys, _ := pluginSystem(t, fsys, 0)
	now, err := sys.Event("init", 0)
	if err != nil {
		t.Fatal(err)
	}
	b := ndarray.New(2, 2)
	end, err := sys.Share("temp", b, now)
	if err != nil {
		t.Fatal(err)
	}
	// size_scale=4: the write must be charged 4× the raw bytes.
	_, written := fsys.Traffic()
	if written < 4*32 {
		t.Fatalf("scaled write charged only %d bytes", written)
	}
	if end <= now {
		t.Fatal("write cost no time")
	}
}

func TestPdiPluginConfigErrors(t *testing.T) {
	fsys := testFS()
	for name, cfg := range map[string]string{
		"no file": `
plugins:
  PdiPluginHDF5:
    time_step: '$step'
    datasets: { a: { size: [1], subsize: [1], start: [0] } }
    map_in: { temp: a }
`,
		"no timestep": `
plugins:
  PdiPluginHDF5:
    file: f.h5
    datasets: { a: { size: [1], subsize: [1], start: [0] } }
    map_in: { temp: a }
`,
		"bad target": `
plugins:
  PdiPluginHDF5:
    file: f.h5
    time_step: '$step'
    datasets: { a: { size: [1], subsize: [1], start: [0] } }
    map_in: { temp: ghost }
`,
		"no section": `data: { temp: { size: [1] } }`,
	} {
		sys, err := pdi.New(cfg)
		if err != nil {
			t.Fatalf("%s: yaml: %v", name, err)
		}
		if err := sys.AddPlugin(NewPdiPlugin(fsys)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestPdiPluginShareBeforeInit(t *testing.T) {
	fsys := testFS()
	sys, _ := pluginSystem(t, fsys, 0)
	if _, err := sys.Share("temp", ndarray.New(2, 2), 0); err == nil {
		t.Fatal("share before init accepted")
	}
}

func TestPdiPluginMisalignedStart(t *testing.T) {
	fsys := testFS()
	sys, _ := pluginSystem(t, fsys, 0)
	if _, err := sys.Event("init", 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the rank so start is not chunk-aligned: loc[1]*rank with
	// rank exposed as a value producing misalignment is not possible
	// here (loc[1]=2 divides), so instead re-expose cfg with odd loc.
	sys.Expose("rank", 1)
	sys.Expose("cfg", map[string]any{
		"loc":         []int{2, 3}, // start = 3, chunk = 2 → misaligned
		"proc":        []int{1, 2},
		"maxTimeStep": 3,
	})
	if _, err := sys.Share("temp", ndarray.New(2, 3), 0); err == nil {
		t.Fatal("misaligned start accepted")
	}
}
