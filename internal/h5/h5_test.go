package h5

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deisago/internal/ndarray"
	"deisago/internal/pfs"
)

func testFS() *pfs.FS {
	return pfs.New(pfs.Config{OSTs: 4, OSTBandwidth: 1e9, StripeSize: 1 << 16, MetaLatency: 1e-4})
}

func TestCreateOpenRoundtrip(t *testing.T) {
	fsys := testFS()
	f, end := Create(fsys, "out.h5", 0)
	if end <= 0 {
		t.Fatal("Create cost no time")
	}
	if _, _, err := f.CreateDataset("temp", []int{4, 6}, []int{2, 3}, end); err != nil {
		t.Fatal(err)
	}
	g, _, err := Open(fsys, "out.h5", end)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Datasets(); len(got) != 1 || got[0] != "temp" {
		t.Fatalf("Datasets = %v", got)
	}
	d, err := g.Dataset("temp")
	if err != nil {
		t.Fatal(err)
	}
	if s := d.Shape(); s[0] != 4 || s[1] != 6 {
		t.Fatalf("Shape = %v", s)
	}
	if c := d.ChunkShape(); c[0] != 2 || c[1] != 3 {
		t.Fatalf("ChunkShape = %v", c)
	}
	if d.NumChunks() != 4 {
		t.Fatalf("NumChunks = %d", d.NumChunks())
	}
}

func TestOpenMissing(t *testing.T) {
	if _, _, err := Open(testFS(), "nope.h5", 0); err == nil {
		t.Fatal("Open of missing file should error")
	}
}

func TestWriteReadChunk(t *testing.T) {
	fsys := testFS()
	f, end := Create(fsys, "x.h5", 0)
	d, end, err := f.CreateDataset("a", []int{4, 4}, []int{2, 2}, end)
	if err != nil {
		t.Fatal(err)
	}
	chunk := ndarray.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	end, err = d.WriteChunk([]int{1, 0}, chunk, end)
	if err != nil {
		t.Fatal(err)
	}
	got, end2, err := d.ReadChunk([]int{1, 0}, end)
	if err != nil {
		t.Fatal(err)
	}
	if end2 <= end {
		t.Fatal("read cost no time")
	}
	if !ndarray.Equal(got, chunk) {
		t.Fatalf("chunk roundtrip: got %v", got)
	}
	// Unwritten chunk reads as zeros.
	z, _, err := d.ReadChunk([]int{0, 1}, end2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Sum() != 0 {
		t.Fatal("unwritten chunk not zero")
	}
}

func TestEdgeChunks(t *testing.T) {
	fsys := testFS()
	f, end := Create(fsys, "e.h5", 0)
	// 5x7 with 2x3 chunks: grid 3x3, edge extents 1 and 1.
	d, end, err := f.CreateDataset("a", []int{5, 7}, []int{2, 3}, end)
	if err != nil {
		t.Fatal(err)
	}
	grid := d.ChunkGrid()
	if grid[0] != 3 || grid[1] != 3 {
		t.Fatalf("grid = %v", grid)
	}
	edge := ndarray.FromSlice([]float64{7}, 1, 1)
	if _, err = d.WriteChunk([]int{2, 2}, edge, end); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.ReadChunk([]int{2, 2}, end)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != 1 || got.Dim(1) != 1 || got.At(0, 0) != 7 {
		t.Fatalf("edge chunk = %v", got)
	}
	// Wrong shape rejected.
	if _, err := d.WriteChunk([]int{2, 2}, ndarray.New(2, 3), end); err == nil {
		t.Fatal("full-size write to edge chunk should error")
	}
}

func TestReadAll(t *testing.T) {
	fsys := testFS()
	f, end := Create(fsys, "r.h5", 0)
	d, end, err := f.CreateDataset("a", []int{4, 6}, []int{2, 3}, end)
	if err != nil {
		t.Fatal(err)
	}
	want := ndarray.New(4, 6)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			want.Set(rng.NormFloat64(), i, j)
		}
	}
	for ci := 0; ci < 2; ci++ {
		for cj := 0; cj < 2; cj++ {
			blk := want.Slice(ndarray.Range{Start: ci * 2, Stop: ci*2 + 2},
				ndarray.Range{Start: cj * 3, Stop: cj*3 + 3}).Copy()
			if end, err = d.WriteChunk([]int{ci, cj}, blk, end); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, _, err := d.ReadAll(end)
	if err != nil {
		t.Fatal(err)
	}
	if !ndarray.Equal(got, want) {
		t.Fatal("ReadAll != written data")
	}
}

func TestMultipleDatasetsDoNotOverlap(t *testing.T) {
	fsys := testFS()
	f, end := Create(fsys, "m.h5", 0)
	d1, end, err := f.CreateDataset("a", []int{2, 2}, []int{2, 2}, end)
	if err != nil {
		t.Fatal(err)
	}
	d2, end, err := f.CreateDataset("b", []int{2, 2}, []int{2, 2}, end)
	if err != nil {
		t.Fatal(err)
	}
	a := ndarray.FromSlice([]float64{1, 1, 1, 1}, 2, 2)
	b := ndarray.FromSlice([]float64{2, 2, 2, 2}, 2, 2)
	d1.WriteChunk([]int{0, 0}, a, end)
	d2.WriteChunk([]int{0, 0}, b, end)
	g1, _, _ := d1.ReadChunk([]int{0, 0}, end)
	g2, _, _ := d2.ReadChunk([]int{0, 0}, end)
	if !ndarray.Equal(g1, a) || !ndarray.Equal(g2, b) {
		t.Fatal("datasets overlap on disk")
	}
}

func TestErrors(t *testing.T) {
	fsys := testFS()
	f, end := Create(fsys, "err.h5", 0)
	if _, _, err := f.CreateDataset("a", []int{2}, []int{2, 2}, end); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, _, err := f.CreateDataset("a", []int{0}, []int{1}, end); err == nil {
		t.Fatal("zero extent accepted")
	}
	d, end, err := f.CreateDataset("a", []int{4}, []int{2}, end)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.CreateDataset("a", []int{4}, []int{2}, end); err == nil {
		t.Fatal("duplicate dataset accepted")
	}
	if _, err := f.Dataset("zzz"); err == nil {
		t.Fatal("missing dataset lookup succeeded")
	}
	if _, err := d.WriteChunk([]int{9}, ndarray.New(2), end); err == nil {
		t.Fatal("out-of-grid chunk accepted")
	}
	if _, _, err := d.ReadChunk([]int{0, 0}, end); err == nil {
		t.Fatal("wrong-rank index accepted")
	}
}

// Property: for random shapes/chunkings, writing every chunk of a random
// array then ReadAll reproduces the array exactly.
func TestChunkRoundtripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(7) + 1
		cols := rng.Intn(7) + 1
		cr := rng.Intn(rows) + 1
		cc := rng.Intn(cols) + 1
		fsys := testFS()
		file, end := Create(fsys, "q.h5", 0)
		d, end, err := file.CreateDataset("a", []int{rows, cols}, []int{cr, cc}, end)
		if err != nil {
			return false
		}
		want := ndarray.New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want.Set(rng.NormFloat64(), i, j)
			}
		}
		grid := d.ChunkGrid()
		for ci := 0; ci < grid[0]; ci++ {
			for cj := 0; cj < grid[1]; cj++ {
				r0, c0 := ci*cr, cj*cc
				r1, c1 := min(r0+cr, rows), min(c0+cc, cols)
				blk := want.Slice(ndarray.Range{Start: r0, Stop: r1}, ndarray.Range{Start: c0, Stop: c1}).Copy()
				if end, err = d.WriteChunk([]int{ci, cj}, blk, end); err != nil {
					return false
				}
			}
		}
		got, _, err := d.ReadAll(end)
		return err == nil && ndarray.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecode(t *testing.T) {
	xs := []float64{0, 1.5, -2.25, 1e300, -1e-300}
	raw := make([]byte, len(xs)*bytesPerElem)
	encodeFloats(raw, xs)
	got := make([]float64, len(xs))
	decodeFloats(got, raw)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], xs[i])
		}
	}
}
