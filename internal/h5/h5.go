// Package h5 implements a minimal HDF5-like container: named
// n-dimensional float64 datasets stored in regular chunks inside a single
// file on the simulated parallel file system. It provides what the
// paper's post hoc baseline needs — the simulation writes one chunked
// dataset per field, and the Dask analytics later read it back with the
// same chunking ("we have chunked the HDF5 files and used the same
// chunking in the analytics", §3.3.1).
package h5

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"deisago/internal/ndarray"
	"deisago/internal/pfs"
	"deisago/internal/vtime"
)

const bytesPerElem = 8

// Chunk staging pools. WriteChunk encodes into a transient byte buffer
// (the pfs copies it into file storage) and ReadChunk decodes from a
// transient one (pfs copies file bytes into it); edge chunks additionally
// stage through a zero-padded float buffer. All of these die immediately
// in the seed implementation, so per-step chunk traffic allocates
// O(chunk) garbage; the pools recycle them instead. Buffers are
// capacity-checked on reuse, so datasets with different chunk sizes can
// share the pools.
var (
	bytePool  = sync.Pool{New: func() any { return new([]byte) }}
	floatPool = sync.Pool{New: func() any { return new([]float64) }}
)

func getByteBuf(n int) *[]byte {
	p := bytePool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func getFloatBuf(n int) *[]float64 {
	p := floatPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

type dsMeta struct {
	Shape  []int `json:"shape"`
	Chunks []int `json:"chunks"`
	Offset int64 `json:"offset"` // byte offset of the first chunk in the data file
	// SizeScale multiplies the modelled I/O cost of every chunk access:
	// the dataset stands in for one SizeScale times larger (harness
	// cost-model knob; 1 by default).
	SizeScale int64 `json:"size_scale,omitempty"`
}

type fileMeta struct {
	Datasets map[string]*dsMeta `json:"datasets"`
	NextOff  int64              `json:"next_off"`
}

// File is an open container.
type File struct {
	fs   *pfs.FS
	path string

	mu   sync.Mutex
	meta fileMeta
}

func metaPath(path string) string { return path + ".meta" }

// Create makes a new, empty container (truncating any existing one) and
// returns it with the virtual completion time.
func Create(fsys *pfs.FS, path string, at vtime.Time) (*File, vtime.Time) {
	end := fsys.Create(path, at)
	end = fsys.Create(metaPath(path), end)
	f := &File{fs: fsys, path: path, meta: fileMeta{Datasets: map[string]*dsMeta{}}}
	end = f.flushMeta(end)
	return f, end
}

// Open loads an existing container.
func Open(fsys *pfs.FS, path string, at vtime.Time) (*File, vtime.Time, error) {
	sz, err := fsys.Size(metaPath(path))
	if err != nil {
		return nil, at, fmt.Errorf("h5: open %s: %w", path, err)
	}
	raw, end, err := fsys.ReadAt(metaPath(path), 0, sz, at)
	if err != nil {
		return nil, at, err
	}
	f := &File{fs: fsys, path: path}
	if err := json.Unmarshal(raw, &f.meta); err != nil {
		return nil, at, fmt.Errorf("h5: corrupt metadata in %s: %w", path, err)
	}
	if f.meta.Datasets == nil {
		f.meta.Datasets = map[string]*dsMeta{}
	}
	return f, end, nil
}

func (f *File) flushMeta(at vtime.Time) vtime.Time {
	raw, err := json.Marshal(&f.meta)
	if err != nil {
		panic("h5: metadata marshal failed: " + err.Error())
	}
	// Metadata is small; recreate to truncate stale bytes.
	end := f.fs.Create(metaPath(f.path), at)
	end, werr := f.fs.WriteAt(metaPath(f.path), 0, raw, end)
	if werr != nil {
		panic("h5: metadata write failed: " + werr.Error())
	}
	return end
}

// Path returns the container path.
func (f *File) Path() string { return f.path }

// Datasets lists dataset names in lexical order.
func (f *File) Datasets() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.meta.Datasets))
	for n := range f.meta.Datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Dataset is a handle on one chunked dataset.
type Dataset struct {
	file *File
	name string
	meta *dsMeta
}

// CreateDataset allocates a dataset with the given logical shape and
// chunk shape. Edge chunks are stored zero-padded at full chunk size.
func (f *File) CreateDataset(name string, shape, chunks []int, at vtime.Time) (*Dataset, vtime.Time, error) {
	if len(shape) == 0 || len(shape) != len(chunks) {
		return nil, at, fmt.Errorf("h5: shape %v and chunks %v must be same non-zero rank", shape, chunks)
	}
	n := int64(1)
	for i := range shape {
		if shape[i] <= 0 || chunks[i] <= 0 {
			return nil, at, fmt.Errorf("h5: non-positive extent in shape %v / chunks %v", shape, chunks)
		}
		n *= int64(gridDim(shape[i], chunks[i]))
	}
	f.mu.Lock()
	if _, dup := f.meta.Datasets[name]; dup {
		f.mu.Unlock()
		return nil, at, fmt.Errorf("h5: dataset %q already exists", name)
	}
	dm := &dsMeta{
		Shape:  append([]int(nil), shape...),
		Chunks: append([]int(nil), chunks...),
		Offset: f.meta.NextOff,
	}
	chunkBytes := int64(chunkElems(chunks)) * bytesPerElem
	f.meta.Datasets[name] = dm
	f.meta.NextOff += n * chunkBytes
	end := f.flushMeta(at)
	f.mu.Unlock()
	return &Dataset{file: f, name: name, meta: dm}, end, nil
}

// Dataset returns a handle on an existing dataset.
func (f *File) Dataset(name string) (*Dataset, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dm, ok := f.meta.Datasets[name]
	if !ok {
		return nil, fmt.Errorf("h5: dataset %q not found in %s", name, f.path)
	}
	return &Dataset{file: f, name: name, meta: dm}, nil
}

func gridDim(extent, chunk int) int { return (extent + chunk - 1) / chunk }

func chunkElems(chunks []int) int {
	n := 1
	for _, c := range chunks {
		n *= c
	}
	return n
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// SetSizeScale declares that every chunk models a scale-times-larger
// block: chunk reads and writes charge the file system for
// scale × actual bytes. It returns the dataset for chaining.
func (d *Dataset) SetSizeScale(scale int64) *Dataset {
	if scale <= 0 {
		panic("h5: size scale must be positive")
	}
	d.meta.SizeScale = scale
	return d
}

// sizeScale returns the effective cost multiplier.
func (d *Dataset) sizeScale() int64 {
	if d.meta.SizeScale <= 0 {
		return 1
	}
	return d.meta.SizeScale
}

// Shape returns the logical dataset shape.
func (d *Dataset) Shape() []int { return append([]int(nil), d.meta.Shape...) }

// ChunkShape returns the chunking.
func (d *Dataset) ChunkShape() []int { return append([]int(nil), d.meta.Chunks...) }

// ChunkGrid returns the number of chunks in each dimension.
func (d *Dataset) ChunkGrid() []int {
	g := make([]int, len(d.meta.Shape))
	for i := range g {
		g[i] = gridDim(d.meta.Shape[i], d.meta.Chunks[i])
	}
	return g
}

// NumChunks returns the total chunk count.
func (d *Dataset) NumChunks() int {
	n := 1
	for _, g := range d.ChunkGrid() {
		n *= g
	}
	return n
}

// chunkExtent returns the in-bounds shape of the chunk at idx.
func (d *Dataset) chunkExtent(idx []int) ([]int, error) {
	if len(idx) != len(d.meta.Shape) {
		return nil, fmt.Errorf("h5: chunk index rank %d, dataset rank %d", len(idx), len(d.meta.Shape))
	}
	grid := d.ChunkGrid()
	ext := make([]int, len(idx))
	for i, x := range idx {
		if x < 0 || x >= grid[i] {
			return nil, fmt.Errorf("h5: chunk index %v outside grid %v", idx, grid)
		}
		ext[i] = d.meta.Chunks[i]
		if rem := d.meta.Shape[i] - x*d.meta.Chunks[i]; rem < ext[i] {
			ext[i] = rem
		}
	}
	return ext, nil
}

func (d *Dataset) chunkOffset(idx []int) int64 {
	grid := d.ChunkGrid()
	linear := 0
	for i, x := range idx {
		linear = linear*grid[i] + x
	}
	return d.meta.Offset + int64(linear)*int64(chunkElems(d.meta.Chunks))*bytesPerElem
}

// WriteChunk stores the array as the chunk at idx. The array's shape must
// equal the chunk's in-bounds extent; edge chunks are zero-padded on disk.
func (d *Dataset) WriteChunk(idx []int, a *ndarray.Array, at vtime.Time) (vtime.Time, error) {
	ext, err := d.chunkExtent(idx)
	if err != nil {
		return at, err
	}
	ash := a.Shape()
	if len(ash) != len(ext) {
		return at, fmt.Errorf("h5: chunk rank mismatch: array %v, extent %v", ash, ext)
	}
	for i := range ext {
		if ash[i] != ext[i] {
			return at, fmt.Errorf("h5: chunk %v shape %v, want %v", idx, ash, ext)
		}
	}
	elems := chunkElems(d.meta.Chunks)
	var src []float64
	var staged *[]float64
	if a.Size() == elems && a.IsContiguous() {
		// Interior chunk from a contiguous array: encode straight from
		// the caller's buffer, no staging copy at all.
		src = a.Data()
	} else {
		staged = getFloatBuf(elems)
		buf := *staged
		for i := range buf {
			buf[i] = 0 // edge chunks are stored zero-padded
		}
		full := ndarray.FromSlice(buf, d.meta.Chunks...)
		ranges := make([]ndarray.Range, len(ext))
		for i, e := range ext {
			ranges[i] = ndarray.Range{Start: 0, Stop: e}
		}
		full.Slice(ranges...).CopyFrom(a)
		src = buf
	}
	rawp := getByteBuf(len(src) * bytesPerElem)
	raw := *rawp
	encodeFloats(raw, src)
	end, werr := d.file.fs.WriteAtCost(d.file.path, d.chunkOffset(idx), raw,
		int64(len(raw))*d.sizeScale(), at)
	bytePool.Put(rawp) // WriteAtCost copied raw into file storage
	if staged != nil {
		floatPool.Put(staged)
	}
	return end, werr
}

// ReadChunk loads the chunk at idx, trimmed to its in-bounds extent.
func (d *Dataset) ReadChunk(idx []int, at vtime.Time) (*ndarray.Array, vtime.Time, error) {
	ext, err := d.chunkExtent(idx)
	if err != nil {
		return nil, at, err
	}
	elems := chunkElems(d.meta.Chunks)
	nbytes := int64(elems) * bytesPerElem
	rawp := getByteBuf(int(nbytes))
	raw, end, err := d.file.fs.ReadAtCostBuf(d.file.path, d.chunkOffset(idx), nbytes,
		nbytes*d.sizeScale(), *rawp, at)
	if err != nil {
		bytePool.Put(rawp)
		return nil, at, err
	}
	full := true
	for i, e := range ext {
		if e != d.meta.Chunks[i] {
			full = false
			break
		}
	}
	if full {
		// Interior chunk: decode directly into the result buffer (it is
		// retained by the caller, so only the byte staging is pooled).
		out := make([]float64, elems)
		decodeFloats(out, raw)
		bytePool.Put(rawp)
		return ndarray.FromSlice(out, d.meta.Chunks...), end, nil
	}
	staged := getFloatBuf(elems)
	decodeFloats(*staged, raw)
	bytePool.Put(rawp)
	fullArr := ndarray.FromSlice(*staged, d.meta.Chunks...)
	ranges := make([]ndarray.Range, len(ext))
	for i, e := range ext {
		ranges[i] = ndarray.Range{Start: 0, Stop: e}
	}
	trimmed := fullArr.Slice(ranges...).Copy()
	floatPool.Put(staged)
	return trimmed, end, nil
}

// ReadAll assembles the whole dataset by reading every chunk in sequence
// starting at the given time; it returns the data and the completion time.
func (d *Dataset) ReadAll(at vtime.Time) (*ndarray.Array, vtime.Time, error) {
	out := ndarray.New(d.meta.Shape...)
	grid := d.ChunkGrid()
	idx := make([]int, len(grid))
	end := at
	for {
		chunk, e, err := d.ReadChunk(idx, at)
		if err != nil {
			return nil, at, err
		}
		if e > end {
			end = e
		}
		ranges := make([]ndarray.Range, len(idx))
		for i, x := range idx {
			start := x * d.meta.Chunks[i]
			ranges[i] = ndarray.Range{Start: start, Stop: start + chunk.Dim(i)}
		}
		out.Slice(ranges...).CopyFrom(chunk)
		// Advance the chunk index odometer.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < grid[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, end, nil
}

// encodeFloats serializes xs into out, which must be len(xs)*8 bytes.
func encodeFloats(out []byte, xs []float64) {
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*bytesPerElem:], math.Float64bits(x))
	}
}

// decodeFloats deserializes raw into out, which must hold len(raw)/8
// elements.
func decodeFloats(out []float64, raw []byte) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*bytesPerElem:]))
	}
}
