package h5

import (
	"fmt"
	"sort"

	"deisago/internal/ndarray"
	"deisago/internal/pdi"
	"deisago/internal/pfs"
	"deisago/internal/vtime"
)

// PluginName is the configuration key of the HDF5 plugin.
const PluginName = "PdiPluginHDF5"

// PdiPlugin writes shared data into chunked datasets on the parallel
// file system — the post hoc counterpart of the deisa plugin, keeping
// the paper's separation of concerns: the simulation code only exposes
// data through PDI; whether it is coupled in transit or written to
// storage is configuration.
//
// Configuration (mirrors the deisa plugin's):
//
//	plugins:
//	  PdiPluginHDF5:
//	    file: sim.h5
//	    time_step: '$step'
//	    size_scale: 1              # optional cost multiplier
//	    datasets:
//	      G_temp:
//	        size:    [ '$cfg.maxTimeStep', ... ]
//	        subsize: [ 1, ... ]
//	        start:   [ '$step', ... ]
//	    map_in:
//	      temp: G_temp
type PdiPlugin struct {
	fsys *pfs.FS
	sys  *pdi.System

	path         string
	timeStepExpr string
	sizeScale    int64
	mapIn        map[string]string
	dsCfg        map[string]map[string]any

	file     *File
	datasets map[string]*Dataset
	created  bool
}

// NewPdiPlugin wraps a file system as a PDI HDF5 writer plugin.
func NewPdiPlugin(fsys *pfs.FS) *PdiPlugin {
	return &PdiPlugin{fsys: fsys, sizeScale: 1}
}

// Name implements pdi.Plugin.
func (p *PdiPlugin) Name() string { return PluginName }

// Init implements pdi.Plugin.
func (p *PdiPlugin) Init(s *pdi.System) error {
	p.sys = s
	cfg, ok := s.PluginConfig(PluginName)
	if !ok {
		return fmt.Errorf("h5: no %s section in configuration", PluginName)
	}
	p.path, ok = cfg["file"].(string)
	if !ok || p.path == "" {
		return fmt.Errorf("h5: %s requires a file", PluginName)
	}
	p.timeStepExpr, ok = cfg["time_step"].(string)
	if !ok {
		return fmt.Errorf("h5: %s requires time_step", PluginName)
	}
	if sc, ok := cfg["size_scale"]; ok {
		v, err := pdi.EvalValue(sc, s.Metadata())
		if err != nil {
			return fmt.Errorf("h5: size_scale: %w", err)
		}
		iv, ok := v.(int64)
		if !ok || iv <= 0 {
			return fmt.Errorf("h5: size_scale must be a positive integer")
		}
		p.sizeScale = iv
	}
	p.mapIn = map[string]string{}
	if mi, ok := cfg["map_in"].(map[string]any); ok {
		for data, ds := range mi {
			name, ok := ds.(string)
			if !ok {
				return fmt.Errorf("h5: map_in.%s must name a dataset", data)
			}
			p.mapIn[data] = name
		}
	}
	if len(p.mapIn) == 0 {
		return fmt.Errorf("h5: %s requires a non-empty map_in", PluginName)
	}
	p.dsCfg = map[string]map[string]any{}
	dss, ok := cfg["datasets"].(map[string]any)
	if !ok {
		return fmt.Errorf("h5: %s requires datasets", PluginName)
	}
	for name, raw := range dss {
		m, ok := raw.(map[string]any)
		if !ok {
			return fmt.Errorf("h5: datasets.%s must be a map", name)
		}
		p.dsCfg[name] = m
	}
	for data, ds := range p.mapIn {
		if _, ok := p.dsCfg[ds]; !ok {
			return fmt.Errorf("h5: map_in.%s targets undeclared dataset %q", data, ds)
		}
	}
	return nil
}

// Event implements pdi.Plugin: the init event creates the file and its
// datasets from the evaluated configuration. Only one rank should own
// creation in a real deployment; here creation is idempotent per plugin
// instance and ranks share the File handle through AttachFile.
func (p *PdiPlugin) Event(name string, at vtime.Time) (vtime.Time, error) {
	if name != "init" || p.created {
		return at, nil
	}
	end := at
	if p.file == nil {
		p.file, end = Create(p.fsys, p.path, at)
	}
	p.datasets = map[string]*Dataset{}
	names := make([]string, 0, len(p.dsCfg))
	for n := range p.dsCfg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := p.dsCfg[n]
		size, err := p.sys.EvalIntList(m["size"])
		if err != nil {
			return at, fmt.Errorf("h5: datasets.%s.size: %w", n, err)
		}
		subsize, err := p.sys.EvalIntList(m["subsize"])
		if err != nil {
			return at, fmt.Errorf("h5: datasets.%s.subsize: %w", n, err)
		}
		ds, e, err := p.file.CreateDataset(n, size, subsize, end)
		if err != nil {
			return at, err
		}
		ds.SetSizeScale(p.sizeScale)
		p.datasets[n] = ds
		end = e
	}
	p.created = true
	return end, nil
}

// AttachFile shares an already-created file (and its datasets) with this
// plugin instance, so that one rank creates and the others attach — the
// usual parallel-HDF5 pattern.
func (p *PdiPlugin) AttachFile(f *File) error {
	p.file = f
	p.datasets = map[string]*Dataset{}
	for n := range p.dsCfg {
		ds, err := f.Dataset(n)
		if err != nil {
			return err
		}
		p.datasets[n] = ds
	}
	p.created = true
	return nil
}

// File returns the underlying container (nil before the init event).
func (p *PdiPlugin) File() *File { return p.file }

// DataShared implements pdi.Plugin: a share of a mapped buffer writes
// the corresponding chunk.
func (p *PdiPlugin) DataShared(name string, data *ndarray.Array, at vtime.Time) (vtime.Time, error) {
	dsName, ok := p.mapIn[name]
	if !ok {
		return at, nil
	}
	if !p.created {
		return at, fmt.Errorf("h5: share of %q before init event", name)
	}
	ds := p.datasets[dsName]
	start, err := p.sys.EvalIntList(p.dsCfg[dsName]["start"])
	if err != nil {
		return at, fmt.Errorf("h5: datasets.%s.start: %w", dsName, err)
	}
	chunks := ds.ChunkShape()
	if len(start) != len(chunks) {
		return at, fmt.Errorf("h5: datasets.%s.start rank %d, dataset rank %d", dsName, len(start), len(chunks))
	}
	idx := make([]int, len(start))
	for d := range start {
		if start[d]%chunks[d] != 0 {
			return at, fmt.Errorf("h5: datasets.%s start %v not chunk-aligned", dsName, start)
		}
		idx[d] = start[d] / chunks[d]
	}
	block := data
	if block.NDim() == len(chunks)-1 {
		shape := append([]int{1}, block.Shape()...)
		block = block.Contiguous().Reshape(shape...)
	}
	return ds.WriteChunk(idx, block, at)
}

// Finalize implements pdi.Plugin.
func (p *PdiPlugin) Finalize(at vtime.Time) (vtime.Time, error) { return at, nil }
