package ml

import (
	"fmt"
	"math"

	"deisago/internal/linalg"
	"deisago/internal/ndarray"
)

// IncrementalPCA computes PCA in minibatches with constant memory — the
// sklearn.decomposition.IncrementalPCA algorithm the paper uses for in
// situ dimensionality reduction (§3.1). Each PartialFit folds a batch
// into the running decomposition via an SVD of the stacked matrix
// [diag(S)·components; X_centered; mean_correction].
type IncrementalPCA struct {
	NComponents int

	Components             *ndarray.Array // (k × features)
	SingularValues         []float64
	Mean                   []float64
	Var                    []float64
	ExplainedVariance      []float64
	ExplainedVarianceRatio []float64
	NoiseVariance          float64
	NSamplesSeen           int
}

// NewIncrementalPCA returns an IPCA estimator extracting k components.
func NewIncrementalPCA(k int) *IncrementalPCA {
	if k <= 0 {
		panic("ml: NComponents must be positive")
	}
	return &IncrementalPCA{NComponents: k}
}

// Clone returns a deep copy; task-graph nodes clone the carried state so
// a shared predecessor result is never mutated.
func (p *IncrementalPCA) Clone() *IncrementalPCA {
	q := &IncrementalPCA{
		NComponents:   p.NComponents,
		NSamplesSeen:  p.NSamplesSeen,
		NoiseVariance: p.NoiseVariance,
	}
	if p.Components != nil {
		q.Components = p.Components.Copy()
	}
	q.SingularValues = append([]float64(nil), p.SingularValues...)
	q.Mean = append([]float64(nil), p.Mean...)
	q.Var = append([]float64(nil), p.Var...)
	q.ExplainedVariance = append([]float64(nil), p.ExplainedVariance...)
	q.ExplainedVarianceRatio = append([]float64(nil), p.ExplainedVarianceRatio...)
	return q
}

// SizeBytes reports the modelled wire size of the estimator state for
// the distributed runtime's transfer cost model.
func (p *IncrementalPCA) SizeBytes() int64 {
	var n int64 = 64
	if p.Components != nil {
		n += int64(p.Components.Size()) * 8
	}
	n += int64(len(p.SingularValues)+len(p.Mean)+len(p.Var)+
		len(p.ExplainedVariance)+len(p.ExplainedVarianceRatio)) * 8
	return n
}

// incrementalMeanVar updates running column mean/variance with a batch
// (scikit-learn's _incremental_mean_and_var).
func incrementalMeanVar(x *ndarray.Array, lastMean, lastVar []float64, lastCount int) (mean, variance []float64, count int) {
	n, f := x.Dim(0), x.Dim(1)
	newSum := x.SumAxis(0).Data()
	count = lastCount + n
	mean = make([]float64, f)
	for j := 0; j < f; j++ {
		lastSum := 0.0
		if lastCount > 0 {
			lastSum = lastMean[j] * float64(lastCount)
		}
		mean[j] = (lastSum + newSum[j]) / float64(count)
	}
	// Batch variance (biased, as in sklearn).
	batchMean := make([]float64, f)
	for j := 0; j < f; j++ {
		batchMean[j] = newSum[j] / float64(n)
	}
	batchVarN := make([]float64, f)
	xc := x.Contiguous()
	xd := xc.Data()
	for i := 0; i < n; i++ {
		row := xd[i*f : (i+1)*f]
		for j, v := range row {
			d := v - batchMean[j]
			batchVarN[j] += d * d
		}
	}
	variance = make([]float64, f)
	if lastCount == 0 {
		for j := 0; j < f; j++ {
			variance[j] = batchVarN[j] / float64(count)
		}
		return mean, variance, count
	}
	lastOverNew := float64(lastCount) / float64(n)
	for j := 0; j < f; j++ {
		lastUnnorm := lastVar[j] * float64(lastCount)
		lastSum := lastMean[j] * float64(lastCount)
		corr := lastSum/lastOverNew - newSum[j]
		unnorm := lastUnnorm + batchVarN[j] +
			lastOverNew/float64(count)*corr*corr
		variance[j] = unnorm / float64(count)
	}
	return mean, variance, count
}

// PartialFit folds one batch (samples × features) into the running
// decomposition.
func (p *IncrementalPCA) PartialFit(x *ndarray.Array) error {
	if x.NDim() != 2 {
		return fmt.Errorf("ml: PartialFit wants a 2-d batch, got shape %v", x.Shape())
	}
	n, f := x.Dim(0), x.Dim(1)
	if p.NSamplesSeen == 0 && p.NComponents > min(n, f) {
		return fmt.Errorf("ml: first batch (%d×%d) smaller than NComponents=%d", n, f, p.NComponents)
	}
	if p.NSamplesSeen > 0 && f != len(p.Mean) {
		return fmt.Errorf("ml: batch has %d features, estimator fitted with %d", f, len(p.Mean))
	}

	mean, variance, total := incrementalMeanVar(x, p.Mean, p.Var, p.NSamplesSeen)

	var stacked *ndarray.Array
	if p.NSamplesSeen == 0 {
		stacked = centerRows(x, mean)
	} else {
		batchMean := x.MeanAxis(0).Data()
		k := p.NComponents
		rows := k + n + 1
		stacked = ndarray.New(rows, f)
		sd := stacked.Data()
		comp := p.Components.Contiguous().Data()
		for r := 0; r < k; r++ {
			sv := p.SingularValues[r]
			row := sd[r*f : (r+1)*f]
			crow := comp[r*f : (r+1)*f]
			for j, c := range crow {
				row[j] = sv * c
			}
		}
		xd := x.Contiguous().Data()
		for i := 0; i < n; i++ {
			row := sd[(k+i)*f : (k+i+1)*f]
			xrow := xd[i*f : (i+1)*f]
			for j, v := range xrow {
				row[j] = v - batchMean[j]
			}
		}
		corr := math.Sqrt(float64(p.NSamplesSeen) * float64(n) / float64(total))
		last := sd[(k+n)*f : (k+n+1)*f]
		for j := 0; j < f; j++ {
			last[j] = corr * (p.Mean[j] - batchMean[j])
		}
	}

	u, s, v := linalg.SVD(stacked)
	vt := v.Transpose().Copy()
	svdFlip(u, vt)

	k := p.NComponents
	p.Components = vt.Slice(ndarray.Range{Start: 0, Stop: k}, ndarray.Range{Start: 0, Stop: f}).Copy()
	p.SingularValues = append([]float64(nil), s[:k]...)
	p.Mean = mean
	p.Var = variance
	p.NSamplesSeen = total

	denom := float64(total - 1)
	if denom <= 0 {
		denom = 1
	}
	explained := make([]float64, len(s))
	for i, sv := range s {
		explained[i] = sv * sv / denom
	}
	p.ExplainedVariance = append([]float64(nil), explained[:k]...)
	totalVar := 0.0
	for _, vv := range variance {
		totalVar += vv * float64(total)
	}
	p.ExplainedVarianceRatio = make([]float64, k)
	if totalVar > 0 {
		for i := 0; i < k; i++ {
			p.ExplainedVarianceRatio[i] = s[i] * s[i] / totalVar
		}
	}
	if len(explained) > k {
		sum := 0.0
		for _, e := range explained[k:] {
			sum += e
		}
		p.NoiseVariance = sum / float64(len(explained)-k)
	} else {
		p.NoiseVariance = 0
	}
	return nil
}

// Fit runs PartialFit over row-batches of the given size.
func (p *IncrementalPCA) Fit(x *ndarray.Array, batchSize int) error {
	if batchSize <= 0 {
		return fmt.Errorf("ml: batchSize must be positive")
	}
	n := x.Dim(0)
	for start := 0; start < n; start += batchSize {
		stop := start + batchSize
		if stop > n {
			stop = n
		}
		batch := x.Slice(ndarray.Range{Start: start, Stop: stop},
			ndarray.Range{Start: 0, Stop: x.Dim(1)}).Copy()
		if err := p.PartialFit(batch); err != nil {
			return err
		}
	}
	return nil
}

// Transform projects X onto the fitted components.
func (p *IncrementalPCA) Transform(x *ndarray.Array) (*ndarray.Array, error) {
	return transform(x, p.Mean, p.Components)
}

// flopTime is the modelled seconds per floating-point operation
// (~4 GFLOP/s effective on one core).
const flopTime = 2.5e-10

// PartialFitCost models the virtual execution time of one PartialFit on
// an n×f batch with k components using a dense SVD of the (k+n+1)×f
// stack. It is the cost model for exact solvers; the paper's workflow
// uses svd_solver='randomized' (Listing 2), modelled by
// RandomizedSVDCost.
func PartialFitCost(n, f, k int) float64 {
	rows := float64(k + n + 1)
	cols := float64(f)
	inner := math.Min(rows, cols)
	return (2*rows*cols*inner + 11*inner*inner*inner) * flopTime
}

// RandomizedSVDCost models one randomized-SVD partial_fit on an n×f
// batch extracting k components: two passes over the data against a
// (k+oversample)-wide sketch plus small-matrix factorizations.
func RandomizedSVDCost(n, f, k int) float64 {
	rows := float64(k + n + 1)
	cols := float64(f)
	sketch := float64(k + 10)
	return (4*rows*cols*sketch + 20*sketch*sketch*(rows+cols)) * flopTime
}
