package ml

import (
	"math"
	"math/rand"
	"testing"

	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
)

// clusteredData draws n points around each of the given centers with the
// given spread.
func clusteredData(rng *rand.Rand, centers [][]float64, n int, spread float64) *ndarray.Array {
	f := len(centers[0])
	out := ndarray.New(n*len(centers), f)
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			for j := 0; j < f; j++ {
				out.Set(c[j]+spread*rng.NormFloat64(), ci*n+i, j)
			}
		}
	}
	// Shuffle rows so batches mix clusters.
	rows := out.Dim(0)
	for i := rows - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		for col := 0; col < f; col++ {
			a, b := out.At(i, col), out.At(j, col)
			out.Set(b, i, col)
			out.Set(a, j, col)
		}
	}
	return out
}

var testCenters = [][]float64{{0, 0}, {10, 0}, {0, 10}}

func TestMiniBatchKMeansRecoverClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clusteredData(rng, testCenters, 60, 0.3)
	km := NewMiniBatchKMeans(3, 7)
	// Feed in batches of 30.
	for start := 0; start < x.Dim(0); start += 30 {
		batch := x.Slice(ndarray.Range{Start: start, Stop: start + 30},
			ndarray.Range{Start: 0, Stop: 2}).Copy()
		if err := km.PartialFit(batch); err != nil {
			t.Fatal(err)
		}
	}
	// Every true center must have a learned center within 1.0.
	for _, c := range testCenters {
		best := math.Inf(1)
		for k := 0; k < 3; k++ {
			d := math.Hypot(km.Centers.At(k, 0)-c[0], km.Centers.At(k, 1)-c[1])
			best = math.Min(best, d)
		}
		if best > 1.0 {
			t.Fatalf("no center near %v (closest %.2f): %v", c, best, km.Centers)
		}
	}
	if km.NSamplesSeen != 180 {
		t.Fatalf("NSamplesSeen = %d", km.NSamplesSeen)
	}
}

func TestMiniBatchKMeansPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clusteredData(rng, testCenters, 40, 0.2)
	km := NewMiniBatchKMeans(3, 3)
	if err := km.PartialFit(x); err != nil {
		t.Fatal(err)
	}
	// Points near a true center all get the same label.
	probe := ndarray.FromSlice([]float64{
		0.1, -0.1,
		-0.2, 0.2,
		10.1, 0.1,
		9.8, -0.2,
	}, 4, 2)
	labels, err := km.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestMiniBatchKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := clusteredData(rng, testCenters, 20, 0.2)
	a := NewMiniBatchKMeans(3, 11)
	b := NewMiniBatchKMeans(3, 11)
	if err := a.PartialFit(x); err != nil {
		t.Fatal(err)
	}
	if err := b.PartialFit(x.Copy()); err != nil {
		t.Fatal(err)
	}
	if !ndarray.Equal(a.Centers, b.Centers) {
		t.Fatal("same seed, different centers")
	}
}

func TestMiniBatchKMeansCloneAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := clusteredData(rng, testCenters, 10, 0.2)
	km := NewMiniBatchKMeans(3, 1)
	before := km.SizeBytes()
	if err := km.PartialFit(x); err != nil {
		t.Fatal(err)
	}
	if km.SizeBytes() <= before {
		t.Fatal("SizeBytes did not grow")
	}
	cl := km.Clone()
	cl.Centers.Set(999, 0, 0)
	cl.Counts[0] = 12345
	if km.Centers.At(0, 0) == 999 || km.Counts[0] == 12345 {
		t.Fatal("Clone aliases state")
	}
}

func TestMiniBatchKMeansErrors(t *testing.T) {
	km := NewMiniBatchKMeans(5, 1)
	if err := km.PartialFit(ndarray.New(3, 2)); err == nil {
		t.Fatal("first batch smaller than K accepted")
	}
	km2 := NewMiniBatchKMeans(2, 1)
	rng := rand.New(rand.NewSource(5))
	if err := km2.PartialFit(clusteredData(rng, testCenters[:2], 10, 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := km2.PartialFit(ndarray.New(5, 7)); err == nil {
		t.Fatal("feature change accepted")
	}
	if _, err := km2.Predict(ndarray.New(2, 7)); err == nil {
		t.Fatal("predict feature mismatch accepted")
	}
	if _, err := NewMiniBatchKMeans(2, 1).Predict(ndarray.New(2, 2)); err == nil {
		t.Fatal("predict before fit accepted")
	}
	if err := km2.PartialFit(ndarray.New(4)); err == nil {
		t.Fatal("1-d batch accepted")
	}
}

func TestNewMiniBatchKMeansPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMiniBatchKMeans(0, 1)
}

// TestKMeansChainOnCluster threads mini-batch k-means state through a
// distributed task chain, exactly like the IPCA chain — demonstrating
// that the external-task pattern is model-agnostic (§5).
func TestKMeansChainOnCluster(t *testing.T) {
	_, cl := graphTestCluster(t)
	rng := rand.New(rand.NewSource(6))
	var batches []*ndarray.Array
	local := NewMiniBatchKMeans(3, 9)
	for i := 0; i < 4; i++ {
		b := clusteredData(rng, testCenters, 15, 0.25)
		batches = append(batches, b)
		if err := local.PartialFit(b.Copy()); err != nil {
			t.Fatal(err)
		}
	}
	g := taskgraph.New()
	keys := addBatchTasks(g, "km", batches)
	var prev taskgraph.Key
	for i, bk := range keys {
		stateKey := taskgraph.Key("km-state-" + string(rune('0'+i)))
		deps := []taskgraph.Key{bk}
		hasPrev := prev != ""
		if hasPrev {
			deps = []taskgraph.Key{prev, bk}
		}
		g.AddFn(stateKey, deps, func(in []any) (any, error) {
			var km *MiniBatchKMeans
			var batch *ndarray.Array
			if hasPrev {
				km = in[0].(*MiniBatchKMeans).Clone()
				batch = in[1].(*ndarray.Array)
			} else {
				km = NewMiniBatchKMeans(3, 9)
				batch = in[0].(*ndarray.Array)
			}
			if err := km.PartialFit(batch); err != nil {
				return nil, err
			}
			return km, nil
		}, 1e-4)
		prev = stateKey
	}
	futs, err := cl.Submit(g, []taskgraph.Key{prev})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	dist := vals[0].(*MiniBatchKMeans)
	if !ndarray.AllClose(dist.Centers, local.Centers, 1e-12) {
		t.Fatal("distributed k-means differs from local")
	}
}
