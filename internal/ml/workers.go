package ml

import "deisago/internal/ndarray"

// SetKernelWorkers bounds the goroutine fan-out of the dense compute
// kernels under every estimator in this package (PCA/IPCA SVD sweeps,
// TSQR factorizations, MatMul projections) and returns the previous
// bound. It is a process-wide knob shared with internal/ndarray and
// internal/array: Dask-worker task bodies run in one Go process, so a
// single cap models the machine's real cores.
//
// Parallelism never changes results — every kernel is bit-identical to
// its sequential reference — and never perturbs figures, because all
// measured time in this repository is virtual (internal/vtime
// reservations), not wall-clock.
func SetKernelWorkers(n int) int { return ndarray.SetWorkers(n) }

// KernelWorkers returns the current kernel worker bound.
func KernelWorkers() int { return ndarray.Workers() }
