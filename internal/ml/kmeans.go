package ml

import (
	"fmt"
	"math"
	"math/rand"

	"deisago/internal/ndarray"
)

// MiniBatchKMeans is an online k-means clusterer (the
// sklearn.cluster.MiniBatchKMeans update rule): each batch assigns
// points to their nearest center and moves every center toward the
// batch mean of its points with a per-center learning rate 1/count.
// Like incremental PCA it consumes data batch-by-batch with constant
// memory, so it slots directly into the deisa external-task chain — the
// "other ML models" direction of the paper's §5.
type MiniBatchKMeans struct {
	K int

	Centers      *ndarray.Array // (K × features)
	Counts       []int64        // points assigned to each center so far
	Inertia      float64        // sum of squared distances of the last batch
	NSamplesSeen int

	seed int64
}

// NewMiniBatchKMeans returns a clusterer with K centers. The seed makes
// the first-batch initialization deterministic.
func NewMiniBatchKMeans(k int, seed int64) *MiniBatchKMeans {
	if k <= 0 {
		panic("ml: K must be positive")
	}
	return &MiniBatchKMeans{K: k, seed: seed}
}

// Clone returns a deep copy (for task-graph state threading).
func (m *MiniBatchKMeans) Clone() *MiniBatchKMeans {
	out := &MiniBatchKMeans{
		K:            m.K,
		Inertia:      m.Inertia,
		NSamplesSeen: m.NSamplesSeen,
		seed:         m.seed,
	}
	if m.Centers != nil {
		out.Centers = m.Centers.Copy()
	}
	out.Counts = append([]int64(nil), m.Counts...)
	return out
}

// SizeBytes models the state's wire size.
func (m *MiniBatchKMeans) SizeBytes() int64 {
	var n int64 = 64
	if m.Centers != nil {
		n += int64(m.Centers.Size()) * 8
	}
	return n + int64(len(m.Counts))*8
}

// initCenters seeds centers with a k-means++-style greedy choice over
// the first batch.
func (m *MiniBatchKMeans) initCenters(x *ndarray.Array) error {
	n, f := x.Dim(0), x.Dim(1)
	if n < m.K {
		return fmt.Errorf("ml: first batch has %d samples, need at least K=%d", n, m.K)
	}
	rng := rand.New(rand.NewSource(m.seed))
	m.Centers = ndarray.New(m.K, f)
	chosen := []int{rng.Intn(n)}
	m.Centers.Slice(ndarray.Range{Start: 0, Stop: 1}, ndarray.Range{Start: 0, Stop: f}).
		CopyFrom(x.Slice(ndarray.Range{Start: chosen[0], Stop: chosen[0] + 1}, ndarray.Range{Start: 0, Stop: f}))
	for c := 1; c < m.K; c++ {
		// Pick the point farthest (in squared distance) from its nearest
		// chosen center (deterministic greedy variant of k-means++).
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for cc := 0; cc < c; cc++ {
				d = math.Min(d, sqDist(x, i, m.Centers, cc))
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		m.Centers.Slice(ndarray.Range{Start: c, Stop: c + 1}, ndarray.Range{Start: 0, Stop: f}).
			CopyFrom(x.Slice(ndarray.Range{Start: best, Stop: best + 1}, ndarray.Range{Start: 0, Stop: f}))
	}
	m.Counts = make([]int64, m.K)
	return nil
}

func sqDist(a *ndarray.Array, i int, b *ndarray.Array, j int) float64 {
	f := a.Dim(1)
	var s float64
	for c := 0; c < f; c++ {
		d := a.At(i, c) - b.At(j, c)
		s += d * d
	}
	return s
}

// PartialFit folds one batch (samples × features) into the clustering.
func (m *MiniBatchKMeans) PartialFit(x *ndarray.Array) error {
	if x.NDim() != 2 {
		return fmt.Errorf("ml: PartialFit wants a 2-d batch, got shape %v", x.Shape())
	}
	if m.Centers == nil {
		if err := m.initCenters(x); err != nil {
			return err
		}
	}
	n, f := x.Dim(0), x.Dim(1)
	if f != m.Centers.Dim(1) {
		return fmt.Errorf("ml: batch has %d features, model fitted with %d", f, m.Centers.Dim(1))
	}
	m.Inertia = 0
	for i := 0; i < n; i++ {
		// Nearest center.
		best, bestD := 0, math.Inf(1)
		for c := 0; c < m.K; c++ {
			if d := sqDist(x, i, m.Centers, c); d < bestD {
				best, bestD = c, d
			}
		}
		m.Inertia += bestD
		m.Counts[best]++
		lr := 1 / float64(m.Counts[best])
		for col := 0; col < f; col++ {
			old := m.Centers.At(best, col)
			m.Centers.Set(old+lr*(x.At(i, col)-old), best, col)
		}
	}
	m.NSamplesSeen += n
	return nil
}

// Predict assigns each sample to its nearest center.
func (m *MiniBatchKMeans) Predict(x *ndarray.Array) ([]int, error) {
	if m.Centers == nil {
		return nil, fmt.Errorf("ml: Predict before fit")
	}
	if x.NDim() != 2 || x.Dim(1) != m.Centers.Dim(1) {
		return nil, fmt.Errorf("ml: Predict input shape %v does not match %d features", x.Shape(), m.Centers.Dim(1))
	}
	out := make([]int, x.Dim(0))
	for i := range out {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < m.K; c++ {
			if d := sqDist(x, i, m.Centers, c); d < bestD {
				best, bestD = c, d
			}
		}
		out[i] = best
	}
	return out, nil
}
