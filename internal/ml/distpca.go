package ml

import (
	"fmt"

	"deisago/internal/linalg"
	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// This file implements the distributed full-batch PCA that dask-ml's
// PCA provides (§3.1): a tall-skinny QR (TSQR) reduction over row blocks
// followed by an SVD of the small combined R factor. Unlike IPCA it
// needs all the data at once, which is why the paper's in situ pipeline
// uses IPCA — but it is the natural baseline and exercises the same
// graph machinery.
//
// The algorithm (Benson et al. TSQR, as used by da.linalg.tsqr):
//
//	per block i:  mean_i, count_i            (statistics pass)
//	global mean = Σ count_i·mean_i / Σ count_i
//	per block i:  Q_i, R_i = qr(X_i - mean)   (local factorization)
//	stack:        R = vstack(R_1..R_k); U, S, Vᵀ = svd(R)
//	components  = first k rows of Vᵀ
//
// Singular values and right singular vectors of the stacked R equal
// those of the full centered matrix, so the result is exact.

// DistributedPCAResult names the keys added by BuildDistributedPCA.
type DistributedPCAResult struct {
	Components        taskgraph.Key
	SingularValues    taskgraph.Key
	ExplainedVariance taskgraph.Key
}

// BuildDistributedPCA adds a TSQR-based PCA over the given row-block
// keys (each a samples×features *ndarray.Array with identical feature
// counts) to g. blockRows/features size the cost model, as in
// BuildIPCAChain.
func BuildDistributedPCA(g *taskgraph.Graph, name string, blockKeys []taskgraph.Key,
	nComponents, blockRows, features int) DistributedPCAResult {
	if len(blockKeys) == 0 {
		panic("ml: BuildDistributedPCA needs at least one block")
	}
	if nComponents <= 0 {
		panic("ml: NComponents must be positive")
	}
	passCost := vtime.Dur(float64(blockRows*features) * 8e-9)

	// Per-block statistics: (sum vector, count).
	type blockStats struct {
		sum   []float64
		count int
	}
	statKeys := make([]taskgraph.Key, len(blockKeys))
	for i, bk := range blockKeys {
		statKeys[i] = taskgraph.Key(fmt.Sprintf("%s-stats-%d", name, i))
		g.AddFn(statKeys[i], []taskgraph.Key{bk}, func(in []any) (any, error) {
			m, ok := in[0].(*ndarray.Array)
			if !ok {
				return nil, fmt.Errorf("ml: pca block is %T, want *ndarray.Array", in[0])
			}
			return blockStats{sum: m.SumAxis(0).Data(), count: m.Dim(0)}, nil
		}, passCost)
	}
	// Global mean.
	meanKey := taskgraph.Key(name + "-mean")
	g.AddFn(meanKey, statKeys, func(in []any) (any, error) {
		var total int
		var sum []float64
		for _, v := range in {
			st := v.(blockStats)
			if sum == nil {
				sum = append([]float64(nil), st.sum...)
			} else {
				if len(st.sum) != len(sum) {
					return nil, fmt.Errorf("ml: pca blocks disagree on features")
				}
				for j := range sum {
					sum[j] += st.sum[j]
				}
			}
			total += st.count
		}
		if total < 2 {
			return nil, fmt.Errorf("ml: pca needs at least 2 samples, got %d", total)
		}
		for j := range sum {
			sum[j] /= float64(total)
		}
		return blockStats{sum: sum, count: total}, nil
	}, 1e-5)

	// Per-block centered QR: emit R_i (features × features).
	qrCost := vtime.Dur(2 * float64(blockRows) * float64(features) * float64(features) * 2.5e-10)
	rKeys := make([]taskgraph.Key, len(blockKeys))
	for i, bk := range blockKeys {
		rKeys[i] = taskgraph.Key(fmt.Sprintf("%s-r-%d", name, i))
		t := g.AddFn(rKeys[i], []taskgraph.Key{bk, meanKey}, func(in []any) (any, error) {
			m := in[0].(*ndarray.Array)
			mean := in[1].(blockStats).sum
			rows, cols := m.Dim(0), m.Dim(1)
			centered := centerRows(m, mean)
			if rows < cols {
				// Pad with zero rows so QR (m>=n) applies; zero rows do
				// not change R.
				padded := ndarray.New(cols, cols)
				padded.Slice(ndarray.Range{Start: 0, Stop: rows},
					ndarray.Range{Start: 0, Stop: cols}).CopyFrom(centered)
				centered = padded
			}
			_, r := linalg.QR(centered)
			return r, nil
		}, qrCost)
		t.OutBytes = int64(features*features) * 8
	}

	// Combine: SVD of the stacked R factors.
	finalKey := taskgraph.Key(name + "-final")
	combineCost := vtime.Dur(2 * float64(len(blockKeys)*features) * float64(features) * float64(features) * 2.5e-10)
	g.AddFn(finalKey, append([]taskgraph.Key{meanKey}, rKeys...), func(in []any) (any, error) {
		stats := in[0].(blockStats)
		rs := make([]*ndarray.Array, 0, len(in)-1)
		for _, v := range in[1:] {
			rs = append(rs, v.(*ndarray.Array))
		}
		stacked := ndarray.Concat(0, rs...)
		u, s, v := linalg.SVD(stacked)
		vt := v.Transpose().Copy()
		svdFlip(u, vt)
		f := vt.Dim(1)
		k := nComponents
		if k > f {
			return nil, fmt.Errorf("ml: NComponents=%d exceeds features=%d", k, f)
		}
		p := &PCA{NComponents: k}
		p.Mean = stats.sum
		p.NSamplesSeen = stats.count
		p.Components = vt.Slice(ndarray.Range{Start: 0, Stop: k}, ndarray.Range{Start: 0, Stop: f}).Copy()
		p.SingularValues = append([]float64(nil), s[:k]...)
		denom := float64(stats.count - 1)
		total := 0.0
		p.ExplainedVariance = make([]float64, k)
		for i, sv := range s {
			ev := sv * sv / denom
			if i < k {
				p.ExplainedVariance[i] = ev
			}
			total += ev
		}
		p.ExplainedVarianceRatio = make([]float64, k)
		if total > 0 {
			for i := range p.ExplainedVarianceRatio {
				p.ExplainedVarianceRatio[i] = p.ExplainedVariance[i] / total
			}
		}
		return p, nil
	}, combineCost)

	res := DistributedPCAResult{
		Components:        taskgraph.Key(name + "-components"),
		SingularValues:    taskgraph.Key(name + "-singular-values"),
		ExplainedVariance: taskgraph.Key(name + "-explained-variance"),
	}
	g.AddFn(res.Components, []taskgraph.Key{finalKey}, func(in []any) (any, error) {
		return in[0].(*PCA).Components, nil
	}, 1e-6)
	g.AddFn(res.SingularValues, []taskgraph.Key{finalKey}, func(in []any) (any, error) {
		return append([]float64(nil), in[0].(*PCA).SingularValues...), nil
	}, 1e-6)
	g.AddFn(res.ExplainedVariance, []taskgraph.Key{finalKey}, func(in []any) (any, error) {
		return append([]float64(nil), in[0].(*PCA).ExplainedVariance...), nil
	}, 1e-6)
	return res
}
