package ml

import (
	"math/rand"
	"testing"

	"deisago/internal/ndarray"
)

// TestPCADeterminismAcrossKernelWorkers runs the full PCA and IPCA
// pipelines under kernel worker counts {1, 2, 8} and demands bit-equal
// components, the end-to-end form of the DESIGN §6 invariant: real-core
// parallelism inside task bodies must never change figure inputs.
func TestPCADeterminismAcrossKernelWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := ndarray.New(120, 40)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}

	fitBoth := func() (*ndarray.Array, *ndarray.Array) {
		p := NewPCA(5)
		if err := p.Fit(x); err != nil {
			t.Fatal(err)
		}
		ip := NewIncrementalPCA(5)
		if err := ip.Fit(x, 40); err != nil {
			t.Fatal(err)
		}
		return p.Components, ip.Components
	}

	prev := SetKernelWorkers(1)
	wantP, wantIP := fitBoth()
	SetKernelWorkers(prev)
	for _, w := range []int{2, 8} {
		prev := SetKernelWorkers(w)
		gotP, gotIP := fitBoth()
		SetKernelWorkers(prev)
		if !ndarray.Equal(wantP, gotP) {
			t.Fatalf("PCA components differ with %d kernel workers", w)
		}
		if !ndarray.Equal(wantIP, gotIP) {
			t.Fatalf("IPCA components differ with %d kernel workers", w)
		}
	}
}
