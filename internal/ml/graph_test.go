package ml

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

func graphTestCluster(t *testing.T) (*dask.Cluster, *dask.Client) {
	t.Helper()
	cfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(cfg, 5)
	c := dask.NewCluster(fabric, dask.DefaultConfig(), 0,
		[]netsim.NodeID{2, 3, 4})
	t.Cleanup(c.Close)
	return c, c.NewClient("client", 1, math.Inf(1))
}

// addBatchTasks adds one task per batch returning the given matrices.
func addBatchTasks(g *taskgraph.Graph, name string, batches []*ndarray.Array) []taskgraph.Key {
	keys := make([]taskgraph.Key, len(batches))
	for i, b := range batches {
		b := b
		keys[i] = taskgraph.Key(fmt.Sprintf("%s-batch-%d", name, i))
		g.AddFn(keys[i], nil, func([]any) (any, error) { return b, nil }, 1e-5)
	}
	return keys
}

func TestBuildIPCAChainMatchesLocal(t *testing.T) {
	_, cl := graphTestCluster(t)
	rng := rand.New(rand.NewSource(1))
	var batches []*ndarray.Array
	local := NewIncrementalPCA(2)
	for i := 0; i < 4; i++ {
		b := lowRankData(rng, 12, 6, 2)
		batches = append(batches, b)
		if err := local.PartialFit(b); err != nil {
			t.Fatal(err)
		}
	}
	g := taskgraph.New()
	keys := addBatchTasks(g, "ip", batches)
	res := BuildIPCAChain(g, "ipca", keys, "", 2, 12, 6)
	futs, err := cl.Submit(g, []taskgraph.Key{res.Components, res.SingularValues, res.ExplainedVariance})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	comps := vals[0].(*ndarray.Array)
	if !ndarray.AllClose(comps, local.Components, 1e-10) {
		t.Fatal("distributed chain components differ from local IPCA")
	}
	svs := vals[1].([]float64)
	for i := range svs {
		if math.Abs(svs[i]-local.SingularValues[i]) > 1e-10 {
			t.Fatalf("singular values differ: %v vs %v", svs, local.SingularValues)
		}
	}
	evs := vals[2].([]float64)
	for i := range evs {
		if math.Abs(evs[i]-local.ExplainedVariance[i]) > 1e-10 {
			t.Fatalf("explained variance differs: %v vs %v", evs, local.ExplainedVariance)
		}
	}
}

func TestBuildIPCAChainResume(t *testing.T) {
	// Old-IPCA style: two separate submissions, the second chain resuming
	// from the first chain's final state key.
	_, cl := graphTestCluster(t)
	rng := rand.New(rand.NewSource(2))
	b1 := lowRankData(rng, 10, 5, 2)
	b2 := lowRankData(rng, 10, 5, 2)
	local := NewIncrementalPCA(2)
	if err := local.PartialFit(b1); err != nil {
		t.Fatal(err)
	}
	if err := local.PartialFit(b2); err != nil {
		t.Fatal(err)
	}

	g1 := taskgraph.New()
	k1 := addBatchTasks(g1, "a", []*ndarray.Array{b1})
	res1 := BuildIPCAChain(g1, "step0", k1, "", 2, 10, 5)
	futs1, err := cl.Submit(g1, []taskgraph.Key{res1.FinalState})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Wait(futs1); err != nil {
		t.Fatal(err)
	}

	g2 := taskgraph.New()
	k2 := addBatchTasks(g2, "b", []*ndarray.Array{b2})
	res2 := BuildIPCAChain(g2, "step1", k2, res1.FinalState, 2, 10, 5)
	futs2, err := cl.Submit(g2, []taskgraph.Key{res2.Components})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs2)
	if err != nil {
		t.Fatal(err)
	}
	if !ndarray.AllClose(vals[0].(*ndarray.Array), local.Components, 1e-10) {
		t.Fatal("resumed chain differs from local IPCA")
	}
}

func TestAddFoldTask(t *testing.T) {
	_, cl := graphTestCluster(t)
	g := taskgraph.New()
	// Slab (X=2, Y=3) with value x*10+y; fold to samples=Y, features=X.
	slab := ndarray.New(2, 3)
	for x := 0; x < 2; x++ {
		for y := 0; y < 3; y++ {
			slab.Set(float64(x*10+y), x, y)
		}
	}
	g.AddFn("slab", nil, func([]any) (any, error) { return slab, nil }, 1e-6)
	AddFoldTask(g, "mat", "slab", FoldSpec{
		Dims:        []string{"X", "Y"},
		SampleDims:  []string{"Y"},
		FeatureDims: []string{"X"},
	}, 48)
	futs, err := cl.Submit(g, []taskgraph.Key{"mat"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	m := vals[0].(*ndarray.Array)
	if m.Dim(0) != 3 || m.Dim(1) != 2 {
		t.Fatalf("folded shape = %v", m.Shape())
	}
	if m.At(2, 1) != 12 || m.At(0, 0) != 0 {
		t.Fatalf("folded values wrong: %v", m)
	}
}

func TestChainStateKeysProgress(t *testing.T) {
	g := taskgraph.New()
	keys := addBatchTasks(g, "x", []*ndarray.Array{ndarray.New(4, 3), ndarray.New(4, 3)})
	res := BuildIPCAChain(g, "c", keys, "", 2, 4, 3)
	if len(res.StateKeys) != 2 {
		t.Fatalf("StateKeys = %v", res.StateKeys)
	}
	if res.FinalState != res.StateKeys[1] {
		t.Fatal("FinalState mismatch")
	}
	// The chain is sequential: state-1 depends on state-0.
	st1 := g.Get(res.StateKeys[1])
	found := false
	for _, d := range st1.Deps {
		if d == res.StateKeys[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("chain not sequential")
	}
	var _ vtime.Dur = st1.Cost
	if st1.Cost <= 0 {
		t.Fatal("partial-fit task has no modelled cost")
	}
}
