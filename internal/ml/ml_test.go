package ml

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deisago/internal/linalg"
	"deisago/internal/ndarray"
)

// lowRankData generates n×f data lying (exactly) in an r-dimensional
// subspace, plus a fixed offset.
func lowRankData(rng *rand.Rand, n, f, r int) *ndarray.Array {
	basis := ndarray.New(r, f)
	for i := 0; i < r; i++ {
		for j := 0; j < f; j++ {
			basis.Set(rng.NormFloat64(), i, j)
		}
	}
	coef := ndarray.New(n, r)
	for i := 0; i < n; i++ {
		for j := 0; j < r; j++ {
			coef.Set(rng.NormFloat64()*float64(r-j), i, j)
		}
	}
	x := ndarray.MatMul(coef, basis)
	for i := 0; i < n; i++ {
		for j := 0; j < f; j++ {
			x.Set(x.At(i, j)+float64(j), i, j)
		}
	}
	return x
}

func TestPCAKnownDirection(t *testing.T) {
	// Points on the line y = 2x: first component is (1,2)/sqrt(5).
	x := ndarray.FromSlice([]float64{
		-1, -2,
		0, 0,
		1, 2,
		2, 4,
	}, 4, 2)
	p := NewPCA(1)
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	want := []float64{1 / math.Sqrt(5), 2 / math.Sqrt(5)}
	for j, w := range want {
		if math.Abs(p.Components.At(0, j)-w) > 1e-10 {
			t.Fatalf("component = [%v %v], want %v", p.Components.At(0, 0), p.Components.At(0, 1), want)
		}
	}
	// Perfectly 1-d data: first component explains everything.
	if math.Abs(p.ExplainedVarianceRatio[0]-1) > 1e-10 {
		t.Fatalf("ratio = %v, want 1", p.ExplainedVarianceRatio[0])
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankData(rng, 40, 8, 8)
	p := NewPCA(4)
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	if !linalg.IsOrthonormalCols(p.Components.Transpose().Copy(), 1e-9) {
		t.Fatal("components not orthonormal")
	}
	for i := 1; i < 4; i++ {
		if p.SingularValues[i] > p.SingularValues[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", p.SingularValues)
		}
	}
}

func TestPCATransformVariance(t *testing.T) {
	// Variance of the i-th transformed coordinate equals the i-th
	// explained variance.
	rng := rand.New(rand.NewSource(2))
	x := lowRankData(rng, 60, 6, 6)
	p := NewPCA(3)
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	tr, err := p.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	n := tr.Dim(0)
	for c := 0; c < 3; c++ {
		col := tr.Col(c)
		mean := col.Mean()
		varc := 0.0
		for i := 0; i < n; i++ {
			d := col.At(i) - mean
			varc += d * d
		}
		varc /= float64(n - 1)
		if math.Abs(varc-p.ExplainedVariance[c]) > 1e-8*(1+p.ExplainedVariance[c]) {
			t.Fatalf("transformed var[%d] = %v, explained = %v", c, varc, p.ExplainedVariance[c])
		}
	}
}

func TestPCAErrors(t *testing.T) {
	p := NewPCA(3)
	if err := p.Fit(ndarray.New(2, 2)); err == nil {
		t.Fatal("k > min(n,f) accepted")
	}
	if err := p.Fit(ndarray.New(1, 5)); err == nil {
		t.Fatal("single sample accepted")
	}
	if err := p.Fit(ndarray.New(4)); err == nil {
		t.Fatal("1-d input accepted")
	}
	if _, err := NewPCA(1).Transform(ndarray.New(2, 2)); err == nil {
		t.Fatal("transform before fit accepted")
	}
}

func TestNewPCAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPCA(0)
}

func TestIPCASingleBatchMatchesPCA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := lowRankData(rng, 30, 6, 6)
	p := NewPCA(2)
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	ip := NewIncrementalPCA(2)
	if err := ip.PartialFit(x); err != nil {
		t.Fatal(err)
	}
	if !ndarray.AllClose(p.Components, ip.Components, 1e-8) {
		t.Fatal("single-batch IPCA components differ from PCA")
	}
	for i := range p.SingularValues {
		if math.Abs(p.SingularValues[i]-ip.SingularValues[i]) > 1e-8 {
			t.Fatalf("singular values differ: %v vs %v", p.SingularValues, ip.SingularValues)
		}
	}
}

func TestIPCAMatchesPCAOnLowRankData(t *testing.T) {
	// When the data is exactly rank-k, IPCA with k components loses no
	// information and recovers the PCA subspace across batches.
	rng := rand.New(rand.NewSource(4))
	x := lowRankData(rng, 48, 8, 2)
	p := NewPCA(2)
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	ip := NewIncrementalPCA(2)
	if err := ip.Fit(x, 12); err != nil {
		t.Fatal(err)
	}
	if !ndarray.AllClose(p.Components, ip.Components, 1e-6) {
		t.Fatalf("IPCA components diverged:\nPCA  %v\nIPCA %v", p.Components, ip.Components)
	}
}

func TestIPCAMeanVarMatchFullData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := lowRankData(rng, 50, 5, 5)
	ip := NewIncrementalPCA(2)
	if err := ip.Fit(x, 7); err != nil { // uneven final batch
		t.Fatal(err)
	}
	wantMean := x.MeanAxis(0)
	for j := 0; j < 5; j++ {
		if math.Abs(ip.Mean[j]-wantMean.At(j)) > 1e-9 {
			t.Fatalf("incremental mean[%d] = %v, want %v", j, ip.Mean[j], wantMean.At(j))
		}
		// Biased variance over all samples.
		col := x.Col(j)
		varj := 0.0
		for i := 0; i < 50; i++ {
			d := col.At(i) - wantMean.At(j)
			varj += d * d
		}
		varj /= 50
		if math.Abs(ip.Var[j]-varj) > 1e-8*(1+varj) {
			t.Fatalf("incremental var[%d] = %v, want %v", j, ip.Var[j], varj)
		}
	}
	if ip.NSamplesSeen != 50 {
		t.Fatalf("NSamplesSeen = %d", ip.NSamplesSeen)
	}
}

func TestIPCAApproximatesPCAWithNoise(t *testing.T) {
	// With noisy (full-rank) data IPCA is approximate; the dominant
	// subspace should still align (|cos| of principal angles near 1).
	rng := rand.New(rand.NewSource(6))
	x := lowRankData(rng, 200, 10, 3)
	// Add small noise.
	for i := 0; i < x.Dim(0); i++ {
		for j := 0; j < x.Dim(1); j++ {
			x.Set(x.At(i, j)+0.01*rng.NormFloat64(), i, j)
		}
	}
	p := NewPCA(2)
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	ip := NewIncrementalPCA(2)
	if err := ip.Fit(x, 25); err != nil {
		t.Fatal(err)
	}
	// Overlap matrix between subspaces should be near-orthogonal:
	// singular values of C_pca · C_ipcaᵀ near 1.
	overlap := ndarray.MatMul(p.Components, ip.Components.Transpose())
	_, s, _ := linalg.SVD(overlap)
	for _, sv := range s {
		if sv < 0.99 {
			t.Fatalf("subspace overlap singular values %v, want ≈1", s)
		}
	}
}

func TestIPCAClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := lowRankData(rng, 20, 4, 4)
	ip := NewIncrementalPCA(2)
	if err := ip.PartialFit(x); err != nil {
		t.Fatal(err)
	}
	cl := ip.Clone()
	if err := cl.PartialFit(x); err != nil {
		t.Fatal(err)
	}
	if cl.NSamplesSeen != 40 || ip.NSamplesSeen != 20 {
		t.Fatal("Clone shares state with original")
	}
	cl.Components.Set(99, 0, 0)
	if ip.Components.At(0, 0) == 99 {
		t.Fatal("Clone aliases Components")
	}
}

func TestIPCASizeBytes(t *testing.T) {
	ip := NewIncrementalPCA(2)
	before := ip.SizeBytes()
	rng := rand.New(rand.NewSource(8))
	if err := ip.PartialFit(lowRankData(rng, 10, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if ip.SizeBytes() <= before {
		t.Fatal("SizeBytes did not grow after fit")
	}
}

func TestIPCAErrors(t *testing.T) {
	ip := NewIncrementalPCA(5)
	if err := ip.PartialFit(ndarray.New(3, 3)); err == nil {
		t.Fatal("first batch smaller than k accepted")
	}
	ip2 := NewIncrementalPCA(2)
	rng := rand.New(rand.NewSource(9))
	if err := ip2.PartialFit(lowRankData(rng, 10, 4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := ip2.PartialFit(ndarray.New(10, 5)); err == nil {
		t.Fatal("feature-count change accepted")
	}
	if err := ip2.Fit(ndarray.New(4, 4), 0); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if err := ip2.PartialFit(ndarray.New(8)); err == nil {
		t.Fatal("1-d batch accepted")
	}
}

func TestExplainedVarianceRatioBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := lowRankData(rng, 60, 6, 6)
	ip := NewIncrementalPCA(3)
	if err := ip.Fit(x, 15); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range ip.ExplainedVarianceRatio {
		if r < 0 || r > 1+1e-9 {
			t.Fatalf("ratio out of range: %v", ip.ExplainedVarianceRatio)
		}
		sum += r
	}
	if sum > 1+1e-9 {
		t.Fatalf("ratios sum to %v > 1", sum)
	}
}

// Property: for random low-rank data and any batch split, the IPCA mean
// equals the full mean and singular values are sorted non-negative.
func TestIPCAQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 10
		feat := rng.Intn(5) + 3
		x := lowRankData(rng, n, feat, min(3, feat))
		ip := NewIncrementalPCA(2)
		bs := rng.Intn(n-3) + 3
		if err := ip.Fit(x, bs); err != nil {
			return false
		}
		wantMean := x.MeanAxis(0)
		for j := 0; j < feat; j++ {
			if math.Abs(ip.Mean[j]-wantMean.At(j)) > 1e-7*(1+math.Abs(wantMean.At(j))) {
				return false
			}
		}
		for i, s := range ip.SingularValues {
			if s < 0 || (i > 0 && s > ip.SingularValues[i-1]+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialFitCostMonotone(t *testing.T) {
	if PartialFitCost(100, 50, 2) <= PartialFitCost(10, 50, 2) {
		t.Fatal("cost not monotone in batch size")
	}
	if PartialFitCost(10, 100, 2) <= PartialFitCost(10, 10, 2) {
		t.Fatal("cost not monotone in features")
	}
	if PartialFitCost(10, 10, 2) <= 0 {
		t.Fatal("cost not positive")
	}
}

func TestSVDFlipDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := lowRankData(rng, 30, 5, 5)
	p1, p2 := NewPCA(2), NewPCA(2)
	if err := p1.Fit(x); err != nil {
		t.Fatal(err)
	}
	if err := p2.Fit(x.Copy()); err != nil {
		t.Fatal(err)
	}
	if !ndarray.Equal(p1.Components, p2.Components) {
		t.Fatal("PCA not deterministic")
	}
	// Each component row's max-|v| entry is positive.
	for r := 0; r < 2; r++ {
		maxAbs, val := 0.0, 0.0
		for j := 0; j < 5; j++ {
			if a := math.Abs(p1.Components.At(r, j)); a > maxAbs {
				maxAbs, val = a, p1.Components.At(r, j)
			}
		}
		if val < 0 {
			t.Fatal("svdFlip convention violated")
		}
	}
}

func TestBuildIPCAChainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BuildIPCAChain(nil, "x", nil, "", 2, 4, 4)
}

func TestIncrementalMeanVarFirstBatch(t *testing.T) {
	x := ndarray.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	mean, variance, n := incrementalMeanVar(x, nil, nil, 0)
	if n != 2 || mean[0] != 2 || mean[1] != 3 {
		t.Fatalf("mean = %v, n = %d", mean, n)
	}
	if variance[0] != 1 || variance[1] != 1 {
		t.Fatalf("var = %v", variance)
	}
}

func BenchmarkPartialFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankData(rng, 64, 64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := NewIncrementalPCA(2)
		if err := ip.PartialFit(x); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleIncrementalPCA() {
	// Data on the line y = 3x, fed in two batches.
	x := ndarray.FromSlice([]float64{
		-2, -6,
		-1, -3,
		1, 3,
		2, 6,
	}, 4, 2)
	ip := NewIncrementalPCA(1)
	_ = ip.Fit(x, 2)
	fmt.Printf("component ~ [%.3f %.3f]\n", ip.Components.At(0, 0), ip.Components.At(0, 1))
	// Output: component ~ [0.316 0.949]
}
