// Package ml implements the machine-learning stack of the paper's
// evaluation workflow: principal component analysis (PCA) and incremental
// PCA (IPCA) following the scikit-learn algorithms that dask-ml wraps,
// plus builders that express IPCA as a task graph — the paper's "old
// IPCA" (one graph per partial_fit, §3.1) and "new IPCA" (the whole
// multi-timestep chain in a single graph, §3.2).
package ml

import (
	"fmt"
	"math"

	"deisago/internal/linalg"
	"deisago/internal/ndarray"
)

// PCA is a full-batch principal component analysis (SVD-based), the
// dask_ml.decomposition.PCA equivalent.
type PCA struct {
	NComponents int

	// Fitted attributes (scikit-learn naming, Go-cased).
	Components             *ndarray.Array // (k × features) rows are components
	SingularValues         []float64
	Mean                   []float64
	ExplainedVariance      []float64
	ExplainedVarianceRatio []float64
	NSamplesSeen           int
}

// NewPCA returns a PCA estimator extracting k components.
func NewPCA(k int) *PCA {
	if k <= 0 {
		panic("ml: NComponents must be positive")
	}
	return &PCA{NComponents: k}
}

// Fit computes the decomposition of X (samples × features).
func (p *PCA) Fit(x *ndarray.Array) error {
	if x.NDim() != 2 {
		return fmt.Errorf("ml: PCA.Fit wants a 2-d samples×features array, got shape %v", x.Shape())
	}
	n, f := x.Dim(0), x.Dim(1)
	if n < 2 {
		return fmt.Errorf("ml: PCA needs at least 2 samples, got %d", n)
	}
	if p.NComponents > min(n, f) {
		return fmt.Errorf("ml: NComponents=%d exceeds min(samples=%d, features=%d)", p.NComponents, n, f)
	}
	mean := x.MeanAxis(0)
	centered := centerRows(x, mean.Data())
	u, s, v := linalg.SVD(centered)
	vt := v.Transpose().Copy() // rows are right singular vectors
	svdFlip(u, vt)

	k := p.NComponents
	p.Mean = mean.Data()
	p.Components = vt.Slice(ndarray.Range{Start: 0, Stop: k}, ndarray.Range{Start: 0, Stop: f}).Copy()
	p.SingularValues = append([]float64(nil), s[:k]...)
	p.NSamplesSeen = n

	totalVar := 0.0
	p.ExplainedVariance = make([]float64, k)
	for i, sv := range s {
		ev := sv * sv / float64(n-1)
		if i < k {
			p.ExplainedVariance[i] = ev
		}
		totalVar += ev
	}
	p.ExplainedVarianceRatio = make([]float64, k)
	if totalVar > 0 {
		for i := range p.ExplainedVarianceRatio {
			p.ExplainedVarianceRatio[i] = p.ExplainedVariance[i] / totalVar
		}
	}
	return nil
}

// Transform projects X onto the fitted components, returning
// (samples × k).
func (p *PCA) Transform(x *ndarray.Array) (*ndarray.Array, error) {
	return transform(x, p.Mean, p.Components)
}

func transform(x *ndarray.Array, mean []float64, components *ndarray.Array) (*ndarray.Array, error) {
	if components == nil {
		return nil, fmt.Errorf("ml: estimator is not fitted")
	}
	if x.NDim() != 2 || x.Dim(1) != len(mean) {
		return nil, fmt.Errorf("ml: Transform input shape %v does not match %d features", x.Shape(), len(mean))
	}
	centered := centerRows(x, mean)
	return ndarray.MatMul(centered, components.Transpose()), nil
}

// centerRows returns x - mean (mean broadcast over rows) as a fresh
// contiguous array, using flat row slices instead of per-element At/Set.
func centerRows(x *ndarray.Array, mean []float64) *ndarray.Array {
	n, f := x.Dim(0), x.Dim(1)
	out := x.Copy()
	od := out.Data()
	ndarray.ParallelFor(n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := od[i*f : (i+1)*f]
			for j, mu := range mean {
				row[j] -= mu
			}
		}
	})
	return out
}

// svdFlip fixes the sign ambiguity of the SVD so results are
// deterministic: each row of vt gets a positive entry of maximum absolute
// value (scikit-learn's u_based_decision=False convention), with u's
// columns flipped to match.
func svdFlip(u, vt *ndarray.Array) {
	k := vt.Dim(0)
	f := vt.Dim(1)
	for r := 0; r < k; r++ {
		maxAbs, sign := 0.0, 1.0
		for j := 0; j < f; j++ {
			v := vt.At(r, j)
			if math.Abs(v) > maxAbs {
				maxAbs = math.Abs(v)
				if v < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		if sign < 0 {
			for j := 0; j < f; j++ {
				vt.Set(-vt.At(r, j), r, j)
			}
			if u != nil && r < u.Dim(1) {
				for i := 0; i < u.Dim(0); i++ {
					u.Set(-u.At(i, r), i, r)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
