package ml

import (
	"fmt"

	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// This file expresses IPCA as a task graph. The paper contrasts two ways
// of doing this:
//
//   - the "old IPCA" (§3.1): the driver submits one small graph per
//     partial_fit, waiting for each before submitting the next. Across
//     submissions Dask cannot share work, so in the post hoc case every
//     submission re-reads its input chunks from storage;
//   - the "new IPCA" (§3.2): the whole multi-timestep chain is built
//     ahead of time and submitted once, letting the scheduler pipeline
//     partial_fits with data production and read every chunk exactly
//     once.
//
// BuildIPCAChain builds the chain subgraph used by both: the old-IPCA
// driver (package core / harness) calls it with a single batch at a time
// in per-step graphs, while the new-IPCA driver calls it once with every
// batch key.

// FoldSpec describes how to fold a spatial slab into a samples×features
// matrix (the xarray stacking of §3.2).
type FoldSpec struct {
	Dims        []string // dimension names of the slab, e.g. ["X","Y"]
	SampleDims  []string // dims folded into rows, e.g. ["Y"]
	FeatureDims []string // dims folded into columns, e.g. ["X"]
}

// AddFoldTask adds a task that folds the slab produced by dep into a 2-D
// samples×features matrix according to the spec, returning the new key.
func AddFoldTask(g *taskgraph.Graph, key, dep taskgraph.Key, spec FoldSpec, bytes int64) taskgraph.Key {
	cost := vtime.Dur(float64(bytes) * 1e-9)
	t := g.AddFn(key, []taskgraph.Key{dep}, func(in []any) (any, error) {
		slab, ok := in[0].(*ndarray.Array)
		if !ok {
			return nil, fmt.Errorf("ml: fold input is %T, want *ndarray.Array", in[0])
		}
		labeled := ndarray.NewLabeled(slab, spec.Dims...)
		return labeled.StackToMatrix(spec.SampleDims, spec.FeatureDims), nil
	}, cost)
	t.OutBytes = bytes
	return key
}

// ChainResult names the keys produced by BuildIPCAChain.
type ChainResult struct {
	StateKeys         []taskgraph.Key // state after each batch (StateKeys[i] = after batch i)
	FinalState        taskgraph.Key
	Components        taskgraph.Key
	SingularValues    taskgraph.Key
	ExplainedVariance taskgraph.Key
}

// ChainOptions configures BuildIPCAChainOpts.
type ChainOptions struct {
	// NComponents is the number of extracted components.
	NComponents int
	// BatchRows and Features are the modelled batch dimensions used by
	// the cost model (they may exceed the real array sizes when the
	// harness models paper-scale data over small arrays).
	BatchRows, Features int
	// CostFn maps (n, f, k) to a partial_fit cost in virtual seconds;
	// nil selects RandomizedSVDCost (the paper's svd_solver).
	CostFn func(n, f, k int) float64
	// StateBytes overrides the modelled wire size of each chain state;
	// 0 derives it from NComponents and Features.
	StateBytes int64
}

// BuildIPCAChain adds the partial_fit chain over the given batch keys
// (each producing a samples×features *ndarray.Array) to g. initial may
// name a state key produced elsewhere (for resuming a chain across
// per-step submissions, as the old IPCA does); if empty, a fresh
// estimator with nComponents is created in-graph. batchRows and features
// size the cost model.
func BuildIPCAChain(g *taskgraph.Graph, name string, batchKeys []taskgraph.Key,
	initial taskgraph.Key, nComponents, batchRows, features int) ChainResult {
	return BuildIPCAChainOpts(g, name, batchKeys, initial, ChainOptions{
		NComponents: nComponents,
		BatchRows:   batchRows,
		Features:    features,
	})
}

// BuildIPCAChainOpts is BuildIPCAChain with an explicit cost model.
func BuildIPCAChainOpts(g *taskgraph.Graph, name string, batchKeys []taskgraph.Key,
	initial taskgraph.Key, opts ChainOptions) ChainResult {
	if len(batchKeys) == 0 {
		panic("ml: BuildIPCAChain needs at least one batch")
	}
	nComponents := opts.NComponents
	costFn := opts.CostFn
	if costFn == nil {
		costFn = RandomizedSVDCost
	}
	stateBytes := opts.StateBytes
	if stateBytes <= 0 {
		stateBytes = int64(nComponents*opts.Features+3*opts.Features)*8 + 64
	}
	prev := initial
	res := ChainResult{}
	for i, bk := range batchKeys {
		stateKey := taskgraph.Key(fmt.Sprintf("%s-state-%d", name, i))
		cost := vtime.Dur(costFn(opts.BatchRows, opts.Features, nComponents))
		var task *taskgraph.Task
		if prev == "" {
			k := nComponents
			task = g.AddFn(stateKey, []taskgraph.Key{bk}, func(in []any) (any, error) {
				batch, ok := in[0].(*ndarray.Array)
				if !ok {
					return nil, fmt.Errorf("ml: batch is %T, want *ndarray.Array", in[0])
				}
				est := NewIncrementalPCA(k)
				if err := est.PartialFit(batch); err != nil {
					return nil, err
				}
				return est, nil
			}, cost)
		} else {
			task = g.AddFn(stateKey, []taskgraph.Key{prev, bk}, func(in []any) (any, error) {
				state, ok := in[0].(*IncrementalPCA)
				if !ok {
					return nil, fmt.Errorf("ml: state is %T, want *IncrementalPCA", in[0])
				}
				batch, ok := in[1].(*ndarray.Array)
				if !ok {
					return nil, fmt.Errorf("ml: batch is %T, want *ndarray.Array", in[1])
				}
				next := state.Clone()
				if err := next.PartialFit(batch); err != nil {
					return nil, err
				}
				return next, nil
			}, cost)
		}
		task.OutBytes = stateBytes
		res.StateKeys = append(res.StateKeys, stateKey)
		prev = stateKey
	}
	res.FinalState = prev

	res.Components = taskgraph.Key(name + "-components")
	g.AddFn(res.Components, []taskgraph.Key{res.FinalState}, func(in []any) (any, error) {
		return in[0].(*IncrementalPCA).Components, nil
	}, 1e-6)
	res.SingularValues = taskgraph.Key(name + "-singular-values")
	g.AddFn(res.SingularValues, []taskgraph.Key{res.FinalState}, func(in []any) (any, error) {
		return append([]float64(nil), in[0].(*IncrementalPCA).SingularValues...), nil
	}, 1e-6)
	res.ExplainedVariance = taskgraph.Key(name + "-explained-variance")
	g.AddFn(res.ExplainedVariance, []taskgraph.Key{res.FinalState}, func(in []any) (any, error) {
		return append([]float64(nil), in[0].(*IncrementalPCA).ExplainedVariance...), nil
	}, 1e-6)
	return res
}
