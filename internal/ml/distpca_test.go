package ml

import (
	"math"
	"math/rand"
	"testing"

	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
)

func TestDistributedPCAMatchesLocal(t *testing.T) {
	_, cl := graphTestCluster(t)
	rng := rand.New(rand.NewSource(7))
	// Three row blocks of a 36×6 matrix.
	full := lowRankData(rng, 36, 6, 6)
	var blocks []*ndarray.Array
	for i := 0; i < 3; i++ {
		blocks = append(blocks, full.Slice(
			ndarray.Range{Start: i * 12, Stop: (i + 1) * 12},
			ndarray.Range{Start: 0, Stop: 6}).Copy())
	}
	local := NewPCA(3)
	if err := local.Fit(full); err != nil {
		t.Fatal(err)
	}

	g := taskgraph.New()
	keys := addBatchTasks(g, "pca", blocks)
	res := BuildDistributedPCA(g, "dpca", keys, 3, 12, 6)
	futs, err := cl.Submit(g, []taskgraph.Key{res.Components, res.SingularValues, res.ExplainedVariance})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	comps := vals[0].(*ndarray.Array)
	// Components match up to sign per row (svdFlip normalizes both, but
	// numerically compare |dot| of corresponding rows).
	for r := 0; r < 3; r++ {
		dot := 0.0
		for c := 0; c < 6; c++ {
			dot += comps.At(r, c) * local.Components.At(r, c)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-8 {
			t.Fatalf("component %d misaligned: |dot| = %v", r, math.Abs(dot))
		}
	}
	svs := vals[1].([]float64)
	for i := range svs {
		if math.Abs(svs[i]-local.SingularValues[i]) > 1e-8*(1+local.SingularValues[i]) {
			t.Fatalf("singular values: %v vs %v", svs, local.SingularValues)
		}
	}
	evs := vals[2].([]float64)
	for i := range evs {
		if math.Abs(evs[i]-local.ExplainedVariance[i]) > 1e-8*(1+local.ExplainedVariance[i]) {
			t.Fatalf("explained variance: %v vs %v", evs, local.ExplainedVariance)
		}
	}
}

func TestDistributedPCAWideBlocks(t *testing.T) {
	// Blocks with fewer rows than features exercise the padding path.
	_, cl := graphTestCluster(t)
	rng := rand.New(rand.NewSource(8))
	full := lowRankData(rng, 12, 8, 3)
	var blocks []*ndarray.Array
	for i := 0; i < 4; i++ {
		blocks = append(blocks, full.Slice(
			ndarray.Range{Start: i * 3, Stop: (i + 1) * 3},
			ndarray.Range{Start: 0, Stop: 8}).Copy())
	}
	local := NewPCA(2)
	if err := local.Fit(full); err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New()
	keys := addBatchTasks(g, "w", blocks)
	res := BuildDistributedPCA(g, "wpca", keys, 2, 3, 8)
	futs, err := cl.Submit(g, []taskgraph.Key{res.SingularValues})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	svs := vals[0].([]float64)
	for i := range svs {
		if math.Abs(svs[i]-local.SingularValues[i]) > 1e-8*(1+local.SingularValues[i]) {
			t.Fatalf("wide-block singular values: %v vs %v", svs, local.SingularValues)
		}
	}
}

func TestDistributedPCAErrors(t *testing.T) {
	_, cl := graphTestCluster(t)
	// Feature mismatch across blocks errs at runtime.
	g := taskgraph.New()
	keys := addBatchTasks(g, "bad", []*ndarray.Array{ndarray.New(4, 3), ndarray.New(4, 5)})
	res := BuildDistributedPCA(g, "bpca", keys, 2, 4, 3)
	futs, err := cl.Submit(g, []taskgraph.Key{res.Components})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Gather(futs); err == nil {
		t.Fatal("feature mismatch accepted")
	}
}

func TestDistributedPCAPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no blocks": func() { BuildDistributedPCA(taskgraph.New(), "x", nil, 2, 4, 4) },
		"bad k":     func() { BuildDistributedPCA(taskgraph.New(), "x", []taskgraph.Key{"a"}, 0, 4, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
