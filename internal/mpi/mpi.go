// Package mpi implements the message-passing substrate the paper's
// simulations run on: an SPMD world of ranks with typed point-to-point
// messages, the usual collectives, and Cartesian topologies for stencil
// codes. Ranks are goroutines in one process; messages move real data
// through channels and carry virtual timestamps computed by the network
// fabric, so communication cost and congestion appear in virtual time
// exactly as they would on the modelled cluster.
package mpi

import (
	"fmt"
	"sync"

	"deisago/internal/netsim"
	"deisago/internal/vtime"
)

// Op is a reduction operator for Reduce/Allreduce.
type Op func(a, b float64) float64

// Predefined reduction operators.
var (
	Sum Op = func(a, b float64) float64 { return a + b }
	Max Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	Min Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Internal tags; user tags must be non-negative.
const (
	tagBarrierUp = -1 - iota
	tagBarrierDown
	tagBcast
	tagReduce
	tagGather
	tagAllgather
)

type message struct {
	from int
	tag  int
	data []float64
	at   vtime.Time
}

type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) put(m message) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// take blocks until a message with the given source and tag is available
// and removes the first such message (per-pair FIFO order).
func (b *inbox) take(from, tag int) message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if m.from == from && m.tag == tag {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}

// World is a communicator universe: a set of ranks placed on fabric nodes.
type World struct {
	size    int
	fabric  *netsim.Fabric
	nodes   []netsim.NodeID
	inboxes []*inbox

	// SendOverhead is the sender-side software cost per message in
	// virtual seconds (packing, matching).
	SendOverhead vtime.Dur

	// Payload buffer free-list. send copies every payload into an
	// internal buffer (MPI_Send semantics: the sender may reuse its
	// buffer immediately); receivers that are done with a delivered
	// payload hand it back via Comm.Recycle so steady-state traffic —
	// e.g. one halo exchange per timestep — stops allocating.
	bufMu sync.Mutex
	bufs  [][]float64
}

// maxPooledBufs bounds the free-list so a burst of large collectives
// cannot pin memory for the rest of a run.
const maxPooledBufs = 256

// getBuf returns a length-n buffer, reusing a recycled payload when one
// is large enough.
func (w *World) getBuf(n int) []float64 {
	w.bufMu.Lock()
	for i := len(w.bufs) - 1; i >= 0; i-- {
		if b := w.bufs[i]; cap(b) >= n {
			w.bufs[i] = w.bufs[len(w.bufs)-1]
			w.bufs = w.bufs[:len(w.bufs)-1]
			w.bufMu.Unlock()
			return b[:n]
		}
	}
	w.bufMu.Unlock()
	return make([]float64, n)
}

func (w *World) putBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	w.bufMu.Lock()
	if len(w.bufs) < maxPooledBufs {
		w.bufs = append(w.bufs, b[:0])
	}
	w.bufMu.Unlock()
}

// NewWorld creates a world of len(rankNodes) ranks; rank r runs on fabric
// node rankNodes[r].
func NewWorld(fabric *netsim.Fabric, rankNodes []netsim.NodeID) *World {
	if len(rankNodes) == 0 {
		panic("mpi: world needs at least one rank")
	}
	w := &World{
		size:         len(rankNodes),
		fabric:       fabric,
		nodes:        append([]netsim.NodeID(nil), rankNodes...),
		SendOverhead: 2e-6,
	}
	for range rankNodes {
		w.inboxes = append(w.inboxes, newInbox())
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Node returns the fabric node hosting a rank.
func (w *World) Node(rank int) netsim.NodeID { return w.nodes[rank] }

// Run executes f once per rank, each on its own goroutine, and waits for
// all of them to return. Each invocation receives that rank's Comm, whose
// clock starts at the given origin.
func (w *World) Run(origin vtime.Time, f func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f(&Comm{world: w, rank: r, clock: vtime.NewClock(origin)})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's communicator handle. A Comm must only be used from
// the goroutine running that rank.
type Comm struct {
	world *World
	rank  int
	clock *vtime.Clock
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Clock returns this rank's virtual clock.
func (c *Comm) Clock() *vtime.Clock { return c.clock }

// Now returns the rank's current virtual time.
func (c *Comm) Now() vtime.Time { return c.clock.Now() }

// Compute advances this rank's clock by d seconds of local work.
func (c *Comm) Compute(d vtime.Dur) { c.clock.Advance(d) }

// World returns the enclosing world.
func (c *Comm) World() *World { return c.world }

func (c *Comm) checkPeer(r int) {
	if r < 0 || r >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, c.world.size))
	}
}

func (c *Comm) send(to, tag int, data []float64) {
	c.checkPeer(to)
	depart := c.clock.Advance(c.world.SendOverhead)
	arrive := c.world.fabric.Transfer(c.world.nodes[c.rank], c.world.nodes[to],
		int64(len(data))*8, depart)
	// Copy so sender may reuse its buffer, as with MPI_Send semantics.
	// The copy target comes from the world's free-list; the receiver may
	// Recycle it once consumed.
	cp := c.world.getBuf(len(data))
	copy(cp, data)
	c.world.inboxes[to].put(message{from: c.rank, tag: tag, data: cp, at: arrive})
}

func (c *Comm) recv(from, tag int) []float64 {
	c.checkPeer(from)
	m := c.world.inboxes[c.rank].take(from, tag)
	c.clock.Sync(m.at)
	return m.data
}

// Send transmits data to another rank with a non-negative user tag.
// It is buffered (never blocks on the receiver).
func (c *Comm) Send(to, tag int, data []float64) {
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	c.send(to, tag, data)
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload. The rank's clock is synced to the arrival time.
func (c *Comm) Recv(from, tag int) []float64 {
	if tag < 0 {
		panic("mpi: user tags must be non-negative")
	}
	return c.recv(from, tag)
}

// Sendrecv exchanges buffers with a partner rank (both sides must call
// it), a common stencil halo-exchange primitive.
func (c *Comm) Sendrecv(partner, tag int, out []float64) []float64 {
	c.Send(partner, tag, out)
	return c.Recv(partner, tag)
}

// Recycle returns a payload previously delivered by Recv/Sendrecv to the
// world's buffer pool. It is optional: callers that retain delivered
// slices simply never recycle them. After Recycle the caller must not
// touch the slice again.
func (c *Comm) Recycle(buf []float64) {
	c.world.putBuf(buf)
}

// Barrier synchronizes all ranks: no rank's clock proceeds past the
// barrier before every rank has entered it. Implemented as a flat
// gather-to-0 plus broadcast.
func (c *Comm) Barrier() {
	if c.world.size == 1 {
		return
	}
	if c.rank == 0 {
		for r := 1; r < c.world.size; r++ {
			c.recv(r, tagBarrierUp)
		}
		for r := 1; r < c.world.size; r++ {
			c.send(r, tagBarrierDown, nil)
		}
		return
	}
	c.send(0, tagBarrierUp, nil)
	c.recv(0, tagBarrierDown)
}

// Bcast distributes root's buffer to every rank; each rank returns its
// copy (root returns the input itself).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	c.checkPeer(root)
	if c.world.size == 1 {
		return data
	}
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.send(r, tagBcast, data)
			}
		}
		return data
	}
	return c.recv(root, tagBcast)
}

// Reduce combines equal-length buffers elementwise with op onto root.
// Non-root ranks return nil.
func (c *Comm) Reduce(root int, op Op, data []float64) []float64 {
	c.checkPeer(root)
	if c.rank != root {
		c.send(root, tagReduce, data)
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		part := c.recv(r, tagReduce)
		if len(part) != len(acc) {
			panic(fmt.Sprintf("mpi: Reduce length mismatch: %d vs %d", len(part), len(acc)))
		}
		for i := range acc {
			acc[i] = op(acc[i], part[i])
		}
	}
	return acc
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (c *Comm) Allreduce(op Op, data []float64) []float64 {
	red := c.Reduce(0, op, data)
	return c.Bcast(0, red)
}

// Gather collects each rank's buffer at root; root returns a slice of
// per-rank buffers indexed by rank, others return nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	c.checkPeer(root)
	if c.rank != root {
		c.send(root, tagGather, data)
		return nil
	}
	out := make([][]float64, c.world.size)
	cp := make([]float64, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < c.world.size; r++ {
		if r != root {
			out[r] = c.recv(r, tagGather)
		}
	}
	return out
}

// Allgather gives every rank the per-rank buffers of all ranks.
func (c *Comm) Allgather(data []float64) [][]float64 {
	if c.world.size == 1 {
		cp := make([]float64, len(data))
		copy(cp, data)
		return [][]float64{cp}
	}
	for r := 0; r < c.world.size; r++ {
		if r != c.rank {
			c.send(r, tagAllgather, data)
		}
	}
	out := make([][]float64, c.world.size)
	cp := make([]float64, len(data))
	copy(cp, data)
	out[c.rank] = cp
	for r := 0; r < c.world.size; r++ {
		if r != c.rank {
			out[r] = c.recv(r, tagAllgather)
		}
	}
	return out
}

// Cart is a non-periodic Cartesian process topology over a communicator.
type Cart struct {
	comm *Comm
	dims []int
}

// CartCreate builds a Cartesian topology; the product of dims must equal
// the world size.
func (c *Comm) CartCreate(dims []int) *Cart {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic("mpi: Cartesian dims must be positive")
		}
		n *= d
	}
	if n != c.world.size {
		panic(fmt.Sprintf("mpi: Cartesian dims %v product %d != world size %d", dims, n, c.world.size))
	}
	return &Cart{comm: c, dims: append([]int(nil), dims...)}
}

// Dims returns the topology extents.
func (ct *Cart) Dims() []int { return append([]int(nil), ct.dims...) }

// Coords returns the Cartesian coordinates of a rank (row-major).
func (ct *Cart) Coords(rank int) []int {
	out := make([]int, len(ct.dims))
	for i := len(ct.dims) - 1; i >= 0; i-- {
		out[i] = rank % ct.dims[i]
		rank /= ct.dims[i]
	}
	return out
}

// RankOf returns the rank at the given coordinates, or -1 if any
// coordinate is outside the (non-periodic) topology.
func (ct *Cart) RankOf(coords []int) int {
	if len(coords) != len(ct.dims) {
		panic("mpi: coordinate rank mismatch")
	}
	r := 0
	for i, x := range coords {
		if x < 0 || x >= ct.dims[i] {
			return -1
		}
		r = r*ct.dims[i] + x
	}
	return r
}

// Shift returns the source and destination ranks for a displacement along
// one dimension, -1 at the boundary (like MPI_PROC_NULL).
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	me := ct.Coords(ct.comm.rank)
	up := append([]int(nil), me...)
	up[dim] += disp
	dn := append([]int(nil), me...)
	dn[dim] -= disp
	return ct.RankOf(dn), ct.RankOf(up)
}
