package mpi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScatter(t *testing.T) {
	w := testWorld(3)
	got := make([][]float64, 3)
	w.Run(0, func(c *Comm) {
		var chunks [][]float64
		if c.Rank() == 1 {
			chunks = [][]float64{{10}, {20, 21}, {30}}
		}
		got[c.Rank()] = c.Scatter(1, chunks)
	})
	if got[0][0] != 10 || got[1][1] != 21 || got[2][0] != 30 {
		t.Fatalf("Scatter got %v", got)
	}
}

func TestScatterCopiesRootChunk(t *testing.T) {
	w := testWorld(2)
	w.Run(0, func(c *Comm) {
		if c.Rank() != 0 {
			c.Scatter(0, nil)
			return
		}
		chunks := [][]float64{{1}, {2}}
		out := c.Scatter(0, chunks)
		chunks[0][0] = 99
		if out[0] != 1 {
			t.Error("Scatter aliased root buffer")
		}
	})
}

func TestAlltoall(t *testing.T) {
	w := testWorld(3)
	results := make([][][]float64, 3)
	w.Run(0, func(c *Comm) {
		chunks := make([][]float64, 3)
		for d := 0; d < 3; d++ {
			chunks[d] = []float64{float64(c.Rank()*10 + d)}
		}
		results[c.Rank()] = c.Alltoall(chunks)
	})
	// results[r][s][0] must equal s*10 + r.
	for r := 0; r < 3; r++ {
		for s := 0; s < 3; s++ {
			if results[r][s][0] != float64(s*10+r) {
				t.Fatalf("Alltoall[%d][%d] = %v, want %d", r, s, results[r][s], s*10+r)
			}
		}
	}
}

func TestReduceScatter(t *testing.T) {
	w := testWorld(2)
	got := make([][]float64, 2)
	w.Run(0, func(c *Comm) {
		// Each rank contributes [r, r+1, r+2, r+3]; segments of length 2.
		data := []float64{float64(c.Rank()), float64(c.Rank() + 1), float64(c.Rank() + 2), float64(c.Rank() + 3)}
		got[c.Rank()] = c.ReduceScatter(Sum, data)
	})
	// Sum contributions: [0+1, 1+2, 2+3, 3+4] = [1,3,5,7].
	if got[0][0] != 1 || got[0][1] != 3 {
		t.Fatalf("rank0 segment = %v, want [1 3]", got[0])
	}
	if got[1][0] != 5 || got[1][1] != 7 {
		t.Fatalf("rank1 segment = %v, want [5 7]", got[1])
	}
}

// Property: ReduceScatter(Sum) concatenated over ranks equals the full
// Allreduce(Sum).
func TestReduceScatterMatchesAllreduceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 1
		seg := rng.Intn(4) + 1
		inputs := make([][]float64, n)
		for r := range inputs {
			inputs[r] = make([]float64, n*seg)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
			}
		}
		w := testWorld(n)
		rs := make([][]float64, n)
		var full [][]float64 = make([][]float64, n)
		w.Run(0, func(c *Comm) {
			rs[c.Rank()] = c.ReduceScatter(Sum, inputs[c.Rank()])
			full[c.Rank()] = c.Allreduce(Sum, inputs[c.Rank()])
		})
		for r := 0; r < n; r++ {
			for i := 0; i < seg; i++ {
				if math.Abs(rs[r][i]-full[0][r*seg+i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectivePanics(t *testing.T) {
	w := testWorld(2)
	w.Run(0, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		for name, fn := range map[string]func(){
			"scatter count":  func() { c.Scatter(0, [][]float64{{1}}) },
			"alltoall count": func() { c.Alltoall([][]float64{{1}}) },
			"rs divisible":   func() { c.ReduceScatter(Sum, []float64{1, 2, 3}) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s did not panic", name)
					}
				}()
				fn()
			}()
		}
	})
}
