package mpi

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"deisago/internal/netsim"
	"deisago/internal/vtime"
)

func testWorld(n int) *World {
	cfg := netsim.Config{
		NodesPerSwitch:  4,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	f := netsim.New(cfg, (n+1)/2)
	nodes := make([]netsim.NodeID, n)
	for i := range nodes {
		nodes[i] = netsim.NodeID(i / 2) // 2 ranks per node
	}
	return NewWorld(f, nodes)
}

func TestSendRecv(t *testing.T) {
	w := testWorld(2)
	var got []float64
	var arriveAfter vtime.Time
	w.Run(0, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, []float64{1, 2, 3})
		case 1:
			got = c.Recv(0, 7)
			arriveAfter = c.Now()
		}
	})
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("received %v", got)
	}
	if arriveAfter <= 0 {
		t.Fatal("receive advanced no virtual time")
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	w := testWorld(2)
	var got []float64
	w.Run(0, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the message
		} else {
			got = c.Recv(0, 0)
		}
	})
	if got[0] != 1 {
		t.Fatalf("message aliased sender buffer: %v", got)
	}
}

func TestTagMatching(t *testing.T) {
	w := testWorld(2)
	var first, second []float64
	w.Run(0, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{5})
			c.Send(1, 6, []float64{6})
		} else {
			// Receive out of send order by tag.
			second = c.Recv(0, 6)
			first = c.Recv(0, 5)
		}
	})
	if first[0] != 5 || second[0] != 6 {
		t.Fatalf("tag matching wrong: %v %v", first, second)
	}
}

func TestPerPairFIFO(t *testing.T) {
	w := testWorld(2)
	var got []float64
	w.Run(0, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, 0, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 5; i++ {
				got = append(got, c.Recv(0, 0)[0])
			}
		}
	})
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := testWorld(4)
	after := make([]vtime.Time, 4)
	w.Run(0, func(c *Comm) {
		// Rank 2 does a lot of local work before the barrier.
		if c.Rank() == 2 {
			c.Compute(10)
		}
		c.Barrier()
		after[c.Rank()] = c.Now()
	})
	for r, tm := range after {
		if tm < 10 {
			t.Fatalf("rank %d passed barrier at %v, before slowest rank entered", r, tm)
		}
	}
}

func TestBcast(t *testing.T) {
	w := testWorld(4)
	var mu sync.Mutex
	got := map[int][]float64{}
	w.Run(0, func(c *Comm) {
		var data []float64
		if c.Rank() == 1 {
			data = []float64{3, 1, 4}
		}
		out := c.Bcast(1, data)
		mu.Lock()
		got[c.Rank()] = out
		mu.Unlock()
	})
	for r := 0; r < 4; r++ {
		if len(got[r]) != 3 || got[r][0] != 3 || got[r][2] != 4 {
			t.Fatalf("rank %d got %v", r, got[r])
		}
	}
}

func TestReduceAllreduce(t *testing.T) {
	w := testWorld(4)
	var reduced []float64
	all := make([][]float64, 4)
	w.Run(0, func(c *Comm) {
		data := []float64{float64(c.Rank()), 1}
		if r := c.Reduce(0, Sum, data); r != nil {
			reduced = r
		}
		all[c.Rank()] = c.Allreduce(Max, []float64{float64(c.Rank())})
	})
	if reduced[0] != 6 || reduced[1] != 4 {
		t.Fatalf("Reduce = %v, want [6 4]", reduced)
	}
	for r := 0; r < 4; r++ {
		if all[r][0] != 3 {
			t.Fatalf("Allreduce rank %d = %v, want 3", r, all[r])
		}
	}
}

func TestGatherAllgather(t *testing.T) {
	w := testWorld(3)
	var gathered [][]float64
	ag := make([][][]float64, 3)
	w.Run(0, func(c *Comm) {
		data := []float64{float64(c.Rank() * 10)}
		if g := c.Gather(2, data); g != nil {
			gathered = g
		}
		ag[c.Rank()] = c.Allgather(data)
	})
	for r := 0; r < 3; r++ {
		if gathered[r][0] != float64(r*10) {
			t.Fatalf("Gather[%d] = %v", r, gathered[r])
		}
		for rr := 0; rr < 3; rr++ {
			if ag[r][rr][0] != float64(rr*10) {
				t.Fatalf("Allgather[%d][%d] = %v", r, rr, ag[r][rr])
			}
		}
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := testWorld(2)
	got := make([][]float64, 2)
	w.Run(0, func(c *Comm) {
		partner := 1 - c.Rank()
		got[c.Rank()] = c.Sendrecv(partner, 3, []float64{float64(c.Rank())})
	})
	if got[0][0] != 1 || got[1][0] != 0 {
		t.Fatalf("Sendrecv got %v", got)
	}
}

func TestCartTopology(t *testing.T) {
	w := testWorld(6)
	w.Run(0, func(c *Comm) {
		ct := c.CartCreate([]int{2, 3})
		coords := ct.Coords(c.Rank())
		if ct.RankOf(coords) != c.Rank() {
			t.Errorf("rank %d: RankOf(Coords) != rank", c.Rank())
		}
		if c.Rank() == 4 { // coords (1,1)
			if coords[0] != 1 || coords[1] != 1 {
				t.Errorf("Coords(4) = %v", coords)
			}
			src, dst := ct.Shift(1, 1) // along dim 1
			if src != 3 || dst != 5 {
				t.Errorf("Shift(1,1) = (%d,%d), want (3,5)", src, dst)
			}
			src, dst = ct.Shift(0, 1)
			if src != 1 || dst != -1 {
				t.Errorf("Shift(0,1) = (%d,%d), want (1,-1)", src, dst)
			}
		}
	})
}

func TestCartBoundaries(t *testing.T) {
	w := testWorld(4)
	w.Run(0, func(c *Comm) {
		ct := c.CartCreate([]int{4})
		if c.Rank() == 0 {
			src, dst := ct.Shift(0, 1)
			if src != -1 || dst != 1 {
				t.Errorf("rank 0 Shift = (%d,%d)", src, dst)
			}
		}
		if c.Rank() == 3 {
			src, dst := ct.Shift(0, 1)
			if src != 2 || dst != -1 {
				t.Errorf("rank 3 Shift = (%d,%d)", src, dst)
			}
		}
	})
}

// Property: Allreduce(Sum) equals the sequential sum of all rank
// contributions, for random vectors.
func TestAllreduceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1 // ranks
		l := rng.Intn(8) + 1 // vector length
		inputs := make([][]float64, n)
		want := make([]float64, l)
		for r := 0; r < n; r++ {
			inputs[r] = make([]float64, l)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
				want[i] += inputs[r][i]
			}
		}
		w := testWorld(n)
		results := make([][]float64, n)
		w.Run(0, func(c *Comm) {
			results[c.Rank()] = c.Allreduce(Sum, inputs[c.Rank()])
		})
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Abs(results[r][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestClockOriginAndCompute(t *testing.T) {
	w := testWorld(1)
	w.Run(100, func(c *Comm) {
		if c.Now() != 100 {
			t.Errorf("origin = %v", c.Now())
		}
		c.Compute(5)
		if c.Now() != 105 {
			t.Errorf("after Compute = %v", c.Now())
		}
	})
}

func TestCommCostGrowsWithMessageSize(t *testing.T) {
	// One rank per node so the transfer actually crosses the fabric.
	spread := func() *World {
		cfg := netsim.Config{
			NodesPerSwitch: 4, LinkBandwidth: 1e9, PruneFactor: 2,
			HopLatency: 1e-6, SoftwareLatency: 1e-5,
		}
		f := netsim.New(cfg, 2)
		return NewWorld(f, []netsim.NodeID{0, 1})
	}
	times := make([]vtime.Time, 2)
	for i, sz := range []int{1 << 10, 1 << 20} {
		w := spread()
		w.Run(0, func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 0, make([]float64, sz))
			} else {
				c.Recv(0, 0)
				times[i] = c.Now()
			}
		})
	}
	if times[1] <= times[0] {
		t.Fatalf("bigger message not slower: %v", times)
	}
}

func TestPanics(t *testing.T) {
	w := testWorld(2)
	w.Run(0, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		for name, fn := range map[string]func(){
			"neg tag send":   func() { c.Send(1, -1, nil) },
			"neg tag recv":   func() { c.Recv(1, -2) },
			"bad peer":       func() { c.Send(9, 0, nil) },
			"bad cart dims":  func() { c.CartCreate([]int{3}) },
			"zero cart dims": func() { c.CartCreate([]int{0, 2}) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s did not panic", name)
					}
				}()
				fn()
			}()
		}
	})
}
