package mpi

import (
	"sync"
	"testing"
)

func TestSplitByParity(t *testing.T) {
	w := testWorld(6)
	var mu sync.Mutex
	ranks := map[int][2]int{} // world rank -> (sub rank, sub size)
	w.Run(0, func(c *Comm) {
		sub := c.Split(c.Rank() % 2)
		mu.Lock()
		ranks[c.Rank()] = [2]int{sub.Rank(), sub.Size()}
		mu.Unlock()
	})
	// Even group: world 0,2,4 -> sub 0,1,2. Odd group: 1,3,5 -> 0,1,2.
	want := map[int][2]int{
		0: {0, 3}, 2: {1, 3}, 4: {2, 3},
		1: {0, 3}, 3: {1, 3}, 5: {2, 3},
	}
	for wr, exp := range want {
		if ranks[wr] != exp {
			t.Fatalf("world rank %d: got %v, want %v", wr, ranks[wr], exp)
		}
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	w := testWorld(3)
	var mu sync.Mutex
	nils := 0
	w.Run(0, func(c *Comm) {
		color := 0
		if c.Rank() == 2 {
			color = -1 // MPI_UNDEFINED
		}
		sub := c.Split(color)
		if sub == nil {
			mu.Lock()
			nils++
			mu.Unlock()
			return
		}
		if sub.Size() != 2 {
			t.Errorf("subcomm size = %d, want 2", sub.Size())
		}
	})
	if nils != 1 {
		t.Fatalf("undefined-color ranks = %d, want 1", nils)
	}
}

func TestSplitSendRecvIsolation(t *testing.T) {
	// Two groups exchange messages on the same user tag without
	// cross-talk; world-level messages on the same tag also stay apart.
	w := testWorld(4)
	got := make([]float64, 4)
	w.Run(0, func(c *Comm) {
		sub := c.Split(c.Rank() / 2) // {0,1} and {2,3}
		partner := 1 - sub.Rank()
		sub.Send(partner, 7, []float64{float64(100*c.Rank() + 7)})
		got[c.Rank()] = sub.Recv(partner, 7)[0]
	})
	want := []float64{107, 7, 307, 207}
	for r, v := range got {
		if v != want[r] {
			t.Fatalf("rank %d got %v, want %v", r, v, want[r])
		}
	}
}

func TestSplitCollectives(t *testing.T) {
	w := testWorld(4)
	sums := make([]float64, 4)
	bcasts := make([]float64, 4)
	w.Run(0, func(c *Comm) {
		sub := c.Split(c.Rank() % 2)
		sum := sub.Allreduce(Sum, []float64{float64(c.Rank())})
		sums[c.Rank()] = sum[0]
		var data []float64
		if sub.Rank() == 0 {
			data = []float64{float64(c.Rank() + 50)}
		}
		bcasts[c.Rank()] = sub.Bcast(0, data)[0]
		sub.Barrier()
	})
	// Even group {0,2}: sum 2; odd {1,3}: sum 4.
	if sums[0] != 2 || sums[2] != 2 || sums[1] != 4 || sums[3] != 4 {
		t.Fatalf("subcomm sums = %v", sums)
	}
	// Bcast roots: world 0 (even), world 1 (odd).
	if bcasts[0] != 50 || bcasts[2] != 50 || bcasts[1] != 51 || bcasts[3] != 51 {
		t.Fatalf("subcomm bcasts = %v", bcasts)
	}
}

func TestSequentialSplitsDoNotCollide(t *testing.T) {
	w := testWorld(2)
	w.Run(0, func(c *Comm) {
		a := c.Split(0)
		b := c.Split(0)
		partner := 1 - a.Rank()
		// Same user tag on two different subcomms.
		a.Send(partner, 3, []float64{1})
		b.Send(partner, 3, []float64{2})
		if got := b.Recv(partner, 3)[0]; got != 2 {
			t.Errorf("subcomm B received %v, want 2", got)
		}
		if got := a.Recv(partner, 3)[0]; got != 1 {
			t.Errorf("subcomm A received %v, want 1", got)
		}
	})
}

func TestSubCommPanics(t *testing.T) {
	w := testWorld(2)
	w.Run(0, func(c *Comm) {
		sub := c.Split(0)
		if c.Rank() != 0 {
			return
		}
		for name, fn := range map[string]func(){
			"bad rank": func() { sub.WorldRank(5) },
			"neg tag":  func() { sub.Send(1, -1, nil) },
			"big tag":  func() { sub.Send(1, subTagSpan, nil) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s did not panic", name)
					}
				}()
				fn()
			}()
		}
	})
}
