package mpi

import "fmt"

// Additional collectives beyond the core set in mpi.go.

const (
	tagScatter = -100 - iota
	tagAlltoall
	tagReduceScatter
)

// Scatter distributes root's per-rank buffers: rank i receives
// chunks[i]. Non-root ranks pass nil. Every rank returns its chunk.
func (c *Comm) Scatter(root int, chunks [][]float64) []float64 {
	c.checkPeer(root)
	if c.rank == root {
		if len(chunks) != c.world.size {
			panic(fmt.Sprintf("mpi: Scatter needs %d chunks, got %d", c.world.size, len(chunks)))
		}
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.send(r, tagScatter, chunks[r])
			}
		}
		out := make([]float64, len(chunks[root]))
		copy(out, chunks[root])
		return out
	}
	return c.recv(root, tagScatter)
}

// Alltoall performs a personalized all-to-all exchange: each rank
// provides one buffer per destination and receives one buffer per
// source, indexed by rank.
func (c *Comm) Alltoall(chunks [][]float64) [][]float64 {
	if len(chunks) != c.world.size {
		panic(fmt.Sprintf("mpi: Alltoall needs %d chunks, got %d", c.world.size, len(chunks)))
	}
	for r := 0; r < c.world.size; r++ {
		if r != c.rank {
			c.send(r, tagAlltoall, chunks[r])
		}
	}
	out := make([][]float64, c.world.size)
	own := make([]float64, len(chunks[c.rank]))
	copy(own, chunks[c.rank])
	out[c.rank] = own
	for r := 0; r < c.world.size; r++ {
		if r != c.rank {
			out[r] = c.recv(r, tagAlltoall)
		}
	}
	return out
}

// ReduceScatter reduces equal-length per-rank contributions elementwise
// and scatters the result: rank i receives the reduced segment i, where
// data is the rank's full-length contribution split into size segments
// of equal length.
func (c *Comm) ReduceScatter(op Op, data []float64) []float64 {
	n := c.world.size
	if len(data)%n != 0 {
		panic(fmt.Sprintf("mpi: ReduceScatter length %d not divisible by %d ranks", len(data), n))
	}
	seg := len(data) / n
	// Send each segment to its owner.
	for r := 0; r < n; r++ {
		if r != c.rank {
			c.send(r, tagReduceScatter, data[r*seg:(r+1)*seg])
		}
	}
	acc := make([]float64, seg)
	copy(acc, data[c.rank*seg:(c.rank+1)*seg])
	for r := 0; r < n; r++ {
		if r == c.rank {
			continue
		}
		part := c.recv(r, tagReduceScatter)
		for i := range acc {
			acc[i] = op(acc[i], part[i])
		}
	}
	return acc
}
