package mpi

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Sub-communicators (MPI_Comm_split): ranks calling Split with the same
// color form a new communicator whose ranks are ordered by world rank.
// Sub-communicator traffic is tag-translated onto the parent so it never
// collides with world traffic or with other splits.

// subTagBase starts the reserved tag region for sub-communicators; each
// split instance gets a disjoint tag window of subTagSpan tags.
const (
	subTagBase = -1 << 20
	subTagSpan = 1 << 10
)

var splitSeq atomic.Int64

// SubComm is a communicator over a subset of world ranks.
type SubComm struct {
	parent  *Comm
	members []int // world ranks, sorted; index = subcomm rank
	rank    int   // this process's subcomm rank
	tagBase int
}

// Split partitions the world by color (every rank must call it, in the
// same sequence of Split calls). Ranks passing a negative color receive
// nil (MPI_UNDEFINED). The returned sub-communicator orders ranks by
// world rank.
func (c *Comm) Split(color int) *SubComm {
	// Agree on a split sequence number: rank 0 allocates and broadcasts.
	var seq int64
	if c.Rank() == 0 {
		seq = splitSeq.Add(1)
	}
	seqv := c.Bcast(0, []float64{float64(seq)})
	seq = int64(seqv[0])

	// Exchange colors.
	all := c.Allgather([]float64{float64(color)})
	var members []int
	for r := 0; r < c.Size(); r++ {
		if int(all[r][0]) == color {
			members = append(members, r)
		}
	}
	if color < 0 {
		return nil
	}
	sort.Ints(members)
	sub := &SubComm{
		parent:  c,
		members: members,
		tagBase: subTagBase + int(seq)*subTagSpan + color*31,
	}
	for i, m := range members {
		if m == c.Rank() {
			sub.rank = i
		}
	}
	return sub
}

// Rank returns this process's rank within the sub-communicator.
func (s *SubComm) Rank() int { return s.rank }

// Size returns the sub-communicator size.
func (s *SubComm) Size() int { return len(s.members) }

// WorldRank translates a subcomm rank to the world rank.
func (s *SubComm) WorldRank(r int) int {
	if r < 0 || r >= len(s.members) {
		panic(fmt.Sprintf("mpi: subcomm rank %d out of range [0,%d)", r, len(s.members)))
	}
	return s.members[r]
}

func (s *SubComm) tag(user int) int {
	if user < 0 || user >= subTagSpan/2 {
		panic(fmt.Sprintf("mpi: subcomm tags must be in [0,%d)", subTagSpan/2))
	}
	return s.tagBase + user
}

// Send transmits data to a subcomm rank.
func (s *SubComm) Send(to, tag int, data []float64) {
	s.parent.send(s.WorldRank(to), s.tag(tag), data)
}

// Recv blocks for a message from a subcomm rank.
func (s *SubComm) Recv(from, tag int) []float64 {
	return s.parent.recv(s.WorldRank(from), s.tag(tag))
}

// Barrier synchronizes the sub-communicator.
func (s *SubComm) Barrier() {
	if s.Size() == 1 {
		return
	}
	bt := s.tag(subTagSpan/2 - 1)
	if s.rank == 0 {
		for r := 1; r < s.Size(); r++ {
			s.parent.recv(s.WorldRank(r), bt)
		}
		for r := 1; r < s.Size(); r++ {
			s.parent.send(s.WorldRank(r), bt, nil)
		}
		return
	}
	s.parent.send(s.WorldRank(0), bt, nil)
	s.parent.recv(s.WorldRank(0), bt)
}

// Bcast distributes root's buffer within the sub-communicator.
func (s *SubComm) Bcast(root int, data []float64) []float64 {
	bt := s.tag(subTagSpan/2 - 2)
	if s.rank == root {
		for r := 0; r < s.Size(); r++ {
			if r != root {
				s.parent.send(s.WorldRank(r), bt, data)
			}
		}
		return data
	}
	return s.parent.recv(s.WorldRank(root), bt)
}

// Allreduce combines equal-length buffers elementwise across the
// sub-communicator.
func (s *SubComm) Allreduce(op Op, data []float64) []float64 {
	rt := s.tag(subTagSpan/2 - 3)
	if s.rank != 0 {
		s.parent.send(s.WorldRank(0), rt, data)
		return s.Bcast(0, nil)
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for r := 1; r < s.Size(); r++ {
		part := s.parent.recv(s.WorldRank(r), rt)
		if len(part) != len(acc) {
			panic(fmt.Sprintf("mpi: subcomm Allreduce length mismatch: %d vs %d", len(part), len(acc)))
		}
		for i := range acc {
			acc[i] = op(acc[i], part[i])
		}
	}
	return s.Bcast(0, acc)
}
