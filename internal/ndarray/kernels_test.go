package ndarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refIter is the seed's generic row-major iterator, kept here as the
// reference the kernel fast paths are checked against.
type refIter struct {
	shape []int
	idx   []int
	first bool
	done  bool
}

func newRefIter(shape []int) *refIter {
	it := &refIter{shape: shape, idx: make([]int, len(shape)), first: true}
	for _, s := range shape {
		if s == 0 {
			it.done = true
		}
	}
	return it
}

func (it *refIter) next() bool {
	if it.done {
		return false
	}
	if it.first {
		it.first = false
		return true
	}
	for d := len(it.shape) - 1; d >= 0; d-- {
		it.idx[d]++
		if it.idx[d] < it.shape[d] {
			return true
		}
		it.idx[d] = 0
	}
	it.done = true
	return false
}

// refZip is the seed zipApply: per-element offsetOf through the iterator.
func refZip(a, b *Array, f func(x, y float64) float64) *Array {
	sameShape(a, b)
	out := New(a.shape...)
	it := newRefIter(a.shape)
	i := 0
	for it.next() {
		out.data[i] = f(a.data[a.offsetOf(it.idx)], b.data[b.offsetOf(it.idx)])
		i++
	}
	return out
}

func refSum(a *Array) float64 {
	var s float64
	it := newRefIter(a.shape)
	for it.next() {
		s += a.data[a.offsetOf(it.idx)]
	}
	return s
}

func refReduceAxis(a *Array, axis int, init float64, f func(acc, x float64) float64) *Array {
	outShape := make([]int, 0, len(a.shape)-1)
	for i, s := range a.shape {
		if i != axis {
			outShape = append(outShape, s)
		}
	}
	out := New(outShape...)
	for i := range out.data {
		out.data[i] = init
	}
	it := newRefIter(a.shape)
	outIdx := make([]int, len(outShape))
	for it.next() {
		k := 0
		for d, x := range it.idx {
			if d != axis {
				outIdx[k] = x
				k++
			}
		}
		p := out.flatIndex(outIdx)
		out.data[p] = f(out.data[p], a.data[a.offsetOf(it.idx)])
	}
	return out
}

// refMatMul is the seed sequential ikj triple loop.
func refMatMul(a, b *Array) *Array {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	ac, bc := a.Contiguous(), b.Contiguous()
	out := New(m, n)
	ad, bd, od := ac.Data(), bc.Data(), out.Data()
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := bd[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// randView builds a random array and, with probability, turns it into a
// non-contiguous view via slicing and/or transposition. The returned
// array exercises every routing decision of the kernel layer.
func randView(rng *rand.Rand) *Array {
	rank := 1 + rng.Intn(3)
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = 1 + rng.Intn(5)
	}
	// Build a larger parent so slices are strict subviews.
	parent := make([]int, rank)
	for i := range parent {
		parent[i] = shape[i] + rng.Intn(3)
	}
	a := New(parent...)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	ranges := make([]Range, rank)
	for i := range ranges {
		start := rng.Intn(parent[i] - shape[i] + 1)
		ranges[i] = Range{start, start + shape[i]}
	}
	v := a.Slice(ranges...)
	if rng.Intn(2) == 0 {
		perm := rng.Perm(rank)
		v = v.Transpose(perm...)
	}
	return v
}

// TestFastPathsMatchIteratorReference drives sliced/transposed views
// through every fast-path kernel and demands bitwise agreement with the
// seed's iterator reference (satellite: non-contiguous coverage).
func TestFastPathsMatchIteratorReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randView(rng)
		b := a.Copy() // same shape, contiguous
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}

		add := func(x, y float64) float64 { return x + y }
		if !Equal(zipApply(a, b, add), refZip(a, b, add)) {
			t.Log("zipApply mismatch")
			return false
		}
		if s, want := a.Sum(), refSum(a); s != want {
			t.Logf("Sum: got %v want %v", s, want)
			return false
		}
		if !Equal(a.Copy(), refZip(a, a, func(x, _ float64) float64 { return x })) {
			t.Log("Copy mismatch")
			return false
		}
		axis := rng.Intn(a.NDim())
		got := a.reduceAxis(axis, 0, add)
		want := refReduceAxis(a, axis, 0, add)
		if !Equal(got, want) {
			t.Logf("reduceAxis(%d) mismatch: shape %v", axis, a.Shape())
			return false
		}
		// CopyFrom into a strided destination and back out.
		dst := randomDestLike(rng, a)
		dst.CopyFrom(a)
		if !Equal(dst.Copy(), a.Copy()) {
			t.Log("CopyFrom mismatch")
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomDestLike builds a non-contiguous destination view with a's shape.
func randomDestLike(rng *rand.Rand, a *Array) *Array {
	shape := a.Shape()
	parent := make([]int, len(shape))
	for i := range parent {
		parent[i] = shape[i] + 1 + rng.Intn(2)
	}
	d := New(parent...)
	ranges := make([]Range, len(shape))
	for i := range ranges {
		start := rng.Intn(parent[i] - shape[i] + 1)
		ranges[i] = Range{start, start + shape[i]}
	}
	return d.Slice(ranges...)
}

// TestMatMulMatchesNaive checks the blocked kernel against the seed
// triple loop, including strided/transposed operands and shapes that
// straddle the tile boundaries.
func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 33},
		{mmBlockK - 1, mmBlockK + 1, mmBlockJ + 3},
		{64, 128, 96},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k)
		b := New(k, n)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		if !Equal(MatMul(a, b), refMatMul(a, b)) {
			t.Fatalf("MatMul(%dx%d, %dx%d) differs from naive reference", m, k, k, n)
		}
		// Transposed views route through Contiguous first.
		at := a.Transpose() // k×m
		if !Equal(MatMul(at, a), refMatMul(at.Copy(), a)) {
			t.Fatalf("MatMul on transposed view differs (m=%d k=%d)", m, k)
		}
	}
}

// TestMatMulDeterminismAcrossWorkers is the determinism guard: the
// parallel blocked MatMul must be bit-identical to the sequential
// reference for every worker count (DESIGN §6 bit-equal invariant).
func TestMatMulDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 96, 80, 112 // above mmParallelFlops so fan-out engages
	a := New(m, k)
	b := New(k, n)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	for i := range b.data {
		b.data[i] = rng.NormFloat64()
	}
	want := refMatMul(a, b)
	for _, w := range []int{1, 2, 8} {
		prev := SetWorkers(w)
		got := MatMul(a, b)
		SetWorkers(prev)
		if !Equal(got, want) {
			t.Fatalf("MatMul with %d workers differs from sequential reference", w)
		}
	}
}

// TestElementwiseDeterminismAcrossWorkers checks that the parallel
// elementwise kernels produce bit-identical results for every worker
// count.
func TestElementwiseDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := New(64, 130) // > zipGrain elements
	b := New(64, 130)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
		b.data[i] = rng.NormFloat64()
	}
	prev := SetWorkers(1)
	wantAdd := Add(a, b)
	wantScale := a.Scale(3.5)
	wantApply := a.Apply(func(x float64) float64 { return x*x + 1 })
	SetWorkers(prev)
	for _, w := range []int{2, 8} {
		prev := SetWorkers(w)
		if !Equal(Add(a, b), wantAdd) {
			t.Fatalf("Add with %d workers differs", w)
		}
		if !Equal(a.Scale(3.5), wantScale) {
			t.Fatalf("Scale with %d workers differs", w)
		}
		if !Equal(a.Apply(func(x float64) float64 { return x*x + 1 }), wantApply) {
			t.Fatalf("Apply with %d workers differs", w)
		}
		SetWorkers(prev)
	}
}

// TestParallelForCoversAllBands checks the work-stealing loop visits
// every band exactly once for degenerate and general inputs.
func TestParallelForCoversAllBands(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		prev := SetWorkers(w)
		for _, n := range []int{0, 1, 5, 4096, 10000} {
			visited := make([]int32, n)
			ParallelFor(n, 7, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					visited[i]++
				}
			})
			for i, c := range visited {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: element %d visited %d times", w, n, i, c)
				}
			}
		}
		SetWorkers(prev)
	}
}

func BenchmarkKernelZipAddContig(b *testing.B) {
	x := New(512, 512)
	y := New(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(x, y)
	}
}

func BenchmarkKernelSumStrided(b *testing.B) {
	x := New(512, 512).Transpose()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Sum()
	}
}
