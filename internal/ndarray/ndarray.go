// Package ndarray implements a dense, strided, float64 n-dimensional
// array. It is the in-memory data container for simulation blocks, Dask
// chunks, and the ML algorithms in this repository — the role NumPy plays
// in the original Python system.
//
// Arrays use row-major (C) layout by default. Slice and Transpose return
// views that share the underlying buffer; Contiguous materializes a view
// into a fresh row-major array.
package ndarray

import (
	"fmt"
	"math"
)

// Array is a strided view over a float64 buffer.
type Array struct {
	shape   []int
	strides []int // element (not byte) strides
	data    []float64
	offset  int
}

// New returns a zero-filled array of the given shape. A zero-dimensional
// array (no arguments) holds a single scalar.
func New(shape ...int) *Array {
	n := checkShape(shape)
	return fromBuffer(make([]float64, n), append([]int(nil), shape...))
}

// FromSlice wraps data in an array of the given shape. The buffer is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Array {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("ndarray: buffer length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return fromBuffer(data, append([]int(nil), shape...))
}

func fromBuffer(data []float64, shape []int) *Array {
	return &Array{shape: shape, strides: contiguousStrides(shape), data: data}
}

func checkShape(shape []int) int {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("ndarray: negative dimension in shape %v", shape))
		}
		n *= s
	}
	return n
}

func contiguousStrides(shape []int) []int {
	st := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= shape[i]
	}
	return st
}

// Shape returns a copy of the array's shape.
func (a *Array) Shape() []int { return append([]int(nil), a.shape...) }

// NDim returns the number of dimensions.
func (a *Array) NDim() int { return len(a.shape) }

// Size returns the total number of elements.
func (a *Array) Size() int { return checkShape(a.shape) }

// Dim returns the length of dimension i.
func (a *Array) Dim(i int) int { return a.shape[i] }

// IsContiguous reports whether the view is row-major contiguous with
// offset 0 covering its whole buffer region. It allocates nothing — it
// is called by Data() inside kernel hot paths.
func (a *Array) IsContiguous() bool {
	acc := 1
	for i := len(a.shape) - 1; i >= 0; i-- {
		if a.shape[i] > 1 && a.strides[i] != acc {
			return false
		}
		acc *= a.shape[i]
	}
	return true
}

func (a *Array) flatIndex(idx []int) int {
	if len(idx) != len(a.shape) {
		panic(fmt.Sprintf("ndarray: %d indices for %d-d array", len(idx), len(a.shape)))
	}
	p := a.offset
	for i, x := range idx {
		if x < 0 || x >= a.shape[i] {
			panic(fmt.Sprintf("ndarray: index %d out of range [0,%d) in dim %d", x, a.shape[i], i))
		}
		p += x * a.strides[i]
	}
	return p
}

// At returns the element at the given indices.
func (a *Array) At(idx ...int) float64 { return a.data[a.flatIndex(idx)] }

// Set stores v at the given indices.
func (a *Array) Set(v float64, idx ...int) { a.data[a.flatIndex(idx)] = v }

// Data returns the underlying buffer when the array is contiguous; it
// panics otherwise. The returned slice aliases the array.
func (a *Array) Data() []float64 {
	if !a.IsContiguous() {
		panic("ndarray: Data on non-contiguous view; call Contiguous first")
	}
	return a.data[a.offset : a.offset+a.Size()]
}

// Fill sets every element of the array (or view) to v.
func (a *Array) Fill(v float64) {
	a.forEachRun(func(base, stride, count int) {
		if stride == 1 {
			row := a.data[base : base+count]
			for i := range row {
				row[i] = v
			}
			return
		}
		for i, p := 0, base; i < count; i, p = i+1, p+stride {
			a.data[p] = v
		}
	})
}

func (a *Array) offsetOf(idx []int) int {
	p := a.offset
	for i, x := range idx {
		p += x * a.strides[i]
	}
	return p
}

// Copy returns a fresh contiguous array with the same contents.
func (a *Array) Copy() *Array {
	out := New(a.shape...)
	buf := out.data
	i := 0
	a.forEachRun(func(base, stride, count int) {
		if stride == 1 {
			copy(buf[i:i+count], a.data[base:base+count])
			i += count
			return
		}
		for p := base; count > 0; count, p, i = count-1, p+stride, i+1 {
			buf[i] = a.data[p]
		}
	})
	return out
}

// Contiguous returns the array itself if contiguous, or a contiguous copy.
func (a *Array) Contiguous() *Array {
	if a.IsContiguous() {
		return a
	}
	return a.Copy()
}

// Reshape returns a view (when possible) or copy with a new shape holding
// the same elements in row-major order. One dimension may be -1 to be
// inferred.
func (a *Array) Reshape(shape ...int) *Array {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, s := range shape {
		if s == -1 {
			if infer != -1 {
				panic("ndarray: at most one -1 dimension in Reshape")
			}
			infer = i
		} else {
			known *= s
		}
	}
	if infer != -1 {
		if known == 0 || a.Size()%known != 0 {
			panic(fmt.Sprintf("ndarray: cannot infer dimension reshaping %v to %v", a.shape, shape))
		}
		shape[infer] = a.Size() / known
	}
	if checkShape(shape) != a.Size() {
		panic(fmt.Sprintf("ndarray: cannot reshape %v (%d elems) to %v", a.shape, a.Size(), shape))
	}
	c := a.Contiguous()
	return &Array{shape: shape, strides: contiguousStrides(shape), data: c.data, offset: c.offset}
}

// Transpose returns a view with permuted dimensions. With no arguments the
// dimension order is reversed.
func (a *Array) Transpose(perm ...int) *Array {
	if len(perm) == 0 {
		perm = make([]int, len(a.shape))
		for i := range perm {
			perm[i] = len(a.shape) - 1 - i
		}
	}
	if len(perm) != len(a.shape) {
		panic("ndarray: permutation length mismatch")
	}
	seen := make([]bool, len(perm))
	shape := make([]int, len(perm))
	strides := make([]int, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(a.shape) || seen[p] {
			panic(fmt.Sprintf("ndarray: bad permutation %v", perm))
		}
		seen[p] = true
		shape[i] = a.shape[p]
		strides[i] = a.strides[p]
	}
	return &Array{shape: shape, strides: strides, data: a.data, offset: a.offset}
}

// Range selects [Start, Stop) in one dimension.
type Range struct {
	Start, Stop int
}

// All returns a Range covering a whole dimension of length n.
func All(n int) Range { return Range{0, n} }

// Len returns the range's length.
func (r Range) Len() int { return r.Stop - r.Start }

// Slice returns a view restricted to the given half-open ranges, one per
// dimension.
func (a *Array) Slice(ranges ...Range) *Array {
	if len(ranges) != len(a.shape) {
		panic(fmt.Sprintf("ndarray: %d ranges for %d-d array", len(ranges), len(a.shape)))
	}
	out := &Array{
		shape:   make([]int, len(ranges)),
		strides: append([]int(nil), a.strides...),
		data:    a.data,
		offset:  a.offset,
	}
	for i, r := range ranges {
		if r.Start < 0 || r.Stop > a.shape[i] || r.Start > r.Stop {
			panic(fmt.Sprintf("ndarray: range [%d,%d) invalid for dim %d of length %d", r.Start, r.Stop, i, a.shape[i]))
		}
		out.offset += r.Start * a.strides[i]
		out.shape[i] = r.Len()
	}
	return out
}

// Row returns row i of a 2-D array as a view of shape [cols].
func (a *Array) Row(i int) *Array {
	if len(a.shape) != 2 {
		panic("ndarray: Row requires a 2-d array")
	}
	return &Array{
		shape:   []int{a.shape[1]},
		strides: []int{a.strides[1]},
		data:    a.data,
		offset:  a.offset + i*a.strides[0],
	}
}

// Col returns column j of a 2-D array as a view of shape [rows].
func (a *Array) Col(j int) *Array {
	if len(a.shape) != 2 {
		panic("ndarray: Col requires a 2-d array")
	}
	return &Array{
		shape:   []int{a.shape[0]},
		strides: []int{a.strides[0]},
		data:    a.data,
		offset:  a.offset + j*a.strides[1],
	}
}

func sameShape(a, b *Array) {
	if len(a.shape) != len(b.shape) {
		panic(fmt.Sprintf("ndarray: shape mismatch %v vs %v", a.shape, b.shape))
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			panic(fmt.Sprintf("ndarray: shape mismatch %v vs %v", a.shape, b.shape))
		}
	}
}

// zipApply writes f(a[i], b[i]) into a fresh array. Contiguous inputs
// take a goroutine-parallel flat path (disjoint output bands, so results
// match the sequential loop bitwise); strided views are decomposed into
// innermost runs without per-element index math.
func zipApply(a, b *Array, f func(x, y float64) float64) *Array {
	sameShape(a, b)
	out := New(a.shape...)
	od := out.data
	if a.IsContiguous() && b.IsContiguous() {
		ad := a.data[a.offset:]
		bd := b.data[b.offset:]
		ParallelFor(len(od), zipGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = f(ad[i], bd[i])
			}
		})
		return out
	}
	i := 0
	forEachRun2(a, b, func(abase, bbase, astride, bstride, count int) {
		for k := 0; k < count; k++ {
			od[i] = f(a.data[abase+k*astride], b.data[bbase+k*bstride])
			i++
		}
	})
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Array) *Array { return zipApply(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a - b elementwise.
func Sub(a, b *Array) *Array { return zipApply(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns a * b elementwise.
func Mul(a, b *Array) *Array { return zipApply(a, b, func(x, y float64) float64 { return x * y }) }

// Scale returns a copy of the array with every element multiplied by s.
func (a *Array) Scale(s float64) *Array {
	out := a.Copy()
	buf := out.data
	ParallelFor(len(buf), zipGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i] *= s
		}
	})
	return out
}

// AddScalar returns a copy with s added to every element.
func (a *Array) AddScalar(s float64) *Array {
	out := a.Copy()
	buf := out.data
	ParallelFor(len(buf), zipGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i] += s
		}
	})
	return out
}

// Apply returns a copy with f applied to every element.
func (a *Array) Apply(f func(float64) float64) *Array {
	out := a.Copy()
	buf := out.data
	ParallelFor(len(buf), zipGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i] = f(buf[i])
		}
	})
	return out
}

// Sum returns the sum of all elements, accumulated in row-major order
// (the same order for contiguous and strided inputs, so views sum
// bit-identically to their materialized copies).
func (a *Array) Sum() float64 {
	var s float64
	a.forEachRun(func(base, stride, count int) {
		if stride == 1 {
			for _, v := range a.data[base : base+count] {
				s += v
			}
			return
		}
		for i, p := 0, base; i < count; i, p = i+1, p+stride {
			s += a.data[p]
		}
	})
	return s
}

// Mean returns the mean of all elements (0 for an empty array).
func (a *Array) Mean() float64 {
	n := a.Size()
	if n == 0 {
		return 0
	}
	return a.Sum() / float64(n)
}

// SumAxis sums over one dimension, returning an array of rank n-1.
func (a *Array) SumAxis(axis int) *Array {
	return a.reduceAxis(axis, 0, func(acc, x float64) float64 { return acc + x })
}

// MeanAxis averages over one dimension.
func (a *Array) MeanAxis(axis int) *Array {
	n := a.shape[axis]
	out := a.SumAxis(axis)
	if n == 0 {
		return out
	}
	return out.Scale(1 / float64(n))
}

// MaxAxis reduces one dimension with max.
func (a *Array) MaxAxis(axis int) *Array {
	return a.reduceAxis(axis, math.Inf(-1), math.Max)
}

// MinAxis reduces one dimension with min.
func (a *Array) MinAxis(axis int) *Array {
	return a.reduceAxis(axis, math.Inf(1), math.Min)
}

func (a *Array) reduceAxis(axis int, init float64, f func(acc, x float64) float64) *Array {
	if axis < 0 || axis >= len(a.shape) {
		panic(fmt.Sprintf("ndarray: axis %d out of range for rank %d", axis, len(a.shape)))
	}
	outShape := make([]int, 0, len(a.shape)-1)
	outStrides := make([]int, 0, len(a.shape)-1)
	for i, s := range a.shape {
		if i != axis {
			outShape = append(outShape, s)
			outStrides = append(outStrides, a.strides[i])
		}
	}
	out := New(outShape...)
	od := out.data
	for i := range od {
		od[i] = init
	}
	alen, astr := a.shape[axis], a.strides[axis]
	if alen == 0 || len(od) == 0 {
		return out
	}
	// View a as (non-axis dims, axis): walk output positions in row-major
	// order with an incremental base offset and fold the axis innermost.
	// Each output element accumulates in ascending axis order — the same
	// per-element order as a full row-major sweep.
	idx := make([]int, len(outShape))
	base := a.offset
	for i := range od {
		acc := od[i]
		for k, p := 0, base; k < alen; k, p = k+1, p+astr {
			acc = f(acc, a.data[p])
		}
		od[i] = acc
		d := len(idx) - 1
		for ; d >= 0; d-- {
			idx[d]++
			base += outStrides[d]
			if idx[d] < outShape[d] {
				break
			}
			base -= outShape[d] * outStrides[d]
			idx[d] = 0
		}
	}
	return out
}

// Norm returns the Frobenius norm.
func (a *Array) Norm() float64 {
	var s float64
	a.forEachRun(func(base, stride, count int) {
		if stride == 1 {
			for _, v := range a.data[base : base+count] {
				s += v * v
			}
			return
		}
		for i, p := 0, base; i < count; i, p = i+1, p+stride {
			v := a.data[p]
			s += v * v
		}
	})
	return math.Sqrt(s)
}

// Dot returns the inner product of two arrays of identical shape.
func Dot(a, b *Array) float64 {
	sameShape(a, b)
	var s float64
	forEachRun2(a, b, func(abase, bbase, astride, bstride, count int) {
		if astride == 1 && bstride == 1 {
			ad := a.data[abase : abase+count]
			bd := b.data[bbase : bbase+count]
			for i, v := range ad {
				s += v * bd[i]
			}
			return
		}
		for k := 0; k < count; k++ {
			s += a.data[abase+k*astride] * b.data[bbase+k*bstride]
		}
	})
	return s
}

// MatMul multiplies two 2-D arrays (m×k)·(k×n) → (m×n) with the
// cache-blocked, goroutine-parallel kernel (see kernels.go). The output
// is bit-identical to the naive sequential ikj loop for any worker count
// because each element's k-terms accumulate in ascending order.
func MatMul(a, b *Array) *Array {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("ndarray: MatMul requires 2-d arrays")
	}
	m, k, k2, n := a.shape[0], a.shape[1], b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("ndarray: MatMul inner dimensions differ: %v · %v", a.shape, b.shape))
	}
	ac, bc := a.Contiguous(), b.Contiguous()
	out := New(m, n)
	matMulInto(out.data, ac.Data(), bc.Data(), m, k, n)
	return out
}

// Stack concatenates arrays of identical shape along a new leading axis.
func Stack(arrays ...*Array) *Array {
	if len(arrays) == 0 {
		panic("ndarray: Stack of nothing")
	}
	for _, a := range arrays[1:] {
		sameShape(arrays[0], a)
	}
	shape := append([]int{len(arrays)}, arrays[0].shape...)
	out := New(shape...)
	per := arrays[0].Size()
	for i, a := range arrays {
		copy(out.data[i*per:(i+1)*per], a.Contiguous().Data())
	}
	return out
}

// Concat concatenates arrays along an existing axis.
func Concat(axis int, arrays ...*Array) *Array {
	if len(arrays) == 0 {
		panic("ndarray: Concat of nothing")
	}
	rank := arrays[0].NDim()
	if axis < 0 || axis >= rank {
		panic(fmt.Sprintf("ndarray: Concat axis %d out of range for rank %d", axis, rank))
	}
	outShape := arrays[0].Shape()
	for _, a := range arrays[1:] {
		if a.NDim() != rank {
			panic("ndarray: Concat rank mismatch")
		}
		for d := 0; d < rank; d++ {
			if d == axis {
				continue
			}
			if a.shape[d] != outShape[d] {
				panic(fmt.Sprintf("ndarray: Concat shape mismatch in dim %d", d))
			}
		}
		outShape[axis] += a.shape[axis]
	}
	out := New(outShape...)
	at := 0
	for _, a := range arrays {
		ranges := make([]Range, rank)
		for d := 0; d < rank; d++ {
			ranges[d] = All(outShape[d])
		}
		ranges[axis] = Range{at, at + a.shape[axis]}
		out.Slice(ranges...).CopyFrom(a)
		at += a.shape[axis]
	}
	return out
}

// CopyFrom copies src's elements into the (possibly strided) destination
// view. Shapes must match.
func (a *Array) CopyFrom(src *Array) {
	sameShape(a, src)
	forEachRun2(a, src, func(abase, sbase, astride, sstride, count int) {
		if astride == 1 && sstride == 1 {
			copy(a.data[abase:abase+count], src.data[sbase:sbase+count])
			return
		}
		for k := 0; k < count; k++ {
			a.data[abase+k*astride] = src.data[sbase+k*sstride]
		}
	})
}

// Equal reports exact elementwise equality of shape and contents.
func Equal(a, b *Array) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	eq := true
	forEachRun2(a, b, func(abase, bbase, astride, bstride, count int) {
		if !eq {
			return
		}
		for k := 0; k < count; k++ {
			if a.data[abase+k*astride] != b.data[bbase+k*bstride] {
				eq = false
				return
			}
		}
	})
	return eq
}

// AllClose reports elementwise |a-b| <= tol for arrays of equal shape.
func AllClose(a, b *Array, tol float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	close := true
	forEachRun2(a, b, func(abase, bbase, astride, bstride, count int) {
		if !close {
			return
		}
		for k := 0; k < count; k++ {
			x := a.data[abase+k*astride]
			y := b.data[bbase+k*bstride]
			if math.Abs(x-y) > tol || math.IsNaN(x) != math.IsNaN(y) {
				close = false
				return
			}
		}
	})
	return close
}

// String renders small arrays for debugging.
func (a *Array) String() string {
	if a.Size() > 200 {
		return fmt.Sprintf("ndarray.Array(shape=%v)", a.shape)
	}
	return fmt.Sprintf("ndarray.Array(shape=%v, data=%v)", a.shape, a.Copy().Data())
}
