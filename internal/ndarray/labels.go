package ndarray

import "fmt"

// Labeled pairs an Array with axis names, playing the role xarray plays in
// the paper's multidimensional IPCA: folding named sample dimensions and
// named feature dimensions of an n-d array into a 2-D samples×features
// matrix (§3.2).
type Labeled struct {
	Array *Array
	Dims  []string
}

// NewLabeled attaches dimension names to an array. The number of names
// must equal the array's rank and names must be unique.
func NewLabeled(a *Array, dims ...string) *Labeled {
	if len(dims) != a.NDim() {
		panic(fmt.Sprintf("ndarray: %d dim labels for rank-%d array", len(dims), a.NDim()))
	}
	seen := map[string]bool{}
	for _, d := range dims {
		if seen[d] {
			panic(fmt.Sprintf("ndarray: duplicate dim label %q", d))
		}
		seen[d] = true
	}
	return &Labeled{Array: a, Dims: append([]string(nil), dims...)}
}

// axisOf returns the axis index of a named dimension.
func (l *Labeled) axisOf(dim string) int {
	for i, d := range l.Dims {
		if d == dim {
			return i
		}
	}
	panic(fmt.Sprintf("ndarray: no dimension named %q in %v", dim, l.Dims))
}

// DimLen returns the length of a named dimension.
func (l *Labeled) DimLen(dim string) int { return l.Array.Dim(l.axisOf(dim)) }

// StackToMatrix folds the array into a 2-D samples×features matrix: the
// sample dims (in the given order) become the row index, the feature dims
// become the column index. Every dimension of the array must appear in
// exactly one of the two lists.
func (l *Labeled) StackToMatrix(sampleDims, featureDims []string) *Array {
	if len(sampleDims)+len(featureDims) != len(l.Dims) {
		panic(fmt.Sprintf("ndarray: StackToMatrix needs all dims partitioned; have %v, got samples=%v features=%v",
			l.Dims, sampleDims, featureDims))
	}
	perm := make([]int, 0, len(l.Dims))
	rows, cols := 1, 1
	for _, d := range sampleDims {
		ax := l.axisOf(d)
		perm = append(perm, ax)
		rows *= l.Array.Dim(ax)
	}
	for _, d := range featureDims {
		ax := l.axisOf(d)
		perm = append(perm, ax)
		cols *= l.Array.Dim(ax)
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if seen[p] {
			panic("ndarray: StackToMatrix dim listed twice")
		}
		seen[p] = true
	}
	return l.Array.Transpose(perm...).Reshape(rows, cols)
}

// SplitBatches slices the labeled array along the named batch dimension
// (typically time) and folds each slice into a samples×features matrix.
// This is the batch stream consumed by incremental PCA.
func (l *Labeled) SplitBatches(batchDim string, sampleDims, featureDims []string) []*Array {
	ax := l.axisOf(batchDim)
	n := l.Array.Dim(ax)
	rest := make([]string, 0, len(l.Dims)-1)
	for _, d := range l.Dims {
		if d != batchDim {
			rest = append(rest, d)
		}
	}
	out := make([]*Array, n)
	for t := 0; t < n; t++ {
		ranges := make([]Range, l.Array.NDim())
		for d := 0; d < l.Array.NDim(); d++ {
			ranges[d] = All(l.Array.Dim(d))
		}
		ranges[ax] = Range{t, t + 1}
		slab := l.Array.Slice(ranges...)
		// Drop the batch axis.
		shape := make([]int, 0, slab.NDim()-1)
		for d, s := range slab.Shape() {
			if d != ax {
				shape = append(shape, s)
			}
		}
		sub := NewLabeled(slab.Contiguous().Reshape(shape...), rest...)
		out[t] = sub.StackToMatrix(sampleDims, featureDims)
	}
	return out
}
