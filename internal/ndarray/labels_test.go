package ndarray

import (
	"testing"
)

func TestNewLabeled(t *testing.T) {
	a := FromSlice(seq(24), 2, 3, 4)
	l := NewLabeled(a, "t", "X", "Y")
	if l.DimLen("t") != 2 || l.DimLen("X") != 3 || l.DimLen("Y") != 4 {
		t.Fatal("DimLen wrong")
	}
}

func TestNewLabeledPanics(t *testing.T) {
	a := FromSlice(seq(6), 2, 3)
	for name, fn := range map[string]func(){
		"count":     func() { NewLabeled(a, "t") },
		"duplicate": func() { NewLabeled(a, "t", "t") },
		"missing":   func() { NewLabeled(a, "t", "X").DimLen("Y") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStackToMatrix(t *testing.T) {
	// 2x3 array labeled (X, Y); samples=Y, features=X as in the paper's
	// fit(gt, ["t","X","Y"], ["X"], ["Y"]).
	a := FromSlice(seq(6), 2, 3) // X=2, Y=3
	l := NewLabeled(a, "X", "Y")
	m := l.StackToMatrix([]string{"Y"}, []string{"X"})
	if m.Dim(0) != 3 || m.Dim(1) != 2 {
		t.Fatalf("matrix shape %v, want [3 2]", m.Shape())
	}
	// m[y][x] must equal a[x][y].
	for x := 0; x < 2; x++ {
		for y := 0; y < 3; y++ {
			if m.At(y, x) != a.At(x, y) {
				t.Fatalf("m[%d,%d]=%v, want %v", y, x, m.At(y, x), a.At(x, y))
			}
		}
	}
}

func TestStackToMatrixMultiDim(t *testing.T) {
	// 4-d (a,b,c,d): samples (a,c) flattened, features (b,d) flattened.
	arr := FromSlice(seq(2*3*4*5), 2, 3, 4, 5)
	l := NewLabeled(arr, "a", "b", "c", "d")
	m := l.StackToMatrix([]string{"a", "c"}, []string{"b", "d"})
	if m.Dim(0) != 8 || m.Dim(1) != 15 {
		t.Fatalf("matrix shape %v, want [8 15]", m.Shape())
	}
	// Row index = a*4+c; col index = b*5+d.
	if m.At(1*4+2, 1*5+3) != arr.At(1, 1, 2, 3) {
		t.Fatal("multidim fold wrong")
	}
}

func TestStackToMatrixPanicsOnPartialDims(t *testing.T) {
	a := FromSlice(seq(6), 2, 3)
	l := NewLabeled(a, "X", "Y")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unpartitioned dims")
		}
	}()
	l.StackToMatrix([]string{"Y"}, []string{"Y"})
}

func TestSplitBatches(t *testing.T) {
	// (t=3, X=2, Y=4): split along t; each batch is (Y=4 samples, X=2 features).
	arr := FromSlice(seq(24), 3, 2, 4)
	l := NewLabeled(arr, "t", "X", "Y")
	batches := l.SplitBatches("t", []string{"Y"}, []string{"X"})
	if len(batches) != 3 {
		t.Fatalf("got %d batches", len(batches))
	}
	for ti, b := range batches {
		if b.Dim(0) != 4 || b.Dim(1) != 2 {
			t.Fatalf("batch %d shape %v", ti, b.Shape())
		}
		for x := 0; x < 2; x++ {
			for y := 0; y < 4; y++ {
				if b.At(y, x) != arr.At(ti, x, y) {
					t.Fatalf("batch %d [%d,%d] = %v, want %v", ti, y, x, b.At(y, x), arr.At(ti, x, y))
				}
			}
		}
	}
}

func TestSplitBatchesConcatEqualsFullStack(t *testing.T) {
	// Concatenating per-t batches along samples must equal folding (t,Y)
	// together as samples in one shot.
	arr := FromSlice(seq(30), 5, 3, 2) // t=5, X=3, Y=2
	l := NewLabeled(arr, "t", "X", "Y")
	batches := l.SplitBatches("t", []string{"Y"}, []string{"X"})
	full := l.StackToMatrix([]string{"t", "Y"}, []string{"X"})
	got := Concat(0, batches...)
	if !Equal(got, full) {
		t.Fatal("batch concat != full stack")
	}
}
