// Kernel layer: the flat-slice fast paths, strided run decomposition,
// worker pool knob, and the cache-blocked goroutine-parallel matrix
// multiply that back every dense operation in this package.
//
// Design rules (see DESIGN.md "kernel layer"):
//
//   - Contiguous arrays are processed as raw []float64 with no per-element
//     index arithmetic. Strided views are decomposed into innermost runs
//     (base, stride, count) by an allocation-free odometer, so even
//     transposed/sliced inputs avoid the generic iterator.
//   - Every parallel kernel partitions output into disjoint regions and
//     keeps a fixed per-element reduction order (ascending k), so results
//     are bit-identical to the sequential reference for any worker count.
//     This protects the repository's "bit-equal PCA components" invariant
//     (DESIGN §6) while still using real cores — measured time is virtual
//     (internal/vtime), so real-time parallelism cannot perturb figures.
package ndarray

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the goroutine fan-out of parallel kernels. It defaults
// to GOMAXPROCS at init and is read atomically so concurrent Dask-worker
// task bodies can share the pool safely.
var maxWorkers int64

func init() { maxWorkers = int64(runtime.GOMAXPROCS(0)) }

// SetWorkers sets the maximum number of goroutines parallel kernels may
// use and returns the previous value. n < 1 is clamped to 1 (sequential).
// Results never depend on the worker count: parallel kernels are
// bit-identical to their sequential reference.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&maxWorkers, int64(n)))
}

// Workers returns the current kernel worker cap.
func Workers() int { return int(atomic.LoadInt64(&maxWorkers)) }

// ParallelFor splits [0,n) into bands of size grain and executes f over
// bands on up to Workers() goroutines, stealing bands through an atomic
// cursor. f must write only state owned by its band; under that contract
// the result is independent of scheduling, so callers stay deterministic.
func ParallelFor(n, grain int, f func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if w <= 1 || n <= grain {
		if n > 0 {
			f(0, n)
		}
		return
	}
	bands := (n + grain - 1) / grain
	if bands < w {
		w = bands
	}
	var cursor int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&cursor, 1)) - 1
				if b >= bands {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				f(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// forEachRun calls f(base, stride, count) for each innermost run of the
// array in row-major order. It allocates one small odometer buffer for
// rank ≥ 3 and nothing otherwise; flat offsets are maintained
// incrementally instead of recomputed per element.
func (a *Array) forEachRun(f func(base, stride, count int)) {
	r := len(a.shape)
	switch r {
	case 0:
		f(a.offset, 1, 1)
		return
	case 1:
		if a.shape[0] > 0 {
			f(a.offset, a.strides[0], a.shape[0])
		}
		return
	case 2:
		rows, cols := a.shape[0], a.shape[1]
		if rows == 0 || cols == 0 {
			return
		}
		base := a.offset
		for i := 0; i < rows; i++ {
			f(base, a.strides[1], cols)
			base += a.strides[0]
		}
		return
	}
	inner, istr := a.shape[r-1], a.strides[r-1]
	if inner == 0 {
		return
	}
	for _, s := range a.shape[:r-1] {
		if s == 0 {
			return
		}
	}
	idx := make([]int, r-1)
	base := a.offset
	for {
		f(base, istr, inner)
		d := r - 2
		for ; d >= 0; d-- {
			idx[d]++
			base += a.strides[d]
			if idx[d] < a.shape[d] {
				break
			}
			base -= a.shape[d] * a.strides[d]
			idx[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// forEachRun2 walks two same-shaped arrays in lockstep row-major order,
// yielding the flat base offsets of each innermost run.
func forEachRun2(a, b *Array, f func(abase, bbase int, astride, bstride, count int)) {
	r := len(a.shape)
	switch r {
	case 0:
		f(a.offset, b.offset, 1, 1, 1)
		return
	case 1:
		if a.shape[0] > 0 {
			f(a.offset, b.offset, a.strides[0], b.strides[0], a.shape[0])
		}
		return
	case 2:
		rows, cols := a.shape[0], a.shape[1]
		if rows == 0 || cols == 0 {
			return
		}
		abase, bbase := a.offset, b.offset
		for i := 0; i < rows; i++ {
			f(abase, bbase, a.strides[1], b.strides[1], cols)
			abase += a.strides[0]
			bbase += b.strides[0]
		}
		return
	}
	inner := a.shape[r-1]
	if inner == 0 {
		return
	}
	for _, s := range a.shape[:r-1] {
		if s == 0 {
			return
		}
	}
	idx := make([]int, r-1)
	abase, bbase := a.offset, b.offset
	for {
		f(abase, bbase, a.strides[r-1], b.strides[r-1], inner)
		d := r - 2
		for ; d >= 0; d-- {
			idx[d]++
			abase += a.strides[d]
			bbase += b.strides[d]
			if idx[d] < a.shape[d] {
				break
			}
			abase -= a.shape[d] * a.strides[d]
			bbase -= b.shape[d] * b.strides[d]
			idx[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// Cache blocking and parallelism thresholds for MatMul. The B tile
// (mmBlockK × mmBlockJ × 8 bytes = 1 MiB) is sized for L2 residency and
// reused across every row of a band; bands of mmRowGrain rows are the
// work-stealing unit. Multiplications below mmParallelFlops (m·k·n) run
// on the calling goroutine to avoid fan-out overhead on small chunks.
const (
	mmBlockK        = 256
	mmBlockJ        = 512
	mmRowGrain      = 8
	mmParallelFlops = 1 << 18
)

// matMulInto computes od = ad(m×k) · bd(k×n), all row-major contiguous.
// Each output element accumulates its k terms in ascending order in both
// the sequential and parallel paths, so the result is bit-identical for
// any worker count.
func matMulInto(od, ad, bd []float64, m, k, n int) {
	if m == 0 || n == 0 {
		return
	}
	if Workers() > 1 && m*k*n >= mmParallelFlops && m > 1 {
		ParallelFor(m, mmRowGrain, func(lo, hi int) {
			matMulRows(od, ad, bd, lo, hi, k, n)
		})
		return
	}
	matMulRows(od, ad, bd, 0, m, k, n)
}

// matMulRows computes output rows [i0,i1) with jc/kc/i/k tiling and a
// 4-way k-unrolled inner kernel. The unrolled chain
//
//	t := orow[j] + a0·b0[j]; t += a1·b1[j]; ... ; orow[j] = t + a3·b3[j]
//
// performs the adds in exactly the order the scalar k-loop would (Go
// forbids floating-point reassociation), so per-element accumulation is
// ascending-k regardless of tiling, unrolling, or worker count. The
// unroll quarters the output-row load/store and branch overhead per
// multiply-add — the bottleneck of the scalar loop — while the j/k tiles
// keep the four active B rows and the output row cache-resident for
// large operands.
func matMulRows(od, ad, bd []float64, i0, i1, k, n int) {
	for jt := 0; jt < n; jt += mmBlockJ {
		jhi := jt + mmBlockJ
		if jhi > n {
			jhi = n
		}
		for kt := 0; kt < k; kt += mmBlockK {
			khi := kt + mmBlockK
			if khi > k {
				khi = k
			}
			for i := i0; i < i1; i++ {
				arow := ad[i*k : (i+1)*k]
				orow := od[i*n+jt : i*n+jhi]
				kk := kt
				for ; kk+4 <= khi; kk += 4 {
					a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := bd[kk*n+jt : kk*n+jhi]
					b1 := bd[(kk+1)*n+jt : (kk+1)*n+jhi]
					b2 := bd[(kk+2)*n+jt : (kk+2)*n+jhi]
					b3 := bd[(kk+3)*n+jt : (kk+3)*n+jhi]
					// Two interleaved j-chains hide FP-add latency;
					// each element's own chain is still ascending-k.
					j := 0
					for ; j+2 <= len(b0); j += 2 {
						t := orow[j] + a0*b0[j]
						u := orow[j+1] + a0*b0[j+1]
						t += a1 * b1[j]
						u += a1 * b1[j+1]
						t += a2 * b2[j]
						u += a2 * b2[j+1]
						orow[j] = t + a3*b3[j]
						orow[j+1] = u + a3*b3[j+1]
					}
					for ; j < len(b0); j++ {
						t := orow[j] + a0*b0[j]
						t += a1 * b1[j]
						t += a2 * b2[j]
						orow[j] = t + a3*b3[j]
					}
				}
				for ; kk < khi; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := bd[kk*n+jt : kk*n+jhi]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}

// zipGrain is the minimum elements per band for parallel elementwise
// kernels; below ~32 KiB of output the goroutine fan-out costs more than
// the loop.
const zipGrain = 4096
