package ndarray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestNewAndAt(t *testing.T) {
	a := New(2, 3)
	if a.Size() != 6 || a.NDim() != 2 || a.Dim(1) != 3 {
		t.Fatalf("shape accessors wrong: %v", a.Shape())
	}
	a.Set(7, 1, 2)
	if a.At(1, 2) != 7 || a.At(0, 0) != 0 {
		t.Fatal("Set/At roundtrip failed")
	}
}

func TestFromSlice(t *testing.T) {
	a := FromSlice(seq(6), 2, 3)
	if a.At(0, 0) != 0 || a.At(1, 2) != 5 {
		t.Fatal("row-major layout violated")
	}
	if a.At(1, 0) != 3 {
		t.Fatal("row-major layout violated at (1,0)")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromSlice(seq(5), 2, 3)
}

func TestScalarArray(t *testing.T) {
	a := New()
	a.Set(42)
	if a.At() != 42 || a.Size() != 1 {
		t.Fatal("0-d array broken")
	}
}

func TestReshape(t *testing.T) {
	a := FromSlice(seq(12), 3, 4)
	b := a.Reshape(2, 6)
	if b.At(1, 0) != 6 {
		t.Fatalf("Reshape wrong: At(1,0)=%v", b.At(1, 0))
	}
	c := a.Reshape(4, -1)
	if c.Dim(1) != 3 {
		t.Fatalf("inferred dim = %d, want 3", c.Dim(1))
	}
	// Reshape of contiguous array is a view over the same buffer.
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Fatal("Reshape of contiguous array should alias")
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice(seq(6), 2, 3)
	b := a.Transpose()
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("Transpose shape %v", b.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != b.At(j, i) {
				t.Fatal("transpose values wrong")
			}
		}
	}
	// A transposed view aliases.
	b.Set(-1, 2, 1)
	if a.At(1, 2) != -1 {
		t.Fatal("Transpose should be a view")
	}
	if b.IsContiguous() {
		t.Fatal("transposed 2x3 should be non-contiguous")
	}
	c := b.Contiguous()
	if !AllClose(b, c, 0) {
		t.Fatal("Contiguous changed values")
	}
}

func TestTransposePerm3D(t *testing.T) {
	a := FromSlice(seq(24), 2, 3, 4)
	b := a.Transpose(2, 0, 1)
	if b.Dim(0) != 4 || b.Dim(1) != 2 || b.Dim(2) != 3 {
		t.Fatalf("perm shape %v", b.Shape())
	}
	if b.At(3, 1, 2) != a.At(1, 2, 3) {
		t.Fatal("permuted access wrong")
	}
}

func TestSliceView(t *testing.T) {
	a := FromSlice(seq(20), 4, 5)
	s := a.Slice(Range{1, 3}, Range{2, 5})
	if s.Dim(0) != 2 || s.Dim(1) != 3 {
		t.Fatalf("slice shape %v", s.Shape())
	}
	if s.At(0, 0) != a.At(1, 2) {
		t.Fatal("slice origin wrong")
	}
	s.Set(100, 1, 2)
	if a.At(2, 4) != 100 {
		t.Fatal("slice must be a view")
	}
}

func TestRowCol(t *testing.T) {
	a := FromSlice(seq(6), 2, 3)
	r := a.Row(1)
	if r.Dim(0) != 3 || r.At(0) != 3 || r.At(2) != 5 {
		t.Fatal("Row wrong")
	}
	c := a.Col(2)
	if c.Dim(0) != 2 || c.At(0) != 2 || c.At(1) != 5 {
		t.Fatal("Col wrong")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data(); got[3] != 44 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Scale(2).Data(); got[1] != 4 {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.AddScalar(1).Data(); got[0] != 2 {
		t.Fatalf("AddScalar = %v", got)
	}
	if got := a.Apply(func(x float64) float64 { return -x }).Data(); got[0] != -1 {
		t.Fatalf("Apply = %v", got)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice(seq(6), 2, 3) // [[0,1,2],[3,4,5]]
	if a.Sum() != 15 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 2.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	s0 := a.SumAxis(0)
	if !Equal(s0, FromSlice([]float64{3, 5, 7}, 3)) {
		t.Fatalf("SumAxis(0) = %v", s0)
	}
	s1 := a.SumAxis(1)
	if !Equal(s1, FromSlice([]float64{3, 12}, 2)) {
		t.Fatalf("SumAxis(1) = %v", s1)
	}
	m1 := a.MeanAxis(1)
	if !Equal(m1, FromSlice([]float64{1, 4}, 2)) {
		t.Fatalf("MeanAxis(1) = %v", m1)
	}
	if mx := a.MaxAxis(0); !Equal(mx, FromSlice([]float64{3, 4, 5}, 3)) {
		t.Fatalf("MaxAxis = %v", mx)
	}
	if mn := a.MinAxis(1); !Equal(mn, FromSlice([]float64{0, 3}, 2)) {
		t.Fatalf("MinAxis = %v", mn)
	}
}

func TestNormDot(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if a.Norm() != 5 {
		t.Fatalf("Norm = %v", a.Norm())
	}
	b := FromSlice([]float64{1, 2}, 2)
	if Dot(a, b) != 11 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want) {
		t.Fatalf("MatMul = %v", c)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 5)
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Set(1, i, i)
		for j := 0; j < 5; j++ {
			a.Set(rng.NormFloat64(), i, j)
		}
	}
	if !AllClose(MatMul(a, eye), a, 1e-14) {
		t.Fatal("A·I != A")
	}
	if !AllClose(MatMul(eye, a), a, 1e-14) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulTransposedView(t *testing.T) {
	// MatMul must work on non-contiguous (transposed) inputs.
	a := FromSlice(seq(6), 2, 3)
	at := a.Transpose()
	got := MatMul(at, a) // 3x3
	want := MatMul(at.Copy(), a)
	if !AllClose(got, want, 1e-13) {
		t.Fatal("MatMul on view differs from copy")
	}
}

func TestStack(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	s := Stack(a, b)
	if s.Dim(0) != 2 || s.Dim(1) != 2 || s.At(1, 0) != 3 {
		t.Fatalf("Stack = %v", s)
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice(seq(4), 2, 2)
	b := FromSlice([]float64{10, 11, 12, 13, 14, 15}, 3, 2)
	c := Concat(0, a, b)
	if c.Dim(0) != 5 || c.Dim(1) != 2 {
		t.Fatalf("Concat shape %v", c.Shape())
	}
	if c.At(2, 0) != 10 || c.At(4, 1) != 15 || c.At(1, 1) != 3 {
		t.Fatal("Concat values wrong")
	}
	d := Concat(1, a, a)
	if d.Dim(1) != 4 || d.At(0, 2) != 0 || d.At(1, 3) != 3 {
		t.Fatal("Concat axis 1 wrong")
	}
}

func TestCopyIndependence(t *testing.T) {
	a := FromSlice(seq(4), 2, 2)
	b := a.Copy()
	b.Set(99, 0, 0)
	if a.At(0, 0) == 99 {
		t.Fatal("Copy aliases source")
	}
}

func TestEqualAllClose(t *testing.T) {
	a := FromSlice(seq(4), 2, 2)
	if !Equal(a, a.Copy()) {
		t.Fatal("Equal(a, copy) = false")
	}
	if Equal(a, a.Reshape(4)) {
		t.Fatal("Equal across shapes should be false")
	}
	b := a.AddScalar(1e-9)
	if Equal(a, b) {
		t.Fatal("Equal should be exact")
	}
	if !AllClose(a, b, 1e-8) {
		t.Fatal("AllClose tolerance not honored")
	}
	if AllClose(a, b, 1e-10) {
		t.Fatal("AllClose too lax")
	}
}

func TestFillOnView(t *testing.T) {
	a := New(3, 3)
	a.Slice(Range{1, 2}, Range{0, 3}).Fill(5)
	if a.At(1, 0) != 5 || a.At(1, 2) != 5 || a.At(0, 0) != 0 || a.At(2, 2) != 0 {
		t.Fatal("Fill on view leaked or missed")
	}
}

func TestEmptyArrays(t *testing.T) {
	a := New(0, 3)
	if a.Size() != 0 {
		t.Fatal("empty size")
	}
	if a.Sum() != 0 || a.Mean() != 0 {
		t.Fatal("empty reductions")
	}
	b := a.Copy()
	if b.Size() != 0 {
		t.Fatal("empty copy")
	}
}

// Property: reshape then reshape back is the identity.
func TestReshapeRoundTripQuick(t *testing.T) {
	f := func(r, c uint8) bool {
		rows := int(r%8) + 1
		cols := int(c%8) + 1
		a := FromSlice(seq(rows*cols), rows, cols)
		back := a.Reshape(rows*cols).Reshape(rows, cols)
		return Equal(a, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose twice is the identity; slice of a slice composes.
func TestTransposeInvolutionQuick(t *testing.T) {
	f := func(r, c uint8, vals []float64) bool {
		rows := int(r%6) + 1
		cols := int(c%6) + 1
		data := make([]float64, rows*cols)
		for i := range data {
			if i < len(vals) && !math.IsNaN(vals[i]) {
				data[i] = vals[i]
			}
		}
		a := FromSlice(data, rows, cols)
		return Equal(a, a.Transpose().Transpose().Copy())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum equals SumAxis composed over all axes.
func TestSumDecompositionQuick(t *testing.T) {
	f := func(r, c uint8) bool {
		rows := int(r%6) + 1
		cols := int(c%6) + 1
		rng := rand.New(rand.NewSource(int64(r)*997 + int64(c)))
		a := New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(rng.NormFloat64(), i, j)
			}
		}
		total := a.Sum()
		byAxis := a.SumAxis(0).Sum()
		return math.Abs(total-byAxis) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeIdentityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1
		a, b := New(m, k), New(k, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		lhs := MatMul(a, b).Transpose().Copy()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return AllClose(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	a := New(2, 2)
	for name, fn := range map[string]func(){
		"bad index":        func() { a.At(2, 0) },
		"wrong rank":       func() { a.At(0) },
		"bad reshape":      func() { a.Reshape(3) },
		"two inferred":     func() { a.Reshape(-1, -1) },
		"bad perm":         func() { a.Transpose(0, 0) },
		"bad slice":        func() { a.Slice(Range{0, 3}, All(2)) },
		"shape mismatch":   func() { Add(a, New(2, 3)) },
		"matmul inner dim": func() { MatMul(a, New(3, 2)) },
		"matmul rank":      func() { MatMul(a, New(2)) },
		"neg shape":        func() { New(-1) },
		"data on view":     func() { a.Transpose().Data() },
		"concat mismatch":  func() { Concat(0, a, New(2, 3)) },
		"stack empty":      func() { Stack() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
