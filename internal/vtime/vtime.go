// Package vtime provides explicit virtual-time bookkeeping for the
// cluster simulation underlying this repository.
//
// The repository reproduces experiments that were originally run on a
// supercomputer (Irene/TGCC). Instead of measuring wall-clock time of an
// in-process simulation — which would be dominated by Go scheduling noise
// and would not reflect InfiniBand or Lustre behaviour — every actor
// (MPI rank, Dask worker, scheduler, client) carries a virtual Clock and
// every message carries a virtual timestamp. Shared hardware (NIC ports,
// switch uplinks, the parallel file system, the scheduler CPU) is modelled
// as an FCFS Resource with a service rate; queueing delays therefore emerge
// naturally from contention, which is exactly the effect the paper's
// figures depend on (shared-PFS bottleneck, centralized-scheduler overload,
// switch-distance variability).
//
// Time is a float64 number of virtual seconds since the start of a run.
package vtime

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Time is an absolute virtual time in seconds since run start.
type Time = float64

// Dur is a virtual duration in seconds.
type Dur = float64

// Clock is the virtual clock of a single logical actor. An actor advances
// its own clock when it performs local work and synchronizes it against
// message timestamps on receive (Lamport-style: local time never goes
// backwards). Clock is safe for concurrent use, although a well-formed
// actor only advances its own clock from one goroutine.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// NewClock returns a clock starting at the given origin.
func NewClock(origin Time) *Clock {
	return &Clock{now: origin}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance adds d (which must be non-negative) of local work to the clock
// and returns the new time.
func (c *Clock) Advance(d Dur) Time {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative advance %v", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Sync raises the clock to t if t is later than the current time and
// returns the (possibly unchanged) current time. It models blocking until
// an event that completes at absolute time t.
func (c *Clock) Sync(t Time) Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Set forces the clock to t. It is intended for run resets in tests and
// harness code, not for normal actor operation.
func (c *Clock) Set(t Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Resource models a serially shared piece of hardware (a NIC port, a
// switch uplink, the PFS, one scheduler CPU). A request for d seconds of
// service starting no earlier than time t is booked into the earliest
// free interval of length d at or after t.
//
// Gap-filling (rather than simple tail-append FCFS) matters because the
// simulation's goroutines make their reservations in real execution
// order, which may differ from virtual-time order: an actor that runs
// ahead in real time must not push back requests that happen earlier in
// virtual time. Requests with equal virtual arrival times still
// serialize, so contention and aggregate-bandwidth behaviour are
// preserved: n transfers of size s over a link of bandwidth b all
// complete by n·s/b.
type Resource struct {
	name string

	mu        sync.Mutex
	intervals []interval // sorted, disjoint busy intervals
	watermark Time       // no future Acquire may arrive before this
	busy      Dur        // total service time accumulated
	nreq      int64
}

type interval struct {
	start, end Time
}

// NewResource returns a named, idle resource.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire requests d seconds of exclusive service starting no earlier than
// at. It returns the service start and end times. d must be non-negative.
func (r *Resource) Acquire(at Time, d Dur) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative service time %v on %s", d, r.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if at < r.watermark {
		panic(fmt.Sprintf("vtime: acquire at %v on %s below released watermark %v", at, r.name, r.watermark))
	}
	r.busy += d
	r.nreq++
	start = r.book(at, d)
	return start, start + d
}

// Release promises that no future Acquire on this resource will arrive
// before the given time, and compacts the booking history below that
// watermark into a single prefix interval. Every gap between compacted
// intervals ends strictly before the watermark, so no booking arriving at
// or after it could ever have been placed there: Acquire results, Busy,
// Requests and FreeAt are unchanged, while the interval table stays
// bounded by the live window instead of growing with run length.
//
// Release is monotone (an earlier watermark is ignored) and Acquire
// panics if the promise is broken, so a miswired caller fails loudly
// instead of silently perturbing virtual-time results.
func (r *Resource) Release(before Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if before <= r.watermark {
		return
	}
	r.watermark = before
	r.compact()
}

// compact merges all intervals ending at or below the watermark into one
// prefix interval and trims pathological slack capacity. Caller holds
// r.mu.
func (r *Resource) compact() {
	// Ends are sorted (intervals are sorted and disjoint), so binary
	// search for the first interval still reachable by a future booking.
	lo, hi := 0, len(r.intervals)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.intervals[mid].end <= r.watermark {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < 2 {
		return
	}
	r.intervals[0].end = r.intervals[lo-1].end
	n := copy(r.intervals[1:], r.intervals[lo:])
	r.intervals = r.intervals[:1+n]
	// Bound memory, not just length: once the live window is much smaller
	// than the retained capacity, reallocate.
	if cap(r.intervals) > 64 && cap(r.intervals) > 4*len(r.intervals) {
		trimmed := make([]interval, len(r.intervals), 2*len(r.intervals))
		copy(trimmed, r.intervals)
		r.intervals = trimmed
	}
}

// Watermark returns the current release watermark.
func (r *Resource) Watermark() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.watermark
}

// IntervalCount returns the number of distinct busy intervals currently
// retained. It exists so tests and benchmarks can assert that compaction
// bounds the booking table.
func (r *Resource) IntervalCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.intervals)
}

// book finds the earliest gap of length d at or after at, inserts the
// booking, and returns its start. Caller holds r.mu.
func (r *Resource) book(at Time, d Dur) Time {
	// Binary search for the first interval ending after at.
	lo, hi := 0, len(r.intervals)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.intervals[mid].end <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := at
	i := lo
	for i < len(r.intervals) {
		iv := r.intervals[i]
		if start+d <= iv.start {
			break // fits in the gap before interval i
		}
		if iv.end > start {
			start = iv.end
		}
		i++
	}
	r.insert(i, interval{start, start + d})
	return start
}

// insert places iv at position i, coalescing with touching neighbors.
// Caller holds r.mu.
func (r *Resource) insert(i int, iv interval) {
	// Merge with predecessor if contiguous.
	if i > 0 && r.intervals[i-1].end >= iv.start {
		r.intervals[i-1].end = iv.end
		// Merge with successor if now contiguous.
		if i < len(r.intervals) && r.intervals[i].start <= iv.end {
			r.intervals[i-1].end = r.intervals[i].end
			r.intervals = append(r.intervals[:i], r.intervals[i+1:]...)
		}
		return
	}
	if i < len(r.intervals) && r.intervals[i].start <= iv.end {
		r.intervals[i].start = iv.start
		return
	}
	r.intervals = append(r.intervals, interval{})
	copy(r.intervals[i+1:], r.intervals[i:])
	r.intervals[i] = iv
}

// Extend marks the resource busy until the given time if that is later
// than its current horizon, attributing the extra span as busy time. It
// supports callers whose service duration is only known after work (e.g.
// a worker CPU blocked on a dynamically-priced I/O operation).
func (r *Resource) Extend(until Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	horizon := r.horizon()
	if until > horizon {
		r.busy += until - horizon
		r.insert(len(r.intervals), interval{horizon, until})
	}
}

// horizon returns the end of the last busy interval. Caller holds r.mu.
func (r *Resource) horizon() Time {
	if len(r.intervals) == 0 {
		return 0
	}
	return r.intervals[len(r.intervals)-1].end
}

// FreeAt returns the time after which the resource has no bookings.
func (r *Resource) FreeAt() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.horizon()
}

// Busy returns the total service time the resource has performed.
func (r *Resource) Busy() Dur {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Requests returns the number of Acquire calls served.
func (r *Resource) Requests() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nreq
}

// Reset returns the resource to the idle state at time 0, clearing
// accumulated statistics.
func (r *Resource) Reset() {
	r.mu.Lock()
	r.intervals, r.busy, r.nreq = nil, 0, 0
	r.watermark = 0
	r.mu.Unlock()
}

// Series is an append-only collection of samples used to aggregate
// per-iteration or per-rank timings. It is safe for concurrent use.
type Series struct {
	mu sync.Mutex
	xs []float64
}

// Add appends one sample.
func (s *Series) Add(x float64) {
	s.mu.Lock()
	s.xs = append(s.xs, x)
	s.mu.Unlock()
}

// Values returns a copy of the samples in insertion order.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// Stats summarizes a sample set.
type Stats struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	P50, P95  float64
	Sum       float64
}

// Summarize computes summary statistics over xs. An empty input yields a
// zero Stats value. The input is sorted once into a scratch copy and that
// ordering is reused for Min, Max and every percentile; Sum, Mean and Std
// still accumulate in the caller's order so their floating-point results
// are unchanged from the historical implementation.
func Summarize(xs []float64) Stats {
	var st Stats
	st.N = len(xs)
	if st.N == 0 {
		return st
	}
	sorted := make([]float64, st.N)
	copy(sorted, xs)
	sort.Float64s(sorted)
	st.Min, st.Max = sorted[0], sorted[st.N-1]
	for _, x := range xs {
		st.Sum += x
	}
	st.Mean = st.Sum / float64(st.N)
	var ss float64
	for _, x := range xs {
		d := x - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(st.N))
	st.P50 = percentile(sorted, 0.50)
	st.P95 = percentile(sorted, 0.95)
	return st
}

// percentile returns the p-quantile (0..1) of a sorted slice using linear
// interpolation between closest ranks.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MaxTime returns the maximum of the given times, or 0 for no arguments.
func MaxTime(ts ...Time) Time {
	var m Time
	for i, t := range ts {
		if i == 0 || t > m {
			m = t
		}
	}
	return m
}
