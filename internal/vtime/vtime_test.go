package vtime

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if got := c.Advance(1.5); got != 1.5 {
		t.Fatalf("Advance(1.5) = %v, want 1.5", got)
	}
	if got := c.Advance(0); got != 1.5 {
		t.Fatalf("Advance(0) = %v, want 1.5", got)
	}
	if got := c.Now(); got != 1.5 {
		t.Fatalf("Now() = %v, want 1.5", got)
	}
}

func TestClockOrigin(t *testing.T) {
	c := NewClock(10)
	if got := c.Now(); got != 10 {
		t.Fatalf("Now() = %v, want 10", got)
	}
}

func TestClockSyncMonotone(t *testing.T) {
	c := NewClock(5)
	if got := c.Sync(3); got != 5 {
		t.Fatalf("Sync(3) = %v, want 5 (clock must not go backwards)", got)
	}
	if got := c.Sync(7); got != 7 {
		t.Fatalf("Sync(7) = %v, want 7", got)
	}
}

func TestClockSet(t *testing.T) {
	c := NewClock(5)
	c.Set(1)
	if got := c.Now(); got != 1 {
		t.Fatalf("after Set(1), Now() = %v", got)
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock(0).Advance(-1)
}

func TestResourceFCFS(t *testing.T) {
	r := NewResource("pfs")
	s1, e1 := r.Acquire(0, 2)
	if s1 != 0 || e1 != 2 {
		t.Fatalf("first acquire = (%v,%v), want (0,2)", s1, e1)
	}
	// Arrives while busy: queued behind the first request.
	s2, e2 := r.Acquire(1, 3)
	if s2 != 2 || e2 != 5 {
		t.Fatalf("second acquire = (%v,%v), want (2,5)", s2, e2)
	}
	// Arrives after idle: starts at arrival.
	s3, e3 := r.Acquire(10, 1)
	if s3 != 10 || e3 != 11 {
		t.Fatalf("third acquire = (%v,%v), want (10,11)", s3, e3)
	}
	if got := r.Busy(); got != 6 {
		t.Fatalf("Busy() = %v, want 6", got)
	}
	if got := r.Requests(); got != 3 {
		t.Fatalf("Requests() = %v, want 3", got)
	}
}

func TestResourceZeroService(t *testing.T) {
	r := NewResource("nic")
	s, e := r.Acquire(4, 0)
	if s != 4 || e != 4 {
		t.Fatalf("zero-service acquire = (%v,%v), want (4,4)", s, e)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 5)
	r.Reset()
	if r.FreeAt() != 0 || r.Busy() != 0 || r.Requests() != 0 {
		t.Fatalf("Reset did not clear state: freeAt=%v busy=%v nreq=%v",
			r.FreeAt(), r.Busy(), r.Requests())
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire with negative duration did not panic")
		}
	}()
	NewResource("x").Acquire(0, -1)
}

// Property: for any sequence of requests, every booking starts no earlier
// than its request time, has the exact requested length, bookings are
// pairwise disjoint, and total busy time equals the sum of requested
// durations (work conservation).
func TestResourceInvariantsQuick(t *testing.T) {
	type iv struct{ s, e Time }
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("q")
		var got []iv
		var total Dur
		for i := 0; i < int(n%50)+1; i++ {
			at := rng.Float64() * 100
			d := rng.Float64() * 10
			s, e := r.Acquire(at, d)
			if s < at {
				return false // started before arrival
			}
			if math.Abs((e-s)-d) > 1e-12 {
				return false // wrong service length
			}
			got = append(got, iv{s, e})
			total += d
		}
		// Pairwise disjoint.
		for i := range got {
			for j := i + 1; j < len(got); j++ {
				a, b := got[i], got[j]
				if a.s < b.e-1e-12 && b.s < a.e-1e-12 {
					return false
				}
			}
		}
		return math.Abs(r.Busy()-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Gap filling: a booking requested at an earlier virtual time than an
// existing one slots into the free gap instead of queueing behind it —
// the property that makes the simulation insensitive to goroutine
// execution order.
func TestResourceGapFilling(t *testing.T) {
	r := NewResource("gap")
	// Future booking first (an actor that ran ahead in real time).
	s1, e1 := r.Acquire(10, 2)
	if s1 != 10 || e1 != 12 {
		t.Fatalf("future booking = (%v,%v)", s1, e1)
	}
	// An earlier-virtual-time request must not queue behind it.
	s2, e2 := r.Acquire(1, 3)
	if s2 != 1 || e2 != 4 {
		t.Fatalf("early request pushed back: (%v,%v), want (1,4)", s2, e2)
	}
	// A request that does not fit in the gap goes after the future one.
	s3, _ := r.Acquire(4, 7)
	if s3 != 12 {
		t.Fatalf("oversized request = start %v, want 12", s3)
	}
	// A request that fits exactly in the remaining gap uses it.
	s4, e4 := r.Acquire(0, 6)
	if s4 != 4 || e4 != 10 {
		t.Fatalf("exact-fit request = (%v,%v), want (4,10)", s4, e4)
	}
}

func TestResourceExtend(t *testing.T) {
	r := NewResource("ext")
	r.Acquire(0, 1)
	r.Extend(5)
	if r.FreeAt() != 5 {
		t.Fatalf("FreeAt after Extend = %v", r.FreeAt())
	}
	if math.Abs(r.Busy()-5) > 1e-12 {
		t.Fatalf("Busy after Extend = %v", r.Busy())
	}
	r.Extend(3) // earlier than horizon: no-op
	if r.FreeAt() != 5 {
		t.Fatal("Extend shrank the horizon")
	}
}

// Property: concurrent acquires never produce overlapping service windows.
func TestResourceConcurrentNoOverlap(t *testing.T) {
	r := NewResource("conc")
	const G = 16
	const per = 50
	type iv struct{ s, e Time }
	out := make([][]iv, G)
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				s, e := r.Acquire(rng.Float64()*10, rng.Float64())
				out[g] = append(out[g], iv{s, e})
			}
		}(g)
	}
	wg.Wait()
	var all []iv
	for _, o := range out {
		all = append(all, o...)
	}
	// Sort by start and verify disjointness.
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[j].s < all[i].s {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for i := 1; i < len(all); i++ {
		if all[i].s < all[i-1].e-1e-12 {
			t.Fatalf("overlap: [%v,%v) then [%v,%v)", all[i-1].s, all[i-1].e, all[i].s, all[i].e)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 1; i <= 4; i++ {
		s.Add(float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	v := s.Values()
	if len(v) != 4 || v[0] != 1 || v[3] != 4 {
		t.Fatalf("Values = %v", v)
	}
	v[0] = 99 // must be a copy
	if s.Values()[0] != 1 {
		t.Fatal("Values returned a view, want a copy")
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if st.N != 8 {
		t.Fatalf("N = %d", st.N)
	}
	if math.Abs(st.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", st.Mean)
	}
	if math.Abs(st.Std-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", st.Std)
	}
	if st.Min != 2 || st.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", st.Min, st.Max)
	}
	if st.Sum != 40 {
		t.Fatalf("Sum = %v", st.Sum)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if st := Summarize(nil); st.N != 0 || st.Mean != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	st := Summarize([]float64{3})
	if st.N != 1 || st.Mean != 3 || st.Std != 0 || st.P50 != 3 || st.P95 != 3 {
		t.Fatalf("single stats = %+v", st)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	st := Summarize(xs)
	if math.Abs(st.P50-5.5) > 1e-12 {
		t.Fatalf("P50 = %v, want 5.5", st.P50)
	}
	if math.Abs(st.P95-9.55) > 1e-12 {
		t.Fatalf("P95 = %v, want 9.55", st.P95)
	}
}

// Property: mean of Summarize lies within [min, max] and std is
// non-negative for arbitrary inputs.
func TestSummarizeQuick(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		st := Summarize(clean)
		if st.N == 0 {
			return true
		}
		return st.Mean >= st.Min-1e-9 && st.Mean <= st.Max+1e-9 && st.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime() != 0 {
		t.Fatal("MaxTime() != 0")
	}
	if MaxTime(3, 1, 2) != 3 {
		t.Fatal("MaxTime(3,1,2) != 3")
	}
	if MaxTime(-5, -2, -9) != -2 {
		t.Fatal("MaxTime over negatives wrong")
	}
}
