package vtime

import (
	"math/rand"
	"testing"
)

// benchResourceWorkload books jittered, non-coalescing acquires on r for
// virtual steps [lo, hi), mirroring how pfs OSTs and netsim NIC ports are
// exercised by a long run. When release is true the caller advances the
// watermark the way the harness does at phase boundaries, so the interval
// table stays bounded; otherwise it grows with run length (the seed
// behaviour).
func benchResourceWorkload(r *Resource, lo, hi int, release bool) {
	for i := lo; i < hi; i++ {
		at := float64(i) + 0.3*float64(i%7)
		r.Acquire(at, 0.25)
		if release && i%128 == 127 {
			r.Release(float64(i) - 8)
		}
	}
}

// BenchmarkResourceAcquire measures the marginal cost of 100k bookings on
// a resource deep into a long run (8M bookings of prior history), which is
// where the seed's unbounded interval table hurts: every Acquire binary-
// searches a multi-megabyte slice that long since fell out of cache.
// "compacted" uses the Release watermark API (bounded table, O(log window)
// per booking); "unbounded" is the seed behaviour. ns/op is the cost of
// one 100k-booking batch.
func BenchmarkResourceAcquire(b *testing.B) {
	const history = 8_000_000
	const batch = 100_000
	for _, mode := range []struct {
		name    string
		release bool
	}{{"compacted", true}, {"unbounded", false}} {
		b.Run(mode.name, func(b *testing.B) {
			r := NewResource("bench")
			benchResourceWorkload(r, 0, history, mode.release)
			if mode.release {
				if c := r.IntervalCount(); c > 1024 {
					b.Fatalf("compacted interval table not bounded: %d", c)
				}
			}
			pos := history
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchResourceWorkload(r, pos, pos+batch, mode.release)
				pos += batch
			}
		})
	}
}

func BenchmarkSummarize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink Stats
	for i := 0; i < b.N; i++ {
		sink = Summarize(xs)
	}
	_ = sink
}
