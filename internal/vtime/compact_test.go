package vtime

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestResourceCompactionEquivalence is the compaction correctness
// property: a Resource whose caller periodically Releases a legal
// watermark returns bit-identical Acquire results — and identical Busy,
// Requests and FreeAt — to an uncompacted reference that never Releases.
//
// The generated workload models what the simulation produces: several
// actors with monotone (but differently paced) clocks booking jittered
// service times. The legal watermark is the minimum actor clock, which
// is exactly the "registered min-clock set" a caller would derive.
func TestResourceCompactionEquivalence(t *testing.T) {
	type workload struct {
		Seed     int64
		Actors   uint8
		Bookings uint16
	}
	prop := func(w workload) bool {
		rng := rand.New(rand.NewSource(w.Seed))
		actors := int(w.Actors)%6 + 2
		n := int(w.Bookings)%800 + 50
		clocks := make([]float64, actors)

		compacted := NewResource("compacted")
		reference := NewResource("reference")

		minClock := func() Time {
			m := clocks[0]
			for _, c := range clocks[1:] {
				if c < m {
					m = c
				}
			}
			return m
		}
		for i := 0; i < n; i++ {
			a := rng.Intn(actors)
			clocks[a] += rng.Float64() * float64(a+1)
			at := clocks[a]
			d := rng.Float64() * 0.5
			if rng.Intn(8) == 0 {
				d = 0
			}
			s1, e1 := compacted.Acquire(at, d)
			s2, e2 := reference.Acquire(at, d)
			if s1 != s2 || e1 != e2 {
				t.Logf("booking %d diverged: (%v,%v) vs (%v,%v)", i, s1, e1, s2, e2)
				return false
			}
			if i%32 == 31 {
				compacted.Release(minClock())
			}
		}
		if compacted.Busy() != reference.Busy() ||
			compacted.Requests() != reference.Requests() ||
			compacted.FreeAt() != reference.FreeAt() {
			t.Logf("aggregates diverged: busy %v/%v req %d/%d freeAt %v/%v",
				compacted.Busy(), reference.Busy(),
				compacted.Requests(), reference.Requests(),
				compacted.FreeAt(), reference.FreeAt())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceCompactionBoundsIntervals(t *testing.T) {
	r := NewResource("r")
	max := 0
	for i := 0; i < 100000; i++ {
		at := float64(i) + 0.3*float64(i%7) // mild backward jitter
		r.Acquire(at, 0.25)                 // gaps persist: no coalescing
		if i%128 == 127 {
			r.Release(float64(i) - 8)
		}
		if c := r.IntervalCount(); c > max {
			max = c
		}
	}
	if max > 512 {
		t.Fatalf("interval table not bounded under periodic Release: peak %d", max)
	}
	if got := r.Requests(); got != 100000 {
		t.Fatalf("Requests = %d", got)
	}
}

func TestResourceReleaseMonotoneAndReset(t *testing.T) {
	r := NewResource("r")
	r.Acquire(0, 1)
	r.Acquire(2, 1)
	r.Release(5)
	r.Release(3) // ignored: watermark only advances
	if got := r.Watermark(); got != 5 {
		t.Fatalf("Watermark = %v, want 5", got)
	}
	if got := r.IntervalCount(); got != 1 {
		t.Fatalf("IntervalCount after compaction = %d, want 1", got)
	}
	if got := r.FreeAt(); got != 3 {
		t.Fatalf("FreeAt = %v, want 3", got)
	}
	if got := r.Busy(); got != 2 {
		t.Fatalf("Busy = %v, want 2", got)
	}
	r.Reset()
	if r.Watermark() != 0 || r.IntervalCount() != 0 {
		t.Fatal("Reset did not clear watermark/intervals")
	}
	// Legal again after Reset.
	if s, _ := r.Acquire(0, 1); s != 0 {
		t.Fatalf("post-Reset Acquire start = %v", s)
	}
}

func TestResourceAcquireBelowWatermarkPanics(t *testing.T) {
	r := NewResource("r")
	r.Acquire(0, 1)
	r.Release(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire below watermark did not panic")
		}
	}()
	r.Acquire(9, 1)
}
