package array

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// valueArray builds a chunked array whose element (i,j) has value
// i*1000+j, so any reassembly can be verified positionally.
func valueArray(name string, shape, chunks []int) *Chunked {
	return FromChunkTasks(name, shape, chunks, func(idx, ext []int) (taskgraph.Fn, vtime.Dur) {
		origin := make([]int, len(idx))
		for d := range idx {
			origin[d] = idx[d] * chunks[d]
		}
		extent := append([]int(nil), ext...)
		return func([]any) (any, error) {
			a := ndarray.New(extent...)
			for i := 0; i < extent[0]; i++ {
				for j := 0; j < extent[1]; j++ {
					a.Set(float64((origin[0]+i)*1000+origin[1]+j), i, j)
				}
			}
			return a, nil
		}, 1e-5
	})
}

func gatherChunk(t *testing.T, a *Chunked, idx []int) *ndarray.Array {
	t.Helper()
	_, cl := testCluster(t, 2)
	g := taskgraph.New()
	g.Merge(a.Graph())
	futs, err := cl.Submit(g, []taskgraph.Key{a.ChunkKey(idx...)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	return vals[0].(*ndarray.Array)
}

func TestRechunkCoarsen(t *testing.T) {
	// 4x4 with 2x2 chunks -> one 4x4 chunk.
	a := valueArray("a", []int{4, 4}, []int{2, 2})
	b := a.Rechunk("b", []int{4, 4})
	if b.NumChunks() != 1 {
		t.Fatalf("NumChunks = %d", b.NumChunks())
	}
	got := gatherChunk(t, b, []int{0, 0})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != float64(i*1000+j) {
				t.Fatalf("got[%d,%d] = %v", i, j, got.At(i, j))
			}
		}
	}
}

func TestRechunkRefine(t *testing.T) {
	// 4x4 with one 4x4 chunk -> 2x2 chunks; check an interior chunk.
	a := valueArray("a", []int{4, 4}, []int{4, 4})
	b := a.Rechunk("b", []int{2, 2})
	got := gatherChunk(t, b, []int{1, 1})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != float64((2+i)*1000+2+j) {
				t.Fatalf("refined chunk wrong at (%d,%d): %v", i, j, got.At(i, j))
			}
		}
	}
}

func TestRechunkMisaligned(t *testing.T) {
	// 6x6 with 2x2 chunks -> 3x3 chunks (boundaries cross old chunks).
	a := valueArray("a", []int{6, 6}, []int{2, 2})
	b := a.Rechunk("b", []int{3, 3})
	got := gatherChunk(t, b, []int{1, 1}) // elements [3,6) x [3,6)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := float64((3+i)*1000 + 3 + j)
			if got.At(i, j) != want {
				t.Fatalf("misaligned rechunk at (%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestRechunkPreservesByteScale(t *testing.T) {
	a := valueArray("a", []int{4, 4}, []int{2, 2}).SetByteScale(100)
	b := a.Rechunk("b", []int{4, 4})
	if b.ByteScale() != 100 {
		t.Fatal("byte scale not inherited")
	}
	if b.ChunkBytes([]int{0, 0}) != 16*8*100 {
		t.Fatalf("ChunkBytes = %d", b.ChunkBytes([]int{0, 0}))
	}
}

func TestRechunkPanicsOnRank(t *testing.T) {
	a := valueArray("a", []int{4, 4}, []int{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.Rechunk("b", []int{4})
}

// Property: rechunking to random new chunk shapes preserves every
// element (verified by summing all chunks of the rechunked array).
func TestRechunkQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(6) + 2
		cols := rng.Intn(6) + 2
		a := valueArray("q", []int{rows, cols},
			[]int{rng.Intn(rows) + 1, rng.Intn(cols) + 1})
		b := a.Rechunk("r", []int{rng.Intn(rows) + 1, rng.Intn(cols) + 1})
		c, cl := testClusterQuickArr()
		defer c.Close()
		g, sumKey := b.SumAll("total")
		futs, err := cl.Submit(g, []taskgraph.Key{sumKey})
		if err != nil {
			return false
		}
		vals, err := cl.Gather(futs)
		if err != nil {
			return false
		}
		want := 0.0
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want += float64(i*1000 + j)
			}
		}
		return vals[0].(float64) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// testClusterQuickArr builds a cluster without *testing.T for quick.Check.
func testClusterQuickArr() (*dask.Cluster, *dask.Client) {
	cfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(cfg, 4)
	c := dask.NewCluster(fabric, dask.DefaultConfig(), 0, []netsim.NodeID{2, 3})
	return c, c.NewClient("client", 1, math.Inf(1))
}
