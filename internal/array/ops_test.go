package array

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
)

func gatherAll(t *testing.T, a *Chunked) *ndarray.Array {
	t.Helper()
	_, cl := testCluster(t, 2)
	g := taskgraph.New()
	g.Merge(a.Graph())
	// Assemble via one task depending on all chunks.
	var deps []taskgraph.Key
	var idxs [][]int
	a.eachChunk(func(idx []int) {
		deps = append(deps, a.ChunkKey(idx...))
		idxs = append(idxs, append([]int(nil), idx...))
	})
	shape := a.Shape()
	chunks := a.ChunkShape()
	g.AddFn("assemble", deps, func(in []any) (any, error) {
		out := ndarray.New(shape...)
		for i, v := range in {
			chunk := v.(*ndarray.Array)
			ranges := make([]ndarray.Range, len(shape))
			for d := range shape {
				start := idxs[i][d] * chunks[d]
				ranges[d] = ndarray.Range{Start: start, Stop: start + chunk.Dim(d)}
			}
			out.Slice(ranges...).CopyFrom(chunk)
		}
		return out, nil
	}, 1e-5)
	futs, err := cl.Submit(g, []taskgraph.Key{"assemble"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	return vals[0].(*ndarray.Array)
}

func TestZipAdd(t *testing.T) {
	a := valueArray("a", []int{4, 6}, []int{2, 3})
	b := valueArray("b", []int{4, 6}, []int{2, 3})
	sum := Add("sum", a, b)
	got := gatherAll(t, sum)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			want := 2 * float64(i*1000+j)
			if got.At(i, j) != want {
				t.Fatalf("sum[%d,%d] = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestZipSubAndMul(t *testing.T) {
	a := valueArray("a", []int{2, 2}, []int{2, 2})
	b := valueArray("b", []int{2, 2}, []int{2, 2})
	if got := gatherAll(t, Sub("d", a, b)); got.Sum() != 0 {
		t.Fatalf("a-a sum = %v", got.Sum())
	}
	got := gatherAll(t, Mul("m", a, b))
	if got.At(1, 1) != float64(1001*1001) {
		t.Fatalf("mul[1,1] = %v", got.At(1, 1))
	}
}

func TestZipMismatchPanics(t *testing.T) {
	a := valueArray("a", []int{4, 4}, []int{2, 2})
	b := valueArray("b", []int{4, 4}, []int{4, 4})
	defer func() {
		if recover() == nil {
			t.Fatal("chunking mismatch accepted")
		}
	}()
	Add("x", a, b)
}

func TestSumAxisDistributed(t *testing.T) {
	// 4x6, chunks 2x3: sum along axis 0 -> length-6 vector.
	a := valueArray("a", []int{4, 6}, []int{2, 3})
	s := a.SumAxis("s", 0)
	if got := s.Shape(); len(got) != 1 || got[0] != 6 {
		t.Fatalf("reduced shape %v", got)
	}
	if got := s.ChunkShape(); got[0] != 3 {
		t.Fatalf("reduced chunking %v", got)
	}
	res := gatherAll(t, s)
	for j := 0; j < 6; j++ {
		want := 0.0
		for i := 0; i < 4; i++ {
			want += float64(i*1000 + j)
		}
		if res.At(j) != want {
			t.Fatalf("sumaxis[%d] = %v, want %v", j, res.At(j), want)
		}
	}
}

func TestMaxAxisDistributed(t *testing.T) {
	a := valueArray("a", []int{4, 6}, []int{2, 3})
	m := a.MaxAxis("m", 1)
	res := gatherAll(t, m)
	for i := 0; i < 4; i++ {
		if res.At(i) != float64(i*1000+5) {
			t.Fatalf("maxaxis[%d] = %v", i, res.At(i))
		}
	}
}

func TestReduceAxisPanics(t *testing.T) {
	a := valueArray("a", []int{4}, []int{2})
	for name, fn := range map[string]func(){
		"axis range": func() { valueArray("b", []int{4, 4}, []int{2, 2}).SumAxis("x", 5) },
		"rank 1":     func() { a.SumAxis("y", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: distributed SumAxis equals local SumAxis for random shapes
// and chunkings.
func TestSumAxisQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(5) + 2
		cols := rng.Intn(5) + 2
		axis := rng.Intn(2)
		a := valueArray("q", []int{rows, cols},
			[]int{rng.Intn(rows) + 1, rng.Intn(cols) + 1})
		s := a.SumAxis("r", axis)
		c, cl := testClusterQuickArr()
		defer c.Close()
		g, sumKey := s.SumAll("tot")
		futs, err := cl.Submit(g, []taskgraph.Key{sumKey})
		if err != nil {
			return false
		}
		vals, err := cl.Gather(futs)
		if err != nil {
			return false
		}
		want := 0.0
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want += float64(i*1000 + j)
			}
		}
		return vals[0].(float64) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
