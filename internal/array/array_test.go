package array

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

func testCluster(t *testing.T, nWorkers int) (*dask.Cluster, *dask.Client) {
	t.Helper()
	cfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(cfg, nWorkers+2)
	wnodes := make([]netsim.NodeID, nWorkers)
	for i := range wnodes {
		wnodes[i] = netsim.NodeID(i + 2)
	}
	c := dask.NewCluster(fabric, dask.DefaultConfig(), 0, wnodes)
	t.Cleanup(c.Close)
	return c, c.NewClient("client", 1, math.Inf(1))
}

// chunkFilled builds an array whose chunk tasks return arrays filled with
// a deterministic value derived from the chunk coordinate.
func chunkFilled(name string, shape, chunks []int) *Chunked {
	return FromChunkTasks(name, shape, chunks, func(idx, ext []int) (taskgraph.Fn, vtime.Dur) {
		v := 0.0
		for _, x := range idx {
			v = v*10 + float64(x+1)
		}
		extent := append([]int(nil), ext...)
		return func([]any) (any, error) {
			a := ndarray.New(extent...)
			a.Fill(v)
			return a, nil
		}, 1e-4
	})
}

func TestGridAndExtents(t *testing.T) {
	a := chunkFilled("a", []int{5, 7}, []int{2, 3})
	g := a.Grid()
	if g[0] != 3 || g[1] != 3 {
		t.Fatalf("Grid = %v", g)
	}
	if a.NumChunks() != 9 {
		t.Fatalf("NumChunks = %d", a.NumChunks())
	}
	ext := a.ChunkExtent([]int{2, 2})
	if ext[0] != 1 || ext[1] != 1 {
		t.Fatalf("edge extent = %v", ext)
	}
	if a.ChunkBytes([]int{0, 0}) != 2*3*8 {
		t.Fatalf("ChunkBytes = %d", a.ChunkBytes([]int{0, 0}))
	}
	if a.ChunkBytes([]int{2, 2}) != 8 {
		t.Fatalf("edge ChunkBytes = %d", a.ChunkBytes([]int{2, 2}))
	}
}

func TestFromKeysExternals(t *testing.T) {
	a := FromKeys("g", []int{2, 4}, []int{1, 2}, func(idx []int) taskgraph.Key {
		return taskgraph.Key(fmt.Sprintf("deisa-g-%d.%d", idx[0], idx[1]))
	})
	if a.Graph().Len() != 0 {
		t.Fatal("external array should have empty graph")
	}
	ext := a.Externals()
	if len(ext) != 4 {
		t.Fatalf("externals = %v", ext)
	}
	if a.ChunkKey(1, 1) != "deisa-g-1.1" {
		t.Fatalf("ChunkKey = %s", a.ChunkKey(1, 1))
	}
}

func TestSumAllAgainstCluster(t *testing.T) {
	_, cl := testCluster(t, 2)
	a := chunkFilled("a", []int{4, 4}, []int{2, 2})
	g, key := a.SumAll("total")
	futs, err := cl.Submit(g, []taskgraph.Key{key})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk values: (0,0)->11*4, (0,1)->12*4, (1,0)->21*4, (1,1)->22*4.
	want := 4.0 * (11 + 12 + 21 + 22)
	if vals[0].(float64) != want {
		t.Fatalf("sum = %v, want %v", vals[0], want)
	}
}

func TestMeanAll(t *testing.T) {
	_, cl := testCluster(t, 2)
	a := chunkFilled("m", []int{2, 2}, []int{2, 2}) // single chunk filled with 11
	g, key := a.MeanAll("avg")
	futs, err := cl.Submit(g, []taskgraph.Key{key})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 11 {
		t.Fatalf("mean = %v, want 11", vals[0])
	}
}

func TestMapElementwise(t *testing.T) {
	_, cl := testCluster(t, 2)
	a := chunkFilled("a", []int{2, 4}, []int{2, 2})
	b := a.Map("b", func(x float64) float64 { return x * 10 })
	g, key := b.SumAll("bsum")
	futs, err := cl.Submit(g, []taskgraph.Key{key})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 * 4 * (11 + 12)
	if vals[0].(float64) != want {
		t.Fatalf("mapped sum = %v, want %v", vals[0], want)
	}
}

func TestSlabTaskAssembles(t *testing.T) {
	_, cl := testCluster(t, 2)
	// (t, X, Y) = (2, 4, 4), chunks (1, 2, 4): two blocks per timestep.
	a := FromChunkTasks("f", []int{2, 4, 4}, []int{1, 2, 4}, func(idx, ext []int) (taskgraph.Fn, vtime.Dur) {
		v := float64(idx[0]*10 + idx[1])
		extent := append([]int(nil), ext...)
		return func([]any) (any, error) {
			arr := ndarray.New(extent...)
			arr.Fill(v)
			return arr, nil
		}, 1e-4
	})
	g := taskgraph.New()
	g.Merge(a.Graph())
	key := a.SlabTask(g, 1)
	futs, err := cl.Submit(g, []taskgraph.Key{key})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	slab := vals[0].(*ndarray.Array)
	if slab.NDim() != 2 || slab.Dim(0) != 4 || slab.Dim(1) != 4 {
		t.Fatalf("slab shape = %v", slab.Shape())
	}
	// Rows 0-1 from block (1,0)=10, rows 2-3 from block (1,1)=11.
	if slab.At(0, 0) != 10 || slab.At(3, 3) != 11 {
		t.Fatalf("slab values wrong: %v", slab)
	}
}

func TestSlabTaskRequiresTimeChunking(t *testing.T) {
	a := chunkFilled("a", []int{4, 4}, []int{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("SlabTask with chunk[0] != 1 did not panic")
		}
	}()
	a.SlabTask(taskgraph.New(), 0)
}

func TestSelectAll(t *testing.T) {
	a := chunkFilled("a", []int{4, 4}, []int{2, 2})
	sel := a.SelectAll()
	if len(sel.Chunks) != 4 {
		t.Fatalf("SelectAll chunks = %d", len(sel.Chunks))
	}
	if sel.Bytes() != 4*4*8 {
		t.Fatalf("Bytes = %d", sel.Bytes())
	}
	if len(sel.Keys()) != 4 {
		t.Fatal("Keys length")
	}
}

func TestSelectRanges(t *testing.T) {
	a := chunkFilled("a", []int{6, 6}, []int{2, 2}) // 3x3 grid
	// Elements [0,2) x [0,6): top row of chunks only.
	sel := a.Select(Range{0, 2}, Range{0, 6})
	if len(sel.Chunks) != 3 {
		t.Fatalf("row selection = %v", sel.Chunks)
	}
	// A single element hits exactly one chunk.
	sel2 := a.Select(Range{3, 4}, Range{5, 6})
	if len(sel2.Chunks) != 1 || sel2.Chunks[0][0] != 1 || sel2.Chunks[0][1] != 2 {
		t.Fatalf("point selection = %v", sel2.Chunks)
	}
	if !sel2.Contains([]int{1, 2}) || sel2.Contains([]int{0, 0}) {
		t.Fatal("Contains wrong")
	}
	// A range straddling a chunk boundary selects both.
	sel3 := a.Select(Range{1, 3}, Range{0, 1})
	if len(sel3.Chunks) != 2 {
		t.Fatalf("straddling selection = %v", sel3.Chunks)
	}
}

func TestSelectPanics(t *testing.T) {
	a := chunkFilled("a", []int{4, 4}, []int{2, 2})
	for name, fn := range map[string]func(){
		"rank":  func() { a.Select(Range{0, 1}) },
		"empty": func() { a.Select(Range{2, 2}, Range{0, 4}) },
		"oob":   func() { a.Select(Range{0, 5}, Range{0, 4}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Select over the full extent equals SelectAll; chunk bytes of
// any selection never exceed the array's total bytes.
func TestSelectQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(8) + 1
		cols := rng.Intn(8) + 1
		cr := rng.Intn(rows) + 1
		cc := rng.Intn(cols) + 1
		a := chunkFilled("q", []int{rows, cols}, []int{cr, cc})
		full := a.Select(Range{0, rows}, Range{0, cols})
		if len(full.Chunks) != a.NumChunks() {
			return false
		}
		r0 := rng.Intn(rows)
		r1 := r0 + 1 + rng.Intn(rows-r0)
		c0 := rng.Intn(cols)
		c1 := c0 + 1 + rng.Intn(cols-c0)
		sub := a.Select(Range{r0, r1}, Range{c0, c1})
		if len(sub.Chunks) == 0 || sub.Bytes() > full.Bytes() {
			return false
		}
		// Every selected chunk truly intersects the range.
		for _, ch := range sub.Chunks {
			lo0 := ch[0] * cr
			hi0 := lo0 + a.ChunkExtent(ch)[0]
			lo1 := ch[1] * cc
			hi1 := lo1 + a.ChunkExtent(ch)[1]
			if hi0 <= r0 || lo0 >= r1 || hi1 <= c0 || lo1 >= c1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name": func() { chunkFilled("", []int{2}, []int{1}) },
		"rank":       func() { chunkFilled("x", []int{2, 2}, []int{1}) },
		"zero":       func() { chunkFilled("x", []int{0}, []int{1}) },
		"bad chunk":  func() { chunkFilled("x", []int{2}, []int{0}) },
		"bad key":    func() { chunkFilled("x", []int{2}, []int{1}).ChunkKey(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExternalArrayEndToEnd(t *testing.T) {
	// Full deisa-style flow at the array level: external chunks declared,
	// analytics submitted ahead of time, data scattered, result correct.
	c, cl := testCluster(t, 2)
	a := FromKeys("gt", []int{2, 2, 2}, []int{1, 2, 2}, func(idx []int) taskgraph.Key {
		return taskgraph.Key(fmt.Sprintf("deisa-gt-%d", idx[0]))
	})
	keys := []taskgraph.Key{"deisa-gt-0", "deisa-gt-1"}
	if _, err := cl.ExternalFutures(keys); err != nil {
		t.Fatal(err)
	}
	g, sumKey := a.SumAll("tot")
	futs, err := cl.Submit(g, []taskgraph.Key{sumKey})
	if err != nil {
		t.Fatal(err)
	}
	bridge := c.NewClient("bridge", 1, math.Inf(1))
	blk0 := ndarray.New(1, 2, 2)
	blk0.Fill(1)
	blk1 := ndarray.New(1, 2, 2)
	blk1.Fill(2)
	if err := bridge.Scatter([]dask.ScatterItem{{Key: "deisa-gt-0", Value: blk0}}, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := bridge.Scatter([]dask.ScatterItem{{Key: "deisa-gt-1", Value: blk1}}, true, 1); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Gather(futs)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].(float64) != 4*1+4*2 {
		t.Fatalf("sum = %v, want 12", vals[0])
	}
}
