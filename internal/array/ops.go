package array

import (
	"fmt"

	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// kernelGrain is the minimum elements per goroutine band when blockwise
// task bodies fan out over the shared ndarray worker pool
// (ndarray.SetWorkers). Partial results combine elementwise into
// disjoint bands, so chunk contents are independent of the worker count.
const kernelGrain = 4096

// Zip combines two identically-shaped, identically-chunked arrays
// elementwise (the dask.array blockwise binary operation).
func Zip(name string, a, b *Chunked, f func(x, y float64) float64) *Chunked {
	if len(a.shape) != len(b.shape) {
		panic("array: Zip rank mismatch")
	}
	for d := range a.shape {
		if a.shape[d] != b.shape[d] || a.chunkShape[d] != b.chunkShape[d] {
			panic(fmt.Sprintf("array: Zip shape/chunk mismatch: %v/%v vs %v/%v",
				a.shape, a.chunkShape, b.shape, b.chunkShape))
		}
	}
	out := a.derive(name, a.shape, a.chunkShape)
	out.graph.Merge(b.graph)
	for k := range b.externals {
		out.externals[k] = true
	}
	a.eachChunk(func(idx []int) {
		key := out.defaultKey(idx)
		cost := vtime.Dur(float64(a.ChunkBytes(idx)) * 2 * DefaultCostPerByte)
		task := out.graph.AddFn(key, []taskgraph.Key{a.ChunkKey(idx...), b.ChunkKey(idx...)},
			func(in []any) (any, error) {
				x, ok := in[0].(*ndarray.Array)
				if !ok {
					return nil, fmt.Errorf("array: Zip left input is %T", in[0])
				}
				y, ok := in[1].(*ndarray.Array)
				if !ok {
					return nil, fmt.Errorf("array: Zip right input is %T", in[1])
				}
				xc, yc := x.Contiguous(), y.Contiguous()
				res := ndarray.New(xc.Shape()...)
				xd, yd, rd := xc.Data(), yc.Data(), res.Data()
				if len(xd) != len(yd) {
					return nil, fmt.Errorf("array: Zip chunk sizes differ: %d vs %d", len(xd), len(yd))
				}
				// Disjoint output bands: bit-identical for any worker
				// count, and virtual task cost is unaffected by real
				// wall-clock parallelism.
				ndarray.ParallelFor(len(rd), kernelGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						rd[i] = f(xd[i], yd[i])
					}
				})
				return res, nil
			}, cost)
		task.OutBytes = a.ChunkBytes(idx)
		out.keys[coordString(idx)] = key
	})
	return out
}

// Add returns the elementwise sum of two arrays.
func Add(name string, a, b *Chunked) *Chunked {
	return Zip(name, a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns the elementwise difference a-b.
func Sub(name string, a, b *Chunked) *Chunked {
	return Zip(name, a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns the elementwise (Hadamard) product.
func Mul(name string, a, b *Chunked) *Chunked {
	return Zip(name, a, b, func(x, y float64) float64 { return x * y })
}

// ReduceAxis reduces the array along one axis with a per-chunk kernel
// and a pairwise combiner, returning a rank-(n-1) chunked array. kernel
// reduces one chunk along the axis (e.g. (*ndarray.Array).SumAxis);
// combine merges two partial results elementwise.
func (a *Chunked) ReduceAxis(name string, axis int,
	kernel func(chunk *ndarray.Array, axis int) *ndarray.Array,
	combine func(x, y float64) float64) *Chunked {
	if axis < 0 || axis >= len(a.shape) {
		panic(fmt.Sprintf("array: ReduceAxis axis %d out of range for rank %d", axis, len(a.shape)))
	}
	outShape := make([]int, 0, len(a.shape)-1)
	outChunks := make([]int, 0, len(a.shape)-1)
	for d := range a.shape {
		if d != axis {
			outShape = append(outShape, a.shape[d])
			outChunks = append(outChunks, a.chunkShape[d])
		}
	}
	if len(outShape) == 0 {
		panic("array: ReduceAxis on rank-1 arrays; use SumAll-style reductions")
	}
	out := a.derive(name, outShape, outChunks)
	grid := a.Grid()
	out.eachChunk(func(oidx []int) {
		// Input chunks along the reduced axis at this output position.
		var deps []taskgraph.Key
		var bytes int64
		for k := 0; k < grid[axis]; k++ {
			iidx := make([]int, len(a.shape))
			oi := 0
			for d := range a.shape {
				if d == axis {
					iidx[d] = k
				} else {
					iidx[d] = oidx[oi]
					oi++
				}
			}
			deps = append(deps, a.ChunkKey(iidx...))
			bytes += a.ChunkBytes(iidx)
		}
		key := out.defaultKey(oidx)
		cost := vtime.Dur(float64(bytes) * DefaultCostPerByte)
		task := out.graph.AddFn(key, deps, func(in []any) (any, error) {
			var acc *ndarray.Array
			for _, v := range in {
				chunk, ok := v.(*ndarray.Array)
				if !ok {
					return nil, fmt.Errorf("array: ReduceAxis input is %T", v)
				}
				part := kernel(chunk, axis)
				if acc == nil {
					acc = part.Copy()
					continue
				}
				ac, pc := acc.Contiguous(), part.Contiguous()
				ad, pd := ac.Data(), pc.Data()
				if len(ad) != len(pd) {
					return nil, fmt.Errorf("array: ReduceAxis partials differ: %d vs %d", len(ad), len(pd))
				}
				ndarray.ParallelFor(len(ad), kernelGrain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						ad[i] = combine(ad[i], pd[i])
					}
				})
				acc = ac
			}
			return acc, nil
		}, cost)
		task.OutBytes = out.ChunkBytes(oidx)
		out.keys[coordString(oidx)] = key
	})
	return out
}

// SumAxis reduces one axis by summation.
func (a *Chunked) SumAxis(name string, axis int) *Chunked {
	return a.ReduceAxis(name, axis,
		func(c *ndarray.Array, ax int) *ndarray.Array { return c.SumAxis(ax) },
		func(x, y float64) float64 { return x + y })
}

// MaxAxis reduces one axis by maximum.
func (a *Chunked) MaxAxis(name string, axis int) *Chunked {
	return a.ReduceAxis(name, axis,
		func(c *ndarray.Array, ax int) *ndarray.Array { return c.MaxAxis(ax) },
		func(x, y float64) float64 {
			if x > y {
				return x
			}
			return y
		})
}
