package array

import (
	"fmt"

	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// Rechunk returns a new array with the same global shape but a different
// chunking — "an eventual new decomposition is possible on the analytics
// side using the rechunking functionality of Dask arrays" (§2.4.1). Each
// output chunk is assembled by a task depending on every input chunk it
// overlaps; chunk values must be *ndarray.Array.
func (a *Chunked) Rechunk(name string, chunkShape []int) *Chunked {
	if len(chunkShape) != len(a.shape) {
		panic(fmt.Sprintf("array: rechunk shape %v has wrong rank for %v", chunkShape, a.shape))
	}
	out := a.derive(name, a.shape, chunkShape)
	rank := len(a.shape)
	out.eachChunk(func(idx []int) {
		// Element range of the output chunk.
		lo := make([]int, rank)
		hi := make([]int, rank)
		ext := out.ChunkExtent(idx)
		for d := 0; d < rank; d++ {
			lo[d] = idx[d] * chunkShape[d]
			hi[d] = lo[d] + ext[d]
		}
		// Input chunks overlapping that range.
		type src struct {
			idx []int
		}
		var deps []taskgraph.Key
		var srcs []src
		var bytes int64
		a.eachChunk(func(in []int) {
			for d := 0; d < rank; d++ {
				s := in[d] * a.chunkShape[d]
				e := s + a.ChunkExtent(in)[d]
				if e <= lo[d] || s >= hi[d] {
					return
				}
			}
			deps = append(deps, a.ChunkKey(in...))
			srcs = append(srcs, src{idx: append([]int(nil), in...)})
			bytes += a.ChunkBytes(in)
		})
		key := out.defaultKey(idx)
		outExt := append([]int(nil), ext...)
		outLo := append([]int(nil), lo...)
		inChunk := a.ChunkShape()
		cost := vtime.Dur(float64(bytes) * DefaultCostPerByte)
		task := out.graph.AddFn(key, deps, func(in []any) (any, error) {
			res := ndarray.New(outExt...)
			for i, s := range srcs {
				chunk, ok := in[i].(*ndarray.Array)
				if !ok {
					return nil, fmt.Errorf("array: rechunk input %v is %T, want *ndarray.Array", s.idx, in[i])
				}
				// Overlap between input chunk s and the output window.
				srcRanges := make([]ndarray.Range, rank)
				dstRanges := make([]ndarray.Range, rank)
				for d := 0; d < rank; d++ {
					inLo := s.idx[d] * inChunk[d]
					oLo := maxInt(inLo, outLo[d])
					oHi := minInt(inLo+chunk.Dim(d), outLo[d]+outExt[d])
					srcRanges[d] = ndarray.Range{Start: oLo - inLo, Stop: oHi - inLo}
					dstRanges[d] = ndarray.Range{Start: oLo - outLo[d], Stop: oHi - outLo[d]}
				}
				res.Slice(dstRanges...).CopyFrom(chunk.Slice(srcRanges...))
			}
			return res, nil
		}, cost)
		task.OutBytes = out.ChunkBytes(idx)
		out.keys[coordString(idx)] = key
	})
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
