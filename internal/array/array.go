// Package array implements chunked distributed arrays on top of the dask
// runtime, mirroring dask.array: an array is a chunk grid whose blocks
// are produced by graph tasks (or by external tasks executed by a
// simulation), plus graph-building operations — blockwise maps,
// reductions, slab assembly, and chunk-level selection. The deisa layer
// (package core) builds a Chunked array from a virtual-array descriptor
// so that analytics code manipulates simulation output exactly like any
// other distributed array.
package array

import (
	"fmt"
	"strings"

	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// DefaultCostPerByte models per-byte task execution cost (memory-bound
// kernels around 1 GB/s effective).
const DefaultCostPerByte = 1e-9

// Chunked is a distributed n-dimensional array split into a regular chunk
// grid. Chunk (i,j,...) covers the half-open hyper-rectangle
// [i*chunk, min((i+1)*chunk, shape)) in each dimension.
type Chunked struct {
	name       string
	shape      []int
	chunkShape []int
	graph      *taskgraph.Graph
	keys       map[string]taskgraph.Key
	externals  map[taskgraph.Key]bool
	byteScale  int64 // modelled bytes per stored element / 8 (default 1)
}

// New creates an empty chunked array skeleton; chunks are attached by the
// From* constructors.
func newChunked(name string, shape, chunkShape []int) *Chunked {
	if name == "" {
		panic("array: name must be non-empty")
	}
	if len(shape) == 0 || len(shape) != len(chunkShape) {
		panic(fmt.Sprintf("array: shape %v and chunkShape %v must have equal non-zero rank", shape, chunkShape))
	}
	for i := range shape {
		if shape[i] <= 0 || chunkShape[i] <= 0 {
			panic(fmt.Sprintf("array: non-positive extent in shape %v / chunks %v", shape, chunkShape))
		}
	}
	return &Chunked{
		name:       name,
		shape:      append([]int(nil), shape...),
		chunkShape: append([]int(nil), chunkShape...),
		graph:      taskgraph.New(),
		keys:       map[string]taskgraph.Key{},
		externals:  map[taskgraph.Key]bool{},
		byteScale:  1,
	}
}

// SetByteScale declares that each element models `scale` real elements:
// ChunkBytes (and every cost derived from it) is multiplied by scale.
// Harness code uses this to run small arrays that stand in for
// paper-scale blocks.
func (a *Chunked) SetByteScale(scale int64) *Chunked {
	if scale <= 0 {
		panic("array: byte scale must be positive")
	}
	a.byteScale = scale
	return a
}

// ByteScale returns the modelled-size multiplier.
func (a *Chunked) ByteScale() int64 { return a.byteScale }

// FromKeys builds an array whose chunks are externally produced keys
// (external tasks or scattered data); keyAt maps a chunk coordinate to
// its key.
func FromKeys(name string, shape, chunkShape []int, keyAt func(idx []int) taskgraph.Key) *Chunked {
	a := newChunked(name, shape, chunkShape)
	a.eachChunk(func(idx []int) {
		k := keyAt(idx)
		a.keys[coordString(idx)] = k
		a.externals[k] = true
	})
	return a
}

// FromChunkTasks builds an array whose chunks are computed by graph
// tasks; mk returns the task body and cost for each chunk coordinate.
// The chunk extent (trimmed at array edges) is passed for convenience.
func FromChunkTasks(name string, shape, chunkShape []int,
	mk func(idx, extent []int) (taskgraph.Fn, vtime.Dur)) *Chunked {
	a := newChunked(name, shape, chunkShape)
	a.eachChunk(func(idx []int) {
		key := a.defaultKey(idx)
		fn, cost := mk(append([]int(nil), idx...), a.ChunkExtent(idx))
		a.graph.AddFn(key, nil, fn, cost)
		a.keys[coordString(idx)] = key
	})
	return a
}

func coordString(idx []int) string {
	parts := make([]string, len(idx))
	for i, x := range idx {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ".")
}

func (a *Chunked) defaultKey(idx []int) taskgraph.Key {
	return taskgraph.Key(a.name + "-" + coordString(idx))
}

// Name returns the array name.
func (a *Chunked) Name() string { return a.name }

// Shape returns the global shape.
func (a *Chunked) Shape() []int { return append([]int(nil), a.shape...) }

// ChunkShape returns the regular chunk shape.
func (a *Chunked) ChunkShape() []int { return append([]int(nil), a.chunkShape...) }

// Grid returns the number of chunks per dimension.
func (a *Chunked) Grid() []int {
	g := make([]int, len(a.shape))
	for i := range g {
		g[i] = (a.shape[i] + a.chunkShape[i] - 1) / a.chunkShape[i]
	}
	return g
}

// NumChunks returns the total number of chunks.
func (a *Chunked) NumChunks() int {
	n := 1
	for _, g := range a.Grid() {
		n *= g
	}
	return n
}

// ChunkExtent returns the in-bounds shape of the chunk at idx.
func (a *Chunked) ChunkExtent(idx []int) []int {
	grid := a.Grid()
	ext := make([]int, len(idx))
	for i, x := range idx {
		if x < 0 || x >= grid[i] {
			panic(fmt.Sprintf("array: chunk %v outside grid %v", idx, grid))
		}
		ext[i] = a.chunkShape[i]
		if rem := a.shape[i] - x*a.chunkShape[i]; rem < ext[i] {
			ext[i] = rem
		}
	}
	return ext
}

// ChunkBytes returns the modelled byte size of the chunk at idx.
func (a *Chunked) ChunkBytes(idx []int) int64 {
	n := int64(1)
	for _, e := range a.ChunkExtent(idx) {
		n *= int64(e)
	}
	return n * 8 * a.byteScale
}

// ChunkKey returns the key producing the chunk at idx.
func (a *Chunked) ChunkKey(idx ...int) taskgraph.Key {
	k, ok := a.keys[coordString(idx)]
	if !ok {
		panic(fmt.Sprintf("array: no chunk at %v", idx))
	}
	return k
}

// Graph returns the graph holding the array's tasks. Callers must not
// mutate tasks they did not add.
func (a *Chunked) Graph() *taskgraph.Graph { return a.graph }

// Externals returns the set of chunk keys satisfied outside the graph.
func (a *Chunked) Externals() map[taskgraph.Key]bool {
	out := make(map[taskgraph.Key]bool, len(a.externals))
	for k := range a.externals {
		out[k] = true
	}
	return out
}

// eachChunk visits every chunk coordinate in row-major order.
func (a *Chunked) eachChunk(f func(idx []int)) {
	grid := a.Grid()
	idx := make([]int, len(grid))
	for {
		f(idx)
		d := len(idx) - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < grid[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// derive creates a result array sharing this array's graph (merged).
func (a *Chunked) derive(name string, shape, chunkShape []int) *Chunked {
	out := newChunked(name, shape, chunkShape)
	out.byteScale = a.byteScale
	out.graph.Merge(a.graph)
	for k := range a.externals {
		out.externals[k] = true
	}
	return out
}

// Map returns a new array whose chunks apply f elementwise to this
// array's chunks (blockwise, no communication).
func (a *Chunked) Map(name string, f func(x float64) float64) *Chunked {
	out := a.derive(name, a.shape, a.chunkShape)
	a.eachChunk(func(idx []int) {
		dep := a.ChunkKey(idx...)
		key := out.defaultKey(idx)
		cost := vtime.Dur(float64(a.ChunkBytes(idx)) * DefaultCostPerByte)
		out.graph.AddFn(key, []taskgraph.Key{dep}, func(in []any) (any, error) {
			arr, ok := in[0].(*ndarray.Array)
			if !ok {
				return nil, fmt.Errorf("array: chunk %v is %T, want *ndarray.Array", idx, in[0])
			}
			return arr.Apply(f), nil
		}, cost)
		out.keys[coordString(idx)] = key
	})
	return out
}

// SumAll returns the key of a task computing the sum of all elements
// (per-chunk partial sums, then one combine task), and the graph/externals
// needed to submit it.
func (a *Chunked) SumAll(name string) (*taskgraph.Graph, taskgraph.Key) {
	g := taskgraph.New()
	g.Merge(a.graph)
	var partials []taskgraph.Key
	a.eachChunk(func(idx []int) {
		dep := a.ChunkKey(idx...)
		key := taskgraph.Key(fmt.Sprintf("%s-part-%s", name, coordString(idx)))
		cost := vtime.Dur(float64(a.ChunkBytes(idx)) * DefaultCostPerByte)
		g.AddFn(key, []taskgraph.Key{dep}, func(in []any) (any, error) {
			arr, ok := in[0].(*ndarray.Array)
			if !ok {
				return nil, fmt.Errorf("array: chunk %v is %T, want *ndarray.Array", idx, in[0])
			}
			return arr.Sum(), nil
		}, cost)
		partials = append(partials, key)
	})
	root := taskgraph.Key(name + "-sum")
	g.AddFn(root, partials, func(in []any) (any, error) {
		var s float64
		for _, x := range in {
			s += x.(float64)
		}
		return s, nil
	}, vtime.Dur(float64(len(partials))*1e-7))
	return g, root
}

// MeanAll returns a graph and key computing the global mean.
func (a *Chunked) MeanAll(name string) (*taskgraph.Graph, taskgraph.Key) {
	g, sumKey := a.SumAll(name)
	n := 1
	for _, s := range a.shape {
		n *= s
	}
	root := taskgraph.Key(name + "-mean")
	g.AddFn(root, []taskgraph.Key{sumKey}, func(in []any) (any, error) {
		return in[0].(float64) / float64(n), nil
	}, 1e-7)
	return g, root
}

// SlabTask adds a task to g assembling all chunks whose leading-dimension
// chunk index equals t into one dense array of shape shape[1:] (the
// leading dimension must have chunk extent 1 — the deisa spatiotemporal
// layout, where dimension 0 is time). It returns the slab task's key.
func (a *Chunked) SlabTask(g *taskgraph.Graph, t int) taskgraph.Key {
	if a.chunkShape[0] != 1 {
		panic("array: SlabTask requires leading chunk extent 1 (time dimension)")
	}
	grid := a.Grid()
	if t < 0 || t >= grid[0] {
		panic(fmt.Sprintf("array: slab %d outside grid %v", t, grid))
	}
	slabShape := a.shape[1:]
	chunkExts := a.chunkShape[1:]

	type blockRef struct {
		idx []int
	}
	var deps []taskgraph.Key
	var blocks []blockRef
	var bytes int64
	a.eachChunk(func(idx []int) {
		if idx[0] != t {
			return
		}
		deps = append(deps, a.ChunkKey(idx...))
		blocks = append(blocks, blockRef{idx: append([]int(nil), idx...)})
		bytes += a.ChunkBytes(idx)
	})
	key := taskgraph.Key(fmt.Sprintf("%s-slab-%d", a.name, t))
	cost := vtime.Dur(float64(bytes) * DefaultCostPerByte)
	task := g.AddFn(key, deps, func(in []any) (any, error) {
		out := ndarray.New(slabShape...)
		for i, b := range blocks {
			chunk, ok := in[i].(*ndarray.Array)
			if !ok {
				return nil, fmt.Errorf("array: slab input %v is %T, want *ndarray.Array", b.idx, in[i])
			}
			// Chunk arrays may carry the leading time dimension of
			// extent 1; squeeze it.
			if chunk.NDim() == len(slabShape)+1 && chunk.Dim(0) == 1 {
				chunk = chunk.Reshape(chunk.Shape()[1:]...)
			}
			ranges := make([]ndarray.Range, len(slabShape))
			for d := range slabShape {
				start := b.idx[d+1] * chunkExts[d]
				ranges[d] = ndarray.Range{Start: start, Stop: start + chunk.Dim(d)}
			}
			out.Slice(ranges...).CopyFrom(chunk)
		}
		return out, nil
	}, cost)
	task.OutBytes = bytes
	return key
}

// Selection identifies a subset of chunks (the unit of the deisa
// contract: bridges ship whole blocks).
type Selection struct {
	arr    *Chunked
	Chunks [][]int // chunk coordinates, row-major order
}

// Range selects [Start, Stop) element indices in one dimension.
type Range struct {
	Start, Stop int
}

// SelectAll selects every chunk.
func (a *Chunked) SelectAll() *Selection {
	sel := &Selection{arr: a}
	a.eachChunk(func(idx []int) {
		sel.Chunks = append(sel.Chunks, append([]int(nil), idx...))
	})
	return sel
}

// Select returns the chunks intersecting the given element ranges (one
// per dimension) — the [] operator of the deisa arrays: a selection at
// block granularity used to sign contracts.
func (a *Chunked) Select(ranges ...Range) *Selection {
	if len(ranges) != len(a.shape) {
		panic(fmt.Sprintf("array: %d ranges for rank-%d array", len(ranges), len(a.shape)))
	}
	for i, r := range ranges {
		if r.Start < 0 || r.Stop > a.shape[i] || r.Start >= r.Stop {
			panic(fmt.Sprintf("array: range [%d,%d) invalid for dim %d of extent %d", r.Start, r.Stop, i, a.shape[i]))
		}
	}
	sel := &Selection{arr: a}
	a.eachChunk(func(idx []int) {
		for d, r := range ranges {
			lo := idx[d] * a.chunkShape[d]
			hi := lo + a.ChunkExtent(idx)[d]
			if hi <= r.Start || lo >= r.Stop {
				return
			}
		}
		sel.Chunks = append(sel.Chunks, append([]int(nil), idx...))
	})
	return sel
}

// Contains reports whether the selection includes the chunk at idx.
func (s *Selection) Contains(idx []int) bool {
	c := coordString(idx)
	for _, ch := range s.Chunks {
		if coordString(ch) == c {
			return true
		}
	}
	return false
}

// Keys returns the keys of the selected chunks.
func (s *Selection) Keys() []taskgraph.Key {
	out := make([]taskgraph.Key, len(s.Chunks))
	for i, c := range s.Chunks {
		out[i] = s.arr.ChunkKey(c...)
	}
	return out
}

// Bytes returns the total modelled size of the selected chunks.
func (s *Selection) Bytes() int64 {
	var n int64
	for _, c := range s.Chunks {
		n += s.arr.ChunkBytes(c)
	}
	return n
}
