// Package pfs simulates a Lustre-like parallel file system: a metadata
// server plus a set of object storage targets (OSTs) over which file data
// is striped. Every OST and the MDS are vtime.Resources, so concurrent
// writers share the file system's aggregate bandwidth with FCFS queueing —
// the effect that makes the paper's post hoc baseline stop scaling
// (Figures 2a/3a: per-process write bandwidth halves whenever the process
// count doubles, because total PFS bandwidth is fixed).
//
// File contents are held in memory; virtual time is the only "cost" of
// I/O. All methods are safe for concurrent use.
package pfs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"deisago/internal/metrics"
	"deisago/internal/vtime"
)

// Config describes the file system hardware.
type Config struct {
	// OSTs is the number of object storage targets.
	OSTs int
	// OSTBandwidth is each OST's bandwidth in bytes/second. Aggregate
	// file-system bandwidth is OSTs*OSTBandwidth.
	OSTBandwidth float64
	// StripeSize is the striping unit in bytes.
	StripeSize int64
	// MetaLatency is the metadata-server service time per operation
	// (create, open, stat) in seconds.
	MetaLatency float64
}

// DefaultConfig returns a configuration calibrated so the simulated
// machine's post hoc writes saturate around 0.8 GiB/s aggregate, matching
// the magnitude the paper observed on Irene's Lustre for this workload.
func DefaultConfig() Config {
	return Config{
		OSTs:         8,
		OSTBandwidth: 100 << 20, // 100 MiB/s each -> 800 MiB/s aggregate
		StripeSize:   1 << 20,
		MetaLatency:  2e-3,
	}
}

type file struct {
	mu   sync.Mutex
	data []byte
}

func (f *file) writeAt(off int64, p []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if int64(len(f.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], p)
}

// readAt copies the byte range into buf when it has sufficient capacity,
// allocating a fresh slice otherwise.
func (f *file) readAt(off, n int64, buf []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off+n > int64(len(f.data)) {
		return nil, fmt.Errorf("pfs: read [%d,%d) beyond EOF %d", off, off+n, len(f.data))
	}
	var out []byte
	if int64(cap(buf)) >= n {
		out = buf[:n]
	} else {
		out = make([]byte, n)
	}
	copy(out, f.data[off:off+n])
	return out, nil
}

// FS is a simulated parallel file system.
type FS struct {
	cfg  Config
	mds  *vtime.Resource
	osts []*vtime.Resource

	mu    sync.Mutex
	files map[string]*file

	// Traffic totals are atomics so concurrent readers/writers meet only
	// on the OST resources the model says they share, not on bookkeeping.
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	// Metric handles, resolved once by UseMetrics (nil and no-op when no
	// registry is attached). Published before I/O starts; the data path
	// reads them unsynchronized on that happens-before.
	reg         *metrics.Registry
	ostBytes    []*metrics.Counter // per-OST traffic, index-aligned with osts
	mdsOps      *metrics.Counter
	mReadBytes  *metrics.Counter
	mWriteBytes *metrics.Counter
}

// New creates an empty file system.
func New(cfg Config) *FS {
	if cfg.OSTs <= 0 || cfg.OSTBandwidth <= 0 || cfg.StripeSize <= 0 {
		panic("pfs: OSTs, OSTBandwidth and StripeSize must be positive")
	}
	fs := &FS{
		cfg:   cfg,
		mds:   vtime.NewResource("mds"),
		files: make(map[string]*file),
	}
	for i := 0; i < cfg.OSTs; i++ {
		fs.osts = append(fs.osts, vtime.NewResource(fmt.Sprintf("ost%d", i)))
	}
	return fs
}

// Config returns the file system configuration.
func (fs *FS) Config() Config { return fs.cfg }

// UseMetrics attaches a registry: reads and writes count bytes per
// operation and per OST (component "pfs"), metadata operations are
// counted, and RecordUtilization can sample OST busy fractions. Call
// before I/O starts.
func (fs *FS) UseMetrics(r *metrics.Registry) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.reg = r
	fs.mdsOps = r.Counter("pfs", "mds_ops")
	fs.mReadBytes = r.Counter("pfs", "bytes", metrics.L("op", "read"))
	fs.mWriteBytes = r.Counter("pfs", "bytes", metrics.L("op", "write"))
	fs.ostBytes = make([]*metrics.Counter, len(fs.osts))
	for i := range fs.osts {
		fs.ostBytes[i] = r.Counter("pfs", "ost_bytes", metrics.LInt("ost", i))
	}
}

// RecordUtilization samples each OST's busy fraction of [0, at] and the
// file system's achieved share of its aggregate bandwidth. Call once
// after the workload has drained.
func (fs *FS) RecordUtilization(at vtime.Time) {
	fs.mu.Lock()
	reg := fs.reg
	fs.mu.Unlock()
	moved := fs.bytesRead.Load() + fs.bytesWritten.Load()
	if reg == nil || at <= 0 {
		return
	}
	for i, o := range fs.osts {
		if b := o.Busy(); b > 0 {
			reg.Gauge("pfs", "ost_utilization", metrics.LInt("ost", i)).Set(b/at, at)
		}
	}
	reg.Gauge("pfs", "aggregate_bw_share").
		Set(float64(moved)/at/fs.AggregateBandwidth(), at)
}

// AggregateBandwidth returns the file system's total bandwidth in
// bytes/second.
func (fs *FS) AggregateBandwidth() float64 {
	return float64(fs.cfg.OSTs) * fs.cfg.OSTBandwidth
}

// Create makes (or truncates) a file, charging one metadata operation.
// It returns the completion time.
func (fs *FS) Create(path string, at vtime.Time) vtime.Time {
	_, end := fs.mds.Acquire(at, fs.cfg.MetaLatency)
	fs.mu.Lock()
	fs.files[path] = &file{}
	fs.mdsOps.Inc()
	fs.mu.Unlock()
	return end
}

// Exists reports whether a file exists.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Remove deletes a file, charging one metadata operation.
func (fs *FS) Remove(path string, at vtime.Time) (vtime.Time, error) {
	fs.mu.Lock()
	_, ok := fs.files[path]
	delete(fs.files, path)
	if ok {
		fs.mdsOps.Inc()
	}
	fs.mu.Unlock()
	if !ok {
		return at, fmt.Errorf("pfs: remove %s: no such file", path)
	}
	_, end := fs.mds.Acquire(at, fs.cfg.MetaLatency)
	return end, nil
}

// List returns all file paths in lexical order.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Size returns a file's length in bytes, or an error if it does not exist.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("pfs: stat %s: no such file", path)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data)), nil
}

func (fs *FS) lookup(path string) (*file, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("pfs: %s: no such file", path)
	}
	return f, nil
}

// stripeCost charges each OST touched by the byte range [off, off+n) for
// its share of the transfer and returns the completion time.
func (fs *FS) stripeCost(off, n int64, at vtime.Time) vtime.Time {
	if n == 0 {
		return at
	}
	ostBytes := fs.ostBytes
	end := at
	ss := fs.cfg.StripeSize
	for pos := off; pos < off+n; {
		stripe := pos / ss
		stripeEnd := (stripe + 1) * ss
		chunkEnd := off + n
		if stripeEnd < chunkEnd {
			chunkEnd = stripeEnd
		}
		bytes := chunkEnd - pos
		idx := int(stripe) % len(fs.osts)
		if ostBytes != nil {
			ostBytes[idx].Add(bytes)
		}
		_, e := fs.osts[idx].Acquire(at, float64(bytes)/fs.cfg.OSTBandwidth)
		if e > end {
			end = e
		}
		pos = chunkEnd
	}
	return end
}

// WriteAt writes p at the given offset, growing the file as needed, and
// returns the virtual completion time.
func (fs *FS) WriteAt(path string, off int64, p []byte, at vtime.Time) (vtime.Time, error) {
	return fs.WriteAtCost(path, off, p, int64(len(p)), at)
}

// WriteAtCost is WriteAt with an explicit modelled transfer size: the
// stored bytes are p, but the OSTs are charged for costBytes. Harness
// code uses it to let small test data stand in for paper-scale blocks.
func (fs *FS) WriteAtCost(path string, off int64, p []byte, costBytes int64, at vtime.Time) (vtime.Time, error) {
	if off < 0 {
		return at, fmt.Errorf("pfs: negative offset %d", off)
	}
	if costBytes < 0 {
		return at, fmt.Errorf("pfs: negative cost size %d", costBytes)
	}
	f, err := fs.lookup(path)
	if err != nil {
		return at, err
	}
	f.writeAt(off, p)
	fs.bytesWritten.Add(costBytes)
	fs.mWriteBytes.Add(costBytes)
	return fs.stripeCost(off, costBytes, at), nil
}

// ReadAt reads n bytes at the given offset and returns the data and the
// virtual completion time.
func (fs *FS) ReadAt(path string, off, n int64, at vtime.Time) ([]byte, vtime.Time, error) {
	return fs.ReadAtCost(path, off, n, n, at)
}

// ReadAtCost is ReadAt with an explicit modelled transfer size (see
// WriteAtCost).
func (fs *FS) ReadAtCost(path string, off, n, costBytes int64, at vtime.Time) ([]byte, vtime.Time, error) {
	return fs.ReadAtCostBuf(path, off, n, costBytes, nil, at)
}

// ReadAtCostBuf is ReadAtCost reading into buf when buf has capacity for
// n bytes (a fresh slice is allocated otherwise), so callers with a
// staging-buffer pool avoid a per-read allocation. The returned slice is
// buf's prefix in the reuse case.
func (fs *FS) ReadAtCostBuf(path string, off, n, costBytes int64, buf []byte, at vtime.Time) ([]byte, vtime.Time, error) {
	if costBytes < 0 {
		return nil, at, fmt.Errorf("pfs: negative cost size %d", costBytes)
	}
	f, err := fs.lookup(path)
	if err != nil {
		return nil, at, err
	}
	data, err := f.readAt(off, n, buf)
	if err != nil {
		return nil, at, err
	}
	fs.bytesRead.Add(costBytes)
	fs.mReadBytes.Add(costBytes)
	return data, fs.stripeCost(off, costBytes, at), nil
}

// Traffic returns total bytes read and written since creation or Reset.
func (fs *FS) Traffic() (read, written int64) {
	return fs.bytesRead.Load(), fs.bytesWritten.Load()
}

// ReleaseBefore promises that no future I/O on this file system will be
// issued at a virtual time before t, letting the MDS and every OST
// compact booking history below that watermark (see vtime.Resource
// Release). The harness calls it at phase boundaries — e.g. after a post
// hoc write phase completes at simEnd, every analytics-phase read arrives
// at or after simEnd — so interval tables stay bounded by the live phase
// instead of growing with run length.
func (fs *FS) ReleaseBefore(t vtime.Time) {
	fs.mds.Release(t)
	for _, o := range fs.osts {
		o.Release(t)
	}
}

// ResetTime returns all OSTs and the MDS to idle at time zero without
// touching file contents, and clears traffic counters.
func (fs *FS) ResetTime() {
	fs.mds.Reset()
	for _, o := range fs.osts {
		o.Reset()
	}
	fs.bytesRead.Store(0)
	fs.bytesWritten.Store(0)
}
