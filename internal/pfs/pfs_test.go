package pfs

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{OSTs: 4, OSTBandwidth: 1e6, StripeSize: 1024, MetaLatency: 1e-3}
}

func TestCreateWriteRead(t *testing.T) {
	fs := New(testConfig())
	end := fs.Create("a", 0)
	if end != 1e-3 {
		t.Fatalf("Create end = %v", end)
	}
	data := []byte("hello parallel world")
	end2, err := fs.WriteAt("a", 0, data, end)
	if err != nil {
		t.Fatal(err)
	}
	if end2 <= end {
		t.Fatal("write took no time")
	}
	got, _, err := fs.ReadAt("a", 0, int64(len(data)), end2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestWriteGrowsAndOverwrites(t *testing.T) {
	fs := New(testConfig())
	fs.Create("f", 0)
	fs.WriteAt("f", 10, []byte{1, 2, 3}, 0)
	sz, err := fs.Size("f")
	if err != nil || sz != 13 {
		t.Fatalf("Size = %d, err %v", sz, err)
	}
	fs.WriteAt("f", 11, []byte{9}, 0)
	got, _, _ := fs.ReadAt("f", 10, 3, 0)
	if !bytes.Equal(got, []byte{1, 9, 3}) {
		t.Fatalf("overwrite result %v", got)
	}
	// Holes read as zero.
	hole, _, _ := fs.ReadAt("f", 0, 10, 0)
	for _, b := range hole {
		if b != 0 {
			t.Fatal("hole not zero-filled")
		}
	}
}

func TestReadBeyondEOF(t *testing.T) {
	fs := New(testConfig())
	fs.Create("f", 0)
	fs.WriteAt("f", 0, []byte{1}, 0)
	if _, _, err := fs.ReadAt("f", 0, 2, 0); err == nil {
		t.Fatal("read beyond EOF should error")
	}
}

func TestMissingFile(t *testing.T) {
	fs := New(testConfig())
	if _, err := fs.WriteAt("nope", 0, []byte{1}, 0); err == nil {
		t.Fatal("write to missing file should error")
	}
	if _, _, err := fs.ReadAt("nope", 0, 1, 0); err == nil {
		t.Fatal("read of missing file should error")
	}
	if _, err := fs.Size("nope"); err == nil {
		t.Fatal("stat of missing file should error")
	}
	if _, err := fs.Remove("nope", 0); err == nil {
		t.Fatal("remove of missing file should error")
	}
}

func TestRemoveAndList(t *testing.T) {
	fs := New(testConfig())
	fs.Create("b", 0)
	fs.Create("a", 0)
	got := fs.List()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("List = %v", got)
	}
	if _, err := fs.Remove("a", 0); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a") || !fs.Exists("b") {
		t.Fatal("Remove/Exists inconsistent")
	}
}

func TestStripingUsesAllOSTs(t *testing.T) {
	cfg := testConfig() // 4 OSTs, 1 MB/s each, 1 KiB stripes
	fs := New(cfg)
	fs.Create("f", 0)
	// 4 KiB spans all 4 OSTs once: parallel write should cost ~1 stripe
	// time, not 4.
	end, err := fs.WriteAt("f", 0, make([]byte, 4096), 0)
	if err != nil {
		t.Fatal(err)
	}
	oneStripe := 1024 / cfg.OSTBandwidth
	if math.Abs(end-oneStripe) > 1e-9 {
		t.Fatalf("striped write end = %v, want %v", end, oneStripe)
	}
}

func TestAggregateBandwidthCap(t *testing.T) {
	cfg := testConfig()
	fs := New(cfg)
	fs.Create("f", 0)
	// Write 64 KiB: no matter the striping, total service is
	// bytes/aggregate-bandwidth when spread perfectly.
	total := int64(64 << 10)
	end, _ := fs.WriteAt("f", 0, make([]byte, total), 0)
	want := float64(total) / fs.AggregateBandwidth()
	if math.Abs(end-want) > 1e-9 {
		t.Fatalf("write end = %v, want %v", end, want)
	}
}

func TestContentionBetweenWriters(t *testing.T) {
	cfg := testConfig()
	fs := New(cfg)
	fs.Create("a", 0)
	fs.Create("b", 0)
	// Two writers, same offsets (same OSTs), departing together: second
	// queue behind the first.
	n := int64(8 << 10)
	e1, _ := fs.WriteAt("a", 0, make([]byte, n), 0)
	e2, _ := fs.WriteAt("b", 0, make([]byte, n), 0)
	if e2 < 2*e1*0.99 {
		t.Fatalf("no contention: first=%v second=%v", e1, e2)
	}
}

func TestTraffic(t *testing.T) {
	fs := New(testConfig())
	fs.Create("f", 0)
	fs.WriteAt("f", 0, make([]byte, 100), 0)
	fs.ReadAt("f", 0, 40, 0)
	r, w := fs.Traffic()
	if r != 40 || w != 100 {
		t.Fatalf("Traffic = (%d,%d)", r, w)
	}
	fs.ResetTime()
	r, w = fs.Traffic()
	if r != 0 || w != 0 {
		t.Fatal("ResetTime did not clear traffic")
	}
}

func TestZeroByteOps(t *testing.T) {
	fs := New(testConfig())
	fs.Create("f", 0)
	end, err := fs.WriteAt("f", 0, nil, 5)
	if err != nil || end != 5 {
		t.Fatalf("zero write end=%v err=%v", end, err)
	}
	got, end, err := fs.ReadAt("f", 0, 0, 5)
	if err != nil || end != 5 || len(got) != 0 {
		t.Fatalf("zero read got=%v end=%v err=%v", got, end, err)
	}
}

// Property: write-then-read returns exactly the written bytes for random
// offsets and sizes, and virtual time never decreases.
func TestWriteReadRoundtripQuick(t *testing.T) {
	fs := New(testConfig())
	fs.Create("q", 0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		off := int64(rng.Intn(8192))
		n := rng.Intn(4096) + 1
		p := make([]byte, n)
		rng.Read(p)
		at := rng.Float64() * 10
		end, err := fs.WriteAt("q", off, p, at)
		if err != nil || end < at {
			return false
		}
		got, end2, err := fs.ReadAt("q", off, int64(n), end)
		if err != nil || end2 < end {
			return false
		}
		return bytes.Equal(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{OSTs: 0, OSTBandwidth: 1, StripeSize: 1})
}
