// Package core implements the paper's contribution: the deisa bridging
// layer that couples an MPI simulation (producer) with the Dask-like
// distributed analytics runtime (consumer) through external tasks.
//
// The pieces map directly onto the paper's §2:
//
//   - VirtualArray — the deisa virtual array descriptor (§2.4.2): the
//     global spatiotemporal decomposition of a simulation field,
//     including the time dimension.
//   - Naming scheme (§2.4.1): each block key is
//     "deisa-<name>-<t>.<i>.<j>", position given in the global
//     decomposition with time first.
//   - Contract (§2.4.3): the block selection the analytics signed up
//     for; bridges filter locally and ship only needed blocks.
//   - Bridge (§2.1): one per MPI rank, built on a dask Client; rank 0
//     additionally publishes the array descriptors.
//   - Deisa adaptor (§2.3, Listing 2): the analytics-side object that
//     receives descriptors, exposes deisa arrays for selection, signs
//     the contract, creates external tasks, and submits graphs ahead of
//     time.
//   - PdiPluginDeisa (§2.3, Listing 1): the PDI plugin that drives a
//     Bridge from configuration.
//
// Two operating modes reproduce the paper's comparison systems: external
// tasks (DEISA2/DEISA3, this work) and the HiPC'21 scatter-per-timestep
// protocol (DEISA1) used as the baseline.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"deisago/internal/array"
	"deisago/internal/taskgraph"
)

// KeyPrefix starts every deisa block key (§2.4.1).
const KeyPrefix = "deisa"

// VirtualArray describes the spatiotemporal decomposition of one
// simulation field: global sizes in every dimension (including time),
// the size of the block each MPI process produces, and the tag of the
// time dimension. It is pure description — no data — and is what rank 0
// sends to the adaptor when signing contracts.
type VirtualArray struct {
	Name    string `json:"name"`
	Size    []int  `json:"size"`    // global extent per dimension
	Subsize []int  `json:"subsize"` // block extent per dimension
	TimeDim int    `json:"timedim"`

	// Namespace, when non-empty, scopes every key this array generates
	// to one job: block keys become "<ns>/deisa-<name>-...". Bridges
	// stamp it from their own Namespace at declaration, so concurrent
	// pipelines sharing a cluster never collide on block keys even when
	// their arrays share a name. Empty on single-job deployments, which
	// keeps the paper's §2.4.1 naming unchanged.
	Namespace string `json:"namespace,omitempty"`

	// grid caches Size[d]/Subsize[d]; it is derived state, computed once
	// on first use. Descriptors are treated as immutable after
	// declaration, so the cache never goes stale.
	gridOnce sync.Once
	grid     []int
}

// gridCached returns the per-dimension block counts without allocating.
// Callers must not mutate the result.
func (v *VirtualArray) gridCached() []int {
	v.gridOnce.Do(func() {
		g := make([]int, len(v.Size))
		for d := range g {
			g[d] = v.Size[d] / v.Subsize[d]
		}
		v.grid = g
	})
	return v.grid
}

// Validate checks the descriptor invariants: equal ranks, positive
// extents, blocks evenly tiling the domain, and a unit time-dimension
// block (one block per timestep per rank).
func (v *VirtualArray) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("core: virtual array must have a name")
	}
	if len(v.Size) == 0 || len(v.Size) != len(v.Subsize) {
		return fmt.Errorf("core: %s: size %v and subsize %v must have equal non-zero rank", v.Name, v.Size, v.Subsize)
	}
	if v.TimeDim < 0 || v.TimeDim >= len(v.Size) {
		return fmt.Errorf("core: %s: timedim %d out of range", v.Name, v.TimeDim)
	}
	for d := range v.Size {
		if v.Size[d] <= 0 || v.Subsize[d] <= 0 {
			return fmt.Errorf("core: %s: non-positive extent in dim %d", v.Name, d)
		}
		if v.Size[d]%v.Subsize[d] != 0 {
			return fmt.Errorf("core: %s: subsize %d does not tile size %d in dim %d", v.Name, v.Subsize[d], v.Size[d], d)
		}
	}
	if v.Subsize[v.TimeDim] != 1 {
		return fmt.Errorf("core: %s: time-dimension block extent must be 1, got %d", v.Name, v.Subsize[v.TimeDim])
	}
	if strings.ContainsRune(v.Namespace, '/') {
		return fmt.Errorf("core: %s: namespace %q must be a single path segment", v.Name, v.Namespace)
	}
	return nil
}

// Grid returns the number of blocks per dimension. The result is a copy;
// hot paths use the internal cache directly.
func (v *VirtualArray) Grid() []int {
	return append([]int(nil), v.gridCached()...)
}

// Timesteps returns the extent of the time dimension.
func (v *VirtualArray) Timesteps() int { return v.Size[v.TimeDim] }

// SpatialBlocks returns the number of blocks per timestep.
func (v *VirtualArray) SpatialBlocks() int {
	n := 1
	for d, g := range v.gridCached() {
		if d != v.TimeDim {
			n *= g
		}
	}
	return n
}

// BlockBytes returns the modelled size of one block.
func (v *VirtualArray) BlockBytes() int64 {
	n := int64(1)
	for _, s := range v.Subsize {
		n *= int64(s)
	}
	return n * 8
}

// BlockKey builds the unique key of the block at the given grid position
// (§2.4.1): deisa-<name>-<p0>.<p1>...., with the time dimension first in
// the position tuple by deisa convention (pos is given in dimension
// order; TimeDim identifies time).
func (v *VirtualArray) BlockKey(pos []int) taskgraph.Key {
	if len(pos) != len(v.Size) {
		panic(fmt.Sprintf("core: block position %v has rank %d, array %s has rank %d", pos, len(pos), v.Name, len(v.Size)))
	}
	grid := v.gridCached()
	// One allocation: the key bytes themselves (which the scheduler
	// interns and retains anyway).
	buf := make([]byte, 0, len(v.Namespace)+1+len(KeyPrefix)+len(v.Name)+2+4*len(pos))
	if v.Namespace != "" {
		buf = append(buf, v.Namespace...)
		buf = append(buf, '/')
	}
	buf = append(buf, KeyPrefix...)
	buf = append(buf, '-')
	buf = append(buf, v.Name...)
	buf = append(buf, '-')
	for d, p := range pos {
		if p < 0 || p >= grid[d] {
			panic(fmt.Sprintf("core: block position %v outside grid %v of %s", pos, grid, v.Name))
		}
		if d > 0 {
			buf = append(buf, '.')
		}
		buf = strconv.AppendInt(buf, int64(p), 10)
	}
	return taskgraph.Key(buf)
}

// ParseBlockKey inverts BlockKey, returning the array name and
// position. A job-namespace prefix ("<ns>/") is stripped; the returned
// name is the bare array name.
func ParseBlockKey(k taskgraph.Key) (name string, pos []int, err error) {
	s := string(k)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	if !strings.HasPrefix(s, KeyPrefix+"-") {
		return "", nil, fmt.Errorf("core: key %q lacks %q prefix", k, KeyPrefix)
	}
	s = strings.TrimPrefix(s, KeyPrefix+"-")
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return "", nil, fmt.Errorf("core: key %q has no position section", k)
	}
	name = s[:i]
	for _, p := range strings.Split(s[i+1:], ".") {
		n, perr := strconv.Atoi(p)
		if perr != nil {
			return "", nil, fmt.Errorf("core: bad position in key %q: %v", k, perr)
		}
		pos = append(pos, n)
	}
	return name, pos, nil
}

// BlockStart returns the element offset of a block position.
func (v *VirtualArray) BlockStart(pos []int) []int {
	start := make([]int, len(pos))
	for d, p := range pos {
		start[d] = p * v.Subsize[d]
	}
	return start
}

// PositionForStart inverts BlockStart: the grid position of the block
// whose element offset is start (the deisa plugin computes `start` from
// configuration expressions and maps it back to a grid position).
func (v *VirtualArray) PositionForStart(start []int) ([]int, error) {
	if len(start) != len(v.Size) {
		return nil, fmt.Errorf("core: start %v has rank %d, array %s has rank %d", start, len(start), v.Name, len(v.Size))
	}
	pos := make([]int, len(start))
	grid := v.gridCached()
	for d, s := range start {
		if s%v.Subsize[d] != 0 {
			return nil, fmt.Errorf("core: start %v not aligned to subsize %v in dim %d", start, v.Subsize, d)
		}
		pos[d] = s / v.Subsize[d]
		if pos[d] < 0 || pos[d] >= grid[d] {
			return nil, fmt.Errorf("core: start %v outside array %s", start, v.Name)
		}
	}
	return pos, nil
}

// Chunked builds the dask-array view of the virtual array: a chunked
// distributed array whose chunk keys are the deisa block keys (all
// external — produced by the simulation, not by graph tasks). This is
// the dask.array the adaptor hands to analytics code (§2.4.2).
func (v *VirtualArray) Chunked() *array.Chunked {
	name := KeyPrefix + "-" + v.Name
	if v.Namespace != "" {
		name = v.Namespace + "/" + name
	}
	return array.FromKeys(name, v.Size, v.Subsize, func(idx []int) taskgraph.Key {
		return v.BlockKey(idx)
	})
}

// WorkerForBlock deterministically preselects the worker that receives a
// block: the spatial block index modulo the worker count. Time-invariant
// placement keeps each spatial block's timeline on one worker, which is
// what lets partial-fit chains consume data without extra movement.
func (v *VirtualArray) WorkerForBlock(pos []int, numWorkers int) int {
	if numWorkers <= 0 {
		panic("core: numWorkers must be positive")
	}
	grid := v.gridCached()
	linear := 0
	for d := 0; d < len(pos); d++ {
		if d == v.TimeDim {
			continue
		}
		linear = linear*grid[d] + pos[d]
	}
	return linear % numWorkers
}
