package core

import (
	"fmt"
	"sort"

	"deisago/internal/ndarray"
	"deisago/internal/pdi"
	"deisago/internal/vtime"
)

// PluginName is the key of the deisa plugin in a PDI configuration.
const PluginName = "PdiPluginDeisa"

// PdiPluginDeisa is the PDI plugin of §2.3: it reads the deisa section of
// the PDI configuration (Listing 1), declares the virtual arrays on the
// bridge at the init event, and publishes mapped data blocks whenever the
// simulation shares them.
type PdiPluginDeisa struct {
	bridge *Bridge
	sys    *pdi.System

	initOn       string
	timeStepExpr string
	mapIn        map[string]string         // data name -> deisa array name
	arrayCfg     map[string]map[string]any // deisa array name -> raw config
	declared     bool
	shapeBuf     []int // per-publish reshape scratch (plugin is rank-local)
}

// NewPdiPluginDeisa wraps a bridge as a PDI plugin.
func NewPdiPluginDeisa(bridge *Bridge) *PdiPluginDeisa {
	return &PdiPluginDeisa{bridge: bridge}
}

// Name implements pdi.Plugin.
func (p *PdiPluginDeisa) Name() string { return PluginName }

// Init implements pdi.Plugin: it parses the plugin's configuration block.
func (p *PdiPluginDeisa) Init(s *pdi.System) error {
	p.sys = s
	cfg, ok := s.PluginConfig(PluginName)
	if !ok {
		return fmt.Errorf("core: no %s section in configuration", PluginName)
	}
	p.initOn = "init"
	if v, ok := cfg["init_on"].(string); ok {
		p.initOn = v
	}
	ts, ok := cfg["time_step"].(string)
	if !ok {
		return fmt.Errorf("core: %s requires time_step", PluginName)
	}
	p.timeStepExpr = ts

	p.mapIn = map[string]string{}
	if mi, ok := cfg["map_in"].(map[string]any); ok {
		for data, arr := range mi {
			name, ok := arr.(string)
			if !ok {
				return fmt.Errorf("core: map_in.%s must name a deisa array", data)
			}
			p.mapIn[data] = name
		}
	}
	if len(p.mapIn) == 0 {
		return fmt.Errorf("core: %s requires a non-empty map_in", PluginName)
	}

	p.arrayCfg = map[string]map[string]any{}
	arrays, ok := cfg["deisa_arrays"].(map[string]any)
	if !ok {
		return fmt.Errorf("core: %s requires deisa_arrays", PluginName)
	}
	for name, raw := range arrays {
		m, ok := raw.(map[string]any)
		if !ok {
			return fmt.Errorf("core: deisa_arrays.%s must be a map", name)
		}
		p.arrayCfg[name] = m
	}
	for data, arr := range p.mapIn {
		if _, ok := p.arrayCfg[arr]; !ok {
			return fmt.Errorf("core: map_in.%s targets undeclared deisa array %q", data, arr)
		}
	}
	return nil
}

// declareArrays evaluates the size/subsize expressions against current
// metadata and declares every virtual array on the bridge.
func (p *PdiPluginDeisa) declareArrays() error {
	names := make([]string, 0, len(p.arrayCfg))
	for n := range p.arrayCfg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		m := p.arrayCfg[name]
		size, err := p.sys.EvalIntList(m["size"])
		if err != nil {
			return fmt.Errorf("core: deisa_arrays.%s.size: %w", name, err)
		}
		subsize, err := p.sys.EvalIntList(m["subsize"])
		if err != nil {
			return fmt.Errorf("core: deisa_arrays.%s.subsize: %w", name, err)
		}
		timedim := 0
		if td, ok := m["timedim"]; ok {
			v, err := pdi.EvalValue(td, p.sys.Metadata())
			if err != nil {
				return fmt.Errorf("core: deisa_arrays.%s.timedim: %w", name, err)
			}
			iv, ok := v.(int64)
			if !ok {
				return fmt.Errorf("core: deisa_arrays.%s.timedim must be an integer", name)
			}
			timedim = int(iv)
		}
		va := &VirtualArray{Name: name, Size: size, Subsize: subsize, TimeDim: timedim}
		if err := p.bridge.DeclareArray(va); err != nil {
			return err
		}
	}
	return nil
}

// Event implements pdi.Plugin: the configured init event triggers array
// declaration and the contract handshake.
func (p *PdiPluginDeisa) Event(name string, at vtime.Time) (vtime.Time, error) {
	if name != p.initOn {
		return at, nil
	}
	if p.declared {
		return at, fmt.Errorf("core: duplicate %s event", p.initOn)
	}
	if err := p.declareArrays(); err != nil {
		return at, err
	}
	p.declared = true
	return p.bridge.Init(at)
}

// DataShared implements pdi.Plugin: a share of a mapped buffer publishes
// the corresponding block. The block's grid position is computed by
// evaluating the configured start expressions against the current
// metadata (which the simulation re-exposes each timestep).
func (p *PdiPluginDeisa) DataShared(name string, data *ndarray.Array, at vtime.Time) (vtime.Time, error) {
	arrName, ok := p.mapIn[name]
	if !ok {
		return at, nil // not mapped; ignore
	}
	if !p.declared {
		return at, fmt.Errorf("core: share of %q before %s event", name, p.initOn)
	}
	va, ok := p.bridge.Array(arrName)
	if !ok {
		return at, fmt.Errorf("core: array %q not declared on bridge", arrName)
	}
	start, err := p.sys.EvalIntList(p.arrayCfg[arrName]["start"])
	if err != nil {
		return at, fmt.Errorf("core: deisa_arrays.%s.start: %w", arrName, err)
	}
	pos, err := va.PositionForStart(start)
	if err != nil {
		return at, err
	}
	// Cross-check the time_step expression against the start position.
	step, err := pdi.EvalInt(p.timeStepExpr, p.sys.Metadata())
	if err != nil {
		return at, fmt.Errorf("core: time_step: %w", err)
	}
	if pos[va.TimeDim] != step {
		return at, fmt.Errorf("core: start %v implies timestep %d but time_step evaluates to %d",
			start, pos[va.TimeDim], step)
	}
	// The shared buffer is the spatial block; publish it with the
	// leading time axis of extent 1 expected by the chunk layout. The
	// reshape is a view over the shared buffer (no element copy); only
	// the target shape is staged, in a reused scratch.
	block := data
	if block.NDim() == len(va.Size)-1 {
		buf := append(p.shapeBuf[:0], 1)
		for d := 0; d < block.NDim(); d++ {
			buf = append(buf, block.Dim(d))
		}
		p.shapeBuf = buf
		block = block.Contiguous().Reshape(buf...)
	}
	end, _, err := p.bridge.Publish(arrName, pos, block, at)
	return end, err
}

// Finalize implements pdi.Plugin.
func (p *PdiPluginDeisa) Finalize(at vtime.Time) (vtime.Time, error) {
	return at, nil
}
