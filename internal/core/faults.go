package core

import (
	"errors"

	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// Publish-side fault injection and retry policy. The chaos harness
// (package chaos) implements PublishInterceptor to drop or delay
// individual publish attempts; the bridge's retry loop then re-sends
// with exponential backoff, and failover places the block on another
// live worker when the preselected one has died.

// ErrPublishDropped reports a publish attempt lost in flight by fault
// injection. The bridge treats it as retryable.
var ErrPublishDropped = errors.New("core: publish dropped in flight")

// PublishFault is an interceptor's decision about one publish attempt.
// Delay is virtual compute time spent before the attempt (a stalled
// simulation rank); Drop loses the attempt in flight after the time is
// spent.
type PublishFault struct {
	Drop  bool
	Delay vtime.Dur
}

// PublishInterceptor sees every external-mode publish attempt before it
// is sent. Implementations must be deterministic functions of the
// logical coordinates (rank, step, attempt, key) — the virtual time is
// provided for scheduling side effects (e.g. worker kills), not for
// decisions — so a seeded fault plan reproduces identically.
type PublishInterceptor interface {
	OnPublish(rank, step, attempt int, key taskgraph.Key, now vtime.Time) PublishFault
}

// RetryPolicy bounds the bridge's publish retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	MaxAttempts int
	// BaseBackoff is the virtual wait after the first failure; it
	// doubles after every further failure.
	BaseBackoff vtime.Dur
	// Timeout caps the cumulative virtual time spent on one block,
	// measured from the first attempt.
	Timeout vtime.Dur
}

// DefaultRetryPolicy is used when BridgeConfig.Retry is zero.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 6, BaseBackoff: 1e-3, Timeout: 30}
}

func (p RetryPolicy) orDefault() RetryPolicy {
	if p.MaxAttempts <= 0 {
		return DefaultRetryPolicy()
	}
	return p
}
