package core_test

import (
	"fmt"

	"deisago/internal/core"
)

func ExampleVirtualArray_BlockKey() {
	// The paper's naming scheme (§2.4.1): prefix, array name, and the
	// block's position in the spatiotemporal decomposition, time first.
	va := &core.VirtualArray{
		Name:    "temp",
		Size:    []int{10, 8, 6},
		Subsize: []int{1, 4, 2},
		TimeDim: 0,
	}
	fmt.Println(va.BlockKey([]int{1, 1, 2}))
	name, pos, _ := core.ParseBlockKey("deisa-temp-1.3.5")
	fmt.Println(name, pos)
	// Output:
	// deisa-temp-1.1.2
	// temp [1 3 5]
}

func ExampleContract_WantsBlock() {
	c := core.NewContract()
	// A spatial block selected across every timestep (-1 wildcard in the
	// time dimension) plus one specific block.
	c.Add("temp", [][]int{{-1, 0, 0}, {4, 1, 0}})
	fmt.Println(c.WantsBlock("temp", []int{7, 0, 0}, 0))
	fmt.Println(c.WantsBlock("temp", []int{4, 1, 0}, 0))
	fmt.Println(c.WantsBlock("temp", []int{5, 1, 0}, 0))
	// Output:
	// true
	// true
	// false
}

func ExampleVirtualArray_WorkerForBlock() {
	va := &core.VirtualArray{
		Name:    "f",
		Size:    []int{100, 4, 4},
		Subsize: []int{1, 2, 2},
		TimeDim: 0,
	}
	// Placement is time-invariant: the same spatial block always lands on
	// the same worker, so per-block timelines stay local.
	fmt.Println(va.WorkerForBlock([]int{0, 1, 0}, 3), va.WorkerForBlock([]int{99, 1, 0}, 3))
	// Output: 2 2
}
