package core

import (
	"math"
	"sync"
	"testing"

	"deisago/internal/array"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

// TestMultiArrayWorkflow couples two fields (temperature and pressure)
// through one bridge per rank, with independent selections per array —
// the generalization §5 alludes to for multi-code / digital-twin
// workflows.
func TestMultiArrayWorkflow(t *testing.T) {
	cluster := testCluster(t, 2)
	const ranks = 2
	temp := &VirtualArray{Name: "G_temp", Size: []int{2, 4, 2}, Subsize: []int{1, 2, 2}, TimeDim: 0}
	pres := &VirtualArray{Name: "G_pres", Size: []int{2, 4, 2}, Subsize: []int{1, 2, 2}, TimeDim: 0}

	bridges := make([]*Bridge, ranks)
	for r := 0; r < ranks; r++ {
		bridges[r] = NewBridge(BridgeConfig{
			Rank: r, Cluster: cluster, Node: netsim.NodeID(2 + r),
			HeartbeatInterval: math.Inf(1), Mode: ModeExternal,
		})
		if err := bridges[r].DeclareArray(temp); err != nil {
			t.Fatal(err)
		}
		if err := bridges[r].DeclareArray(pres); err != nil {
			t.Fatal(err)
		}
	}

	var tempSum, presSum float64
	var wg sync.WaitGroup
	errs := make(chan error, ranks+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		d := Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			errs <- err
			return
		}
		if names := set.Names(); len(names) != 2 || names[0] != "G_pres" || names[1] != "G_temp" {
			errs <- errNames(names)
			return
		}
		daT, _ := set.Get("G_temp")
		daP, _ := set.Get("G_pres")
		daT.SelectAll()
		// Pressure: only the first timestep.
		daP.Select(array.Range{Start: 0, Stop: 1},
			array.Range{Start: 0, Stop: 4}, array.Range{Start: 0, Stop: 2})
		if _, err := set.ValidateContract(); err != nil {
			errs <- err
			return
		}
		g := taskgraph.New()
		sum := func(key taskgraph.Key, deps []taskgraph.Key) {
			g.AddFn(key, deps, func(in []any) (any, error) {
				s := 0.0
				for _, v := range in {
					s += v.(*ndarray.Array).Sum()
				}
				return s, nil
			}, 1e-4)
		}
		sum("t-sum", daT.Selection().Keys())
		sum("p-sum", daP.Selection().Keys())
		futs, err := d.Client().Submit(g, []taskgraph.Key{"t-sum", "p-sum"})
		if err != nil {
			errs <- err
			return
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			errs <- err
			return
		}
		tempSum = vals[0].(float64)
		presSum = vals[1].(float64)
	}()

	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			b := bridges[r]
			now, err := b.Init(0)
			if err != nil {
				errs <- err
				return
			}
			for step := 0; step < 2; step++ {
				tBlk := ndarray.New(1, 2, 2)
				tBlk.Fill(float64(1 + r + step))
				pBlk := ndarray.New(1, 2, 2)
				pBlk.Fill(float64(100 * (1 + r + step)))
				now, _, err = b.Publish("G_temp", []int{step, r, 0}, tBlk, now+0.1)
				if err != nil {
					errs <- err
					return
				}
				now, _, err = b.Publish("G_pres", []int{step, r, 0}, pBlk, now)
				if err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Temperature: 4*(1+2+2+3) = 32. Pressure, step 0 only: 4*(100+200).
	if tempSum != 32 {
		t.Fatalf("temp sum = %v, want 32", tempSum)
	}
	if presSum != 1200 {
		t.Fatalf("pressure sum = %v, want 1200", presSum)
	}
	// Pressure step-1 blocks were filtered at the bridges.
	var skipped int64
	for _, b := range bridges {
		_, k := b.Stats()
		skipped += k
	}
	if skipped != 2 {
		t.Fatalf("skipped blocks = %d, want 2 (pressure step 1)", skipped)
	}
}

type errNames []string

func (e errNames) Error() string { return "unexpected array names" }

// TestTimeWindowContract selects a time subrange of a single array: the
// contract must include exactly those steps, and bridges must skip the
// rest (no time wildcard).
func TestTimeWindowContract(t *testing.T) {
	cluster := testCluster(t, 2)
	va := &VirtualArray{Name: "G_f", Size: []int{4, 2, 2}, Subsize: []int{1, 2, 2}, TimeDim: 0}
	b := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2,
		HeartbeatInterval: math.Inf(1), Mode: ModeExternal})
	if err := b.DeclareArray(va); err != nil {
		t.Fatal(err)
	}

	var got float64
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			errs <- err
			return
		}
		da, _ := set.Get("G_f")
		// Steps 1 and 2 only.
		da.Select(array.Range{Start: 1, Stop: 3},
			array.Range{Start: 0, Stop: 2}, array.Range{Start: 0, Stop: 2})
		contract, err := set.ValidateContract()
		if err != nil {
			errs <- err
			return
		}
		if contract.WantsBlock("G_f", []int{0, 0, 0}, 0) || !contract.WantsBlock("G_f", []int{2, 0, 0}, 0) {
			errs <- errNames(nil)
			return
		}
		g := taskgraph.New()
		g.AddFn("s", da.Selection().Keys(), func(in []any) (any, error) {
			s := 0.0
			for _, v := range in {
				s += v.(*ndarray.Array).Sum()
			}
			return s, nil
		}, 1e-4)
		futs, err := d.Client().Submit(g, []taskgraph.Key{"s"})
		if err != nil {
			errs <- err
			return
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			errs <- err
			return
		}
		got = vals[0].(float64)
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		now, err := b.Init(0)
		if err != nil {
			errs <- err
			return
		}
		for step := 0; step < 4; step++ {
			blk := ndarray.New(1, 2, 2)
			blk.Fill(float64(step))
			now, _, err = b.Publish("G_f", []int{step, 0, 0}, blk, now+0.1)
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got != 4*(1+2) {
		t.Fatalf("windowed sum = %v, want 12", got)
	}
	sent, skipped := b.Stats()
	if sent != 2 || skipped != 2 {
		t.Fatalf("bridge stats sent=%d skipped=%d, want 2/2", sent, skipped)
	}
}

// TestFiveDimensionalVirtualArray exercises the generality of the
// descriptor and naming scheme beyond 2-D fields: the paper's motivating
// use case is the 5-dimensional Gysela distribution function.
func TestFiveDimensionalVirtualArray(t *testing.T) {
	va := &VirtualArray{
		Name:    "f5d",
		Size:    []int{6, 4, 4, 2, 8}, // (t, r, theta, phi, vpar)
		Subsize: []int{1, 2, 4, 2, 8}, // 2 blocks along r
		TimeDim: 0,
	}
	if err := va.Validate(); err != nil {
		t.Fatal(err)
	}
	if va.SpatialBlocks() != 2 || va.Timesteps() != 6 {
		t.Fatalf("blocks=%d steps=%d", va.SpatialBlocks(), va.Timesteps())
	}
	key := va.BlockKey([]int{3, 1, 0, 0, 0})
	if key != "deisa-f5d-3.1.0.0.0" {
		t.Fatalf("key = %s", key)
	}
	name, pos, err := ParseBlockKey(key)
	if err != nil || name != "f5d" || len(pos) != 5 || pos[0] != 3 || pos[1] != 1 {
		t.Fatalf("parse = %q %v %v", name, pos, err)
	}
	ch := va.Chunked()
	if ch.NumChunks() != 12 {
		t.Fatalf("chunks = %d", ch.NumChunks())
	}
	// Worker placement stable across time in 5-D too.
	if va.WorkerForBlock([]int{0, 1, 0, 0, 0}, 3) != va.WorkerForBlock([]int{5, 1, 0, 0, 0}, 3) {
		t.Fatal("5-D placement varies with time")
	}
}
