package core

import (
	"fmt"
	"strings"
)

// Contract is the signed data-filtering agreement of §2.4.3: for each
// virtual array, the set of block positions the analytics selected. It
// is computed once by the adaptor from the client's [] selections and
// broadcast to every bridge before the first timestep; each bridge then
// checks its blocks locally and ships only those the contract includes.
type Contract struct {
	// Selections maps array name to the selected block positions. A
	// position's time coordinate of -1 means "every timestep" (the
	// common case: analytics select spatial regions across all time).
	Selections map[string][][]int
}

// NewContract returns an empty contract.
func NewContract() *Contract {
	return &Contract{Selections: map[string][][]int{}}
}

func posKey(pos []int) string {
	parts := make([]string, len(pos))
	for i, p := range pos {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return strings.Join(parts, ".")
}

// Add records selected block positions for an array.
func (c *Contract) Add(arrayName string, positions [][]int) {
	for _, p := range positions {
		c.Selections[arrayName] = append(c.Selections[arrayName], append([]int(nil), p...))
	}
}

// WantsBlock reports whether the contract includes the block at pos of
// the named array, honoring the -1 time wildcard at timeDim.
func (c *Contract) WantsBlock(arrayName string, pos []int, timeDim int) bool {
	sels, ok := c.Selections[arrayName]
	if !ok {
		return false
	}
	for _, sel := range sels {
		if len(sel) != len(pos) {
			continue
		}
		match := true
		for d := range sel {
			if d == timeDim && sel[d] == -1 {
				continue
			}
			if sel[d] != pos[d] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Arrays returns the names of arrays with at least one selected block.
func (c *Contract) Arrays() []string {
	var out []string
	for name := range c.Selections {
		out = append(out, name)
	}
	return out
}

// BlocksPerStep returns how many distinct spatial blocks of an array the
// contract selects (counting time wildcards once).
func (c *Contract) BlocksPerStep(arrayName string, timeDim int) int {
	seen := map[string]bool{}
	for _, sel := range c.Selections[arrayName] {
		spatial := make([]int, 0, len(sel)-1)
		for d, p := range sel {
			if d == timeDim {
				continue
			}
			spatial = append(spatial, p)
		}
		seen[posKey(spatial)] = true
	}
	return len(seen)
}

// SizeBytes models the wire size of the contract message.
func (c *Contract) SizeBytes() int64 {
	var n int64 = 64
	for name, sels := range c.Selections {
		n += int64(len(name))
		for _, sel := range sels {
			n += int64(len(sel)) * 8
		}
	}
	return n
}

// ArraysMsg is the descriptor bundle rank 0 publishes through the
// "deisa-arrays" Variable when signing contracts.
type ArraysMsg struct {
	Arrays []*VirtualArray
}

// SizeBytes models the wire size of the descriptor bundle.
func (m *ArraysMsg) SizeBytes() int64 {
	var n int64 = 64
	for _, a := range m.Arrays {
		n += int64(len(a.Name)) + int64(len(a.Size)+len(a.Subsize))*8 + 8
	}
	return n
}

// Variable names used for the contract handshake (§2.1: "two Dask
// variables, instead of Nbr_ranks distributed queues").
const (
	ArraysVariable   = "deisa-arrays"
	ContractVariable = "deisa-contract"
)

// NamespacedVariable scopes a handshake Variable (or queue) name to one
// job namespace: "<ns>/<base>". The empty namespace returns base
// unchanged, so single-job deployments keep the paper's names. Bridges
// and adaptors created with the same namespace pair up on the scoped
// names; concurrent pipelines never cross-talk.
func NamespacedVariable(ns, base string) string {
	if ns == "" {
		return base
	}
	return ns + "/" + base
}
