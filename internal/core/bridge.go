package core

import (
	"errors"
	"fmt"
	"sort"

	"deisago/internal/dask"
	"deisago/internal/metrics"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// Mode selects the bridging protocol.
type Mode int

const (
	// ModeExternal is this paper's design (DEISA2/DEISA3): external
	// tasks, contracts signed once, no per-timestep metadata.
	ModeExternal Mode = iota
	// ModeDEISA1 is the HiPC'21 baseline: plain scatter with fresh keys
	// plus a per-timestep metadata message through the rank's distributed
	// queue, and the Dask default 5 s heartbeat.
	ModeDEISA1
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeDEISA1 {
		return "deisa1"
	}
	return "external"
}

// Deisa1QueueName returns the distributed-queue name of one rank's
// DEISA1 metadata channel (the baseline uses Nbr_ranks queues, §2.1).
func Deisa1QueueName(rank int) string { return fmt.Sprintf("deisa1-meta-%d", rank) }

// BridgeConfig configures one rank's bridge.
type BridgeConfig struct {
	Rank              int
	Cluster           *dask.Cluster
	Node              netsim.NodeID
	HeartbeatInterval vtime.Dur
	Mode              Mode
	// ScatterBytes, when positive, overrides the modelled wire size of
	// each published block (the harness models paper-scale blocks while
	// shipping small arrays).
	ScatterBytes int64
	// MetaEntries is the number of decomposition-metadata entries a
	// DEISA1 bridge refreshes on the scheduler every timestep (typically
	// the number of ranks). Ignored in external mode.
	MetaEntries int
	// PlaceWorker overrides the worker-preselection policy; nil selects
	// VirtualArray.WorkerForBlock (time-invariant spatial placement).
	// Used by placement ablations.
	PlaceWorker func(va *VirtualArray, pos []int, numWorkers int) int
	// Retry bounds the external-mode publish retry loop; the zero value
	// selects DefaultRetryPolicy.
	Retry RetryPolicy
	// Interceptor, when non-nil, sees every external-mode publish
	// attempt and may drop or delay it (fault injection). Leave nil for
	// fault-free runs — beware assigning a typed nil.
	Interceptor PublishInterceptor
	// TieBreak, when non-nil, chooses the failover target among all
	// live non-paused workers instead of the first one in scan order
	// (schedule-space exploration; see dask.TieBreaker). nil keeps the
	// deterministic production scan.
	TieBreak dask.TieBreaker
	// Namespace, when non-empty, scopes this bridge to one job on a
	// shared cluster: declared arrays are stamped with it (so block
	// keys become "<ns>/deisa-..."), the handshake Variables and DEISA1
	// queues are prefixed "<ns>/", and the bridge's instruments carry a
	// tenant label. Must match the tenant name registered on the
	// cluster and the namespace of the job's adaptor.
	Namespace string
}

// Bridge is the simulation-side endpoint of the coupling: one per MPI
// rank, built on a dask Client (§2.1). Rank 0 additionally publishes the
// virtual-array descriptors when contracts are signed.
type Bridge struct {
	cfg      BridgeConfig
	client   *dask.Client
	arrays   map[string]*VirtualArray
	contract *Contract
	ready    bool

	blocksSent    int64
	blocksSkipped int64
	retries       int64
	republished   int64

	// Registry handles (component "bridge", labeled by rank).
	mShipped      *metrics.Counter // blocks accepted and sent
	mFiltered     *metrics.Counter // blocks skipped by the contract filter
	mRetries      *metrics.Counter // publish attempts retried
	mFailovers    *metrics.Counter // scatters redirected off a dead target
	mRepublished  *metrics.Counter // lost blocks re-sent
	mPublishOK    *metrics.Counter // successful external scatters (incl. republish)
	mShippedBytes *metrics.Counter // modelled wire bytes of successful scatters

	// published remembers every external-mode block this bridge sent, so
	// blocks lost with a worker (the scheduler reverts their key to the
	// external state) can be republished from the producer's copy.
	// publishedKeys keeps first-publish order — each rank publishes its
	// blocks in deterministic timestep order, so scanning it replaces the
	// per-call key sort RepublishLost used to pay.
	published     map[taskgraph.Key]publishedBlock
	publishedKeys []taskgraph.Key

	// scatterBuf is the one-item scratch slice handed to Client.Scatter,
	// which consumes it synchronously and does not retain it — so the
	// per-publish slice allocation of the seed is gone. A Bridge is owned
	// by a single rank goroutine, so no lock is needed.
	scatterBuf [1]dask.ScatterItem
}

type publishedBlock struct {
	array string
	pos   []int
	data  *ndarray.Array
}

// NewBridge connects a bridge to the cluster.
func NewBridge(cfg BridgeConfig) *Bridge {
	reg := cfg.Cluster.Metrics()
	// Namespaced bridges additionally label their instruments with the
	// tenant, so per-tenant fabric traffic (shipped_bytes{tenant}) is
	// attributable at the bridge boundary; un-namespaced bridges keep
	// the original rank-only series.
	lbls := make([]metrics.Label, 0, 2)
	lbls = append(lbls, metrics.LInt("rank", cfg.Rank))
	if cfg.Namespace != "" {
		lbls = append(lbls, metrics.L("tenant", cfg.Namespace))
	}
	name := fmt.Sprintf("bridge-%d", cfg.Rank)
	if cfg.Namespace != "" {
		name = cfg.Namespace + "/" + name
	}
	return &Bridge{
		cfg:           cfg,
		client:        cfg.Cluster.NewClient(name, cfg.Node, cfg.HeartbeatInterval),
		arrays:        map[string]*VirtualArray{},
		published:     map[taskgraph.Key]publishedBlock{},
		mShipped:      reg.Counter("bridge", "blocks_shipped", lbls...),
		mFiltered:     reg.Counter("bridge", "blocks_filtered", lbls...),
		mRetries:      reg.Counter("bridge", "retries", lbls...),
		mFailovers:    reg.Counter("bridge", "failovers", lbls...),
		mRepublished:  reg.Counter("bridge", "republished", lbls...),
		mPublishOK:    reg.Counter("bridge", "publish_ok", lbls...),
		mShippedBytes: reg.Counter("bridge", "shipped_bytes", lbls...),
	}
}

// blockBytes returns the modelled wire size of one published block.
func (b *Bridge) blockBytes(data *ndarray.Array) int64 {
	if b.cfg.ScatterBytes > 0 {
		return b.cfg.ScatterBytes
	}
	return dask.SizeOf(data)
}

// Client exposes the underlying dask client (tests, clock access).
func (b *Bridge) Client() *dask.Client { return b.client }

// Rank returns the bridge's MPI rank.
func (b *Bridge) Rank() int { return b.cfg.Rank }

// Mode returns the bridging protocol in use.
func (b *Bridge) Mode() Mode { return b.cfg.Mode }

// DeclareArray registers a virtual array this rank contributes to. All
// ranks declare the same arrays; rank 0's declarations are published.
func (b *Bridge) DeclareArray(va *VirtualArray) error {
	if b.ready {
		return fmt.Errorf("core: DeclareArray after Init")
	}
	if b.cfg.Namespace != "" && va.Namespace == "" {
		// Arrays inherit the bridge's job namespace, so YAML-declared
		// arrays (the PDI plugin path) scope automatically.
		va.Namespace = b.cfg.Namespace
	}
	if err := va.Validate(); err != nil {
		return err
	}
	if _, dup := b.arrays[va.Name]; dup {
		return fmt.Errorf("core: array %q declared twice", va.Name)
	}
	b.arrays[va.Name] = va
	return nil
}

// Array returns a declared virtual array.
func (b *Bridge) Array(name string) (*VirtualArray, bool) {
	va, ok := b.arrays[name]
	return va, ok
}

// Init performs the contract handshake (§2.1 step 1, "Sign contracts"):
// rank 0 publishes the descriptors through the deisa-arrays Variable;
// every bridge then blocks until the adaptor publishes the contract
// through the deisa-contract Variable. In DEISA1 mode there is no
// contract — rank 0 still publishes descriptors (the analytics must know
// shapes), and bridges proceed immediately, sending everything.
//
// It returns the virtual time at which the bridge may proceed.
func (b *Bridge) Init(at vtime.Time) (vtime.Time, error) {
	if b.ready {
		return at, fmt.Errorf("core: bridge already initialized")
	}
	if len(b.arrays) == 0 {
		return at, fmt.Errorf("core: no arrays declared")
	}
	b.client.Clock().Sync(at)
	if b.cfg.Rank == 0 {
		msg := &ArraysMsg{}
		names := make([]string, 0, len(b.arrays))
		for n := range b.arrays {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			msg.Arrays = append(msg.Arrays, b.arrays[n])
		}
		b.client.Variable(NamespacedVariable(b.cfg.Namespace, ArraysVariable)).Set(msg)
	}
	if b.cfg.Mode == ModeExternal {
		v := b.client.Variable(NamespacedVariable(b.cfg.Namespace, ContractVariable)).Get()
		contract, ok := v.(*Contract)
		if !ok {
			return b.client.Now(), fmt.Errorf("core: contract variable holds %T", v)
		}
		b.contract = contract
	}
	b.ready = true
	return b.client.Now(), nil
}

// Contract returns the signed contract (nil in DEISA1 mode).
func (b *Bridge) Contract() *Contract { return b.contract }

// Publish offers one block of one timestep to the coupling. In external
// mode the bridge checks the contract locally and, if the block is
// wanted, scatters it to its preselected worker under the deisa key,
// triggering the external→memory transition. In DEISA1 mode it scatters
// under the same key as plain data and pushes a metadata message into
// the rank's queue — the per-timestep traffic the paper eliminates.
//
// It returns the virtual completion time and whether the block was sent.
func (b *Bridge) Publish(arrayName string, pos []int, data *ndarray.Array, at vtime.Time) (vtime.Time, bool, error) {
	if !b.ready {
		return at, false, fmt.Errorf("core: Publish before Init")
	}
	va, ok := b.arrays[arrayName]
	if !ok {
		return at, false, fmt.Errorf("core: unknown array %q", arrayName)
	}
	b.client.Clock().Sync(at)
	key := va.BlockKey(pos)
	var worker int
	if b.cfg.PlaceWorker != nil {
		worker = b.cfg.PlaceWorker(va, pos, b.cfg.Cluster.NumWorkers())
	} else {
		worker = va.WorkerForBlock(pos, b.cfg.Cluster.NumWorkers())
	}

	switch b.cfg.Mode {
	case ModeExternal:
		if !b.contract.WantsBlock(arrayName, pos, va.TimeDim) {
			b.blocksSkipped++
			b.mFiltered.Inc()
			b.client.HeartbeatTick()
			return b.client.Now(), false, nil
		}
		step := 0
		if va.TimeDim >= 0 && va.TimeDim < len(pos) {
			step = pos[va.TimeDim]
		}
		if err := b.scatterExternal(key, data, step, worker); err != nil {
			return b.client.Now(), false, err
		}
		if prev, dup := b.published[key]; !dup {
			// First publish of this key: copy pos once for the republish
			// index. Re-publishes of the same key (same pos by
			// construction) only refresh the data reference.
			b.publishedKeys = append(b.publishedKeys, key)
			b.published[key] = publishedBlock{array: arrayName, pos: append([]int(nil), pos...), data: data}
		} else {
			prev.data = data
			b.published[key] = prev
		}
	case ModeDEISA1:
		b.scatterBuf[0] = dask.ScatterItem{Key: key, Value: data, Bytes: b.cfg.ScatterBytes}
		if err := b.client.Scatter(b.scatterBuf[:], false, worker); err != nil {
			return b.client.Now(), false, err
		}
		b.mShippedBytes.Add(b.blockBytes(data))
		// Per-timestep metadata through the rank's distributed queue,
		// plus the full decomposition-metadata refresh of the HiPC'21
		// protocol.
		b.client.Queue(NamespacedVariable(b.cfg.Namespace, Deisa1QueueName(b.cfg.Rank))).Put(string(key))
		if b.cfg.MetaEntries > 0 {
			b.client.SendMetadata(b.cfg.MetaEntries)
		}
	default:
		return at, false, fmt.Errorf("core: unknown mode %d", b.cfg.Mode)
	}
	b.blocksSent++
	b.mShipped.Inc()
	b.client.HeartbeatTick()
	return b.client.Now(), true, nil
}

// scatterExternal ships one block to an external key, retrying with
// exponential backoff on retryable failures: attempts dropped in flight
// by the fault interceptor, targets that died before the scheduler
// processed the update, and targets refusing the block under memory
// pressure. When the preselected worker is dead the block fails over to
// the next live worker with scatter capacity (scanning (worker+k) mod N
// and skipping workers paused at their memory watermark, so the
// failover target is a deterministic function of the dead set and the
// virtual-time memory state, not of timing). If every live candidate is
// paused, the first live one is taken anyway — its refusal feeds the
// same retry/backoff loop, which is the backpressure by construction.
func (b *Bridge) scatterExternal(key taskgraph.Key, data *ndarray.Array, step, worker int) error {
	policy := b.cfg.Retry.orDefault()
	started := b.client.Now()
	backoff := policy.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if policy.Timeout > 0 && b.client.Now()+backoff > started+policy.Timeout {
				return fmt.Errorf("core: publish of %q timed out after %d attempts (%.3fs virtual): %w",
					key, attempt, b.client.Now()-started, lastErr)
			}
			b.client.Compute(backoff)
			backoff *= 2
			b.retries++
			b.mRetries.Inc()
		}
		target := worker
		if !b.cfg.Cluster.WorkerAlive(target) {
			target = -1
			firstLive := -1
			var unpaused []int
			n := b.cfg.Cluster.NumWorkers()
			now := b.client.Now()
			for k := 1; k < n; k++ {
				cand := (worker + k) % n
				if !b.cfg.Cluster.WorkerAlive(cand) {
					continue
				}
				if firstLive < 0 {
					firstLive = cand
				}
				if b.cfg.Cluster.WorkerPaused(cand, now) {
					continue
				}
				if b.cfg.TieBreak == nil {
					target = cand
					break
				}
				unpaused = append(unpaused, cand)
			}
			if tb := b.cfg.TieBreak; tb != nil && len(unpaused) > 0 {
				// Any live non-paused worker is a legal target; the
				// breaker chooses among them in ascending-id order.
				sort.Ints(unpaused)
				pick := tb.Pick(dask.Decision{Point: dask.PointFailover,
					Key: fmt.Sprintf("%s#%d", key, attempt), N: len(unpaused)})
				if pick < 0 || pick >= len(unpaused) {
					pick = 0
				}
				target = unpaused[pick]
			}
			if target < 0 {
				target = firstLive
			}
			if target < 0 {
				return fmt.Errorf("core: publish of %q: no live workers", key)
			}
			b.mFailovers.Inc()
		}
		var fault PublishFault
		if b.cfg.Interceptor != nil {
			fault = b.cfg.Interceptor.OnPublish(b.cfg.Rank, step, attempt, key, b.client.Now())
		}
		if fault.Delay > 0 {
			b.client.Compute(fault.Delay)
		}
		if fault.Drop {
			lastErr = ErrPublishDropped
			continue
		}
		b.scatterBuf[0] = dask.ScatterItem{Key: key, Value: data, Bytes: b.cfg.ScatterBytes}
		err := b.client.Scatter(b.scatterBuf[:], true, target)
		if err == nil {
			b.mPublishOK.Inc()
			b.mShippedBytes.Add(b.blockBytes(data))
			return nil
		}
		if !errors.Is(err, dask.ErrWorkerDied) && !errors.Is(err, dask.ErrWorkerPaused) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("core: publish of %q failed after %d attempts: %w", key, policy.MaxAttempts, lastErr)
}

// RepublishLost re-sends every block this bridge published whose key the
// scheduler has reverted to the external state (its worker died taking
// the bytes with it). It returns the number of blocks republished. Call
// after fault injection settles, and repeat until it returns 0.
func (b *Bridge) RepublishLost(at vtime.Time) (int, error) {
	if !b.ready || b.cfg.Mode != ModeExternal {
		return 0, nil
	}
	b.client.Clock().Sync(at)
	n := 0
	for _, key := range b.publishedKeys {
		state, ok := b.cfg.Cluster.TaskState(key)
		if !ok || state != dask.StateExternal {
			continue
		}
		pb := b.published[key]
		va := b.arrays[pb.array]
		step := 0
		if va.TimeDim >= 0 && va.TimeDim < len(pb.pos) {
			step = pb.pos[va.TimeDim]
		}
		var worker int
		if b.cfg.PlaceWorker != nil {
			worker = b.cfg.PlaceWorker(va, pb.pos, b.cfg.Cluster.NumWorkers())
		} else {
			worker = va.WorkerForBlock(pb.pos, b.cfg.Cluster.NumWorkers())
		}
		if err := b.scatterExternal(key, pb.data, step, worker); err != nil {
			return n, fmt.Errorf("core: republish of %q: %w", key, err)
		}
		b.republished++
		b.mRepublished.Inc()
		n++
	}
	return n, nil
}

// Stats returns how many blocks were sent and skipped (contract filter).
func (b *Bridge) Stats() (sent, skipped int64) {
	return b.blocksSent, b.blocksSkipped
}

// RetryStats returns how many publish attempts were retried and how many
// lost blocks were republished.
func (b *Bridge) RetryStats() (retries, republished int64) {
	return b.retries, b.republished
}

// Node returns the bridge's fabric node.
func (b *Bridge) Node() netsim.NodeID { return b.cfg.Node }

// forceReady marks the bridge initialized with an existing contract —
// used by recovery paths that re-create a bridge after a failure without
// re-running the contract handshake.
func (b *Bridge) forceReady(contract *Contract) {
	b.contract = contract
	b.ready = true
}
