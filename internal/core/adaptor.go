package core

import (
	"fmt"
	"math"
	"sort"

	"deisago/internal/array"
	"deisago/internal/dask"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

// Deisa is the analytics-side entry point (the dask_interface.Deisa of
// Listing 2): it wraps the analytics client, receives virtual-array
// descriptors from rank 0, exposes deisa arrays for selection, and signs
// the contract.
type Deisa struct {
	client *dask.Client
	ns     string
}

// Connect creates the analytics client at the given node. The client
// never heartbeats (it is not a bridge).
func Connect(cluster *dask.Cluster, node netsim.NodeID) *Deisa {
	return ConnectNamespaced(cluster, node, "")
}

// ConnectNamespaced creates the analytics client of one job on a
// shared cluster: the handshake Variables it reads and writes are
// prefixed "<ns>/", pairing it with the bridges whose BridgeConfig
// carries the same Namespace. The empty namespace is plain Connect.
func ConnectNamespaced(cluster *dask.Cluster, node netsim.NodeID, ns string) *Deisa {
	name := "deisa-adaptor"
	if ns != "" {
		name = ns + "/deisa-adaptor"
	}
	return &Deisa{client: cluster.NewClient(name, node, math.Inf(1)), ns: ns}
}

// Client returns the underlying analytics client.
func (d *Deisa) Client() *dask.Client { return d.client }

// Namespace returns the job namespace this adaptor is scoped to ("" on
// single-job deployments).
func (d *Deisa) Namespace() string { return d.ns }

// GetDeisaArrays blocks until rank 0 publishes the descriptors and
// returns the array set for selection.
func (d *Deisa) GetDeisaArrays() (*ArraySet, error) {
	v := d.client.Variable(NamespacedVariable(d.ns, ArraysVariable)).Get()
	msg, ok := v.(*ArraysMsg)
	if !ok {
		return nil, fmt.Errorf("core: arrays variable holds %T", v)
	}
	set := &ArraySet{deisa: d, byName: map[string]*DeisaArray{}}
	for _, va := range msg.Arrays {
		if err := va.Validate(); err != nil {
			return nil, err
		}
		set.byName[va.Name] = &DeisaArray{VA: va, chunked: va.Chunked()}
		set.names = append(set.names, va.Name)
	}
	sort.Strings(set.names)
	return set, nil
}

// ArraySet holds the deisa arrays published by the simulation plus the
// selections the analytics made on them.
type ArraySet struct {
	deisa     *Deisa
	byName    map[string]*DeisaArray
	names     []string
	validated bool
}

// Names lists the available arrays.
func (s *ArraySet) Names() []string { return append([]string(nil), s.names...) }

// Get returns a deisa array by name.
func (s *ArraySet) Get(name string) (*DeisaArray, error) {
	da, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("core: no deisa array %q (have %v)", name, s.names)
	}
	return da, nil
}

// DeisaArray is one published virtual array with its pending selection.
type DeisaArray struct {
	VA        *VirtualArray
	chunked   *array.Chunked
	selection *array.Selection
}

// Chunked returns the dask-array view (chunk keys = deisa block keys).
func (da *DeisaArray) Chunked() *array.Chunked { return da.chunked }

// SelectAll selects the whole array (the `[...]` of Listing 2) and
// returns the chunked view for graph building.
func (da *DeisaArray) SelectAll() *array.Chunked {
	da.selection = da.chunked.SelectAll()
	return da.chunked
}

// Select selects element ranges (the `[]` operator); blocks intersecting
// the ranges will be shipped. It returns the chunked view.
func (da *DeisaArray) Select(ranges ...array.Range) *array.Chunked {
	da.selection = da.chunked.Select(ranges...)
	return da.chunked
}

// Selection returns the current selection (nil before Select*).
func (da *DeisaArray) Selection() *array.Selection { return da.selection }

// ValidateContract signs the contract (§2.4.3): it verifies every
// selection refers to data made available by the simulation, creates the
// external tasks for all selected blocks in one RPC, and publishes the
// contract through the deisa-contract Variable, unblocking the bridges.
// Arrays without a selection are excluded (their blocks are filtered
// out at the bridges).
func (s *ArraySet) ValidateContract() (*Contract, error) {
	if s.validated {
		return nil, fmt.Errorf("core: contract already validated")
	}
	contract := NewContract()
	var allKeys []taskgraph.Key
	for _, name := range s.names {
		da := s.byName[name]
		if da.selection == nil {
			continue
		}
		grid := da.VA.Grid()
		tdim := da.VA.TimeDim
		// Compress: a spatial block selected at every timestep becomes a
		// single wildcard entry.
		bySpatial := map[string][]int{}
		spatialPos := map[string][]int{}
		for _, pos := range da.selection.Chunks {
			spatial := append([]int(nil), pos...)
			spatial[tdim] = -1
			k := posKey(spatial)
			bySpatial[k] = append(bySpatial[k], pos[tdim])
			spatialPos[k] = spatial
		}
		spatialKeys := make([]string, 0, len(bySpatial))
		for k := range bySpatial {
			spatialKeys = append(spatialKeys, k)
		}
		sort.Strings(spatialKeys)
		var positions [][]int
		for _, k := range spatialKeys {
			steps := bySpatial[k]
			if len(steps) == grid[tdim] {
				positions = append(positions, spatialPos[k])
				continue
			}
			for _, t := range steps {
				pos := append([]int(nil), spatialPos[k]...)
				pos[tdim] = t
				positions = append(positions, pos)
			}
		}
		contract.Add(name, positions)
		// External tasks for every selected block (wildcards expanded).
		for _, pos := range da.selection.Chunks {
			allKeys = append(allKeys, da.VA.BlockKey(pos))
		}
	}
	if len(allKeys) == 0 {
		return nil, fmt.Errorf("core: contract selects no data")
	}
	if _, err := s.deisa.client.ExternalFutures(allKeys); err != nil {
		return nil, err
	}
	s.deisa.client.Variable(NamespacedVariable(s.deisa.ns, ContractVariable)).Set(contract)
	s.validated = true
	return contract, nil
}

// Deisa1Adaptor is the analytics-side driver of the DEISA1 baseline: it
// drains the per-rank metadata queues each timestep to learn which keys
// arrived, as the HiPC'21 system does.
type Deisa1Adaptor struct {
	client *dask.Client
	ranks  int
}

// NewDeisa1Adaptor wraps an analytics client for the DEISA1 protocol.
func NewDeisa1Adaptor(client *dask.Client, ranks int) *Deisa1Adaptor {
	return &Deisa1Adaptor{client: client, ranks: ranks}
}

// Client returns the wrapped client.
func (a *Deisa1Adaptor) Client() *dask.Client { return a.client }

// NextStepKeys blocks until every rank has announced its key for the
// current timestep and returns the keys (one queue Get per rank — the
// 2·T·R message pattern of §2.1 counts these plus the scatter metadata).
func (a *Deisa1Adaptor) NextStepKeys() ([]taskgraph.Key, error) {
	keys := make([]taskgraph.Key, 0, a.ranks)
	for r := 0; r < a.ranks; r++ {
		v := a.client.Queue(Deisa1QueueName(r)).Get()
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("core: deisa1 queue %d held %T", r, v)
		}
		keys = append(keys, taskgraph.Key(s))
	}
	return keys, nil
}

// GetDeisaArraysVariable fetches the descriptor bundle for the DEISA1
// driver (shapes are still needed to build graphs).
func (a *Deisa1Adaptor) GetDeisaArrays() (*ArraysMsg, error) {
	v := a.client.Variable(ArraysVariable).Get()
	msg, ok := v.(*ArraysMsg)
	if !ok {
		return nil, fmt.Errorf("core: arrays variable holds %T", v)
	}
	return msg, nil
}
