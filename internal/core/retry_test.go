package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// interceptFunc adapts a function to the PublishInterceptor interface.
type interceptFunc func(rank, step, attempt int, key taskgraph.Key, now vtime.Time) PublishFault

func (f interceptFunc) OnPublish(rank, step, attempt int, key taskgraph.Key, now vtime.Time) PublishFault {
	return f(rank, step, attempt, key, now)
}

// retryBridge builds an external-mode bridge over a fresh cluster with
// the external future for the single test block already registered, so
// tests can exercise the publish retry loop directly without the full
// contract handshake.
func retryBridge(t *testing.T, nWorkers int, tweak func(*BridgeConfig)) (*dask.Cluster, *Bridge, *dask.Client, []*dask.Future, *ndarray.Array) {
	t.Helper()
	cluster := testCluster(t, nWorkers)
	cluster.EnableAudit()
	va := &VirtualArray{Name: "G_y", Size: []int{1, 2, 2}, Subsize: []int{1, 2, 2}, TimeDim: 0}
	cfg := BridgeConfig{Rank: 0, Cluster: cluster, Node: 2,
		HeartbeatInterval: math.Inf(1), Mode: ModeExternal}
	if tweak != nil {
		tweak(&cfg)
	}
	b := NewBridge(cfg)
	if err := b.DeclareArray(va); err != nil {
		t.Fatal(err)
	}
	contract := NewContract()
	contract.Add("G_y", [][]int{{-1, 0, 0}})
	b.forceReady(contract)

	ana := cluster.NewClient("analytics", 1, math.Inf(1))
	futs, err := ana.ExternalFutures([]taskgraph.Key{va.BlockKey([]int{0, 0, 0})})
	if err != nil {
		t.Fatal(err)
	}
	blk := ndarray.New(1, 2, 2)
	blk.Fill(3)
	return cluster, b, ana, futs, blk
}

// TestPublishRetriesDroppedAttempts drops the first two attempts of a
// publish and expects the backoff loop to deliver on the third.
func TestPublishRetriesDroppedAttempts(t *testing.T) {
	_, b, ana, futs, blk := retryBridge(t, 1, func(cfg *BridgeConfig) {
		cfg.Interceptor = interceptFunc(func(_, _, attempt int, _ taskgraph.Key, _ vtime.Time) PublishFault {
			return PublishFault{Drop: attempt < 2}
		})
	})
	before := ana.Now()
	now, sent, err := b.Publish("G_y", []int{0, 0, 0}, blk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sent {
		t.Fatal("block not sent")
	}
	retries, _ := b.RetryStats()
	if retries != 2 {
		t.Fatalf("retries = %d, want 2", retries)
	}
	// Two backoff sleeps (base + doubled) must have advanced virtual time.
	if now < before+3e-3 {
		t.Fatalf("backoff did not advance virtual time: %v -> %v", before, now)
	}
	if err := ana.Wait(futs); err != nil {
		t.Fatal(err)
	}
}

// TestPublishFailsOverToLiveWorker kills the preselected worker before
// the publish; the bridge must deterministically place the block on the
// next live worker with no retries spent.
func TestPublishFailsOverToLiveWorker(t *testing.T) {
	cluster, b, ana, futs, blk := retryBridge(t, 2, func(cfg *BridgeConfig) {
		cfg.PlaceWorker = func(_ *VirtualArray, _ []int, _ int) int { return 0 }
	})
	if err := cluster.KillWorker(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, sent, err := b.Publish("G_y", []int{0, 0, 0}, blk, 0); err != nil || !sent {
		t.Fatalf("publish after preselected-worker death: sent=%v err=%v", sent, err)
	}
	if err := ana.Wait(futs); err != nil {
		t.Fatal(err)
	}
	if retries, _ := b.RetryStats(); retries != 0 {
		t.Fatalf("failover should not consume retries, got %d", retries)
	}
}

// TestPublishExhaustsRetries drops every attempt and expects a terminal
// error that wraps ErrPublishDropped and names the attempt budget.
func TestPublishExhaustsRetries(t *testing.T) {
	_, b, _, _, blk := retryBridge(t, 1, func(cfg *BridgeConfig) {
		cfg.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: 1e-3, Timeout: 1e9}
		cfg.Interceptor = interceptFunc(func(_, _, _ int, _ taskgraph.Key, _ vtime.Time) PublishFault {
			return PublishFault{Drop: true}
		})
	})
	_, _, err := b.Publish("G_y", []int{0, 0, 0}, blk, 0)
	if err == nil {
		t.Fatal("publish with every attempt dropped succeeded")
	}
	if !errors.Is(err, ErrPublishDropped) {
		t.Fatalf("error does not wrap ErrPublishDropped: %v", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error does not report the attempt budget: %v", err)
	}
	if retries, _ := b.RetryStats(); retries != 2 {
		t.Fatalf("retries = %d, want 2", retries)
	}
}

// TestPublishTimesOut bounds the retry loop by virtual time rather than
// attempt count: with a base backoff exceeding the timeout, the second
// attempt is never tried.
func TestPublishTimesOut(t *testing.T) {
	_, b, _, _, blk := retryBridge(t, 1, func(cfg *BridgeConfig) {
		cfg.Retry = RetryPolicy{MaxAttempts: 10, BaseBackoff: 5, Timeout: 2}
		cfg.Interceptor = interceptFunc(func(_, _, _ int, _ taskgraph.Key, _ vtime.Time) PublishFault {
			return PublishFault{Drop: true}
		})
	})
	_, _, err := b.Publish("G_y", []int{0, 0, 0}, blk, 0)
	if err == nil {
		t.Fatal("publish past its timeout succeeded")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error does not report the timeout: %v", err)
	}
}

// TestRepublishLostRecoversKilledOwner publishes a block, kills its
// owner (reverting the task to the external state), and expects
// RepublishLost to re-scatter exactly that block onto a survivor.
func TestRepublishLostRecoversKilledOwner(t *testing.T) {
	cluster, b, ana, futs, blk := retryBridge(t, 2, func(cfg *BridgeConfig) {
		cfg.PlaceWorker = func(_ *VirtualArray, _ []int, _ int) int { return 0 }
	})
	now, sent, err := b.Publish("G_y", []int{0, 0, 0}, blk, 0)
	if err != nil || !sent {
		t.Fatalf("publish: sent=%v err=%v", sent, err)
	}
	key := taskgraph.Key("deisa-G_y-0.0.0")
	if st, ok := cluster.TaskState(key); !ok || st != dask.StateMemory {
		t.Fatalf("published block state = %v, %v", st, ok)
	}
	if err := cluster.KillWorker(0, now); err != nil {
		t.Fatal(err)
	}
	if st, _ := cluster.TaskState(key); st != dask.StateExternal {
		t.Fatalf("state after owner death = %v, want external", st)
	}
	n, err := b.RepublishLost(now)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("republished %d blocks, want 1", n)
	}
	if st, _ := cluster.TaskState(key); st != dask.StateMemory {
		t.Fatalf("state after republish = %v, want memory", st)
	}
	if _, republished := b.RetryStats(); republished != 1 {
		t.Fatalf("republish counter = %d, want 1", republished)
	}
	if err := ana.Wait(futs); err != nil {
		t.Fatal(err)
	}
	// Nothing left to recover: a second sweep is a no-op.
	if n, err := b.RepublishLost(now); err != nil || n != 0 {
		t.Fatalf("second sweep: n=%d err=%v", n, err)
	}
}
