package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"deisago/internal/array"
	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

func testCluster(t *testing.T, nWorkers int) *dask.Cluster {
	t.Helper()
	cfg := netsim.Config{
		NodesPerSwitch:  8,
		LinkBandwidth:   1e9,
		PruneFactor:     2,
		HopLatency:      1e-6,
		SoftwareLatency: 1e-5,
	}
	fabric := netsim.New(cfg, nWorkers+4)
	wnodes := make([]netsim.NodeID, nWorkers)
	for i := range wnodes {
		wnodes[i] = netsim.NodeID(i + 2)
	}
	c := dask.NewCluster(fabric, dask.DefaultConfig(), 0, wnodes)
	t.Cleanup(c.Close)
	return c
}

func testVA() *VirtualArray {
	return &VirtualArray{
		Name:    "G_temp",
		Size:    []int{2, 4, 2}, // (t, X, Y)
		Subsize: []int{1, 2, 2},
		TimeDim: 0,
	}
}

func TestVirtualArrayValidate(t *testing.T) {
	if err := testVA().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*VirtualArray{
		{Name: "", Size: []int{2}, Subsize: []int{1}},
		{Name: "a", Size: []int{2}, Subsize: []int{1, 1}},
		{Name: "a", Size: []int{2}, Subsize: []int{1}, TimeDim: 5},
		{Name: "a", Size: []int{3, 4}, Subsize: []int{1, 3}}, // 3 does not tile 4
		{Name: "a", Size: []int{4, 4}, Subsize: []int{2, 2}}, // time block != 1
		{Name: "a", Size: []int{0, 4}, Subsize: []int{1, 2}}, // zero extent
	}
	for i, va := range bad {
		if err := va.Validate(); err == nil {
			t.Fatalf("bad descriptor %d accepted", i)
		}
	}
}

func TestVirtualArrayGridAndBytes(t *testing.T) {
	va := testVA()
	g := va.Grid()
	if g[0] != 2 || g[1] != 2 || g[2] != 1 {
		t.Fatalf("Grid = %v", g)
	}
	if va.Timesteps() != 2 || va.SpatialBlocks() != 2 {
		t.Fatalf("Timesteps=%d SpatialBlocks=%d", va.Timesteps(), va.SpatialBlocks())
	}
	if va.BlockBytes() != 4*8 {
		t.Fatalf("BlockBytes = %d", va.BlockBytes())
	}
}

func TestBlockKeyNamingScheme(t *testing.T) {
	va := testVA()
	k := va.BlockKey([]int{1, 0, 0})
	if k != "deisa-G_temp-1.0.0" {
		t.Fatalf("BlockKey = %s", k)
	}
	name, pos, err := ParseBlockKey(k)
	if err != nil || name != "G_temp" || pos[0] != 1 || pos[1] != 0 || pos[2] != 0 {
		t.Fatalf("ParseBlockKey = %q %v %v", name, pos, err)
	}
	if _, _, err := ParseBlockKey("nope-x"); err == nil {
		t.Fatal("bad prefix accepted")
	}
	if _, _, err := ParseBlockKey("deisa-a-x.y"); err == nil {
		t.Fatal("bad position accepted")
	}
}

func TestBlockStartRoundTrip(t *testing.T) {
	va := testVA()
	pos := []int{1, 1, 0}
	start := va.BlockStart(pos)
	if start[0] != 1 || start[1] != 2 || start[2] != 0 {
		t.Fatalf("BlockStart = %v", start)
	}
	got, err := va.PositionForStart(start)
	if err != nil {
		t.Fatal(err)
	}
	for d := range pos {
		if got[d] != pos[d] {
			t.Fatalf("roundtrip %v -> %v", pos, got)
		}
	}
	if _, err := va.PositionForStart([]int{0, 1, 0}); err == nil {
		t.Fatal("misaligned start accepted")
	}
	if _, err := va.PositionForStart([]int{9, 0, 0}); err == nil {
		t.Fatal("out-of-range start accepted")
	}
}

func TestWorkerForBlockStableAcrossTime(t *testing.T) {
	va := &VirtualArray{Name: "a", Size: []int{4, 8, 8}, Subsize: []int{1, 2, 2}, TimeDim: 0}
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			w0 := va.WorkerForBlock([]int{0, x, y}, 3)
			for tt := 1; tt < 4; tt++ {
				if va.WorkerForBlock([]int{tt, x, y}, 3) != w0 {
					t.Fatal("worker placement varies with time")
				}
			}
		}
	}
}

// Property: WorkerForBlock spreads spatial blocks evenly when the block
// count is a multiple of the worker count.
func TestWorkerForBlockSpreadQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := int(seed%4+4)%4 + 1
		va := &VirtualArray{Name: "a", Size: []int{2, 4 * w, 4}, Subsize: []int{1, 4, 4}, TimeDim: 0}
		counts := make([]int, w)
		for x := 0; x < w; x++ {
			counts[va.WorkerForBlock([]int{0, x, 0}, w)]++
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestContractWantsBlock(t *testing.T) {
	c := NewContract()
	c.Add("a", [][]int{{-1, 0, 0}, {2, 1, 0}})
	if !c.WantsBlock("a", []int{5, 0, 0}, 0) {
		t.Fatal("wildcard time not honored")
	}
	if !c.WantsBlock("a", []int{2, 1, 0}, 0) {
		t.Fatal("explicit position not honored")
	}
	if c.WantsBlock("a", []int{3, 1, 0}, 0) {
		t.Fatal("unselected timestep accepted")
	}
	if c.WantsBlock("b", []int{0, 0, 0}, 0) {
		t.Fatal("unknown array accepted")
	}
	if c.BlocksPerStep("a", 0) != 2 {
		t.Fatalf("BlocksPerStep = %d", c.BlocksPerStep("a", 0))
	}
	if c.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}

// runWorkflow executes the full handshake: one adaptor, R bridges, T
// timesteps, with the analytics summing all selected data. Returns the
// computed sum and the cluster for counter inspection.
func runWorkflow(t *testing.T, mode Mode, selectRanges []array.Range) (float64, *dask.Cluster, []*Bridge) {
	t.Helper()
	const ranks = 2
	cluster := testCluster(t, 2)
	va := testVA() // (t=2, X=4, Y=2), blocks (1,2,2); rank r owns x-block r

	bridges := make([]*Bridge, ranks)
	for r := 0; r < ranks; r++ {
		hb := math.Inf(1)
		if mode == ModeDEISA1 {
			hb = 5
		}
		bridges[r] = NewBridge(BridgeConfig{
			Rank: r, Cluster: cluster, Node: netsim.NodeID(2 + r), HeartbeatInterval: hb, Mode: mode,
		})
		if err := bridges[r].DeclareArray(va); err != nil {
			t.Fatal(err)
		}
	}

	var sum float64
	var wg sync.WaitGroup
	errs := make(chan error, ranks+1)

	// Analytics side.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if mode == ModeDEISA1 {
			client := cluster.NewClient("analytics", 1, math.Inf(1))
			ad := NewDeisa1Adaptor(client, ranks)
			msg, err := ad.GetDeisaArrays()
			if err != nil {
				errs <- err
				return
			}
			vva := msg.Arrays[0]
			total := 0.0
			for step := 0; step < vva.Timesteps(); step++ {
				keys, err := ad.NextStepKeys()
				if err != nil {
					errs <- err
					return
				}
				g := taskgraph.New()
				target := taskgraph.Key(fmt.Sprintf("sum-%d", step))
				g.AddFn(target, keys, func(in []any) (any, error) {
					s := 0.0
					for _, v := range in {
						s += v.(*ndarray.Array).Sum()
					}
					return s, nil
				}, 1e-4)
				futs, err := client.Submit(g, []taskgraph.Key{target})
				if err != nil {
					errs <- err
					return
				}
				vals, err := client.Gather(futs)
				if err != nil {
					errs <- err
					return
				}
				total += vals[0].(float64)
			}
			sum = total
			return
		}
		d := Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			errs <- err
			return
		}
		da, err := set.Get("G_temp")
		if err != nil {
			errs <- err
			return
		}
		var gt *array.Chunked
		if selectRanges == nil {
			gt = da.SelectAll()
		} else {
			gt = da.Select(selectRanges...)
		}
		if _, err := set.ValidateContract(); err != nil {
			errs <- err
			return
		}
		// Sum only over the selected chunks (submitted ahead of data).
		g := taskgraph.New()
		sel := da.Selection()
		keys := sel.Keys()
		g.AddFn("sum-all", keys, func(in []any) (any, error) {
			s := 0.0
			for _, v := range in {
				s += v.(*ndarray.Array).Sum()
			}
			return s, nil
		}, 1e-4)
		_ = gt
		futs, err := d.Client().Submit(g, []taskgraph.Key{"sum-all"})
		if err != nil {
			errs <- err
			return
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			errs <- err
			return
		}
		sum = vals[0].(float64)
	}()

	// Simulation side: ranks publish their block each timestep.
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			b := bridges[r]
			now, err := b.Init(0)
			if err != nil {
				errs <- err
				return
			}
			for step := 0; step < 2; step++ {
				blk := ndarray.New(1, 2, 2)
				blk.Fill(float64(r + step))
				now, _, err = b.Publish("G_temp", []int{step, r, 0}, blk, now+0.1)
				if err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return sum, cluster, bridges
}

func TestEndToEndExternalWorkflow(t *testing.T) {
	sum, cluster, bridges := runWorkflow(t, ModeExternal, nil)
	// Sum = 4*(r+step) over r,step in {0,1}^2 = 4*(0+1+1+2) = 16.
	if sum != 16 {
		t.Fatalf("sum = %v, want 16", sum)
	}
	for _, b := range bridges {
		sent, skipped := b.Stats()
		if sent != 2 || skipped != 0 {
			t.Fatalf("bridge %d stats: sent=%d skipped=%d", b.Rank(), sent, skipped)
		}
	}
	snap := cluster.Counters().Snapshot()
	if snap.ExternalCreated != 4 {
		t.Fatalf("external tasks created = %d, want 4", snap.ExternalCreated)
	}
	if snap.QueueOps != 0 {
		t.Fatalf("external mode used queues: %d ops", snap.QueueOps)
	}
	if snap.Heartbeats != 0 {
		t.Fatalf("infinite heartbeat sent %d messages", snap.Heartbeats)
	}
}

func TestEndToEndContractFiltering(t *testing.T) {
	// Select only x in [0,2) — rank 0's block — across all time and y.
	sum, _, bridges := runWorkflow(t, ModeExternal, []array.Range{
		{Start: 0, Stop: 2}, {Start: 0, Stop: 2}, {Start: 0, Stop: 2},
	})
	// Only rank 0 blocks: 4*(0) + 4*(1) = 4.
	if sum != 4 {
		t.Fatalf("filtered sum = %v, want 4", sum)
	}
	s0, k0 := bridges[0].Stats()
	s1, k1 := bridges[1].Stats()
	if s0 != 2 || k0 != 0 {
		t.Fatalf("rank0 stats: %d/%d", s0, k0)
	}
	if s1 != 0 || k1 != 2 {
		t.Fatalf("rank1 should skip everything, got sent=%d skipped=%d", s1, k1)
	}
}

func TestEndToEndDeisa1Workflow(t *testing.T) {
	sum, cluster, _ := runWorkflow(t, ModeDEISA1, nil)
	if sum != 16 {
		t.Fatalf("deisa1 sum = %v, want 16", sum)
	}
	snap := cluster.Counters().Snapshot()
	// 2 ranks × 2 steps: one queue Put per publish and one Get per
	// consume -> 2·T·R queue operations (§2.1's metadata pattern).
	if snap.QueueOps != 8 {
		t.Fatalf("queue ops = %d, want 8 (= 2·T·R)", snap.QueueOps)
	}
	if snap.ExternalCreated != 0 {
		t.Fatal("deisa1 created external tasks")
	}
	if snap.GraphsSubmitted != 2 {
		t.Fatalf("deisa1 submitted %d graphs, want one per step", snap.GraphsSubmitted)
	}
}

func TestMetadataMessageFormulas(t *testing.T) {
	// The paper's §2.1 claim: DEISA1 needs 2·T·R coordination messages
	// (plus heartbeats); the external design needs 1+R (descriptor set +
	// one contract get per rank) plus the one-off contract set and
	// external-task creation.
	_, c1, _ := runWorkflow(t, ModeDEISA1, nil)
	snap1 := c1.Counters().Snapshot()
	T, R := int64(2), int64(2)
	if got := snap1.QueueOps; got != 2*T*R {
		t.Fatalf("DEISA1 coordination msgs = %d, want %d", got, 2*T*R)
	}
	_, c3, _ := runWorkflow(t, ModeExternal, nil)
	snap3 := c3.Counters().Snapshot()
	// Variable ops: 1 arrays Set + 1 arrays Get + 1 contract Set + R
	// contract Gets = 3 + R, independent of T.
	if got := snap3.VariableOps; got != 3+R {
		t.Fatalf("external coordination msgs = %d, want %d", got, 3+R)
	}
	if snap3.QueueOps != 0 {
		t.Fatal("external mode used queues")
	}
}

func TestBridgeErrors(t *testing.T) {
	cluster := testCluster(t, 1)
	b := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2, HeartbeatInterval: math.Inf(1)})
	if _, err := b.Init(0); err == nil {
		t.Fatal("Init with no arrays accepted")
	}
	if err := b.DeclareArray(testVA()); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareArray(testVA()); err == nil {
		t.Fatal("duplicate declare accepted")
	}
	if _, _, err := b.Publish("G_temp", []int{0, 0, 0}, ndarray.New(1, 2, 2), 0); err == nil {
		t.Fatal("Publish before Init accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeExternal.String() != "external" || ModeDEISA1.String() != "deisa1" {
		t.Fatal("Mode.String")
	}
}
