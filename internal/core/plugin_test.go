package core

import (
	"math"
	"sync"
	"testing"

	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/pdi"
	"deisago/internal/taskgraph"
)

// pluginConfig mirrors Listing 1 for a (t=2) × (X=4) × (Y=2) field split
// over a 2×1 process grid.
const pluginConfig = `
metadata: { step: int, cfg: config_t, rank: int }
data:
  temp:
    type: array
    subtype: double
    size: [ '$cfg.loc[0]', '$cfg.loc[1]' ]
plugins:
  PdiPluginDeisa:
    scheduler_info: scheduler.json
    init_on: init
    time_step: '$step'
    deisa_arrays:
      G_temp:
        type: array
        subtype: double
        size:
          - '$cfg.maxTimeStep'
          - '$cfg.loc[0] * $cfg.proc[0]'
          - '$cfg.loc[1] * $cfg.proc[1]'
        subsize:
          - 1
          - '$cfg.loc[0]'
          - '$cfg.loc[1]'
        start:
          - '$step'
          - '$cfg.loc[0] * ($rank % $cfg.proc[0])'
          - '$cfg.loc[1] * ($rank / $cfg.proc[0])'
        timedim: 0
    map_in:
      temp: G_temp
`

func newPluginSystem(t *testing.T, cluster *dask.Cluster, rank int) (*pdi.System, *Bridge) {
	t.Helper()
	sys, err := pdi.New(pluginConfig)
	if err != nil {
		t.Fatal(err)
	}
	sys.Expose("rank", rank)
	sys.Expose("step", 0)
	sys.Expose("cfg", map[string]any{
		"loc":         []int{2, 2},
		"proc":        []int{2, 1},
		"maxTimeStep": 2,
	})
	bridge := NewBridge(BridgeConfig{
		Rank: rank, Cluster: cluster, Node: netsim.NodeID(2 + rank),
		HeartbeatInterval: math.Inf(1), Mode: ModeExternal,
	})
	if err := sys.AddPlugin(NewPdiPluginDeisa(bridge)); err != nil {
		t.Fatal(err)
	}
	return sys, bridge
}

func TestPluginEndToEnd(t *testing.T) {
	cluster := testCluster(t, 2)
	const ranks = 2

	var wg sync.WaitGroup
	errs := make(chan error, ranks+1)
	var sum float64

	wg.Add(1)
	go func() {
		defer wg.Done()
		d := Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			errs <- err
			return
		}
		da, err := set.Get("G_temp")
		if err != nil {
			errs <- err
			return
		}
		da.SelectAll()
		if _, err := set.ValidateContract(); err != nil {
			errs <- err
			return
		}
		g := taskgraph.New()
		g.AddFn("sum", da.Selection().Keys(), func(in []any) (any, error) {
			s := 0.0
			for _, v := range in {
				s += v.(*ndarray.Array).Sum()
			}
			return s, nil
		}, 1e-4)
		futs, err := d.Client().Submit(g, []taskgraph.Key{"sum"})
		if err != nil {
			errs <- err
			return
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			errs <- err
			return
		}
		sum = vals[0].(float64)
	}()

	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sys, _ := newPluginSystem(t, cluster, r)
			now, err := sys.Event("init", 0)
			if err != nil {
				errs <- err
				return
			}
			for step := 0; step < 2; step++ {
				sys.Expose("step", step)
				local := ndarray.New(2, 2) // the rank's (loc[0], loc[1]) buffer
				local.Fill(float64(10*r + step))
				now, err = sys.Share("temp", local, now+0.05)
				if err != nil {
					errs <- err
					return
				}
			}
			if _, err := sys.Finalize(now); err != nil {
				errs <- err
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Sum: 4 elements per block, values 10r+step for r,step in {0,1}:
	// 4*(0+1+10+11) = 88.
	if sum != 88 {
		t.Fatalf("sum = %v, want 88", sum)
	}
}

func TestPluginConfigErrors(t *testing.T) {
	cluster := testCluster(t, 1)
	bridge := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2, HeartbeatInterval: math.Inf(1)})
	for name, cfg := range map[string]string{
		"no section": `data: { temp: { size: [2] } }`,
		"no timestep": `
plugins:
  PdiPluginDeisa:
    deisa_arrays: { a: { size: [1], subsize: [1], start: [0] } }
    map_in: { temp: a }
`,
		"no map_in": `
plugins:
  PdiPluginDeisa:
    time_step: '$step'
    deisa_arrays: { a: { size: [1], subsize: [1], start: [0] } }
`,
		"bad target": `
plugins:
  PdiPluginDeisa:
    time_step: '$step'
    deisa_arrays: { a: { size: [1], subsize: [1], start: [0] } }
    map_in: { temp: ghost }
`,
	} {
		sys, err := pdi.New(cfg)
		if err != nil {
			t.Fatalf("%s: yaml: %v", name, err)
		}
		if err := sys.AddPlugin(NewPdiPluginDeisa(bridge)); err == nil {
			t.Fatalf("%s: config accepted", name)
		}
	}
}

func TestPluginShareBeforeInitEvent(t *testing.T) {
	cluster := testCluster(t, 1)
	sys, _ := newPluginSystem(t, cluster, 0)
	if _, err := sys.Share("temp", ndarray.New(2, 2), 0); err == nil {
		t.Fatal("share before init event accepted")
	}
}

func TestPluginIgnoresUnmappedEventAndData(t *testing.T) {
	cluster := testCluster(t, 1)
	sys, err := pdi.New(pluginConfig + `
  other: {}
`)
	if err != nil {
		t.Fatal(err)
	}
	_ = cluster
	_ = sys
	// Unrelated events pass through without error before init.
	bridge := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2, HeartbeatInterval: math.Inf(1)})
	p := NewPdiPluginDeisa(bridge)
	sys2, err := pdi.New(pluginConfig)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.AddPlugin(p); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Event("checkpoint", 0); err != nil {
		t.Fatalf("unrelated event errored: %v", err)
	}
}
