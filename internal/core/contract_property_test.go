package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"deisago/internal/array"
	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

// Property: for a random spatiotemporal selection, the bridges ship
// exactly the selected blocks (sent+skipped == produced), and the
// analytics sum over the selection equals the analytically expected sum.
func TestContractExactnessQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ranks := rng.Intn(3) + 1
		steps := rng.Intn(3) + 1
		// Random time window and rank window.
		t0 := rng.Intn(steps)
		t1 := t0 + 1 + rng.Intn(steps-t0)
		r0 := rng.Intn(ranks)
		r1 := r0 + 1 + rng.Intn(ranks-r0)

		cfg := netsim.Config{
			NodesPerSwitch: 8, LinkBandwidth: 1e9, PruneFactor: 2,
			HopLatency: 1e-6, SoftwareLatency: 1e-5,
		}
		fabric := netsim.New(cfg, ranks+4)
		cluster := dask.NewCluster(fabric, dask.DefaultConfig(), 0,
			[]netsim.NodeID{2, 3})
		defer cluster.Close()

		va := &VirtualArray{
			Name:    "G_q",
			Size:    []int{steps, 2, 2 * ranks},
			Subsize: []int{1, 2, 2},
			TimeDim: 0,
		}
		bridges := make([]*Bridge, ranks)
		for r := 0; r < ranks; r++ {
			bridges[r] = NewBridge(BridgeConfig{
				Rank: r, Cluster: cluster, Node: netsim.NodeID(4 + r%(ranks+1)),
				HeartbeatInterval: math.Inf(1), Mode: ModeExternal,
			})
			if err := bridges[r].DeclareArray(va); err != nil {
				return false
			}
		}

		var sum float64
		var wg sync.WaitGroup
		fail := false
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := Connect(cluster, 1)
			set, err := d.GetDeisaArrays()
			if err != nil {
				fail = true
				return
			}
			da, _ := set.Get("G_q")
			da.Select(
				array.Range{Start: t0, Stop: t1},
				array.Range{Start: 0, Stop: 2},
				array.Range{Start: 2 * r0, Stop: 2 * r1},
			)
			if _, err := set.ValidateContract(); err != nil {
				fail = true
				return
			}
			g := taskgraph.New()
			g.AddFn("sum", da.Selection().Keys(), func(in []any) (any, error) {
				s := 0.0
				for _, v := range in {
					s += v.(*ndarray.Array).Sum()
				}
				return s, nil
			}, 1e-5)
			futs, err := d.Client().Submit(g, []taskgraph.Key{"sum"})
			if err != nil {
				fail = true
				return
			}
			vals, err := d.Client().Gather(futs)
			if err != nil {
				fail = true
				return
			}
			sum = vals[0].(float64)
		}()
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				b := bridges[r]
				now, err := b.Init(0)
				if err != nil {
					fail = true
					return
				}
				for step := 0; step < steps; step++ {
					blk := ndarray.New(1, 2, 2)
					blk.Fill(float64(1 + step*10 + r))
					now, _, err = b.Publish("G_q", []int{step, 0, r}, blk, now+0.01)
					if err != nil {
						fail = true
						return
					}
				}
			}(r)
		}
		wg.Wait()
		if fail {
			return false
		}
		// Expected sum and block accounting.
		want := 0.0
		for step := t0; step < t1; step++ {
			for r := r0; r < r1; r++ {
				want += 4 * float64(1+step*10+r)
			}
		}
		if sum != want {
			return false
		}
		var sent, skipped int64
		for _, b := range bridges {
			s, k := b.Stats()
			sent += s
			skipped += k
		}
		wantSent := int64((t1 - t0) * (r1 - r0))
		return sent == wantSent && sent+skipped == int64(steps*ranks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
