package core

import (
	"math"
	"sync"
	"testing"

	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
)

// TestCorruptBlockFailsGracefully injects a malformed block (wrong type
// downstream expectations) into an external-task workflow: the dependent
// task errs, the error propagates through the scheduler to the analytics
// Gather, and nothing deadlocks.
func TestCorruptBlockFailsGracefully(t *testing.T) {
	cluster := testCluster(t, 1)
	va := &VirtualArray{Name: "G_x", Size: []int{1, 2, 2}, Subsize: []int{1, 2, 2}, TimeDim: 0}
	b := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2,
		HeartbeatInterval: math.Inf(1), Mode: ModeExternal})
	if err := b.DeclareArray(va); err != nil {
		t.Fatal(err)
	}

	var gatherErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			gatherErr = err
			return
		}
		da, _ := set.Get("G_x")
		da.SelectAll()
		if _, err := set.ValidateContract(); err != nil {
			gatherErr = err
			return
		}
		g := taskgraph.New()
		// This task requires a 3-d block and slices beyond the corrupt
		// block's extent, erring at execution time.
		g.AddFn("use", da.Selection().Keys(), func(in []any) (any, error) {
			arr := in[0].(*ndarray.Array)
			return arr.At(0, 1, 1), nil // panics → recovered? no: error path below
		}, 1e-4)
		futs, err := d.Client().Submit(g, []taskgraph.Key{"use"})
		if err != nil {
			gatherErr = err
			return
		}
		_, gatherErr = d.Client().Gather(futs)
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		now, err := b.Init(0)
		if err != nil {
			t.Error(err)
			return
		}
		// Publish a block of the wrong shape (1×1×1 instead of 1×2×2).
		corrupt := ndarray.New(1, 1, 1)
		if _, _, err := b.Publish("G_x", []int{0, 0, 0}, corrupt, now); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if gatherErr == nil {
		t.Fatal("corrupt block did not surface an error")
	}
}

// TestWorkerFailureRepublish exercises the deisa-level recovery path: a
// worker dies after receiving a block; the external task returns to the
// external state, the bridge publishes the same block again (to a
// surviving worker), and the pending analytics completes.
func TestWorkerFailureRepublish(t *testing.T) {
	cluster := testCluster(t, 2)
	va := &VirtualArray{Name: "G_r", Size: []int{1, 2, 2}, Subsize: []int{1, 2, 2}, TimeDim: 0}
	b := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2,
		HeartbeatInterval: math.Inf(1), Mode: ModeExternal,
		PlaceWorker: func(_ *VirtualArray, _ []int, _ int) int { return 0 }})
	if err := b.DeclareArray(va); err != nil {
		t.Fatal(err)
	}

	var got float64
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	ready := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		d := Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			errs <- err
			return
		}
		da, _ := set.Get("G_r")
		da.SelectAll()
		if _, err := set.ValidateContract(); err != nil {
			errs <- err
			return
		}
		g := taskgraph.New()
		g.AddFn("s", da.Selection().Keys(), func(in []any) (any, error) {
			return in[0].(*ndarray.Array).Sum(), nil
		}, 1e-4)
		futs, err := d.Client().Submit(g, []taskgraph.Key{"s"})
		if err != nil {
			errs <- err
			return
		}
		close(ready)
		vals, err := d.Client().Gather(futs)
		if err != nil {
			errs <- err
			return
		}
		got = vals[0].(float64)
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		now, err := b.Init(0)
		if err != nil {
			errs <- err
			return
		}
		blk := ndarray.New(1, 2, 2)
		blk.Fill(2)
		now, _, err = b.Publish("G_r", []int{0, 0, 0}, blk, now)
		if err != nil {
			errs <- err
			return
		}
		<-ready
		// The worker holding the block dies before (or while) the task
		// runs; recovery: republish to the survivor.
		if err := cluster.KillWorker(0, now); err != nil {
			errs <- err
			return
		}
		// Publishing the same position again is legal: the external task
		// returned to the external state.
		b2 := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2,
			HeartbeatInterval: math.Inf(1), Mode: ModeExternal,
			PlaceWorker: func(_ *VirtualArray, _ []int, _ int) int { return 1 }})
		if err := b2.DeclareArray(va); err != nil {
			errs <- err
			return
		}
		b2.forceReady(b.Contract())
		if _, _, err := b2.Publish("G_r", []int{0, 0, 0}, blk, now); err != nil {
			// The task may have completed before the kill; a "not in
			// external state" error then is acceptable.
			t.Logf("republish: %v (task may have finished pre-kill)", err)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("sum = %v, want 8", got)
	}
}
